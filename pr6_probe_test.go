package silvervale

// Tier-policy calibration harness (skipped unless explicitly invoked):
// dumps per-pair statistics for the corpus-scale all-units sweep —
// sizes, label-multiset intersection, pq-gram distance, exact TED, DP
// wall-clock — as CSV so the tier policy's thresholds and the
// structural estimator's coefficients (internal/ted/tier.go) can be
// refit offline when the corpus or the tree builders change. Gated by
// SILVERVALE_PR6_PROBE=<out.csv>; SILVERVALE_PR6_METRIC selects the
// tree metric (default tsem); SILVERVALE_PR6_APPROX_ONLY=1 skips the
// exact column for a fast approximate-distance survey. The full tsem
// probe runs the exact DP on all ~4.4k pairs (~10 min).

import (
	"fmt"
	"os"
	"testing"
	"time"

	"silvervale/internal/core"
	"silvervale/internal/ted"
	"silvervale/internal/tree"
)

func labelMultiset(t *tree.Node) map[string]int {
	m := map[string]int{}
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		m[n.Label]++
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(t)
	return m
}

func labelIsect(a, b *tree.Node) int {
	ma, mb := labelMultiset(a), labelMultiset(b)
	n := 0
	for l, ca := range ma {
		if cb := mb[l]; cb < ca {
			n += cb
		} else {
			n += ca
		}
	}
	return n
}

func TestPR6Probe(t *testing.T) {
	out := os.Getenv("SILVERVALE_PR6_PROBE")
	if out == "" {
		t.Skip("set SILVERVALE_PR6_PROBE=<path.csv>")
	}
	metric := os.Getenv("SILVERVALE_PR6_METRIC")
	if metric == "" {
		metric = core.MetricTsem
	}
	approxOnly := os.Getenv("SILVERVALE_PR6_APPROX_ONLY") != ""
	idxs, order := pr6Units(t)
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "i,j,n1,n2,isect,approx,exact,ns")
	c := ted.NewCache()
	for i := 0; i < len(order); i++ {
		ta := idxs[order[i]].Units[0].Trees[metric]
		if ta == nil {
			continue
		}
		for j := i + 1; j < len(order); j++ {
			tb := idxs[order[j]].Units[0].Trees[metric]
			if tb == nil {
				continue
			}
			approx := c.ApproxDistance(ta, tb)
			isect := labelIsect(ta, tb)
			exact, ns := -1, int64(0)
			if !approxOnly {
				start := time.Now()
				exact = ted.Distance(ta, tb)
				ns = time.Since(start).Nanoseconds()
			}
			fmt.Fprintf(f, "%d,%d,%d,%d,%d,%.6f,%d,%d\n",
				i, j, ta.Size(), tb.Size(), isect, approx, exact, ns)
		}
	}
}
