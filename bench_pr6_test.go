// Bench trajectory emitter (PR 6): one `go test -bench` invocation that
// measures the tiered divergence engine on the corpus-scale sweep the
// tiering exists for — the all-pairs unit matrix over every unit tree of
// every app × model in the seed corpus (the near-duplicate screening
// workload). Three claims are measured and written to JSON:
//
//  1. equal-corpus speedup: the screening-budget tiered sweep covers the
//     same M-unit corpus in a fraction of the exact sweep's wall-clock;
//  2. equivalence: the budget-0 tiered sweep is bit-identical to exact;
//  3. error: every cell's |tiered − exact| over the full corpus stays
//     within the screening budget (hard assert).
//
// Run with (see EXPERIMENTS.md §Bench trajectory):
//
//	SILVERVALE_BENCH_JSON=BENCH_PR6.json \
//	  go test -run '^$' -bench '^BenchmarkPR6Trajectory$' -timeout 40m .
//
// Without SILVERVALE_BENCH_JSON set the benchmark skips, so plain
// `go test -bench .` sweeps are not slowed down.
package silvervale

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"silvervale/internal/core"
	"silvervale/internal/corpus"
	"silvervale/internal/ted"
)

type pr6Bench struct {
	benchTiming
	Units int `json:"units"`
	Cells int `json:"cells"`
}

// pr6Sweep reports one tiered full-corpus sweep against the exact
// reference: wall-clock speedup, the worst and mean per-cell error, and
// the tier routing split.
type pr6Sweep struct {
	Budget        float64 `json:"budget"`
	Policy        string  `json:"policy"`
	NsPerOp       int64   `json:"ns_per_op"`
	Speedup       float64 `json:"speedup_vs_exact"`
	MaxCellError  float64 `json:"max_cell_error"`
	MeanCellError float64 `json:"mean_cell_error"`
	TierPairs     uint64  `json:"tier_pairs"`
	TierExact     uint64  `json:"tier_exact"`
	TierEstimated uint64  `json:"tier_estimated"`
	TierFar       uint64  `json:"tier_far"`
}

type pr6Trajectory struct {
	PR        int    `json:"pr"`
	GoVersion string `json:"go"`
	NumCPU    int    `json:"num_cpu"`
	Metric    string `json:"metric"`
	Units     int    `json:"units"`
	Cells     int    `json:"cells"`

	ExactNs          int64    `json:"exact_ns"`
	Screening        pr6Sweep `json:"screening"`
	Fidelity         pr6Sweep `json:"fidelity"`
	Budget0Identical bool     `json:"budget0_bit_identical"`

	// UnitsRatioEqualWallclock is derived from the screening speedup: the
	// exact engine's all-pairs cost is ~quadratic in unit count, so at
	// the tiered sweep's wall-clock the exact sweep handles M/√speedup
	// units — the tiered sweep holds √speedup× more units per sweep.
	UnitsRatioEqualWallclock float64 `json:"units_ratio_equal_wallclock"`

	Benchmarks []pr6Bench `json:"benchmarks"`
}

// pr6Units builds the corpus-scale unit population: every unit of every
// app × model wrapped as a single-unit Index under one shared role, so
// the engine's matrix sweep pairs all of them — the all-pairs
// near-duplicate workload. Order is the deterministic corpus iteration
// order.
func pr6Units(b testing.TB) (map[string]*core.Index, []string) {
	b.Helper()
	idxs := map[string]*core.Index{}
	var order []string
	for _, app := range corpus.Apps() {
		for _, m := range corpus.ModelsFor(app) {
			cb, err := corpus.Generate(app, m)
			if err != nil {
				b.Fatal(err)
			}
			idx, err := core.IndexCodebase(cb, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for i := range idx.Units {
				u := idx.Units[i]
				if u.Trees[core.MetricTsem] == nil {
					continue
				}
				u.Role = "unit" // one shared role: match() pairs every unit
				name := fmt.Sprintf("%s/%s/%s", app.Name, m, u.File)
				idxs[name] = &core.Index{
					Codebase: app.Name, Model: string(m), Lang: idx.Lang,
					Units: []core.UnitIndex{u},
				}
				order = append(order, name)
			}
		}
	}
	return idxs, order
}

func pr6Errors(tiered, exact [][]float64) (maxErr, meanErr float64) {
	var sum float64
	var cells int
	for i := range exact {
		for j := range exact[i] {
			if i == j {
				continue
			}
			e := math.Abs(tiered[i][j] - exact[i][j])
			if e > maxErr {
				maxErr = e
			}
			sum += e
			cells++
		}
	}
	return maxErr, sum / float64(cells)
}

func BenchmarkPR6Trajectory(b *testing.B) {
	out := benchJSONPath(b)
	const (
		screeningBudget = 0.5  // unit-granularity screening regime
		fidelityBudget  = 0.05 // high-fidelity regime, for the error table
	)

	idxs, order := pr6Units(b)
	m := len(order)

	// Shared direct measurement scheme (benchMeasure). Every sweep starts
	// from a fresh cache: the workload is one cold corpus pass.
	measure := func(name string, units []string, fn func() [][]float64) (pr6Bench, [][]float64) {
		var vals [][]float64
		t := benchMeasure(name, 1, func(int) { vals = fn() })
		return pr6Bench{
			benchTiming: t,
			Units:       len(units),
			Cells:       len(units) * (len(units) - 1) / 2,
		}, vals
	}
	tieredSweep := func(name string, budget float64) (pr6Bench, pr6Sweep, [][]float64) {
		policy := ted.NewTierPolicy(budget)
		e := core.NewEngineWithCache(0, ted.NewCache())
		var stats core.TierStats
		bench, vals := measure(name, order, func() [][]float64 {
			tm, err := e.MatrixTiered(idxs, order, core.MetricTsem, policy)
			if err != nil {
				b.Fatal(err)
			}
			stats = tm.Stats
			return tm.Values
		})
		return bench, pr6Sweep{
			Budget: budget, Policy: policy.String(), NsPerOp: bench.NsPerOp,
			TierPairs: stats.Pairs, TierExact: stats.Exact,
			TierEstimated: stats.Estimated, TierFar: stats.Far,
		}, vals
	}

	traj := pr6Trajectory{
		PR: 6, GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(),
		Metric: core.MetricTsem, Units: m, Cells: m * (m - 1) / 2,
	}

	// 1. Exact all-pairs reference over the full corpus.
	exactFull, exactM := measure("ExactFullCorpus", order, func() [][]float64 {
		vals, err := core.NewEngineWithCache(0, ted.NewCache()).Matrix(idxs, order, core.MetricTsem)
		if err != nil {
			b.Fatal(err)
		}
		return vals
	})
	traj.ExactNs = exactFull.NsPerOp

	// 2. Screening-budget tiered sweep — the equal-corpus speedup claim,
	// with every cell's error hard-checked against the budget.
	screenBench, screen, screenM := tieredSweep("TieredScreening", screeningBudget)
	screen.Speedup = float64(exactFull.NsPerOp) / float64(screen.NsPerOp)
	screen.MaxCellError, screen.MeanCellError = pr6Errors(screenM, exactM)
	if screen.MaxCellError > screeningBudget {
		b.Fatalf("screening sweep: max cell error %v exceeds budget %v", screen.MaxCellError, screeningBudget)
	}
	traj.Screening = screen
	traj.UnitsRatioEqualWallclock = math.Sqrt(screen.Speedup)

	// 3. High-fidelity tiered sweep, recorded for the error table. Its
	// budget is calibrated for matched-pair app sweeps, not unit-singleton
	// cells, so errors are recorded but not asserted against it.
	fidBench, fid, fidM := tieredSweep("TieredFidelity", fidelityBudget)
	fid.Speedup = float64(exactFull.NsPerOp) / float64(fid.NsPerOp)
	fid.MaxCellError, fid.MeanCellError = pr6Errors(fidM, exactM)
	traj.Fidelity = fid

	// 4. Budget-0 tiered sweep on a base slice — must be bit-identical.
	base := order[:m/10]
	exactBase, exactBaseM := measure("ExactBase", base, func() [][]float64 {
		vals, err := core.NewEngineWithCache(0, ted.NewCache()).Matrix(idxs, base, core.MetricTsem)
		if err != nil {
			b.Fatal(err)
		}
		return vals
	})
	zeroBench, zeroM := measure("TieredBaseBudget0", base, func() [][]float64 {
		tm, err := core.NewEngineWithCache(0, ted.NewCache()).MatrixTiered(idxs, base, core.MetricTsem, ted.NewTierPolicy(0))
		if err != nil {
			b.Fatal(err)
		}
		return tm.Values
	})
	traj.Budget0Identical = benchSameBits(exactBaseM, zeroM)
	if !traj.Budget0Identical {
		b.Fatal("budget-0 tiered matrix differs from exact")
	}

	traj.Benchmarks = []pr6Bench{exactFull, screenBench, fidBench, exactBase, zeroBench}
	benchWriteTrajectory(b, out, traj)
	b.Logf("bench trajectory written to %s (screening %.1fx speedup at budget %g, max err %.3f; fidelity %.1fx at %g, max err %.3f)",
		out, screen.Speedup, screeningBudget, screen.MaxCellError, fid.Speedup, fidelityBudget, fid.MaxCellError)
}
