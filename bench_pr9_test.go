// Bench trajectory emitter (PR 9): one `go test -bench` invocation that
// measures the subtree-block memo (DESIGN.md §13) end to end and writes
// the numbers to JSON:
//
//  1. cold sweep: fresh engine, index every TeaLeaf port, full tsem
//     matrix — unchanged baseline;
//  2. whole-unit-warm re-sweep: nothing edited (hard assert: zero
//     reparses, zero recomputes, ≥ 100× faster than cold);
//  3. one-function-edit re-sweep with the subtree memo DISABLED — the
//     PR 8 edit path, whose cost is the n−1 dirty cells re-running the
//     monolithic Zhang–Shasha DP on their driver pairs. This is the
//     floor this PR attacks (hard assert: no subtree counters move);
//  4. the same scripted edit with the memo ENABLED — hard asserts:
//     ≥ 10× faster than leg 3, the usual dirty-set exactness (one unit
//     reparsed, n−1 cells recomputed), and the subtree-block counters
//     match the predicted dirty set: reuse and recompute deltas are
//     bit-for-bit identical across the isomorphic rep edits (each rep
//     appends a structurally identical function, so the dirty keyroot
//     set is the same every time), with clean-block reuse strictly
//     dominating the recomputes a one-function edit can dirty;
//  5. determinism: memo-on matrices over the edited corpus must be
//     bit-identical to the memo-off monolithic DP at 1/2/4/8 workers,
//     and the budget-0 tiered sweep likewise (run under -race in the CI
//     form; see EXPERIMENTS.md).
//
// Run with (see EXPERIMENTS.md §Bench trajectory):
//
//	SILVERVALE_BENCH_JSON=BENCH_PR9.json \
//	  go test -run '^$' -bench '^BenchmarkPR9Trajectory$' -timeout 30m .
//
// Without SILVERVALE_BENCH_JSON set the benchmark skips, so plain
// `go test -bench .` sweeps are not slowed down.
package silvervale

import (
	"runtime"
	"testing"
	"time"

	"silvervale/internal/core"
	"silvervale/internal/ted"
)

type pr9Trajectory struct {
	PR        int    `json:"pr"`
	GoVersion string `json:"go"`
	NumCPU    int    `json:"num_cpu"`

	App   string `json:"app"`
	Ports int    `json:"ports"`
	Units int    `json:"units"`
	Cells int    `json:"cells"`

	ColdNs           int64 `json:"cold_ns"`
	WarmNoEditNs     int64 `json:"warm_no_edit_ns"`
	EditMonolithicNs int64 `json:"edit_monolithic_ns"` // PR 8 path: memo off
	EditMemoNs       int64 `json:"edit_memo_ns"`       // PR 9 path: memo on

	WarmSpeedup             float64 `json:"warm_speedup"`
	EditSpeedupVsMonolithic float64 `json:"edit_speedup_vs_monolithic"`
	EditSpeedupVsCold       float64 `json:"edit_speedup_vs_cold"`

	EditUnitsReparsed   int `json:"edit_units_reparsed"`
	EditCellsRecomputed int `json:"edit_cells_recomputed"`
	EditCellsReused     int `json:"edit_cells_reused"`

	EditSubtreeBlocksReused     int `json:"edit_subtree_blocks_reused"`
	EditSubtreeBlocksRecomputed int `json:"edit_subtree_blocks_recomputed"`

	BitIdenticalWorkers []int `json:"bit_identical_workers"`
	Budget0Identical    bool  `json:"budget0_bit_identical"`
	BitIdentical        bool  `json:"warm_matrix_bit_identical_to_cold"`

	Benchmarks []benchTiming `json:"benchmarks"`
}

func BenchmarkPR9Trajectory(b *testing.B) {
	out := benchJSONPath(b)
	const iters = 3 // per-leg repetitions; shared benchMeasure scheme

	cbs, order := benchCodebases(b, "tealeaf")
	n := len(order)
	cells := n * (n - 1) / 2
	units := 0
	for _, cb := range cbs {
		units += len(cb.Units)
	}
	traj := pr9Trajectory{
		PR: 9, GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(),
		App: "tealeaf", Ports: n, Units: units, Cells: cells,
	}

	// 1. Cold: fresh engine per rep, full frontend + full matrix (the
	// subtree memo is on by default but a cold engine has nothing to hit).
	cold := benchMeasure("ColdSweep", iters, func(int) {
		e := core.NewEngine(1)
		benchIncrSweep(b, e, cbs, nil, order)
	})

	// The resident engine the warm legs run against. The bench holds the
	// cache handle so the edit legs can flip the memo per leg.
	cache := ted.NewCache()
	e := core.NewEngineWithCache(1, cache)
	prior, _ := benchIncrSweep(b, e, cbs, nil, order)

	// 2. Whole-unit-warm: nothing edited — every unit and every cell must
	// be served from the warm state.
	warm := benchMeasure("WarmNoEditResweep", iters, func(int) {
		before := e.IncrStats()
		prior, _ = benchIncrSweep(b, e, cbs, prior, order)
		d := e.IncrStats().Delta(before)
		if d.UnitsReparsed != 0 || d.CellsRecomputed != 0 {
			b.Fatalf("no-edit re-sweep did work: %+v", d)
		}
	})

	// The scripted one-function edit, distinct per rep (PR 8 scheme).
	victim := cbs["serial"]
	driverFile := benchDriverFile(b, victim)
	baseSrc := victim.Files[driverFile]
	// repOffset keeps the two legs' edit contents disjoint: semantic trees
	// normalise identifiers, so edits must differ in structure or constants
	// (benchAppendFunc varies a constant with rep), not just function name —
	// otherwise the second leg's cells hit the memo entries of the first.
	// Each leg starts with one unmeasured primer edit: the first edit of a
	// shape also pays for its constant-independent fragments (e.g. the
	// parameter-list subtree, shared by every rep's appended function),
	// which later isomorphic edits hit — priming makes the measured reps'
	// dirty set identical, which leg 4 hard-asserts.
	editLeg := func(name, prefix string, repOffset int) (benchTiming, []core.IncrStats) {
		var deltas []core.IncrStats
		benchAppendFunc(victim, driverFile, baseSrc, prefix, repOffset)
		prior, _ = benchIncrSweep(b, e, cbs, prior, order)
		t := benchMeasure(name, iters, func(rep int) {
			benchAppendFunc(victim, driverFile, baseSrc, prefix, repOffset+1+rep)
			before := e.IncrStats()
			prior, _ = benchIncrSweep(b, e, cbs, prior, order)
			d := e.IncrStats().Delta(before)
			// Hard asserts: exactly the edited unit reparses; exactly the
			// n−1 cells pairing the edited port recompute.
			if d.UnitsReparsed != 1 {
				b.Fatalf("%s rep %d: reparsed %d units, want 1", name, rep, d.UnitsReparsed)
			}
			if d.CellsRecomputed != n-1 {
				b.Fatalf("%s rep %d: recomputed %d cells, want %d", name, rep, d.CellsRecomputed, n-1)
			}
			if d.CellsReused != cells-(n-1) {
				b.Fatalf("%s rep %d: reused %d cells, want %d", name, rep, d.CellsReused, cells-(n-1))
			}
			deltas = append(deltas, d)
		})
		return t, deltas
	}

	// 3. Monolithic edit path (memo off): the PR 8 floor. No subtree
	// counters may move — the memoised DP must be fully out of the loop.
	cache.SetSubtreeMemo(false)
	editMono, monoDeltas := editLeg("EditResweepMonolithic", "pr9_off", 0)
	for rep, d := range monoDeltas {
		if d.SubtreeBlocksReused != 0 || d.SubtreeBlocksRecomputed != 0 {
			b.Fatalf("memo-off rep %d moved subtree counters: %+v", rep, d)
		}
	}

	// 4. Memoised edit path (memo on): clean keyroot blocks — seeded by
	// the resident engine's initial sweep — restore; only the edit's dirty
	// spine pairs re-run the DP.
	cache.SetSubtreeMemo(true)
	editMemo, memoDeltas := editLeg("EditResweepSubtreeMemo", "pr9_on", iters+1)
	for rep, d := range memoDeltas {
		// The dirty set is exactly predictable: every rep appends a
		// structurally identical function, so every rep dirties the same
		// keyroot pairs (the root spine plus the new function's subtrees)
		// and restores the same clean blocks. Any drift between reps means
		// the memo is leaking work.
		if d.SubtreeBlocksReused != memoDeltas[0].SubtreeBlocksReused ||
			d.SubtreeBlocksRecomputed != memoDeltas[0].SubtreeBlocksRecomputed {
			b.Fatalf("memo-on rep %d dirty set drifted: %+v vs rep 0 %+v", rep, d, memoDeltas[0])
		}
		if d.SubtreeBlocksReused == 0 {
			b.Fatalf("memo-on rep %d restored no blocks: %+v", rep, d)
		}
		if d.SubtreeBlocksRecomputed == 0 || d.SubtreeBlocksRecomputed >= d.SubtreeBlocksReused {
			b.Fatalf("memo-on rep %d: recomputes (%d) should be nonzero and dominated by reuse (%d)",
				rep, d.SubtreeBlocksRecomputed, d.SubtreeBlocksReused)
		}
	}
	last := memoDeltas[len(memoDeltas)-1]
	traj.EditUnitsReparsed = last.UnitsReparsed
	traj.EditCellsRecomputed = last.CellsRecomputed
	traj.EditCellsReused = last.CellsReused
	traj.EditSubtreeBlocksReused = last.SubtreeBlocksReused
	traj.EditSubtreeBlocksRecomputed = last.SubtreeBlocksRecomputed

	// 5. Determinism over the edited corpus. One memo-off cold engine is
	// the monolithic Zhang–Shasha reference; the resident warm matrix and
	// a memo-on cold sweep per worker count must all match it bit for bit.
	refCache := ted.NewCache()
	refCache.SetSubtreeMemo(false)
	refEngine := core.NewEngineWithCache(1, refCache)
	_, refMatrix := benchIncrSweep(b, refEngine, cbs, nil, order)

	_, warmMatrix := benchIncrSweep(b, e, cbs, prior, order)
	traj.BitIdentical = benchSameBits(warmMatrix, refMatrix)
	if !traj.BitIdentical {
		b.Fatal("warm memoised matrix differs from the monolithic cold sweep")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		fresh := core.NewEngine(workers)
		_, m := benchIncrSweep(b, fresh, cbs, nil, order)
		if !benchSameBits(m, refMatrix) {
			b.Fatalf("memoised matrix at %d workers differs from the monolithic DP", workers)
		}
		traj.BitIdenticalWorkers = append(traj.BitIdenticalWorkers, workers)
	}

	// Budget-0 tiered sweep through the memoised path: still exact.
	idxs := map[string]*core.Index{}
	for _, name := range order {
		idx, _, err := core.NewEngine(1).IndexCodebaseIncremental(cbs[name], nil, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		idxs[name] = idx
	}
	tm, err := core.NewEngine(2).MatrixTiered(idxs, order, core.MetricTsem, ted.NewTierPolicy(0))
	if err != nil {
		b.Fatal(err)
	}
	traj.Budget0Identical = benchSameBits(tm.Values, refMatrix)
	if !traj.Budget0Identical {
		b.Fatal("budget-0 tiered memoised matrix differs from the monolithic DP")
	}

	traj.ColdNs = cold.NsPerOp
	traj.WarmNoEditNs = warm.NsPerOp
	traj.EditMonolithicNs = editMono.NsPerOp
	traj.EditMemoNs = editMemo.NsPerOp
	traj.WarmSpeedup = float64(cold.NsPerOp) / float64(warm.NsPerOp)
	traj.EditSpeedupVsMonolithic = float64(editMono.NsPerOp) / float64(editMemo.NsPerOp)
	traj.EditSpeedupVsCold = float64(cold.NsPerOp) / float64(editMemo.NsPerOp)
	if traj.WarmSpeedup < 100 {
		b.Fatalf("warm re-sweep only %.1fx faster than cold", traj.WarmSpeedup)
	}
	// The PR 9 gate: the memoised edit path must beat the PR 8 edit floor
	// by an order of magnitude — the whole point of block restores is that
	// a one-function edit no longer pays the monolithic driver-pair DPs.
	if traj.EditSpeedupVsMonolithic < 10 {
		b.Fatalf("memoised edit re-sweep only %.1fx faster than the monolithic edit path",
			traj.EditSpeedupVsMonolithic)
	}

	traj.Benchmarks = []benchTiming{cold, warm, editMono, editMemo}
	benchWriteTrajectory(b, out, traj)
	b.Logf("bench trajectory written to %s (cold %.2fs; edit monolithic %.2fms -> memoised %.2fms, ×%.1f)",
		out, time.Duration(traj.ColdNs).Seconds(),
		float64(traj.EditMonolithicNs)/1e6, float64(traj.EditMemoNs)/1e6,
		traj.EditSpeedupVsMonolithic)
}
