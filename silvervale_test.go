package silvervale

import (
	"strings"
	"testing"
)

// Facade-level integration tests: the public API end to end.

func TestFacadeGenerateIndexDiverge(t *testing.T) {
	serial, err := Generate("babelstream", Serial)
	if err != nil {
		t.Fatal(err)
	}
	omp, err := Generate("babelstream", OpenMP)
	if err != nil {
		t.Fatal(err)
	}
	a, err := IndexCodebase(serial, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := IndexCodebase(omp, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diverge(a, b, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	if d.Norm <= 0 || d.Norm > 0.5 {
		t.Fatalf("OpenMP tsem divergence = %v, expected small positive", d.Norm)
	}
	if _, err := Diverge(a, b, "bogus"); err == nil {
		t.Fatal("expected error for unknown metric")
	}
}

func TestFacadeRegistry(t *testing.T) {
	if len(Apps()) != 5 {
		t.Fatalf("apps = %d", len(Apps()))
	}
	if len(Metrics()) != 9 {
		t.Fatalf("metrics = %d", len(Metrics()))
	}
	if len(Platforms()) != 6 {
		t.Fatalf("platforms = %d", len(Platforms()))
	}
	if len(ExperimentIDs()) != 18 {
		t.Fatalf("experiments = %d", len(ExperimentIDs()))
	}
	if _, err := Generate("nope", Serial); err == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestFacadeClusterAndMatrix(t *testing.T) {
	idxs := map[string]*Index{}
	order := []string{"serial", "omp", "cuda"}
	for _, m := range []Model{Serial, OpenMP, CUDA} {
		cb, err := Generate("babelstream", m)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := IndexCodebase(cb, IndexOptions{})
		if err != nil {
			t.Fatal(err)
		}
		idxs[string(m)] = idx
	}
	m, err := DivergenceMatrix(idxs, order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 0 || m[1][2] <= m[0][1] {
		t.Fatalf("matrix shape unexpected: %v", m)
	}
	root, err := Cluster(order, m)
	if err != nil {
		t.Fatal(err)
	}
	rendered := RenderDendrogram(root)
	for _, l := range order {
		if !strings.Contains(rendered, l) {
			t.Fatalf("dendrogram missing %s:\n%s", l, rendered)
		}
	}
	from, err := DivergenceFromBase(idxs, "serial", order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	if from["serial"] != 0 || from["cuda"] <= from["omp"] {
		t.Fatalf("from-base unexpected: %v", from)
	}
}

func TestFacadePhiAndNavigation(t *testing.T) {
	plats := Platforms()
	if Phi("tealeaf", CUDA, plats) != 0 {
		t.Fatal("CUDA cannot be portable across six platforms")
	}
	if Phi("tealeaf", Kokkos, plats) <= 0 {
		t.Fatal("Kokkos should be portable")
	}
	ch := NavigationChart("tealeaf",
		map[string]float64{"kokkos": 0.5}, map[string]float64{"kokkos": 0.45},
		[]Model{Kokkos}, plats)
	if len(ch.Points) != 1 || ch.Points[0].Phi <= 0 {
		t.Fatalf("chart = %+v", ch.Points)
	}
}

func TestFacadeCoverage(t *testing.T) {
	cb, err := Generate("babelstream", Serial)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := RunCoverage(cb)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Mask.CountLive() == 0 {
		t.Fatal("empty coverage")
	}
}

func TestFacadeExperiment(t *testing.T) {
	out, err := RunExperiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "T_sem") {
		t.Fatalf("experiment output: %q", out)
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Fatal("expected error")
	}
}
