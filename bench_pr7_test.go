// Bench trajectory emitter (PR 7): one `go test -bench` invocation that
// measures the interpreter instrumentation substrate end to end and
// writes the numbers to JSON:
//
//  1. profiling overhead on the coverage pipeline: the serial ports of
//     every C++ app run through the profile-off coverage path and the
//     profile-on (coverage + cost vectors) path — one execution now
//     yields both artifacts, so the on-path should cost roughly the same
//     wall-clock as coverage alone;
//  2. measured-set build cost: profiling all ten ports of each C++ app
//     into a perf.MeasuredSet (the substrate behind -phi-source=measured);
//  3. navigation-chart cost, modeled vs measured source (the measured
//     chart pays the profiling cost on top of the shared TED work);
//  4. determinism: two independently built measured charts must be
//     bit-identical (hard assert).
//
// Run with (see EXPERIMENTS.md §Bench trajectory):
//
//	SILVERVALE_BENCH_JSON=BENCH_PR7.json \
//	  go test -run '^$' -bench '^BenchmarkPR7Trajectory$' -timeout 20m .
//
// Without SILVERVALE_BENCH_JSON set the benchmark skips, so plain
// `go test -bench .` sweeps are not slowed down.
package silvervale

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"
	"time"

	"silvervale/internal/core"
	"silvervale/internal/corpus"
	"silvervale/internal/experiments"
)

type pr7AppCost struct {
	App     string `json:"app"`
	Ports   int    `json:"ports"`
	NsPerOp int64  `json:"ns_per_op"`
}

type pr7Trajectory struct {
	PR        int    `json:"pr"`
	GoVersion string `json:"go"`
	NumCPU    int    `json:"num_cpu"`
	Apps      int    `json:"apps"`

	// Coverage pipeline (generate + parse + interpret the serial port),
	// profile off vs on, summed over every C++ app.
	CoverageOffNs int64   `json:"coverage_off_ns"`
	CoverageOnNs  int64   `json:"coverage_on_ns"`
	OverheadPct   float64 `json:"profile_overhead_pct"`

	MeasuredSets []pr7AppCost `json:"measured_sets"`

	NavChartModeledNs       int64 `json:"navchart_modeled_ns"`
	NavChartMeasuredNs      int64 `json:"navchart_measured_ns"`
	MeasuredChartsIdentical bool  `json:"measured_charts_bit_identical"`

	Benchmarks []benchTiming `json:"benchmarks"`
}

func pr7CXXApps(b testing.TB) []corpus.App {
	b.Helper()
	var apps []corpus.App
	for _, a := range corpus.Apps() {
		if a.Lang == corpus.LangCXX {
			apps = append(apps, a)
		}
	}
	if len(apps) == 0 {
		b.Fatal("no C++ apps in corpus")
	}
	return apps
}

func BenchmarkPR7Trajectory(b *testing.B) {
	out := benchJSONPath(b)
	const iters = 5 // per-leg repetitions; direct measurement, PR 3/4/6 scheme

	apps := pr7CXXApps(b)
	traj := pr7Trajectory{
		PR: 7, GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(), Apps: len(apps),
	}

	measure := func(name string, fn func()) benchTiming {
		return benchMeasure(name, iters, func(int) { fn() })
	}

	// 1. Coverage pipeline, profile off vs on, serial ports of every app.
	serialCBs := make([]*corpus.Codebase, len(apps))
	for i, app := range apps {
		cb, err := corpus.Generate(app, corpus.Serial)
		if err != nil {
			b.Fatal(err)
		}
		serialCBs[i] = cb
	}
	off := measure("CoverageSerialProfileOff", func() {
		for _, cb := range serialCBs {
			if _, err := core.RunCoverage(cb); err != nil {
				b.Fatal(err)
			}
		}
	})
	on := measure("CoverageSerialProfileOn", func() {
		for _, cb := range serialCBs {
			rp, err := core.ProfileCodebase(cb, nil)
			if err != nil {
				b.Fatal(err)
			}
			if rp.Cost == nil || rp.Coverage == nil {
				b.Fatal("profile-on run missing an artifact")
			}
		}
	})
	traj.CoverageOffNs = off.NsPerOp
	traj.CoverageOnNs = on.NsPerOp
	traj.OverheadPct = 100 * (float64(on.NsPerOp) - float64(off.NsPerOp)) / float64(off.NsPerOp)

	// 2. Measured-set build: all ten ports of each app, fresh env per rep
	// so the per-app cache never short-circuits the work being measured.
	benches := []benchTiming{off, on}
	for _, app := range apps {
		name := app.Name
		bench := measure("MeasuredSet/"+name, func() {
			env := experiments.NewEnvWorkers(1)
			set, err := env.MeasuredSet(name)
			if err != nil {
				b.Fatal(err)
			}
			if len(set.Models) == 0 {
				b.Fatal("empty measured set")
			}
		})
		traj.MeasuredSets = append(traj.MeasuredSets,
			pr7AppCost{App: name, Ports: len(corpus.CXXModels()), NsPerOp: bench.NsPerOp})
		benches = append(benches, bench)
	}

	// 3. Navigation chart, modeled vs measured source (babelstream; fresh
	// env per rep, so each rep pays the full TED + profiling cost).
	navModeled := measure("NavChartModeled", func() {
		env := experiments.NewEnvWorkers(1)
		if _, err := env.NavChart("babelstream"); err != nil {
			b.Fatal(err)
		}
	})
	navMeasured := measure("NavChartMeasured", func() {
		env := experiments.NewEnvWorkers(1)
		if err := env.SetPhiSource(experiments.PhiSourceMeasured); err != nil {
			b.Fatal(err)
		}
		if _, err := env.NavChart("babelstream"); err != nil {
			b.Fatal(err)
		}
	})
	traj.NavChartModeledNs = navModeled.NsPerOp
	traj.NavChartMeasuredNs = navMeasured.NsPerOp
	benches = append(benches, navModeled, navMeasured)

	// 4. Determinism: two independently built measured charts, bit-identical
	// both structurally and as serialized JSON.
	var charts [2]interface{}
	var blobs [2][]byte
	for i := range charts {
		env := experiments.NewEnvWorkers(1)
		if err := env.SetPhiSource(experiments.PhiSourceMeasured); err != nil {
			b.Fatal(err)
		}
		ch, err := env.NavChart("babelstream")
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ch.WriteJSON(&buf); err != nil {
			b.Fatal(err)
		}
		charts[i], blobs[i] = ch, buf.Bytes()
	}
	traj.MeasuredChartsIdentical = reflect.DeepEqual(charts[0], charts[1]) && bytes.Equal(blobs[0], blobs[1])
	if !traj.MeasuredChartsIdentical {
		b.Fatal("measured navigation charts differ between independent builds")
	}

	traj.Benchmarks = benches
	benchWriteTrajectory(b, out, traj)
	b.Logf("bench trajectory written to %s (profile overhead %+.1f%%, measured navchart %.2fs vs modeled %.2fs)",
		out, traj.OverheadPct,
		time.Duration(traj.NavChartMeasuredNs).Seconds(), time.Duration(traj.NavChartModeledNs).Seconds())
}
