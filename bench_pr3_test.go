// Bench trajectory emitter (PR 3): one `go test -bench` invocation that
// measures the divergence-matrix sweep in its three modes — serial
// package path, cold parallel engine, warm cached engine — and writes the
// numbers to a JSON file so successive PRs accumulate comparable
// datapoints instead of prose-only benchmark notes.
//
// Run with (see EXPERIMENTS.md §Bench trajectory):
//
//	SILVERVALE_BENCH_JSON=BENCH_PR3.json \
//	  go test -run '^$' -bench '^BenchmarkPR3Trajectory$' .
//
// Without SILVERVALE_BENCH_JSON set the benchmark skips, so plain
// `go test -bench .` sweeps are not slowed down.
package silvervale

import (
	"runtime"
	"testing"

	"silvervale/internal/core"
)

type pr3Trajectory struct {
	PR         int           `json:"pr"`
	GoVersion  string        `json:"go"`
	NumCPU     int           `json:"num_cpu"`
	App        string        `json:"app"`
	Metric     string        `json:"metric"`
	Benchmarks []benchTiming `json:"benchmarks"`
}

func BenchmarkPR3Trajectory(b *testing.B) {
	out := benchJSONPath(b)
	idxs, order := benchIndexesFor(b, "tealeaf")

	// Each mode is measured with the shared direct-measurement scheme
	// (benchMeasure in benchharness_test.go).
	measure := func(name string, iters int, fn func() error) benchTiming {
		return benchMeasure(name, iters, func(int) {
			if err := fn(); err != nil {
				b.Fatal(err)
			}
		})
	}

	traj := pr3Trajectory{
		PR:        3,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		App:       "tealeaf",
		Metric:    core.MetricTsem,
	}
	traj.Benchmarks = append(traj.Benchmarks, measure("MatrixSerial", 1, func() error {
		_, err := core.Matrix(idxs, order, core.MetricTsem)
		return err
	}))
	traj.Benchmarks = append(traj.Benchmarks, measure("MatrixParallel", 1, func() error {
		engine := core.NewEngineWithCache(0, nil)
		_, err := engine.Matrix(idxs, order, core.MetricTsem)
		return err
	}))
	warm := core.NewEngine(0)
	if _, err := warm.Matrix(idxs, order, core.MetricTsem); err != nil {
		b.Fatal(err)
	}
	traj.Benchmarks = append(traj.Benchmarks, measure("MatrixCached", 50, func() error {
		_, err := warm.Matrix(idxs, order, core.MetricTsem)
		return err
	}))

	benchWriteTrajectory(b, out, traj)
	b.Logf("bench trajectory written to %s", out)
}
