// Bench trajectory emitter (PR 3): one `go test -bench` invocation that
// measures the divergence-matrix sweep in its three modes — serial
// package path, cold parallel engine, warm cached engine — and writes the
// numbers to a JSON file so successive PRs accumulate comparable
// datapoints instead of prose-only benchmark notes.
//
// Run with (see EXPERIMENTS.md §Bench trajectory):
//
//	SILVERVALE_BENCH_JSON=BENCH_PR3.json \
//	  go test -run '^$' -bench '^BenchmarkPR3Trajectory$' .
//
// Without SILVERVALE_BENCH_JSON set the benchmark skips, so plain
// `go test -bench .` sweeps are not slowed down.
package silvervale

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"silvervale/internal/core"
)

type pr3Bench struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

type pr3Trajectory struct {
	PR         int        `json:"pr"`
	GoVersion  string     `json:"go"`
	NumCPU     int        `json:"num_cpu"`
	App        string     `json:"app"`
	Metric     string     `json:"metric"`
	Benchmarks []pr3Bench `json:"benchmarks"`
}

func BenchmarkPR3Trajectory(b *testing.B) {
	out := os.Getenv("SILVERVALE_BENCH_JSON")
	if out == "" {
		b.Skip("set SILVERVALE_BENCH_JSON=<path> to emit the bench trajectory")
	}
	idxs, order := benchIndexesFor(b, "tealeaf")

	// testing.Benchmark deadlocks when invoked from inside a running
	// benchmark (both take the package-global benchmark lock), so each mode
	// is measured directly with wall-clock plus MemStats deltas — the same
	// counters the -benchmem output is derived from.
	measure := func(name string, iters int, fn func() error) pr3Bench {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		n := int64(iters)
		return pr3Bench{
			Name:        name,
			Iterations:  iters,
			NsPerOp:     elapsed.Nanoseconds() / n,
			BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
			AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
		}
	}

	traj := pr3Trajectory{
		PR:        3,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		App:       "tealeaf",
		Metric:    core.MetricTsem,
	}
	traj.Benchmarks = append(traj.Benchmarks, measure("MatrixSerial", 1, func() error {
		_, err := core.Matrix(idxs, order, core.MetricTsem)
		return err
	}))
	traj.Benchmarks = append(traj.Benchmarks, measure("MatrixParallel", 1, func() error {
		engine := core.NewEngineWithCache(0, nil)
		_, err := engine.Matrix(idxs, order, core.MetricTsem)
		return err
	}))
	warm := core.NewEngine(0)
	if _, err := warm.Matrix(idxs, order, core.MetricTsem); err != nil {
		b.Fatal(err)
	}
	traj.Benchmarks = append(traj.Benchmarks, measure("MatrixCached", 50, func() error {
		_, err := warm.Matrix(idxs, order, core.MetricTsem)
		return err
	}))

	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("bench trajectory written to %s", out)
}
