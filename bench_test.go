// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see the per-experiment index in DESIGN.md), plus
// micro-benchmarks for the expensive substrates (TED, pq-grams, O(NP)
// diff, preprocessing, full-unit indexing).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks share one experiment environment, so indexes and
// divergence matrices are computed once and reused — the numbers measure
// regeneration cost, with the first iteration paying the real pipeline
// cost.
package silvervale

import (
	"math/rand"
	"sync"
	"testing"

	"silvervale/internal/core"
	"silvervale/internal/corpus"
	"silvervale/internal/experiments"
	"silvervale/internal/minic"
	"silvervale/internal/obs"
	"silvervale/internal/seqdiff"
	"silvervale/internal/ted"
	"silvervale/internal/tree"
)

var benchEnv = experiments.NewEnv()

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := benchEnv.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Text) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

// --- one benchmark per table / figure ----------------------------------------

func BenchmarkTable1Metrics(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2MiniApps(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3Platforms(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig1TEDExample(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFig4TeaLeafTsem(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5TeaLeafAllMetrics(b *testing.B) {
	benchExperiment(b, "fig5")
}
func BenchmarkFig6FortranDendrograms(b *testing.B) {
	benchExperiment(b, "fig6")
}
func BenchmarkFig7MiniBUDEHeatmap(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8CloverLeafHeatmap(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig9FromSerial(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig10FromCUDA(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFig11TeaLeafCascade(b *testing.B)   { benchExperiment(b, "fig11") }
func BenchmarkFig12CloverLeafCascade(b *testing.B) {
	benchExperiment(b, "fig12")
}
func BenchmarkFig13CloverLeafNavigation(b *testing.B) {
	benchExperiment(b, "fig13")
}
func BenchmarkFig14TeaLeafNavigation(b *testing.B) {
	benchExperiment(b, "fig14")
}
func BenchmarkFig15Scenario(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkAblationTEDCosts(b *testing.B)   { benchExperiment(b, "ablation-costs") }
func BenchmarkAblationPQGramMode(b *testing.B) { benchExperiment(b, "ablation-approx") }

// --- substrate micro-benchmarks -----------------------------------------------

func randomBenchTree(r *rand.Rand, n int) *tree.Node {
	labels := []string{"A", "B", "C", "D", "E", "F"}
	nodes := []*tree.Node{tree.New(labels[0])}
	for i := 1; i < n; i++ {
		parent := nodes[r.Intn(len(nodes))]
		child := tree.New(labels[r.Intn(len(labels))])
		parent.Add(child)
		nodes = append(nodes, child)
	}
	return nodes[0]
}

func BenchmarkTEDMedium(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	t1 := randomBenchTree(r, 300)
	t2 := randomBenchTree(r, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ted.Distance(t1, t2)
	}
}

func BenchmarkTEDUnitScale(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	t1 := randomBenchTree(r, 1500)
	t2 := randomBenchTree(r, 1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ted.Distance(t1, t2)
	}
}

// BenchmarkTEDvsPQGram is the ablation for the paper's future-work note on
// TED memory/time: the pq-gram approximation against exact TED on the same
// inputs.
func BenchmarkTEDvsPQGramApprox(b *testing.B) {
	r := rand.New(rand.NewSource(13))
	t1 := randomBenchTree(r, 1500)
	t2 := randomBenchTree(r, 1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ted.ApproxDistance(t1, t2)
	}
}

// --- divergence engine benchmarks ---------------------------------------------
//
// Serial vs parallel vs cached Matrix over the TeaLeaf and CloverLeaf
// corpora (see EXPERIMENTS.md §Engine for recorded numbers). Serial is
// the one-shot package path; Parallel is a fresh NumCPU engine per
// iteration with caching disabled (pure worker-pool speedup); Cached
// reuses one engine across iterations so every TED after the first
// iteration is answered from the content-addressed memo.

var engineBenchIndexes = struct {
	sync.Once
	idxs  map[string]map[string]*core.Index
	order map[string][]string
	err   error
}{}

func benchIndexesFor(b *testing.B, appName string) (map[string]*core.Index, []string) {
	b.Helper()
	engineBenchIndexes.Do(func() {
		engineBenchIndexes.idxs = map[string]map[string]*core.Index{}
		engineBenchIndexes.order = map[string][]string{}
		for _, name := range []string{"tealeaf", "cloverleaf"} {
			app, err := corpus.AppByName(name)
			if err != nil {
				engineBenchIndexes.err = err
				return
			}
			idxs := map[string]*core.Index{}
			var order []string
			for _, m := range corpus.ModelsFor(app) {
				cb, err := corpus.Generate(app, m)
				if err != nil {
					engineBenchIndexes.err = err
					return
				}
				idx, err := core.IndexCodebase(cb, core.Options{})
				if err != nil {
					engineBenchIndexes.err = err
					return
				}
				idxs[string(m)] = idx
				order = append(order, string(m))
			}
			engineBenchIndexes.idxs[name] = idxs
			engineBenchIndexes.order[name] = order
		}
	})
	if engineBenchIndexes.err != nil {
		b.Fatal(engineBenchIndexes.err)
	}
	return engineBenchIndexes.idxs[appName], engineBenchIndexes.order[appName]
}

func benchMatrix(b *testing.B, appName string, run func(idxs map[string]*core.Index, order []string) error) {
	idxs, order := benchIndexesFor(b, appName)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(idxs, order); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatrixSerial(b *testing.B) {
	benchMatrix(b, "tealeaf", func(idxs map[string]*core.Index, order []string) error {
		_, err := core.Matrix(idxs, order, core.MetricTsem)
		return err
	})
}

func BenchmarkMatrixParallel(b *testing.B) {
	benchMatrix(b, "tealeaf", func(idxs map[string]*core.Index, order []string) error {
		engine := core.NewEngineWithCache(0, nil) // cold, uncached: pool speedup only
		_, err := engine.Matrix(idxs, order, core.MetricTsem)
		return err
	})
}

// BenchmarkMatrixObsEnabled is BenchmarkMatrixParallel with a live
// recorder: same cold uncached engine, but every cell emits spans and the
// pool feeds the engine.* counters/histograms. BenchmarkMatrixParallel is
// the obs-disabled baseline for both comparisons the observability design
// budgets for (DESIGN.md §Observability): disabled overhead must be
// indistinguishable from the pre-instrumentation engine (<2%), enabled
// overhead a few percent.
func BenchmarkMatrixObsEnabled(b *testing.B) {
	benchMatrix(b, "tealeaf", func(idxs map[string]*core.Index, order []string) error {
		engine := core.NewEngineObs(0, nil, obs.NewRecorder())
		_, err := engine.Matrix(idxs, order, core.MetricTsem)
		return err
	})
}

func BenchmarkMatrixCached(b *testing.B) {
	idxs, order := benchIndexesFor(b, "tealeaf")
	engine := core.NewEngine(0)
	if _, err := engine.Matrix(idxs, order, core.MetricTsem); err != nil {
		b.Fatal(err) // warm the memo; iterations measure the repeated-sweep cost
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Matrix(idxs, order, core.MetricTsem); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatrixSerialCloverLeaf(b *testing.B) {
	benchMatrix(b, "cloverleaf", func(idxs map[string]*core.Index, order []string) error {
		_, err := core.Matrix(idxs, order, core.MetricTsem)
		return err
	})
}

func BenchmarkMatrixParallelCloverLeaf(b *testing.B) {
	benchMatrix(b, "cloverleaf", func(idxs map[string]*core.Index, order []string) error {
		engine := core.NewEngineWithCache(0, nil)
		_, err := engine.Matrix(idxs, order, core.MetricTsem)
		return err
	})
}

func BenchmarkMatrixCachedCloverLeaf(b *testing.B) {
	idxs, order := benchIndexesFor(b, "cloverleaf")
	engine := core.NewEngine(0)
	if _, err := engine.Matrix(idxs, order, core.MetricTsem); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Matrix(idxs, order, core.MetricTsem); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexSerialTeaLeafCUDA is the Workers:1 baseline for
// BenchmarkIndexTeaLeafCUDA (which uses the default NumCPU pool).
func BenchmarkIndexSerialTeaLeafCUDA(b *testing.B) {
	app, err := corpus.AppByName("tealeaf")
	if err != nil {
		b.Fatal(err)
	}
	cb, err := corpus.Generate(app, corpus.CUDA)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.IndexCodebase(cb, core.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLCSDiff(b *testing.B) {
	r := rand.New(rand.NewSource(17))
	mk := func() []string {
		lines := make([]string, 2000)
		for i := range lines {
			lines[i] = string(rune('a' + r.Intn(6)))
		}
		return lines
	}
	a, c := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = seqdiff.LCSStrings(a, c)
	}
}

func BenchmarkPreprocessSYCLUnit(b *testing.B) {
	app, err := corpus.AppByName("babelstream")
	if err != nil {
		b.Fatal(err)
	}
	cb, err := corpus.Generate(app, corpus.SYCLACC)
	if err != nil {
		b.Fatal(err)
	}
	provider := &minic.MapProvider{Files: cb.Files, System: cb.System}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp := minic.NewPreprocessor(provider, nil)
		if _, err := pp.Preprocess("main.cpp"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexTeaLeafCUDA(b *testing.B) {
	app, err := corpus.AppByName("tealeaf")
	if err != nil {
		b.Fatal(err)
	}
	cb, err := corpus.Generate(app, corpus.CUDA)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.IndexCodebase(cb, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoverageRun(b *testing.B) {
	app, err := corpus.AppByName("babelstream")
	if err != nil {
		b.Fatal(err)
	}
	cb, err := corpus.Generate(app, corpus.Serial)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunCoverage(cb); err != nil {
			b.Fatal(err)
		}
	}
}
