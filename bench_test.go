// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see the per-experiment index in DESIGN.md), plus
// micro-benchmarks for the expensive substrates (TED, pq-grams, O(NP)
// diff, preprocessing, full-unit indexing).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks share one experiment environment, so indexes and
// divergence matrices are computed once and reused — the numbers measure
// regeneration cost, with the first iteration paying the real pipeline
// cost.
package silvervale

import (
	"math/rand"
	"testing"

	"silvervale/internal/core"
	"silvervale/internal/corpus"
	"silvervale/internal/experiments"
	"silvervale/internal/minic"
	"silvervale/internal/seqdiff"
	"silvervale/internal/ted"
	"silvervale/internal/tree"
)

var benchEnv = experiments.NewEnv()

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := benchEnv.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Text) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

// --- one benchmark per table / figure ----------------------------------------

func BenchmarkTable1Metrics(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2MiniApps(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3Platforms(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig1TEDExample(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFig4TeaLeafTsem(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5TeaLeafAllMetrics(b *testing.B) {
	benchExperiment(b, "fig5")
}
func BenchmarkFig6FortranDendrograms(b *testing.B) {
	benchExperiment(b, "fig6")
}
func BenchmarkFig7MiniBUDEHeatmap(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8CloverLeafHeatmap(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig9FromSerial(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig10FromCUDA(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFig11TeaLeafCascade(b *testing.B)   { benchExperiment(b, "fig11") }
func BenchmarkFig12CloverLeafCascade(b *testing.B) {
	benchExperiment(b, "fig12")
}
func BenchmarkFig13CloverLeafNavigation(b *testing.B) {
	benchExperiment(b, "fig13")
}
func BenchmarkFig14TeaLeafNavigation(b *testing.B) {
	benchExperiment(b, "fig14")
}
func BenchmarkFig15Scenario(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkAblationTEDCosts(b *testing.B)   { benchExperiment(b, "ablation-costs") }
func BenchmarkAblationPQGramMode(b *testing.B) { benchExperiment(b, "ablation-approx") }

// --- substrate micro-benchmarks -----------------------------------------------

func randomBenchTree(r *rand.Rand, n int) *tree.Node {
	labels := []string{"A", "B", "C", "D", "E", "F"}
	nodes := []*tree.Node{tree.New(labels[0])}
	for i := 1; i < n; i++ {
		parent := nodes[r.Intn(len(nodes))]
		child := tree.New(labels[r.Intn(len(labels))])
		parent.Add(child)
		nodes = append(nodes, child)
	}
	return nodes[0]
}

func BenchmarkTEDMedium(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	t1 := randomBenchTree(r, 300)
	t2 := randomBenchTree(r, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ted.Distance(t1, t2)
	}
}

func BenchmarkTEDUnitScale(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	t1 := randomBenchTree(r, 1500)
	t2 := randomBenchTree(r, 1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ted.Distance(t1, t2)
	}
}

// BenchmarkTEDvsPQGram is the ablation for the paper's future-work note on
// TED memory/time: the pq-gram approximation against exact TED on the same
// inputs.
func BenchmarkTEDvsPQGramApprox(b *testing.B) {
	r := rand.New(rand.NewSource(13))
	t1 := randomBenchTree(r, 1500)
	t2 := randomBenchTree(r, 1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ted.ApproxDistance(t1, t2)
	}
}

func BenchmarkLCSDiff(b *testing.B) {
	r := rand.New(rand.NewSource(17))
	mk := func() []string {
		lines := make([]string, 2000)
		for i := range lines {
			lines[i] = string(rune('a' + r.Intn(6)))
		}
		return lines
	}
	a, c := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = seqdiff.LCSStrings(a, c)
	}
}

func BenchmarkPreprocessSYCLUnit(b *testing.B) {
	app, err := corpus.AppByName("babelstream")
	if err != nil {
		b.Fatal(err)
	}
	cb, err := corpus.Generate(app, corpus.SYCLACC)
	if err != nil {
		b.Fatal(err)
	}
	provider := &minic.MapProvider{Files: cb.Files, System: cb.System}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp := minic.NewPreprocessor(provider, nil)
		if _, err := pp.Preprocess("main.cpp"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexTeaLeafCUDA(b *testing.B) {
	app, err := corpus.AppByName("tealeaf")
	if err != nil {
		b.Fatal(err)
	}
	cb, err := corpus.Generate(app, corpus.CUDA)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.IndexCodebase(cb, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoverageRun(b *testing.B) {
	app, err := corpus.AppByName("babelstream")
	if err != nil {
		b.Fatal(err)
	}
	cb, err := corpus.Generate(app, corpus.Serial)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunCoverage(cb); err != nil {
			b.Fatal(err)
		}
	}
}
