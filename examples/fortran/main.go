// Fortran model analysis (Section V.B): the seven BabelStream Fortran
// variants, and the OpenACC finding — directives that are visible in the
// source but introduce no semantic tokens at all (a GCC
// quality-of-implementation issue the metric surfaces automatically).
//
// Run with: go run ./examples/fortran
package main

import (
	"fmt"
	"log"

	"silvervale"
)

func main() {
	const app = "babelstream-fortran"
	models := []silvervale.Model{
		silvervale.FSequential, silvervale.FArray, silvervale.FDoConcurrent,
		silvervale.FOpenMP, silvervale.FOpenMPTaskloop,
		silvervale.FOpenACC, silvervale.FOpenACCArray,
	}
	idxs := map[string]*silvervale.Index{}
	var order []string
	for _, m := range models {
		cb, err := silvervale.Generate(app, m)
		if err != nil {
			log.Fatal(err)
		}
		idx, err := silvervale.IndexCodebase(cb, silvervale.IndexOptions{})
		if err != nil {
			log.Fatal(err)
		}
		idxs[string(m)] = idx
		order = append(order, string(m))
	}

	fmt.Println("BabelStream Fortran divergence from f-sequential:")
	fmt.Printf("%-16s %8s %8s %8s\n", "model", "source", "tsrc", "tsem")
	rows := map[string][3]float64{}
	for i, metric := range []string{silvervale.MetricSource, silvervale.MetricTsrc, silvervale.MetricTsem} {
		from, err := silvervale.DivergenceFromBase(idxs, "f-sequential", order, metric)
		if err != nil {
			log.Fatal(err)
		}
		for m, v := range from {
			r := rows[m]
			r[i] = v
			rows[m] = r
		}
	}
	for _, m := range order {
		r := rows[m]
		fmt.Printf("%-16s %8.3f %8.3f %8.3f\n", m, r[0], r[1], r[2])
	}
	fmt.Println()
	fmt.Println("Note f-acc: visible in Source and T_src (the directive comments are")
	fmt.Println("right there in the file) yet exactly 0.000 at T_sem — GFortran's")
	fmt.Println("frontend ascribes OpenACC no semantics, matching the port authors'")
	fmt.Println("single-threaded performance report.")
}
