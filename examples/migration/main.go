// Migration study (Section V.D, Fig. 9/10): an existing CUDA codebase must
// be ported to run on new vendors' hardware. Is it cheaper to port from the
// CUDA code, or to go back to the serial version and port from there?
//
// Run with: go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"silvervale"
)

func main() {
	const app = "tealeaf"
	models := []silvervale.Model{
		silvervale.Serial, silvervale.CUDA, silvervale.HIP,
		silvervale.OpenMPTarget, silvervale.Kokkos,
		silvervale.SYCLACC, silvervale.SYCLUSM,
	}
	idxs := map[string]*silvervale.Index{}
	var order []string
	for _, m := range models {
		cb, err := silvervale.Generate(app, m)
		if err != nil {
			log.Fatal(err)
		}
		idx, err := silvervale.IndexCodebase(cb, silvervale.IndexOptions{})
		if err != nil {
			log.Fatal(err)
		}
		idxs[string(m)] = idx
		order = append(order, string(m))
	}

	fromSerial, err := silvervale.DivergenceFromBase(idxs, "serial", order, silvervale.MetricTsem)
	if err != nil {
		log.Fatal(err)
	}
	fromCUDA, err := silvervale.DivergenceFromBase(idxs, "cuda", order, silvervale.MetricTsem)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TeaLeaf T_sem divergence: porting cost to each target model\n\n")
	fmt.Printf("%-12s %14s %14s %s\n", "target", "from serial", "from CUDA", "cheaper start")
	targets := []string{"hip", "omp-target", "kokkos", "sycl-acc", "sycl-usm"}
	for _, m := range targets {
		cheaper := "serial"
		if fromCUDA[m] < fromSerial[m] {
			cheaper = "CUDA"
		}
		fmt.Printf("%-12s %14.3f %14.3f %s\n", m, fromSerial[m], fromCUDA[m], cheaper)
	}
	fmt.Println()
	fmt.Println("CUDA already encodes platform-specific semantics (thread indexing,")
	fmt.Println("explicit transfers, block reductions); except for the HIP sibling,")
	fmt.Println("starting over from serial is the more productive path — and OpenMP")
	fmt.Println("target is the cheapest first hop.")
}
