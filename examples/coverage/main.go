// Coverage-masked metrics (Table I's +coverage variants): run the serial
// mini-app in the bundled interpreter on a reduced problem, mask the trees
// down to executed regions, and compare the metric values — then round-trip
// the index through the portable Codebase DB.
//
// Run with: go run ./examples/coverage
package main

import (
	"fmt"
	"log"

	"silvervale"
)

func main() {
	cb, err := silvervale.Generate("babelstream", silvervale.Serial)
	if err != nil {
		log.Fatal(err)
	}

	// plain index
	plain, err := silvervale.IndexCodebase(cb, silvervale.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// coverage run: execute the serial port with its built-in verification
	prof, err := silvervale.RunCoverage(cb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("coverage profile (executed lines per file):")
	fmt.Print(prof.Summary())

	masked, err := silvervale.IndexCodebase(cb, silvervale.IndexOptions{Coverage: prof})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntree sizes, full vs coverage-masked:")
	fmt.Printf("%-8s %8s %8s\n", "metric", "full", "masked")
	for _, metric := range []string{silvervale.MetricTsrc, silvervale.MetricTsem, silvervale.MetricTir} {
		full, cov := 0, 0
		for i := range plain.Units {
			full += plain.Units[i].Trees[metric].Size()
			cov += masked.Units[i].Trees[metric].Size()
		}
		fmt.Printf("%-8s %8d %8d\n", metric, full, cov)
	}
	fmt.Println("\nmasking removes provably-unexecuted regions, so divergence is")
	fmt.Println("measured only over code the reduced deck actually exercises.")
}
