// Navigation chart (Section VI, Fig. 13/14): combine the TBMD productivity
// metric with the performance-portability metric Φ to choose a programming
// model, instead of looking at either dimension alone.
//
// Run with: go run ./examples/navigation
package main

import (
	"fmt"
	"log"

	"silvervale"
)

func main() {
	const app = "babelstream"
	models := silvervale.ModelsFor(mustApp(app))

	// index every model and measure divergence from serial
	idxs := map[string]*silvervale.Index{}
	var order []string
	for _, m := range models {
		cb, err := silvervale.Generate(app, m)
		if err != nil {
			log.Fatal(err)
		}
		idx, err := silvervale.IndexCodebase(cb, silvervale.IndexOptions{})
		if err != nil {
			log.Fatal(err)
		}
		idxs[string(m)] = idx
		order = append(order, string(m))
	}
	tsem, err := silvervale.DivergenceFromBase(idxs, "serial", order, silvervale.MetricTsem)
	if err != nil {
		log.Fatal(err)
	}
	tsrc, err := silvervale.DivergenceFromBase(idxs, "serial", order, silvervale.MetricTsrc)
	if err != nil {
		log.Fatal(err)
	}

	// join with Φ over the six platforms of Table III
	plats := silvervale.Platforms()
	chart := silvervale.NavigationChart(app, tsem, tsrc, models, plats)
	fmt.Printf("%s navigation chart (Φ over %d platforms vs divergence from serial)\n\n",
		app, len(plats))
	for _, p := range chart.Points {
		fmt.Println(p.Row())
	}
	best, err := chart.Best(1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest productivity/portability tradeoff: %s\n", best.Model)
	fmt.Println("(models with phi=0 are not portable across the full platform set;")
	fmt.Println(" the T_src-vs-T_sem gap shows perceived vs actual semantic cost)")
}

func mustApp(name string) silvervale.App {
	for _, a := range silvervale.Apps() {
		if a.Name == name {
			return a
		}
	}
	log.Fatalf("unknown app %s", name)
	return silvervale.App{}
}
