// Quickstart: measure how far a programming-model port diverges from the
// serial baseline of a mini-app, under every metric of Table I.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"silvervale"
)

func main() {
	// 1. Generate (or on a real project: ingest) the serial baseline and a
	//    port. BabelStream is the five-kernel STREAM benchmark.
	serial, err := silvervale.Generate("babelstream", silvervale.Serial)
	if err != nil {
		log.Fatal(err)
	}
	omp, err := silvervale.Generate("babelstream", silvervale.OpenMP)
	if err != nil {
		log.Fatal(err)
	}
	cuda, err := silvervale.Generate("babelstream", silvervale.CUDA)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Index each codebase: preprocess, parse, and extract the
	//    semantic-bearing trees (T_src, T_sem, T_sem+i, T_ir) plus the
	//    perceived metrics (SLOC, LLOC, Source).
	baseIdx, err := silvervale.IndexCodebase(serial, silvervale.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ompIdx, err := silvervale.IndexCodebase(omp, silvervale.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cudaIdx, err := silvervale.IndexCodebase(cuda, silvervale.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compare: normalised divergence of each port from serial.
	fmt.Println("BabelStream divergence from serial (0 = identical):")
	fmt.Printf("%-10s %10s %10s\n", "metric", "OpenMP", "CUDA")
	for _, metric := range silvervale.Metrics() {
		do, err := silvervale.Diverge(baseIdx, ompIdx, metric)
		if err != nil {
			log.Fatal(err)
		}
		dc, err := silvervale.Diverge(baseIdx, cudaIdx, metric)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.3f %10.3f\n", metric, do.Norm, dc.Norm)
	}
	fmt.Println()
	fmt.Println("Reading: OpenMP's pragmas barely perturb the perceived metrics but")
	fmt.Println("carry compiler-level semantics (tsem > tsrc); CUDA restructures the")
	fmt.Println("kernels and pays across every level.")
}
