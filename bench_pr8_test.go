// Bench trajectory emitter (PR 8): one `go test -bench` invocation that
// measures the incremental recomputation engine end to end and writes the
// numbers to JSON:
//
//  1. cold sweep: fresh engine, index every TeaLeaf port, full tsem
//     matrix — the baseline a CI run pays today;
//  2. whole-unit-warm re-sweep: nothing edited, every unit served from
//     the prior index and every cell from the engine's memo (hard assert:
//     zero reparses, zero recomputes, ≥ 100× faster than cold);
//  3. incremental one-function-edit re-sweep: a function appended to the
//     TeaLeaf driver unit; hard asserts that exactly one unit reparses
//     and exactly the n−1 cells touching the edited port recompute (the
//     per-cell TED for the unchanged kernels role pair is served by the
//     distance memo; the changed driver pair recomputes exactly);
//  4. determinism: the final warm matrix must be bit-identical to a
//     fresh cold engine's sweep of the edited corpus (hard assert).
//
// Run with (see EXPERIMENTS.md §Bench trajectory):
//
//	SILVERVALE_BENCH_JSON=BENCH_PR8.json \
//	  go test -run '^$' -bench '^BenchmarkPR8Trajectory$' -timeout 20m .
//
// Without SILVERVALE_BENCH_JSON set the benchmark skips, so plain
// `go test -bench .` sweeps are not slowed down.
package silvervale

import (
	"runtime"
	"testing"
	"time"

	"silvervale/internal/core"
)

type pr8Trajectory struct {
	PR        int    `json:"pr"`
	GoVersion string `json:"go"`
	NumCPU    int    `json:"num_cpu"`

	App   string `json:"app"`
	Ports int    `json:"ports"`
	Units int    `json:"units"`
	Cells int    `json:"cells"`

	ColdNs       int64 `json:"cold_ns"`
	WarmNoEditNs int64 `json:"warm_no_edit_ns"`
	IncrEditNs   int64 `json:"incr_edit_ns"`

	WarmSpeedup float64 `json:"warm_speedup"`
	EditSpeedup float64 `json:"edit_speedup"`

	EditUnitsReparsed   int `json:"edit_units_reparsed"`
	EditCellsRecomputed int `json:"edit_cells_recomputed"`
	EditCellsReused     int `json:"edit_cells_reused"`

	BitIdentical bool `json:"warm_matrix_bit_identical_to_cold"`

	Benchmarks []benchTiming `json:"benchmarks"`
}

func BenchmarkPR8Trajectory(b *testing.B) {
	out := benchJSONPath(b)
	const iters = 3 // per-leg repetitions; shared benchMeasure scheme

	cbs, order := benchCodebases(b, "tealeaf")
	n := len(order)
	cells := n * (n - 1) / 2
	units := 0
	for _, cb := range cbs {
		units += len(cb.Units)
	}
	traj := pr8Trajectory{
		PR: 8, GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(),
		App: "tealeaf", Ports: n, Units: units, Cells: cells,
	}

	measure := func(name string, fn func(rep int)) benchTiming {
		return benchMeasure(name, iters, fn)
	}

	// 1. Cold: fresh engine per rep, full frontend + full matrix.
	cold := measure("ColdSweep", func(int) {
		e := core.NewEngine(1)
		benchIncrSweep(b, e, cbs, nil, order)
	})

	// The resident engine the warm legs run against.
	e := core.NewEngine(1)
	prior, _ := benchIncrSweep(b, e, cbs, nil, order)

	// 2. Whole-unit-warm: nothing edited — every unit and every cell
	// must be served from the warm state.
	warm := measure("WarmNoEditResweep", func(int) {
		before := e.IncrStats()
		prior, _ = benchIncrSweep(b, e, cbs, prior, order)
		d := e.IncrStats().Delta(before)
		if d.UnitsReparsed != 0 || d.CellsRecomputed != 0 {
			b.Fatalf("no-edit re-sweep did work: %+v", d)
		}
	})

	// 3. One-function edit to the TeaLeaf driver unit. Each rep appends
	// a distinct function so every rep pays the dirty work (instead of
	// hitting the cells memoised by the previous rep).
	victim := cbs["serial"]
	driverFile := benchDriverFile(b, victim)
	baseSrc := victim.Files[driverFile]
	var lastDelta core.IncrStats
	edit := measure("IncrementalOneFunctionEdit", func(rep int) {
		benchAppendFunc(victim, driverFile, baseSrc, "pr8_extra", rep)
		before := e.IncrStats()
		prior, _ = benchIncrSweep(b, e, cbs, prior, order)
		lastDelta = e.IncrStats().Delta(before)
		// Hard asserts: exactly the edited unit reparses; exactly the
		// n−1 cells pairing the edited port recompute.
		if lastDelta.UnitsReparsed != 1 {
			b.Fatalf("edit reparsed %d units, want 1", lastDelta.UnitsReparsed)
		}
		if lastDelta.CellsRecomputed != n-1 {
			b.Fatalf("edit recomputed %d cells, want %d", lastDelta.CellsRecomputed, n-1)
		}
		if lastDelta.CellsReused != cells-(n-1) {
			b.Fatalf("edit reused %d cells, want %d", lastDelta.CellsReused, cells-(n-1))
		}
	})
	traj.EditUnitsReparsed = lastDelta.UnitsReparsed
	traj.EditCellsRecomputed = lastDelta.CellsRecomputed
	traj.EditCellsReused = lastDelta.CellsReused

	// 4. Determinism: the resident engine's final matrix vs a fresh cold
	// engine over the edited corpus, bit for bit.
	_, warmMatrix := benchIncrSweep(b, e, cbs, prior, order)
	fresh := core.NewEngine(1)
	_, coldMatrix := benchIncrSweep(b, fresh, cbs, nil, order)
	traj.BitIdentical = benchSameBits(warmMatrix, coldMatrix)
	if !traj.BitIdentical {
		b.Fatal("warm incremental matrix differs from a cold sweep of the edited corpus")
	}

	traj.ColdNs = cold.NsPerOp
	traj.WarmNoEditNs = warm.NsPerOp
	traj.IncrEditNs = edit.NsPerOp
	traj.WarmSpeedup = float64(cold.NsPerOp) / float64(warm.NsPerOp)
	traj.EditSpeedup = float64(cold.NsPerOp) / float64(edit.NsPerOp)
	// The no-edit warm re-sweep is pure memo traffic: anything under
	// 100× means the incremental layer is broken, not just slow. The
	// one-function-edit re-sweep keeps an exactness floor — the n−1
	// dirty cells each recompute one exact driver-pair TED — so its
	// gate is lower; the measured headroom is recorded in the JSON.
	if traj.WarmSpeedup < 100 {
		b.Fatalf("warm re-sweep only %.1fx faster than cold", traj.WarmSpeedup)
	}
	if traj.EditSpeedup < 10 {
		b.Fatalf("one-function-edit re-sweep only %.1fx faster than cold", traj.EditSpeedup)
	}

	traj.Benchmarks = []benchTiming{cold, warm, edit}
	benchWriteTrajectory(b, out, traj)
	b.Logf("bench trajectory written to %s (cold %.2fs, warm %.2fms ×%.0f, edit %.2fms ×%.0f)",
		out, time.Duration(traj.ColdNs).Seconds(),
		float64(traj.WarmNoEditNs)/1e6, traj.WarmSpeedup,
		float64(traj.IncrEditNs)/1e6, traj.EditSpeedup)
}
