// Bench trajectory emitter (PR 4): one `go test -bench` invocation that
// measures the full TeaLeaf T_sem sweep — generate, index, divergence
// matrix — in its three persistence modes: cold (empty artifact store),
// warm (second run over the same store), and readonly (warm lookups, no
// write-back). The warm/readonly matrices are verified bit-identical to
// the cold one before timings are written, so the JSON never reports a
// speedup bought with changed numbers.
//
// Run with (see EXPERIMENTS.md §Bench trajectory):
//
//	SILVERVALE_BENCH_JSON=BENCH_PR4.json \
//	  go test -run '^$' -bench '^BenchmarkPR4Trajectory$' .
//
// Without SILVERVALE_BENCH_JSON set the benchmark skips, so plain
// `go test -bench .` sweeps are not slowed down.
package silvervale

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"silvervale/internal/core"
	"silvervale/internal/corpus"
	"silvervale/internal/store"
	"silvervale/internal/ted"
)

type pr4Bench struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	StoreHits   uint64 `json:"store_hits"`
	StoreMisses uint64 `json:"store_misses"`
}

type pr4Trajectory struct {
	PR            int        `json:"pr"`
	GoVersion     string     `json:"go"`
	NumCPU        int        `json:"num_cpu"`
	App           string     `json:"app"`
	Metric        string     `json:"metric"`
	WarmSpeedup   float64    `json:"warm_speedup_vs_cold"`
	BitIdentical  bool       `json:"warm_matrix_bit_identical"`
	Benchmarks    []pr4Bench `json:"benchmarks"`
	StoreDiskInfo string     `json:"store_disk_info"`
}

// pr4Sweep runs the whole pipeline against one store handle: generate and
// index every TeaLeaf model through the engine (warm-starting from the
// index tier when records exist), then compute the T_sem matrix (warm-
// starting distances).
func pr4Sweep(b *testing.B, st *store.Store) [][]float64 {
	b.Helper()
	app, err := corpus.AppByName("tealeaf")
	if err != nil {
		b.Fatal(err)
	}
	engine := core.NewEngineStore(0, ted.NewCache(), nil, st)
	idxs := map[string]*core.Index{}
	var order []string
	for _, m := range corpus.ModelsFor(app) {
		cb, err := corpus.Generate(app, m)
		if err != nil {
			b.Fatal(err)
		}
		idx, err := engine.IndexCodebase(cb, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		idxs[string(m)] = idx
		order = append(order, string(m))
	}
	m, err := engine.Matrix(idxs, order, core.MetricTsem)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func pr4SameBits(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

func BenchmarkPR4Trajectory(b *testing.B) {
	out := os.Getenv("SILVERVALE_BENCH_JSON")
	if out == "" {
		b.Skip("set SILVERVALE_BENCH_JSON=<path> to emit the bench trajectory")
	}
	dir := b.TempDir()

	// Same direct measurement scheme as PR 3 (testing.Benchmark deadlocks
	// inside a running benchmark): wall clock plus MemStats deltas.
	measure := func(name string, iters int, ro bool, fn func(st *store.Store) [][]float64) (pr4Bench, [][]float64) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		var stats store.Stats
		var m [][]float64
		start := time.Now()
		for i := 0; i < iters; i++ {
			st, err := store.Open(dir, store.Options{Readonly: ro})
			if err != nil {
				b.Fatal(err)
			}
			m = fn(st)
			stats = st.Stats()
			if err := st.Close(); err != nil { // drain write-behind inside the timing
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		n := int64(iters)
		return pr4Bench{
			Name:        name,
			Iterations:  iters,
			NsPerOp:     elapsed.Nanoseconds() / n,
			BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
			AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
			StoreHits:   stats.Hits,
			StoreMisses: stats.Misses,
		}, m
	}

	traj := pr4Trajectory{
		PR:        4,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		App:       "tealeaf",
		Metric:    core.MetricTsem,
	}
	cold, coldM := measure("MatrixCold", 1, false, func(st *store.Store) [][]float64 {
		return pr4Sweep(b, st)
	})
	warm, warmM := measure("MatrixWarmStore", 3, false, func(st *store.Store) [][]float64 {
		return pr4Sweep(b, st)
	})
	ro, roM := measure("MatrixReadonlyStore", 3, true, func(st *store.Store) [][]float64 {
		return pr4Sweep(b, st)
	})
	traj.Benchmarks = append(traj.Benchmarks, cold, warm, ro)
	traj.BitIdentical = pr4SameBits(coldM, warmM) && pr4SameBits(coldM, roM)
	if !traj.BitIdentical {
		b.Fatal("warm or readonly matrix differs from cold")
	}
	traj.WarmSpeedup = float64(cold.NsPerOp) / float64(warm.NsPerOp)

	var files int
	var bytes int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && info != nil && !info.IsDir() {
			files++
			bytes += info.Size()
		}
		return nil
	})
	traj.StoreDiskInfo = fmt.Sprintf("%d records, %d bytes on disk", files, bytes)

	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("bench trajectory written to %s (warm speedup %.1fx)", out, traj.WarmSpeedup)
}
