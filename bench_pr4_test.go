// Bench trajectory emitter (PR 4): one `go test -bench` invocation that
// measures the full TeaLeaf T_sem sweep — generate, index, divergence
// matrix — in its three persistence modes: cold (empty artifact store),
// warm (second run over the same store), and readonly (warm lookups, no
// write-back). The warm/readonly matrices are verified bit-identical to
// the cold one before timings are written, so the JSON never reports a
// speedup bought with changed numbers.
//
// Run with (see EXPERIMENTS.md §Bench trajectory):
//
//	SILVERVALE_BENCH_JSON=BENCH_PR4.json \
//	  go test -run '^$' -bench '^BenchmarkPR4Trajectory$' .
//
// Without SILVERVALE_BENCH_JSON set the benchmark skips, so plain
// `go test -bench .` sweeps are not slowed down.
package silvervale

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"silvervale/internal/core"
	"silvervale/internal/corpus"
	"silvervale/internal/store"
	"silvervale/internal/ted"
)

type pr4Bench struct {
	benchTiming
	StoreHits   uint64 `json:"store_hits"`
	StoreMisses uint64 `json:"store_misses"`
}

type pr4Trajectory struct {
	PR            int        `json:"pr"`
	GoVersion     string     `json:"go"`
	NumCPU        int        `json:"num_cpu"`
	App           string     `json:"app"`
	Metric        string     `json:"metric"`
	WarmSpeedup   float64    `json:"warm_speedup_vs_cold"`
	BitIdentical  bool       `json:"warm_matrix_bit_identical"`
	Benchmarks    []pr4Bench `json:"benchmarks"`
	StoreDiskInfo string     `json:"store_disk_info"`
}

// pr4Sweep runs the whole pipeline against one store handle: generate and
// index every TeaLeaf model through the engine (warm-starting from the
// index tier when records exist), then compute the T_sem matrix (warm-
// starting distances).
func pr4Sweep(b *testing.B, st *store.Store) [][]float64 {
	b.Helper()
	app, err := corpus.AppByName("tealeaf")
	if err != nil {
		b.Fatal(err)
	}
	engine := core.NewEngineStore(0, ted.NewCache(), nil, st)
	idxs := map[string]*core.Index{}
	var order []string
	for _, m := range corpus.ModelsFor(app) {
		cb, err := corpus.Generate(app, m)
		if err != nil {
			b.Fatal(err)
		}
		idx, err := engine.IndexCodebase(cb, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		idxs[string(m)] = idx
		order = append(order, string(m))
	}
	m, err := engine.Matrix(idxs, order, core.MetricTsem)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkPR4Trajectory(b *testing.B) {
	out := benchJSONPath(b)
	dir := b.TempDir()

	// Shared direct measurement scheme (benchMeasure), with the store
	// handle opened and drained inside the timed region.
	measure := func(name string, iters int, ro bool, fn func(st *store.Store) [][]float64) (pr4Bench, [][]float64) {
		var stats store.Stats
		var m [][]float64
		t := benchMeasure(name, iters, func(int) {
			st, err := store.Open(dir, store.Options{Readonly: ro})
			if err != nil {
				b.Fatal(err)
			}
			m = fn(st)
			stats = st.Stats()
			if err := st.Close(); err != nil { // drain write-behind inside the timing
				b.Fatal(err)
			}
		})
		return pr4Bench{benchTiming: t, StoreHits: stats.Hits, StoreMisses: stats.Misses}, m
	}

	traj := pr4Trajectory{
		PR:        4,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		App:       "tealeaf",
		Metric:    core.MetricTsem,
	}
	cold, coldM := measure("MatrixCold", 1, false, func(st *store.Store) [][]float64 {
		return pr4Sweep(b, st)
	})
	warm, warmM := measure("MatrixWarmStore", 3, false, func(st *store.Store) [][]float64 {
		return pr4Sweep(b, st)
	})
	ro, roM := measure("MatrixReadonlyStore", 3, true, func(st *store.Store) [][]float64 {
		return pr4Sweep(b, st)
	})
	traj.Benchmarks = append(traj.Benchmarks, cold, warm, ro)
	traj.BitIdentical = benchSameBits(coldM, warmM) && benchSameBits(coldM, roM)
	if !traj.BitIdentical {
		b.Fatal("warm or readonly matrix differs from cold")
	}
	traj.WarmSpeedup = float64(cold.NsPerOp) / float64(warm.NsPerOp)

	var files int
	var bytes int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && info != nil && !info.IsDir() {
			files++
			bytes += info.Size()
		}
		return nil
	})
	traj.StoreDiskInfo = fmt.Sprintf("%d records, %d bytes on disk", files, bytes)

	benchWriteTrajectory(b, out, traj)
	b.Logf("bench trajectory written to %s (warm speedup %.1fx)", out, traj.WarmSpeedup)
}
