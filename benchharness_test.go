// Shared scaffolding for the bench trajectory emitters (BenchmarkPR3..9
// Trajectory). Every emitter follows the same protocol — gate on
// SILVERVALE_BENCH_JSON, measure legs directly with wall-clock plus
// MemStats deltas, hard-assert bit-identity where a speedup must not
// change the numbers, write one JSON trajectory file — and this file
// holds the protocol so each PR's emitter carries only its own legs.
package silvervale

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"silvervale/internal/core"
	"silvervale/internal/corpus"
)

// benchJSONPath gates a trajectory emitter: without SILVERVALE_BENCH_JSON
// set the benchmark skips, so plain `go test -bench .` sweeps are not
// slowed down.
func benchJSONPath(b *testing.B) string {
	b.Helper()
	out := os.Getenv("SILVERVALE_BENCH_JSON")
	if out == "" {
		b.Skip("set SILVERVALE_BENCH_JSON=<path> to emit the bench trajectory")
	}
	return out
}

// benchTiming is the common per-leg measurement record. Trajectory
// structs embed it (or use it directly) so every emitter's JSON carries
// the same field names.
type benchTiming struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// benchMeasure times iters repetitions of fn directly: testing.Benchmark
// deadlocks when invoked from inside a running benchmark (both take the
// package-global benchmark lock), so each leg is measured with wall-clock
// plus MemStats deltas — the same counters the -benchmem output is
// derived from. fn receives the repetition index so edit-style legs can
// make every rep pay the dirty work.
func benchMeasure(name string, iters int, fn func(rep int)) benchTiming {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn(i)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return benchTiming{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     elapsed.Nanoseconds() / n,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
	}
}

// benchSameBits reports whether two matrices are bit-identical — the
// hard-assert form of "this speedup did not change the numbers". Plain
// == would treat -0.0 and 0.0 as equal and NaNs as unequal; the bit
// compare catches representation drift too.
func benchSameBits(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// benchWriteTrajectory serialises one trajectory to the gated JSON path.
func benchWriteTrajectory(b *testing.B, path string, traj any) {
	b.Helper()
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchCodebases generates every port of one app once; edit legs mutate
// the in-memory file map, the same thing the watch loop sees after a
// reload.
func benchCodebases(b testing.TB, appName string) (map[string]*corpus.Codebase, []string) {
	b.Helper()
	app, err := corpus.AppByName(appName)
	if err != nil {
		b.Fatal(err)
	}
	cbs := map[string]*corpus.Codebase{}
	var order []string
	for _, m := range corpus.ModelsFor(app) {
		cb, err := corpus.Generate(app, m)
		if err != nil {
			b.Fatal(err)
		}
		cbs[string(m)] = cb
		order = append(order, string(m))
	}
	return cbs, order
}

// benchIncrSweep runs one incremental index-and-matrix pass — the unit of
// work the warm/edit legs repeat.
func benchIncrSweep(b testing.TB, e *core.Engine, cbs map[string]*corpus.Codebase,
	prior map[string]*core.Index, order []string) (map[string]*core.Index, [][]float64) {
	b.Helper()
	idxs := map[string]*core.Index{}
	for _, name := range order {
		idx, _, err := e.IndexCodebaseIncremental(cbs[name], prior[name], core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		idxs[name] = idx
	}
	m, err := e.Matrix(idxs, order, core.MetricTsem)
	if err != nil {
		b.Fatal(err)
	}
	return idxs, m
}

// benchAppendFunc applies the scripted one-function edit: it rewrites a
// unit's source as baseSrc plus one appended function, distinct per rep
// (name and constant both carry the rep), so every repetition of an edit
// leg pays the dirty work instead of hitting the cells memoised by the
// previous rep.
func benchAppendFunc(cb *corpus.Codebase, file, baseSrc, prefix string, rep int) {
	cb.Files[file] = baseSrc +
		fmt.Sprintf("\ndouble %s_%d(double x) {\n\treturn x * %d.0;\n}\n", prefix, rep, rep+2)
}

// benchDriverFile locates the driver unit of a codebase.
func benchDriverFile(b testing.TB, cb *corpus.Codebase) string {
	b.Helper()
	for _, u := range cb.Units {
		if u.Role == "driver" {
			return u.File
		}
	}
	b.Fatal("codebase has no driver unit")
	return ""
}
