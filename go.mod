module silvervale

go 1.22
