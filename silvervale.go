// Package silvervale is a Go reproduction of "A Metric for HPC Programming
// Model Productivity" (Lin, Deakin, McIntosh-Smith — SC 2024): the TBMD
// (Tree-Based Model Divergence) productivity metric, the SilverVale
// analysis pipeline around it, and the combined productivity ×
// performance-portability navigation charts.
//
// The package is a facade over the internal pipeline:
//
//	cb, _ := silvervale.Generate("tealeaf", silvervale.CUDA)
//	idx, _ := silvervale.IndexCodebase(cb, silvervale.IndexOptions{})
//	base, _ := silvervale.Generate("tealeaf", silvervale.Serial)
//	bidx, _ := silvervale.IndexCodebase(base, silvervale.IndexOptions{})
//	d, _ := silvervale.Diverge(bidx, idx, silvervale.MetricTsem)
//	fmt.Printf("T_sem divergence from serial: %.3f\n", d.Norm)
//
// See DESIGN.md for the system inventory and the per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
package silvervale

import (
	"silvervale/internal/cluster"
	"silvervale/internal/core"
	"silvervale/internal/corpus"
	"silvervale/internal/coverage"
	"silvervale/internal/experiments"
	"silvervale/internal/navchart"
	"silvervale/internal/perf"
	"silvervale/internal/store"
	"silvervale/internal/ted"
	"silvervale/internal/tree"
)

// Re-exported types. The aliases keep the public API surface in one place
// while the implementation lives in focused internal packages.
type (
	// App is a mini-app specification (Table II).
	App = corpus.App
	// Model identifies a programming model or model variant.
	Model = corpus.Model
	// Codebase is one generated mini-app × model instance.
	Codebase = corpus.Codebase
	// Index is the indexed (tree-extracted) form of a codebase.
	Index = core.Index
	// IndexOptions configures indexing (coverage masks, system headers).
	IndexOptions = core.Options
	// Divergence is a TBMD comparison result (raw, dmax, normalised).
	Divergence = core.Divergence
	// Platform is one hardware platform of Table III.
	Platform = perf.Platform
	// NavChart is a combined Φ × TBMD navigation chart.
	NavChart = navchart.Chart
	// CoverageProfile is a runtime line-coverage profile.
	CoverageProfile = coverage.Profile
	// Dendrogram is a hierarchical clustering tree.
	Dendrogram = cluster.Node
	// Engine is the concurrent divergence engine: a bounded worker pool
	// plus a shared content-addressed TED cache. It produces exactly the
	// same numbers as the one-shot functions.
	Engine = core.Engine
	// TEDCache is the concurrency-safe content-addressed TED memo.
	TEDCache = ted.Cache
	// TEDCacheStats is a snapshot of cache effectiveness counters.
	TEDCacheStats = ted.CacheStats
	// TreeFingerprint is the stable structural hash (content address)
	// cache keys are built from.
	TreeFingerprint = tree.Fingerprint
	// ArtifactStore is the persistent content-addressed artifact store:
	// cross-run warm starts for TED distances and codebase indexes.
	ArtifactStore = store.Store
	// ArtifactStoreStats is a snapshot of store traffic counters.
	ArtifactStoreStats = store.Stats
	// ArtifactStoreOptions configures OpenArtifactStoreWith: readonly
	// mode, strict fault handling, the degrade threshold, and an
	// injectable filesystem (see internal/faultfs and DESIGN.md §9).
	ArtifactStoreOptions = store.Options
)

// C++ programming models.
const (
	Serial       = corpus.Serial
	OpenMP       = corpus.OpenMP
	OpenMPTarget = corpus.OpenMPTarget
	CUDA         = corpus.CUDA
	HIP          = corpus.HIP
	Kokkos       = corpus.Kokkos
	SYCLACC      = corpus.SYCLACC
	SYCLUSM      = corpus.SYCLUSM
	StdPar       = corpus.StdPar
	TBB          = corpus.TBB
)

// Fortran programming models.
const (
	FSequential     = corpus.FSequential
	FArray          = corpus.FArray
	FDoConcurrent   = corpus.FDoConcurrent
	FOpenMP         = corpus.FOpenMP
	FOpenMPTaskloop = corpus.FOpenMPTaskloop
	FOpenACC        = corpus.FOpenACC
	FOpenACCArray   = corpus.FOpenACCArray
)

// Metric identifiers (Table I).
const (
	MetricSLOC     = core.MetricSLOC
	MetricLLOC     = core.MetricLLOC
	MetricSource   = core.MetricSource
	MetricSourcePP = core.MetricSourcePP
	MetricTsrc     = core.MetricTsrc
	MetricTsrcPP   = core.MetricTsrcPP
	MetricTsem     = core.MetricTsem
	MetricTsemI    = core.MetricTsemI
	MetricTir      = core.MetricTir
)

// Apps returns the mini-app registry (Table II).
func Apps() []App { return corpus.Apps() }

// Metrics lists every metric identifier in Table I order.
func Metrics() []string { return core.Metrics() }

// ModelsFor lists the models an app is implemented in.
func ModelsFor(app App) []Model { return corpus.ModelsFor(app) }

// Generate renders a mini-app in one programming model.
func Generate(appName string, model Model) (*Codebase, error) {
	app, err := corpus.AppByName(appName)
	if err != nil {
		return nil, err
	}
	return corpus.Generate(app, model)
}

// IndexCodebase extracts the semantic-bearing trees and perceived metrics
// from a codebase.
func IndexCodebase(cb *Codebase, opts IndexOptions) (*Index, error) {
	return core.IndexCodebase(cb, opts)
}

// Diverge computes the divergence of codebase b from codebase a under the
// named metric (Eq. 4–7).
func Diverge(a, b *Index, metric string) (Divergence, error) {
	return core.Diverge(a, b, metric)
}

// NewEngine returns a concurrent divergence engine with the given worker
// bound (<= 0 selects runtime.NumCPU()) and a fresh shared TED cache.
// Reuse one engine across Diverge/Matrix/FromBase sweeps so repeated tree
// pairs are answered from the memo.
func NewEngine(workers int) *Engine { return core.NewEngine(workers) }

// OpenArtifactStore opens (creating on first use) a persistent artifact
// store rooted at dir. Close it to drain pending write-behind records.
func OpenArtifactStore(dir string, readonly bool) (*ArtifactStore, error) {
	return store.Open(dir, store.Options{Readonly: readonly})
}

// OpenArtifactStoreWith opens an artifact store with full options —
// notably Strict (the first I/O fault surfaces from Close instead of
// degrading to memory-only) and FS (a faultfs filesystem, for fault
// injection in tests).
func OpenArtifactStoreWith(dir string, opts ArtifactStoreOptions) (*ArtifactStore, error) {
	return store.Open(dir, opts)
}

// NewEngineWithStore returns a divergence engine whose TED cache and
// indexing pipeline warm-start from (and persist into) an artifact store.
// Results are always identical to a store-less engine; the caller owns the
// store and must Close it.
func NewEngineWithStore(workers int, st *ArtifactStore) *Engine {
	return core.NewEngineStore(workers, ted.NewCache(), nil, st)
}

// DivergenceMatrix computes the pairwise normalised divergence matrix over
// the given model order.
func DivergenceMatrix(idxs map[string]*Index, order []string, metric string) ([][]float64, error) {
	return core.Matrix(idxs, order, metric)
}

// DivergenceFromBase computes every model's divergence from one base model.
func DivergenceFromBase(idxs map[string]*Index, base string, order []string, metric string) (map[string]float64, error) {
	return core.FromBase(idxs, base, order, metric)
}

// RunCoverage executes a serial codebase in the bundled interpreter on its
// reduced problem size and returns the line-coverage profile for the
// +coverage metric variants.
func RunCoverage(cb *Codebase) (*CoverageProfile, error) {
	return core.RunCoverage(cb)
}

// Cluster builds a complete-linkage dendrogram from a divergence matrix.
func Cluster(labels []string, matrix [][]float64) (*Dendrogram, error) {
	return cluster.Agglomerate(labels, cluster.EuclideanFromMatrix(matrix))
}

// RenderDendrogram draws a dendrogram as text.
func RenderDendrogram(root *Dendrogram) string { return cluster.Render(root) }

// Platforms returns the six benchmark platforms of Table III.
func Platforms() []Platform { return perf.Platforms() }

// Phi computes the Pennycook performance-portability metric of (app,
// model) over a platform set.
func Phi(app string, model Model, plats []Platform) float64 {
	return perf.AppPhi(app, model, plats)
}

// NavigationChart joins divergence-from-serial with Φ over a platform set
// (Fig. 13/14).
func NavigationChart(app string, tsem, tsrc map[string]float64, models []Model, plats []Platform) *NavChart {
	return navchart.Build(app, "serial", tsem, tsrc, models, plats)
}

// RunExperiment regenerates one of the paper's tables or figures by id
// (table1..table3, fig1, fig4..fig15) and returns its rendered report.
func RunExperiment(id string) (string, error) {
	res, err := experiments.NewEnv().Run(id)
	if err != nil {
		return "", err
	}
	return res.Title + "\n\n" + res.Text, nil
}

// ExperimentIDs lists every reproducible table and figure.
func ExperimentIDs() []string { return experiments.IDs() }
