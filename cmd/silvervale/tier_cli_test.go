package main

// CLI smoke tests for -tier-budget: the post-sweep tier stats line and
// the ted.tier_* metrics must appear exactly when tiering is requested,
// for both the exact-equivalent budget 0 and a nonzero budget.

import (
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// captureBoth runs a CLI invocation with stdout and stderr captured
// separately.
func captureBoth(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	oldOut, oldErr := os.Stdout, os.Stderr
	ro, wo, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	re, we, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout, os.Stderr = wo, we
	outCh, errCh := make(chan string), make(chan string)
	go func() { data, _ := io.ReadAll(ro); outCh <- string(data) }()
	go func() { data, _ := io.ReadAll(re); errCh <- string(data) }()
	runErr := run(args)
	wo.Close()
	we.Close()
	os.Stdout, os.Stderr = oldOut, oldErr
	return <-outCh, <-errCh, runErr
}

func tierCounter(t *testing.T, metrics, name string) int {
	t.Helper()
	m := regexp.MustCompile(`(?m)^silvervale_ted_` + name + ` (\d+)$`).FindStringSubmatch(metrics)
	if m == nil {
		t.Fatalf("no silvervale_ted_%s counter in output:\n%s", name, metrics)
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestExperimentTierStatsLineAndMetrics: a tiered experiment sweep prints
// the stats line with its policy and registers nonzero ted.tier_*
// counters; without -tier-budget neither appears.
func TestExperimentTierStatsLineAndMetrics(t *testing.T) {
	out, err := capture(t, "experiment", trimExperiment, "-tier-budget", "0.2", "-metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ted tiering (budget 0.2") {
		t.Fatalf("tiered experiment missing stats line: %q", out)
	}
	pairs := tierCounter(t, out, "tier_pairs")
	exact := tierCounter(t, out, "tier_exact")
	if pairs == 0 || exact == 0 {
		t.Fatalf("tier counters not accumulated: pairs=%d exact=%d", pairs, exact)
	}
	if pairs != exact+tierCounter(t, out, "tier_estimated")+tierCounter(t, out, "tier_far") {
		t.Fatal("tier counters do not sum to routed pairs")
	}

	out, err = capture(t, "experiment", trimExperiment, "-metrics")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "ted tiering") {
		t.Fatalf("untiered experiment printed a tier stats line: %q", out)
	}
	if tierCounter(t, out, "tier_pairs") != 0 {
		t.Fatal("untiered run accumulated tier pairs")
	}
}

// TestMatrixTierBudgetZeroSmoke: budget 0 engages the tiered path in its
// exact-equivalent configuration — stdout matrix identical to the exact
// run, stats line on stderr reporting every routed pair as exact.
func TestMatrixTierBudgetZeroSmoke(t *testing.T) {
	plain, plainErr, err := captureBoth(t, "matrix", trimApp, "-metric", "tsem")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plainErr, "ted tiering") {
		t.Fatalf("untiered matrix printed a tier stats line: %q", plainErr)
	}
	tiered, tieredErr, err := captureBoth(t, "matrix", trimApp, "-metric", "tsem", "-tier-budget", "0")
	if err != nil {
		t.Fatal(err)
	}
	if tiered != plain {
		t.Fatalf("budget-0 matrix stdout differs from exact:\nexact:\n%s\ntiered:\n%s", plain, tiered)
	}
	if !strings.Contains(tieredErr, "ted tiering (budget 0 (exact)):") {
		t.Fatalf("budget-0 matrix missing stats line on stderr: %q", tieredErr)
	}
	if !regexp.MustCompile(`(\d+) pairs: (\d+) exact, 0 estimated, 0 lsh-far`).MatchString(tieredErr) {
		t.Fatalf("budget-0 stats line reports non-exact pairs: %q", tieredErr)
	}
}
