package main

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promCounter extracts a silvervale_* counter from -metrics output,
// returning -1 when absent.
func promCounter(t *testing.T, metrics, name string) int {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + name + ` (\d+)$`).FindStringSubmatch(metrics)
	if m == nil {
		return -1
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFaultInjectedRunDegradesGracefully is the end-to-end
// graceful-degradation contract: a matrix run over a cache whose disk
// fails mid-sweep exits zero with stdout byte-identical to a fault-free
// run, and -metrics reports exactly one breaker trip.
func TestFaultInjectedRunDegradesGracefully(t *testing.T) {
	clean, err := capture(t, "matrix", trimApp, "-metric", "tsem", "-cache-dir", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	t.Setenv("SILVERVALE_FAULTFS", "enospc@5+")
	faulted, err := capture(t, "matrix", trimApp, "-metric", "tsem", "-cache-dir", t.TempDir())
	if err != nil {
		t.Fatalf("fault-injected run must exit clean by default: %v", err)
	}
	if faulted != clean {
		t.Fatalf("fault-injected stdout differs from clean:\nclean:\n%s\nfaulted:\n%s", clean, faulted)
	}

	out, err := capture(t, "matrix", trimApp, "-metric", "tsem",
		"-cache-dir", t.TempDir(), "-metrics")
	if err != nil {
		t.Fatal(err)
	}
	if got := promCounter(t, out, "silvervale_store_degraded"); got != 1 {
		t.Fatalf("silvervale_store_degraded = %d, want 1\n%s", got, out)
	}
	if got := promCounter(t, out, "silvervale_store_fault_injected"); got < 1 {
		t.Fatalf("silvervale_store_fault_injected = %d, want >= 1\n%s", got, out)
	}
}

// TestCacheStrictMakesFaultsFatal: the same injected fault under
// -cache-strict surfaces as a command error.
func TestCacheStrictMakesFaultsFatal(t *testing.T) {
	t.Setenv("SILVERVALE_FAULTFS", "enospc@5+")
	_, err := capture(t, "matrix", trimApp, "-metric", "tsem",
		"-cache-dir", t.TempDir(), "-cache-strict")
	if err == nil {
		t.Fatal("-cache-strict run over a failing disk exited clean")
	}
	if !strings.Contains(err.Error(), "no space left") {
		t.Fatalf("error does not carry the injected fault: %v", err)
	}
}

// TestBadFaultSpecRejected: a malformed SILVERVALE_FAULTFS fails fast
// with a parse error instead of silently running unfaulted.
func TestBadFaultSpecRejected(t *testing.T) {
	t.Setenv("SILVERVALE_FAULTFS", "bogus@nope")
	_, err := capture(t, "matrix", "babelstream", "-metric", "tsem", "-cache-dir", t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "SILVERVALE_FAULTFS") {
		t.Fatalf("bad spec not rejected: %v", err)
	}
}
