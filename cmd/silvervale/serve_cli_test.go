package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServeCLISmoke boots the daemon in-process on an ephemeral port via
// the serveReady/serveStop test hooks, cross-checks POST /v1/matrix
// against `matrix -json` byte for byte (the served codec IS the CLI
// codec), and shuts down through the same graceful-drain path a SIGTERM
// takes — asserting the stats line lands on stderr and run returns nil.
func TestServeCLISmoke(t *testing.T) {
	// One-shot CLI reference first; the daemon below shares no state
	// with this run.
	jsonPath := filepath.Join(t.TempDir(), "matrix.json")
	if _, err := capture(t, "matrix", trimApp, "-metric", "tsem", "-json", jsonPath, "-workers", "1"); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}

	addrCh := make(chan net.Addr, 1)
	serveReady = func(a net.Addr) { addrCh <- a }
	serveStop = make(chan struct{})
	defer func() { serveReady = nil; serveStop = nil }()

	// The listening banner and shutdown stats line go to stderr.
	oldStderr := os.Stderr
	rp, wp, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = wp
	stderrCh := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(rp)
		stderrCh <- string(b)
	}()
	restoreStderr := func() {
		if os.Stderr == wp {
			wp.Close()
			os.Stderr = oldStderr
		}
	}
	defer restoreStderr()

	runDone := make(chan error, 1)
	go func() {
		runDone <- run([]string{"serve", "-addr", "127.0.0.1:0",
			"-max-inflight", "1", "-queue", "2", "-shutdown-timeout", "5s", "-workers", "1"})
	}()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-runDone:
		restoreStderr()
		t.Fatalf("daemon exited before listening: %v\nstderr: %s", err, <-stderrCh)
	case <-time.After(30 * time.Second):
		restoreStderr()
		t.Fatalf("daemon never came up\nstderr: %s", <-stderrCh)
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(health) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, health)
	}

	resp, err = http.Post(base+"/v1/matrix", "application/json",
		strings.NewReader(fmt.Sprintf(`{"app":%q,"metric":"tsem"}`, trimApp)))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matrix status %d: %s", resp.StatusCode, got)
	}
	if string(got) != string(want) {
		t.Errorf("served matrix differs from `matrix -json` output:\nserved: %s\ncli:    %s", got, want)
	}

	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(stats), `"requests": 1`) {
		t.Fatalf("stats = %d %s", resp.StatusCode, stats)
	}

	close(serveStop) // the signal handler's graceful-drain path
	var runErr error
	select {
	case runErr = <-runDone:
	case <-time.After(30 * time.Second):
		restoreStderr()
		t.Fatal("daemon did not drain within the shutdown budget")
	}
	restoreStderr()
	stderr := <-stderrCh
	if runErr != nil {
		t.Fatalf("serve returned %v\nstderr: %s", runErr, stderr)
	}
	if !strings.Contains(stderr, "serve: listening on http://") {
		t.Errorf("listening banner missing from stderr: %q", stderr)
	}
	if !strings.Contains(stderr, "serve: 1 requests, 0 rejected, 0 canceled, 0 errors") {
		t.Errorf("shutdown stats line missing from stderr: %q", stderr)
	}
}

// TestServeRejectsBadInvocations: flag/positional/listen errors surface
// as errors from run, not as a hung daemon.
func TestServeRejectsBadInvocations(t *testing.T) {
	if _, err := capture(t, "serve", "positional"); err == nil {
		t.Error("serve with positional args did not fail")
	}
	if _, err := capture(t, "serve", "-addr", "definitely-not-an-address"); err == nil {
		t.Error("serve with an unlistenable address did not fail")
	}
}
