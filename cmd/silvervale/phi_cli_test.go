package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"silvervale/internal/corpus"
	"silvervale/internal/perf"
)

// TestPhiDefaultOutputUnchanged: without -phi-source the phi subcommand
// must print byte-for-byte what it always printed (the modeled cascade
// table) — the measured path is strictly opt-in.
func TestPhiDefaultOutputUnchanged(t *testing.T) {
	out, err := capture(t, "phi", "tealeaf")
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	plats := perf.Platforms()
	for _, m := range corpus.CXXModels() {
		pts := perf.Cascade("tealeaf", m, plats)
		fmt.Fprintf(&want, "%-12s phi=%.3f cascade:", m, perf.AppPhi("tealeaf", m, plats))
		for _, p := range pts {
			fmt.Fprintf(&want, " %s=%.2f", p.Platform, p.Eff)
		}
		want.WriteByte('\n')
	}
	if out != want.String() {
		t.Fatalf("default phi output changed:\n got: %q\nwant: %q", out, want.String())
	}
}

func TestPhiMeasured(t *testing.T) {
	out, err := capture(t, "phi", "babelstream", "-phi-source", "measured")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "phi source: measured") {
		t.Fatalf("missing provenance line: %q", out)
	}
	// host-only models stay gated to zero; at least one offload-capable
	// model earns a nonzero measured phi
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "omp ") && !strings.Contains(line, "phi=0.000") {
			t.Errorf("host-only omp should have phi=0.000: %q", line)
		}
	}
	if !regexp.MustCompile(`(?m)^(kokkos|sycl-acc|sycl-usm|omp-target)\s+phi=0\.[1-9]|phi=1\.000`).MatchString(out) {
		t.Errorf("no nonzero measured phi in output:\n%s", out)
	}
}

func TestPhiRejectsBadSource(t *testing.T) {
	if err := run([]string{"phi", "babelstream", "-phi-source", "vibes"}); err == nil {
		t.Fatal("bogus -phi-source accepted")
	}
	if err := run([]string{"phi", "babelstream-fortran", "-phi-source", "measured"}); err == nil {
		t.Fatal("measured phi for a Fortran app should fail")
	}
}

// chartJSON is the subset of the navigation-chart JSON the CLI tests check.
type chartJSON struct {
	App       string   `json:"app"`
	PhiSource string   `json:"phi_source"`
	Platforms []string `json:"platforms"`
	Points    []struct {
		Model string          `json:"model"`
		Phi   float64         `json:"phi"`
		Effs  []float64       `json:"effs"`
		Cost  json.RawMessage `json:"cost"`
	} `json:"points"`
}

func readChart(t *testing.T, path string) chartJSON {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ch chartJSON
	if err := json.Unmarshal(data, &ch); err != nil {
		t.Fatalf("chart JSON does not parse: %v", err)
	}
	return ch
}

func TestPhiJSONChart(t *testing.T) {
	if raceEnabled {
		t.Skip("navigation-chart TED under the race detector blows the package timeout; the chart path is race-covered in internal/experiments")
	}
	dir := t.TempDir()

	measured := filepath.Join(dir, "measured.json")
	if _, err := capture(t, "phi", "babelstream", "-phi-source", "measured", "-json", measured); err != nil {
		t.Fatal(err)
	}
	ch := readChart(t, measured)
	if ch.App != "babelstream" || ch.PhiSource != "measured" {
		t.Fatalf("chart header: app=%q phi_source=%q", ch.App, ch.PhiSource)
	}
	if len(ch.Points) != len(corpus.CXXModels()) {
		t.Fatalf("%d points for %d models", len(ch.Points), len(corpus.CXXModels()))
	}
	for _, p := range ch.Points {
		if len(p.Effs) != len(ch.Platforms) {
			t.Fatalf("%s: %d effs for %d platforms", p.Model, len(p.Effs), len(ch.Platforms))
		}
		if len(p.Cost) == 0 || string(p.Cost) == "null" {
			t.Fatalf("%s: measured chart point has no cost summary", p.Model)
		}
	}

	modeled := filepath.Join(dir, "modeled.json")
	if _, err := capture(t, "phi", "babelstream", "-json", modeled); err != nil {
		t.Fatal(err)
	}
	mch := readChart(t, modeled)
	if mch.PhiSource != "modeled" {
		t.Fatalf("modeled chart phi_source = %q", mch.PhiSource)
	}
	for _, p := range mch.Points {
		if len(p.Cost) != 0 {
			t.Fatalf("%s: modeled chart point must not carry cost", p.Model)
		}
	}
}

// TestPhiMeasuredMetrics: the verify-skill smoke — a measured phi run with
// -metrics exposes nonzero interp.* counters (the instrumentation substrate
// actually ran and was observed).
func TestPhiMeasuredMetrics(t *testing.T) {
	out, err := capture(t, "phi", "babelstream", "-phi-source", "measured", "-metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"runs", "steps", "stmts", "loop_trips", "mem_bytes", "flops", "calls"} {
		re := regexp.MustCompile(`(?m)^silvervale_interp_` + c + ` (\d+)$`)
		m := re.FindStringSubmatch(out)
		if m == nil {
			t.Errorf("metrics output missing silvervale_interp_%s", c)
			continue
		}
		if n, _ := strconv.Atoi(m[1]); n == 0 {
			t.Errorf("silvervale_interp_%s is zero", c)
		}
	}
}

func TestExperimentPhiSourceFlag(t *testing.T) {
	if err := run([]string{"experiment", "fig11", "-phi-source", "vibes"}); err == nil {
		t.Fatal("bogus -phi-source accepted by experiment")
	}
	if raceEnabled {
		t.Skip("figure sweep under the race detector blows the package timeout; measured figures are race-covered in internal/experiments")
	}
	out, err := capture(t, "experiment", "fig11", "-phi-source", "measured")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "phi source: measured") {
		t.Errorf("fig11 under -phi-source=measured lacks provenance line:\n%s", out)
	}
}
