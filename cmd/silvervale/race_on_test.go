//go:build race

package main

// The race detector multiplies the exact-TED DP cost ~10x, and the
// C++-corpus CLI flows (full BabelStream matrices, TeaLeaf figure
// sweeps) push this package far past the default 10m test timeout on
// small runners (~986s measured on 1 CPU). Under -race the smoke tests
// therefore drive the same CLI paths with the Fortran fixtures, which
// exercise identical wiring (store, tiering, fault injection, cache
// stats) at a fraction of the tree sizes. The full-size fixtures still
// run in the plain suite, and the heavy flows stay fully race-covered
// at the library layer (internal/core, internal/experiments).
const (
	raceEnabled = true

	trimApp        = "babelstream-fortran"
	trimAppMarker  = "f-sequential"
	trimExperiment = "fig6"
)
