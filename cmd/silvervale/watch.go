package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"silvervale/internal/cbdb"
	"silvervale/internal/cluster"
	"silvervale/internal/compdb"
	"silvervale/internal/core"
	"silvervale/internal/store"
	"silvervale/internal/textplot"
)

// cmdWatch holds a warm engine resident over a directory of ingested
// ports and re-emits the divergence matrix whenever an edit lands. Each
// immediate subdirectory containing a compile_commands.json is one port;
// edits are detected by content hash, units are re-frontended only when
// their dependency closure changed, and matrix cells are served from the
// engine's memo unless a side's metric hash moved (DESIGN.md §12).
//
// The -since form is the one-shot CI variant: restore warm state from a
// snapshot written by -snapshot, emit exactly one incremental sweep, and
// exit. Matrix stdout is byte-identical to a cold run over the same
// sources; the incremental accounting goes to stderr.
func cmdWatch(args []string, cfg *obsConfig) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	metric := fs.String("metric", core.MetricTsem, "metric")
	interval := fs.Duration("interval", 500*time.Millisecond, "poll interval between scans")
	iters := fs.Int("iters", 0, "exit after this many emitted sweeps (0 = run until interrupted)")
	snapPath := fs.String("snapshot", "", "persist warm state (indexes + memoised cells) here after every sweep")
	since := fs.String("since", "", "one-shot CI form: restore warm state from this snapshot, sweep once, exit")
	workers := fs.Int("workers", 0, "worker pool size (0 = all CPUs, 1 = serial)")
	cfg.register(fs)
	pos, err := splitArgs(fs, args, 1)
	if err != nil {
		return err
	}
	engine, err := cfg.newEngine(*workers)
	if err != nil {
		return err
	}
	w := &watcher{
		root:   pos[0],
		metric: *metric,
		engine: engine,
		prior:  map[string]*core.Index{},
		hashes: map[string]store.ContentHash{},
		out:    os.Stdout,
		errw:   os.Stderr,
	}
	if *since != "" {
		snap, err := core.LoadSnapshot(*since)
		if err != nil {
			return err
		}
		if err := w.restore(snap); err != nil {
			return err
		}
		if _, err := w.sweep(true); err != nil {
			return err
		}
		if *snapPath != "" {
			return w.save(*snapPath)
		}
		return nil
	}
	emitted := 0
	for {
		changed, err := w.sweep(emitted == 0)
		if err != nil {
			// Before anything has been emitted the tree is simply invalid:
			// fail. Afterwards, mid-edit trees are routinely inconsistent
			// (half-written files, vanished includes): report and retry.
			if emitted == 0 {
				return err
			}
			fmt.Fprintf(w.errw, "watch: %v\n", err)
		} else if changed {
			emitted++
			if *snapPath != "" {
				if err := w.save(*snapPath); err != nil {
					return err
				}
			}
			if *iters > 0 && emitted >= *iters {
				return nil
			}
		}
		time.Sleep(*interval)
	}
}

// watcher is the resident warm state: the last good index and content
// hash per port, plus the engine whose cell memo carries across sweeps.
type watcher struct {
	root      string
	metric    string
	engine    *core.Engine
	prior     map[string]*core.Index
	hashes    map[string]store.ContentHash
	prevStats core.IncrStats
	out, errw io.Writer
}

// restore seeds the watcher from a snapshot: prior indexes for frontend
// reuse, memoised cells for the matrix sweep. Content addressing makes a
// stale snapshot harmless — entries that no longer match simply miss.
func (w *watcher) restore(snap *core.Snapshot) error {
	for label, db := range snap.Models {
		idx, err := core.IndexFromDB(db)
		if err != nil {
			return fmt.Errorf("watch: snapshot model %q: %w", label, err)
		}
		w.prior[label] = idx
	}
	w.engine.ImportCells(snap.Cells)
	w.engine.ImportSubtreeBlocks(snap.Subs)
	return nil
}

// save persists the current warm state for a later -since run.
func (w *watcher) save(path string) error {
	snap := &core.Snapshot{
		Metric: w.metric,
		Models: map[string]*cbdb.DB{},
		Cells:  w.engine.ExportCells(),
		Subs:   w.engine.ExportSubtreeBlocks(),
	}
	for label, idx := range w.prior {
		snap.Models[label] = idx.ToDB()
	}
	return snap.Save(path)
}

// scanPorts lists the immediate subdirectories of root that contain a
// compile_commands.json, in sorted order.
func (w *watcher) scanPorts() ([]string, error) {
	entries, err := os.ReadDir(w.root)
	if err != nil {
		return nil, err
	}
	var ports []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		cc := filepath.Join(w.root, e.Name(), "compile_commands.json")
		if _, err := os.Stat(cc); err == nil {
			ports = append(ports, e.Name())
		}
	}
	sort.Strings(ports)
	if len(ports) == 0 {
		return nil, fmt.Errorf("watch: no port directories (with compile_commands.json) under %s", w.root)
	}
	return ports, nil
}

// sweep performs one scan-index-emit cycle. It returns whether anything
// was emitted: unless force is set, a scan where every port's content
// hash is unchanged emits nothing.
func (w *watcher) sweep(force bool) (bool, error) {
	ports, err := w.scanPorts()
	if err != nil {
		return false, err
	}
	dirty := force
	idxs := map[string]*core.Index{}
	for _, label := range ports {
		dir := filepath.Join(w.root, label)
		db, err := compdb.Load(filepath.Join(dir, "compile_commands.json"))
		if err != nil {
			return false, fmt.Errorf("%s: %w", label, err)
		}
		cb, err := core.LoadCodebase(dir, db)
		if err != nil {
			return false, fmt.Errorf("%s: %w", label, err)
		}
		h := core.CodebaseContentHash(cb)
		if prior, ok := w.prior[label]; ok && h == w.hashes[label] {
			idxs[label] = prior
			continue
		}
		idx, _, err := w.engine.IndexCodebaseIncremental(cb, w.prior[label], core.Options{})
		if err != nil {
			return false, fmt.Errorf("%s: %w", label, err)
		}
		w.prior[label] = idx
		w.hashes[label] = h
		idxs[label] = idx
		dirty = true
	}
	// Ports removed from disk drop out of the resident state too.
	for label := range w.prior {
		if _, ok := idxs[label]; !ok {
			delete(w.prior, label)
			delete(w.hashes, label)
			dirty = true
		}
	}
	if !dirty {
		return false, nil
	}
	m, err := w.engine.Matrix(idxs, ports, w.metric)
	if err != nil {
		return false, err
	}
	fmt.Fprintln(w.out, textplot.Heatmap(ports, ports, m))
	root, err := cluster.Agglomerate(ports, cluster.EuclideanFromMatrix(m))
	if err != nil {
		return false, err
	}
	fmt.Fprintln(w.out, cluster.Render(root))
	stats := w.engine.IncrStats()
	fmt.Fprintln(w.errw, stats.Delta(w.prevStats).Line())
	w.prevStats = stats
	return true, nil
}
