package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writePorts generates the given babelstream ports as watch port
// directories under a fresh root.
func writePorts(t *testing.T, models ...string) string {
	t.Helper()
	root := t.TempDir()
	for _, m := range models {
		if _, err := capture(t, "generate", "babelstream", m, "-o", filepath.Join(root, m)); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// editPortKernels appends a function to a port's kernels unit, the
// scripted one-function edit of the incremental smoke.
func editPortKernels(t *testing.T, root, model string) {
	t.Helper()
	dir := filepath.Join(root, model)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "kernels.") && e.Name() != "kernels.h" {
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data = append(data, []byte("\ndouble pr8_extra(double x) {\n\treturn x * 2.0;\n}\n")...)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatalf("no kernels source under %s", dir)
}

// TestWatchIncrementalSmoke is the end-to-end incremental flow: a cold
// watch iteration snapshots its warm state; a scripted one-function edit
// plus a -since run re-emits the matrix byte-identically to a cold run of
// the edited tree, reporting on stderr that only the edited unit reparsed
// and only its cells recomputed.
func TestWatchIncrementalSmoke(t *testing.T) {
	root := writePorts(t, "serial", "omp", "cuda")
	snap := filepath.Join(t.TempDir(), "warm.svsnap")

	coldOut, coldErr, err := captureBoth(t, "watch", root, "-iters", "1", "-snapshot", snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(coldErr, "incremental: 0 cells reused, 3 recomputed; 0 units reused, 6 reparsed") {
		t.Fatalf("cold stats line missing:\n%s", coldErr)
	}
	if !strings.Contains(coldOut, "cuda") || !strings.Contains(coldOut, "serial") {
		t.Fatalf("cold matrix output missing port labels:\n%s", coldOut)
	}

	editPortKernels(t, root, "cuda")

	incrOut, incrErr, err := captureBoth(t, "watch", root, "-since", snap)
	if err != nil {
		t.Fatal(err)
	}
	// 3 ports × 2 units: the edit reparses exactly the edited unit and
	// recomputes exactly the two cells pairing cuda with the others.
	if !strings.Contains(incrErr, "incremental: 1 cells reused, 2 recomputed; 5 units reused, 1 reparsed") {
		t.Fatalf("incremental stats line missing:\n%s", incrErr)
	}
	// The recomputed cells' TED work must hit the snapshot-restored
	// subtree-block memo: clean keyroot subtrees reuse their blocks, so
	// only the edited function's spine re-ran the DP (DESIGN.md §13).
	if strings.Contains(incrErr, " 0 subtree blocks reused") {
		t.Fatalf("warm edit sweep restored no subtree blocks:\n%s", incrErr)
	}

	freshOut, _, err := captureBoth(t, "watch", root, "-iters", "1")
	if err != nil {
		t.Fatal(err)
	}
	if incrOut != freshOut {
		t.Fatalf("incremental matrix differs from cold run:\n--- incremental ---\n%s--- cold ---\n%s", incrOut, freshOut)
	}
	if incrOut == coldOut {
		t.Fatal("edit did not change the matrix output")
	}
}

// TestWatchSinceWritesBackSnapshot: the CI form can roll the snapshot
// forward, so consecutive -since runs each pay only their own edit.
func TestWatchSinceWritesBackSnapshot(t *testing.T) {
	root := writePorts(t, "serial", "omp")
	snap := filepath.Join(t.TempDir(), "warm.svsnap")
	if _, _, err := captureBoth(t, "watch", root, "-iters", "1", "-snapshot", snap); err != nil {
		t.Fatal(err)
	}
	editPortKernels(t, root, "omp")
	if _, _, err := captureBoth(t, "watch", root, "-since", snap, "-snapshot", snap); err != nil {
		t.Fatal(err)
	}
	// No further edits: the rolled-forward snapshot answers everything.
	_, errLines, err := captureBoth(t, "watch", root, "-since", snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errLines, "incremental: 1 cells reused, 0 recomputed; 4 units reused, 0 reparsed") {
		t.Fatalf("rolled-forward snapshot missed:\n%s", errLines)
	}
}

// TestWatchRejectsEmptyRoot: a root with no port directories errors
// instead of emitting an empty matrix.
func TestWatchRejectsEmptyRoot(t *testing.T) {
	if _, _, err := captureBoth(t, "watch", t.TempDir(), "-iters", "1"); err == nil {
		t.Fatal("expected error for a root without ports")
	}
}
