//go:build !race

package main

// Full-size fixtures for the plain suite; see race_on_test.go for why
// -race runs swap in the Fortran corpus.
const (
	raceEnabled = false

	trimApp        = "babelstream"
	trimAppMarker  = "serial"
	trimExperiment = "fig4"
)
