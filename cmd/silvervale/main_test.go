package main

import (
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// capture runs a CLI invocation with stdout captured. The reader drains
// concurrently so large outputs cannot deadlock on the pipe buffer.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := run(args)
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, "list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tealeaf", "sycl-acc", "tsem", "fig15"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestUnknownCommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("expected error")
	}
	if err := run(nil); err != nil {
		t.Fatal("bare invocation prints usage")
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateAndIngestRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bs-omp")
	out, err := capture(t, "generate", "babelstream", "omp", "-o", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "compile_commands.json") {
		t.Fatalf("generate output: %q", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "kernels.cpp")); err != nil {
		t.Fatal(err)
	}
	out, err = capture(t, "ingest", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "model=omp") {
		t.Fatalf("ingest output: %q", out)
	}
}

func TestGenerateRequiresOutput(t *testing.T) {
	if err := run([]string{"generate", "babelstream", "omp"}); err == nil {
		t.Fatal("expected error without -o")
	}
	if err := run([]string{"generate", "babelstream"}); err == nil {
		t.Fatal("expected error with missing positional")
	}
}

func TestIndexCommand(t *testing.T) {
	db := filepath.Join(t.TempDir(), "out.svdb")
	out, err := capture(t, "index", "babelstream", "serial", "-db", db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "self-check") {
		t.Fatalf("index output: %q", out)
	}
	if _, err := os.Stat(db); err != nil {
		t.Fatal("codebase DB not written")
	}
}

func TestDivergeCommand(t *testing.T) {
	out, err := capture(t, "diverge", "babelstream", "serial", "omp", "-metric", "tsem")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tsem") || !strings.Contains(out, "norm=") {
		t.Fatalf("diverge output: %q", out)
	}
	if err := run([]string{"diverge", "babelstream", "serial", "nope"}); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestPhiCommand(t *testing.T) {
	out, err := capture(t, "phi", "tealeaf")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "kokkos") || !strings.Contains(out, "phi=") {
		t.Fatalf("phi output: %q", out)
	}
}

func TestExperimentCommand(t *testing.T) {
	out, err := capture(t, "experiment", "table3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MI250X") {
		t.Fatalf("experiment output: %q", out)
	}
	if err := run([]string{"experiment", "fig99"}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	if err := run([]string{"experiment"}); err == nil {
		t.Fatal("expected error for missing id")
	}
}

// storeHits extracts the silvervale_store_hits counter from -metrics
// output.
func storeHits(t *testing.T, metrics string) int {
	t.Helper()
	m := regexp.MustCompile(`(?m)^silvervale_store_hits (\d+)$`).FindStringSubmatch(metrics)
	if m == nil {
		t.Fatalf("no silvervale_store_hits counter in output:\n%s", metrics)
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestMatrixCacheDirColdThenWarm is the CLI smoke test for -cache-dir: a
// cold run fills the store, the warm run produces byte-identical stdout,
// and a readonly warm run reports store hits in -metrics.
func TestMatrixCacheDirColdThenWarm(t *testing.T) {
	dir := t.TempDir()
	cold, err := capture(t, "matrix", trimApp, "-metric", "tsem", "-cache-dir", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cold, trimAppMarker) {
		t.Fatalf("matrix output: %q", cold)
	}
	warm, err := capture(t, "matrix", trimApp, "-metric", "tsem", "-cache-dir", dir)
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Fatalf("warm stdout differs from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	out, err := capture(t, "matrix", trimApp, "-metric", "tsem",
		"-cache-dir", dir, "-cache-readonly", "-metrics")
	if err != nil {
		t.Fatal(err)
	}
	if hits := storeHits(t, out); hits == 0 {
		t.Fatal("readonly warm run reported zero store hits")
	}
	// -cache-clear empties the tiers: the next run is cold again.
	out, err = capture(t, "matrix", trimApp, "-metric", "tsem",
		"-cache-dir", dir, "-cache-clear", "-metrics")
	if err != nil {
		t.Fatal(err)
	}
	if hits := storeHits(t, out); hits != 0 {
		t.Fatalf("run after -cache-clear hit the store %d times", hits)
	}
}

// TestExperimentCacheStatsLineGainsStore checks the post-sweep cache-stats
// line: store-less runs keep the exact old shape, -cache-dir runs append
// the store fragment.
func TestExperimentCacheStatsLineGainsStore(t *testing.T) {
	out, err := capture(t, "experiment", trimExperiment)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ted cache:") || strings.Contains(out, "store") {
		t.Fatalf("store-less cache-stats line changed: %q", out)
	}
	dir := t.TempDir()
	out, err = capture(t, "experiment", trimExperiment, "-cache-dir", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "store ") || !strings.Contains(out, "corrupt-skipped") {
		t.Fatalf("cache-stats line missing store fragment: %q", out)
	}
}

func TestDumpCommand(t *testing.T) {
	out, err := capture(t, "dump", "babelstream", "serial", "-tree", "tsem")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FunctionDecl") {
		t.Fatalf("dump output: %q", out)
	}
	if err := run([]string{"dump", "babelstream", "serial", "-tree", "bogus"}); err == nil {
		t.Fatal("expected error for unknown tree")
	}
}
