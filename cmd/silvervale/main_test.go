package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs a CLI invocation with stdout captured. The reader drains
// concurrently so large outputs cannot deadlock on the pipe buffer.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := run(args)
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, "list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tealeaf", "sycl-acc", "tsem", "fig15"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestUnknownCommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("expected error")
	}
	if err := run(nil); err != nil {
		t.Fatal("bare invocation prints usage")
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateAndIngestRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bs-omp")
	out, err := capture(t, "generate", "babelstream", "omp", "-o", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "compile_commands.json") {
		t.Fatalf("generate output: %q", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "kernels.cpp")); err != nil {
		t.Fatal(err)
	}
	out, err = capture(t, "ingest", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "model=omp") {
		t.Fatalf("ingest output: %q", out)
	}
}

func TestGenerateRequiresOutput(t *testing.T) {
	if err := run([]string{"generate", "babelstream", "omp"}); err == nil {
		t.Fatal("expected error without -o")
	}
	if err := run([]string{"generate", "babelstream"}); err == nil {
		t.Fatal("expected error with missing positional")
	}
}

func TestIndexCommand(t *testing.T) {
	db := filepath.Join(t.TempDir(), "out.svdb")
	out, err := capture(t, "index", "babelstream", "serial", "-db", db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "self-check") {
		t.Fatalf("index output: %q", out)
	}
	if _, err := os.Stat(db); err != nil {
		t.Fatal("codebase DB not written")
	}
}

func TestDivergeCommand(t *testing.T) {
	out, err := capture(t, "diverge", "babelstream", "serial", "omp", "-metric", "tsem")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tsem") || !strings.Contains(out, "norm=") {
		t.Fatalf("diverge output: %q", out)
	}
	if err := run([]string{"diverge", "babelstream", "serial", "nope"}); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestPhiCommand(t *testing.T) {
	out, err := capture(t, "phi", "tealeaf")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "kokkos") || !strings.Contains(out, "phi=") {
		t.Fatalf("phi output: %q", out)
	}
}

func TestExperimentCommand(t *testing.T) {
	out, err := capture(t, "experiment", "table3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MI250X") {
		t.Fatalf("experiment output: %q", out)
	}
	if err := run([]string{"experiment", "fig99"}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	if err := run([]string{"experiment"}); err == nil {
		t.Fatal("expected error for missing id")
	}
}

func TestDumpCommand(t *testing.T) {
	out, err := capture(t, "dump", "babelstream", "serial", "-tree", "tsem")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FunctionDecl") {
		t.Fatalf("dump output: %q", out)
	}
	if err := run([]string{"dump", "babelstream", "serial", "-tree", "bogus"}); err == nil {
		t.Fatal("expected error for unknown tree")
	}
}
