// Command silvervale is the end-to-end CLI over the TBMD analysis
// framework: generate corpus codebases, index them into semantic-bearing
// trees, compare models, cluster, compute Φ, and regenerate every table and
// figure of the paper.
//
// Usage:
//
//	silvervale list
//	silvervale generate <app> <model> -o <dir>
//	silvervale index <app> <model> [-coverage] [-db <file>]
//	silvervale diverge <app> <modelA> <modelB> [-metric <m>]
//	silvervale matrix <app> [-metric <m>]
//	silvervale phi <app> [-phi-source modeled|measured] [-json <file>]
//	silvervale experiment <id>|all [-phi-source modeled|measured]
//	silvervale serve [-addr <host:port>] [-max-inflight n] [-queue n]
//	silvervale dump <app> <model> [-tree <metric>]
//
// Observability flags (leading, or trailing after positionals):
//
//	silvervale -trace out.json -metrics matrix tealeaf
//	silvervale experiment all -metrics -metrics-format=json
//	silvervale -pprof 127.0.0.1:6060 experiment all
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"

	"silvervale/internal/cluster"
	"silvervale/internal/core"
	"silvervale/internal/corpus"
	"silvervale/internal/experiments"
	"silvervale/internal/faultfs"
	"silvervale/internal/obs"
	"silvervale/internal/perf"
	"silvervale/internal/serve"
	"silvervale/internal/store"
	"silvervale/internal/ted"
	"silvervale/internal/textplot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "silvervale:", err)
		os.Exit(1)
	}
}

// obsConfig carries the observability surface: -trace emits a Chrome
// trace_event file, -metrics prints a Prometheus-style summary (or JSON
// with -metrics-format=json), -pprof serves net/http/pprof for the
// duration of the command. The flags register both on the global (leading)
// flag set and on each engine-backed subcommand, so they work in either
// position. When none is set, no recorder is created and the pipeline runs
// entirely uninstrumented.
type obsConfig struct {
	trace         string
	metrics       bool
	metricsFormat string
	pprofAddr     string
	cacheDir      string
	cacheReadonly bool
	cacheClear    bool
	cacheStrict   bool
	tierBudget    float64

	rec          *obs.Recorder
	st           *store.Store
	pprofStarted bool
}

func (c *obsConfig) register(fs *flag.FlagSet) {
	fs.StringVar(&c.trace, "trace", c.trace, "write a Chrome trace_event JSON file (chrome://tracing, Perfetto)")
	fs.BoolVar(&c.metrics, "metrics", c.metrics, "print a metrics summary after the command")
	fs.StringVar(&c.metricsFormat, "metrics-format", c.metricsFormat, "metrics output format: text (Prometheus-style) or json")
	fs.StringVar(&c.pprofAddr, "pprof", c.pprofAddr, "serve net/http/pprof on this address while the command runs")
	fs.StringVar(&c.cacheDir, "cache-dir", c.cacheDir, "persistent artifact store: warm-start TED distances and indexes across runs")
	fs.BoolVar(&c.cacheReadonly, "cache-readonly", c.cacheReadonly, "serve lookups from -cache-dir but write nothing back")
	fs.BoolVar(&c.cacheClear, "cache-clear", c.cacheClear, "clear the -cache-dir record tiers before running")
	fs.BoolVar(&c.cacheStrict, "cache-strict", c.cacheStrict, "treat cache I/O errors as fatal instead of degrading to memory-only")
	fs.Float64Var(&c.tierBudget, "tier-budget", c.tierBudget, "tiered matrix sweeps: per-cell error budget (0 = exact; <0 = off, no stats line)")
}

func (c *obsConfig) enabled() bool {
	return c.trace != "" || c.metrics || c.pprofAddr != ""
}

// recorder lazily creates the recorder (and starts the pprof server) once
// a subcommand asks for it — after its flag set has parsed, so trailing
// flags are honoured. Returns nil when observability is off.
func (c *obsConfig) recorder() (*obs.Recorder, error) {
	if !c.enabled() {
		return nil, nil
	}
	if c.pprofAddr != "" && !c.pprofStarted {
		ln, err := net.Listen("tcp", c.pprofAddr)
		if err != nil {
			return nil, fmt.Errorf("pprof: %w", err)
		}
		c.pprofStarted = true
		fmt.Fprintf(os.Stderr, "pprof: serving http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, nil) //nolint — lives for the command's duration
	}
	if c.rec == nil && (c.trace != "" || c.metrics) {
		c.rec = obs.NewRecorder()
	}
	return c.rec, nil
}

// store lazily opens the persistent artifact store once a subcommand asks
// for it (after flag parsing, so trailing flags are honoured), clearing
// the record tiers first under -cache-clear. Returns nil when -cache-dir
// is unset. SILVERVALE_FAULTFS (a faultfs spec like "enospc@5+" or
// "sync:eio@1") wraps the store's filesystem in the fault injector — the
// crash-consistency harness for end-to-end runs; see DESIGN.md §9.
func (c *obsConfig) store() (*store.Store, error) {
	if c.cacheDir == "" {
		return nil, nil
	}
	if c.st == nil {
		fsys, err := cacheFS()
		if err != nil {
			return nil, err
		}
		if c.cacheClear {
			if err := store.ClearFS(fsys, c.cacheDir); err != nil {
				return nil, err
			}
		}
		st, err := store.Open(c.cacheDir, store.Options{
			Readonly: c.cacheReadonly,
			Strict:   c.cacheStrict,
			FS:       fsys,
		})
		if err != nil {
			return nil, err
		}
		c.st = st
	}
	return c.st, nil
}

// cacheFS resolves the filesystem the artifact store runs on: the real
// one, unless SILVERVALE_FAULTFS schedules injected faults.
func cacheFS() (faultfs.FS, error) {
	spec := os.Getenv("SILVERVALE_FAULTFS")
	if spec == "" {
		return faultfs.OS{}, nil
	}
	faults, err := faultfs.ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("SILVERVALE_FAULTFS: %w", err)
	}
	fmt.Fprintf(os.Stderr, "faultfs: injecting %q into the artifact store\n", spec)
	return faultfs.New(faultfs.OS{}, faults...), nil
}

// closeStore drains the store's write-behind queue. Idempotent, nil-safe,
// and called before metrics are printed so the flush counters are final
// (and deferred in run so error paths still drain).
func (c *obsConfig) closeStore() error {
	return c.st.Close()
}

// finish writes the trace file and prints the metrics summary. The store
// is closed first so store.flushes / store.bytes_written are final.
func (c *obsConfig) finish() error {
	if err := c.closeStore(); err != nil {
		return err
	}
	if c.rec == nil {
		return nil
	}
	if c.trace != "" {
		f, err := os.Create(c.trace)
		if err != nil {
			return err
		}
		if err := c.rec.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", c.trace)
	}
	if c.metrics {
		if c.metricsFormat == "json" {
			return c.rec.WriteMetricsJSON(os.Stdout)
		}
		return c.rec.WriteMetrics(os.Stdout)
	}
	return nil
}

func (c *obsConfig) newEngine(workers int) (*core.Engine, error) {
	rec, err := c.recorder()
	if err != nil {
		return nil, err
	}
	st, err := c.store()
	if err != nil {
		return nil, err
	}
	return core.NewEngineStore(workers, ted.NewCache(), rec, st), nil
}

func (c *obsConfig) newEnv(workers int) (*experiments.Env, error) {
	rec, err := c.recorder()
	if err != nil {
		return nil, err
	}
	st, err := c.store()
	if err != nil {
		return nil, err
	}
	env := experiments.NewEnvStore(workers, rec, st)
	if c.tierRequested() {
		env.SetTierPolicy(c.tierPolicy())
	}
	return env, nil
}

// tierRequested reports whether -tier-budget was given (>= 0): the tiered
// matrix path is engaged (budget 0 = the exact-equivalent policy) and the
// post-sweep tier stats line is printed.
func (c *obsConfig) tierRequested() bool { return c.tierBudget >= 0 }

// tierPolicy maps the -tier-budget flag onto the engine policy.
func (c *obsConfig) tierPolicy() ted.TierPolicy {
	if !c.tierRequested() {
		return ted.TierPolicy{}
	}
	return ted.NewTierPolicy(c.tierBudget)
}

func run(args []string) error {
	cfg := &obsConfig{metricsFormat: "text", tierBudget: -1}
	defer cfg.closeStore() // error paths still drain the write-behind queue
	gfs := flag.NewFlagSet("silvervale", flag.ContinueOnError)
	cfg.register(gfs)
	if err := gfs.Parse(args); err != nil {
		return err
	}
	args = gfs.Args()
	if len(args) == 0 {
		return usage()
	}
	var err error
	switch args[0] {
	case "list":
		err = cmdList()
	case "generate":
		err = cmdGenerate(args[1:])
	case "index":
		err = cmdIndex(args[1:], cfg)
	case "diverge":
		err = cmdDiverge(args[1:], cfg)
	case "matrix":
		err = cmdMatrix(args[1:], cfg)
	case "phi":
		err = cmdPhi(args[1:], cfg)
	case "experiment":
		err = cmdExperiment(args[1:], cfg)
	case "ingest":
		err = cmdIngest(args[1:], cfg)
	case "watch":
		err = cmdWatch(args[1:], cfg)
	case "serve":
		err = cmdServe(args[1:], cfg)
	case "dump":
		err = cmdDump(args[1:])
	case "help", "-h", "--help":
		err = usage()
	default:
		err = fmt.Errorf("unknown command %q (try: silvervale help)", args[0])
	}
	if err != nil {
		return err
	}
	return cfg.finish()
}

func usage() error {
	fmt.Println(`silvervale — Tree-Based Model Divergence analysis framework

commands:
  list                                   apps, models, metrics, experiments
  generate <app> <model> -o <dir>        write a codebase + compile_commands.json
  index <app> <model> [-coverage] [-db]  index into semantic-bearing trees
  diverge <app> <A> <B> [-metric m]      divergence of B from A
  matrix <app> [-metric m]               cartesian divergence, heatmap, dendrogram
  phi <app> [-phi-source s] [-json f]    cascade plot and per-model phi
  experiment <id>|all [-phi-source s]    regenerate a paper table/figure
  ingest <dir>                           index a directory via its compile_commands.json
  watch <dir> [-metric m] [-iters n]     re-emit the matrix incrementally as ports are edited
  serve [-addr a] [-max-inflight n]      divergence-as-a-service HTTP daemon
  dump <app> <model> [-tree m]           pretty-print a unit's tree

index, diverge, matrix, experiment, and ingest accept -workers <n> to bound
the divergence engine's worker pool (default: all CPUs; 1 = serial).
Results are identical for every value. They also accept the observability
flags (leading or trailing): -trace <file> writes a Chrome trace_event
JSON, -metrics prints a metrics summary (-metrics-format=text|json), and
-pprof <addr> serves net/http/pprof while the command runs.

The same commands accept -cache-dir <dir>: a persistent content-addressed
artifact store that warm-starts TED distances and codebase indexes across
runs (results are byte-identical to a cold run). -cache-readonly serves
lookups without writing back; -cache-clear empties the store first.

matrix and experiment additionally accept -tier-budget <b>: route the
all-pairs sweep through the tiered engine (LSH + pq-gram prefilter, exact
Zhang–Shasha only for close/borderline pairs) under a per-cell error
budget, and print a post-sweep tier stats line. -tier-budget 0 engages the
tiered path in exact mode — output is byte-identical to the exact sweep.

  silvervale matrix tealeaf -tier-budget 0.05   # ~10x more units/sweep

phi and experiment accept -phi-source measured: performance figures are
derived from interpreter-measured cost vectors (statements, loop trips,
memory bytes, flops, kernel launches) priced on each platform's roofline
instead of the hand-written support-matrix landscape. The support matrix
still gates which platforms a model can target. phi -json <file> also
writes the app's navigation chart as JSON ("-" = stdout); under the
measured source each point carries its cost summary. See DESIGN.md §11.

  silvervale phi babelstream -phi-source measured -json chart.json

watch holds a warm engine resident over a directory whose immediate
subdirectories each contain a port (sources + compile_commands.json). Edits
are detected by content hash; only edited units re-run the frontend and
only matrix cells whose side changed are recomputed — the rest come from
the engine's memo, bit-identical to a cold sweep. Each emitted sweep
prints the heatmap and dendrogram to stdout and an "incremental:" stats
line to stderr. -snapshot <file> persists the warm state (indexes +
memoised cells); -since <file> is the one-shot CI form: restore, sweep
once incrementally, exit.

  silvervale watch ports/ -iters 1 -snapshot warm.svsnap   # CI baseline
  silvervale watch ports/ -since warm.svsnap               # ms warm re-sweep

serve holds the same warm engine resident behind an HTTP/JSON API
(DESIGN.md §14): POST /v1/matrix, /v1/frombase, /v1/phi, and streaming
/v1/sweep serve sweeps from one shared cache (responses byte-identical to
matrix -json / phi -json); POST /v1/codebases uploads a codebase and
/v1/diverge compares two uploads. At most -max-inflight sweeps run
concurrently with -queue more waiting; overflow gets 429 + Retry-After.
A client disconnect cancels its sweep at the next task grant without
corrupting any memo. SIGINT/SIGTERM drains in-flight requests for up to
-shutdown-timeout, then prints a stats line. The observability flags
(-metrics, -trace, -pprof, -cache-dir) apply to the whole daemon.

  silvervale serve -addr 127.0.0.1:8723 -cache-dir ~/.cache/silvervale &
  curl -s -X POST localhost:8723/v1/matrix \
    -H 'Content-Type: application/json' -d '{"app":"tealeaf","metric":"tsem"}'

Cache I/O errors never change results: past an error threshold the store
degrades to memory-only (a one-line warning; results recompute). Pass
-cache-strict to make the first cache fault fatal instead. The
SILVERVALE_FAULTFS environment variable injects deterministic faults into
the store's filesystem for crash-consistency testing ("enospc@5+",
"sync:eio@1"; see DESIGN.md §9).

  silvervale matrix tealeaf -cache-dir ~/.cache/silvervale   # cold: fills
  silvervale matrix tealeaf -cache-dir ~/.cache/silvervale   # warm: fast`)
	return nil
}

func cmdList() error {
	fmt.Println("mini-apps:")
	for _, app := range corpus.Apps() {
		var models []string
		for _, m := range corpus.ModelsFor(app) {
			models = append(models, string(m))
		}
		fmt.Printf("  %-22s (%s, %s, %d kernels): %s\n",
			app.Name, app.Lang, app.Type, len(app.Kernels), strings.Join(models, " "))
	}
	fmt.Println("metrics:", strings.Join(core.Metrics(), " "))
	fmt.Println("experiments:", strings.Join(experiments.IDs(), " "))
	return nil
}

func generateCodebase(appName, model string) (*corpus.Codebase, error) {
	app, err := corpus.AppByName(appName)
	if err != nil {
		return nil, err
	}
	return corpus.Generate(app, corpus.Model(model))
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	out := fs.String("o", "", "output directory (required)")
	pos, err := splitArgs(fs, args, 2)
	if err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("generate: -o <dir> is required")
	}
	cb, err := generateCodebase(pos[0], pos[1])
	if err != nil {
		return err
	}
	for _, name := range cb.FileNames() {
		path := filepath.Join(*out, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, []byte(cb.Source(name)), 0o644); err != nil {
			return err
		}
	}
	ccJSON, err := cb.CompileCommands(*out).Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*out, "compile_commands.json"), ccJSON, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d files + compile_commands.json to %s\n", len(cb.Files), *out)
	return nil
}

func cmdIndex(args []string, cfg *obsConfig) error {
	fs := flag.NewFlagSet("index", flag.ContinueOnError)
	withCov := fs.Bool("coverage", false, "run the serial interpreter for a coverage mask")
	dbOut := fs.String("db", "", "write the Codebase DB (gzip+msgpack) to this file")
	workers := fs.Int("workers", 0, "worker pool size (0 = all CPUs, 1 = serial)")
	cfg.register(fs)
	pos, err := splitArgs(fs, args, 2)
	if err != nil {
		return err
	}
	cb, err := generateCodebase(pos[0], pos[1])
	if err != nil {
		return err
	}
	// The engine path lets -cache-dir warm-start the default-option index
	// from the store's index tier (coverage runs always recompute).
	engine, err := cfg.newEngine(*workers)
	if err != nil {
		return err
	}
	var opts core.Options
	if *withCov {
		prof, err := core.RunCoverage(cb)
		if err != nil {
			return fmt.Errorf("coverage run: %w", err)
		}
		opts.Coverage = prof
	}
	idx, err := engine.IndexCodebase(cb, opts)
	if err != nil {
		return err
	}
	for _, u := range idx.Units {
		fmt.Printf("unit %-16s role=%-8s sloc=%-5d lloc=%-5d", u.File, u.Role, u.SLOC, u.LLOC)
		for _, m := range core.TreeMetrics() {
			if t, ok := u.Trees[m]; ok {
				fmt.Printf(" %s=%d", m, t.Size())
			}
		}
		fmt.Println()
	}
	if err := core.SelfCheck(idx); err != nil {
		return err
	}
	fmt.Println("self-check: divergence against itself is zero for all metrics")
	if *dbOut != "" {
		db := idx.ToDB()
		if err := db.Save(*dbOut); err != nil {
			return err
		}
		fmt.Println("codebase DB written to", *dbOut)
	}
	return nil
}

func cmdDiverge(args []string, cfg *obsConfig) error {
	fs := flag.NewFlagSet("diverge", flag.ContinueOnError)
	metric := fs.String("metric", "", "single metric (default: all)")
	workers := fs.Int("workers", 0, "worker pool size (0 = all CPUs, 1 = serial)")
	cfg.register(fs)
	pos, err := splitArgs(fs, args, 3)
	if err != nil {
		return err
	}
	a, err := generateCodebase(pos[0], pos[1])
	if err != nil {
		return err
	}
	b, err := generateCodebase(pos[0], pos[2])
	if err != nil {
		return err
	}
	engine, err := cfg.newEngine(*workers)
	if err != nil {
		return err
	}
	ia, err := engine.IndexCodebase(a, core.Options{})
	if err != nil {
		return err
	}
	ib, err := engine.IndexCodebase(b, core.Options{})
	if err != nil {
		return err
	}
	metrics := core.Metrics()
	if *metric != "" {
		metrics = []string{*metric}
	}
	for _, m := range metrics {
		d, err := engine.Diverge(ia, ib, m)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s raw=%-10.0f dmax=%-10.0f norm=%.4f\n", m, d.Raw, d.DMax, d.Norm)
	}
	return nil
}

func cmdMatrix(args []string, cfg *obsConfig) error {
	fs := flag.NewFlagSet("matrix", flag.ContinueOnError)
	metric := fs.String("metric", core.MetricTsem, "metric")
	jsonOut := fs.String("json", "", "also write the sweep + per-unit fingerprints as JSON to this file (\"-\" = stdout)")
	workers := fs.Int("workers", 0, "worker pool size (0 = all CPUs, 1 = serial)")
	cfg.register(fs)
	pos, err := splitArgs(fs, args, 1)
	if err != nil {
		return err
	}
	env, err := cfg.newEnv(*workers)
	if err != nil {
		return err
	}
	m, order, err := env.Matrix(pos[0], *metric)
	if err != nil {
		return err
	}
	if *jsonOut != "" {
		idxs, _, err := env.Indexes(pos[0])
		if err != nil {
			return err
		}
		// The payload type and encoder are shared with the serve daemon's
		// /v1/matrix endpoint, so the two outputs are byte-identical by
		// construction for the same inputs.
		payload := serve.BuildMatrixPayload(pos[0], *metric, order, m, idxs)
		w := io.Writer(os.Stdout)
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := payload.WriteJSON(w); err != nil {
			return err
		}
		if *jsonOut != "-" {
			fmt.Fprintf(os.Stderr, "matrix JSON written to %s\n", *jsonOut)
		}
	}
	fmt.Println(textplot.Heatmap(order, order, m))
	root, err := cluster.Agglomerate(order, cluster.EuclideanFromMatrix(m))
	if err != nil {
		return err
	}
	fmt.Println(cluster.Render(root))
	if env.Engine().Store() != nil {
		// Drain the write-behind queue so the flush/bytes counters are
		// final, then report to stderr, so matrix stdout stays
		// byte-identical cold vs warm.
		if err := cfg.closeStore(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, env.Engine().CacheStats())
	}
	if cfg.tierRequested() {
		// Tier stats go to stderr for the same reason the cache stats do:
		// matrix stdout stays byte-identical exact vs tiered at budget 0.
		fmt.Fprintln(os.Stderr, env.Engine().TierStats().Line(env.TierPolicy()))
	}
	return nil
}

func cmdPhi(args []string, cfg *obsConfig) error {
	fs := flag.NewFlagSet("phi", flag.ContinueOnError)
	src := fs.String("phi-source", experiments.PhiSourceModeled,
		"phi source: modeled (support-matrix landscape) or measured (interpreter cost vectors)")
	jsonOut := fs.String("json", "", "also write the app's navigation chart JSON to this file (\"-\" = stdout)")
	workers := fs.Int("workers", 0, "worker pool size (0 = all CPUs, 1 = serial)")
	cfg.register(fs)
	pos, err := splitArgs(fs, args, 1)
	if err != nil {
		return err
	}
	app := pos[0]
	env, err := cfg.newEnv(*workers)
	if err != nil {
		return err
	}
	if err := env.SetPhiSource(*src); err != nil {
		return err
	}
	plats := perf.Platforms()
	eff := func(m corpus.Model, p perf.Platform) float64 { return perf.Efficiency(app, m, p) }
	phi := func(m corpus.Model) float64 { return perf.AppPhi(app, m, plats) }
	if *src == experiments.PhiSourceMeasured {
		set, err := env.MeasuredSet(app)
		if err != nil {
			return err
		}
		eff = set.Efficiency
		phi = func(m corpus.Model) float64 { return set.AppPhi(m, plats) }
		fmt.Println("phi source: measured (interpreter cost vectors, DESIGN.md §11)")
	}
	for _, m := range corpus.CXXModels() {
		mm := m
		pts := perf.CascadeOf(func(p perf.Platform) float64 { return eff(mm, p) }, plats)
		fmt.Printf("%-12s phi=%.3f cascade:", m, phi(m))
		for _, p := range pts {
			fmt.Printf(" %s=%.2f", p.Platform, p.Eff)
		}
		fmt.Println()
	}
	if *jsonOut != "" {
		ch, err := env.NavChart(app)
		if err != nil {
			return err
		}
		if *jsonOut == "-" {
			return ch.WriteJSON(os.Stdout)
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := ch.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "navigation chart written to %s\n", *jsonOut)
	}
	return nil
}

func cmdExperiment(args []string, cfg *obsConfig) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	workers := fs.Int("workers", 0, "worker pool size (0 = all CPUs, 1 = serial)")
	src := fs.String("phi-source", experiments.PhiSourceModeled,
		"phi source for performance figures: modeled or measured")
	cfg.register(fs)
	pos, err := splitArgs(fs, args, 1)
	if err != nil {
		return fmt.Errorf("experiment: exactly one id (or 'all') required")
	}
	env, err := cfg.newEnv(*workers)
	if err != nil {
		return err
	}
	if err := env.SetPhiSource(*src); err != nil {
		return err
	}
	ids := []string{pos[0]}
	if pos[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		res, err := env.Run(id)
		if err != nil {
			return err
		}
		fmt.Printf("==== %s: %s ====\n%s\n", res.ID, res.Title, res.Text)
	}
	// Drain the store's write-behind queue (nil-safe no-op without
	// -cache-dir) so the post-sweep line reports final store counters.
	if err := cfg.closeStore(); err != nil {
		return err
	}
	fmt.Println(env.Engine().CacheStats())
	if cfg.tierRequested() {
		fmt.Println(env.Engine().TierStats().Line(env.TierPolicy()))
	}
	return nil
}

func cmdIngest(args []string, cfg *obsConfig) error {
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	workers := fs.Int("workers", 0, "worker pool size (0 = all CPUs, 1 = serial)")
	cfg.register(fs)
	pos, err := splitArgs(fs, args, 1)
	if err != nil {
		return err
	}
	rec, err := cfg.recorder()
	if err != nil {
		return err
	}
	idx, err := core.IngestDirectory(pos[0], core.Options{Workers: *workers, Recorder: rec})
	if err != nil {
		return err
	}
	fmt.Printf("ingested %s (app=%s model=%s)\n", pos[0], idx.Codebase, idx.Model)
	for _, u := range idx.Units {
		fmt.Printf("unit %-20s role=%-10s sloc=%-5d lloc=%-5d", u.File, u.Role, u.SLOC, u.LLOC)
		for _, m := range core.TreeMetrics() {
			if t, ok := u.Trees[m]; ok {
				fmt.Printf(" %s=%d", m, t.Size())
			}
		}
		fmt.Println()
	}
	return core.SelfCheck(idx)
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ContinueOnError)
	metric := fs.String("tree", core.MetricTsem, "tree metric to dump")
	pos, err := splitArgs(fs, args, 2)
	if err != nil {
		return err
	}
	cb, err := generateCodebase(pos[0], pos[1])
	if err != nil {
		return err
	}
	idx, err := core.IndexCodebase(cb, core.Options{})
	if err != nil {
		return err
	}
	for _, u := range idx.Units {
		t, ok := u.Trees[*metric]
		if !ok {
			return fmt.Errorf("no tree %q", *metric)
		}
		fmt.Printf("--- %s (%s, %d nodes) ---\n%s", u.File, *metric, t.Size(), t.Pretty())
	}
	return nil
}

// splitArgs separates leading positional arguments from trailing flags and
// parses the flags.
func splitArgs(fs *flag.FlagSet, args []string, positional int) ([]string, error) {
	var pos, flags []string
	for i := 0; i < len(args); i++ {
		if strings.HasPrefix(args[i], "-") {
			flags = args[i:]
			break
		}
		pos = append(pos, args[i])
	}
	if len(pos) != positional {
		return nil, fmt.Errorf("%s: want %d positional arguments, got %d", fs.Name(), positional, len(pos))
	}
	return pos, fs.Parse(flags)
}
