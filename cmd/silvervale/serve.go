package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"silvervale/internal/serve"
)

// Test hooks: serveReady (when set) receives the bound address once the
// listener is up, and a receive from serveStop triggers the same graceful
// drain a SIGINT/SIGTERM would — so the CLI test can run the daemon
// in-process on an ephemeral port and shut it down without signals.
var (
	serveReady func(net.Addr)
	serveStop  chan struct{}
)

// cmdServe runs the divergence-as-a-service daemon: one shared
// experiments.Env (engine + TED cache + optional -cache-dir store)
// serving HTTP/JSON sweeps until SIGINT/SIGTERM, then draining in-flight
// requests for up to -shutdown-timeout before exiting. The post-shutdown
// stats line goes to stderr, like every other out-of-band report.
func cmdServe(args []string, cfg *obsConfig) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8723", "listen address (use :0 for an ephemeral port)")
	maxInflight := fs.Int("max-inflight", 2, "sweeps running concurrently")
	maxQueue := fs.Int("queue", 8, "sweeps waiting for a slot before requests are rejected with 429")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "graceful drain budget after SIGINT/SIGTERM")
	workers := fs.Int("workers", 0, "engine worker pool size (0 = all CPUs, 1 = serial)")
	cfg.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	env, err := cfg.newEnv(*workers)
	if err != nil {
		return err
	}
	srv := serve.New(serve.Config{
		Env:         env,
		Recorder:    env.Recorder(),
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintf(os.Stderr, "serve: listening on http://%s (max-inflight %d, queue %d)\n",
		ln.Addr(), *maxInflight, *maxQueue)
	if serveReady != nil {
		serveReady(ln.Addr())
	}

	hs := &http.Server{Handler: srv}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	shutdownErr := make(chan error, 1)
	go func() {
		select {
		case <-sig:
		case <-serveStop: // nil outside tests: blocks forever
		}
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		// Shutdown stops accepting, then waits for in-flight handlers —
		// the admission layer's drain — up to the timeout.
		shutdownErr <- hs.Shutdown(ctx)
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("serve: %w", err)
	}
	if err := <-shutdownErr; err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, srv.Stats().Line())
	return nil
}
