package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// traceFileShape mirrors the Chrome trace_event JSON emitted by -trace.
type traceFileShape struct {
	TraceEvents []struct {
		Name string   `json:"name"`
		Ph   string   `json:"ph"`
		Ts   float64  `json:"ts"`
		Dur  *float64 `json:"dur"`
	} `json:"traceEvents"`
}

func TestTraceAndMetricsFlags(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	out, err := capture(t, "matrix", "babelstream-fortran", "-trace", tracePath, "-metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"silvervale_ted_cache_hits",
		"silvervale_ted_pair_nodes_bucket",
		"silvervale_engine_tasks",
		"silvervale_span_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf traceFileShape
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// Every pipeline phase must appear as at least one complete ("X") event
	// with an explicit non-negative duration. babelstream-fortran exercises
	// the Fortran frontend, so frontend.preprocess (MiniC-only) is absent.
	phases := []string{
		"index.codebase", "index.unit",
		"frontend.srctree", "frontend.lex", "frontend.parse",
		"frontend.sem", "frontend.inline",
		"ir.lower",
		"ted.fingerprint", "ted.distance",
		"engine.matrix", "engine.cell",
	}
	complete := map[string]int{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want complete event \"X\"", ev.Name, ev.Ph)
		}
		if ev.Dur == nil || *ev.Dur < 0 {
			t.Fatalf("event %q lacks a non-negative dur", ev.Name)
		}
		complete[ev.Name]++
	}
	for _, p := range phases {
		if complete[p] == 0 {
			t.Errorf("trace has no complete span for phase %q", p)
		}
	}
}

func TestMetricsJSONWithLeadingFlags(t *testing.T) {
	out, err := capture(t, "-metrics", "-metrics-format=json", "index", "babelstream-fortran", "f-sequential")
	if err != nil {
		t.Fatal(err)
	}
	idx := strings.Index(out, "{")
	if idx < 0 {
		t.Fatalf("no JSON object in output: %q", out)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Spans    map[string]struct {
			Count int64 `json:"count"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(out[idx:]), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if snap.Counters["index.units"] == 0 {
		t.Errorf("index.units counter is zero: %v", snap.Counters)
	}
	if snap.Spans["frontend.parse"].Count == 0 {
		t.Errorf("no frontend.parse spans recorded")
	}
}

func TestPprofFlagBindsListener(t *testing.T) {
	// Port 0 binds an ephemeral port; the command must run to completion
	// with the profiler live.
	if _, err := capture(t, "index", "babelstream-fortran", "f-sequential", "-pprof", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
}
