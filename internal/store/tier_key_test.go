package store

// Tier-record key separation tests: the store-key hazard the tiered
// engine introduces is an exact run warm-starting from estimates (or a
// tiered run at one budget serving another budget's records). The tier
// tier is keyed by the full policy — budget, threshold, signature shape,
// routing tier — alongside the fingerprint pair and cost model, and every
// record echoes its key, so none of those mixes can ever serve.

import (
	"os"
	"path/filepath"
	"testing"

	"silvervale/internal/tree"
)

func tierKey(seed uint64, budget, threshold float64) TierKey {
	return TierKey{
		A:      tree.Fingerprint{H1: seed, H2: seed * 31, Size: uint32(seed%100 + 1)},
		B:      tree.Fingerprint{H1: seed * 7, H2: seed * 131, Size: uint32(seed%90 + 2)},
		Insert: 1, Delete: 1, Rename: 1,
		Budget: budget, Threshold: threshold,
		Bands: 16, Rows: 4, Tier: 1,
	}
}

// TestTierRoundTrip: a put estimate survives reopen and is served only
// for its exact key — same pair under a different budget, threshold,
// signature shape, routing tier, or cost model must miss.
func TestTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	k := tierKey(42, 0.05, 0.85)
	if _, ok := s.LookupTierDist(k); ok {
		t.Fatal("empty store must miss")
	}
	s.PutTierDist(k, 123.25)
	s.Close()

	s2 := openT(t, dir, Options{})
	d, ok := s2.LookupTierDist(k)
	if !ok || d != 123.25 {
		t.Fatalf("warm tier lookup = %v, %v; want 123.25, true", d, ok)
	}
	variants := map[string]TierKey{}
	v := k
	v.Budget = 0.1
	variants["different budget"] = v
	v = k
	v.Threshold = 0.80
	variants["different threshold"] = v
	v = k
	v.Bands, v.Rows = 8, 8
	variants["different signature shape"] = v
	v = k
	v.Tier = 2
	variants["different routing tier"] = v
	v = k
	v.Insert = 2
	variants["different cost model"] = v
	v = k
	v.A, v.B = v.B, v.A
	variants["swapped pair"] = v
	for name, vk := range variants {
		if d, ok := s2.LookupTierDist(vk); ok {
			t.Fatalf("%s served %v — tier records must never cross policies", name, d)
		}
	}
}

// TestTierNeverMixesWithExact: the regression the tiered engine demands —
// an exact-run store (dist records) never serves a tiered lookup for the
// same tree pair and costs, and a tiered-run store (tier records) never
// serves an exact lookup. The two live in separate record tiers with
// separate key spaces.
func TestTierNeverMixesWithExact(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	fa := tree.Fingerprint{H1: 3, H2: 5, Size: 40}
	fb := tree.Fingerprint{H1: 7, H2: 11, Size: 50}
	dk := DistKey{A: fa, B: fb, Insert: 1, Delete: 1, Rename: 1}
	tk := TierKey{A: fa, B: fb, Insert: 1, Delete: 1, Rename: 1,
		Budget: 0.05, Threshold: 0.85, Bands: 16, Rows: 4, Tier: 1}
	s.PutDist(dk, 17)     // the exact run writes the true distance
	s.PutTierDist(tk, 44) // a tiered run writes an estimate for the same pair
	s.Close()

	s2 := openT(t, dir, Options{})
	if d, ok := s2.LookupDist(dk); !ok || d != 17 {
		t.Fatalf("exact lookup = %d, %v; want 17, true", d, ok)
	}
	if d, ok := s2.LookupTierDist(tk); !ok || d != 44 {
		t.Fatalf("tier lookup = %v, %v; want 44, true", d, ok)
	}
	// An exact value must never leak into a differently-budgeted tier
	// lookup, and the estimate must never replace the exact record.
	other := tk
	other.Budget, other.Threshold = 0.2, 0.82
	if d, ok := s2.LookupTierDist(other); ok {
		t.Fatalf("budget-0.2 lookup served budget-0.05 estimate %v", d)
	}
	if d, ok := s2.LookupDist(dk); !ok || d != 17 {
		t.Fatalf("exact record disturbed by tier write: %d, %v", d, ok)
	}
}

// TestTierKeyEchoCatchesAliasing: a tier record copied under another tier
// key's file name (simulated name collision — e.g. a budget mix a broken
// hash would allow) fails the payload key echo, counts corrupt_skipped,
// and is not served.
func TestTierKeyEchoCatchesAliasing(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	k1 := tierKey(1, 0.05, 0.85)
	k2 := tierKey(1, 0.2, 0.82) // same pair, different policy
	s.PutTierDist(k1, 9.5)
	s.Close()

	n1, n2 := tierName(k1), tierName(k2)
	src := filepath.Join(dir, tierDir, n1[:2], n1)
	dstDir := filepath.Join(dir, tierDir, n2[:2])
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dstDir, n2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	if d, ok := s2.LookupTierDist(k2); ok {
		t.Fatalf("aliased tier record served as %v", d)
	}
	if st := s2.Stats(); st.CorruptSkipped != 1 {
		t.Fatalf("corrupt_skipped = %d, want 1", st.CorruptSkipped)
	}
	// The true key still serves.
	if d, ok := s2.LookupTierDist(k1); !ok || d != 9.5 {
		t.Fatalf("true tier lookup = %v, %v", d, ok)
	}
}

// TestTierClearAndNil: ClearFS empties the tier tier alongside dist and
// index, and a nil store's tier methods are inert.
func TestTierClearAndNil(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	k := tierKey(8, 0.05, 0.85)
	s.PutTierDist(k, 2)
	s.Close()
	if err := Clear(dir); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	if _, ok := s2.LookupTierDist(k); ok {
		t.Fatal("ClearFS left tier records behind")
	}

	var nilStore *Store
	if _, ok := nilStore.LookupTierDist(k); ok {
		t.Fatal("nil tier lookup hit")
	}
	nilStore.PutTierDist(k, 1)
}
