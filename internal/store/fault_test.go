package store

import (
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"silvervale/internal/faultfs"
	"silvervale/internal/obs"
)

// TestNoDirectOSCallsInStore is the grep gate of ISSUE 5's acceptance
// criteria: every filesystem call in this package goes through faultfs,
// so the fault injector sees the complete I/O surface. Test files are
// exempt (they stage fixtures with the real filesystem on purpose).
func TestNoDirectOSCallsInStore(t *testing.T) {
	sources, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	osCall := regexp.MustCompile(`\bos\.`)
	for _, src := range sources {
		if strings.HasSuffix(src, "_test.go") {
			continue
		}
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if osCall.MatchString(line) {
				t.Errorf("%s:%d: direct os.* call bypasses faultfs: %s", src, i+1, strings.TrimSpace(line))
			}
		}
	}
}

// TestSyncFaultDoesNotLeakTempFile is the regression test for the
// Store.put temp-file leak: when Sync fails between write and rename,
// the temp file must be removed and the record dropped — an ENOSPC disk
// must not also fill up with orphaned tmp-* files.
func TestSyncFaultDoesNotLeakTempFile(t *testing.T) {
	dir := t.TempDir()
	fsys := faultfs.New(faultfs.OS{}, faultfs.Fault{Op: faultfs.OpSync, N: 1, Class: faultfs.ENOSPC})
	s, err := Open(dir, Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	k := distKey(1)
	s.PutDist(k, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	tmps, err := filepath.Glob(filepath.Join(dir, distDir, "*", "tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("Sync fault leaked temp files: %v", tmps)
	}
	st := s.Stats()
	if st.WriteErrors != 1 || st.FaultInjected != 1 {
		t.Fatalf("stats after Sync fault: %+v", st)
	}
	// The record was dropped, not torn: a reopen misses cleanly.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.LookupDist(k); ok {
		t.Fatal("dropped record served")
	}
	if cs := s2.Stats().CorruptSkipped; cs != 0 {
		t.Fatalf("clean miss counted corrupt: %d", cs)
	}
}

// TestBreakerTripsToMemoryOnly: past the threshold the store goes
// degraded — lookups stop touching disk, puts are dropped, the trip is
// counted exactly once — and lookups keep returning safe misses.
func TestBreakerTripsToMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	// Every op from the second onward fails: Open's MkdirAll succeeds,
	// everything after errors.
	fsys := faultfs.New(faultfs.OS{}, faultfs.Fault{N: 2, Sticky: true, Class: faultfs.EIO})
	s, err := Open(dir, Options{FS: fsys, DegradeThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := obs.NewRecorder()
	s.SetRecorder(rec)
	for i := 0; i < 10; i++ {
		if _, ok := s.LookupDist(distKey(uint64(i))); ok {
			t.Fatal("failing store served a hit")
		}
	}
	if !s.Degraded() {
		t.Fatal("breaker did not trip")
	}
	st := s.Stats()
	if st.IOErrors != 3 || st.FaultInjected != 3 {
		t.Fatalf("breaker tripped at wrong count: %+v", st)
	}
	if st.Misses != 10 {
		t.Fatalf("misses = %d, want 10", st.Misses)
	}
	// Degraded lookups and puts never reach the filesystem.
	before := fsys.Ops()
	s.LookupDist(distKey(99))
	s.PutDist(distKey(99), 1)
	if fsys.Ops() != before {
		t.Fatal("degraded store still touches the filesystem")
	}
	snap := rec.Snapshot()
	if snap.Counters["store.degraded"] != 1 {
		t.Fatalf("store.degraded = %d, want exactly 1", snap.Counters["store.degraded"])
	}
	if snap.Counters["store.fault_injected"] != 3 {
		t.Fatalf("store.fault_injected = %d, want 3", snap.Counters["store.fault_injected"])
	}
	if snap.Counters["store.io_errors"] != 3 {
		t.Fatalf("store.io_errors = %d, want 3", snap.Counters["store.io_errors"])
	}
	if !strings.Contains(st.String(), "DEGRADED (memory-only)") {
		t.Fatalf("degraded marker missing from stats line: %q", st.String())
	}
	if !strings.Contains(st.String(), "3 faults injected") {
		t.Fatalf("fault fragment missing from stats line: %q", st.String())
	}
}

// TestBreakerFiresOnceUnderConcurrency: many goroutines hammering a
// failing store still produce exactly one trip (log + counter).
func TestBreakerFiresOnceUnderConcurrency(t *testing.T) {
	fsys := faultfs.New(faultfs.OS{}, faultfs.Fault{N: 2, Sticky: true, Class: faultfs.ENOSPC})
	s, err := Open(t.TempDir(), Options{FS: fsys, DegradeThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := obs.NewRecorder()
	s.SetRecorder(rec)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				s.LookupDist(distKey(uint64(g*100 + i)))
				s.PutDist(distKey(uint64(g*100+i)), i)
			}
		}(g)
	}
	wg.Wait()
	if !s.Degraded() {
		t.Fatal("breaker did not trip")
	}
	if got := rec.Snapshot().Counters["store.degraded"]; got != 1 {
		t.Fatalf("store.degraded = %d, want exactly 1", got)
	}
}

// TestStrictModeMakesFaultsFatal: under Options.Strict the first fault
// still keeps results safe (miss, recompute) but is remembered and
// surfaces from Close, so a -cache-strict run exits non-zero.
func TestStrictModeMakesFaultsFatal(t *testing.T) {
	fsys := faultfs.New(faultfs.OS{}, faultfs.Fault{N: 2, Sticky: true, Class: faultfs.ENOSPC})
	s, err := Open(t.TempDir(), Options{FS: fsys, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LookupDist(distKey(1)); ok {
		t.Fatal("strict store served a hit off a failing disk")
	}
	if !s.Degraded() {
		t.Fatal("strict store must stop touching disk after the first fault")
	}
	if err := s.Err(); !errors.Is(err, faultfs.ErrENOSPC) {
		t.Fatalf("Err() = %v, want the first fault", err)
	}
	if err := s.Close(); !errors.Is(err, faultfs.ErrENOSPC) {
		t.Fatalf("Close() = %v, want the first fault", err)
	}
	// Close stays idempotent and keeps reporting the fault.
	if err := s.Close(); !errors.Is(err, faultfs.ErrENOSPC) {
		t.Fatalf("second Close() = %v", err)
	}
}

// TestNonStrictCloseSwallowsFaults pins the default contract: a degraded
// store still closes clean (exit 0), matching the graceful-degradation
// promise the CLI documents.
func TestNonStrictCloseSwallowsFaults(t *testing.T) {
	fsys := faultfs.New(faultfs.OS{}, faultfs.Fault{N: 2, Sticky: true, Class: faultfs.EIO})
	s, err := Open(t.TempDir(), Options{FS: fsys, DegradeThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.LookupDist(distKey(3))
	if !s.Degraded() {
		t.Fatal("breaker did not trip at threshold 1")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("non-strict Close returned %v", err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("non-strict Err returned %v", err)
	}
}
