package store

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"testing"

	"silvervale/internal/faultfs"
	"silvervale/internal/msgpack"
)

// gzWrap wraps raw bytes in a well-formed gzip stream, so decode failures
// past the gzip layer exercise the msgpack hardening.
func gzWrap(payload []byte) []byte {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write(payload)
	gz.Close()
	return buf.Bytes()
}

// fuzzSeeds builds the hand-crafted half of the seed corpus: a valid
// record of each kind, truncated gzip, syntactically-broken msgpack
// inside valid gzip, and a wrong-version record.
func fuzzSeeds(t testing.TB) [][]byte {
	t.Helper()
	k := distKey(11)
	valid, err := encodeDist(k, 42)
	if err != nil {
		t.Fatal(err)
	}
	validIdx, err := encodeIndex(IndexKey{App: "a", Model: "m"}, sampleDB())
	if err != nil {
		t.Fatal(err)
	}
	badMsgpack := gzWrap([]byte{0xd9, 0xff, 'x'}) // str8 claiming 255 bytes, 1 present
	var wrongVer bytes.Buffer
	{
		gz := gzip.NewWriter(&wrongVer)
		msgpack.NewEncoder(gz).Encode(map[string]any{"v": int64(FormatVersion + 1), "kind": kindDist})
		gz.Close()
	}
	hostileLen := gzWrap([]byte{0xdd, 0xff, 0xff, 0xff, 0xff}) // array32 claiming 4G elements
	return [][]byte{
		valid,
		validIdx,
		valid[:len(valid)/2], // truncated gzip stream
		valid[:2],            // bare gzip magic
		badMsgpack,
		wrongVer.Bytes(),
		hostileLen,
		gzWrap(nil),          // empty payload
		[]byte("plain text"), // not gzip at all
		nil,
	}
}

// faultSeeds builds the faultfs-generated half of the corpus: real
// partial files harvested from commits crashed mid-Write at several cut
// points (short-written gzip envelopes, exactly the bytes a torn page
// leaves on disk), plus valid-gzip envelopes whose msgpack payload is
// truncated at kill points — the shapes the crash-replay sweep produces,
// fed back as fuzz seeds instead of only hand-crafted hostile bytes.
func faultSeeds(t testing.TB) [][]byte {
	t.Helper()
	k := distKey(11)
	var seeds [][]byte
	for _, cut := range []int{1, 3, 7, 19} {
		dir := t.TempDir()
		fsys := faultfs.New(faultfs.OS{},
			faultfs.Fault{Op: faultfs.OpWrite, N: 1, Class: faultfs.Crash, ShortWrite: cut})
		s, err := Open(dir, Options{FS: fsys})
		if err != nil {
			t.Fatal(err)
		}
		s.PutDist(k, 42)
		s.Close()
		temps, err := filepath.Glob(filepath.Join(dir, distDir, "*", "tmp-*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(temps) != 1 {
			t.Fatalf("crash at write cut %d left %d temp files", cut, len(temps))
		}
		data, err := os.ReadFile(temps[0])
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != cut {
			t.Fatalf("short write landed %d bytes, want %d", len(data), cut)
		}
		seeds = append(seeds, data)
	}
	valid, err := encodeDist(k, 42)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(bytes.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(payload) / 4, len(payload) / 2, len(payload) - 1} {
		seeds = append(seeds, gzWrap(payload[:cut]))
	}
	return seeds
}

// FuzzStoreRecord: arbitrary bytes fed to both record decoders must yield
// error-or-value, never a panic, runaway allocation, or a value that
// passes the key echo without actually matching.
func FuzzStoreRecord(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	for _, seed := range faultSeeds(f) {
		f.Add(seed)
	}
	k := distKey(11)
	ik := IndexKey{App: "a", Model: "m"}
	f.Fuzz(func(t *testing.T, data []byte) {
		if d, err := decodeDist(data, k); err == nil {
			// The only bytes that decode cleanly for this key must carry
			// the value a legitimate writer stored; anything else means
			// the echo let a forgery through.
			enc, encErr := encodeDist(k, d)
			if encErr != nil {
				t.Fatalf("decoded distance %d does not re-encode: %v", d, encErr)
			}
			if rd, rdErr := decodeDist(enc, k); rdErr != nil || rd != d {
				t.Fatalf("re-encoded record does not round trip: %d %v", rd, rdErr)
			}
		}
		if db, err := decodeIndex(data, ik); err == nil && db == nil {
			t.Fatal("decodeIndex returned nil DB without error")
		}
	})
}

// TestFaultSeedsNeverDecode pins the seed shapes themselves: every
// faultfs-harvested partial must be rejected by both decoders (they are
// by construction incomplete), exercising the corruption path without
// the fuzzer.
func TestFaultSeedsNeverDecode(t *testing.T) {
	k := distKey(11)
	for i, seed := range faultSeeds(t) {
		if _, err := decodeDist(seed, k); err == nil {
			t.Errorf("fault seed %d decoded as a distance record", i)
		}
		if _, err := decodeIndex(seed, IndexKey{App: "a", Model: "m"}); err == nil {
			t.Errorf("fault seed %d decoded as an index record", i)
		}
	}
}
