package store

import (
	"bytes"
	"compress/gzip"
	"testing"

	"silvervale/internal/msgpack"
)

// fuzzSeeds builds the seed corpus the issue calls for: a valid record of
// each kind, truncated gzip, syntactically-broken msgpack inside valid
// gzip, and a wrong-version record.
func fuzzSeeds(t testing.TB) [][]byte {
	t.Helper()
	k := distKey(11)
	valid, err := encodeDist(k, 42)
	if err != nil {
		t.Fatal(err)
	}
	validIdx, err := encodeIndex(IndexKey{App: "a", Model: "m"}, sampleDB())
	if err != nil {
		t.Fatal(err)
	}
	gzWrap := func(payload []byte) []byte {
		var buf bytes.Buffer
		gz := gzip.NewWriter(&buf)
		gz.Write(payload)
		gz.Close()
		return buf.Bytes()
	}
	badMsgpack := gzWrap([]byte{0xd9, 0xff, 'x'}) // str8 claiming 255 bytes, 1 present
	var wrongVer bytes.Buffer
	{
		gz := gzip.NewWriter(&wrongVer)
		msgpack.NewEncoder(gz).Encode(map[string]any{"v": int64(FormatVersion + 1), "kind": kindDist})
		gz.Close()
	}
	hostileLen := gzWrap([]byte{0xdd, 0xff, 0xff, 0xff, 0xff}) // array32 claiming 4G elements
	return [][]byte{
		valid,
		validIdx,
		valid[:len(valid)/2], // truncated gzip stream
		valid[:2],            // bare gzip magic
		badMsgpack,
		wrongVer.Bytes(),
		hostileLen,
		gzWrap(nil),          // empty payload
		[]byte("plain text"), // not gzip at all
		nil,
	}
}

// FuzzStoreRecord: arbitrary bytes fed to both record decoders must yield
// error-or-value, never a panic, runaway allocation, or a value that
// passes the key echo without actually matching.
func FuzzStoreRecord(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	k := distKey(11)
	ik := IndexKey{App: "a", Model: "m"}
	f.Fuzz(func(t *testing.T, data []byte) {
		if d, err := decodeDist(data, k); err == nil {
			// The only bytes that decode cleanly for this key must carry
			// the value a legitimate writer stored; anything else means
			// the echo let a forgery through.
			enc, encErr := encodeDist(k, d)
			if encErr != nil {
				t.Fatalf("decoded distance %d does not re-encode: %v", d, encErr)
			}
			if rd, rdErr := decodeDist(enc, k); rdErr != nil || rd != d {
				t.Fatalf("re-encoded record does not round trip: %d %v", rd, rdErr)
			}
		}
		if db, err := decodeIndex(data, ik); err == nil && db == nil {
			t.Fatal("decodeIndex returned nil DB without error")
		}
	})
}
