package store

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"math"

	"silvervale/internal/cbdb"
	"silvervale/internal/msgpack"
	"silvervale/internal/tree"
)

// FormatVersion is mixed into every record's on-disk key and echoed inside
// every record payload. Bump it whenever the record schema or the meaning
// of a stored value changes incompatibly (a TED cost-model semantics
// change, a key derivation change): old records stop resolving and the
// store refills cleanly instead of serving stale answers. Index records
// additionally mix in cbdb.FormatVersion, so a Codebase-DB schema bump
// invalidates the index tier on its own.
const FormatVersion = 1

// Record kinds, one per store tier.
const (
	kindDist  = "ted"  // exact TED distance for one canonical tree pair
	kindIndex = "idx"  // indexed codebase in cbdb encoding
	kindTier  = "tier" // tiered (estimated) distance under one tier policy
	kindSub   = "sub"  // keyroot subtree-distance block (ted subtree memo)
)

// DistKey addresses one exact tree-edit distance: the canonical fingerprint
// pair plus the cost model. Callers must canonicalise symmetric pairs the
// same way ted.Cache does (A before B under Fingerprint.Less when
// Insert == Delete) so both orientations resolve to one record.
type DistKey struct {
	A, B                   tree.Fingerprint
	Insert, Delete, Rename int
}

// TierKey addresses one tiered (estimated) distance: the canonical
// fingerprint pair and cost model — exactly as DistKey — plus every
// parameter of the tier policy that produced the estimate (budget,
// routing threshold, LSH signature shape, and which routing tier fired).
// Exact and tiered records live in different store tiers under different
// kinds, and two tiered runs only share records when their whole policy
// matches, so a warm start can never serve an exact run an estimate, nor
// serve one budget's estimates to another.
type TierKey struct {
	A, B                   tree.Fingerprint
	Insert, Delete, Rename int
	Budget, Threshold      float64
	Bands, Rows            int
	Tier                   uint8
}

// SubKey addresses one keyroot subtree-distance block (DESIGN.md §13):
// the *oriented* subtree fingerprint pair plus the cost model. Unlike
// DistKey the pair is never canonicalised — a block's rows belong to the
// A subtree's left spine and its columns to B's, so the two orientations
// are different payloads and must be different records.
type SubKey struct {
	A, B                   tree.Fingerprint
	Insert, Delete, Rename int
}

// ContentHash is a 128-bit content address over arbitrary input bytes,
// built from the same pair of independent 64-bit hashes tree.Fingerprint
// uses.
type ContentHash struct {
	H1, H2 uint64
}

// IndexKey addresses one indexed codebase: the app/model pair plus a
// content hash over everything that determines the index (sources, unit
// roots, system flags) and a digest of the indexing options (coverage
// mask, system-header handling). A regenerated corpus with changed
// content hashes to a different key, so warm starts can never serve an
// index for sources that no longer match — and two option sets (say a
// default run and a coverage-masked ablation of the same sources) key to
// different records, so they can each warm-start without ever
// cross-contaminating.
type IndexKey struct {
	App, Model string
	Content    ContentHash
	Opts       ContentHash
}

// Hasher accumulates the double 64-bit hash behind ContentHash and record
// file names. The zero value is not usable; call NewHasher.
type Hasher struct {
	h1, h2 uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	djbOffset64 = 5381
)

// NewHasher returns a Hasher at its initial state.
func NewHasher() *Hasher {
	return &Hasher{h1: fnvOffset64, h2: djbOffset64}
}

// writeByte feeds one byte into both hashes.
func (h *Hasher) writeByte(b byte) {
	h.h1 = (h.h1 ^ uint64(b)) * fnvPrime64
	h.h2 = h.h2*33 + uint64(b)
}

// WriteString feeds a string followed by a terminator, so concatenations
// of different splits hash differently.
func (h *Hasher) WriteString(s string) {
	for i := 0; i < len(s); i++ {
		h.writeByte(s[i])
	}
	h.writeByte(0)
}

// WriteUint64 feeds a fixed-width big-endian integer.
func (h *Hasher) WriteUint64(v uint64) {
	for shift := 56; shift >= 0; shift -= 8 {
		h.writeByte(byte(v >> shift))
	}
}

// Sum returns the accumulated content hash.
func (h *Hasher) Sum() ContentHash {
	return ContentHash{H1: h.h1, H2: h.h2}
}

// distName derives the record file name for a distance key. The name is a
// 128-bit hash of every key component plus the format version; a hash
// collision is caught by the key echo inside the payload, which loadDist
// verifies field by field.
func distName(k DistKey) string {
	h := NewHasher()
	h.WriteUint64(FormatVersion)
	h.WriteString(kindDist)
	h.WriteUint64(k.A.H1)
	h.WriteUint64(k.A.H2)
	h.WriteUint64(uint64(k.A.Size))
	h.WriteUint64(k.B.H1)
	h.WriteUint64(k.B.H2)
	h.WriteUint64(uint64(k.B.Size))
	h.WriteUint64(uint64(k.Insert))
	h.WriteUint64(uint64(k.Delete))
	h.WriteUint64(uint64(k.Rename))
	s := h.Sum()
	return fmt.Sprintf("%016x%016x", s.H1, s.H2)
}

// tierName derives the record file name for a tiered-distance key. Every
// policy parameter is hashed (floats by their IEEE-754 bits), so records
// from different budgets or signature shapes land under different names
// and can never shadow one another.
func tierName(k TierKey) string {
	h := NewHasher()
	h.WriteUint64(FormatVersion)
	h.WriteString(kindTier)
	h.WriteUint64(k.A.H1)
	h.WriteUint64(k.A.H2)
	h.WriteUint64(uint64(k.A.Size))
	h.WriteUint64(k.B.H1)
	h.WriteUint64(k.B.H2)
	h.WriteUint64(uint64(k.B.Size))
	h.WriteUint64(uint64(k.Insert))
	h.WriteUint64(uint64(k.Delete))
	h.WriteUint64(uint64(k.Rename))
	h.WriteUint64(math.Float64bits(k.Budget))
	h.WriteUint64(math.Float64bits(k.Threshold))
	h.WriteUint64(uint64(k.Bands))
	h.WriteUint64(uint64(k.Rows))
	h.WriteUint64(uint64(k.Tier))
	s := h.Sum()
	return fmt.Sprintf("%016x%016x", s.H1, s.H2)
}

// subName derives the record file name for a subtree-block key.
func subName(k SubKey) string {
	h := NewHasher()
	h.WriteUint64(FormatVersion)
	h.WriteString(kindSub)
	h.WriteUint64(k.A.H1)
	h.WriteUint64(k.A.H2)
	h.WriteUint64(uint64(k.A.Size))
	h.WriteUint64(k.B.H1)
	h.WriteUint64(k.B.H2)
	h.WriteUint64(uint64(k.B.Size))
	h.WriteUint64(uint64(k.Insert))
	h.WriteUint64(uint64(k.Delete))
	h.WriteUint64(uint64(k.Rename))
	s := h.Sum()
	return fmt.Sprintf("%016x%016x", s.H1, s.H2)
}

// indexName derives the record file name for an index key.
func indexName(k IndexKey) string {
	h := NewHasher()
	h.WriteUint64(FormatVersion)
	h.WriteUint64(cbdb.FormatVersion)
	h.WriteString(kindIndex)
	h.WriteString(k.App)
	h.WriteString(k.Model)
	h.WriteUint64(k.Content.H1)
	h.WriteUint64(k.Content.H2)
	h.WriteUint64(k.Opts.H1)
	h.WriteUint64(k.Opts.H2)
	s := h.Sum()
	return fmt.Sprintf("%016x%016x", s.H1, s.H2)
}

// encodeDist renders a distance record: gzip over a msgpack map that
// echoes the full key (version, kind, fingerprints, costs) alongside the
// distance. The echo is what makes loads collision- and corruption-proof:
// a record is only trusted when every field matches the key being looked
// up.
func encodeDist(k DistKey, d int) ([]byte, error) {
	payload := map[string]any{
		"v":    int64(FormatVersion),
		"kind": kindDist,
		"a1":   k.A.H1, "a2": k.A.H2, "as": int64(k.A.Size),
		"b1": k.B.H1, "b2": k.B.H2, "bs": int64(k.B.Size),
		"ci": int64(k.Insert), "cd": int64(k.Delete), "cr": int64(k.Rename),
		"d": int64(d),
	}
	return encodeEnvelope(payload)
}

// decodeDist parses and verifies a distance record against the key it was
// looked up under. Any decode failure or field mismatch returns an error;
// callers treat every error as a skip, never a wrong answer.
func decodeDist(data []byte, k DistKey) (int, error) {
	m, err := decodeEnvelope(data, kindDist)
	if err != nil {
		return 0, err
	}
	ok := matchU64(m["a1"], k.A.H1) && matchU64(m["a2"], k.A.H2) &&
		matchU64(m["as"], uint64(k.A.Size)) &&
		matchU64(m["b1"], k.B.H1) && matchU64(m["b2"], k.B.H2) &&
		matchU64(m["bs"], uint64(k.B.Size)) &&
		matchU64(m["ci"], uint64(k.Insert)) &&
		matchU64(m["cd"], uint64(k.Delete)) &&
		matchU64(m["cr"], uint64(k.Rename))
	if !ok {
		return 0, fmt.Errorf("store: distance record key mismatch")
	}
	d, ok := m["d"].(int64)
	if !ok {
		return 0, fmt.Errorf("store: distance record has no distance")
	}
	return int(d), nil
}

// encodeTier renders a tiered-distance record: the full key echo —
// fingerprints, costs, and every policy parameter — alongside the
// estimate (as IEEE-754 bits, so the round trip is exact).
func encodeTier(k TierKey, d float64) ([]byte, error) {
	payload := map[string]any{
		"v":    int64(FormatVersion),
		"kind": kindTier,
		"a1":   k.A.H1, "a2": k.A.H2, "as": int64(k.A.Size),
		"b1": k.B.H1, "b2": k.B.H2, "bs": int64(k.B.Size),
		"ci": int64(k.Insert), "cd": int64(k.Delete), "cr": int64(k.Rename),
		"bud": math.Float64bits(k.Budget), "thr": math.Float64bits(k.Threshold),
		"lb": int64(k.Bands), "lr": int64(k.Rows), "tr": int64(k.Tier),
		"d": math.Float64bits(d),
	}
	return encodeEnvelope(payload)
}

// decodeTier parses and verifies a tiered-distance record against the key
// it was looked up under. As with distances, any decode failure or field
// mismatch — including a policy parameter — is an error the caller counts
// as corrupt-skipped, never a wrong answer.
func decodeTier(data []byte, k TierKey) (float64, error) {
	m, err := decodeEnvelope(data, kindTier)
	if err != nil {
		return 0, err
	}
	ok := matchU64(m["a1"], k.A.H1) && matchU64(m["a2"], k.A.H2) &&
		matchU64(m["as"], uint64(k.A.Size)) &&
		matchU64(m["b1"], k.B.H1) && matchU64(m["b2"], k.B.H2) &&
		matchU64(m["bs"], uint64(k.B.Size)) &&
		matchU64(m["ci"], uint64(k.Insert)) &&
		matchU64(m["cd"], uint64(k.Delete)) &&
		matchU64(m["cr"], uint64(k.Rename)) &&
		matchU64(m["bud"], math.Float64bits(k.Budget)) &&
		matchU64(m["thr"], math.Float64bits(k.Threshold)) &&
		matchU64(m["lb"], uint64(k.Bands)) &&
		matchU64(m["lr"], uint64(k.Rows)) &&
		matchU64(m["tr"], uint64(k.Tier))
	if !ok {
		return 0, fmt.Errorf("store: tier record key mismatch")
	}
	bits, ok := asU64(m["d"])
	if !ok {
		return 0, fmt.Errorf("store: tier record has no distance")
	}
	return math.Float64frombits(bits), nil
}

// subMaxSide bounds the decoded block shape: spines longer than this are
// not plausible records, so a corrupted length field can never drive a
// multi-gigabyte allocation.
const subMaxSide = 1 << 20

// encodeSub renders a subtree-block record: the full key echo plus the
// block shape and its cell values packed little-endian, so the int32
// round trip is exact and the payload gzips as one dense byte run.
func encodeSub(k SubKey, l1, l2 int32, vals []int32) ([]byte, error) {
	if int64(l1)*int64(l2) != int64(len(vals)) {
		return nil, fmt.Errorf("store: subtree block shape %dx%d != %d values", l1, l2, len(vals))
	}
	blk := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(blk[4*i:], uint32(v))
	}
	payload := map[string]any{
		"v":    int64(FormatVersion),
		"kind": kindSub,
		"a1":   k.A.H1, "a2": k.A.H2, "as": int64(k.A.Size),
		"b1": k.B.H1, "b2": k.B.H2, "bs": int64(k.B.Size),
		"ci": int64(k.Insert), "cd": int64(k.Delete), "cr": int64(k.Rename),
		"l1": int64(l1), "l2": int64(l2),
		"blk": blk,
	}
	return encodeEnvelope(payload)
}

// decodeSub parses and verifies a subtree-block record against the key it
// was looked up under. As everywhere else, every decode failure or field
// mismatch — including an inconsistent shape — is an error the caller
// counts as corrupt-skipped, never a wrong answer.
func decodeSub(data []byte, k SubKey) (l1, l2 int32, vals []int32, err error) {
	m, err := decodeEnvelope(data, kindSub)
	if err != nil {
		return 0, 0, nil, err
	}
	ok := matchU64(m["a1"], k.A.H1) && matchU64(m["a2"], k.A.H2) &&
		matchU64(m["as"], uint64(k.A.Size)) &&
		matchU64(m["b1"], k.B.H1) && matchU64(m["b2"], k.B.H2) &&
		matchU64(m["bs"], uint64(k.B.Size)) &&
		matchU64(m["ci"], uint64(k.Insert)) &&
		matchU64(m["cd"], uint64(k.Delete)) &&
		matchU64(m["cr"], uint64(k.Rename))
	if !ok {
		return 0, 0, nil, fmt.Errorf("store: subtree record key mismatch")
	}
	w1, ok1 := m["l1"].(int64)
	w2, ok2 := m["l2"].(int64)
	blk, ok3 := m["blk"].([]byte)
	if !ok1 || !ok2 || !ok3 {
		return 0, 0, nil, fmt.Errorf("store: subtree record has no block")
	}
	if w1 <= 0 || w2 <= 0 || w1 > subMaxSide || w2 > subMaxSide ||
		len(blk)%4 != 0 || w1*w2 != int64(len(blk)/4) {
		return 0, 0, nil, fmt.Errorf("store: subtree record shape mismatch")
	}
	vals = make([]int32, w1*w2)
	for i := range vals {
		vals[i] = int32(binary.LittleEndian.Uint32(blk[4*i:]))
	}
	return int32(w1), int32(w2), vals, nil
}

// encodeIndex renders an index record: the key echo plus the codebase DB
// in its raw cbdb MessagePack form, all inside one gzip envelope (the
// bytes are compressed exactly once).
func encodeIndex(k IndexKey, db *cbdb.DB) ([]byte, error) {
	var inner bytes.Buffer
	if err := db.EncodeMsgpack(&inner); err != nil {
		return nil, err
	}
	payload := map[string]any{
		"v":    int64(FormatVersion),
		"kind": kindIndex,
		"app":  k.App, "model": k.Model,
		"c1": k.Content.H1, "c2": k.Content.H2,
		"o1": k.Opts.H1, "o2": k.Opts.H2,
		"db": inner.Bytes(),
	}
	return encodeEnvelope(payload)
}

// decodeIndex parses and verifies an index record against its key.
func decodeIndex(data []byte, k IndexKey) (*cbdb.DB, error) {
	m, err := decodeEnvelope(data, kindIndex)
	if err != nil {
		return nil, err
	}
	app, _ := m["app"].(string)
	model, _ := m["model"].(string)
	if app != k.App || model != k.Model ||
		!matchU64(m["c1"], k.Content.H1) || !matchU64(m["c2"], k.Content.H2) ||
		!matchU64(m["o1"], k.Opts.H1) || !matchU64(m["o2"], k.Opts.H2) {
		return nil, fmt.Errorf("store: index record key mismatch")
	}
	blob, ok := m["db"].([]byte)
	if !ok {
		return nil, fmt.Errorf("store: index record has no codebase DB")
	}
	return cbdb.DecodeMsgpack(bytes.NewReader(blob))
}

// encodeEnvelope gzips one msgpack map.
func encodeEnvelope(payload map[string]any) ([]byte, error) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if err := msgpack.NewEncoder(gz).Encode(payload); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeEnvelope reverses encodeEnvelope and checks version and kind. It
// must be total over arbitrary bytes: every malformed input yields an
// error (FuzzStoreRecord enforces the no-panic property).
func decodeEnvelope(data []byte, kind string) (map[string]any, error) {
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer gz.Close()
	v, err := msgpack.NewDecoder(gz).Decode()
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("store: record payload is %T, not a map", v)
	}
	if ver, _ := m["v"].(int64); ver != FormatVersion {
		return nil, fmt.Errorf("store: record version %v, want %d", m["v"], FormatVersion)
	}
	if got, _ := m["kind"].(string); got != kind {
		return nil, fmt.Errorf("store: record kind %q, want %q", m["kind"], kind)
	}
	return m, nil
}

// matchU64 reports whether a decoded msgpack integer equals want. The
// decoder returns int64 for values within int64 range and uint64 beyond
// it, so both arrivals are accepted.
func matchU64(v any, want uint64) bool {
	got, ok := asU64(v)
	return ok && got == want
}

// asU64 widens a decoded msgpack integer to its uint64 bit pattern.
func asU64(v any) (uint64, bool) {
	switch x := v.(type) {
	case int64:
		return uint64(x), true
	case uint64:
		return x, true
	}
	return 0, false
}
