package store

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"silvervale/internal/cbdb"
	"silvervale/internal/obs"
	"silvervale/internal/tree"
)

func distKey(seed uint64) DistKey {
	return DistKey{
		A:      tree.Fingerprint{H1: seed, H2: seed * 31, Size: uint32(seed%100 + 1)},
		B:      tree.Fingerprint{H1: seed * 7, H2: seed * 131, Size: uint32(seed%90 + 2)},
		Insert: 1, Delete: 1, Rename: 1,
	}
}

func sampleDB() *cbdb.DB {
	return &cbdb.DB{
		Codebase: "babelstream",
		Model:    "omp",
		Lang:     "cxx",
		Units: []cbdb.UnitRecord{{
			File: "main.cpp", Role: "main", SLOC: 10, LLOC: 7,
			SourceLines:   []string{"int main() {", "}"},
			SourceLinesPP: []string{"int main() {", "}", "int pp;"},
			LineFiles:     []string{"main.cpp", "main.cpp"},
			LineNums:      []int{1, 2},
			Trees:         map[string]string{"tsem": "(TranslationUnit (FunctionDecl))"},
		}},
	}
}

// openT opens a store rooted in dir and closes it at test end.
func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestDistRoundTrip: a put distance survives process "restart" (reopen)
// and is returned only for its exact key.
func TestDistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	k := distKey(42)
	if _, ok := s.LookupDist(k); ok {
		t.Fatal("empty store must miss")
	}
	s.PutDist(k, 17)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Misses != 1 || st.BytesWritten == 0 || st.Flushes == 0 {
		t.Fatalf("writer stats: %+v", st)
	}

	s2 := openT(t, dir, Options{})
	d, ok := s2.LookupDist(k)
	if !ok || d != 17 {
		t.Fatalf("warm lookup = %d, %v; want 17, true", d, ok)
	}
	if _, ok := s2.LookupDist(distKey(43)); ok {
		t.Fatal("different key must miss")
	}
	st = s2.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.BytesRead == 0 {
		t.Fatalf("reader stats: %+v", st)
	}
}

// TestIndexRoundTrip: the index tier preserves the full cbdb record.
func TestIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	k := IndexKey{App: "babelstream", Model: "omp", Content: ContentHash{H1: 5, H2: 9}}
	s.PutIndex(k, sampleDB())
	s.Close()

	s2 := openT(t, dir, Options{})
	db, ok := s2.LookupIndex(k)
	if !ok {
		t.Fatal("warm index lookup missed")
	}
	if db.Codebase != "babelstream" || db.Model != "omp" || db.Lang != "cxx" {
		t.Fatalf("metadata: %+v", db)
	}
	u := db.Units[0]
	if len(u.SourceLinesPP) != 3 || len(u.LineNums) != 2 || u.Trees["tsem"] == "" {
		t.Fatalf("unit lost fields: %+v", u)
	}
	// Same app/model but different content must miss: content addressing
	// is what keeps a stale index from serving changed sources.
	if _, ok := s2.LookupIndex(IndexKey{App: "babelstream", Model: "omp", Content: ContentHash{H1: 6, H2: 9}}); ok {
		t.Fatal("changed content hash must miss")
	}
}

// TestNilStoreIsInert: every method on a nil *Store is a safe no-op, the
// contract that keeps call sites free of nil checks.
func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if _, ok := s.LookupDist(distKey(1)); ok {
		t.Fatal("nil lookup hit")
	}
	if _, ok := s.LookupIndex(IndexKey{}); ok {
		t.Fatal("nil index lookup hit")
	}
	s.PutDist(distKey(1), 3)
	s.PutIndex(IndexKey{}, sampleDB())
	s.SetRecorder(nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 || st.BytesRead != 0 ||
		st.BytesWritten != 0 || st.TierBytes != nil || st.Degraded {
		t.Fatal("nil stats not zero")
	}
	if _, _, _, ok := s.LookupSub(SubKey{}); ok {
		t.Fatal("nil sub lookup hit")
	}
	s.PutSub(SubKey{}, 1, 1, []int32{0})
	if s.Readonly() {
		t.Fatal("nil store is not readonly (it is nothing)")
	}
}

// TestReadonlyDropsWrites: a readonly store serves hits but never mutates
// the directory.
func TestReadonlyDropsWrites(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	k := distKey(7)
	s.PutDist(k, 9)
	s.Close()

	ro := openT(t, dir, Options{Readonly: true})
	if !ro.Readonly() {
		t.Fatal("Readonly() false")
	}
	if d, ok := ro.LookupDist(k); !ok || d != 9 {
		t.Fatalf("readonly lookup = %d, %v", d, ok)
	}
	ro.PutDist(distKey(8), 1)
	ro.Close()
	if st := ro.Stats(); st.BytesWritten != 0 || st.Flushes != 0 {
		t.Fatalf("readonly store wrote: %+v", st)
	}
	if _, ok := openT(t, dir, Options{}).LookupDist(distKey(8)); ok {
		t.Fatal("readonly put leaked to disk")
	}
}

// TestCorruptionIsSkippedNotServed: truncated and bit-flipped records are
// counted and treated as misses; a rewrite then heals the entry.
func TestCorruptionIsSkippedNotServed(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	k := distKey(99)
	s.PutDist(k, 1234)
	s.Close()

	name := distName(k)
	path := filepath.Join(dir, distDir, name[:2], name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func() []byte{
		"truncated": func() []byte { return data[:len(data)/2] },
		"bitflip":   func() []byte { c := append([]byte{}, data...); c[len(c)/2] ^= 0x40; return c },
		"garbage":   func() []byte { return []byte("not a record at all") },
		"empty":     func() []byte { return nil },
	}
	for mname, mutate := range mutations {
		t.Run(mname, func(t *testing.T) {
			if err := os.WriteFile(path, mutate(), 0o644); err != nil {
				t.Fatal(err)
			}
			s2 := openT(t, dir, Options{})
			if d, ok := s2.LookupDist(k); ok {
				t.Fatalf("corrupt record served: %d", d)
			}
			st := s2.Stats()
			if st.CorruptSkipped != 1 {
				t.Fatalf("corrupt_skipped = %d, want 1 (%+v)", st.CorruptSkipped, st)
			}
			// the caller recomputes and rewrites; the store heals
			s2.PutDist(k, 1234)
			s2.Close()
			s3 := openT(t, dir, Options{})
			if d, ok := s3.LookupDist(k); !ok || d != 1234 {
				t.Fatalf("healed lookup = %d, %v", d, ok)
			}
		})
	}
}

// TestKeyEchoCatchesNameCollisions: a record copied under another key's
// file name (a simulated 128-bit name collision or an aliased file) fails
// the payload echo and is skipped.
func TestKeyEchoCatchesNameCollisions(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	k1, k2 := distKey(1), distKey(2)
	s.PutDist(k1, 11)
	s.Close()

	n1, n2 := distName(k1), distName(k2)
	src := filepath.Join(dir, distDir, n1[:2], n1)
	dstDir := filepath.Join(dir, distDir, n2[:2])
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dstDir, n2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	if d, ok := s2.LookupDist(k2); ok {
		t.Fatalf("aliased record served as %d", d)
	}
	if st := s2.Stats(); st.CorruptSkipped != 1 {
		t.Fatalf("corrupt_skipped = %d, want 1", st.CorruptSkipped)
	}
}

// TestAbandonedTempFilesAreIgnored: a crash mid-flush leaves tmp-* files
// behind; they are never read as records and never corrupt lookups.
func TestAbandonedTempFilesAreIgnored(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	k := distKey(5)
	s.PutDist(k, 55)
	s.Close()

	name := distName(k)
	shard := filepath.Join(dir, distDir, name[:2])
	if err := os.WriteFile(filepath.Join(shard, "tmp-crashed"), []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	if d, ok := s2.LookupDist(k); !ok || d != 55 {
		t.Fatalf("lookup near temp junk = %d, %v", d, ok)
	}
	if st := s2.Stats(); st.CorruptSkipped != 0 {
		t.Fatalf("temp file miscounted as corrupt: %+v", st)
	}
}

// TestClearRemovesOnlyTiers: Clear wipes both record tiers and nothing
// else under the root.
func TestClearRemovesOnlyTiers(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	k := distKey(3)
	s.PutDist(k, 3)
	s.PutIndex(IndexKey{App: "a", Model: "m"}, sampleDB())
	s.Close()
	bystander := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(bystander, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Clear(dir); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	if _, ok := s2.LookupDist(k); ok {
		t.Fatal("Clear left distance records")
	}
	if _, ok := s2.LookupIndex(IndexKey{App: "a", Model: "m"}); ok {
		t.Fatal("Clear left index records")
	}
	if _, err := os.Stat(bystander); err != nil {
		t.Fatalf("Clear touched bystander file: %v", err)
	}
}

// TestConcurrentPutsAndLookups drives the write-behind queue and read
// path from many goroutines (the race detector is part of tier-1).
func TestConcurrentPutsAndLookups(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{QueueSize: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := distKey(uint64(i % 10))
				s.PutDist(k, i%10)
				s.LookupDist(k)
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if d, ok := s2.LookupDist(distKey(uint64(i))); !ok || d != i {
			t.Fatalf("key %d = %d, %v", i, d, ok)
		}
	}
	// Close after Close is a no-op; puts after Close are dropped safely.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.PutDist(distKey(77), 7)
}

// TestObsCountersMirrorStats: with a recorder attached the store.* obs
// counters track the internal stats.
func TestObsCountersMirrorStats(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	rec := obs.NewRecorder()
	s.SetRecorder(rec)
	k := distKey(1)
	s.LookupDist(k) // miss
	s.PutDist(k, 2)
	s.Close()
	s2 := openT(t, dir, Options{})
	s2.SetRecorder(rec)
	s2.LookupDist(k) // hit
	snap := rec.Snapshot()
	if snap.Counters["store.misses"] != 1 || snap.Counters["store.hits"] != 1 {
		t.Fatalf("obs counters: %+v", snap.Counters)
	}
	if snap.Counters["store.bytes_read"] == 0 {
		t.Fatalf("bytes_read counter empty: %+v", snap.Counters)
	}
}

// TestStatsString pins the fragment the post-sweep CLI line embeds.
func TestStatsString(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1, BytesRead: 10, BytesWritten: 20, Flushes: 2, CorruptSkipped: 1}
	got := s.String()
	for _, frag := range []string{"store 3 hits", "1 misses", "10B read", "20B written", "2 flushes", "1 corrupt-skipped"} {
		if !bytes.Contains([]byte(got), []byte(frag)) {
			t.Errorf("Stats.String() = %q missing %q", got, frag)
		}
	}
}

// TestTwoEnginesOneStoreInterleaving is the multi-tenant shape the serve
// daemon introduces (DESIGN.md §14): two engines — modeled as two Store
// handles over one directory, each with its own write-behind queue —
// interleave puts and lookups of the same deterministic keys. Concurrent
// puts of the same key stay keep-first: once engine A's record is
// committed, engine B's re-put of identical bytes never rewrites the
// file (ModTime pins it), every lookup from either handle serves the
// committed value, and clean concurrency never increments
// corrupt_skipped on any handle.
func TestTwoEnginesOneStoreInterleaving(t *testing.T) {
	dir := t.TempDir()
	const keys = 12
	val := func(i int) int { return i*31 + 7 }
	path := func(i int) string {
		name := distName(distKey(uint64(i)))
		return filepath.Join(dir, distDir, name[:2], name)
	}

	// Engine A commits every key first and we pin the committed records'
	// modification times — the "first" of keep-first.
	a := openT(t, dir, Options{QueueSize: 8})
	for i := 0; i < keys; i++ {
		a.PutDist(distKey(uint64(i)), val(i))
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	mtimes := make([]time.Time, keys)
	for i := 0; i < keys; i++ {
		fi, err := os.Stat(path(i))
		if err != nil {
			t.Fatalf("key %d never committed: %v", i, err)
		}
		mtimes[i] = fi.ModTime()
	}

	// Engines B and C now interleave: both re-put every key (the race a
	// shared daemon store sees when two tenants compute the same cell)
	// while reading back concurrently. Reads must only ever see the
	// committed value.
	b := openT(t, dir, Options{QueueSize: 8})
	c := openT(t, dir, Options{QueueSize: 8})
	var wg sync.WaitGroup
	for _, s := range []*Store{b, c} {
		wg.Add(1)
		go func(s *Store) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := 0; i < keys; i++ {
					s.PutDist(distKey(uint64(i)), val(i))
					if d, ok := s.LookupDist(distKey(uint64(i))); !ok || d != val(i) {
						t.Errorf("interleaved lookup key %d = %d, %v; want %d", i, d, ok, val(i))
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Keep-first: engine A's records were never rewritten.
	for i := 0; i < keys; i++ {
		fi, err := os.Stat(path(i))
		if err != nil {
			t.Fatalf("key %d vanished: %v", i, err)
		}
		if !fi.ModTime().Equal(mtimes[i]) {
			t.Errorf("key %d was rewritten by a later identical put (mtime %v -> %v)",
				i, mtimes[i], fi.ModTime())
		}
	}
	for name, st := range map[string]Stats{"b": b.Stats(), "c": c.Stats()} {
		if st.CorruptSkipped != 0 {
			t.Errorf("engine %s: clean concurrency tripped corrupt_skipped: %+v", name, st)
		}
		if st.WriteErrors != 0 {
			t.Errorf("engine %s: clean concurrency hit write errors: %+v", name, st)
		}
	}

	// A fresh handle (a restarted daemon) still serves every key exactly.
	s2 := openT(t, dir, Options{})
	for i := 0; i < keys; i++ {
		if d, ok := s2.LookupDist(distKey(uint64(i))); !ok || d != val(i) {
			t.Fatalf("reopened lookup key %d = %d, %v; want %d", i, d, ok, val(i))
		}
	}
	if st := s2.Stats(); st.CorruptSkipped != 0 {
		t.Fatalf("reopened handle skipped corrupt records: %+v", st)
	}
}
