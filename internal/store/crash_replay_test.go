package store

import (
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"silvervale/internal/faultfs"
	"silvervale/internal/faultfs/replay"
)

// replayKeys is the fixed put set the crash-replay workload commits; the
// values are what a reopened store must either serve exactly or miss.
var replayKeys = []struct {
	seed uint64
	dist int
}{
	{101, 7},
	{202, 13},
	{303, 4096},
}

// storeWorkload is the put→flush→Close sequence under test, expressed
// over an injectable filesystem. Injected commit faults are swallowed by
// the store by design, so the workload itself only fails if Open does.
func storeWorkload(fsys *faultfs.FaultFS, dir string) error {
	s, err := Open(dir, Options{FS: fsys, DegradeThreshold: 1 << 30})
	if err != nil {
		if faultfs.IsInjected(err) {
			return nil // Open itself was the kill point; nothing written
		}
		return err
	}
	for _, k := range replayKeys {
		s.PutDist(distKey(k.seed), k.dist)
	}
	s.Close()
	return nil
}

// countRecordFiles walks the distance tier of a frozen store directory
// and splits the committed final-name files from abandoned temp files.
func countRecordFiles(t *testing.T, dir string) (records, temps []string) {
	t.Helper()
	root := filepath.Join(dir, distDir)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasPrefix(d.Name(), "tmp-") {
			temps = append(temps, path)
		} else {
			records = append(records, path)
		}
		return nil
	})
	if err != nil && !strings.Contains(err.Error(), "no such file") {
		t.Fatal(err)
	}
	return records, temps
}

// TestCrashReplayStoreWritePath is the crash-consistency gate of ISSUE 5:
// every kill point of the put→flush→Close sequence × every fault class.
// After each replay the frozen tree is reopened with the real filesystem
// and the three invariants are asserted: (1) no wrong answers — every
// lookup either misses or returns the exact committed value; (2) every
// damaged final-name record is accounted for in corrupt_skipped; (3) a
// recompute-and-rewrite pass heals the store to fully warm, i.e. a
// subsequent sweep is bit-identical to a cold one.
func TestCrashReplayStoreWritePath(t *testing.T) {
	templates := []faultfs.Fault{
		{Class: faultfs.ENOSPC},
		{Class: faultfs.EIO},
		{Class: faultfs.Crash},
		{Class: faultfs.TornRename},
		{Class: faultfs.Crash, Op: faultfs.OpWrite, ShortWrite: 5},
	}
	replay.Sweep(t, templates, storeWorkload, func(t *testing.T, dir string, p replay.Point) {
		// Reopen the frozen tree the way a restarted process would.
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		servable := map[uint64]bool{}
		for _, k := range replayKeys {
			if d, ok := s.LookupDist(distKey(k.seed)); ok {
				if d != k.dist {
					t.Fatalf("wrong answer served after kill point: key %d = %d, want %d", k.seed, d, k.dist)
				}
				servable[k.seed] = true
			}
		}
		records, _ := countRecordFiles(t, dir)
		// Invariant 2: files present under final names but not servable
		// are exactly the damaged ones, and each was counted.
		damaged := len(records) - len(servable)
		if damaged < 0 {
			t.Fatalf("%d servable keys but only %d record files", len(servable), len(records))
		}
		if got := s.Stats().CorruptSkipped; got != uint64(damaged) {
			t.Fatalf("corrupt_skipped = %d, want %d (records %d, servable %d)",
				got, damaged, len(records), len(servable))
		}
		// Invariant 3: recompute-and-rewrite heals every key.
		for _, k := range replayKeys {
			s.PutDist(distKey(k.seed), k.dist)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		healed, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer healed.Close()
		for _, k := range replayKeys {
			d, ok := healed.LookupDist(distKey(k.seed))
			if !ok || d != k.dist {
				t.Fatalf("healed store: key %d = %d, %v; want %d", k.seed, d, ok, k.dist)
			}
		}
		if cs := healed.Stats().CorruptSkipped; cs != 0 {
			t.Fatalf("healed store still skips corrupt records: %d", cs)
		}
	})
}
