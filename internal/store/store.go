// Package store implements the persistent content-addressed artifact
// store: cross-run warm starts for the two expensive products of the TBMD
// pipeline — exact TED distances and indexed codebases. The paper's own
// workflow already persists the index step as a portable Codebase DB
// (Zstd+MessagePack, package cbdb); this package generalises that idea
// into a two-tier on-disk cache addressed by content, so a repeat sweep
// (re-running figures, CI checks, per-PR metric runs) is bounded by decode
// time instead of the quadratic TED core.
//
// Layout: <root>/<tier>/<shard>/<name>, where tier is "ted", "idx",
// "tier", or "sub", name is a 128-bit hash over the full record key
// (fingerprint pair + cost model + format version for distances and
// subtree blocks; app/model/content hash + format versions for indexes)
// and shard is the name's first byte in hex
// — a 256-way fan-out that keeps directories small at millions of
// records.
//
// Durability model: records are immutable and written via temp-file +
// fsync + rename, so a reader never observes a partial record under its
// final name. Writes go through a background flusher goroutine behind a
// bounded queue (write-behind); Close drains the queue synchronously.
// Loads are corruption-tolerant: a truncated, bit-flipped, wrong-version,
// or colliding record fails its envelope checks or key echo and is
// counted in corrupt_skipped and treated as a miss — never a panic, never
// a wrong answer. Killing a process mid-flush therefore costs at most the
// queued records, not correctness.
//
// Failure model (DESIGN.md §9): every filesystem call goes through a
// faultfs.FS, so the whole write/read path is fault-injectable. I/O
// errors are recoverable by construction — a failed read is a miss, a
// failed commit drops that record — but a store that keeps erroring is
// paying full syscall latency for nothing, so a breaker counts I/O errors
// and past Options.DegradeThreshold trips the store into memory-only
// degraded mode: lookups stop touching disk, puts are dropped, the trip
// is logged once and counted via store.degraded, and the distance numbers
// remain bit-identical to a store-less run. Options.Strict inverts the
// trade: the first I/O fault is remembered and returned by Close, so CI
// runs can fail loudly instead of degrading silently.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"path/filepath"
	"sync"
	"sync/atomic"

	"silvervale/internal/cbdb"
	"silvervale/internal/faultfs"
	"silvervale/internal/obs"
)

// Tier directory names under the store root.
const (
	distDir  = "ted"
	indexDir = "idx"
	tierDir  = "tier"
	subDir   = "sub"
)

// tierNames lists every tier directory in stable display order; per-tier
// byte accounting and Clear iterate it.
var tierNames = [...]string{distDir, indexDir, tierDir, subDir}

// tierIndex maps a tier directory to its accounting slot.
func tierIndex(tier string) int {
	for i, t := range tierNames {
		if t == tier {
			return i
		}
	}
	return 0
}

// maxBatch bounds how many queued records one flush writes; with the
// queue non-empty the flusher coalesces up to this many puts into a
// single pass (one flushes increment).
const maxBatch = 256

// defaultQueue is the write-behind queue bound when Options.QueueSize is
// zero. Producers block once the queue is full — backpressure, not loss.
const defaultQueue = 1024

// defaultDegradeThreshold is how many I/O errors trip the breaker when
// Options.DegradeThreshold is zero. Low enough that a dead disk stops
// costing syscalls within one flush batch, high enough that a single
// transient EIO does not give up the warm-start tier for the whole run.
const defaultDegradeThreshold = 8

// Options configures Open.
type Options struct {
	// Readonly serves lookups but drops every Put, so shared or archived
	// cache directories can back runs without being mutated.
	Readonly bool
	// QueueSize bounds the write-behind queue (0 selects the default).
	QueueSize int
	// FS is the filesystem the store performs all I/O through. Nil
	// selects the passthrough faultfs.OS; tests inject a faultfs.FaultFS
	// to script failures and crash points.
	FS faultfs.FS
	// Strict makes I/O faults fatal instead of degrading: the first
	// fault still trips the breaker (so results stay correct), but it is
	// remembered and returned by Close/Err, failing the run.
	Strict bool
	// DegradeThreshold is how many I/O errors trip the memory-only
	// breaker (0 selects the default; Strict trips on the first).
	DegradeThreshold int
}

// pending is one queued write: the target path plus a deferred encoder,
// so payload rendering happens on the flusher goroutine, off the TED hot
// path.
type pending struct {
	tier, name string
	encode     func() ([]byte, error)
}

// Store is a persistent content-addressed artifact store. All methods are
// safe for concurrent use. A nil *Store is valid and behaves as an empty
// read-through with dropped writes, so callers can thread an optional
// store without nil checks at every site.
type Store struct {
	root      string
	readonly  bool
	strict    bool
	threshold uint64
	fs        faultfs.FS

	mu     sync.RWMutex // guards queue against Close; RLock to send
	queue  chan pending
	closed bool
	wg     sync.WaitGroup

	hits           atomic.Uint64
	misses         atomic.Uint64
	bytesRead      atomic.Uint64
	bytesWritten   atomic.Uint64
	flushes        atomic.Uint64
	corruptSkipped atomic.Uint64
	writeErrors    atomic.Uint64

	// Per-tier splits of bytesRead/bytesWritten, indexed by tierIndex, so
	// the growth of each tier — the subtree-block memo in particular — is
	// observable from the stats line rather than only from du(1).
	tierRead    [len(tierNames)]atomic.Uint64
	tierWritten [len(tierNames)]atomic.Uint64

	// Breaker state: ioErrors counts every failed filesystem call,
	// faultInjected the subset that faultfs scheduled; once ioErrors
	// passes the threshold (or immediately under Strict) tripOnce fires,
	// degraded flips, and the store stops touching disk.
	ioErrors      atomic.Uint64
	faultInjected atomic.Uint64
	degraded      atomic.Bool
	tripOnce      sync.Once

	errMu    sync.Mutex
	firstErr error // first I/O fault, surfaced by Err/Close under Strict

	obs atomic.Pointer[storeObs]
}

// storeObs caches the obs counters the store feeds when a recorder is
// attached (nil when observability is off — the pointer-check path).
type storeObs struct {
	hits           *obs.Counter // store.hits
	misses         *obs.Counter // store.misses
	bytesRead      *obs.Counter // store.bytes_read
	bytesWritten   *obs.Counter // store.bytes_written
	flushes        *obs.Counter // store.flushes
	corruptSkipped *obs.Counter // store.corrupt_skipped
	ioErrors       *obs.Counter // store.io_errors — failed filesystem calls
	degraded       *obs.Counter // store.degraded — 1 once the breaker trips
	faultInjected  *obs.Counter // store.fault_injected — scheduled faults observed
}

// Open creates (or reuses) a store rooted at dir and starts the flusher
// unless the store is readonly. Open itself fails hard on error — an
// unusable root is a configuration problem, not a mid-run fault.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	threshold := uint64(opts.DegradeThreshold)
	if threshold == 0 {
		threshold = defaultDegradeThreshold
	}
	s := &Store{
		root:      dir,
		readonly:  opts.Readonly,
		strict:    opts.Strict,
		threshold: threshold,
		fs:        fsys,
	}
	if !opts.Readonly {
		n := opts.QueueSize
		if n <= 0 {
			n = defaultQueue
		}
		s.queue = make(chan pending, n)
		s.wg.Add(1)
		go s.flusher()
	}
	return s, nil
}

// Clear removes both record tiers under dir. Only the store's own
// directories are touched; anything else under dir survives.
func Clear(dir string) error { return ClearFS(faultfs.OS{}, dir) }

// ClearFS is Clear over an explicit filesystem.
func ClearFS(fsys faultfs.FS, dir string) error {
	for _, tier := range tierNames {
		if err := fsys.RemoveAll(filepath.Join(dir, tier)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// Root returns the store's root directory.
func (s *Store) Root() string {
	if s == nil {
		return ""
	}
	return s.root
}

// Readonly reports whether puts are dropped.
func (s *Store) Readonly() bool { return s != nil && s.readonly }

// Degraded reports whether the I/O-error breaker has tripped the store
// into memory-only mode (lookups miss without touching disk, puts are
// dropped). Results are unaffected — callers recompute exactly as they
// would on a cold cache.
func (s *Store) Degraded() bool { return s != nil && s.degraded.Load() }

// Err returns the first I/O fault a Strict store observed (nil
// otherwise, and always nil for non-strict stores).
func (s *Store) Err() error {
	if s == nil || !s.strict {
		return nil
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.firstErr
}

// SetRecorder attaches an observability recorder feeding the store.*
// counters. A nil recorder detaches; the store's own Stats counters run
// regardless.
func (s *Store) SetRecorder(rec *obs.Recorder) {
	if s == nil {
		return
	}
	if rec == nil {
		s.obs.Store(nil)
		return
	}
	s.obs.Store(&storeObs{
		hits:           rec.Counter("store.hits"),
		misses:         rec.Counter("store.misses"),
		bytesRead:      rec.Counter("store.bytes_read"),
		bytesWritten:   rec.Counter("store.bytes_written"),
		flushes:        rec.Counter("store.flushes"),
		corruptSkipped: rec.Counter("store.corrupt_skipped"),
		ioErrors:       rec.Counter("store.io_errors"),
		degraded:       rec.Counter("store.degraded"),
		faultInjected:  rec.Counter("store.fault_injected"),
	})
}

// TierIO is one tier's on-disk traffic this run. Written approximates the
// tier's on-disk growth (records are immutable; same-key rewrites are
// rare, identical-payload races).
type TierIO struct {
	Read    uint64 // compressed bytes read
	Written uint64 // compressed bytes committed
}

// Stats is a point-in-time snapshot of store traffic.
type Stats struct {
	Hits           uint64 // lookups answered from disk
	Misses         uint64 // lookups with no (usable) record
	BytesRead      uint64 // compressed bytes read by hits and skips
	BytesWritten   uint64 // compressed bytes committed to disk
	Flushes        uint64 // write-behind batches flushed
	CorruptSkipped uint64 // undecodable or key-mismatched records skipped
	WriteErrors    uint64 // failed record commits (records dropped)
	IOErrors       uint64 // failed filesystem calls (reads and writes)
	FaultInjected  uint64 // I/O errors scheduled by faultfs injection
	Degraded       bool   // breaker tripped: store is memory-only

	// TierBytes splits the byte totals per tier, keyed by tier directory
	// name ("ted", "idx", "tier", "sub"); every tier is present, zeros
	// included, so callers can index without existence checks.
	TierBytes map[string]TierIO
}

// Stats returns current counters. A nil store returns zeros (with a nil
// TierBytes map).
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	tiers := make(map[string]TierIO, len(tierNames))
	for i, name := range tierNames {
		tiers[name] = TierIO{Read: s.tierRead[i].Load(), Written: s.tierWritten[i].Load()}
	}
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		BytesRead:      s.bytesRead.Load(),
		BytesWritten:   s.bytesWritten.Load(),
		Flushes:        s.flushes.Load(),
		CorruptSkipped: s.corruptSkipped.Load(),
		WriteErrors:    s.writeErrors.Load(),
		IOErrors:       s.ioErrors.Load(),
		FaultInjected:  s.faultInjected.Load(),
		Degraded:       s.degraded.Load(),
		TierBytes:      tiers,
	}
}

// String renders the snapshot as the store fragment of the post-sweep
// cache-stats line. The base shape is stable; fault traffic and the
// breaker only append fragments, so fault-free runs print exactly the
// historical line.
func (s Stats) String() string {
	line := fmt.Sprintf("store %d hits, %d misses, %dB read, %dB written, %d flushes, %d corrupt-skipped",
		s.Hits, s.Misses, s.BytesRead, s.BytesWritten, s.Flushes, s.CorruptSkipped)
	for _, name := range tierNames {
		if io := s.TierBytes[name]; io.Read != 0 || io.Written != 0 {
			line += fmt.Sprintf(", %s tier %dB written/%dB read", name, io.Written, io.Read)
		}
	}
	if s.FaultInjected > 0 {
		line += fmt.Sprintf(", %d faults injected", s.FaultInjected)
	}
	if s.Degraded {
		line += ", DEGRADED (memory-only)"
	}
	return line
}

// LookupDist returns the stored distance for a canonical key, if a valid
// record exists.
func (s *Store) LookupDist(k DistKey) (int, bool) {
	if s == nil {
		return 0, false
	}
	data, ok := s.load(distDir, distName(k))
	if !ok {
		return 0, false
	}
	d, err := decodeDist(data, k)
	if err != nil {
		s.skipCorrupt()
		return 0, false
	}
	s.hit()
	return d, true
}

// PutDist queues a distance record for write-behind. No-op on nil,
// readonly, degraded, or closed stores.
func (s *Store) PutDist(k DistKey, d int) {
	if s == nil {
		return
	}
	s.put(pending{
		tier: distDir, name: distName(k),
		encode: func() ([]byte, error) { return encodeDist(k, d) },
	})
}

// LookupTierDist returns the stored tiered-distance estimate for a
// policy-qualified key, if a valid record exists. A record written under
// any other policy (different budget, threshold, signature shape, or
// routing tier) hashes to a different name and can never be served here;
// a corrupted or colliding record fails its key echo and is counted in
// corrupt_skipped, surfacing as a miss.
func (s *Store) LookupTierDist(k TierKey) (float64, bool) {
	if s == nil {
		return 0, false
	}
	data, ok := s.load(tierDir, tierName(k))
	if !ok {
		return 0, false
	}
	d, err := decodeTier(data, k)
	if err != nil {
		s.skipCorrupt()
		return 0, false
	}
	s.hit()
	return d, true
}

// PutTierDist queues a tiered-distance record for write-behind. No-op on
// nil, readonly, degraded, or closed stores.
func (s *Store) PutTierDist(k TierKey, d float64) {
	if s == nil {
		return
	}
	s.put(pending{
		tier: tierDir, name: tierName(k),
		encode: func() ([]byte, error) { return encodeTier(k, d) },
	})
}

// LookupSub returns the stored keyroot subtree-distance block for an
// oriented key, if a valid record exists. A corrupted, truncated, or
// shape-inconsistent record fails decode and is counted in
// corrupt_skipped, surfacing as a miss the caller answers by re-running
// the keyroot DP.
func (s *Store) LookupSub(k SubKey) (l1, l2 int32, vals []int32, ok bool) {
	if s == nil {
		return 0, 0, nil, false
	}
	data, loaded := s.load(subDir, subName(k))
	if !loaded {
		return 0, 0, nil, false
	}
	l1, l2, vals, err := decodeSub(data, k)
	if err != nil {
		s.skipCorrupt()
		return 0, 0, nil, false
	}
	s.hit()
	return l1, l2, vals, true
}

// PutSub queues a subtree-block record for write-behind. The vals slice
// must not be mutated afterwards (ted's blocks are immutable). No-op on
// nil, readonly, degraded, or closed stores.
func (s *Store) PutSub(k SubKey, l1, l2 int32, vals []int32) {
	if s == nil {
		return
	}
	s.put(pending{
		tier: subDir, name: subName(k),
		encode: func() ([]byte, error) { return encodeSub(k, l1, l2, vals) },
	})
}

// LookupIndex returns the stored codebase DB for a key, if a valid record
// exists.
func (s *Store) LookupIndex(k IndexKey) (*cbdb.DB, bool) {
	if s == nil {
		return nil, false
	}
	data, ok := s.load(indexDir, indexName(k))
	if !ok {
		return nil, false
	}
	db, err := decodeIndex(data, k)
	if err != nil {
		s.skipCorrupt()
		return nil, false
	}
	s.hit()
	return db, true
}

// PutIndex queues an index record for write-behind. The DB must not be
// mutated afterwards (core.Index.ToDB builds a fresh one).
func (s *Store) PutIndex(k IndexKey, db *cbdb.DB) {
	if s == nil {
		return
	}
	s.put(pending{
		tier: indexDir, name: indexName(k),
		encode: func() ([]byte, error) { return encodeIndex(k, db) },
	})
}

// Close stops accepting writes, drains the queue synchronously, and waits
// for the flusher to commit every pending record. Safe to call more than
// once and on nil/readonly stores. Under Options.Strict it returns the
// first I/O fault the store observed, so fault-intolerant runs fail here.
func (s *Store) Close() error {
	if s == nil || s.readonly {
		return s.Err()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.Err()
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	return s.Err()
}

// load reads one record file. A missing file is a plain miss; a read
// error feeds the breaker and surfaces as a miss. A degraded store never
// touches disk.
func (s *Store) load(tier, name string) ([]byte, bool) {
	if s.degraded.Load() {
		s.miss()
		return nil, false
	}
	path := filepath.Join(s.root, tier, name[:2], name)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.ioError(err)
		}
		s.miss()
		return nil, false
	}
	s.bytesRead.Add(uint64(len(data)))
	s.tierRead[tierIndex(tier)].Add(uint64(len(data)))
	if o := s.obs.Load(); o != nil {
		o.bytesRead.Add(int64(len(data)))
	}
	return data, true
}

// hit records one successful lookup.
func (s *Store) hit() {
	s.hits.Add(1)
	if o := s.obs.Load(); o != nil {
		o.hits.Add(1)
	}
}

// miss records one lookup with no usable record.
func (s *Store) miss() {
	s.misses.Add(1)
	if o := s.obs.Load(); o != nil {
		o.misses.Add(1)
	}
}

// skipCorrupt records one record rejected by decode or key echo. The
// lookup surfaces as a miss so the caller recomputes (and rewrites) it.
func (s *Store) skipCorrupt() {
	s.corruptSkipped.Add(1)
	if o := s.obs.Load(); o != nil {
		o.corruptSkipped.Add(1)
	}
	s.miss()
}

// ioError feeds the breaker with one failed filesystem call. Under
// Strict the first fault is remembered (for Err/Close) and trips the
// breaker immediately; otherwise the breaker trips once the error count
// passes the threshold.
func (s *Store) ioError(err error) {
	if faultfs.IsInjected(err) {
		s.faultInjected.Add(1)
		if o := s.obs.Load(); o != nil {
			o.faultInjected.Add(1)
		}
	}
	n := s.ioErrors.Add(1)
	if o := s.obs.Load(); o != nil {
		o.ioErrors.Add(1)
	}
	if s.strict {
		s.errMu.Lock()
		if s.firstErr == nil {
			s.firstErr = err
		}
		s.errMu.Unlock()
		s.trip(err)
		return
	}
	if n >= s.threshold {
		s.trip(err)
	}
}

// trip flips the store into memory-only degraded mode: exactly once per
// store, logged once, counted once (store.degraded). Correctness is
// untouched — every lookup from here on is a miss and the caller
// recomputes, so a degraded sweep stays bit-identical to a cold one.
func (s *Store) trip(err error) {
	s.tripOnce.Do(func() {
		s.degraded.Store(true)
		if o := s.obs.Load(); o != nil {
			o.degraded.Add(1)
		}
		log.Printf("store: degraded to memory-only after %d I/O error(s): %v (results unaffected; writes dropped)",
			s.ioErrors.Load(), err)
	})
}

// put enqueues one record for the flusher, blocking when the queue is
// full (backpressure). The RLock pairs with Close's Lock so a concurrent
// Close never closes the channel under an in-flight send.
func (s *Store) put(p pending) {
	if s.readonly || s.degraded.Load() {
		return
	}
	s.mu.RLock()
	if !s.closed {
		s.queue <- p
	}
	s.mu.RUnlock()
}

// flusher drains the queue in batches until Close. Each pass coalesces up
// to maxBatch pending records and commits them one temp-file+rename at a
// time; a failed commit drops that record only.
func (s *Store) flusher() {
	defer s.wg.Done()
	for p := range s.queue {
		batch := []pending{p}
	coalesce:
		for len(batch) < maxBatch {
			select {
			case q, ok := <-s.queue:
				if !ok {
					break coalesce
				}
				batch = append(batch, q)
			default:
				break coalesce
			}
		}
		s.writeBatch(batch)
	}
}

// writeBatch commits a batch of records and counts one flush. Once the
// breaker has tripped, remaining records are dropped without touching
// disk (each failed syscall already cost latency and fed the breaker).
func (s *Store) writeBatch(batch []pending) {
	for _, p := range batch {
		if s.degraded.Load() {
			s.writeErrors.Add(1)
			continue
		}
		if err := s.commit(p); err != nil {
			s.writeErrors.Add(1)
			s.ioError(err)
		}
	}
	s.flushes.Add(1)
	if o := s.obs.Load(); o != nil {
		o.flushes.Add(1)
	}
}

// commit writes one record crash-safely: encode, write to a temp file in
// the destination directory, fsync, rename into place. Every failure
// path removes the temp file — including a failed Sync between write and
// rename, the leak the faultfs regression suite pins — so an erroring
// disk never accumulates orphaned tmp-* files on top of its real
// problem. Concurrent writers of the same key race benignly — the
// payloads are identical, rename is atomic, and the keep-first probe
// below drops re-puts of an already-committed record, so the first
// commit stays in place and any interleaving leaves a valid record.
func (s *Store) commit(p pending) error {
	data, err := p.encode()
	if err != nil {
		return err
	}
	dir := filepath.Join(s.root, p.tier, p.name[:2])
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dst := filepath.Join(dir, p.name)
	// Keep-first: engines sharing one store race benignly on a key —
	// payloads are deterministic, so when the destination already holds
	// exactly the bytes this put would write, the first committed record
	// stays in place untouched (no rewrite churn under multi-tenant
	// interleaving). A divergent or damaged record fails the comparison
	// and is rewritten — the heal path the crash replay pins. A probe
	// failure (missing file, injected read fault) just means "write it".
	if prev, err := s.fs.ReadFile(dst); err == nil && bytes.Equal(prev, data) {
		return nil
	}
	tmp, err := s.fs.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		s.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		s.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		s.fs.Remove(tmp.Name())
		return err
	}
	if err := s.fs.Rename(tmp.Name(), dst); err != nil {
		s.fs.Remove(tmp.Name())
		return err
	}
	s.bytesWritten.Add(uint64(len(data)))
	s.tierWritten[tierIndex(p.tier)].Add(uint64(len(data)))
	if o := s.obs.Load(); o != nil {
		o.bytesWritten.Add(int64(len(data)))
	}
	return nil
}
