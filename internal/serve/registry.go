package serve

import (
	"fmt"
	"sort"
	"sync"

	"silvervale/internal/core"
	"silvervale/internal/corpus"
)

// Codebase registry: POST /v1/codebases uploads a codebase (sources,
// unit roots, system flags), and POST /v1/diverge compares two uploads.
// Uploads are content-addressed with the same hash the store's index
// tier keys on, so re-uploading identical sources yields the same id —
// and the engine's store tier (when attached) warm-starts the upload's
// index exactly as it would the generated corpus.

// uploadUnit mirrors corpus.Unit for the upload payload.
type uploadUnit struct {
	File string `json:"file"`
	Role string `json:"role"`
}

// codebaseUpload is the POST /v1/codebases request body.
type codebaseUpload struct {
	App    string            `json:"app"`
	Model  string            `json:"model"`
	Lang   string            `json:"lang"` // "c++" or "fortran"
	Files  map[string]string `json:"files"`
	Units  []uploadUnit      `json:"units"`
	System map[string]bool   `json:"system,omitempty"`
}

// maxUploadFiles bounds the file count of one upload independently of
// the byte cap, so a hostile body of thousands of empty names cannot
// bloat the registry's bookkeeping.
const maxUploadFiles = 512

// toCodebase validates the upload and converts it. Every failure is a
// client error (the handler maps it to 400).
func (u *codebaseUpload) toCodebase() (*corpus.Codebase, error) {
	if u.App == "" || u.Model == "" {
		return nil, fmt.Errorf("app and model are required")
	}
	lang := corpus.Lang(u.Lang)
	if lang != corpus.LangCXX && lang != corpus.LangFortran {
		return nil, fmt.Errorf("lang %q not supported (want %q or %q)", u.Lang, corpus.LangCXX, corpus.LangFortran)
	}
	if len(u.Files) == 0 {
		return nil, fmt.Errorf("files must not be empty")
	}
	if len(u.Files) > maxUploadFiles {
		return nil, fmt.Errorf("too many files: %d (max %d)", len(u.Files), maxUploadFiles)
	}
	if len(u.Units) == 0 {
		return nil, fmt.Errorf("units must not be empty")
	}
	cb := &corpus.Codebase{
		App:    u.App,
		Model:  corpus.Model(u.Model),
		Lang:   lang,
		Files:  u.Files,
		System: map[string]bool{},
	}
	for name, sys := range u.System {
		if sys {
			cb.System[name] = true
		}
	}
	seen := map[string]bool{}
	for _, unit := range u.Units {
		if _, ok := u.Files[unit.File]; !ok {
			return nil, fmt.Errorf("unit %q has no file content", unit.File)
		}
		if seen[unit.File] {
			return nil, fmt.Errorf("unit %q listed twice", unit.File)
		}
		seen[unit.File] = true
		cb.Units = append(cb.Units, corpus.Unit{File: unit.File, Role: unit.Role})
	}
	return cb, nil
}

// registry is the daemon's uploaded-codebase map, keyed by content hash.
type registry struct {
	mu    sync.Mutex
	items map[string]*corpus.Codebase
}

func newRegistry() *registry {
	return &registry{items: map[string]*corpus.Codebase{}}
}

// put registers a codebase and returns its content-address id. Identical
// content registers idempotently under the same id.
func (r *registry) put(cb *corpus.Codebase) string {
	h := core.CodebaseContentHash(cb)
	id := fmt.Sprintf("%016x%016x", h.H1, h.H2)
	r.mu.Lock()
	r.items[id] = cb
	r.mu.Unlock()
	return id
}

// get looks a codebase up by id.
func (r *registry) get(id string) (*corpus.Codebase, bool) {
	r.mu.Lock()
	cb, ok := r.items[id]
	r.mu.Unlock()
	return cb, ok
}

// registryEntry is one row of the GET /v1/codebases listing.
type registryEntry struct {
	ID    string `json:"id"`
	App   string `json:"app"`
	Model string `json:"model"`
	Lang  string `json:"lang"`
	Units int    `json:"units"`
	Files int    `json:"files"`
}

// list returns every registered codebase, sorted by id for stable output.
func (r *registry) list() []registryEntry {
	r.mu.Lock()
	out := make([]registryEntry, 0, len(r.items))
	for id, cb := range r.items {
		out = append(out, registryEntry{
			ID: id, App: cb.App, Model: string(cb.Model), Lang: string(cb.Lang),
			Units: len(cb.Units), Files: len(cb.Files),
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
