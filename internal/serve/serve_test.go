package serve

// The request-level harness of PR 10: happy-path responses must be
// bit-identical to the one-shot CLI codecs at every worker count,
// a client disconnect must stop the sweep without leaking goroutines
// or poisoning the shared caches, admission overflow must reject
// deterministically with 429/Retry-After, and N tenants hammering one
// engine must each see results identical to a serial single-tenant run
// (the -race leg of this file is the multi-tenant single-cache safety
// proof of DESIGN.md §14).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"silvervale/internal/core"
	"silvervale/internal/corpus"
	"silvervale/internal/experiments"
)

const (
	// serveApp is the workhorse fixture: the Fortran corpus is small
	// enough that every sweep in this file stays cheap under -race too.
	serveApp  = "babelstream-fortran"
	serveBase = "f-sequential"
	// phiApp exercises the C++ path (NavChart requires the serial base
	// model); the phi test skips under -race, see race_on_test.go.
	phiApp = "babelstream"
)

// newServer builds a daemon over a fresh environment.
func newServer(t testing.TB, workers, maxInflight, maxQueue int) *Server {
	t.Helper()
	return New(Config{
		Env:         experiments.NewEnvWorkers(workers),
		MaxInflight: maxInflight,
		MaxQueue:    maxQueue,
	})
}

func matrixBody(app, metric string) string {
	return fmt.Sprintf(`{"app":%q,"metric":%q}`, app, metric)
}

// post drives one in-process request through the full handler chain
// (mux, accounting, admission, codec) without a TCP listener.
func post(s *Server, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// Serial reference renderings, memoised across tests: each is a pure
// function of the corpus, computed once on a fresh single-worker
// environment — exactly what the one-shot CLI produces.
var (
	refMu    sync.Mutex
	refCache = map[string][]byte{}
)

func ref(t testing.TB, key string, build func(env *experiments.Env, buf *bytes.Buffer) error) []byte {
	t.Helper()
	refMu.Lock()
	defer refMu.Unlock()
	if b, ok := refCache[key]; ok {
		return b
	}
	var buf bytes.Buffer
	if err := build(experiments.NewEnvWorkers(1), &buf); err != nil {
		t.Fatalf("serial reference %s: %v", key, err)
	}
	refCache[key] = buf.Bytes()
	return refCache[key]
}

// matrixRef renders the serial reference for POST /v1/matrix — the same
// bytes `matrix -metric <m> -json` writes for the same app.
func matrixRef(t testing.TB, app, metric string) []byte {
	return ref(t, "matrix/"+app+"/"+metric, func(env *experiments.Env, buf *bytes.Buffer) error {
		m, order, err := env.Matrix(app, metric)
		if err != nil {
			return err
		}
		idxs, _, err := env.Indexes(app)
		if err != nil {
			return err
		}
		return BuildMatrixPayload(app, metric, order, m, idxs).WriteJSON(buf)
	})
}

// fromBaseRef renders the serial reference for POST /v1/frombase.
func fromBaseRef(t testing.TB, app, base, metric string) []byte {
	return ref(t, "frombase/"+app+"/"+base+"/"+metric, func(env *experiments.Env, buf *bytes.Buffer) error {
		idxs, _, err := env.Indexes(app)
		if err != nil {
			return err
		}
		values, order, err := env.FromBaseCtx(context.Background(), app, base, metric)
		if err != nil {
			return err
		}
		return encodeIndented(buf, BuildFromBasePayload(app, base, metric, order, values, idxs[base]))
	})
}

// phiRef renders the serial reference for POST /v1/phi — the same bytes
// `phi -json` writes.
func phiRef(t testing.TB, app string) []byte {
	return ref(t, "phi/"+app, func(env *experiments.Env, buf *bytes.Buffer) error {
		ch, err := env.NavChart(app)
		if err != nil {
			return err
		}
		return ch.WriteJSON(buf)
	})
}

// waitStats polls the server's accounting until cond holds.
func waitStats(t *testing.T, s *Server, what string, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond(s.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats = %+v", what, s.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitGoroutines waits for the goroutine count to settle back to the
// pre-test level (small slack for runtime helpers); the leak fence of
// the cancellation tests.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after settling window", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMatrixByteIdenticalAcrossWorkers: the served matrix payload is
// byte-identical to the serial CLI rendering at 1/2/4/8 workers, cold
// and warm (the warm pass reads the memoised cells through the same
// codec).
func TestMatrixByteIdenticalAcrossWorkers(t *testing.T) {
	want := matrixRef(t, serveApp, core.MetricTsem)
	for _, workers := range []int{1, 2, 4, 8} {
		s := newServer(t, workers, 2, 8)
		for _, pass := range []string{"cold", "warm"} {
			w := post(s, "/v1/matrix", matrixBody(serveApp, core.MetricTsem))
			if w.Code != http.StatusOK {
				t.Fatalf("workers=%d %s: status %d: %s", workers, pass, w.Code, w.Body)
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("workers=%d %s: content type %q", workers, pass, ct)
			}
			if !bytes.Equal(w.Body.Bytes(), want) {
				t.Errorf("workers=%d %s: served matrix differs from serial CLI rendering", workers, pass)
			}
		}
	}
}

// TestFromBaseByteIdentical: same contract for the migration sweep.
func TestFromBaseByteIdentical(t *testing.T) {
	want := fromBaseRef(t, serveApp, serveBase, core.MetricTsem)
	for _, workers := range []int{1, 4} {
		s := newServer(t, workers, 2, 8)
		w := post(s, "/v1/frombase",
			fmt.Sprintf(`{"app":%q,"base":%q,"metric":%q}`, serveApp, serveBase, core.MetricTsem))
		if w.Code != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, w.Code, w.Body)
		}
		if !bytes.Equal(w.Body.Bytes(), want) {
			t.Errorf("workers=%d: served frombase differs from serial CLI rendering", workers)
		}
	}
}

// TestPhiByteIdentical: the served navigation chart is the exact
// `phi -json` payload. C++ fixtures only, so the plain suite carries it.
func TestPhiByteIdentical(t *testing.T) {
	if raceEnabled {
		t.Skip("C++ phi sweep is too slow under -race; plain suite covers it")
	}
	want := phiRef(t, phiApp)
	s := newServer(t, 2, 2, 8)
	w := post(s, "/v1/phi", fmt.Sprintf(`{"app":%q}`, phiApp))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Error("served phi chart differs from `phi -json` rendering")
	}
}

// TestSweepStreamsPerMetricLines: /v1/sweep streams one NDJSON line per
// metric, in request order, each carrying the exact matrix the one-shot
// path computes.
func TestSweepStreamsPerMetricLines(t *testing.T) {
	metrics := []string{core.MetricTsem, core.MetricTsrc}
	s := newServer(t, 2, 2, 8)
	w := post(s, "/v1/sweep",
		fmt.Sprintf(`{"app":%q,"metrics":[%q,%q]}`, serveApp, metrics[0], metrics[1]))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != len(metrics) {
		t.Fatalf("got %d NDJSON lines, want %d: %s", len(lines), len(metrics), w.Body)
	}
	for i, line := range lines {
		var got sweepLine
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got.Metric != metrics[i] || got.App != serveApp {
			t.Fatalf("line %d is %s/%s, want %s/%s", i, got.App, got.Metric, serveApp, metrics[i])
		}
		var want MatrixPayload
		if err := json.Unmarshal(matrixRef(t, serveApp, metrics[i]), &want); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Matrix, want.Matrix) || !reflect.DeepEqual(got.Order, want.Order) {
			t.Errorf("line %d: streamed matrix differs from serial reference", i)
		}
	}
}

// TestMidSweepCancellation: a client disconnect mid-request stops the
// engine (zero further task grants — the context is canceled before the
// sweep's first grant, the bounded-grant contract itself is pinned in
// internal/core's cancellation tests), records exactly one canceled
// request, leaks no goroutines, and leaves the shared caches consistent:
// the follow-up request returns the exact serial rendering.
func TestMidSweepCancellation(t *testing.T) {
	want := matrixRef(t, serveApp, core.MetricTsem)
	s := newServer(t, 2, 1, 4)
	before := runtime.NumGoroutine()

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	s.holdSweep = func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
	}
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/matrix",
		strings.NewReader(matrixBody(serveApp, core.MetricTsem))).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		s.ServeHTTP(httptest.NewRecorder(), req)
		close(done)
	}()
	<-started // the request holds its slot, about to start the sweep
	cancel()  // client disconnects
	close(gate)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("canceled request never returned")
	}
	s.holdSweep = nil

	if st := s.Stats(); st.Canceled != 1 || st.Inflight != 0 || st.Queued != 0 || st.Errors != 0 {
		t.Fatalf("stats after cancel = %+v", st)
	}
	waitGoroutines(t, before)

	// The canceled sweep published nothing partial, so the next request
	// computes from consistent caches and matches the serial rendering.
	w := post(s, "/v1/matrix", matrixBody(serveApp, core.MetricTsem))
	if w.Code != http.StatusOK {
		t.Fatalf("follow-up status %d: %s", w.Code, w.Body)
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Error("post-cancellation sweep differs from serial rendering")
	}
	waitGoroutines(t, before)
}

// TestQueuedClientDisconnectFreesSlot: a client that goes away while
// waiting in the admission queue is counted as canceled, never as an
// error, and its queue position is freed immediately.
func TestQueuedClientDisconnectFreesSlot(t *testing.T) {
	s := newServer(t, 1, 1, 2)
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s.holdSweep = func() {
		started <- struct{}{}
		<-gate
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // fills the single in-flight slot
		defer wg.Done()
		post(s, "/v1/matrix", matrixBody(serveApp, core.MetricTsem))
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	wg.Add(1)
	go func() { // queues behind it, then disconnects
		defer wg.Done()
		req := httptest.NewRequest(http.MethodPost, "/v1/matrix",
			strings.NewReader(matrixBody(serveApp, core.MetricTsem))).WithContext(ctx)
		req.Header.Set("Content-Type", "application/json")
		s.ServeHTTP(httptest.NewRecorder(), req)
	}()
	waitStats(t, s, "request to queue", func(st Stats) bool { return st.Queued == 1 })
	cancel()
	waitStats(t, s, "queued cancel", func(st Stats) bool { return st.Canceled == 1 && st.Queued == 0 })
	close(gate)
	wg.Wait()
	if st := s.Stats(); st.Requests != 2 || st.Rejected != 0 || st.Errors != 0 || st.Inflight != 0 {
		t.Fatalf("final stats = %+v", st)
	}
}

// TestAdmissionOverflowDeterministic: with the daemon pinned at full
// capacity (MaxInflight 1 + MaxQueue 1), k concurrent requests yield
// exactly k-2 rejections — 429 with a Retry-After hint — regardless of
// scheduling, and once the pin lifts the queue drains to completion
// with exact results. No starvation, no lost slots.
func TestAdmissionOverflowDeterministic(t *testing.T) {
	want := matrixRef(t, serveApp, core.MetricTsem)
	s := newServer(t, 1, 1, 1)
	// Warm the engine so drained sweeps are memo reads.
	if w := post(s, "/v1/matrix", matrixBody(serveApp, core.MetricTsem)); w.Code != http.StatusOK {
		t.Fatalf("warm-up status %d: %s", w.Code, w.Body)
	}
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s.holdSweep = func() {
		started <- struct{}{}
		<-gate
	}

	const k = 5 // 1 in flight + 1 queued + 3 rejected
	results := make(chan *httptest.ResponseRecorder, k)
	for i := 0; i < k; i++ {
		go func() { results <- post(s, "/v1/matrix", matrixBody(serveApp, core.MetricTsem)) }()
	}
	<-started // one request holds the slot; one more is queued

	// The three overflow rejections return while the daemon stays
	// pinned; the admitted two cannot finish before the gate opens, so
	// every early response must be a 429.
	for i := 0; i < k-2; i++ {
		select {
		case w := <-results:
			if w.Code != http.StatusTooManyRequests {
				t.Fatalf("overflow response %d: status %d: %s", i, w.Code, w.Body)
			}
			if w.Header().Get("Retry-After") == "" {
				t.Errorf("429 without Retry-After header")
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("only %d of %d rejections arrived", i, k-2)
		}
	}
	close(gate) // lift the pin: the queue must drain
	for i := 0; i < 2; i++ {
		select {
		case w := <-results:
			if w.Code != http.StatusOK {
				t.Fatalf("drained sweep status %d: %s", w.Code, w.Body)
			}
			if !bytes.Equal(w.Body.Bytes(), want) {
				t.Error("drained sweep differs from serial rendering")
			}
		case <-time.After(30 * time.Second):
			t.Fatal("queue did not drain")
		}
	}
	if st := s.Stats(); st.Requests != k+1 || st.Rejected != k-2 || st.Inflight != 0 || st.Queued != 0 || st.Canceled != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

// TestMultiTenantSoak: soakClients tenants hammer one shared engine
// across soakApps × two metrics for soakIters rounds; every response
// must be bit-identical to the serial single-tenant rendering and the
// run must finish with no rejections and no errors. Under -race this is
// the multi-tenant single-cache safety proof the tentpole claims.
func TestMultiTenantSoak(t *testing.T) {
	metrics := []string{core.MetricTsem, core.MetricTsrc}
	type job struct {
		app, metric string
		want        []byte
	}
	var jobs []job
	for _, app := range soakApps {
		for _, m := range metrics {
			jobs = append(jobs, job{app, m, matrixRef(t, app, m)})
		}
	}
	s := newServer(t, 4, 2, soakClients*soakIters*len(jobs))
	var wg sync.WaitGroup
	for c := 0; c < soakClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for it := 0; it < soakIters; it++ {
				for _, j := range jobs {
					w := post(s, "/v1/matrix", matrixBody(j.app, j.metric))
					if w.Code != http.StatusOK {
						t.Errorf("client %d %s/%s: status %d: %s", c, j.app, j.metric, w.Code, w.Body)
						return
					}
					if !bytes.Equal(w.Body.Bytes(), j.want) {
						t.Errorf("client %d %s/%s: response differs from serial rendering", c, j.app, j.metric)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if st := s.Stats(); st.Rejected != 0 || st.Errors != 0 || st.Canceled != 0 || st.Inflight != 0 {
		t.Fatalf("soak stats = %+v", st)
	}
}

// TestRequestHardening: every malformed request is a clean 4xx with a
// one-line JSON error body — never a panic, never a 5xx — and failed
// requests release their admission slots.
func TestRequestHardening(t *testing.T) {
	s := newServer(t, 1, 1, 1)
	cases := []struct {
		name, method, path, ct, body string
		want                         int
	}{
		{"get on sweep endpoint", http.MethodGet, "/v1/matrix", "", "", http.StatusMethodNotAllowed},
		{"wrong content type", http.MethodPost, "/v1/matrix", "text/plain", `{"app":"x"}`, http.StatusUnsupportedMediaType},
		{"malformed content type", http.MethodPost, "/v1/matrix", "application/;;", `{"app":"x"}`, http.StatusUnsupportedMediaType},
		{"invalid json", http.MethodPost, "/v1/matrix", "application/json", `{"app":`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/matrix", "application/json", `{"app":"tealeaf","nope":1}`, http.StatusBadRequest},
		{"trailing data", http.MethodPost, "/v1/matrix", "application/json", `{"app":"tealeaf"}{}`, http.StatusBadRequest},
		{"wrong field type", http.MethodPost, "/v1/matrix", "application/json", `{"app":3}`, http.StatusBadRequest},
		{"empty app", http.MethodPost, "/v1/matrix", "application/json", `{}`, http.StatusBadRequest},
		{"unknown app", http.MethodPost, "/v1/matrix", "application/json", `{"app":"no-such-app"}`, http.StatusBadRequest},
		{"unknown metric", http.MethodPost, "/v1/matrix", "application/json", matrixBody(serveApp, "nope"), http.StatusBadRequest},
		{"unknown base", http.MethodPost, "/v1/frombase", "application/json",
			fmt.Sprintf(`{"app":%q,"base":"nope"}`, serveApp), http.StatusBadRequest},
		{"unknown phi source", http.MethodPost, "/v1/phi", "application/json",
			fmt.Sprintf(`{"app":%q,"phi_source":"nope"}`, phiApp), http.StatusBadRequest},
		{"unknown diverge ids", http.MethodPost, "/v1/diverge", "application/json", `{"a":"x","b":"y"}`, http.StatusBadRequest},
		{"oversized body", http.MethodPost, "/v1/matrix", "application/json",
			`{"app":"` + strings.Repeat("x", MaxRequestBytes) + `"}`, http.StatusRequestEntityTooLarge},
		{"invalid upload", http.MethodPost, "/v1/codebases", "application/json",
			`{"app":"a","model":"m","lang":"cobol","files":{"f":""},"units":[{"file":"f"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			if tc.ct != "" {
				req.Header.Set("Content-Type", tc.ct)
			}
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			if w.Code != tc.want {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.want, w.Body)
			}
			var errBody struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &errBody); err != nil || errBody.Error == "" {
				t.Fatalf("error body is not {\"error\":...}: %q (%v)", w.Body, err)
			}
		})
	}
	// Client errors are not server errors, and every failed request
	// released its admission capacity.
	if st := s.Stats(); st.Errors != 0 || st.Rejected != 0 || st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("stats after hardening sweep = %+v", st)
	}
}

// TestHealthAndStatsEndpoints: the unauthenticated always-on surface.
func TestHealthAndStatsEndpoints(t *testing.T) {
	s := newServer(t, 1, 1, 1)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK || w.Body.String() != "ok\n" {
		t.Fatalf("healthz = %d %q", w.Code, w.Body)
	}
	post(s, "/v1/matrix", `{"app":"no-such-app"}`) // one counted request
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("stats status %d", w.Code)
	}
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 {
		t.Fatalf("stats payload = %+v, want 1 request", st)
	}
	if got := st.Line(); !strings.Contains(got, "serve: 1 requests") {
		t.Fatalf("stats line = %q", got)
	}
}

// uploadBody renders a corpus codebase as a POST /v1/codebases payload.
func uploadBody(t *testing.T, cb *corpus.Codebase) string {
	t.Helper()
	units := make([]map[string]string, 0, len(cb.Units))
	for _, u := range cb.Units {
		units = append(units, map[string]string{"file": u.File, "role": u.Role})
	}
	payload := map[string]any{
		"app": cb.App, "model": string(cb.Model), "lang": string(cb.Lang),
		"files": cb.Files, "units": units,
	}
	if len(cb.System) > 0 {
		payload["system"] = cb.System
	}
	b, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestUploadAndDivergeMatchesEngine: uploading two codebases and
// diverging them over HTTP returns exactly what a direct engine call
// computes, and re-uploading identical content is idempotent (same
// content-address id).
func TestUploadAndDivergeMatchesEngine(t *testing.T) {
	app, err := corpus.AppByName(serveApp)
	if err != nil {
		t.Fatal(err)
	}
	models := corpus.ModelsFor(app)
	cbA, err := corpus.Generate(app, models[0])
	if err != nil {
		t.Fatal(err)
	}
	cbB, err := corpus.Generate(app, models[1])
	if err != nil {
		t.Fatal(err)
	}

	s := newServer(t, 1, 2, 8)
	upload := func(cb *corpus.Codebase) string {
		w := post(s, "/v1/codebases", uploadBody(t, cb))
		if w.Code != http.StatusOK {
			t.Fatalf("upload %s: status %d: %s", cb.Model, w.Code, w.Body)
		}
		var resp struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.ID == "" {
			t.Fatalf("upload %s: bad response %q (%v)", cb.Model, w.Body, err)
		}
		return resp.ID
	}
	idA, idB := upload(cbA), upload(cbB)
	if again := upload(cbA); again != idA {
		t.Fatalf("re-upload changed id: %s -> %s", idA, again)
	}

	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/codebases", nil))
	var listing struct {
		Codebases []registryEntry `json:"codebases"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Codebases) != 2 {
		t.Fatalf("listing has %d entries, want 2: %s", len(listing.Codebases), w.Body)
	}

	w2 := post(s, "/v1/diverge",
		fmt.Sprintf(`{"a":%q,"b":%q,"metric":%q}`, idA, idB, core.MetricTsem))
	if w2.Code != http.StatusOK {
		t.Fatalf("diverge status %d: %s", w2.Code, w2.Body)
	}
	var got struct {
		Raw  float64 `json:"raw"`
		DMax float64 `json:"dmax"`
		Norm float64 `json:"norm"`
	}
	if err := json.Unmarshal(w2.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}

	engine := core.NewEngine(1)
	ia, err := engine.IndexCodebase(cbA, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ib, err := engine.IndexCodebase(cbB, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := engine.Diverge(ia, ib, core.MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	if got.Raw != d.Raw || got.DMax != d.DMax || got.Norm != d.Norm {
		t.Fatalf("served divergence %+v != engine %+v", got, d)
	}
}
