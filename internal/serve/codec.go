package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
)

// Request decoding, hardened the same way the store hardens record
// decoding (FuzzStoreRecord): every byte of the body is hostile until
// proven otherwise. The reader is hard-capped at MaxRequestBytes before
// the decoder ever sees it (no length field in the payload can make us
// allocate more), unknown fields are rejected (a typo'd request fails
// loudly instead of silently sweeping defaults), and trailing garbage
// after the JSON value is an error. Every decode failure is a 4xx —
// never a panic, never a 5xx.

// MaxRequestBytes caps a request body. Codebase uploads are the largest
// legitimate payload (a mini-app port is tens of KB of source); 1 MiB
// leaves generous headroom while bounding a hostile body's allocation.
const MaxRequestBytes = 1 << 20

// httpError is an error with an HTTP status. Handlers return it to pick
// the response code; anything else maps to 500.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// decodeRequest parses a POST body into dst. Only POST with a JSON (or
// absent) content type is accepted; the body is size-capped, unknown
// fields rejected, and exactly one JSON value allowed.
func decodeRequest(w http.ResponseWriter, r *http.Request, dst any) error {
	if r.Method != http.MethodPost {
		return &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"}
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			return &httpError{
				status: http.StatusUnsupportedMediaType,
				msg:    fmt.Sprintf("content type %q not supported (want application/json)", ct),
			}
		}
	}
	body := http.MaxBytesReader(w, r.Body, MaxRequestBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &httpError{
				status: http.StatusRequestEntityTooLarge,
				msg:    fmt.Sprintf("request body exceeds %d bytes", MaxRequestBytes),
			}
		}
		return badRequest("invalid request body: %v", err)
	}
	if dec.More() {
		return badRequest("invalid request body: trailing data after JSON value")
	}
	return nil
}

// encodeIndented is the shared response encoder: two-space indentation,
// exactly what `matrix -json` / `phi -json` use, so daemon responses are
// byte-identical to CLI output for the same data.
func encodeIndented(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// writeJSON writes v as the indented JSON response.
func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return encodeIndented(w, v)
}

// writeError renders an error response as a one-line JSON object.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// json.Marshal of a map[string]string cannot fail.
	b, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(append(b, '\n'))
}
