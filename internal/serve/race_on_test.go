//go:build race

package serve

// The race detector multiplies the exact-TED DP cost ~10x, so under
// -race the daemon harness trims the multi-tenant soak to the Fortran
// corpus and fewer clients. The wiring under test — shared-cache
// safety, admission accounting, cancellation — is identical; the C++
// fixtures and the phi byte-identity check stay covered by the plain
// suite.
const (
	raceEnabled = true

	soakClients = 3
	soakIters   = 2
)

// soakApps lists the corpus apps the multi-tenant soak hammers.
var soakApps = []string{"babelstream-fortran"}
