// Package serve is the divergence-as-a-service daemon behind
// `silvervale serve` (DESIGN.md §14): an HTTP/JSON API over one shared
// experiments.Env — one core.Engine, one ted.Cache, one optional
// persistent store — so every client's sweep draws from the same warm
// memos. The serving layer adds exactly three production concerns on
// top of the one-shot CLI paths:
//
//   - cancellation: every sweep runs under the request context; a client
//     disconnect stops the engine at the next task-grant boundary and a
//     canceled sweep publishes nothing to the cell memo or the store;
//   - admission: at most MaxInflight sweeps run concurrently with
//     MaxQueue more waiting; overflow is a deterministic 429 with
//     Retry-After;
//   - observability: per-request serve.* spans, counters, and the
//     latency histogram on the same -metrics/-pprof surface the CLI has.
//
// Responses reuse the CLI's JSON codecs, so a served matrix/phi payload
// is byte-identical to `matrix -json` / `phi -json` on the same inputs.
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"silvervale/internal/experiments"
	"silvervale/internal/obs"
)

// Config configures a Server.
type Config struct {
	// Env is the shared experiment environment (required). Its engine,
	// caches, and store are the daemon's entire warm state.
	Env *experiments.Env
	// Recorder enables per-request observability (nil disables it, the
	// same contract as everywhere else in the pipeline).
	Recorder *obs.Recorder
	// MaxInflight bounds concurrently running sweeps (default 2).
	MaxInflight int
	// MaxQueue bounds sweeps waiting for a slot (default 8). Overflow
	// beyond MaxInflight+MaxQueue is rejected with 429.
	MaxQueue int
	// RetryAfter is the hint returned with 429 responses (default 1s,
	// rounded up to whole seconds for the header).
	RetryAfter time.Duration
}

// Stats is the GET /v1/stats payload: always-on atomic counters (they
// exist independently of the obs recorder, so the shutdown stats line
// and the smoke tests never need -metrics).
type Stats struct {
	Requests int64 `json:"requests"`
	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	Rejected int64 `json:"rejected"`
	Canceled int64 `json:"canceled"`
	Errors   int64 `json:"errors"`
}

// Line renders the one-line form the daemon prints at shutdown.
func (s Stats) Line() string {
	return fmt.Sprintf("serve: %d requests, %d rejected, %d canceled, %d errors",
		s.Requests, s.Rejected, s.Canceled, s.Errors)
}

// Server is the daemon: an http.Handler serving sweeps from one shared
// engine. Safe for concurrent use; construct with New.
type Server struct {
	env        *experiments.Env
	rec        *obs.Recorder
	adm        *admission
	reg        *registry
	mux        *http.ServeMux
	retryAfter string

	// always-on request accounting
	requests atomic.Int64
	rejected atomic.Int64
	canceled atomic.Int64
	errcount atomic.Int64

	// obs counters (nil when observability is off); stable names in
	// DESIGN.md §5: serve.requests / serve.inflight / serve.rejected /
	// serve.canceled, plus the serve.latency_ns histogram and the
	// serve.request span BeginRequest opens.
	obsRequests *obs.Counter
	obsInflight *obs.Counter
	obsRejected *obs.Counter
	obsCanceled *obs.Counter

	// holdSweep, when set (tests only), is invoked inside every admitted
	// request while it holds its admission slot — the deterministic way
	// to pin the daemon at full capacity for overflow tests.
	holdSweep func()
}

// New builds a Server over a shared environment.
func New(cfg Config) *Server {
	if cfg.Env == nil {
		panic("serve: Config.Env is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 8
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	retrySecs := int64(cfg.RetryAfter / time.Second)
	if cfg.RetryAfter%time.Second != 0 {
		retrySecs++
	}
	s := &Server{
		env:        cfg.Env,
		rec:        cfg.Recorder,
		adm:        newAdmission(cfg.MaxInflight, cfg.MaxQueue),
		reg:        newRegistry(),
		retryAfter: strconv.FormatInt(retrySecs, 10),
	}
	if s.rec != nil {
		s.obsRequests = s.rec.Counter("serve.requests")
		s.obsInflight = s.rec.Counter("serve.inflight")
		s.obsRejected = s.rec.Counter("serve.rejected")
		s.obsCanceled = s.rec.Counter("serve.canceled")
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/codebases", s.handle("/v1/codebases", false, s.handleCodebases))
	s.mux.HandleFunc("/v1/diverge", s.handle("/v1/diverge", true, s.handleDiverge))
	s.mux.HandleFunc("/v1/matrix", s.handle("/v1/matrix", true, s.handleMatrix))
	s.mux.HandleFunc("/v1/frombase", s.handle("/v1/frombase", true, s.handleFromBase))
	s.mux.HandleFunc("/v1/phi", s.handle("/v1/phi", true, s.handlePhi))
	s.mux.HandleFunc("/v1/sweep", s.handle("/v1/sweep", true, s.handleSweep))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Stats snapshots the request accounting.
func (s *Server) Stats() Stats {
	return Stats{
		Requests: s.requests.Load(),
		Inflight: s.adm.Inflight(),
		Queued:   s.adm.Queued(),
		Rejected: s.rejected.Load(),
		Canceled: s.canceled.Load(),
		Errors:   s.errcount.Load(),
	}
}

// handle wraps an endpoint with request accounting, per-request obs, and
// (for sweep endpoints) admission control. The inner handler returns an
// error instead of writing error responses itself; classification — 4xx
// from *httpError, "canceled" for context errors, 500 otherwise —
// happens in exactly one place.
func (s *Server) handle(endpoint string, admit bool, fn func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.obsRequests.Add(1)
		req := s.rec.BeginRequest(endpoint)
		if admit {
			release, err := s.adm.acquire(r.Context())
			if err != nil {
				if errors.Is(err, errOverflow) {
					s.rejected.Add(1)
					s.obsRejected.Add(1)
					w.Header().Set("Retry-After", s.retryAfter)
					writeError(w, http.StatusTooManyRequests, "sweep capacity exhausted, retry later")
					req.End(http.StatusTooManyRequests, "rejected")
					return
				}
				// Client went away while queued; nobody is listening for
				// a response body.
				s.canceled.Add(1)
				s.obsCanceled.Add(1)
				req.End(statusClientClosedRequest, "canceled")
				return
			}
			s.obsInflight.Add(1)
			defer func() {
				s.obsInflight.Add(-1)
				release()
			}()
			if s.holdSweep != nil {
				s.holdSweep()
			}
		}
		err := fn(w, r)
		if err == nil {
			req.End(http.StatusOK, "ok")
			return
		}
		if errors.Is(err, errCtxDone) || r.Context().Err() != nil {
			s.canceled.Add(1)
			s.obsCanceled.Add(1)
			req.End(statusClientClosedRequest, "canceled")
			return
		}
		var he *httpError
		if errors.As(err, &he) {
			writeError(w, he.status, he.msg)
			req.End(he.status, "rejected")
			return
		}
		s.errcount.Add(1)
		writeError(w, http.StatusInternalServerError, err.Error())
		req.End(http.StatusInternalServerError, "error")
	}
}

// statusClientClosedRequest is the conventional (nginx) status for a
// request whose client disconnected; it is recorded in obs but never
// sent — there is no one to send it to.
const statusClientClosedRequest = 499

// errCtxDone tags handler errors caused by request-context cancellation
// (the engine returns context.Canceled, which errors.Is matches via the
// context package; this sentinel exists for handlers that detect the
// disconnect themselves).
var errCtxDone = errors.New("serve: request context done")

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if err := writeJSON(w, s.Stats()); err != nil {
		return
	}
}
