package serve

import (
	"encoding/json"
	"net/http"

	"silvervale/internal/core"
	"silvervale/internal/corpus"
	"silvervale/internal/experiments"
)

// validMetric checks a request metric against the Table I registry.
func validMetric(metric string) bool {
	for _, m := range core.Metrics() {
		if m == metric {
			return true
		}
	}
	return false
}

// --- /v1/codebases -----------------------------------------------------------

func (s *Server) handleCodebases(w http.ResponseWriter, r *http.Request) error {
	if r.Method == http.MethodGet {
		return writeJSON(w, map[string]any{"codebases": s.reg.list()})
	}
	var up codebaseUpload
	if err := decodeRequest(w, r, &up); err != nil {
		return err
	}
	cb, err := up.toCodebase()
	if err != nil {
		return badRequest("invalid codebase: %v", err)
	}
	id := s.reg.put(cb)
	return writeJSON(w, map[string]any{
		"id": id, "app": cb.App, "model": string(cb.Model), "units": len(cb.Units),
	})
}

// --- /v1/diverge -------------------------------------------------------------

// divergeRequest compares two uploaded codebases by registry id.
type divergeRequest struct {
	A      string `json:"a"`
	B      string `json:"b"`
	Metric string `json:"metric"`
}

func (s *Server) handleDiverge(w http.ResponseWriter, r *http.Request) error {
	var req divergeRequest
	if err := decodeRequest(w, r, &req); err != nil {
		return err
	}
	if req.Metric == "" {
		req.Metric = core.MetricTsem
	}
	if !validMetric(req.Metric) {
		return badRequest("unknown metric %q", req.Metric)
	}
	ca, ok := s.reg.get(req.A)
	if !ok {
		return badRequest("unknown codebase id %q", req.A)
	}
	cbB, ok := s.reg.get(req.B)
	if !ok {
		return badRequest("unknown codebase id %q", req.B)
	}
	ctx := r.Context()
	engine := s.env.Engine()
	ia, err := engine.IndexCodebaseCtx(ctx, ca, core.Options{})
	if err != nil {
		return err
	}
	ib, err := engine.IndexCodebaseCtx(ctx, cbB, core.Options{})
	if err != nil {
		return err
	}
	d, err := engine.Diverge(ia, ib, req.Metric)
	if err != nil {
		return err
	}
	return writeJSON(w, map[string]any{
		"a": req.A, "b": req.B, "metric": req.Metric,
		"raw": d.Raw, "dmax": d.DMax, "norm": d.Norm,
	})
}

// --- /v1/matrix --------------------------------------------------------------

// matrixRequest asks for the all-pairs divergence matrix of a corpus app.
type matrixRequest struct {
	App    string `json:"app"`
	Metric string `json:"metric"`
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) error {
	var req matrixRequest
	if err := decodeRequest(w, r, &req); err != nil {
		return err
	}
	if req.Metric == "" {
		req.Metric = core.MetricTsem
	}
	if err := validateApp(req.App); err != nil {
		return err
	}
	if !validMetric(req.Metric) {
		return badRequest("unknown metric %q", req.Metric)
	}
	ctx := r.Context()
	m, order, err := s.env.MatrixCtx(ctx, req.App, req.Metric)
	if err != nil {
		return err
	}
	idxs, _, err := s.env.IndexesCtx(ctx, req.App)
	if err != nil {
		return err
	}
	payload := BuildMatrixPayload(req.App, req.Metric, order, m, idxs)
	w.Header().Set("Content-Type", "application/json")
	return payload.WriteJSON(w)
}

// --- /v1/frombase ------------------------------------------------------------

// fromBaseRequest asks for every model's divergence from a base model.
type fromBaseRequest struct {
	App    string `json:"app"`
	Base   string `json:"base"`
	Metric string `json:"metric"`
}

func (s *Server) handleFromBase(w http.ResponseWriter, r *http.Request) error {
	var req fromBaseRequest
	if err := decodeRequest(w, r, &req); err != nil {
		return err
	}
	if req.Base == "" {
		req.Base = "serial"
	}
	if req.Metric == "" {
		req.Metric = core.MetricTsem
	}
	if err := validateApp(req.App); err != nil {
		return err
	}
	if !validMetric(req.Metric) {
		return badRequest("unknown metric %q", req.Metric)
	}
	ctx := r.Context()
	idxs, _, err := s.env.IndexesCtx(ctx, req.App)
	if err != nil {
		return err
	}
	if _, ok := idxs[req.Base]; !ok {
		return badRequest("app %q has no model %q", req.App, req.Base)
	}
	values, order, err := s.env.FromBaseCtx(ctx, req.App, req.Base, req.Metric)
	if err != nil {
		return err
	}
	payload := BuildFromBasePayload(req.App, req.Base, req.Metric, order, values, idxs[req.Base])
	w.Header().Set("Content-Type", "application/json")
	return encodeIndented(w, payload)
}

// --- /v1/phi -----------------------------------------------------------------

// phiRequest asks for an app's navigation chart (Φ vs TBMD divergence).
type phiRequest struct {
	App string `json:"app"`
	// PhiSource optionally selects "modeled" or "measured" for this
	// environment (measured requires a C++ app and profiles it once).
	PhiSource string `json:"phi_source"`
}

func (s *Server) handlePhi(w http.ResponseWriter, r *http.Request) error {
	var req phiRequest
	if err := decodeRequest(w, r, &req); err != nil {
		return err
	}
	if err := validateApp(req.App); err != nil {
		return err
	}
	if req.PhiSource != "" {
		if req.PhiSource != experiments.PhiSourceModeled && req.PhiSource != experiments.PhiSourceMeasured {
			return badRequest("unknown phi source %q", req.PhiSource)
		}
		if err := s.env.SetPhiSource(req.PhiSource); err != nil {
			return badRequest("%v", err)
		}
	}
	ch, err := s.env.NavChartCtx(r.Context(), req.App)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	return ch.WriteJSON(w)
}

// --- /v1/sweep ---------------------------------------------------------------

// sweepRequest streams one matrix per metric as NDJSON — the long-poll
// form for clients that want results as they complete rather than one
// monolithic payload.
type sweepRequest struct {
	App     string   `json:"app"`
	Metrics []string `json:"metrics"`
}

// sweepLine is one NDJSON line of a streamed sweep.
type sweepLine struct {
	App    string      `json:"app"`
	Metric string      `json:"metric"`
	Order  []string    `json:"order"`
	Matrix [][]float64 `json:"matrix"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) error {
	var req sweepRequest
	if err := decodeRequest(w, r, &req); err != nil {
		return err
	}
	if err := validateApp(req.App); err != nil {
		return err
	}
	if len(req.Metrics) == 0 {
		req.Metrics = core.Metrics()
	}
	for _, m := range req.Metrics {
		if !validMetric(m) {
			return badRequest("unknown metric %q", m)
		}
	}
	ctx := r.Context()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for _, metric := range req.Metrics {
		m, order, err := s.env.MatrixCtx(ctx, req.App, metric)
		if err != nil {
			// Mid-stream failures cannot change the status line (already
			// sent); emit a terminal error line instead.
			if ctx.Err() != nil {
				return errCtxDone
			}
			_ = enc.Encode(map[string]string{"error": err.Error(), "metric": metric})
			return nil
		}
		if err := enc.Encode(sweepLine{App: req.App, Metric: metric, Order: order, Matrix: m}); err != nil {
			return errCtxDone // client went away mid-stream
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	return nil
}

// validateApp checks the app against the corpus registry.
func validateApp(app string) error {
	if app == "" {
		return badRequest("app is required")
	}
	if _, err := corpus.AppByName(app); err != nil {
		return badRequest("%v", err)
	}
	return nil
}
