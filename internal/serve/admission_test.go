package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestAdmissionExactCounts: the single-counter design makes overflow
// exact — with limit admitted, the next acquire fails, and a release
// reopens exactly one position.
func TestAdmissionExactCounts(t *testing.T) {
	a := newAdmission(3, 0)
	ctx := context.Background()
	var releases []func()
	for i := 0; i < 3; i++ {
		r, err := a.acquire(ctx)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, r)
	}
	if a.Inflight() != 3 || a.Queued() != 0 {
		t.Fatalf("inflight %d queued %d, want 3/0", a.Inflight(), a.Queued())
	}
	if _, err := a.acquire(ctx); !errors.Is(err, errOverflow) {
		t.Fatalf("overflow acquire = %v, want errOverflow", err)
	}
	releases[0]()
	if r, err := a.acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	} else {
		releases[0] = r
	}
	for _, r := range releases {
		r()
	}
	if a.Inflight() != 0 || a.Queued() != 0 {
		t.Fatalf("drained admission not empty: inflight %d queued %d", a.Inflight(), a.Queued())
	}
}

// TestAdmissionCancelWhileQueued: a queued acquire is cancellable and
// frees its position without disturbing the slot holder.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 1)
	hold, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx)
		errCh <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for a.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire = %v, want context.Canceled", err)
	}
	if a.Queued() != 0 || a.Inflight() != 1 {
		t.Fatalf("after cancel: inflight %d queued %d, want 1/0", a.Inflight(), a.Queued())
	}
	hold()
	if r, err := a.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after drain: %v", err)
	} else {
		r()
	}
}
