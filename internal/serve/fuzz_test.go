package serve

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzServeRequest mirrors FuzzStoreRecord for the daemon's ingress:
// every request body is hostile until proven otherwise. Across every
// request shape the decoder must never panic, never allocate past the
// MaxRequestBytes cap (MaxBytesReader enforces it before the decoder
// sees a byte), and classify every failure as a 4xx httpError — a
// malformed body can never surface as a 5xx or corrupt server state.
func FuzzServeRequest(f *testing.F) {
	seeds := []string{
		`{"app":"tealeaf","metric":"tsem"}`,
		`{"app":"tealeaf"}{"trailing":true}`,
		`{"app":`,
		`{"unknown_field":1}`,
		`[1,2,3]`,
		`"just a string"`,
		`{"app":{"nested":["deep"]}}`,
		`{"a":"x","b":"y","metric":"tir"}`,
		`{"app":"up","model":"m","lang":"fortran","files":{"a.f90":"end"},"units":[{"file":"a.f90","role":"main"}]}`,
		`{"app":"up","model":"m","lang":"fortran","files":{"a.f90":"end"},"units":[{"file":"missing"}]}`,
		`{"metrics":["tsem","` + strings.Repeat("x", 300) + `"]}`,
		"\x00\xff\xfe\x1f\x8b",
		"",
	}
	for _, s := range seeds {
		for ct := uint8(0); ct < 3; ct++ {
			f.Add([]byte(s), ct, uint8(len(s)%6))
		}
	}
	contentTypes := []string{
		"application/json",
		"", // absent is accepted
		"application/json; charset=utf-8",
		"text/plain",
		"application/", // malformed media type
	}
	f.Fuzz(func(t *testing.T, body []byte, ctSel, shape uint8) {
		var dst any
		switch shape % 6 {
		case 0:
			dst = &matrixRequest{}
		case 1:
			dst = &fromBaseRequest{}
		case 2:
			dst = &phiRequest{}
		case 3:
			dst = &sweepRequest{}
		case 4:
			dst = &divergeRequest{}
		default:
			dst = &codebaseUpload{}
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/fuzz", bytes.NewReader(body))
		if ct := contentTypes[int(ctSel)%len(contentTypes)]; ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		err := decodeRequest(httptest.NewRecorder(), req, dst)
		if err == nil {
			// A decoded upload still runs its semantic validation; it
			// must not panic and its failures are client errors by
			// construction (the handler maps them to 400).
			if up, ok := dst.(*codebaseUpload); ok {
				_, _ = up.toCodebase()
			}
			return
		}
		var he *httpError
		if !errors.As(err, &he) {
			t.Fatalf("decode failure is not an httpError: %T %v", err, err)
		}
		if he.status < 400 || he.status > 499 {
			t.Fatalf("decode failure mapped to %d, want 4xx: %v", he.status, err)
		}
	})
}
