//go:build !race

package serve

// Full-size soak for the plain suite; see race_on_test.go for why -race
// runs trim to the Fortran corpus.
const (
	raceEnabled = false

	soakClients = 4
	soakIters   = 2
)

// soakApps lists the corpus apps the multi-tenant soak hammers: the
// Fortran fixtures plus one full-size C++ app.
var soakApps = []string{"babelstream-fortran", "babelstream"}
