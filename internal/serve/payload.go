package serve

import (
	"io"

	"silvervale/internal/core"
)

// Response payloads shared with the one-shot CLI. The matrix payload and
// its encoder live here (not in cmd/silvervale) precisely so the daemon
// and `matrix -json` emit the same bytes from the same data — the
// byte-identity acceptance gate falls out of sharing the codec instead
// of pinning two implementations against each other.

// UnitFingerprint is one unit's content address in a JSON payload.
type UnitFingerprint struct {
	File        string `json:"file"`
	Role        string `json:"role"`
	Fingerprint string `json:"fingerprint"`
}

// MatrixPayload is the matrix sweep payload (`matrix -json` and
// POST /v1/matrix): the sweep plus each model's per-unit tree
// fingerprints, so downstream tooling can content-address which trees
// produced the numbers.
type MatrixPayload struct {
	App    string                       `json:"app"`
	Metric string                       `json:"metric"`
	Order  []string                     `json:"order"`
	Matrix [][]float64                  `json:"matrix"`
	Units  map[string][]UnitFingerprint `json:"units"`
}

// FingerprintMetric picks the tree whose fingerprint JSON payloads
// carry: the requested metric if it is a tree metric, tsem otherwise
// (SLOC/LLOC and the Source variants have no tree of their own).
func FingerprintMetric(metric string) string {
	for _, m := range core.TreeMetrics() {
		if m == metric {
			return metric
		}
	}
	return core.MetricTsem
}

// BuildMatrixPayload assembles the payload from a computed sweep and the
// indexes it swept.
func BuildMatrixPayload(app, metric string, order []string, m [][]float64, idxs map[string]*core.Index) *MatrixPayload {
	fpm := FingerprintMetric(metric)
	p := &MatrixPayload{
		App: app, Metric: metric, Order: order, Matrix: m,
		Units: map[string][]UnitFingerprint{},
	}
	for _, model := range order {
		idx := idxs[model]
		if idx == nil {
			continue
		}
		for i := range idx.Units {
			u := &idx.Units[i]
			p.Units[model] = append(p.Units[model], UnitFingerprint{
				File: u.File, Role: u.Role,
				Fingerprint: u.TreeFingerprint(fpm).String(),
			})
		}
	}
	return p
}

// WriteJSON writes the payload with the shared encoder configuration.
func (p *MatrixPayload) WriteJSON(w io.Writer) error {
	return encodeIndented(w, p)
}

// FromBasePayload is the POST /v1/frombase response: each model's
// divergence from the base model under one metric, plus the base's
// per-unit fingerprints.
type FromBasePayload struct {
	App    string             `json:"app"`
	Base   string             `json:"base"`
	Metric string             `json:"metric"`
	Order  []string           `json:"order"`
	Values map[string]float64 `json:"values"`
	Units  []UnitFingerprint  `json:"units"`
}

// BuildFromBasePayload assembles the from-base payload.
func BuildFromBasePayload(app, base, metric string, order []string, values map[string]float64, baseIdx *core.Index) *FromBasePayload {
	fpm := FingerprintMetric(metric)
	p := &FromBasePayload{App: app, Base: base, Metric: metric, Order: order, Values: values}
	if baseIdx != nil {
		for i := range baseIdx.Units {
			u := &baseIdx.Units[i]
			p.Units = append(p.Units, UnitFingerprint{
				File: u.File, Role: u.Role,
				Fingerprint: u.TreeFingerprint(fpm).String(),
			})
		}
	}
	return p
}
