package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// Admission control (DESIGN.md §14). Sweeps are CPU-bound and share one
// engine, so unbounded concurrency only adds scheduling overhead and
// memory pressure; the daemon instead runs at most MaxInflight sweeps
// with at most MaxQueue more waiting. The accounting is a single atomic
// counter over admitted requests (in-flight + queued) with a channel
// semaphore for the in-flight bound: the counter makes overflow
// deterministic — k concurrent requests against a full daemon yield
// exactly k - (MaxInflight + MaxQueue) rejections, regardless of
// scheduling — and the semaphore makes waiting cancellable, so a client
// that disconnects while queued frees its slot immediately.

// errOverflow reports an admission rejection (HTTP 429).
var errOverflow = errors.New("serve: admission queue full")

type admission struct {
	slots    chan struct{} // in-flight semaphore, cap MaxInflight
	admitted atomic.Int64  // in-flight + queued
	inflight atomic.Int64  // holding a slot right now
	limit    int64         // MaxInflight + MaxQueue
}

func newAdmission(maxInflight, maxQueue int) *admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots: make(chan struct{}, maxInflight),
		limit: int64(maxInflight + maxQueue),
	}
}

// acquire admits the request or fails fast: errOverflow when admitted
// requests already fill every slot and queue position, ctx.Err() when the
// caller went away while queued. On success the returned release must be
// called exactly once, after the sweep finishes.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a.admitted.Add(1) > a.limit {
		a.admitted.Add(-1)
		return nil, errOverflow
	}
	select {
	case a.slots <- struct{}{}:
	case <-ctx.Done():
		a.admitted.Add(-1)
		return nil, ctx.Err()
	}
	a.inflight.Add(1)
	return func() {
		a.inflight.Add(-1)
		<-a.slots
		a.admitted.Add(-1)
	}, nil
}

// Inflight returns how many sweeps hold a slot right now.
func (a *admission) Inflight() int64 { return a.inflight.Load() }

// Queued returns how many admitted requests are waiting for a slot.
func (a *admission) Queued() int64 {
	q := a.admitted.Load() - a.inflight.Load()
	if q < 0 {
		q = 0
	}
	return q
}
