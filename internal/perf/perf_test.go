package perf

import (
	"math"
	"testing"
	"testing/quick"

	"silvervale/internal/corpus"
)

func TestPlatformsTableIII(t *testing.T) {
	plats := Platforms()
	if len(plats) != 6 {
		t.Fatalf("platforms = %d, want 6", len(plats))
	}
	byAbbr := map[string]Platform{}
	for _, p := range plats {
		byAbbr[p.Abbr] = p
	}
	for _, abbr := range []string{"SPR", "Milan", "G3e", "H100", "MI250X", "PVC"} {
		if _, ok := byAbbr[abbr]; !ok {
			t.Errorf("missing platform %s", abbr)
		}
	}
	if byAbbr["SPR"].Kind != "cpu" || byAbbr["H100"].Kind != "gpu" {
		t.Error("platform kinds wrong")
	}
	if _, err := PlatformByAbbr("H100"); err != nil {
		t.Error(err)
	}
	if _, err := PlatformByAbbr("nope"); err == nil {
		t.Error("expected error for unknown platform")
	}
}

func TestSupportLandscape(t *testing.T) {
	h100, _ := PlatformByAbbr("H100")
	mi, _ := PlatformByAbbr("MI250X")
	pvc, _ := PlatformByAbbr("PVC")
	spr, _ := PlatformByAbbr("SPR")

	// CUDA is NVIDIA-only
	if Efficiency("tealeaf", corpus.CUDA, h100) == 0 {
		t.Error("CUDA must run on H100")
	}
	if Efficiency("tealeaf", corpus.CUDA, mi) != 0 || Efficiency("tealeaf", corpus.CUDA, spr) != 0 {
		t.Error("CUDA must not run off NVIDIA")
	}
	// HIP is AMD-first with a CUDA backend
	if Efficiency("tealeaf", corpus.HIP, mi) == 0 || Efficiency("tealeaf", corpus.HIP, h100) == 0 {
		t.Error("HIP must run on MI250X and H100")
	}
	if Efficiency("tealeaf", corpus.HIP, pvc) != 0 {
		t.Error("HIP must not run on PVC")
	}
	// host models never offload
	for _, m := range []corpus.Model{corpus.OpenMP, corpus.TBB, corpus.Serial} {
		if Efficiency("tealeaf", m, h100) != 0 {
			t.Errorf("%s must not run on GPUs", m)
		}
	}
	// portable models cover everything
	for _, m := range []corpus.Model{corpus.Kokkos, corpus.SYCLACC, corpus.SYCLUSM, corpus.OpenMPTarget} {
		for _, p := range Platforms() {
			if Efficiency("tealeaf", m, p) == 0 {
				t.Errorf("%s should support %s", m, p.Abbr)
			}
		}
	}
	// vendor-native models win on their platform
	if Efficiency("tealeaf", corpus.CUDA, h100) <= Efficiency("tealeaf", corpus.SYCLACC, h100) {
		t.Error("CUDA should beat SYCL on H100")
	}
	if Efficiency("tealeaf", corpus.HIP, mi) <= Efficiency("tealeaf", corpus.Kokkos, mi) {
		t.Error("HIP should beat Kokkos on MI250X")
	}
	if Efficiency("tealeaf", corpus.SYCLACC, pvc) <= Efficiency("tealeaf", corpus.Kokkos, pvc) {
		t.Error("SYCL should beat Kokkos on PVC")
	}
}

func TestPhiProperties(t *testing.T) {
	if Phi(nil) != 0 {
		t.Error("empty set Φ = 0")
	}
	if Phi([]float64{0.5, 0}) != 0 {
		t.Error("any unsupported platform zeroes Φ")
	}
	if v := Phi([]float64{0.5, 0.5}); math.Abs(v-0.5) > 1e-12 {
		t.Errorf("uniform Φ = %v", v)
	}
	// harmonic mean: dominated by the worst platform
	if v := Phi([]float64{1.0, 0.1}); math.Abs(v-2.0/11.0) > 1e-12 {
		t.Errorf("Φ = %v, want %v", v, 2.0/11.0)
	}
}

func TestPhiBoundedByMin(t *testing.T) {
	f := func(a, b, c uint8) bool {
		e := []float64{float64(a%100)/100 + 0.01, float64(b%100)/100 + 0.01, float64(c%100)/100 + 0.01}
		phi := Phi(e)
		min, max := e[0], e[0]
		for _, v := range e {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return phi >= min-1e-12 && phi <= max+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAppPhiOrdering(t *testing.T) {
	plats := Platforms()
	// CUDA cannot be portable across the full set; portable models must be
	phiCUDA := AppPhi("tealeaf", corpus.CUDA, plats)
	if phiCUDA != 0 {
		t.Errorf("CUDA Φ over all platforms = %v, want 0", phiCUDA)
	}
	for _, m := range []corpus.Model{corpus.Kokkos, corpus.SYCLACC, corpus.SYCLUSM, corpus.OpenMPTarget} {
		if AppPhi("tealeaf", m, plats) <= 0 {
			t.Errorf("%s should have Φ > 0", m)
		}
	}
	// On the NVIDIA-only subset, CUDA is king
	h100, _ := PlatformByAbbr("H100")
	sub := []Platform{h100}
	if AppPhi("tealeaf", corpus.CUDA, sub) <= AppPhi("tealeaf", corpus.OpenMPTarget, sub) {
		t.Error("CUDA should dominate on an NVIDIA-only platform set")
	}
}

func TestCascadeSortedAndRunningPhi(t *testing.T) {
	pts := Cascade("cloverleaf", corpus.Kokkos, Platforms())
	if len(pts) != 6 {
		t.Fatalf("cascade length = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Eff > pts[i-1].Eff {
			t.Fatal("cascade must be sorted descending")
		}
	}
	// running Φ is non-increasing as platforms are added
	prev := math.Inf(1)
	for k := 1; k <= len(pts); k++ {
		phi := RunningPhi(pts, k)
		if phi > prev+1e-12 {
			t.Fatalf("running Φ increased at k=%d", k)
		}
		prev = phi
	}
	if RunningPhi(pts, 100) != RunningPhi(pts, len(pts)) {
		t.Fatal("k beyond length must clamp")
	}
}

func TestRuntimeModel(t *testing.T) {
	h100, _ := PlatformByAbbr("H100")
	spr, _ := PlatformByAbbr("SPR")
	// unsupported → +Inf
	if !math.IsInf(Runtime("tealeaf", corpus.CUDA, spr, 1e9, 1e9, 10), 1) {
		t.Error("unsupported model should yield infinite runtime")
	}
	// the H100 should beat a CPU node on a bandwidth-bound app for a
	// portable model
	rGPU := Runtime("tealeaf", corpus.Kokkos, h100, 1e10, 1e9, 10)
	rCPU := Runtime("tealeaf", corpus.Kokkos, spr, 1e10, 1e9, 10)
	if rGPU >= rCPU {
		t.Errorf("H100 (%v) should beat SPR (%v)", rGPU, rCPU)
	}
	// more iterations, more time
	if Runtime("tealeaf", corpus.Kokkos, h100, 1e10, 1e9, 20) <= rGPU {
		t.Error("runtime must scale with iterations")
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	h100, _ := PlatformByAbbr("H100")
	a := Efficiency("tealeaf", corpus.Kokkos, h100)
	b := Efficiency("tealeaf", corpus.Kokkos, h100)
	if a != b {
		t.Fatal("efficiency must be deterministic")
	}
	if a <= 0 || a > 1 {
		t.Fatalf("efficiency out of range: %v", a)
	}
	// different apps see different numbers
	c := Efficiency("cloverleaf", corpus.Kokkos, h100)
	if a == c {
		t.Error("apps should have distinct efficiencies (jitter)")
	}
}
