// Measured efficiencies: the -phi-source=measured leg of the navigation
// charts (DESIGN.md §11). Where perf.Efficiency fabricates efficiencies
// from the hand-written support matrix alone, this file derives them from
// interpreter-measured cost vectors (internal/interp profiling substrate):
// each (app, model) port is priced on each platform with the existing
// roofline parameters — bytes/MemBW vs flops/Peak — plus calibrated
// charges for model boilerplate (extra kernel-scope statements, kernel
// launches, host-side statements). Efficiency keeps the paper's own
// definition: performance relative to the best supported model on that
// platform, so values land in (0,1] by construction and the support
// matrix still gates which platforms a model can target at all.
package perf

import (
	"math"

	"silvervale/internal/corpus"
	"silvervale/internal/interp"
)

// Calibration constants for pricing measured counts as roofline traffic.
// They are substitutions, not measurements (DESIGN.md §11): one executed
// statement of boilerplate costs a cache line of instruction/control
// traffic; one kernel invocation costs LaunchBytes of equivalent traffic
// (launch latency, parallel-region setup).
const (
	StmtBytes   = 64
	LaunchBytes = 512
)

// Supports reports whether a model can target a platform at all — the
// support matrix that gates both the modeled and the measured paths.
func Supports(model corpus.Model, plat Platform) bool {
	return baseEfficiency(model, plat) > 0
}

// KernelCost pairs one kernel's reference cost vector (the serial port,
// whose loop bodies the interpreter executes fully) with the same
// kernel's vector measured in this model's port. Offload ports execute
// only their host-side wrappers, so Ref supplies the algorithmic work
// and Model supplies the port's own measured shape (wrapper statements,
// invocation counts).
type KernelCost struct {
	Name  string
	Ref   interp.CostVector
	Model interp.CostVector
}

// AppCost is the measured cost of one (app, model) port: per-kernel
// vectors plus the host-side remainder (main, helpers, globals).
type AppCost struct {
	App     string
	Model   corpus.Model
	Kernels []KernelCost
	Host    interp.CostVector
}

// BuildAppCost splits a port's cost profile into per-kernel vectors and
// the host remainder. A profiled function belongs to kernel k when its
// name is k.Name or extends it with an underscore suffix (the corpus
// convention: CUDA device bodies are <kernel>_kernel, wrappers are the
// kernel name itself); the longest matching kernel name wins, so
// tealeaf's copy_u never swallows an unrelated copy_* helper of a
// hypothetical copy kernel. ref is the serial port's profile supplying
// the per-kernel reference vectors.
func BuildAppCost(app corpus.App, model corpus.Model, ref, prof *interp.Profile) AppCost {
	ac := AppCost{App: app.Name, Model: model}
	kidx := make(map[string]int, len(app.Kernels))
	ac.Kernels = make([]KernelCost, len(app.Kernels))
	for i, k := range app.Kernels {
		kidx[k.Name] = i
		ac.Kernels[i] = KernelCost{Name: k.Name}
	}
	assign := func(p *interp.Profile, pick func(i int) *interp.CostVector, host *interp.CostVector) {
		for _, fn := range p.Names() {
			cv := p.Func(fn)
			best := -1
			bestLen := -1
			for _, k := range app.Kernels {
				if fn != k.Name && !hasKernelPrefix(fn, k.Name) {
					continue
				}
				if len(k.Name) > bestLen {
					best, bestLen = kidx[k.Name], len(k.Name)
				}
			}
			if best >= 0 {
				pick(best).Add(cv)
			} else if host != nil {
				host.Add(cv)
			}
		}
	}
	assign(prof, func(i int) *interp.CostVector { return &ac.Kernels[i].Model }, &ac.Host)
	assign(ref, func(i int) *interp.CostVector { return &ac.Kernels[i].Ref }, nil)
	return ac
}

func hasKernelPrefix(fn, kernel string) bool {
	return len(fn) > len(kernel)+1 && fn[:len(kernel)] == kernel && fn[len(kernel)] == '_'
}

// Time prices the port on a platform in roofline seconds: per kernel the
// larger of the memory and compute legs over the larger of the reference
// and measured work (offload ports never escape the algorithm's work by
// not executing it host-side), plus boilerplate charges — kernel-scope
// statements the port adds over the reference, kernel launches, and
// host-side statements.
func (c AppCost) Time(plat Platform) float64 {
	bw := plat.MemBW * 1e9
	peak := plat.Peak * 1e9
	t := 0.0
	for _, k := range c.Kernels {
		bytes := math.Max(float64(k.Ref.MemBytes), float64(k.Model.MemBytes))
		flops := math.Max(float64(k.Ref.Flops), float64(k.Model.Flops))
		t += math.Max(bytes/bw, flops/peak)
		if ds := k.Model.Stmts - k.Ref.Stmts; ds > 0 {
			t += float64(ds) * StmtBytes / bw
		}
		t += float64(k.Model.Calls) * LaunchBytes / bw
	}
	t += float64(c.Host.Stmts) * StmtBytes / bw
	return t
}

// MeasuredSet holds every port's measured cost for one app and answers
// the same questions the modeled path does (Efficiency, AppPhi, Cascade),
// so Φ consumers can switch source without changing shape.
type MeasuredSet struct {
	App    string
	Models []corpus.Model // deterministic iteration order
	Costs  map[corpus.Model]AppCost
}

// NewMeasuredSet assembles a set from per-model costs in the given order.
func NewMeasuredSet(app string, models []corpus.Model, costs map[corpus.Model]AppCost) *MeasuredSet {
	return &MeasuredSet{App: app, Models: models, Costs: costs}
}

// bestTime is the fastest supported port's time on a platform (Inf when
// nothing is supported). Iteration follows s.Models, so the value never
// depends on map order.
func (s *MeasuredSet) bestTime(plat Platform) float64 {
	best := math.Inf(1)
	for _, m := range s.Models {
		if !Supports(m, plat) {
			continue
		}
		if c, ok := s.Costs[m]; ok {
			if t := c.Time(plat); t < best {
				best = t
			}
		}
	}
	return best
}

// Efficiency is the measured application efficiency of a model on a
// platform: its roofline time relative to the best supported port there,
// gated to 0 by the support matrix. Supported models land in (0,1] with
// the best port at exactly 1.
func (s *MeasuredSet) Efficiency(model corpus.Model, plat Platform) float64 {
	if !Supports(model, plat) {
		return 0
	}
	c, ok := s.Costs[model]
	if !ok {
		return 0
	}
	best := s.bestTime(plat)
	t := c.Time(plat)
	if math.IsInf(best, 1) || t <= 0 {
		return 0
	}
	return best / t
}

// AppPhi computes measured Φ across the given platforms (harmonic mean,
// 0 when any platform is unsupported — same semantics as perf.AppPhi).
func (s *MeasuredSet) AppPhi(model corpus.Model, plats []Platform) float64 {
	effs := make([]float64, len(plats))
	for i, p := range plats {
		effs[i] = s.Efficiency(model, p)
	}
	return Phi(effs)
}

// Cascade builds the cascade-plot series from measured efficiencies
// (same convention as the modeled Cascade).
func (s *MeasuredSet) Cascade(model corpus.Model, plats []Platform) []CascadePoint {
	return CascadeOf(func(p Platform) float64 { return s.Efficiency(model, p) }, plats)
}
