package perf

import (
	"testing"

	"silvervale/internal/core"
	"silvervale/internal/corpus"
	"silvervale/internal/interp"
)

func appByName(t *testing.T, name string) corpus.App {
	t.Helper()
	for _, a := range corpus.Apps() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no app %q", name)
	return corpus.App{}
}

// measuredSet profiles every C++ port of an app and assembles the
// MeasuredSet the way the experiments layer does.
func measuredSet(t *testing.T, app corpus.App) *MeasuredSet {
	t.Helper()
	models := corpus.CXXModels()
	profs := make(map[corpus.Model]*interp.Profile, len(models))
	for _, m := range models {
		cb, err := corpus.Generate(app, m)
		if err != nil {
			t.Fatalf("generate %s/%s: %v", app.Name, m, err)
		}
		rp, err := core.ProfileCodebase(cb, nil)
		if err != nil {
			t.Fatalf("profile %s/%s: %v", app.Name, m, err)
		}
		profs[m] = rp.Cost
	}
	costs := make(map[corpus.Model]AppCost, len(models))
	for _, m := range models {
		costs[m] = BuildAppCost(app, m, profs[corpus.Serial], profs[m])
	}
	return NewMeasuredSet(app.Name, models, costs)
}

// TestMeasuredEfficiencyProperties: support-matrix zeros stay zero,
// supported efficiencies land in (0,1], and each platform's best
// supported port scores exactly 1.
func TestMeasuredEfficiencyProperties(t *testing.T) {
	set := measuredSet(t, appByName(t, "tealeaf"))
	for _, plat := range Platforms() {
		best := 0.0
		for _, m := range corpus.CXXModels() {
			eff := set.Efficiency(m, plat)
			if !Supports(m, plat) {
				if eff != 0 {
					t.Errorf("%s on %s: unsupported but eff=%g", m, plat.Abbr, eff)
				}
				continue
			}
			if eff <= 0 || eff > 1 {
				t.Errorf("%s on %s: eff=%g outside (0,1]", m, plat.Abbr, eff)
			}
			if eff > best {
				best = eff
			}
		}
		if best != 1.0 {
			t.Errorf("%s: best supported efficiency %g, want exactly 1", plat.Abbr, best)
		}
	}
}

// TestMeasuredSupportGateZeros: CUDA prices to zero on every CPU platform
// and off NVIDIA, so its Φ contribution is zero there — and Φ over any
// platform set containing an unsupported platform collapses to 0.
func TestMeasuredSupportGateZeros(t *testing.T) {
	set := measuredSet(t, appByName(t, "babelstream"))
	var h100 Platform
	for _, plat := range Platforms() {
		if plat.Abbr == "H100" {
			h100 = plat
			continue
		}
		if eff := set.Efficiency(corpus.CUDA, plat); eff != 0 {
			t.Errorf("CUDA on %s: eff=%g, want 0", plat.Abbr, eff)
		}
	}
	if eff := set.Efficiency(corpus.CUDA, h100); eff <= 0 {
		t.Fatalf("CUDA on H100: eff=%g, want > 0", eff)
	}
	if phi := set.AppPhi(corpus.CUDA, Platforms()); phi != 0 {
		t.Errorf("CUDA Φ over all platforms = %g, want 0", phi)
	}
	if phi := set.AppPhi(corpus.CUDA, []Platform{h100}); phi <= 0 || phi > 1 {
		t.Errorf("CUDA Φ on H100 = %g, want (0,1]", phi)
	}
}

// TestMeasuredPhiOrderingSanity: over the full platform set, measured Φ
// is nonzero for exactly the models the modeled path scores nonzero —
// the support matrix gates both paths identically on TeaLeaf.
func TestMeasuredPhiOrderingSanity(t *testing.T) {
	app := appByName(t, "tealeaf")
	set := measuredSet(t, app)
	plats := Platforms()
	for _, m := range corpus.CXXModels() {
		measured := set.AppPhi(m, plats)
		modeled := AppPhi(app.Name, m, plats)
		if (measured > 0) != (modeled > 0) {
			t.Errorf("%s: measured Φ=%g vs modeled Φ=%g disagree on portability", m, measured, modeled)
		}
		if measured < 0 || measured > 1 {
			t.Errorf("%s: measured Φ=%g outside [0,1]", m, measured)
		}
	}
}

// TestMeasuredDeterministic: two independently profiled sets produce
// bit-identical efficiencies and Φ.
func TestMeasuredDeterministic(t *testing.T) {
	app := appByName(t, "babelstream")
	a := measuredSet(t, app)
	b := measuredSet(t, app)
	for _, m := range corpus.CXXModels() {
		if pa, pb := a.AppPhi(m, Platforms()), b.AppPhi(m, Platforms()); pa != pb {
			t.Errorf("%s: Φ differs across runs: %v vs %v", m, pa, pb)
		}
		for _, plat := range Platforms() {
			if ea, eb := a.Efficiency(m, plat), b.Efficiency(m, plat); ea != eb {
				t.Errorf("%s on %s: eff differs: %v vs %v", m, plat.Abbr, ea, eb)
			}
		}
	}
}

// TestBuildAppCostKernelMatching: function-to-kernel attribution follows
// the name / name+"_" convention with the longest kernel name winning.
func TestBuildAppCostKernelMatching(t *testing.T) {
	app := corpus.App{Name: "toy", Kernels: []corpus.Kernel{{Name: "copy"}, {Name: "copy_u"}}}
	prof := &interp.Profile{Funcs: map[string]interp.CostVector{
		"copy":          {Stmts: 1, Calls: 1},
		"copy_kernel":   {Stmts: 2, Calls: 1},
		"copy_u":        {Stmts: 4, Calls: 1},
		"copy_u_kernel": {Stmts: 8, Calls: 1}, // longest match: copy_u, not copy
		"main":          {Stmts: 16, Calls: 1},
		"helper":        {Stmts: 32, Calls: 1},
	}}
	ac := BuildAppCost(app, corpus.Serial, prof, prof)
	got := map[string]int64{}
	for _, k := range ac.Kernels {
		got[k.Name] = k.Model.Stmts
	}
	if got["copy"] != 3 {
		t.Errorf("copy stmts = %d, want 3 (copy + copy_kernel)", got["copy"])
	}
	if got["copy_u"] != 12 {
		t.Errorf("copy_u stmts = %d, want 12 (copy_u + copy_u_kernel)", got["copy_u"])
	}
	if ac.Host.Stmts != 48 {
		t.Errorf("host stmts = %d, want 48 (main + helper)", ac.Host.Stmts)
	}
	for _, k := range ac.Kernels {
		if k.Ref != k.Model {
			t.Errorf("kernel %s: ref %+v != model %+v for identical profiles", k.Name, k.Ref, k.Model)
		}
	}
}

// TestMeasuredCascadeShape: cascade points are sorted descending and the
// running Φ over all supported platforms matches AppPhi on that subset.
func TestMeasuredCascadeShape(t *testing.T) {
	set := measuredSet(t, appByName(t, "babelstream"))
	pts := set.Cascade(corpus.Kokkos, Platforms())
	if len(pts) != len(Platforms()) {
		t.Fatalf("cascade has %d points, want %d", len(pts), len(Platforms()))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Eff > pts[i-1].Eff {
			t.Fatalf("cascade not descending at %d: %v", i, pts)
		}
	}
	if phi := RunningPhi(pts, len(pts)); phi != set.AppPhi(corpus.Kokkos, Platforms()) {
		t.Errorf("running Φ %g != AppPhi %g", phi, set.AppPhi(corpus.Kokkos, Platforms()))
	}
}
