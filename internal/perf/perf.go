// Package perf simulates the performance-portability leg of the paper
// (Section VI). The original study ran CloverLeaf and TeaLeaf on six
// hardware platforms (Table III); without that hardware, this package
// substitutes a platform performance model — per-platform roofline
// parameters combined with a model-support/efficiency matrix encoding the
// published qualitative landscape (CUDA is NVIDIA-only, HIP is AMD-first,
// SYCL spans CPUs and all three GPU vendors, host OpenMP/TBB never offload,
// …) plus deterministic per-app jitter. Φ, cascade plots (Sewall et al.),
// and the navigation charts consume only these efficiencies, so the shape
// of every figure is preserved (see DESIGN.md substitutions).
package perf

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"silvervale/internal/corpus"
)

// Platform describes one row of Table III.
type Platform struct {
	Vendor   string
	Name     string
	Abbr     string
	Kind     string // "cpu" or "gpu"
	Topology string
	// MemBW is aggregate memory bandwidth (GB/s) of the benchmark node;
	// Peak is FP64 peak (GFLOP/s). Values are representative publicly
	// documented figures, used only to produce plausible runtimes.
	MemBW float64
	Peak  float64
}

// Platforms returns the six platforms of Table III.
func Platforms() []Platform {
	return []Platform{
		{Vendor: "Intel", Name: "Xeon Platinum 8468", Abbr: "SPR", Kind: "cpu",
			Topology: "8 nodes (32C*2)", MemBW: 600, Peak: 5200},
		{Vendor: "AMD", Name: "EPYC 7713", Abbr: "Milan", Kind: "cpu",
			Topology: "8 nodes (64C*2)", MemBW: 400, Peak: 4100},
		{Vendor: "AWS", Name: "Graviton 3e", Abbr: "G3e", Kind: "cpu",
			Topology: "8 nodes (64C*1)", MemBW: 300, Peak: 1900},
		{Vendor: "NVIDIA", Name: "Tesla H100 (SXM 80GB)", Abbr: "H100", Kind: "gpu",
			Topology: "2 nodes (4 GPUs)", MemBW: 3350, Peak: 34000},
		{Vendor: "AMD", Name: "Instinct MI250X", Abbr: "MI250X", Kind: "gpu",
			Topology: "2 nodes (4 GPUs)", MemBW: 3200, Peak: 24000},
		{Vendor: "Intel", Name: "Data Center GPU Max 1550", Abbr: "PVC", Kind: "gpu",
			Topology: "1 node (4 GPUs*)", MemBW: 3200, Peak: 26000},
	}
}

// PlatformByAbbr looks a platform up.
func PlatformByAbbr(abbr string) (Platform, error) {
	for _, p := range Platforms() {
		if p.Abbr == abbr {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("perf: unknown platform %q", abbr)
}

// baseEfficiency encodes the support/efficiency landscape: the fraction of
// the best-achievable application performance each model reaches on each
// platform, before per-app jitter. Zero means the model cannot target the
// platform at all.
func baseEfficiency(model corpus.Model, plat Platform) float64 {
	cpu := plat.Kind == "cpu"
	switch model {
	case corpus.Serial:
		if cpu {
			return 0.05 // single core of a many-core node
		}
		return 0
	case corpus.OpenMP:
		if cpu {
			return 0.97
		}
		return 0 // host-only model
	case corpus.TBB:
		if cpu {
			return 0.90
		}
		return 0
	case corpus.StdPar:
		if cpu {
			return 0.86
		}
		if plat.Abbr == "H100" {
			return 0.88 // nvc++ -stdpar
		}
		return 0 // no production StdPar offload elsewhere at time of study
	case corpus.OpenMPTarget:
		if cpu {
			return 0.55 // host fallback exists but underperforms
		}
		switch plat.Abbr {
		case "H100":
			return 0.86
		case "MI250X":
			return 0.80
		case "PVC":
			return 0.78
		}
		return 0
	case corpus.CUDA:
		if plat.Abbr == "H100" {
			return 1.0
		}
		return 0
	case corpus.HIP:
		switch plat.Abbr {
		case "MI250X":
			return 1.0
		case "H100":
			return 0.93 // HIP's CUDA backend
		}
		return 0
	case corpus.Kokkos:
		if cpu {
			return 0.88
		}
		switch plat.Abbr {
		case "H100":
			return 0.92
		case "MI250X":
			return 0.87
		case "PVC":
			return 0.72
		}
		return 0
	case corpus.SYCLACC:
		if cpu {
			return 0.72
		}
		switch plat.Abbr {
		case "H100":
			return 0.82
		case "MI250X":
			return 0.78
		case "PVC":
			return 0.96
		}
		return 0
	case corpus.SYCLUSM:
		if cpu {
			return 0.74
		}
		switch plat.Abbr {
		case "H100":
			return 0.80
		case "MI250X":
			return 0.76
		case "PVC":
			return 0.95
		}
		return 0
	}
	return 0
}

// jitter derives a deterministic per-(app, model, platform) factor in
// [0.93, 1.07] so the two apps do not produce identical numbers.
func jitter(app string, model corpus.Model, plat Platform) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(app))
	_, _ = h.Write([]byte(model))
	_, _ = h.Write([]byte(plat.Abbr))
	v := float64(h.Sum64()%1000) / 1000.0
	return 0.93 + 0.14*v
}

// Efficiency returns the application efficiency of (app, model) on a
// platform in [0, 1]: performance relative to the best observed
// performance on that platform, the quantity Φ consumes.
func Efficiency(app string, model corpus.Model, plat Platform) float64 {
	base := baseEfficiency(model, plat)
	if base == 0 {
		return 0
	}
	e := base * jitter(app, model, plat)
	if e > 1 {
		e = 1
	}
	return e
}

// Runtime models the wall-clock seconds of one benchmark run ("BM" deck
// style: workBytes of memory traffic per iteration). Memory-bandwidth-bound
// apps scale with MemBW; compute-bound apps (miniBUDE) with Peak.
func Runtime(app string, model corpus.Model, plat Platform, workBytes, flops float64, iters int) float64 {
	eff := Efficiency(app, model, plat)
	if eff == 0 {
		return math.Inf(1)
	}
	bwTime := workBytes / (plat.MemBW * 1e9)
	flopTime := flops / (plat.Peak * 1e9)
	per := math.Max(bwTime, flopTime)
	return float64(iters) * per / eff
}

// Phi computes the performance-portability metric of Pennycook, Sewall and
// Lee: the harmonic mean of an application's efficiency across the platform
// set H, and zero when any platform in H is unsupported.
func Phi(effs []float64) float64 {
	if len(effs) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range effs {
		if e <= 0 {
			return 0
		}
		sum += 1 / e
	}
	return float64(len(effs)) / sum
}

// AppPhi computes Φ of (app, model) across the given platforms.
func AppPhi(app string, model corpus.Model, plats []Platform) float64 {
	effs := make([]float64, len(plats))
	for i, p := range plats {
		effs[i] = Efficiency(app, model, p)
	}
	return Phi(effs)
}

// CascadePoint is one point of a cascade plot series.
type CascadePoint struct {
	Platform string
	Eff      float64
}

// Cascade builds the cascade-plot series for a model (Sewall et al.):
// efficiencies sorted in descending order, with the running Φ of the first
// k platforms available via RunningPhi.
func Cascade(app string, model corpus.Model, plats []Platform) []CascadePoint {
	return CascadeOf(func(p Platform) float64 { return Efficiency(app, model, p) }, plats)
}

// CascadeOf builds a cascade series from an arbitrary efficiency
// function — the shared shape of the modeled and measured paths
// (descending efficiency, ties broken by platform abbreviation).
func CascadeOf(eff func(Platform) float64, plats []Platform) []CascadePoint {
	pts := make([]CascadePoint, 0, len(plats))
	for _, p := range plats {
		pts = append(pts, CascadePoint{Platform: p.Abbr, Eff: eff(p)})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Eff != pts[j].Eff {
			return pts[i].Eff > pts[j].Eff
		}
		return pts[i].Platform < pts[j].Platform
	})
	return pts
}

// RunningPhi returns Φ over the first k points of a cascade (the cascade
// plot's characteristic collapsing curve: Φ over the best-k platforms).
func RunningPhi(pts []CascadePoint, k int) float64 {
	if k > len(pts) {
		k = len(pts)
	}
	effs := make([]float64, 0, k)
	for _, p := range pts[:k] {
		effs = append(effs, p.Eff)
	}
	return Phi(effs)
}
