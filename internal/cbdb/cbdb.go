// Package cbdb implements the Codebase DB: the portable set of
// semantic-bearing trees and metadata SilverVale produces in its index
// step. The paper stores this as Zstd-compressed MessagePack; this
// implementation uses the same MessagePack encoding (package msgpack) with
// gzip substituted for Zstd (stdlib-only constraint; see DESIGN.md).
package cbdb

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"sort"

	"silvervale/internal/msgpack"
	"silvervale/internal/tree"
)

// FormatVersion is bumped on incompatible schema changes. Version 2 adds
// the post-preprocessor line set and the per-line origin attribution, which
// makes a stored DB a lossless substitute for a live index: every metric —
// including source+pp and the +coverage variants — computes identically
// from a reloaded record. The persistent artifact store (internal/store)
// relies on that for its warm-start determinism guarantee. Version 3 adds
// the incremental-recomputation keys (DESIGN.md §12): per-unit dependency
// lists and source hashes (frontend reuse), per-tree fingerprints and
// line-set hashes (matrix-cell invalidation), and the index-level options
// digest — so a reloaded index can both seed an incremental reindex and
// address memoised matrix cells without re-walking any tree.
const FormatVersion = 3

// UnitRecord is the persisted form of one indexed unit (Eq. 1: a source
// file plus its module dependencies).
type UnitRecord struct {
	File          string
	Role          string // logical role used by the match function
	SLOC          int
	LLOC          int
	SourceLines   []string          // normalised source lines (Source metric)
	SourceLinesPP []string          // after preprocessing (source+pp metric)
	LineFiles     []string          // originating file per SourceLines entry
	LineNums      []int             // originating line per SourceLines entry
	Trees         map[string]string // metric name -> s-expression

	// Incremental-recomputation keys (format v3). Deps is every file the
	// unit's indexed form depends on (root first, then the spliced include
	// closure in first-include order); MissingDeps are include targets that
	// did not resolve. SrcHash is the 128-bit content hash over all of them
	// — the frontend-reuse key. Fingerprints are the per-metric tree
	// content addresses; LinesHash/LinesPPHash address the normalised line
	// sets. Hashes are stored as raw 64-bit pairs (the store's ContentHash
	// lives above this package).
	Deps         []string
	MissingDeps  []string
	SrcHash      [2]uint64
	LinesHash    [2]uint64
	LinesPPHash  [2]uint64
	Fingerprints map[string]tree.Fingerprint // metric name -> tree fingerprint
}

// DB is the persisted index of one codebase (one mini-app × model).
type DB struct {
	Codebase string
	Model    string
	Lang     string
	// Opts is the digest of the indexing options the units were produced
	// under (coverage mask, system-header handling); the zero pair means
	// "unknown" and disqualifies the record from seeding incremental reuse.
	Opts  [2]uint64
	Units []UnitRecord
}

// Tree decodes a stored tree by metric name.
func (u *UnitRecord) Tree(metric string) (*tree.Node, error) {
	s, ok := u.Trees[metric]
	if !ok {
		return nil, fmt.Errorf("cbdb: unit %q has no %q tree", u.File, metric)
	}
	return tree.ParseSexpr(s)
}

// Write serialises the DB as gzip-compressed MessagePack.
func (db *DB) Write(w io.Writer) error {
	gz := gzip.NewWriter(w)
	if err := db.EncodeMsgpack(gz); err != nil {
		return err
	}
	return gz.Close()
}

// EncodeMsgpack writes the DB's raw MessagePack payload without the gzip
// framing. The artifact store embeds this form inside its own compressed
// record envelope, so the bytes are compressed exactly once.
func (db *DB) EncodeMsgpack(w io.Writer) error {
	enc := msgpack.NewEncoder(w)
	units := make([]any, len(db.Units))
	for i, u := range db.Units {
		trees := make(map[string]any, len(u.Trees))
		for k, v := range u.Trees {
			trees[k] = v
		}
		fps := make(map[string]any, len(u.Fingerprints))
		for k, f := range u.Fingerprints {
			fps[k] = []any{f.H1, f.H2, uint64(f.Size)}
		}
		units[i] = map[string]any{
			"file":       u.File,
			"role":       u.Role,
			"sloc":       int64(u.SLOC),
			"lloc":       int64(u.LLOC),
			"lines":      u.SourceLines,
			"lines_pp":   u.SourceLinesPP,
			"line_files": u.LineFiles,
			"line_nums":  u.LineNums,
			"trees":      trees,
			"deps":       u.Deps,
			"missing":    u.MissingDeps,
			"uh":         []any{u.SrcHash[0], u.SrcHash[1]},
			"lh":         []any{u.LinesHash[0], u.LinesHash[1]},
			"ph":         []any{u.LinesPPHash[0], u.LinesPPHash[1]},
			"fps":        fps,
		}
	}
	payload := map[string]any{
		"version":  int64(FormatVersion),
		"codebase": db.Codebase,
		"model":    db.Model,
		"lang":     db.Lang,
		"opts":     []any{db.Opts[0], db.Opts[1]},
		"units":    units,
	}
	return enc.Encode(payload)
}

// Read deserialises a DB written by Write.
func Read(r io.Reader) (*DB, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("cbdb: %w", err)
	}
	defer gz.Close()
	return DecodeMsgpack(gz)
}

// DecodeMsgpack deserialises the raw MessagePack payload EncodeMsgpack
// produces (the un-gzipped half of Read).
func DecodeMsgpack(r io.Reader) (*DB, error) {
	v, err := msgpack.NewDecoder(r).Decode()
	if err != nil {
		return nil, fmt.Errorf("cbdb: %w", err)
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("cbdb: malformed payload %T", v)
	}
	if ver, _ := m["version"].(int64); ver != FormatVersion {
		return nil, fmt.Errorf("cbdb: unsupported version %v", m["version"])
	}
	db := &DB{}
	db.Codebase, _ = m["codebase"].(string)
	db.Model, _ = m["model"].(string)
	db.Lang, _ = m["lang"].(string)
	db.Opts = hashPair(m["opts"])
	rawUnits, _ := m["units"].([]any)
	for _, ru := range rawUnits {
		um, ok := ru.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("cbdb: malformed unit %T", ru)
		}
		u := UnitRecord{Trees: map[string]string{}}
		u.File, _ = um["file"].(string)
		u.Role, _ = um["role"].(string)
		if n, ok := um["sloc"].(int64); ok {
			u.SLOC = int(n)
		}
		if n, ok := um["lloc"].(int64); ok {
			u.LLOC = int(n)
		}
		u.SourceLines = stringSlice(um["lines"])
		u.SourceLinesPP = stringSlice(um["lines_pp"])
		u.LineFiles = stringSlice(um["line_files"])
		if nums, ok := um["line_nums"].([]any); ok {
			for _, n := range nums {
				if v, ok := n.(int64); ok {
					u.LineNums = append(u.LineNums, int(v))
				}
			}
		}
		if trees, ok := um["trees"].(map[string]any); ok {
			for k, tv := range trees {
				if s, ok := tv.(string); ok {
					u.Trees[k] = s
				}
			}
		}
		u.Deps = stringSlice(um["deps"])
		u.MissingDeps = stringSlice(um["missing"])
		u.SrcHash = hashPair(um["uh"])
		u.LinesHash = hashPair(um["lh"])
		u.LinesPPHash = hashPair(um["ph"])
		if fps, ok := um["fps"].(map[string]any); ok {
			u.Fingerprints = map[string]tree.Fingerprint{}
			for k, fv := range fps {
				if parts, ok := fv.([]any); ok && len(parts) == 3 {
					h1, ok1 := asUint64(parts[0])
					h2, ok2 := asUint64(parts[1])
					sz, ok3 := asUint64(parts[2])
					if ok1 && ok2 && ok3 {
						u.Fingerprints[k] = tree.Fingerprint{H1: h1, H2: h2, Size: uint32(sz)}
					}
				}
			}
		}
		db.Units = append(db.Units, u)
	}
	sort.Slice(db.Units, func(i, j int) bool { return db.Units[i].File < db.Units[j].File })
	return db, nil
}

// hashPair extracts a decoded [h1, h2] hash pair, zero on any mismatch.
func hashPair(v any) [2]uint64 {
	parts, ok := v.([]any)
	if !ok || len(parts) != 2 {
		return [2]uint64{}
	}
	h1, ok1 := asUint64(parts[0])
	h2, ok2 := asUint64(parts[1])
	if !ok1 || !ok2 {
		return [2]uint64{}
	}
	return [2]uint64{h1, h2}
}

// asUint64 widens a decoded msgpack integer to its uint64 bit pattern (the
// decoder returns int64 within range, uint64 beyond it).
func asUint64(v any) (uint64, bool) {
	switch x := v.(type) {
	case int64:
		return uint64(x), true
	case uint64:
		return x, true
	}
	return 0, false
}

// stringSlice extracts a []string from a decoded msgpack array, skipping
// non-string elements.
func stringSlice(v any) []string {
	items, ok := v.([]any)
	if !ok {
		return nil
	}
	var out []string
	for _, it := range items {
		if s, ok := it.(string); ok {
			out = append(out, s)
		}
	}
	return out
}

// Save writes the DB to a file.
func (db *DB) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a DB from a file.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
