// Package cbdb implements the Codebase DB: the portable set of
// semantic-bearing trees and metadata SilverVale produces in its index
// step. The paper stores this as Zstd-compressed MessagePack; this
// implementation uses the same MessagePack encoding (package msgpack) with
// gzip substituted for Zstd (stdlib-only constraint; see DESIGN.md).
package cbdb

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"sort"

	"silvervale/internal/msgpack"
	"silvervale/internal/tree"
)

// FormatVersion is bumped on incompatible schema changes.
const FormatVersion = 1

// UnitRecord is the persisted form of one indexed unit (Eq. 1: a source
// file plus its module dependencies).
type UnitRecord struct {
	File        string
	Role        string // logical role used by the match function
	SLOC        int
	LLOC        int
	SourceLines []string          // normalised source lines (Source metric)
	Trees       map[string]string // metric name -> s-expression
}

// DB is the persisted index of one codebase (one mini-app × model).
type DB struct {
	Codebase string
	Model    string
	Units    []UnitRecord
}

// Tree decodes a stored tree by metric name.
func (u *UnitRecord) Tree(metric string) (*tree.Node, error) {
	s, ok := u.Trees[metric]
	if !ok {
		return nil, fmt.Errorf("cbdb: unit %q has no %q tree", u.File, metric)
	}
	return tree.ParseSexpr(s)
}

// Write serialises the DB as gzip-compressed MessagePack.
func (db *DB) Write(w io.Writer) error {
	gz := gzip.NewWriter(w)
	enc := msgpack.NewEncoder(gz)
	units := make([]any, len(db.Units))
	for i, u := range db.Units {
		trees := make(map[string]any, len(u.Trees))
		for k, v := range u.Trees {
			trees[k] = v
		}
		lines := make([]any, len(u.SourceLines))
		for j, l := range u.SourceLines {
			lines[j] = l
		}
		units[i] = map[string]any{
			"file":  u.File,
			"role":  u.Role,
			"sloc":  int64(u.SLOC),
			"lloc":  int64(u.LLOC),
			"lines": lines,
			"trees": trees,
		}
	}
	payload := map[string]any{
		"version":  int64(FormatVersion),
		"codebase": db.Codebase,
		"model":    db.Model,
		"units":    units,
	}
	if err := enc.Encode(payload); err != nil {
		return err
	}
	return gz.Close()
}

// Read deserialises a DB written by Write.
func Read(r io.Reader) (*DB, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("cbdb: %w", err)
	}
	defer gz.Close()
	v, err := msgpack.NewDecoder(gz).Decode()
	if err != nil {
		return nil, fmt.Errorf("cbdb: %w", err)
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("cbdb: malformed payload %T", v)
	}
	if ver, _ := m["version"].(int64); ver != FormatVersion {
		return nil, fmt.Errorf("cbdb: unsupported version %v", m["version"])
	}
	db := &DB{}
	db.Codebase, _ = m["codebase"].(string)
	db.Model, _ = m["model"].(string)
	rawUnits, _ := m["units"].([]any)
	for _, ru := range rawUnits {
		um, ok := ru.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("cbdb: malformed unit %T", ru)
		}
		u := UnitRecord{Trees: map[string]string{}}
		u.File, _ = um["file"].(string)
		u.Role, _ = um["role"].(string)
		if n, ok := um["sloc"].(int64); ok {
			u.SLOC = int(n)
		}
		if n, ok := um["lloc"].(int64); ok {
			u.LLOC = int(n)
		}
		if lines, ok := um["lines"].([]any); ok {
			for _, l := range lines {
				if s, ok := l.(string); ok {
					u.SourceLines = append(u.SourceLines, s)
				}
			}
		}
		if trees, ok := um["trees"].(map[string]any); ok {
			for k, tv := range trees {
				if s, ok := tv.(string); ok {
					u.Trees[k] = s
				}
			}
		}
		db.Units = append(db.Units, u)
	}
	sort.Slice(db.Units, func(i, j int) bool { return db.Units[i].File < db.Units[j].File })
	return db, nil
}

// Save writes the DB to a file.
func (db *DB) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a DB from a file.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
