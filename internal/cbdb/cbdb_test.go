package cbdb

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"silvervale/internal/tree"
)

func sample() *DB {
	return &DB{
		Codebase: "tealeaf",
		Model:    "cuda",
		Units: []UnitRecord{
			{
				File:          "solver.cpp",
				Role:          "solver",
				SLOC:          120,
				LLOC:          80,
				SourceLines:   []string{"int main() {", "return 0;", "}"},
				SourceLinesPP: []string{"int main() {", "return 0;", "}", "int expanded;"},
				LineFiles:     []string{"solver.cpp", "solver.cpp", "solver.cpp"},
				LineNums:      []int{1, 2, 3},
				Trees: map[string]string{
					"sem": "(TranslationUnit (FunctionDecl (CompoundStmt (ReturnStmt IntegerLiteral:0))))",
					"src": "(unit:src (stmt kw:int ident))",
				},
			},
			{
				File:  "kernels.cpp",
				Role:  "kernels",
				SLOC:  300,
				LLOC:  210,
				Trees: map[string]string{"sem": "(TranslationUnit)"},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	db := sample()
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Codebase != "tealeaf" || got.Model != "cuda" {
		t.Fatalf("metadata = %q %q", got.Codebase, got.Model)
	}
	if len(got.Units) != 2 {
		t.Fatalf("units = %d", len(got.Units))
	}
	var solver *UnitRecord
	for i := range got.Units {
		if got.Units[i].File == "solver.cpp" {
			solver = &got.Units[i]
		}
	}
	if solver == nil || solver.SLOC != 120 || solver.LLOC != 80 || solver.Role != "solver" {
		t.Fatalf("solver = %+v", solver)
	}
	if len(solver.SourceLines) != 3 {
		t.Fatalf("lines = %v", solver.SourceLines)
	}
	if len(solver.SourceLinesPP) != 4 || solver.SourceLinesPP[3] != "int expanded;" {
		t.Fatalf("lines_pp = %v", solver.SourceLinesPP)
	}
	if len(solver.LineFiles) != 3 || solver.LineFiles[0] != "solver.cpp" {
		t.Fatalf("line_files = %v", solver.LineFiles)
	}
	if len(solver.LineNums) != 3 || solver.LineNums[2] != 3 {
		t.Fatalf("line_nums = %v", solver.LineNums)
	}
	tr, err := solver.Tree("sem")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tree.ParseSexpr(db.Units[0].Trees["sem"])
	if !tree.Equal(tr, want) {
		t.Fatal("tree round trip mismatch")
	}
}

func TestMissingTree(t *testing.T) {
	db := sample()
	if _, err := db.Units[1].Tree("ir"); err == nil {
		t.Fatal("expected error for missing tree")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := sample()
	path := filepath.Join(t.TempDir(), "tealeaf.cuda.svdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != "cuda" || len(got.Units) != 2 {
		t.Fatalf("loaded = %+v", got)
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	db := sample()
	// inflate with a large repetitive tree
	big := "(TranslationUnit"
	for i := 0; i < 2000; i++ {
		big += " (FunctionDecl (CompoundStmt (ReturnStmt IntegerLiteral:1)))"
	}
	big += ")"
	db.Units[0].Trees["sem"] = big
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= len(big)/10 {
		t.Fatalf("compression ineffective: %d bytes for %d-byte payload", buf.Len(), len(big))
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Units[0].Trees["sem"] != big && got.Units[1].Trees["sem"] != big {
		t.Fatal("big tree did not round trip")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a gzip stream"))); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func TestVersionCheck(t *testing.T) {
	// v2 added lines_pp/line_files/line_nums (lossless index records for
	// the artifact store); v3 added the incremental-recomputation keys
	// (deps, source hashes, tree fingerprints, options digest). Update
	// version-compat tests when bumping again.
	if FormatVersion != 3 {
		t.Fatal("update version-compat tests when bumping FormatVersion")
	}
}

// TestIncrementalKeysRoundTrip pins the v3 fields: dependency lists,
// source/line hashes, per-metric tree fingerprints, and the options
// digest all survive the encode/decode pair.
func TestIncrementalKeysRoundTrip(t *testing.T) {
	db := sample()
	db.Opts = [2]uint64{7, 9}
	db.Units[0].Deps = []string{"a.cpp", "a.h"}
	db.Units[0].MissingDeps = []string{"gone.h"}
	db.Units[0].SrcHash = [2]uint64{11, 13}
	db.Units[0].LinesHash = [2]uint64{17, 19}
	db.Units[0].LinesPPHash = [2]uint64{23, 29}
	db.Units[0].Fingerprints = map[string]tree.Fingerprint{
		"tsem": {H1: 31, H2: 37, Size: 41},
	}
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Opts != db.Opts {
		t.Fatalf("opts digest: got %v want %v", got.Opts, db.Opts)
	}
	var u *UnitRecord
	for i := range got.Units {
		if got.Units[i].File == db.Units[0].File {
			u = &got.Units[i]
		}
	}
	if u == nil {
		t.Fatal("unit missing after round trip")
	}
	if !reflect.DeepEqual(u.Deps, db.Units[0].Deps) ||
		!reflect.DeepEqual(u.MissingDeps, db.Units[0].MissingDeps) {
		t.Fatalf("deps round trip: %+v", u)
	}
	if u.SrcHash != db.Units[0].SrcHash || u.LinesHash != db.Units[0].LinesHash ||
		u.LinesPPHash != db.Units[0].LinesPPHash {
		t.Fatalf("hashes round trip: %+v", u)
	}
	if fp := u.Fingerprints["tsem"]; fp != (tree.Fingerprint{H1: 31, H2: 37, Size: 41}) {
		t.Fatalf("fingerprint round trip: %+v", fp)
	}
}

// TestMsgpackHalfRoundTrips pins the un-gzipped encode/decode pair the
// artifact store embeds in its record envelope.
func TestMsgpackHalfRoundTrips(t *testing.T) {
	db := sample()
	var buf bytes.Buffer
	if err := db.EncodeMsgpack(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMsgpack(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Codebase != db.Codebase || len(got.Units) != len(db.Units) {
		t.Fatalf("msgpack half round trip: %+v", got)
	}
}
