package interp

import (
	"reflect"
	"testing"

	"silvervale/internal/minic"
	"silvervale/internal/obs"
)

const profProg = `
double saxpy(double a, double* x, double* y, int n) {
	double sum = 0.0;
	for (int i = 0; i < n; i++) {
		y[i] = a * x[i] + y[i];
		sum += y[i];
	}
	return sum;
}

int main() {
	int n = 16;
	double* x = new double[n];
	double* y = new double[n];
	for (int i = 0; i < n; i++) {
		x[i] = 1.0;
		y[i] = 2.0;
	}
	double s = saxpy(3.0, x, y, n);
	if (s != 80.0) { return 1; }
	return 0;
}
`

func TestProfileCounts(t *testing.T) {
	res := run(t, profProg, Options{Profile: true})
	if res.Exit.AsInt() != 0 {
		t.Fatalf("exit = %v", res.Exit)
	}
	p := res.Profile
	if p == nil {
		t.Fatal("Profile nil with Options.Profile")
	}
	k := p.Func("saxpy")
	if k.Calls != 1 {
		t.Fatalf("saxpy calls = %d, want 1", k.Calls)
	}
	if k.LoopTrips != 16 {
		t.Fatalf("saxpy loop trips = %d, want 16", k.LoopTrips)
	}
	// per iteration: reads x[i], y[i] (rhs), y[i] (sum +=), write y[i] → 4
	// accesses × 8 bytes × 16 iters = 512
	if k.MemBytes != 4*ElemBytes*16 {
		t.Fatalf("saxpy mem bytes = %d, want %d", k.MemBytes, 4*ElemBytes*16)
	}
	// per iteration: a*x[i], +y[i], sum+=y[i] → 3 flops × 16 iters = 48
	if k.Flops != 3*16 {
		t.Fatalf("saxpy flops = %d, want %d", k.Flops, 3*16)
	}
	if k.Stmts == 0 {
		t.Fatal("saxpy stmts = 0")
	}
	m := p.Func("main")
	// main writes x[i], y[i] 16 times each = 256 bytes; no float reads
	// besides the comparison (comparisons are not flops)
	if m.MemBytes != 2*ElemBytes*16 {
		t.Fatalf("main mem bytes = %d, want %d", m.MemBytes, 2*ElemBytes*16)
	}
	if m.LoopTrips != 16 {
		t.Fatalf("main loop trips = %d, want 16", m.LoopTrips)
	}
	var sum CostVector
	for _, name := range p.Names() {
		sum.Add(p.Func(name))
	}
	if sum != p.Total {
		t.Fatalf("Total %+v != sum of funcs %+v", p.Total, sum)
	}
}

func TestProfileOffByDefault(t *testing.T) {
	res := run(t, profProg, Options{})
	if res.Profile != nil {
		t.Fatalf("Profile = %+v without Options.Profile, want nil", res.Profile)
	}
}

func TestProfileDeterministic(t *testing.T) {
	a := run(t, profProg, Options{Profile: true}).Profile
	b := run(t, profProg, Options{Profile: true}).Profile
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("profiles differ across identical runs:\n%+v\n%+v", a, b)
	}
}

// TestProfileCoverageSamePass asserts profiling does not perturb the
// coverage mask or the step count: one execution yields both artifacts.
func TestProfileCoverageSamePass(t *testing.T) {
	plain := run(t, profProg, Options{})
	prof := run(t, profProg, Options{Profile: true})
	if plain.Steps != prof.Steps {
		t.Fatalf("steps differ: plain %d, profiled %d", plain.Steps, prof.Steps)
	}
	if !reflect.DeepEqual(plain.Coverage, prof.Coverage) {
		t.Fatal("coverage masks differ between plain and profiled runs")
	}
	if plain.Exit != prof.Exit {
		t.Fatalf("exit differs: %v vs %v", plain.Exit, prof.Exit)
	}
}

func TestLenientSubscript(t *testing.T) {
	src := `
int main() {
	double v = 1.5;
	double r = v[3];
	double* a = new double[4];
	a[99] = 2.0;
	a[0] = 3.0;
	return 7;
}
`
	unit, err := minic.ParseUnit(src, "prog.c")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Run(unit, Options{}); err == nil {
		t.Fatal("strict run succeeded, want subscript error")
	}
	res, err := Run(unit, Options{Lenient: true, Profile: true})
	if err != nil {
		t.Fatalf("lenient run: %v", err)
	}
	if res.Exit.AsInt() != 7 {
		t.Fatalf("exit = %v, want 7", res.Exit)
	}
	// only the one real access (a[0] write) counts as memory traffic
	if res.Profile.Total.MemBytes != ElemBytes {
		t.Fatalf("mem bytes = %d, want %d", res.Profile.Total.MemBytes, ElemBytes)
	}
}

// TestLenientStillAbortsOnStepLimit: leniency only covers subscript
// faults — resource limits must still stop execution.
func TestLenientStillAbortsOnStepLimit(t *testing.T) {
	src := `
int main() {
	while (1) { int x = 1; }
	return 0;
}
`
	unit, err := minic.ParseUnit(src, "prog.c")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(unit, Options{Lenient: true, MaxSteps: 1000})
	if err == nil {
		t.Fatal("lenient run ignored step limit")
	}
	if res == nil || res.Steps == 0 {
		t.Fatal("partial result missing after step-limit abort")
	}
}

// TestPartialResultOnError: Run returns accumulated coverage/profile
// alongside the error so profiled sweeps keep partial measurements.
func TestPartialResultOnError(t *testing.T) {
	src := `
int main() {
	double* a = new double[4];
	a[0] = 1.0;
	a[9] = 2.0;
	return 0;
}
`
	unit, err := minic.ParseUnit(src, "prog.c")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(unit, Options{Profile: true})
	if err == nil {
		t.Fatal("strict run succeeded, want index error")
	}
	if res == nil {
		t.Fatal("nil result on error, want partial result")
	}
	if res.Profile == nil || res.Profile.Total.MemBytes != ElemBytes {
		t.Fatalf("partial profile = %+v, want the pre-fault a[0] write", res.Profile)
	}
}

func TestProfileObsEmission(t *testing.T) {
	rec := obs.NewRecorder()
	root := rec.Start("test.root")
	unit, err := minic.ParseUnit(profProg, "prog.c")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(unit, Options{Profile: true, Span: root})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	root.End()
	if got := rec.Counter("interp.runs").Value(); got != 1 {
		t.Fatalf("interp.runs = %d, want 1", got)
	}
	want := map[string]int64{
		"interp.stmts":      res.Profile.Total.Stmts,
		"interp.loop_trips": res.Profile.Total.LoopTrips,
		"interp.mem_bytes":  res.Profile.Total.MemBytes,
		"interp.flops":      res.Profile.Total.Flops,
		"interp.calls":      res.Profile.Total.Calls,
	}
	for name, w := range want {
		if w == 0 {
			t.Fatalf("profile total for %s is zero — weak test program", name)
		}
		if got := rec.Counter(name).Value(); got != w {
			t.Fatalf("%s = %d, want %d", name, got, w)
		}
	}
	kernels := map[string]bool{}
	for _, s := range rec.Spans() {
		if s.Name != "interp.kernel" {
			continue
		}
		for _, a := range s.Args {
			if a.Key == "fn" {
				kernels[a.Value] = true
			}
		}
	}
	if !kernels["saxpy"] || !kernels["main"] {
		t.Fatalf("interp.kernel spans missing functions: %v", kernels)
	}
}

// TestNilProfilerSafe: every profiler method must no-op on the nil
// receiver (the counters-off hot path is nothing but these calls).
func TestNilProfilerSafe(t *testing.T) {
	var p *profiler
	p.stmt()
	p.trip()
	p.mem(8)
	p.flop(2)
	p.enter("f")
	p.leave()
	if got := p.profile(); got != nil {
		t.Fatalf("nil profiler profile() = %+v, want nil", got)
	}
	var prof *Profile
	if prof.Names() != nil || !prof.Func("x").IsZero() {
		t.Fatal("nil Profile accessors not nil-safe")
	}
}
