// Package interp is a tree-walking interpreter for the MiniC AST. It fills
// the role of "running the application with a reduced problem set" in the
// coverage workflow (Section V.C): serial mini-app ports are executed, each
// executed source line is recorded, and the resulting line mask feeds the
// +coverage variants of every metric. It also provides the built-in
// verification step the mini-apps carry ("each mini-app contains built-in
// verification for correctness").
//
// The interpreter covers the serial dialect the corpus generates: scalar
// int/double/bool arithmetic, fixed and heap arrays, functions, control
// flow, and a small math/builtin surface (sqrt, fabs, printf, ...).
package interp

import (
	"fmt"
	"strconv"
	"strings"

	"silvervale/internal/minic"
	"silvervale/internal/obs"
	"silvervale/internal/srcloc"
)

// Value is a runtime value.
type Value struct {
	Kind  ValKind
	I     int64
	F     float64
	B     bool
	S     string
	Arr   *Array
	Undef bool
}

// ValKind discriminates runtime values.
type ValKind int

// Value kinds.
const (
	ValUndef ValKind = iota
	ValInt
	ValFloat
	ValBool
	ValString
	ValArray
)

// Array is a heap array with reference semantics.
type Array struct {
	Data []float64
}

// IntV makes an integer value.
func IntV(i int64) Value { return Value{Kind: ValInt, I: i} }

// FloatV makes a float value.
func FloatV(f float64) Value { return Value{Kind: ValFloat, F: f} }

// BoolV makes a bool value.
func BoolV(b bool) Value { return Value{Kind: ValBool, B: b} }

// AsFloat coerces a numeric value to float64.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case ValInt:
		return float64(v.I)
	case ValFloat:
		return v.F
	case ValBool:
		if v.B {
			return 1
		}
		return 0
	}
	return 0
}

// AsInt coerces a numeric value to int64.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case ValInt:
		return v.I
	case ValFloat:
		return int64(v.F)
	case ValBool:
		if v.B {
			return 1
		}
		return 0
	}
	return 0
}

// Truthy reports the boolean interpretation.
func (v Value) Truthy() bool {
	switch v.Kind {
	case ValBool:
		return v.B
	case ValInt:
		return v.I != 0
	case ValFloat:
		return v.F != 0
	case ValArray:
		return v.Arr != nil
	}
	return false
}

// Result is the outcome of a program run.
type Result struct {
	Exit     Value
	Coverage *srcloc.LineMask
	Output   []string // lines printed via printf/print
	Steps    int
	// Profile is the per-function cost profile (nil unless Options.Profile).
	Profile *Profile
}

// Options configures execution.
type Options struct {
	// MaxSteps bounds total statement/expression evaluations (default 20M).
	MaxSteps int
	// Args are optional scalar arguments passed to the entry function.
	Args []Value
	// Entry is the function to run (default "main").
	Entry string
	// Profile enables per-function cost counters (Result.Profile). Off by
	// default; the disabled path costs one nil-pointer check per event.
	Profile bool
	// Lenient downgrades subscript faults (non-array base, index out of
	// range) to undef reads / dropped writes instead of aborting, so ports
	// whose device abstractions the serial dialect cannot model (e.g. SYCL
	// accessors) still complete deterministically. Step-limit and other
	// errors still abort.
	Lenient bool
	// Span, when non-nil, receives per-kernel child spans plus interp.*
	// counters on its Recorder at the end of the run (DESIGN.md §5, §11).
	Span *obs.Span
}

// Run executes a translation unit and returns the exit value, coverage and
// captured output. On error the returned Result is still populated with
// whatever coverage, output and profile accumulated up to the fault, so
// profiled runs keep their partial measurements.
func Run(unit *minic.ASTNode, opts Options) (*Result, error) {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 20_000_000
	}
	if opts.Entry == "" {
		opts.Entry = "main"
	}
	in := &interp{
		funcs:    unit.FindFunctions(),
		maxSteps: opts.MaxSteps,
		cov:      srcloc.NewLineMask(),
		globals:  map[string]*Value{},
		lenient:  opts.Lenient,
	}
	if opts.Profile {
		in.prof = newProfiler()
	}
	var exit Value
	var runErr error
	// evaluate global variable initialisers
	for _, d := range unit.Children {
		if d.Kind == minic.KDeclStmt {
			if runErr = in.execGlobalDecl(d); runErr != nil {
				break
			}
		}
	}
	if runErr == nil {
		if entry, ok := in.funcs[opts.Entry]; ok {
			exit, runErr = in.callFunction(entry, opts.Args)
		} else {
			runErr = fmt.Errorf("interp: no entry function %q", opts.Entry)
		}
	}
	res := &Result{
		Exit:     exit,
		Coverage: in.cov,
		Output:   in.output,
		Steps:    in.steps,
		Profile:  in.prof.profile(),
	}
	emitObs(opts.Span, res)
	return res, runErr
}

// emitObs publishes a finished run to an observability span: one
// "interp.kernel" child span per profiled function (cost vector carried as
// span args, deterministic order) and the run-level interp.* counters on
// the span's recorder (stable names, DESIGN.md §5).
func emitObs(span *obs.Span, res *Result) {
	if span == nil {
		return
	}
	p := res.Profile
	for _, name := range p.Names() {
		cv := p.Func(name)
		ks := span.Start("interp.kernel")
		ks.Arg("fn", name)
		ks.Arg("stmts", strconv.FormatInt(cv.Stmts, 10))
		ks.Arg("loop_trips", strconv.FormatInt(cv.LoopTrips, 10))
		ks.Arg("mem_bytes", strconv.FormatInt(cv.MemBytes, 10))
		ks.Arg("flops", strconv.FormatInt(cv.Flops, 10))
		ks.Arg("calls", strconv.FormatInt(cv.Calls, 10))
		ks.End()
	}
	rec := span.Recorder()
	rec.Counter("interp.runs").Add(1)
	rec.Counter("interp.steps").Add(int64(res.Steps))
	if p != nil {
		rec.Counter("interp.stmts").Add(p.Total.Stmts)
		rec.Counter("interp.loop_trips").Add(p.Total.LoopTrips)
		rec.Counter("interp.mem_bytes").Add(p.Total.MemBytes)
		rec.Counter("interp.flops").Add(p.Total.Flops)
		rec.Counter("interp.calls").Add(p.Total.Calls)
	}
}

type interp struct {
	funcs    map[string]*minic.ASTNode
	globals  map[string]*Value
	scopes   []map[string]*Value
	cov      *srcloc.LineMask
	steps    int
	maxSteps int
	output   []string
	prof     *profiler
	lenient  bool
}

type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

func (in *interp) step(pos srcloc.Pos) error {
	in.steps++
	if in.steps > in.maxSteps {
		return fmt.Errorf("interp: step limit exceeded at %s", pos)
	}
	if pos.IsValid() {
		in.cov.Set(pos.File, pos.Line, true)
	}
	return nil
}

func (in *interp) pushScope() { in.scopes = append(in.scopes, map[string]*Value{}) }
func (in *interp) popScope()  { in.scopes = in.scopes[:len(in.scopes)-1] }

func (in *interp) define(name string, v Value) *Value {
	cell := &v
	in.scopes[len(in.scopes)-1][name] = cell
	return cell
}

func (in *interp) lookup(name string) (*Value, bool) {
	for i := len(in.scopes) - 1; i >= 0; i-- {
		if c, ok := in.scopes[i][name]; ok {
			return c, true
		}
	}
	c, ok := in.globals[name]
	return c, ok
}

func (in *interp) execGlobalDecl(d *minic.ASTNode) error {
	in.scopes = []map[string]*Value{{}}
	defer func() { in.scopes = nil }()
	for _, v := range d.Children {
		if v.Kind != minic.KVarDecl {
			continue
		}
		val, err := in.evalVarInit(v)
		if err != nil {
			return err
		}
		in.globals[v.Name] = &val
	}
	return nil
}

func (in *interp) callFunction(fn *minic.ASTNode, args []Value) (Value, error) {
	var params []*minic.ASTNode
	var body *minic.ASTNode
	for _, c := range fn.Children {
		switch c.Kind {
		case minic.KParmVarDecl:
			params = append(params, c)
		case minic.KCompoundStmt:
			body = c
		}
	}
	in.prof.enter(fn.Name)
	defer in.prof.leave()
	in.pushScope()
	defer in.popScope()
	for i, p := range params {
		if i < len(args) {
			in.define(p.Name, args[i])
		} else {
			in.define(p.Name, Value{Undef: true})
		}
	}
	c, ret, err := in.execStmt(body)
	if err != nil {
		return Value{}, err
	}
	if c == ctrlReturn {
		return ret, nil
	}
	return Value{}, nil
}

// --- statements -------------------------------------------------------------

func (in *interp) execStmt(s *minic.ASTNode) (ctrl, Value, error) {
	if s == nil {
		return ctrlNone, Value{}, nil
	}
	if err := in.step(s.Pos); err != nil {
		return ctrlNone, Value{}, err
	}
	if s.Kind != minic.KCompoundStmt && s.Kind != minic.KNullStmt {
		in.prof.stmt()
	}
	switch s.Kind {
	case minic.KCompoundStmt:
		in.pushScope()
		defer in.popScope()
		for _, c := range s.Children {
			ct, v, err := in.execStmt(c)
			if err != nil || ct != ctrlNone {
				return ct, v, err
			}
		}
		return ctrlNone, Value{}, nil
	case minic.KDeclStmt:
		for _, v := range s.Children {
			if v.Kind != minic.KVarDecl {
				continue
			}
			val, err := in.evalVarInit(v)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			in.define(v.Name, val)
		}
		return ctrlNone, Value{}, nil
	case minic.KExprStmt:
		for _, c := range s.Children {
			if _, err := in.evalExpr(c); err != nil {
				return ctrlNone, Value{}, err
			}
		}
		return ctrlNone, Value{}, nil
	case minic.KReturnStmt:
		if len(s.Children) > 0 {
			v, err := in.evalExpr(s.Children[0])
			return ctrlReturn, v, err
		}
		return ctrlReturn, Value{}, nil
	case minic.KBreakStmt:
		return ctrlBreak, Value{}, nil
	case minic.KContinueStmt:
		return ctrlContinue, Value{}, nil
	case minic.KNullStmt:
		return ctrlNone, Value{}, nil
	case minic.KIfStmt:
		cond, err := in.evalExpr(s.Children[0])
		if err != nil {
			return ctrlNone, Value{}, err
		}
		if cond.Truthy() {
			return in.execStmt(s.Children[1])
		}
		if len(s.Children) > 2 {
			return in.execStmt(s.Children[2])
		}
		return ctrlNone, Value{}, nil
	case minic.KForStmt:
		return in.execFor(s)
	case minic.KWhileStmt:
		for {
			cond, err := in.evalExpr(s.Children[0])
			if err != nil {
				return ctrlNone, Value{}, err
			}
			if !cond.Truthy() {
				return ctrlNone, Value{}, nil
			}
			in.prof.trip()
			ct, v, err := in.execStmt(s.Children[1])
			if err != nil {
				return ctrlNone, Value{}, err
			}
			switch ct {
			case ctrlBreak:
				return ctrlNone, Value{}, nil
			case ctrlReturn:
				return ct, v, nil
			}
		}
	case minic.KDoStmt:
		for {
			in.prof.trip()
			ct, v, err := in.execStmt(s.Children[0])
			if err != nil {
				return ctrlNone, Value{}, err
			}
			switch ct {
			case ctrlBreak:
				return ctrlNone, Value{}, nil
			case ctrlReturn:
				return ct, v, nil
			}
			cond, err := in.evalExpr(s.Children[1])
			if err != nil {
				return ctrlNone, Value{}, err
			}
			if !cond.Truthy() {
				return ctrlNone, Value{}, nil
			}
		}
	case minic.KOMPDirective:
		// serial semantics of the associated statement
		for _, c := range s.Children {
			if c.Kind != minic.KOMPClause && c.Kind != "OMPCapturedRegion" {
				return in.execStmt(c)
			}
		}
		return ctrlNone, Value{}, nil
	default:
		if _, err := in.evalExpr(s); err != nil {
			return ctrlNone, Value{}, err
		}
		return ctrlNone, Value{}, nil
	}
}

func (in *interp) execFor(s *minic.ASTNode) (ctrl, Value, error) {
	in.pushScope()
	defer in.popScope()
	if ct, v, err := in.execStmt(s.Children[0]); err != nil || ct == ctrlReturn {
		return ct, v, err
	}
	for {
		if s.Children[1].Kind != minic.KNullStmt {
			cond, err := in.evalExpr(s.Children[1])
			if err != nil {
				return ctrlNone, Value{}, err
			}
			if !cond.Truthy() {
				return ctrlNone, Value{}, nil
			}
		}
		in.prof.trip()
		ct, v, err := in.execStmt(s.Children[3])
		if err != nil {
			return ctrlNone, Value{}, err
		}
		switch ct {
		case ctrlBreak:
			return ctrlNone, Value{}, nil
		case ctrlReturn:
			return ct, v, nil
		}
		if s.Children[2].Kind != minic.KNullStmt {
			if _, err := in.evalExpr(s.Children[2]); err != nil {
				return ctrlNone, Value{}, err
			}
		}
	}
}

// evalVarInit computes the initial value of a VarDecl: scalars from their
// initialiser, arrays (dimension expressions) as zeroed storage.
func (in *interp) evalVarInit(v *minic.ASTNode) (Value, error) {
	var dims []int64
	var init *minic.ASTNode
	isFloat := false
	for _, c := range v.Children {
		switch {
		case c.Kind == minic.KBuiltinType:
			if c.Extra == "double" || c.Extra == "float" || strings.HasPrefix(c.Extra, "real") {
				isFloat = true
			}
		case c.Kind == minic.KPointerType || c.Kind == minic.KConstQual ||
			c.Kind == minic.KReferenceType || c.Kind == minic.KRecordType ||
			c.Kind == minic.KTemplateSpecType || c.Kind == minic.KAutoType ||
			c.Kind == minic.KAttr:
			c.Walk(func(t *minic.ASTNode) bool {
				if t.Kind == minic.KBuiltinType && (t.Extra == "double" || t.Extra == "float") {
					isFloat = true
				}
				return true
			})
		case isExprNode(c):
			// Array declarators (Extra == "array") carry their dimensions
			// as expression children; otherwise the expression child is
			// the initialiser.
			if v.Extra == "array" && c.Kind != minic.KInitListExpr {
				dv, err := in.evalExpr(c)
				if err != nil {
					return Value{}, err
				}
				dims = append(dims, dv.AsInt())
			} else {
				init = c
			}
		}
	}
	if len(dims) > 0 {
		n := int64(1)
		for _, d := range dims {
			n *= d
		}
		if n < 0 || n > 1<<26 {
			return Value{}, fmt.Errorf("interp: array dimension %d out of range at %s", n, v.Pos)
		}
		arr := &Array{Data: make([]float64, n)}
		if init != nil && init.Kind == minic.KInitListExpr {
			for i, e := range init.Children {
				if int64(i) >= n {
					break
				}
				ev, err := in.evalExpr(e)
				if err != nil {
					return Value{}, err
				}
				arr.Data[i] = ev.AsFloat()
			}
		}
		return Value{Kind: ValArray, Arr: arr}, nil
	}
	if init != nil {
		if init.Kind == minic.KInitListExpr {
			arr := &Array{}
			for _, e := range init.Children {
				ev, err := in.evalExpr(e)
				if err != nil {
					return Value{}, err
				}
				arr.Data = append(arr.Data, ev.AsFloat())
			}
			return Value{Kind: ValArray, Arr: arr}, nil
		}
		val, err := in.evalExpr(init)
		if err != nil {
			return Value{}, err
		}
		if isFloat && val.Kind == ValInt {
			return FloatV(float64(val.I)), nil
		}
		return val, nil
	}
	if isFloat {
		return FloatV(0), nil
	}
	return IntV(0), nil
}

func isExprNode(n *minic.ASTNode) bool {
	switch n.Kind {
	case minic.KBinaryOperator, minic.KUnaryOperator, minic.KConditionalOp,
		minic.KCallExpr, minic.KDeclRefExpr, minic.KMemberExpr,
		minic.KArraySubscript, minic.KIntegerLiteral, minic.KFloatingLiteral,
		minic.KStringLiteral, minic.KCharLiteral, minic.KBoolLiteral,
		minic.KNullptrLiteral, minic.KLambdaExpr, minic.KInitListExpr,
		minic.KNewExpr, minic.KSizeofExpr, minic.KParenExpr:
		return true
	}
	return false
}
