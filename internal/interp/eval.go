package interp

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"silvervale/internal/minic"
)

func (in *interp) evalExpr(e *minic.ASTNode) (Value, error) {
	if e == nil {
		return Value{}, nil
	}
	if err := in.step(e.Pos); err != nil {
		return Value{}, err
	}
	switch e.Kind {
	case minic.KIntegerLiteral:
		i, err := strconv.ParseInt(strings.TrimRight(e.Extra, "uUlL"), 0, 64)
		if err != nil {
			return Value{}, fmt.Errorf("interp: bad integer %q at %s", e.Extra, e.Pos)
		}
		return IntV(i), nil
	case minic.KFloatingLiteral:
		f, err := strconv.ParseFloat(strings.TrimRight(e.Extra, "fF"), 64)
		if err != nil {
			return Value{}, fmt.Errorf("interp: bad float %q at %s", e.Extra, e.Pos)
		}
		return FloatV(f), nil
	case minic.KBoolLiteral:
		return BoolV(e.Extra == "true"), nil
	case minic.KStringLiteral:
		return Value{Kind: ValString, S: strings.Trim(e.Name, "\"")}, nil
	case minic.KCharLiteral:
		return IntV(0), nil
	case minic.KNullptrLiteral:
		return Value{}, nil
	case minic.KParenExpr:
		return in.evalExpr(e.Children[0])
	case minic.KDeclRefExpr:
		if cell, ok := in.lookup(e.Name); ok {
			return *cell, nil
		}
		return Value{Undef: true}, nil
	case minic.KBinaryOperator:
		return in.evalBinary(e)
	case minic.KUnaryOperator:
		return in.evalUnary(e)
	case minic.KConditionalOp:
		cond, err := in.evalExpr(e.Children[0])
		if err != nil {
			return Value{}, err
		}
		if cond.Truthy() {
			return in.evalExpr(e.Children[1])
		}
		return in.evalExpr(e.Children[2])
	case minic.KArraySubscript:
		arr, idx, err := in.evalSubscript(e)
		if err != nil {
			return Value{}, err
		}
		if arr == nil { // lenient skip: unmodelable access reads undef
			return Value{Undef: true}, nil
		}
		in.prof.mem(ElemBytes)
		return FloatV(arr.Data[idx]), nil
	case minic.KCallExpr:
		return in.evalCall(e)
	case minic.KSizeofExpr:
		return IntV(8), nil
	case minic.KNewExpr:
		n := int64(1)
		for _, c := range e.Children {
			if isExprNode(c) {
				v, err := in.evalExpr(c)
				if err != nil {
					return Value{}, err
				}
				n = v.AsInt()
			}
		}
		if n < 0 || n > 1<<26 {
			return Value{}, fmt.Errorf("interp: new[] size %d out of range at %s", n, e.Pos)
		}
		return Value{Kind: ValArray, Arr: &Array{Data: make([]float64, n)}}, nil
	case minic.KDeleteExpr:
		return Value{}, nil
	case minic.KMemberExpr:
		// no struct layout in the serial dialect; member reads are undef
		return Value{Undef: true}, nil
	case minic.KInitListExpr:
		arr := &Array{}
		for _, c := range e.Children {
			v, err := in.evalExpr(c)
			if err != nil {
				return Value{}, err
			}
			arr.Data = append(arr.Data, v.AsFloat())
		}
		return Value{Kind: ValArray, Arr: arr}, nil
	default:
		return Value{Undef: true}, nil
	}
}

// evalSubscript resolves an array access. In lenient mode, subscript
// faults (non-array base, index out of range) return a nil array with a
// nil error — callers treat that as an undef read / dropped write — while
// genuine evaluation errors (step limit, ...) still propagate.
func (in *interp) evalSubscript(e *minic.ASTNode) (*Array, int64, error) {
	base, err := in.evalExpr(e.Children[0])
	if err != nil {
		return nil, 0, err
	}
	if base.Kind != ValArray || base.Arr == nil {
		if in.lenient {
			// still evaluate the index for its side effects (i++ patterns)
			if _, err := in.evalExpr(e.Children[1]); err != nil {
				return nil, 0, err
			}
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("interp: subscript of non-array at %s", e.Pos)
	}
	idx, err := in.evalExpr(e.Children[1])
	if err != nil {
		return nil, 0, err
	}
	i := idx.AsInt()
	if i < 0 || i >= int64(len(base.Arr.Data)) {
		if in.lenient {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("interp: index %d out of range [0,%d) at %s",
			i, len(base.Arr.Data), e.Pos)
	}
	return base.Arr, i, nil
}

// assignTo stores a value through an lvalue expression.
func (in *interp) assignTo(lhs *minic.ASTNode, v Value) error {
	switch lhs.Kind {
	case minic.KDeclRefExpr:
		if cell, ok := in.lookup(lhs.Name); ok {
			if cell.Kind == ValFloat && v.Kind == ValInt {
				v = FloatV(float64(v.I))
			}
			*cell = v
			return nil
		}
		// implicit definition (assignment to undeclared: tolerated)
		in.define(lhs.Name, v)
		return nil
	case minic.KArraySubscript:
		arr, idx, err := in.evalSubscript(lhs)
		if err != nil {
			return err
		}
		if arr == nil { // lenient skip: unmodelable access drops the write
			return nil
		}
		in.prof.mem(ElemBytes)
		arr.Data[idx] = v.AsFloat()
		return nil
	case minic.KParenExpr:
		return in.assignTo(lhs.Children[0], v)
	case minic.KUnaryOperator:
		if lhs.Extra == "*" {
			return in.assignTo(lhs.Children[0], v)
		}
	case minic.KMemberExpr:
		return nil // struct members untracked
	}
	return fmt.Errorf("interp: cannot assign to %s at %s", lhs.Kind, lhs.Pos)
}

func (in *interp) evalBinary(e *minic.ASTNode) (Value, error) {
	op := e.Extra
	if op == "=" {
		v, err := in.evalExpr(e.Children[1])
		if err != nil {
			return Value{}, err
		}
		return v, in.assignTo(e.Children[0], v)
	}
	if base, ok := strings.CutSuffix(op, "="); ok && len(op) >= 2 && op != "==" && op != "!=" && op != "<=" && op != ">=" {
		cur, err := in.evalExpr(e.Children[0])
		if err != nil {
			return Value{}, err
		}
		rhs, err := in.evalExpr(e.Children[1])
		if err != nil {
			return Value{}, err
		}
		v, err := in.arith(base, cur, rhs, e.Pos)
		if err != nil {
			return Value{}, err
		}
		return v, in.assignTo(e.Children[0], v)
	}
	// short-circuit logical operators
	if op == "&&" || op == "||" {
		a, err := in.evalExpr(e.Children[0])
		if err != nil {
			return Value{}, err
		}
		if op == "&&" && !a.Truthy() {
			return BoolV(false), nil
		}
		if op == "||" && a.Truthy() {
			return BoolV(true), nil
		}
		b, err := in.evalExpr(e.Children[1])
		if err != nil {
			return Value{}, err
		}
		return BoolV(b.Truthy()), nil
	}
	a, err := in.evalExpr(e.Children[0])
	if err != nil {
		return Value{}, err
	}
	b, err := in.evalExpr(e.Children[1])
	if err != nil {
		return Value{}, err
	}
	return in.arith(op, a, b, e.Pos)
}

func (in *interp) arith(op string, a, b Value, pos interface{ String() string }) (Value, error) {
	bothInt := a.Kind == ValInt && b.Kind == ValInt
	switch op {
	case "+", "-", "*", "/", "%":
		if bothInt {
			switch op {
			case "+":
				return IntV(a.I + b.I), nil
			case "-":
				return IntV(a.I - b.I), nil
			case "*":
				return IntV(a.I * b.I), nil
			case "/":
				if b.I == 0 {
					return Value{}, fmt.Errorf("interp: integer division by zero at %s", pos)
				}
				return IntV(a.I / b.I), nil
			case "%":
				if b.I == 0 {
					return Value{}, fmt.Errorf("interp: modulo by zero at %s", pos)
				}
				return IntV(a.I % b.I), nil
			}
		}
		af, bf := a.AsFloat(), b.AsFloat()
		in.prof.flop(1)
		switch op {
		case "+":
			return FloatV(af + bf), nil
		case "-":
			return FloatV(af - bf), nil
		case "*":
			return FloatV(af * bf), nil
		case "/":
			return FloatV(af / bf), nil
		case "%":
			return FloatV(math.Mod(af, bf)), nil
		}
	case "<", ">", "<=", ">=", "==", "!=":
		af, bf := a.AsFloat(), b.AsFloat()
		switch op {
		case "<":
			return BoolV(af < bf), nil
		case ">":
			return BoolV(af > bf), nil
		case "<=":
			return BoolV(af <= bf), nil
		case ">=":
			return BoolV(af >= bf), nil
		case "==":
			return BoolV(af == bf), nil
		case "!=":
			return BoolV(af != bf), nil
		}
	case "&", "|", "^", "<<", ">>":
		ai, bi := a.AsInt(), b.AsInt()
		switch op {
		case "&":
			return IntV(ai & bi), nil
		case "|":
			return IntV(ai | bi), nil
		case "^":
			return IntV(ai ^ bi), nil
		case "<<":
			if bi < 0 || bi > 63 {
				return Value{}, fmt.Errorf("interp: shift out of range at %s", pos)
			}
			return IntV(ai << uint(bi)), nil
		case ">>":
			if bi < 0 || bi > 63 {
				return Value{}, fmt.Errorf("interp: shift out of range at %s", pos)
			}
			return IntV(ai >> uint(bi)), nil
		}
	}
	return Value{}, fmt.Errorf("interp: unsupported operator %q at %s", op, pos)
}

func (in *interp) evalUnary(e *minic.ASTNode) (Value, error) {
	switch e.Extra {
	case "-":
		v, err := in.evalExpr(e.Children[0])
		if err != nil {
			return Value{}, err
		}
		if v.Kind == ValInt {
			return IntV(-v.I), nil
		}
		in.prof.flop(1)
		return FloatV(-v.AsFloat()), nil
	case "+":
		return in.evalExpr(e.Children[0])
	case "!":
		v, err := in.evalExpr(e.Children[0])
		if err != nil {
			return Value{}, err
		}
		return BoolV(!v.Truthy()), nil
	case "~":
		v, err := in.evalExpr(e.Children[0])
		if err != nil {
			return Value{}, err
		}
		return IntV(^v.AsInt()), nil
	case "++", "post++", "--", "post--":
		cur, err := in.evalExpr(e.Children[0])
		if err != nil {
			return Value{}, err
		}
		delta := int64(1)
		if strings.Contains(e.Extra, "--") {
			delta = -1
		}
		var next Value
		if cur.Kind == ValFloat {
			in.prof.flop(1)
			next = FloatV(cur.AsFloat() + float64(delta))
		} else {
			next = IntV(cur.AsInt() + delta)
		}
		if err := in.assignTo(e.Children[0], next); err != nil {
			return Value{}, err
		}
		if strings.HasPrefix(e.Extra, "post") {
			return cur, nil
		}
		return next, nil
	case "*", "&":
		return in.evalExpr(e.Children[0]) // arrays are reference values
	default:
		return in.evalExpr(e.Children[0])
	}
}

func (in *interp) evalCall(e *minic.ASTNode) (Value, error) {
	if len(e.Children) == 0 {
		return Value{}, nil
	}
	callee := e.Children[0]
	name := ""
	if callee.Kind == minic.KDeclRefExpr {
		name = callee.Name
	}
	var args []Value
	for _, a := range e.Children[1:] {
		v, err := in.evalExpr(a)
		if err != nil {
			return Value{}, err
		}
		args = append(args, v)
	}
	short := name
	if i := strings.LastIndex(short, "::"); i >= 0 {
		short = short[i+2:]
	}
	switch short {
	case "sqrt", "sqrtf":
		in.prof.flop(1)
		return FloatV(math.Sqrt(argF(args, 0))), nil
	case "fabs", "abs", "fabsf":
		in.prof.flop(1)
		return FloatV(math.Abs(argF(args, 0))), nil
	case "exp":
		in.prof.flop(1)
		return FloatV(math.Exp(argF(args, 0))), nil
	case "log":
		in.prof.flop(1)
		return FloatV(math.Log(argF(args, 0))), nil
	case "pow":
		in.prof.flop(1)
		return FloatV(math.Pow(argF(args, 0), argF(args, 1))), nil
	case "sin":
		in.prof.flop(1)
		return FloatV(math.Sin(argF(args, 0))), nil
	case "cos":
		in.prof.flop(1)
		return FloatV(math.Cos(argF(args, 0))), nil
	case "floor":
		in.prof.flop(1)
		return FloatV(math.Floor(argF(args, 0))), nil
	case "min", "fmin":
		in.prof.flop(1)
		return FloatV(math.Min(argF(args, 0), argF(args, 1))), nil
	case "max", "fmax":
		in.prof.flop(1)
		return FloatV(math.Max(argF(args, 0), argF(args, 1))), nil
	case "printf", "print", "puts", "fprintf":
		var parts []string
		for _, a := range args {
			switch a.Kind {
			case ValString:
				parts = append(parts, a.S)
			case ValFloat:
				parts = append(parts, strconv.FormatFloat(a.F, 'g', -1, 64))
			default:
				parts = append(parts, strconv.FormatInt(a.AsInt(), 10))
			}
		}
		in.output = append(in.output, strings.Join(parts, " "))
		return IntV(0), nil
	case "exit":
		return Value{}, fmt.Errorf("interp: program called exit at %s", e.Pos)
	case "malloc":
		n := argI(args, 0) / 8
		if n < 0 || n > 1<<26 {
			return Value{}, fmt.Errorf("interp: malloc size out of range at %s", e.Pos)
		}
		return Value{Kind: ValArray, Arr: &Array{Data: make([]float64, n)}}, nil
	case "free":
		return Value{}, nil
	}
	if fn, ok := in.funcs[short]; ok {
		return in.callFunction(fn, args)
	}
	// unknown library call: undef result, execution continues
	return Value{Undef: true}, nil
}

func argF(args []Value, i int) float64 {
	if i < len(args) {
		return args[i].AsFloat()
	}
	return 0
}

func argI(args []Value, i int) int64 {
	if i < len(args) {
		return args[i].AsInt()
	}
	return 0
}
