package interp

import (
	"testing"

	"silvervale/internal/minic"
)

// benchProg exercises every instrumented site: statements, loop
// back-edges, subscript reads/writes, float arithmetic, math builtins,
// and user-function calls.
const benchProg = `
double stencil(double* a, double* b, int n) {
	double acc = 0.0;
	for (int i = 1; i < n - 1; i++) {
		b[i] = 0.5 * (a[i - 1] + a[i + 1]) - a[i];
		acc += sqrt(fabs(b[i]) + 1.0);
	}
	return acc;
}

int main() {
	int n = 256;
	double* a = new double[n];
	double* b = new double[n];
	for (int i = 0; i < n; i++) { a[i] = 0.001 * i; }
	double acc = 0.0;
	for (int it = 0; it < 50; it++) {
		acc = stencil(a, b, n);
	}
	if (acc < 0.0) { return 1; }
	return 0;
}
`

// BenchmarkInterpInstrumentation pins the cost of the profiling
// substrate, mirroring the PR 2 BenchmarkMatrixObsEnabled pattern:
// "off" is the default path where every instrumented site is a single
// nil-pointer check (must stay within ~2% of the pre-instrumentation
// interpreter; EXPERIMENTS.md §Interp instrumentation overhead), "on"
// is the fully profiled run.
func BenchmarkInterpInstrumentation(b *testing.B) {
	unit, err := minic.ParseUnit(benchProg, "bench.c")
	if err != nil {
		b.Fatalf("parse: %v", err)
	}
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"off", Options{}},
		{"on", Options{Profile: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(unit, mode.opts)
				if err != nil {
					b.Fatalf("run: %v", err)
				}
				if res.Exit.AsInt() != 0 {
					b.Fatalf("exit = %v", res.Exit)
				}
			}
		})
	}
}
