// Cost-profiling substrate: per-function cost counters accumulated during
// the coverage runs the interpreter already performs, so one execution
// yields both the line mask and the cost profile (Perfrewrite-style source
// instrumentation — derive cost functions by counting executed work).
//
// The substrate follows the obs package's one invariant: a nil *profiler
// is the fully disabled profiler. Every recording method no-ops on a nil
// receiver, so the counters-off interpreter path carries exactly one
// pointer check per event and nothing else (BenchmarkInterpInstrumentation
// pins the overhead; DESIGN.md §11).
package interp

import "sort"

// ElemBytes is the simulated size of one array element. The interpreter's
// arrays are float64 storage, so every element read or write moves eight
// bytes of simulated memory traffic.
const ElemBytes = 8

// CostVector is the measured cost of one kernel (function) over a run:
// the quantities a roofline model consumes (MemBytes, Flops) plus the
// work-shape counters (statements, loop back-edges, calls) the measured-Φ
// path uses to price model boilerplate. All counts are exact and
// deterministic: the interpreter is sequential and the corpus inputs are
// fixed, so repeated runs produce bit-identical vectors.
type CostVector struct {
	// Stmts counts executed statement nodes (compound/null statements and
	// expression re-evaluations excluded).
	Stmts int64 `json:"stmts"`
	// LoopTrips counts loop back-edges: one per executed iteration of a
	// for/while/do body.
	LoopTrips int64 `json:"loop_trips"`
	// MemBytes is simulated memory traffic: ElemBytes per array element
	// read or written.
	MemBytes int64 `json:"mem_bytes"`
	// Flops counts floating-point operations: binary float arithmetic,
	// float negation, and math builtins (sqrt, exp, ...).
	Flops int64 `json:"flops"`
	// Calls counts invocations of this function.
	Calls int64 `json:"calls"`
}

// Add accumulates another vector into this one.
func (c *CostVector) Add(o CostVector) {
	c.Stmts += o.Stmts
	c.LoopTrips += o.LoopTrips
	c.MemBytes += o.MemBytes
	c.Flops += o.Flops
	c.Calls += o.Calls
}

// IsZero reports whether the vector recorded no work at all.
func (c CostVector) IsZero() bool {
	return c.Stmts == 0 && c.LoopTrips == 0 && c.MemBytes == 0 && c.Flops == 0 && c.Calls == 0
}

// Profile is the cost profile of one run: a CostVector per executed
// function (keyed by function name; global initialisers accumulate under
// GlobalScope) plus the run total.
type Profile struct {
	Funcs map[string]CostVector
	Total CostVector
}

// GlobalScope is the Profile.Funcs key that collects work performed
// outside any function (global variable initialisers).
const GlobalScope = "(globals)"

// Names returns the profiled function names, sorted.
func (p *Profile) Names() []string {
	if p == nil {
		return nil
	}
	out := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Func returns the cost vector of one function (zero when absent).
func (p *Profile) Func(name string) CostVector {
	if p == nil {
		return CostVector{}
	}
	return p.Funcs[name]
}

// profiler accumulates per-function cost vectors during execution. A nil
// *profiler is the disabled profiler: every method no-ops after one
// pointer check, mirroring obs.Recorder's nil-receiver contract, so the
// instrumented interpreter never branches on an "enabled" flag.
type profiler struct {
	cur   *CostVector
	stack []*CostVector
	funcs map[string]*CostVector
}

func newProfiler() *profiler {
	p := &profiler{funcs: map[string]*CostVector{}}
	p.cur = p.vec(GlobalScope)
	return p
}

func (p *profiler) vec(name string) *CostVector {
	v, ok := p.funcs[name]
	if !ok {
		v = &CostVector{}
		p.funcs[name] = v
	}
	return v
}

// enter pushes the attribution scope of a function invocation and counts
// the call.
func (p *profiler) enter(name string) {
	if p == nil {
		return
	}
	p.stack = append(p.stack, p.cur)
	p.cur = p.vec(name)
	p.cur.Calls++
}

// leave pops back to the caller's scope.
func (p *profiler) leave() {
	if p == nil {
		return
	}
	p.cur = p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
}

func (p *profiler) stmt() {
	if p == nil {
		return
	}
	p.cur.Stmts++
}

func (p *profiler) trip() {
	if p == nil {
		return
	}
	p.cur.LoopTrips++
}

func (p *profiler) mem(bytes int64) {
	if p == nil {
		return
	}
	p.cur.MemBytes += bytes
}

func (p *profiler) flop(n int64) {
	if p == nil {
		return
	}
	p.cur.Flops += n
}

// profile snapshots the accumulated vectors into an exported Profile.
func (p *profiler) profile() *Profile {
	if p == nil {
		return nil
	}
	out := &Profile{Funcs: make(map[string]CostVector, len(p.funcs))}
	for name, v := range p.funcs {
		if v.IsZero() {
			continue
		}
		out.Funcs[name] = *v
		out.Total.Add(*v)
	}
	return out
}
