package interp

import (
	"math"
	"strings"
	"testing"

	"silvervale/internal/coverage"
	"silvervale/internal/minic"
)

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	unit, err := minic.ParseUnit(src, "prog.c")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(unit, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
int main() {
	int a = 6;
	int b = 7;
	return a * b;
}
`, Options{})
	if res.Exit.AsInt() != 42 {
		t.Fatalf("exit = %v", res.Exit)
	}
}

func TestFloatArithmetic(t *testing.T) {
	res := run(t, `
double main() {
	double x = 1.5;
	double y = 2.0;
	return x * y + 0.5;
}
`, Options{})
	if res.Exit.AsFloat() != 3.5 {
		t.Fatalf("exit = %v", res.Exit.AsFloat())
	}
}

func TestControlFlow(t *testing.T) {
	res := run(t, `
int main() {
	int sum = 0;
	for (int i = 1; i <= 10; i++) {
		if (i % 2 == 0) { continue; }
		sum += i;
	}
	int j = 0;
	while (j < 3) { j++; }
	do { j++; } while (j < 5);
	return sum + j;
}
`, Options{})
	// odd sum 1..10 = 25, j = 5
	if res.Exit.AsInt() != 30 {
		t.Fatalf("exit = %v, want 30", res.Exit.AsInt())
	}
}

func TestBreak(t *testing.T) {
	res := run(t, `
int main() {
	int i = 0;
	for (;;) {
		i++;
		if (i == 7) { break; }
	}
	return i;
}
`, Options{})
	if res.Exit.AsInt() != 7 {
		t.Fatalf("exit = %v", res.Exit.AsInt())
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	res := run(t, `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10); }
`, Options{})
	if res.Exit.AsInt() != 55 {
		t.Fatalf("fib(10) = %v", res.Exit.AsInt())
	}
}

func TestStackArraysAndTriad(t *testing.T) {
	res := run(t, `
int main() {
	double a[64];
	double b[64];
	double c[64];
	double scalar = 0.4;
	for (int i = 0; i < 64; i++) {
		b[i] = 2.0;
		c[i] = 1.0;
	}
	for (int i = 0; i < 64; i++) {
		a[i] = b[i] + scalar * c[i];
	}
	double err = 0.0;
	for (int i = 0; i < 64; i++) {
		err += fabs(a[i] - 2.4);
	}
	return err < 0.000001 ? 0 : 1;
}
`, Options{})
	if res.Exit.AsInt() != 0 {
		t.Fatalf("triad verification failed: exit = %v", res.Exit.AsInt())
	}
}

func TestHeapArrays(t *testing.T) {
	res := run(t, `
double sum(double *v, int n) {
	double s = 0.0;
	for (int i = 0; i < n; i++) { s += v[i]; }
	return s;
}
int main() {
	double *a = new double[100];
	for (int i = 0; i < 100; i++) { a[i] = 1.0; }
	double s = sum(a, 100);
	delete[] a;
	return s == 100.0 ? 0 : 1;
}
`, Options{})
	if res.Exit.AsInt() != 0 {
		t.Fatalf("heap array sum failed: exit = %v", res.Exit.AsInt())
	}
}

func TestArraysPassByReference(t *testing.T) {
	res := run(t, `
void fill(double *v, int n, double x) {
	for (int i = 0; i < n; i++) { v[i] = x; }
}
int main() {
	double a[10];
	fill(a, 10, 3.0);
	return a[9] == 3.0 ? 0 : 1;
}
`, Options{})
	if res.Exit.AsInt() != 0 {
		t.Fatal("array mutation not visible through call")
	}
}

func TestMathBuiltins(t *testing.T) {
	res := run(t, `
double main() {
	return sqrt(16.0) + pow(2.0, 3.0) + fmax(1.0, 2.0) + floor(2.9);
}
`, Options{})
	if got := res.Exit.AsFloat(); math.Abs(got-16.0) > 1e-9 {
		t.Fatalf("builtins = %v, want 16", got)
	}
}

func TestOpenMPDirectiveRunsSerially(t *testing.T) {
	res := run(t, `
int main() {
	double a[32];
	#pragma omp parallel for
	for (int i = 0; i < 32; i++) { a[i] = 2.0; }
	double s = 0.0;
	for (int i = 0; i < 32; i++) { s += a[i]; }
	return s == 64.0 ? 0 : 1;
}
`, Options{})
	if res.Exit.AsInt() != 0 {
		t.Fatal("directive body not executed serially")
	}
}

func TestIndexOutOfRangeError(t *testing.T) {
	unit, err := minic.ParseUnit(`
int main() {
	double a[4];
	a[9] = 1.0;
	return 0;
}
`, "prog.c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(unit, Options{}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("expected range error, got %v", err)
	}
}

func TestDivisionByZeroError(t *testing.T) {
	unit, _ := minic.ParseUnit("int main() { int z = 0; return 5 / z; }", "prog.c")
	if _, err := Run(unit, Options{}); err == nil {
		t.Fatal("expected division error")
	}
}

func TestStepLimit(t *testing.T) {
	unit, _ := minic.ParseUnit("int main() { for (;;) { int x = 1; } return 0; }", "prog.c")
	if _, err := Run(unit, Options{MaxSteps: 10000}); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("expected step limit error, got %v", err)
	}
}

func TestMissingEntry(t *testing.T) {
	unit, _ := minic.ParseUnit("int helper() { return 1; }", "prog.c")
	if _, err := Run(unit, Options{}); err == nil {
		t.Fatal("expected missing-entry error")
	}
}

func TestEntryArgs(t *testing.T) {
	res := run(t, "int twice(int x) { return x * 2; }",
		Options{Entry: "twice", Args: []Value{IntV(21)}})
	if res.Exit.AsInt() != 42 {
		t.Fatalf("exit = %v", res.Exit.AsInt())
	}
}

func TestGlobalVariables(t *testing.T) {
	res := run(t, `
int counter = 40;
int main() {
	counter += 2;
	return counter;
}
`, Options{})
	if res.Exit.AsInt() != 42 {
		t.Fatalf("global = %v", res.Exit.AsInt())
	}
}

func TestOutputCapture(t *testing.T) {
	res := run(t, `
int main() {
	printf("result: %d", 42);
	return 0;
}
`, Options{})
	if len(res.Output) != 1 {
		t.Fatalf("output = %v", res.Output)
	}
}

func TestCoverageRecordsExecutedLines(t *testing.T) {
	res := run(t, `
int main() {
	int x = 1;
	if (x > 5) {
		x = 100;
	}
	return x;
}
`, Options{})
	// line 5 (x = 100) is never executed
	if live, known := res.Coverage.Live("prog.c", 5); known && live {
		t.Fatal("dead branch marked live")
	}
	if live, _ := res.Coverage.Live("prog.c", 3); !live {
		t.Fatal("executed line not recorded")
	}
}

func TestCoverageMasksTree(t *testing.T) {
	src := `
int main() {
	int x = 1;
	if (x > 5) {
		x = 100;
		x = 200;
		x = 300;
	}
	return x;
}
`
	unit, err := minic.ParseUnit(src, "prog.c")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(unit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := minic.BuildSemTree(unit)
	prof := coverage.NewProfile(res.Coverage)
	masked := prof.MaskTree(full)
	if masked.Size() >= full.Size() {
		t.Fatalf("coverage mask should shrink the tree: %d -> %d", full.Size(), masked.Size())
	}
}

func TestTernaryAndLogic(t *testing.T) {
	res := run(t, `
int main() {
	int a = 5;
	int b = a > 3 && a < 10 ? 1 : 0;
	int c = a == 5 || a == 6 ? 10 : 20;
	return b + c;
}
`, Options{})
	if res.Exit.AsInt() != 11 {
		t.Fatalf("exit = %v", res.Exit.AsInt())
	}
}

func TestShortCircuit(t *testing.T) {
	// RHS would divide by zero; short-circuit must avoid it
	res := run(t, `
int main() {
	int z = 0;
	int ok = z != 0 && 10 / z > 1;
	return ok ? 1 : 0;
}
`, Options{})
	if res.Exit.AsInt() != 0 {
		t.Fatal("short circuit failed")
	}
}

func TestInitListArray(t *testing.T) {
	res := run(t, `
int main() {
	double w[4] = {1.0, 2.0, 3.0, 4.0};
	double s = 0.0;
	for (int i = 0; i < 4; i++) { s += w[i]; }
	return s == 10.0 ? 0 : 1;
}
`, Options{})
	if res.Exit.AsInt() != 0 {
		t.Fatal("init list array failed")
	}
}
