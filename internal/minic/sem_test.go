package minic

import (
	"strings"
	"testing"

	"silvervale/internal/tree"
)

func semOf(t *testing.T, src string) *tree.Node {
	t.Helper()
	unit := parse(t, src)
	return BuildSemTree(unit)
}

func TestSemTreeDropsNames(t *testing.T) {
	a := semOf(t, "int add(int alpha, int beta) { return alpha + beta; }")
	b := semOf(t, "int plus(int x, int y) { return x + y; }")
	if !tree.Equal(a, b) {
		t.Fatalf("renamed programs must yield identical T_sem:\n%s\n%s", a, b)
	}
}

func TestSemTreeKeepsOperators(t *testing.T) {
	a := semOf(t, "int f(int x, int y) { return x + y; }")
	b := semOf(t, "int f(int x, int y) { return x * y; }")
	if tree.Equal(a, b) {
		t.Fatal("operator spelling must be part of T_sem")
	}
}

func TestSemTreeKeepsLiterals(t *testing.T) {
	a := semOf(t, "int f() { return 1; }")
	b := semOf(t, "int f() { return 2; }")
	if tree.Equal(a, b) {
		t.Fatal("literal values must be part of T_sem")
	}
}

func TestSemTreeOMPDirectiveRicherThanSrc(t *testing.T) {
	src := `
void triad(double *a, double *b, double *c, double s, int n) {
	#pragma omp target teams distribute parallel for map(tofrom: a) reduction(+:s)
	for (int i = 0; i < n; i++) { a[i] = b[i] + s * c[i]; }
}
`
	sem := semOf(t, src)
	// count nodes contributed by the directive at the T_sem level
	var dirNode *tree.Node
	sem.Walk(func(n *tree.Node) bool {
		if dirNode == nil && strings.HasPrefix(n.Label, "OMPExecutableDirective") {
			dirNode = n
		}
		return dirNode == nil
	})
	if dirNode == nil {
		t.Fatal("directive missing from T_sem")
	}
	// structured directive node + clauses: strictly more than the pragma's
	// T_src footprint (pragma + clause words)
	csrc := BuildSrcTree(src, "t.cpp")
	var pragmaNode *tree.Node
	csrc.Walk(func(n *tree.Node) bool {
		if pragmaNode == nil && n.Label == "pragma" {
			pragmaNode = n
		}
		return pragmaNode == nil
	})
	if pragmaNode == nil {
		t.Fatal("pragma missing from T_src")
	}
	// the directive subtree (without its associated loop) vs pragma subtree
	dirOwn := dirNode.Size()
	for _, c := range dirNode.Children {
		if !strings.HasPrefix(c.Label, "OMP") && !strings.HasPrefix(c.Label, "Captured") {
			dirOwn -= c.Size() // subtract associated statement
		}
	}
	if dirOwn <= pragmaNode.Size() {
		t.Fatalf("directive T_sem footprint (%d) should exceed pragma T_src footprint (%d)",
			dirOwn, pragmaNode.Size())
	}
}

func TestInlineUnitBringsBodyIn(t *testing.T) {
	src := `
int helper(int x) { return x * 2 + 1; }
int main() { return helper(21); }
`
	unit := parse(t, src)
	plain := BuildSemTree(unit)
	inlined := BuildSemTree(InlineUnit(unit, InlineOptions{}))
	if inlined.Size() <= plain.Size() {
		t.Fatalf("inlining should grow the tree: %d vs %d", inlined.Size(), plain.Size())
	}
	// the multiplication from helper's body must now appear twice
	count := 0
	inlined.Walk(func(n *tree.Node) bool {
		if n.Label == "BinaryOperator:*" {
			count++
		}
		return true
	})
	if count != 2 {
		t.Fatalf("inlined body not duplicated: %d", count)
	}
}

func TestInlineUnitExcludesSystemFiles(t *testing.T) {
	// parse a unit, then fake a system-file position on the helper
	src := `
int helper(int x) { return x * 2; }
int main() { return helper(21); }
`
	unit := parse(t, src)
	var helper *ASTNode
	unit.Walk(func(n *ASTNode) bool {
		if n.Kind == KFunctionDecl && n.Name == "helper" {
			helper = n
		}
		return true
	})
	helper.Walk(func(n *ASTNode) bool {
		n.Pos.File = "system/stdlib.h"
		return true
	})
	inlined := InlineUnit(unit, InlineOptions{
		ExcludeFile: func(f string) bool { return strings.HasPrefix(f, "system/") },
	})
	found := false
	inlined.Walk(func(n *ASTNode) bool {
		if n.Kind == "InlinedCall" {
			found = true
		}
		return true
	})
	if found {
		t.Fatal("system-header function must not be inlined")
	}
}

func TestInlineUnitSkipsKernelLaunch(t *testing.T) {
	src := `
__global__ void kern(double *a, int n) {
	int i = threadIdx.x;
	if (i < n) { a[i] = 1.0; }
}
void run(double *a, int n) {
	kern<<<1, 64>>>(a, n);
}
`
	unit := parse(t, src)
	inlined := InlineUnit(unit, InlineOptions{})
	found := false
	inlined.Walk(func(n *ASTNode) bool {
		if n.Kind == "InlinedCall" {
			found = true
		}
		return true
	})
	if found {
		t.Fatal("kernel launches must not be inlined (first-party models rely on the compiler)")
	}
}

func TestInlineRecursionGuard(t *testing.T) {
	src := `
int fact(int n) { return n < 2 ? 1 : n * fact(n - 1); }
int main() { return fact(5); }
`
	unit := parse(t, src)
	inlined := InlineUnit(unit, InlineOptions{MaxDepth: 5})
	if inlined == nil {
		t.Fatal("inlining recursion guard failed")
	}
}

func TestInlineMemberCall(t *testing.T) {
	src := `
struct Accum {
	int total;
	int bump(int x) { return total += x; }
};
int main() {
	Accum acc;
	return acc.bump(3);
}
`
	unit := parse(t, src)
	inlined := InlineUnit(unit, InlineOptions{})
	found := false
	inlined.Walk(func(n *ASTNode) bool {
		if n.Kind == "InlinedCall" {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("member call should inline against method definition")
	}
}

func TestApplyLineOrigins(t *testing.T) {
	unit := parse(t, "int x = 1;\nint y = 2;\n")
	origins := []LineOrigin{{File: "orig.h", Line: 10}, {File: "main.c", Line: 3}}
	ApplyLineOrigins(unit, origins)
	var xd, yd *ASTNode
	unit.Walk(func(n *ASTNode) bool {
		if n.Kind == KVarDecl {
			if xd == nil {
				xd = n
			} else if yd == nil {
				yd = n
			}
		}
		return true
	})
	if xd.Pos.File != "orig.h" || xd.Pos.Line != 10 {
		t.Fatalf("x origin = %v", xd.Pos)
	}
	if yd.Pos.File != "main.c" || yd.Pos.Line != 3 {
		t.Fatalf("y origin = %v", yd.Pos)
	}
}

func TestSrcTreeNormalisesIdentifiers(t *testing.T) {
	a := BuildSrcTree("int foo = bar + baz;", "a.c")
	b := BuildSrcTree("int x = y + z;", "b.c")
	if !tree.Equal(a, b) {
		t.Fatalf("identifier names must not appear in T_src:\n%s\n%s", a, b)
	}
}

func TestSrcTreeBlocksNest(t *testing.T) {
	src := "void f() { if (x) { y; } }"
	n := BuildSrcTree(src, "a.c")
	blocks := 0
	n.Walk(func(m *tree.Node) bool {
		if m.Label == "block" {
			blocks++
		}
		return true
	})
	if blocks != 2 {
		t.Fatalf("blocks = %d, want 2", blocks)
	}
}

func TestSrcTreePragmaFootprintSmall(t *testing.T) {
	plain := BuildSrcTree("for (int i = 0; i < n; i++) { a[i] = b[i]; }", "a.c")
	omp := BuildSrcTree("#pragma omp parallel for\nfor (int i = 0; i < n; i++) { a[i] = b[i]; }", "a.c")
	delta := omp.Size() - plain.Size()
	if delta <= 0 || delta > 8 {
		t.Fatalf("pragma T_src footprint = %d nodes; want small positive", delta)
	}
}

func TestSrcTreeDropsAnonymousTokens(t *testing.T) {
	n := BuildSrcTree("f(a, b);", "a.c")
	n.Walk(func(m *tree.Node) bool {
		if m.Label == "op:(" || m.Label == "op:," {
			t.Fatalf("anonymous token leaked: %s", m.Label)
		}
		return true
	})
}

func TestSrcTreeKernelLaunchHighlighted(t *testing.T) {
	n := BuildSrcTree("k<<<g, b>>>(x);", "a.c")
	launches := 0
	n.Walk(func(m *tree.Node) bool {
		if m.Label == "launch" {
			launches++
		}
		return true
	})
	if launches != 2 {
		t.Fatalf("launch chevrons = %d, want 2", launches)
	}
}
