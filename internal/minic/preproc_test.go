package minic

import (
	"strings"
	"testing"
)

func provider(files map[string]string, system ...string) *MapProvider {
	sys := make(map[string]bool)
	for _, s := range system {
		sys[s] = true
	}
	return &MapProvider{Files: files, System: sys}
}

func preprocess(t *testing.T, files map[string]string, main string) *PPResult {
	t.Helper()
	pp := NewPreprocessor(provider(files), nil)
	res, err := pp.Preprocess(main)
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	return res
}

func TestIncludeSplicing(t *testing.T) {
	res := preprocess(t, map[string]string{
		"main.c": "#include \"util.h\"\nint main() { return helper(); }\n",
		"util.h": "int helper();\n",
	}, "main.c")
	if !strings.Contains(res.Text, "int helper();") {
		t.Fatalf("include not spliced: %q", res.Text)
	}
	if len(res.Includes) != 1 || res.Includes[0] != "util.h" {
		t.Fatalf("includes = %v", res.Includes)
	}
}

func TestIncludeOnce(t *testing.T) {
	res := preprocess(t, map[string]string{
		"main.c": "#include \"a.h\"\n#include \"b.h\"\n",
		"a.h":    "#include \"c.h\"\nint a;\n",
		"b.h":    "#include \"c.h\"\nint b;\n",
		"c.h":    "int c;\n",
	}, "main.c")
	if strings.Count(res.Text, "int c;") != 1 {
		t.Fatalf("c.h included more than once: %q", res.Text)
	}
}

func TestMissingIncludeRecorded(t *testing.T) {
	res := preprocess(t, map[string]string{
		"main.c": "#include <nonexistent.h>\nint x;\n",
	}, "main.c")
	if len(res.MissingIncludes) != 1 || res.MissingIncludes[0] != "nonexistent.h" {
		t.Fatalf("missing = %v", res.MissingIncludes)
	}
	if !strings.Contains(res.Text, "int x;") {
		t.Fatal("rest of file must survive a missing include")
	}
}

func TestObjectMacro(t *testing.T) {
	res := preprocess(t, map[string]string{
		"main.c": "#define N 1024\nint a[N];\n",
	}, "main.c")
	if !strings.Contains(res.Text, "int a[1024];") {
		t.Fatalf("macro not expanded: %q", res.Text)
	}
}

func TestFunctionMacro(t *testing.T) {
	res := preprocess(t, map[string]string{
		"main.c": "#define SQ(x) ((x)*(x))\nint y = SQ(a + 1);\n",
	}, "main.c")
	if !strings.Contains(res.Text, "((a + 1)*(a + 1))") {
		t.Fatalf("function macro not expanded: %q", res.Text)
	}
}

func TestNestedMacro(t *testing.T) {
	res := preprocess(t, map[string]string{
		"main.c": "#define A B\n#define B 7\nint x = A;\n",
	}, "main.c")
	if !strings.Contains(res.Text, "int x = 7;") {
		t.Fatalf("nested expansion failed: %q", res.Text)
	}
}

func TestRecursiveMacroTerminates(t *testing.T) {
	res := preprocess(t, map[string]string{
		"main.c": "#define LOOP LOOP\nint x = LOOP;\n",
	}, "main.c")
	_ = res // must not hang or overflow
}

func TestMacroNotExpandedInStrings(t *testing.T) {
	res := preprocess(t, map[string]string{
		"main.c": "#define N 9\nchar *s = \"N\";\n",
	}, "main.c")
	if !strings.Contains(res.Text, `"N"`) {
		t.Fatalf("macro expanded inside string: %q", res.Text)
	}
}

func TestConditionals(t *testing.T) {
	res := preprocess(t, map[string]string{
		"main.c": "#define USE_GPU 1\n#ifdef USE_GPU\nint gpu;\n#else\nint cpu;\n#endif\n#ifndef USE_GPU\nint nope;\n#endif\n",
	}, "main.c")
	if !strings.Contains(res.Text, "int gpu;") {
		t.Fatal("ifdef branch missing")
	}
	if strings.Contains(res.Text, "int cpu;") || strings.Contains(res.Text, "int nope;") {
		t.Fatalf("dead branches kept: %q", res.Text)
	}
}

func TestNestedConditionals(t *testing.T) {
	src := "#ifdef A\n#ifdef B\nint ab;\n#endif\nint a;\n#endif\nint always;\n"
	res := preprocess(t, map[string]string{"main.c": src}, "main.c")
	if strings.Contains(res.Text, "int ab;") || strings.Contains(res.Text, "int a;") {
		t.Fatalf("nested dead branch leaked: %q", res.Text)
	}
	if !strings.Contains(res.Text, "int always;") {
		t.Fatal("live tail lost")
	}
}

func TestIfZeroOne(t *testing.T) {
	src := "#if 0\nint dead;\n#endif\n#if 1\nint live;\n#endif\n"
	res := preprocess(t, map[string]string{"main.c": src}, "main.c")
	if strings.Contains(res.Text, "dead") || !strings.Contains(res.Text, "live") {
		t.Fatalf("#if 0/1 wrong: %q", res.Text)
	}
}

func TestInitialDefines(t *testing.T) {
	pp := NewPreprocessor(provider(map[string]string{
		"main.c": "#ifdef FAST\nint fast;\n#endif\n",
	}), map[string]string{"FAST": "1"})
	res, err := pp.Preprocess("main.c")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "int fast;") {
		t.Fatal("initial define not visible")
	}
}

func TestPragmaRetained(t *testing.T) {
	res := preprocess(t, map[string]string{
		"main.c": "#pragma omp parallel for\nfor (;;) {}\n",
	}, "main.c")
	if !strings.Contains(res.Text, "#pragma omp parallel for") {
		t.Fatalf("pragma lost in preprocessing: %q", res.Text)
	}
}

func TestLineOrigins(t *testing.T) {
	res := preprocess(t, map[string]string{
		"main.c": "#include \"h.h\"\nint tail;\n",
		"h.h":    "int head;\n",
	}, "main.c")
	if n := strings.Count(res.Text, "\n"); n != len(res.LineOrigin) {
		t.Fatalf("line origin length %d vs %d lines", len(res.LineOrigin), n)
	}
	lines := strings.Split(res.Text, "\n")
	// the line "int head;" must map back to h.h:1
	for i, l := range lines {
		if strings.Contains(l, "int head;") {
			if res.LineOrigin[i].File != "h.h" || res.LineOrigin[i].Line != 1 {
				t.Fatalf("origin of head = %+v", res.LineOrigin[i])
			}
		}
		if strings.Contains(l, "int tail;") {
			if res.LineOrigin[i].File != "main.c" || res.LineOrigin[i].Line != 2 {
				t.Fatalf("origin of tail = %+v", res.LineOrigin[i])
			}
		}
	}
}

func TestUndef(t *testing.T) {
	res := preprocess(t, map[string]string{
		"main.c": "#define X 1\n#undef X\n#ifdef X\nint yes;\n#endif\nint done;\n",
	}, "main.c")
	if strings.Contains(res.Text, "int yes;") {
		t.Fatal("undef did not remove macro")
	}
}

func TestUnterminatedIfError(t *testing.T) {
	pp := NewPreprocessor(provider(map[string]string{"main.c": "#ifdef A\nint x;\n"}), nil)
	if _, err := pp.Preprocess("main.c"); err == nil {
		t.Fatal("expected error for unterminated #if")
	}
}

func TestElseWithoutIfError(t *testing.T) {
	pp := NewPreprocessor(provider(map[string]string{"main.c": "#else\n"}), nil)
	if _, err := pp.Preprocess("main.c"); err == nil {
		t.Fatal("expected error for dangling #else")
	}
}

func TestMacroHeavyHeaderExpansion(t *testing.T) {
	// Models the SYCL "+pp blow-up": a header whose macros multiply source
	// volume; the preprocessed unit must be much larger than the input.
	files := map[string]string{
		"main.c": "#include \"heavy.h\"\nEXPAND(a) EXPAND(b) EXPAND(c)\n",
		"heavy.h": "#define INNER(x) int x##0; int x##1; int x##2; int x##3;\n" +
			"#define EXPAND(x) INNER(x) INNER(x) INNER(x)\n",
	}
	res := preprocess(t, files, "main.c")
	if len(res.Text) < 100 {
		t.Fatalf("expansion too small: %q", res.Text)
	}
}
