package minic

import (
	"fmt"
	"sort"
	"strings"

	"silvervale/internal/obs"
)

// FileProvider resolves #include targets to source text. The corpus
// provides an in-memory implementation; the CLI provides one backed by the
// file system.
type FileProvider interface {
	// ReadSource returns the contents of the named file.
	ReadSource(name string) (string, error)
	// IsSystem reports whether the file is a system/model runtime header
	// (e.g. <sycl/sycl.hpp>), which analyses may mask out.
	IsSystem(name string) bool
}

// MapProvider is a FileProvider backed by an in-memory map.
type MapProvider struct {
	Files  map[string]string
	System map[string]bool
}

// ReadSource implements FileProvider.
func (m *MapProvider) ReadSource(name string) (string, error) {
	src, ok := m.Files[name]
	if !ok {
		return "", fmt.Errorf("minic: no such file %q", name)
	}
	return src, nil
}

// IsSystem implements FileProvider.
func (m *MapProvider) IsSystem(name string) bool { return m.System[name] }

// PPResult is the outcome of preprocessing one unit (Eq. 1: the source file
// and all of its module dependencies).
type PPResult struct {
	// Text is the fully preprocessed source: includes spliced in, macros
	// expanded, conditional sections resolved, comments removed. #pragma
	// lines are retained verbatim (semantic-bearing information in an
	// unusual place).
	Text string
	// LineOrigin maps each line (1-based) of Text to its original file and
	// line, preserving source back-references through preprocessing.
	LineOrigin []LineOrigin
	// Includes lists every file spliced into the unit, in first-include
	// order; the main file is not listed.
	Includes []string
	// MissingIncludes lists include targets the provider could not
	// resolve; they are skipped (like -I misconfiguration warnings).
	MissingIncludes []string
}

// LineOrigin is the original location of one preprocessed line.
type LineOrigin struct {
	File string
	Line int
}

// Macro is a preprocessor macro definition.
type Macro struct {
	Name   string
	Params []string // nil for object-like macros
	Body   string
	IsFunc bool
}

// Preprocessor expands a MiniC source unit.
type Preprocessor struct {
	provider FileProvider
	defines  map[string]Macro
	included map[string]bool
	result   *PPResult
}

// NewPreprocessor returns a preprocessor reading includes from provider.
// Initial defines (e.g. -D flags from the compilation database) may be
// supplied.
func NewPreprocessor(provider FileProvider, defines map[string]string) *Preprocessor {
	pp := &Preprocessor{
		provider: provider,
		defines:  make(map[string]Macro),
		included: make(map[string]bool),
	}
	keys := make([]string, 0, len(defines))
	for k := range defines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pp.defines[k] = Macro{Name: k, Body: defines[k]}
	}
	return pp
}

// Preprocess expands the named file into a single unit.
func (pp *Preprocessor) Preprocess(file string) (*PPResult, error) {
	return pp.PreprocessObs(file, nil)
}

// PreprocessObs is Preprocess with observability: the expansion records a
// "frontend.preprocess" child span under parent plus counters for resolved
// includes and emitted lines. A nil parent is the plain uninstrumented
// Preprocess.
func (pp *Preprocessor) PreprocessObs(file string, parent *obs.Span) (*PPResult, error) {
	sp := parent.Start("frontend.preprocess").Arg("file", file)
	defer sp.End()
	src, err := pp.provider.ReadSource(file)
	if err != nil {
		return nil, err
	}
	pp.result = &PPResult{}
	var b strings.Builder
	if err := pp.expandFile(&b, file, src, 0); err != nil {
		return nil, err
	}
	pp.result.Text = b.String()
	if rec := parent.Recorder(); rec != nil {
		rec.Counter("frontend.includes").Add(int64(len(pp.result.Includes)))
		rec.Counter("frontend.pp_lines").Add(int64(len(pp.result.LineOrigin)))
	}
	return pp.result, nil
}

const maxIncludeDepth = 64

func (pp *Preprocessor) expandFile(b *strings.Builder, file, src string, depth int) error {
	if depth > maxIncludeDepth {
		return fmt.Errorf("minic: include depth exceeded at %q", file)
	}
	lines := splitLogicalLines(src)
	// condStack tracks #if nesting: each entry is whether the current
	// branch is active.
	type cond struct {
		active      bool
		parentLive  bool
		takenBranch bool
	}
	var stack []cond
	live := func() bool {
		for _, c := range stack {
			if !c.active || !c.parentLive {
				return false
			}
		}
		return true
	}
	for _, ln := range lines {
		trimmed := strings.TrimSpace(ln.text)
		if strings.HasPrefix(trimmed, "#") {
			dir, rest := splitDirective(trimmed)
			switch dir {
			case "ifdef", "ifndef":
				name := strings.TrimSpace(rest)
				_, defined := pp.defines[name]
				active := defined
				if dir == "ifndef" {
					active = !defined
				}
				stack = append(stack, cond{active: active, parentLive: live(), takenBranch: active})
				continue
			case "if":
				// minimal #if: only `#if 0` and `#if 1` plus defined(NAME)
				active := evalPPCondition(rest, pp.defines)
				stack = append(stack, cond{active: active, parentLive: live(), takenBranch: active})
				continue
			case "else":
				if len(stack) == 0 {
					return fmt.Errorf("minic: #else without #if at %s:%d", file, ln.line)
				}
				top := &stack[len(stack)-1]
				top.active = !top.takenBranch
				continue
			case "endif":
				if len(stack) == 0 {
					return fmt.Errorf("minic: #endif without #if at %s:%d", file, ln.line)
				}
				stack = stack[:len(stack)-1]
				continue
			}
			if !live() {
				continue
			}
			switch dir {
			case "include":
				target, ok := parseIncludeTarget(rest)
				if !ok {
					return fmt.Errorf("minic: malformed #include at %s:%d: %q", file, ln.line, trimmed)
				}
				if pp.included[target] {
					continue // include-once semantics (header guards)
				}
				isrc, err := pp.provider.ReadSource(target)
				if err != nil {
					pp.result.MissingIncludes = append(pp.result.MissingIncludes, target)
					continue
				}
				pp.included[target] = true
				pp.result.Includes = append(pp.result.Includes, target)
				if err := pp.expandFile(b, target, isrc, depth+1); err != nil {
					return err
				}
				continue
			case "define":
				m, err := parseDefine(rest)
				if err != nil {
					return fmt.Errorf("minic: %s at %s:%d", err, file, ln.line)
				}
				pp.defines[m.Name] = m
				continue
			case "undef":
				delete(pp.defines, strings.TrimSpace(rest))
				continue
			case "pragma":
				// retained verbatim
				pp.appendLine(b, trimmed, file, ln.line)
				continue
			default:
				// unknown directive: drop, like a permissive compiler
				continue
			}
		}
		if !live() {
			continue
		}
		expanded := pp.expandMacros(ln.text, 0)
		pp.appendLine(b, expanded, file, ln.line)
	}
	if len(stack) != 0 {
		return fmt.Errorf("minic: unterminated #if in %q", file)
	}
	return nil
}

func (pp *Preprocessor) appendLine(b *strings.Builder, text, file string, line int) {
	b.WriteString(text)
	b.WriteByte('\n')
	pp.result.LineOrigin = append(pp.result.LineOrigin, LineOrigin{File: file, Line: line})
}

type logicalLine struct {
	text string
	line int // original starting line
}

// splitLogicalLines splits source into lines, joining backslash
// continuations (used heavily by function-like macros in model headers).
func splitLogicalLines(src string) []logicalLine {
	raw := strings.Split(src, "\n")
	var out []logicalLine
	i := 0
	for i < len(raw) {
		start := i
		text := raw[i]
		for strings.HasSuffix(strings.TrimRight(text, " \t"), "\\") && i+1 < len(raw) {
			text = strings.TrimSuffix(strings.TrimRight(text, " \t"), "\\") + " " + raw[i+1]
			i++
		}
		out = append(out, logicalLine{text: text, line: start + 1})
		i++
	}
	return out
}

func splitDirective(line string) (dir, rest string) {
	s := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	for i := 0; i < len(s); i++ {
		if !isIdentPart(s[i]) {
			return s[:i], s[i:]
		}
	}
	return s, ""
}

func parseIncludeTarget(rest string) (string, bool) {
	s := strings.TrimSpace(rest)
	if len(s) >= 2 && s[0] == '"' {
		if end := strings.IndexByte(s[1:], '"'); end >= 0 {
			return s[1 : 1+end], true
		}
	}
	if len(s) >= 2 && s[0] == '<' {
		if end := strings.IndexByte(s, '>'); end >= 0 {
			return s[1:end], true
		}
	}
	return "", false
}

func parseDefine(rest string) (Macro, error) {
	s := strings.TrimSpace(rest)
	i := 0
	for i < len(s) && isIdentPart(s[i]) {
		i++
	}
	if i == 0 {
		return Macro{}, fmt.Errorf("malformed #define %q", rest)
	}
	name := s[:i]
	if i < len(s) && s[i] == '(' {
		end := strings.IndexByte(s[i:], ')')
		if end < 0 {
			return Macro{}, fmt.Errorf("malformed function-like #define %q", rest)
		}
		paramsRaw := s[i+1 : i+end]
		var params []string
		for _, p := range strings.Split(paramsRaw, ",") {
			if t := strings.TrimSpace(p); t != "" {
				params = append(params, t)
			}
		}
		body := strings.TrimSpace(s[i+end+1:])
		return Macro{Name: name, Params: params, Body: body, IsFunc: true}, nil
	}
	return Macro{Name: name, Body: strings.TrimSpace(s[i:])}, nil
}

func evalPPCondition(rest string, defines map[string]Macro) bool {
	s := strings.TrimSpace(rest)
	switch s {
	case "0":
		return false
	case "1":
		return true
	}
	if strings.HasPrefix(s, "defined(") && strings.HasSuffix(s, ")") {
		name := strings.TrimSpace(s[len("defined(") : len(s)-1])
		_, ok := defines[name]
		return ok
	}
	if strings.HasPrefix(s, "!defined(") && strings.HasSuffix(s, ")") {
		name := strings.TrimSpace(s[len("!defined(") : len(s)-1])
		_, ok := defines[name]
		return !ok
	}
	// Unknown conditions default to true, keeping the common path.
	return true
}

const maxMacroDepth = 16

// expandMacros performs textual macro expansion on one line with
// word-boundary matching, supporting object-like and function-like macros
// with a recursion guard.
func (pp *Preprocessor) expandMacros(line string, depth int) string {
	if depth > maxMacroDepth || len(pp.defines) == 0 {
		return line
	}
	var b strings.Builder
	i := 0
	changed := false
	for i < len(line) {
		c := line[i]
		if c == '"' || c == '\'' {
			// copy string/char literal verbatim
			quote := c
			b.WriteByte(c)
			i++
			for i < len(line) {
				b.WriteByte(line[i])
				if line[i] == '\\' && i+1 < len(line) {
					i++
					b.WriteByte(line[i])
					i++
					continue
				}
				if line[i] == quote {
					i++
					break
				}
				i++
			}
			continue
		}
		if !isIdentStart(c) {
			b.WriteByte(c)
			i++
			continue
		}
		j := i
		for j < len(line) && isIdentPart(line[j]) {
			j++
		}
		word := line[i:j]
		m, ok := pp.defines[word]
		if !ok {
			b.WriteString(word)
			i = j
			continue
		}
		if m.IsFunc {
			// find the argument list
			k := j
			for k < len(line) && (line[k] == ' ' || line[k] == '\t') {
				k++
			}
			if k >= len(line) || line[k] != '(' {
				b.WriteString(word)
				i = j
				continue
			}
			args, end, ok := scanMacroArgs(line, k)
			if !ok {
				b.WriteString(word)
				i = j
				continue
			}
			b.WriteString(substituteParams(m, args))
			i = end
			changed = true
			continue
		}
		b.WriteString(m.Body)
		i = j
		changed = true
	}
	out := b.String()
	if changed {
		return pp.expandMacros(out, depth+1)
	}
	return out
}

// scanMacroArgs scans a balanced-paren argument list starting at line[open]
// == '('. Returns the comma-separated top-level arguments and the index
// one past the closing paren.
func scanMacroArgs(line string, open int) (args []string, end int, ok bool) {
	depth := 0
	start := open + 1
	for i := open; i < len(line); i++ {
		switch line[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				if i > start || len(args) > 0 || strings.TrimSpace(line[start:i]) != "" {
					args = append(args, strings.TrimSpace(line[start:i]))
				}
				return args, i + 1, true
			}
		case ',':
			if depth == 1 {
				args = append(args, strings.TrimSpace(line[start:i]))
				start = i + 1
			}
		case '"', '\'':
			q := line[i]
			i++
			for i < len(line) && line[i] != q {
				if line[i] == '\\' {
					i++
				}
				i++
			}
		}
	}
	return nil, 0, false
}

func substituteParams(m Macro, args []string) string {
	body := m.Body
	var b strings.Builder
	i := 0
	for i < len(body) {
		if !isIdentStart(body[i]) {
			b.WriteByte(body[i])
			i++
			continue
		}
		j := i
		for j < len(body) && isIdentPart(body[j]) {
			j++
		}
		word := body[i:j]
		sub := word
		for pi, p := range m.Params {
			if p == word {
				if pi < len(args) {
					sub = args[pi]
				} else {
					sub = ""
				}
				break
			}
		}
		b.WriteString(sub)
		i = j
	}
	// token pasting: `a ## b` joins the substituted pieces
	return strings.ReplaceAll(b.String(), "##", "")
}
