package minic

import (
	"strings"

	"silvervale/internal/srcloc"
)

// LexOptions configures the lexer.
type LexOptions struct {
	// File is the filename recorded in token positions.
	File string
	// KeepComments emits TokComment tokens instead of discarding comments.
	KeepComments bool
	// KeepDirectives emits TokDirective tokens for non-pragma # lines.
	// Pre-preprocessing CSTs want these; post-preprocessing input has none.
	KeepDirectives bool
}

// Lex scans MiniC source into tokens. The lexer never fails: unknown bytes
// are emitted as single-character punct tokens so that the CST can always
// be built, mirroring tree-sitter's error tolerance.
func Lex(src string, opts LexOptions) []Token {
	lx := &lexer{src: src, file: opts.File, line: 1, col: 1, opts: opts}
	return lx.run()
}

type lexer struct {
	src  string
	pos  int
	file string
	line int
	col  int
	opts LexOptions
	toks []Token
}

// multi-character punctuation, longest first. <<< and >>> implement the
// CUDA/HIP kernel-launch chevrons.
var multiPunct = []string{
	"<<<", ">>>", "<<=", ">>=", "...", "->*",
	"::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
}

func (lx *lexer) run() []Token {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			lx.advance(1)
		case c == '\n':
			lx.newline()
		case c == '/' && lx.peek(1) == '/':
			lx.lineComment()
		case c == '/' && lx.peek(1) == '*':
			lx.blockComment()
		case c == '#':
			lx.directive()
		case isIdentStart(c):
			lx.identifier()
		case c >= '0' && c <= '9':
			lx.number()
		case c == '.' && lx.peek(1) >= '0' && lx.peek(1) <= '9':
			lx.number()
		case c == '"':
			lx.stringLit()
		case c == '\'':
			lx.charLit()
		default:
			lx.punct()
		}
	}
	lx.emit(TokEOF, "")
	return lx.toks
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (lx *lexer) peek(n int) byte {
	if lx.pos+n < len(lx.src) {
		return lx.src[lx.pos+n]
	}
	return 0
}

func (lx *lexer) here() srcloc.Pos {
	return srcloc.Pos{File: lx.file, Line: lx.line, Col: lx.col}
}

func (lx *lexer) advance(n int) {
	lx.pos += n
	lx.col += n
}

func (lx *lexer) newline() {
	lx.pos++
	lx.line++
	lx.col = 1
}

func (lx *lexer) emit(k TokKind, text string) {
	lx.toks = append(lx.toks, Token{Kind: k, Text: text, Pos: lx.here()})
}

func (lx *lexer) emitAt(k TokKind, text string, pos srcloc.Pos) {
	lx.toks = append(lx.toks, Token{Kind: k, Text: text, Pos: pos})
}

func (lx *lexer) lineComment() {
	pos := lx.here()
	start := lx.pos
	for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
		lx.advance(1)
	}
	if lx.opts.KeepComments {
		lx.emitAt(TokComment, lx.src[start:lx.pos], pos)
	}
}

func (lx *lexer) blockComment() {
	pos := lx.here()
	start := lx.pos
	lx.advance(2)
	for lx.pos < len(lx.src) {
		if lx.src[lx.pos] == '*' && lx.peek(1) == '/' {
			lx.advance(2)
			break
		}
		if lx.src[lx.pos] == '\n' {
			lx.newline()
		} else {
			lx.advance(1)
		}
	}
	if lx.opts.KeepComments {
		lx.emitAt(TokComment, lx.src[start:lx.pos], pos)
	}
}

// directive consumes a whole # line (with backslash continuations).
// #pragma lines always become TokPragma; other directives become
// TokDirective when KeepDirectives is set, otherwise they are dropped
// (post-preprocessed input should contain none).
func (lx *lexer) directive() {
	pos := lx.here()
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\\' && lx.peek(1) == '\n' {
			lx.advance(1)
			lx.newline()
			b.WriteByte(' ')
			continue
		}
		if c == '\n' {
			break
		}
		b.WriteByte(c)
		lx.advance(1)
	}
	text := strings.Join(strings.Fields(b.String()), " ")
	if strings.HasPrefix(text, "#pragma") || strings.HasPrefix(text, "# pragma") {
		lx.emitAt(TokPragma, text, pos)
	} else if lx.opts.KeepDirectives {
		lx.emitAt(TokDirective, text, pos)
	}
}

func (lx *lexer) identifier() {
	pos := lx.here()
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
		lx.advance(1)
	}
	text := lx.src[start:lx.pos]
	if keywords[text] {
		lx.emitAt(TokKeyword, text, pos)
	} else {
		lx.emitAt(TokIdent, text, pos)
	}
}

func (lx *lexer) number() {
	pos := lx.here()
	start := lx.pos
	seenDot := false
	seenExp := false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c >= '0' && c <= '9':
			lx.advance(1)
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			lx.advance(1)
		case (c == 'e' || c == 'E') && !seenExp && lx.pos > start:
			seenExp = true
			lx.advance(1)
			if p := lx.peek(0); p == '+' || p == '-' {
				lx.advance(1)
			}
		case c == 'x' || c == 'X':
			lx.advance(1)
		case (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'):
			lx.advance(1)
		case c == 'u' || c == 'U' || c == 'l' || c == 'L':
			lx.advance(1)
		default:
			goto done
		}
	}
done:
	lx.emitAt(TokNumber, lx.src[start:lx.pos], pos)
}

func (lx *lexer) stringLit() {
	pos := lx.here()
	start := lx.pos
	lx.advance(1)
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\\' {
			lx.advance(2)
			continue
		}
		if c == '"' {
			lx.advance(1)
			break
		}
		if c == '\n' {
			lx.newline()
			continue
		}
		lx.advance(1)
	}
	lx.emitAt(TokString, lx.src[start:lx.pos], pos)
}

func (lx *lexer) charLit() {
	pos := lx.here()
	start := lx.pos
	lx.advance(1)
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\\' {
			lx.advance(2)
			continue
		}
		if c == '\'' {
			lx.advance(1)
			break
		}
		if c == '\n' {
			break
		}
		lx.advance(1)
	}
	lx.emitAt(TokChar, lx.src[start:lx.pos], pos)
}

func (lx *lexer) punct() {
	pos := lx.here()
	rest := lx.src[lx.pos:]
	for _, p := range multiPunct {
		if strings.HasPrefix(rest, p) {
			// Avoid greedily consuming ">>>" when it closes nested template
			// argument lists; the parser resplits where needed, but the
			// corpus dialect only uses ">>>" for kernel launches.
			lx.emitAt(TokPunct, p, pos)
			lx.advance(len(p))
			return
		}
	}
	lx.emitAt(TokPunct, string(lx.src[lx.pos]), pos)
	lx.advance(1)
}
