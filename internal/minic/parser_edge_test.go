package minic

import (
	"strings"
	"testing"
)

// Edge cases in the C++-dialect surface the corpus headers exercise.

func TestParseCallOperatorOverload(t *testing.T) {
	unit := parse(t, `
struct View {
	double *data_;
	double operator()(int i) const { return data_[i]; }
	double operator[](int i) const { return data_[i]; }
};
`)
	names := map[string]bool{}
	unit.Walk(func(n *ASTNode) bool {
		if n.Kind == KFunctionDecl {
			names[n.Name] = true
		}
		return true
	})
	if !names["operator()"] || !names["operator[]"] {
		t.Fatalf("operator overloads = %v", names)
	}
}

func TestParseLaunchBounds(t *testing.T) {
	unit := parse(t, `
__global__ __launch_bounds__(256) void k(double *a) {
	a[0] = 1.0;
}
`)
	attrs := map[string]bool{}
	unit.Walk(func(n *ASTNode) bool {
		if n.Kind == KAttr {
			attrs[n.Extra] = true
		}
		return true
	})
	if !attrs["CUDAGlobal"] || !attrs["LaunchBounds"] {
		t.Fatalf("attrs = %v", attrs)
	}
}

func TestParseSharedMemoryDecl(t *testing.T) {
	unit := parse(t, `
__global__ void k() {
	__shared__ double smem[256];
	smem[threadIdx.x] = 0.0;
}
`)
	found := false
	unit.Walk(func(n *ASTNode) bool {
		if n.Kind == KAttr && n.Extra == "CUDAShared" {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("__shared__ attribute missing")
	}
}

func TestParseChainedMemberCalls(t *testing.T) {
	unit := parse(t, `
void f(sycl::queue &q, int n) {
	q.parallel_for(sycl::range<1>(n), [=](sycl::id<1> i) {
		int x = i[0];
	}).wait();
}
`)
	// the .wait() member must chain off the parallel_for call result
	var waits int
	unit.Walk(func(n *ASTNode) bool {
		if n.Kind == KMemberExpr && n.Name == "wait" {
			waits++
		}
		return true
	})
	if waits != 1 {
		t.Fatalf("chained .wait() = %d", waits)
	}
}

func TestParseSizeofForms(t *testing.T) {
	unit := parse(t, `
void f(double *a, int n) {
	int b1 = sizeof(double);
	int b2 = sizeof(n);
}
`)
	if countKind(unit, KSizeofExpr) != 2 {
		t.Fatalf("sizeofs = %d", countKind(unit, KSizeofExpr))
	}
}

func TestParseNestedLambdas(t *testing.T) {
	unit := parse(t, `
void f(sycl::queue &q) {
	q.submit([&](sycl::handler &h) {
		h.parallel_for(4, [=](int i) {
			int x = i;
		});
	});
}
`)
	if countKind(unit, KLambdaExpr) != 2 {
		t.Fatalf("nested lambdas = %d", countKind(unit, KLambdaExpr))
	}
}

func TestParseHexAndFloatSuffixLiterals(t *testing.T) {
	unit := parse(t, `
void f() {
	int m = 0xFF;
	double x = 1.5f;
	double y = 2e10;
}
`)
	var hex, flt int
	unit.Walk(func(n *ASTNode) bool {
		switch n.Kind {
		case KIntegerLiteral:
			if strings.HasPrefix(n.Extra, "0x") {
				hex++
			}
		case KFloatingLiteral:
			flt++
		}
		return true
	})
	if hex != 1 || flt != 2 {
		t.Fatalf("hex=%d float=%d", hex, flt)
	}
}

func TestParseConditionalPragmaPlacement(t *testing.T) {
	// pragma directly before a one-line statement inside an if
	unit := parse(t, `
void f(double *a, int n, int go) {
	if (go) {
		#pragma omp parallel for
		for (int i = 0; i < n; i++) { a[i] = 0.0; }
	}
}
`)
	d := findKind(unit, KOMPDirective)
	if d == nil || findKind(d, KForStmt) == nil {
		t.Fatal("directive in nested block misparsed")
	}
}

func TestParsePointerToPointerParams(t *testing.T) {
	unit := parse(t, "int cudaMalloc(double **ptr, int bytes);")
	ptrs := countKind(unit, KPointerType)
	if ptrs != 2 {
		t.Fatalf("pointer depth = %d", ptrs)
	}
}

func TestParseEmptyUnit(t *testing.T) {
	unit := parse(t, "\n  \n// only comments\n")
	if len(unit.Children) != 0 {
		t.Fatalf("empty unit children = %d", len(unit.Children))
	}
}

func TestParseGlobalPragmaStandsAlone(t *testing.T) {
	unit := parse(t, `
#pragma omp declare target
int helper(int x) { return x + 1; }
#pragma omp end declare target
`)
	// both pragmas are top-level siblings; the function is not swallowed
	if countKind(unit, KOMPDirective) != 2 {
		t.Fatalf("directives = %d", countKind(unit, KOMPDirective))
	}
	if findKind(unit, KFunctionDecl) == nil {
		t.Fatal("function lost")
	}
}
