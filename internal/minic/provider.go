package minic

import (
	"os"
	"path/filepath"
	"strings"
)

// DirProvider is a FileProvider backed by a directory tree on disk, so the
// framework can ingest real codebases (the CLI's generate → index round
// trip, or any project with a compilation database).
type DirProvider struct {
	// Root is the base directory; include targets resolve relative to it.
	Root string
	// IncludeDirs are extra directories searched for includes (the -I
	// paths from a compilation database entry).
	IncludeDirs []string
	// SystemPrefixes marks files as system headers when their resolved
	// path (relative to Root) starts with one of these prefixes.
	SystemPrefixes []string
}

// ReadSource implements FileProvider: the name is resolved against Root
// first, then each include directory.
func (d *DirProvider) ReadSource(name string) (string, error) {
	candidates := []string{filepath.Join(d.Root, name)}
	for _, inc := range d.IncludeDirs {
		if filepath.IsAbs(inc) {
			candidates = append(candidates, filepath.Join(inc, name))
		} else {
			candidates = append(candidates, filepath.Join(d.Root, inc, name))
		}
	}
	var firstErr error
	for _, c := range candidates {
		data, err := os.ReadFile(c)
		if err == nil {
			return string(data), nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return "", firstErr
}

// IsSystem implements FileProvider.
func (d *DirProvider) IsSystem(name string) bool {
	for _, p := range d.SystemPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
