package minic

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *ASTNode {
	t.Helper()
	unit, err := ParseUnit(src, "test.cpp")
	if err != nil {
		t.Fatalf("parse error: %v\nsource:\n%s", err, src)
	}
	return unit
}

// countKind counts nodes of a kind in the AST.
func countKind(n *ASTNode, kind string) int {
	c := 0
	n.Walk(func(m *ASTNode) bool {
		if m.Kind == kind {
			c++
		}
		return true
	})
	return c
}

func findKind(n *ASTNode, kind string) *ASTNode {
	var out *ASTNode
	n.Walk(func(m *ASTNode) bool {
		if out == nil && m.Kind == kind {
			out = m
		}
		return out == nil
	})
	return out
}

func TestParseSimpleFunction(t *testing.T) {
	unit := parse(t, `
int add(int a, int b) {
	return a + b;
}
`)
	fn := findKind(unit, KFunctionDecl)
	if fn == nil || fn.Name != "add" {
		t.Fatalf("function not found: %v", fn)
	}
	if countKind(unit, KParmVarDecl) != 2 {
		t.Fatal("expected 2 parameters")
	}
	ret := findKind(unit, KReturnStmt)
	if ret == nil {
		t.Fatal("return not found")
	}
	bin := findKind(unit, KBinaryOperator)
	if bin == nil || bin.Extra != "+" {
		t.Fatalf("binary op: %v", bin)
	}
}

func TestParseSerialTriad(t *testing.T) {
	unit := parse(t, `
void triad(double *a, const double *b, const double *c, double scalar, int n) {
	for (int i = 0; i < n; i++) {
		a[i] = b[i] + scalar * c[i];
	}
}
`)
	if countKind(unit, KForStmt) != 1 {
		t.Fatal("for loop missing")
	}
	if countKind(unit, KArraySubscript) != 3 {
		t.Fatalf("subscripts = %d, want 3", countKind(unit, KArraySubscript))
	}
	if countKind(unit, KPointerType) != 3 {
		t.Fatalf("pointer types = %d, want 3", countKind(unit, KPointerType))
	}
	if countKind(unit, KConstQual) != 2 {
		t.Fatalf("const quals = %d, want 2", countKind(unit, KConstQual))
	}
}

func TestParseOpenMPPragma(t *testing.T) {
	unit := parse(t, `
void triad(double *a, double *b, double *c, double s, int n) {
	#pragma omp parallel for reduction(+:sum) num_threads(8)
	for (int i = 0; i < n; i++) {
		a[i] = b[i] + s * c[i];
	}
}
`)
	d := findKind(unit, KOMPDirective)
	if d == nil {
		t.Fatal("OMP directive not parsed")
	}
	if d.Extra != "omp_parallel_for" {
		t.Fatalf("directive name = %q", d.Extra)
	}
	clauses := 0
	var clauseNames []string
	for _, c := range d.Children {
		if c.Kind == KOMPClause {
			clauses++
			clauseNames = append(clauseNames, c.Extra)
		}
	}
	if clauses != 2 {
		t.Fatalf("clauses = %v", clauseNames)
	}
	// the associated for loop must be a child of the directive
	if findKind(d, KForStmt) == nil {
		t.Fatal("associated loop not attached to directive")
	}
}

func TestParseOpenMPTarget(t *testing.T) {
	unit := parse(t, `
void run(double *a, int n) {
	#pragma omp target teams distribute parallel for map(tofrom: a)
	for (int i = 0; i < n; i++) { a[i] = 0.0; }
}
`)
	d := findKind(unit, KOMPDirective)
	if d == nil || d.Extra != "omp_target_teams_distribute_parallel_for" {
		t.Fatalf("directive = %v", d)
	}
	var mapClause *ASTNode
	for _, c := range d.Children {
		if c.Kind == KOMPClause && c.Extra == "map" {
			mapClause = c
		}
	}
	if mapClause == nil || len(mapClause.Children) != 2 {
		t.Fatalf("map clause = %v", mapClause)
	}
}

func TestParseCUDAKernel(t *testing.T) {
	unit := parse(t, `
__global__ void triad_kernel(double *a, const double *b, const double *c, double s, int n) {
	int i = blockDim.x * blockIdx.x + threadIdx.x;
	if (i < n) {
		a[i] = b[i] + s * c[i];
	}
}

void triad(double *a, double *b, double *c, double s, int n) {
	triad_kernel<<<(n + 255) / 256, 256>>>(a, b, c, s, n);
	cudaDeviceSynchronize();
}
`)
	fn := findKind(unit, KFunctionDecl)
	if fn == nil || fn.Name != "triad_kernel" {
		t.Fatalf("kernel not first: %v", fn)
	}
	attr := findKind(fn, KAttr)
	if attr == nil || attr.Extra != "CUDAGlobal" {
		t.Fatalf("__global__ attr = %v", attr)
	}
	launch := findKind(unit, KCUDAKernelCallExpr)
	if launch == nil {
		t.Fatal("kernel launch not parsed")
	}
	// callee + 2 config + 5 args
	if len(launch.Children) != 8 {
		t.Fatalf("launch children = %d, want 8", len(launch.Children))
	}
	if findKind(unit, KMemberExpr) == nil {
		t.Fatal("blockDim.x member access missing")
	}
}

func TestParseSYCLSubmitLambda(t *testing.T) {
	unit := parse(t, `
void triad(sycl::queue &q, sycl::buffer<double, 1> &ba, int n) {
	q.submit([&](sycl::handler &h) {
		auto a = ba.get_access<sycl::access::mode::write>(h);
		h.parallel_for(sycl::range<1>(n), [=](sycl::id<1> i) {
			a[i] = 2.0;
		});
	});
	q.wait();
}
`)
	lambdas := countKind(unit, KLambdaExpr)
	if lambdas != 2 {
		t.Fatalf("lambdas = %d, want 2", lambdas)
	}
	var byRef, byVal bool
	unit.Walk(func(m *ASTNode) bool {
		if m.Kind == KLambdaExpr {
			if m.Extra == "&" {
				byRef = true
			}
			if m.Extra == "=" {
				byVal = true
			}
		}
		return true
	})
	if !byRef || !byVal {
		t.Fatal("capture defaults not recorded")
	}
	if countKind(unit, KTemplateArgList) < 2 {
		t.Fatal("template arguments on types/members missing")
	}
	member := findKind(unit, KMemberExpr)
	if member == nil {
		t.Fatal("member call missing")
	}
}

func TestParseKokkosStyle(t *testing.T) {
	// KOKKOS_LAMBDA is a macro (as in the real Kokkos headers); the parser
	// sees the preprocessed form.
	files := map[string]string{
		"triad.cpp": `#define KOKKOS_LAMBDA(arg) [=](arg)
void triad(view_t a, view_t b, view_t c, double s, int n) {
	Kokkos::parallel_for("triad", n, KOKKOS_LAMBDA(const int i) {
		a(i) = b(i) + s * c(i);
	});
}
`,
	}
	pp := NewPreprocessor(provider(files), nil)
	res, err := pp.Preprocess("triad.cpp")
	if err != nil {
		t.Fatal(err)
	}
	unit := parse(t, res.Text)
	// KOKKOS_LAMBDA is normally a macro; unexpanded it parses as a call
	call := findKind(unit, KCallExpr)
	if call == nil {
		t.Fatal("parallel_for call missing")
	}
	ref := findKind(unit, KDeclRefExpr)
	if ref == nil || ref.Name != "Kokkos::parallel_for" {
		t.Fatalf("qualified callee = %v", ref)
	}
}

func TestParseStdParStyle(t *testing.T) {
	unit := parse(t, `
void triad(double *a, const double *b, const double *c, double s, int n) {
	std::for_each(std::execution::par_unseq, counting_begin(0), counting_end(n), [=](int i) {
		a[i] = b[i] + s * c[i];
	});
}
`)
	if countKind(unit, KLambdaExpr) != 1 {
		t.Fatal("stdpar lambda missing")
	}
	ref := findKind(unit, KDeclRefExpr)
	if ref == nil || !strings.HasPrefix(ref.Name, "std::") {
		t.Fatalf("qualified name = %v", ref)
	}
}

func TestParseTemplatedMalloc(t *testing.T) {
	unit := parse(t, `
void alloc(sycl::queue &q, int n) {
	double *a = sycl::malloc_device<double>(n, q);
	sycl::free(a, q);
}
`)
	ref := findKind(unit, KDeclRefExpr)
	if ref == nil {
		t.Fatal("malloc_device ref missing")
	}
	if findKind(ref, KTemplateArgList) == nil {
		t.Fatal("call template args missing")
	}
}

func TestTemplateArgsVsComparison(t *testing.T) {
	unit := parse(t, `
void f(int a, int b, int n) {
	int x = a < b;
	int y = a > n;
	bool z = a < b && b > n;
}
`)
	// none of these may be parsed as template args
	if countKind(unit, KTemplateArgList) != 0 {
		t.Fatal("comparison misparsed as template args")
	}
	if countKind(unit, KBinaryOperator) < 4 {
		t.Fatalf("binops = %d", countKind(unit, KBinaryOperator))
	}
}

func TestParseStructAndTypedef(t *testing.T) {
	unit := parse(t, `
struct Atom {
	float x;
	float y;
	int type;
};
typedef struct Atom atom_t;
`)
	rec := findKind(unit, KRecordDecl)
	if rec == nil || rec.Name != "Atom" {
		t.Fatalf("record = %v", rec)
	}
	if countKind(rec, KFieldDecl) != 3 {
		t.Fatalf("fields = %d", countKind(rec, KFieldDecl))
	}
	td := findKind(unit, KTypedefDecl)
	if td == nil || td.Name != "atom_t" {
		t.Fatalf("typedef = %v", td)
	}
}

func TestParseStructWithMethods(t *testing.T) {
	unit := parse(t, `
struct range {
	int lo;
	int hi;
	range(int l, int h) {
		lo = l;
		hi = h;
	}
	int begin() const { return lo; }
	int size() { return hi - lo; }
};
`)
	rec := findKind(unit, KRecordDecl)
	fns := countKind(rec, KFunctionDecl)
	if fns != 3 {
		t.Fatalf("methods = %d, want 3", fns)
	}
	var ctor *ASTNode
	rec.Walk(func(m *ASTNode) bool {
		if m.Kind == KFunctionDecl && m.Extra == "ctor" {
			ctor = m
		}
		return true
	})
	if ctor == nil {
		t.Fatal("constructor not detected")
	}
}

func TestParseTemplateFunction(t *testing.T) {
	unit := parse(t, `
template <typename T, int N>
T reduce_sum(const T *data, int n) {
	T sum = T(0);
	for (int i = 0; i < n; i++) { sum += data[i]; }
	return sum;
}
`)
	td := findKind(unit, KTemplateDecl)
	if td == nil {
		t.Fatal("template decl missing")
	}
	args := findKind(td, KTemplateArgList)
	if args == nil || len(args.Children) != 2 {
		t.Fatalf("template params = %v", args)
	}
}

func TestParseNamespace(t *testing.T) {
	unit := parse(t, `
namespace sim {
namespace detail {
int helper() { return 1; }
}
int outer() { return detail::helper(); }
}
`)
	if countKind(unit, KNamespaceDecl) != 2 {
		t.Fatalf("namespaces = %d", countKind(unit, KNamespaceDecl))
	}
}

func TestParseControlFlow(t *testing.T) {
	unit := parse(t, `
int collatz(int n) {
	int steps = 0;
	while (n != 1) {
		if (n % 2 == 0) {
			n = n / 2;
		} else {
			n = 3 * n + 1;
		}
		steps++;
	}
	do { steps--; } while (steps > 100);
	for (;;) { break; }
	return steps;
}
`)
	for kind, want := range map[string]int{
		KWhileStmt: 1, KIfStmt: 1, KDoStmt: 1, KForStmt: 1,
		KBreakStmt: 1, KReturnStmt: 1,
	} {
		if got := countKind(unit, kind); got != want {
			t.Errorf("%s = %d, want %d", kind, got, want)
		}
	}
}

func TestParseExpressions(t *testing.T) {
	unit := parse(t, `
void f() {
	int a = 1 + 2 * 3;
	int b = (a << 2) | 1;
	int c = a > b ? a : b;
	bool d = !(a == b) && (a != c);
	a += b;
	a++;
	--b;
	double *p = new double[10];
	delete[] p;
	int s = sizeof(double);
}
`)
	if findKind(unit, KConditionalOp) == nil {
		t.Fatal("ternary missing")
	}
	if findKind(unit, KNewExpr) == nil || findKind(unit, KDeleteExpr) == nil {
		t.Fatal("new/delete missing")
	}
	if findKind(unit, KSizeofExpr) == nil {
		t.Fatal("sizeof missing")
	}
	// precedence: 1 + 2*3 must parse as +(1, *(2,3))
	var plus *ASTNode
	unit.Walk(func(m *ASTNode) bool {
		if plus == nil && m.Kind == KBinaryOperator && m.Extra == "+" {
			plus = m
		}
		return true
	})
	if plus == nil || plus.Children[1].Kind != KBinaryOperator || plus.Children[1].Extra != "*" {
		t.Fatal("precedence wrong for 1 + 2 * 3")
	}
}

func TestParseDirectInit(t *testing.T) {
	unit := parse(t, `
void f() {
	sycl::queue q(sycl::default_selector_v);
	std::vector<double> a(1024, 0.0);
}
`)
	calls := 0
	unit.Walk(func(m *ASTNode) bool {
		if m.Kind == KCallExpr && m.Extra == "construct" {
			calls++
		}
		return true
	})
	if calls != 2 {
		t.Fatalf("constructor calls = %d, want 2", calls)
	}
}

func TestParseUsing(t *testing.T) {
	unit := parse(t, `
using namespace std;
using real_t = double;
`)
	if countKind(unit, KUsingDecl) != 2 {
		t.Fatalf("using decls = %d", countKind(unit, KUsingDecl))
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := ParseUnit("int f() { return }", "bad.cpp")
	if err == nil {
		t.Fatal("expected parse error")
	}
	if !strings.Contains(err.Error(), "bad.cpp") {
		t.Fatalf("error lacks file: %v", err)
	}
}

func TestParseGlobalVariables(t *testing.T) {
	unit := parse(t, `
int global_count = 0;
double coeffs[4] = {1.0, 2.0, 3.0, 4.0};
static const int N = 1024;
`)
	if countKind(unit, KVarDecl) != 3 {
		t.Fatalf("vars = %d", countKind(unit, KVarDecl))
	}
	if findKind(unit, KInitListExpr) == nil {
		t.Fatal("init list missing")
	}
}

func TestParseCommaChainDecl(t *testing.T) {
	unit := parse(t, `
void f() {
	int i = 0, j = 1, k = 2;
}
`)
	if countKind(unit, KVarDecl) != 3 {
		t.Fatalf("vars = %d, want 3", countKind(unit, KVarDecl))
	}
}
