package minic

import (
	"strings"

	"silvervale/internal/srcloc"
	"silvervale/internal/tree"
)

// BuildSrcTree builds the T_src concrete-syntax tree from MiniC source.
//
// T_src is the perceived view of a unit: "a tokenised view of the source
// with nodes that represent syntactic elements ... conceptually similar to
// what syntax highlighters provide". Following Section IV.C, anonymous
// tokens (separators and braces) are filtered out, while identifiers are
// normalised to their token class so that TED never charges for
// programmer-chosen names. Function calls are distinguished from plain
// identifier references — the same distinction syntax highlighters make —
// and OpenMP pragmas contribute one node per clause word, which is why
// directive models look cheap at the T_src level.
//
// Structure comes from brace nesting and statement boundaries: each {...}
// region becomes a "block" subtree and each ;-terminated token run becomes
// a "stmt" subtree.
func BuildSrcTree(src, file string) *tree.Node {
	toks := Lex(src, LexOptions{File: file, KeepDirectives: true})
	return buildSrcTreeFromTokens(toks, file, cstC)
}

type cstDialect int

const (
	cstC cstDialect = iota
	cstFortran
)

func buildSrcTreeFromTokens(toks []Token, file string, dialect cstDialect) *tree.Node {
	root := tree.NewAt("unit:src", srcloc.Pos{File: file, Line: 1})
	stack := []*tree.Node{root}
	var pending []*tree.Node

	flush := func(label string) {
		if len(pending) == 0 {
			return
		}
		stmt := tree.NewAt(label, pending[0].Pos, pending...)
		top := stack[len(stack)-1]
		top.Add(stmt)
		pending = nil
	}

	for _, t := range toks {
		switch t.Kind {
		case TokEOF:
			continue
		case TokComment:
			continue
		case TokPragma:
			flush("stmt")
			top := stack[len(stack)-1]
			top.Add(pragmaSrcNode(t))
			continue
		case TokDirective:
			flush("stmt")
			top := stack[len(stack)-1]
			top.Add(directiveSrcNode(t))
			continue
		}
		if t.IsPunct("{") {
			block := tree.NewAt("block", t.Pos)
			if len(pending) > 0 {
				head := tree.NewAt("head", pending[0].Pos, pending...)
				block.Add(head)
				pending = nil
			}
			top := stack[len(stack)-1]
			top.Add(block)
			stack = append(stack, block)
			continue
		}
		if t.IsPunct("}") {
			flush("stmt")
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
			}
			continue
		}
		if t.IsPunct(";") {
			flush("stmt")
			continue
		}
		if n := srcTokenNode(t, dialect); n != nil {
			pending = append(pending, n)
		}
	}
	flush("stmt")
	return root
}

// srcTokenNode converts one token to a T_src leaf, or nil when the token is
// anonymous (separators carrying no highlighter class).
func srcTokenNode(t Token, dialect cstDialect) *tree.Node {
	switch t.Kind {
	case TokIdent:
		return tree.NewAt("ident", t.Pos)
	case TokKeyword:
		return tree.NewAt("kw:"+t.Text, t.Pos)
	case TokNumber:
		return tree.NewAt("number", t.Pos)
	case TokString:
		return tree.NewAt("string", t.Pos)
	case TokChar:
		return tree.NewAt("char", t.Pos)
	case TokPunct:
		if isOperatorPunct(t.Text) {
			return tree.NewAt("op:"+t.Text, t.Pos)
		}
		if dialect == cstC && (t.Text == "<<<" || t.Text == ">>>") {
			// kernel-launch chevrons are highlighted as a distinct element
			return tree.NewAt("launch", t.Pos)
		}
		return nil // anonymous token: ( ) [ ] , :: etc.
	}
	return nil
}

func isOperatorPunct(s string) bool {
	switch s {
	case "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~", "?",
		"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
		"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--", "->", ".":
		return true
	}
	return false
}

// pragmaSrcNode renders a #pragma line as a small subtree: one node for the
// pragma plus one child per clause word. This is the T_src-level cost of a
// directive — a handful of nodes — in contrast with the structured
// semantic subtree the frontend AST builds for the same line.
func pragmaSrcNode(t Token) *tree.Node {
	n := tree.NewAt("pragma", t.Pos)
	for _, w := range pragmaWords(t.Text) {
		n.Add(tree.NewAt("pragma-word:"+w, t.Pos))
	}
	return n
}

func directiveSrcNode(t Token) *tree.Node {
	dir, _ := splitDirective(t.Text)
	return tree.NewAt("directive:"+dir, t.Pos)
}

// pragmaWords tokenises the clause words of a pragma line, dropping
// argument parentheses contents ("reduction(+:sum)" -> "reduction").
func pragmaWords(text string) []string {
	s := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "#"))
	s = strings.TrimSpace(strings.TrimPrefix(s, "pragma"))
	var words []string
	depth := 0
	cur := strings.Builder{}
	emit := func() {
		if cur.Len() > 0 {
			words = append(words, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '(':
			depth++
			emit()
		case c == ')':
			depth--
		case depth > 0:
			// skip clause arguments
		case c == ' ' || c == '\t' || c == ',':
			emit()
		default:
			cur.WriteByte(c)
		}
	}
	emit()
	return words
}
