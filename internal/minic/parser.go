package minic

import (
	"fmt"
	"strings"

	"silvervale/internal/obs"
	"silvervale/internal/srcloc"
)

// ParseUnit parses preprocessed MiniC source into a frontend AST rooted at
// a TranslationUnit. The file name is recorded in positions; when the
// source came out of the preprocessor, origins should be remapped with
// PPResult.LineOrigin before coverage masking.
func ParseUnit(src, file string) (*ASTNode, error) {
	return ParseUnitObs(src, file, nil)
}

// ParseUnitObs is ParseUnit with per-phase observability: the lex and
// parse phases record "frontend.lex" / "frontend.parse" child spans under
// parent, plus a "frontend.tokens" counter. A nil parent is the plain
// uninstrumented ParseUnit.
func ParseUnitObs(src, file string, parent *obs.Span) (*ASTNode, error) {
	lsp := parent.Start("frontend.lex")
	toks := Lex(src, LexOptions{File: file})
	lsp.End()
	parent.Recorder().Counter("frontend.tokens").Add(int64(len(toks)))
	psp := parent.Start("frontend.parse")
	defer psp.End()
	p := &parser{toks: toks, file: file}
	unit := NewAST(KTranslationUnit, srcloc.Pos{File: file, Line: 1})
	for !p.atEOF() {
		d, err := p.parseTopDecl()
		if err != nil {
			return nil, err
		}
		if d != nil {
			unit.Add(d)
		}
	}
	return unit, nil
}

type parser struct {
	toks []Token
	pos  int
	file string
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *parser) peekTok(n int) Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() Token {
	t := p.cur()
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(k TokKind, text string) bool {
	if p.cur().Is(k, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectPunct(text string) error {
	if p.accept(TokPunct, text) {
		return nil
	}
	return p.errorf("expected %q, found %s", text, p.cur())
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("minic: %s: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

// --- declarations -----------------------------------------------------------

func (p *parser) parseTopDecl() (*ASTNode, error) {
	t := p.cur()
	switch {
	case t.Kind == TokPragma:
		p.next()
		return parsePragma(t, nil), nil
	case t.IsKeyword("using"):
		return p.parseUsing()
	case t.IsKeyword("namespace"):
		return p.parseNamespace()
	case t.IsKeyword("template"):
		return p.parseTemplateDecl()
	case t.IsKeyword("typedef"):
		return p.parseTypedef()
	case t.IsKeyword("struct") || t.IsKeyword("class"):
		// could be a record definition or a `struct X var;` declaration
		if p.peekTok(1).Kind == TokIdent &&
			(p.peekTok(2).IsPunct("{") || p.peekTok(2).IsPunct(":")) {
			return p.parseRecord()
		}
		return p.parseVarOrFunc()
	case t.IsPunct(";"):
		p.next()
		return nil, nil
	default:
		return p.parseVarOrFunc()
	}
}

func (p *parser) parseUsing() (*ASTNode, error) {
	pos := p.cur().Pos
	p.next() // using
	n := NewAST(KUsingDecl, pos)
	if p.cur().IsKeyword("namespace") {
		p.next()
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		n.Name = name
		n.Extra = "namespace"
	} else {
		name := p.next().Text
		n.Name = name
		if p.accept(TokPunct, "=") {
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			n.Add(ty)
			n.Extra = "alias"
		}
	}
	return n, p.expectPunct(";")
}

func (p *parser) parseNamespace() (*ASTNode, error) {
	pos := p.cur().Pos
	p.next() // namespace
	n := NewAST(KNamespaceDecl, pos)
	if p.cur().Kind == TokIdent {
		n.Name = p.next().Text
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.cur().IsPunct("}") && !p.atEOF() {
		d, err := p.parseTopDecl()
		if err != nil {
			return nil, err
		}
		if d != nil {
			n.Add(d)
		}
	}
	return n, p.expectPunct("}")
}

func (p *parser) parseTemplateDecl() (*ASTNode, error) {
	pos := p.cur().Pos
	p.next() // template
	n := NewAST(KTemplateDecl, pos)
	if err := p.expectPunct("<"); err != nil {
		return nil, err
	}
	params := NewAST(KTemplateArgList, pos)
	for !p.cur().IsPunct(">") && !p.atEOF() {
		argPos := p.cur().Pos
		arg := NewAST(KTemplateArg, argPos)
		// typename T / class T / int N
		for !p.cur().IsPunct(",") && !p.cur().IsPunct(">") && !p.atEOF() {
			tok := p.next()
			if arg.Extra == "" && (tok.IsKeyword("typename") || tok.IsKeyword("class")) {
				arg.Extra = "type"
			}
			arg.Name = tok.Text
		}
		params.Add(arg)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if err := p.expectPunct(">"); err != nil {
		return nil, err
	}
	n.Add(params)
	inner, err := p.parseTopDecl()
	if err != nil {
		return nil, err
	}
	if inner != nil {
		n.Add(inner)
		n.Name = inner.Name
	}
	return n, nil
}

func (p *parser) parseTypedef() (*ASTNode, error) {
	pos := p.cur().Pos
	p.next() // typedef
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name := p.next().Text
	n := NewAST(KTypedefDecl, pos, ty)
	n.Name = name
	return n, p.expectPunct(";")
}

func (p *parser) parseRecord() (*ASTNode, error) {
	pos := p.cur().Pos
	kw := p.next().Text // struct/class
	n := NewAST(KRecordDecl, pos)
	n.Extra = kw
	if p.cur().Kind == TokIdent {
		n.Name = p.next().Text
	}
	if p.accept(TokPunct, ":") { // base class — skip to {
		for !p.cur().IsPunct("{") && !p.atEOF() {
			p.next()
		}
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.cur().IsPunct("}") && !p.atEOF() {
		if p.cur().IsKeyword("public") || p.cur().IsKeyword("private") {
			p.next()
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			continue
		}
		if p.cur().IsKeyword("template") {
			m, err := p.parseTemplateDecl()
			if err != nil {
				return nil, err
			}
			n.Add(m)
			continue
		}
		member, err := p.parseMember(n.Name)
		if err != nil {
			return nil, err
		}
		if member != nil {
			n.Add(member)
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return n, p.expectPunct(";")
}

// parseMember parses a field or a method inside a record. recordName
// identifies constructors (method whose name matches the record).
func (p *parser) parseMember(recordName string) (*ASTNode, error) {
	if p.accept(TokPunct, ";") {
		return nil, nil
	}
	attrs := p.parseAttrs()
	// constructor: identifier matching the record name directly followed by (
	if p.cur().Kind == TokIdent && p.cur().Text == recordName && p.peekTok(1).IsPunct("(") {
		pos := p.cur().Pos
		name := p.next().Text
		fn := NewAST(KFunctionDecl, pos)
		fn.Name = name
		fn.Extra = "ctor"
		fn.Add(attrs...)
		if err := p.parseFuncRest(fn); err != nil {
			return nil, err
		}
		return fn, nil
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if p.cur().IsKeyword("operator") {
		pos := p.cur().Pos
		p.next()
		var op strings.Builder
		if p.cur().IsPunct("(") && p.peekTok(1).IsPunct(")") {
			// operator() — the call operator's parens are part of the name
			p.next()
			p.next()
			op.WriteString("()")
		} else if p.cur().IsPunct("[") && p.peekTok(1).IsPunct("]") {
			p.next()
			p.next()
			op.WriteString("[]")
		}
		for !p.cur().IsPunct("(") && !p.atEOF() {
			op.WriteString(p.next().Text)
		}
		fn := NewAST(KFunctionDecl, pos, ty)
		fn.Name = "operator" + op.String()
		fn.Extra = "operator"
		fn.Add(attrs...)
		if err := p.parseFuncRest(fn); err != nil {
			return nil, err
		}
		return fn, nil
	}
	namePos := p.cur().Pos
	name := p.next().Text
	if p.cur().IsPunct("(") {
		fn := NewAST(KFunctionDecl, namePos, ty)
		fn.Name = name
		fn.Add(attrs...)
		if err := p.parseFuncRest(fn); err != nil {
			return nil, err
		}
		return fn, nil
	}
	f := NewAST(KFieldDecl, namePos, ty)
	f.Name = name
	for p.accept(TokPunct, "[") {
		f.Extra = "array"
		sz, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Add(sz)
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if p.accept(TokPunct, "=") {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Add(init)
	}
	return f, p.expectPunct(";")
}

// parseAttrs consumes leading attributes/storage specifiers and returns
// them as Attr nodes.
func (p *parser) parseAttrs() []*ASTNode {
	var out []*ASTNode
	for {
		t := p.cur()
		var extra string
		switch {
		case t.IsKeyword("__global__"):
			extra = "CUDAGlobal"
		case t.IsKeyword("__device__"):
			extra = "CUDADevice"
		case t.IsKeyword("__host__"):
			extra = "CUDAHost"
		case t.IsKeyword("__forceinline__"):
			extra = "ForceInline"
		case t.IsKeyword("__shared__"):
			extra = "CUDAShared"
		case t.IsKeyword("static"):
			extra = "Static"
		case t.IsKeyword("inline"):
			extra = "Inline"
		case t.IsKeyword("extern"):
			extra = "Extern"
		case t.IsKeyword("__launch_bounds__"):
			p.next()
			a := NewAST(KAttr, t.Pos)
			a.Extra = "LaunchBounds"
			if p.accept(TokPunct, "(") {
				for !p.cur().IsPunct(")") && !p.atEOF() {
					p.next()
				}
				p.next()
			}
			out = append(out, a)
			continue
		default:
			return out
		}
		p.next()
		a := NewAST(KAttr, t.Pos)
		a.Extra = extra
		out = append(out, a)
	}
}

// parseVarOrFunc parses a top-level function or variable declaration.
func (p *parser) parseVarOrFunc() (*ASTNode, error) {
	attrs := p.parseAttrs()
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokIdent {
		return nil, p.errorf("expected declarator name, found %s", p.cur())
	}
	namePos := p.cur().Pos
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	if p.cur().IsPunct("(") {
		fn := NewAST(KFunctionDecl, namePos, ty)
		fn.Name = name
		fn.Add(attrs...)
		if err := p.parseFuncRest(fn); err != nil {
			return nil, err
		}
		return fn, nil
	}
	return p.parseVarRest(namePos, name, ty, attrs)
}

// parseFuncRest parses "(params) [const] (; | body)" after the name.
func (p *parser) parseFuncRest(fn *ASTNode) error {
	if err := p.expectPunct("("); err != nil {
		return err
	}
	for !p.cur().IsPunct(")") && !p.atEOF() {
		pd, err := p.parseParam()
		if err != nil {
			return err
		}
		fn.Add(pd)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	p.accept(TokKeyword, "const") // const methods
	if p.accept(TokPunct, ";") {
		return nil // prototype
	}
	if p.accept(TokPunct, ":") { // ctor initialiser list — skip to {
		for !p.cur().IsPunct("{") && !p.atEOF() {
			p.next()
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fn.Add(body)
	return nil
}

func (p *parser) parseParam() (*ASTNode, error) {
	pos := p.cur().Pos
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	pd := NewAST(KParmVarDecl, pos, ty)
	if p.cur().Kind == TokIdent {
		pd.Name = p.next().Text
	}
	for p.accept(TokPunct, "[") { // array parameter
		for !p.cur().IsPunct("]") && !p.atEOF() {
			p.next()
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if p.accept(TokPunct, "=") { // default argument
		dflt, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		pd.Add(dflt)
	}
	return pd, nil
}

// parseVarRest parses declarators after "type name": arrays, initialisers,
// comma chains, the terminating semicolon.
func (p *parser) parseVarRest(pos srcloc.Pos, name string, ty *ASTNode, attrs []*ASTNode) (*ASTNode, error) {
	ds := NewAST(KDeclStmt, pos)
	for {
		v := NewAST(KVarDecl, pos, ty.Clone())
		v.Name = name
		v.Add(attrs...)
		for p.accept(TokPunct, "[") {
			v.Extra = "array" // ConstantArrayType in ClangAST terms
			sz, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			v.Add(sz)
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
		}
		switch {
		case p.accept(TokPunct, "="):
			init, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			v.Add(init)
		case p.cur().IsPunct("{"):
			init, err := p.parseInitList()
			if err != nil {
				return nil, err
			}
			v.Add(init)
		case p.cur().IsPunct("("):
			// direct initialisation: queue q(device);
			p.next()
			call := NewAST(KCallExpr, pos)
			call.Extra = "construct"
			for !p.cur().IsPunct(")") && !p.atEOF() {
				arg, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Add(arg)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			v.Add(call)
		}
		ds.Add(v)
		if !p.accept(TokPunct, ",") {
			break
		}
		pos = p.cur().Pos
		var err error
		name, err = p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
	}
	return ds, p.expectPunct(";")
}

func (p *parser) parseInitializer() (*ASTNode, error) {
	if p.cur().IsPunct("{") {
		return p.parseInitList()
	}
	return p.parseAssignExpr()
}

func (p *parser) parseInitList() (*ASTNode, error) {
	pos := p.cur().Pos
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	n := NewAST(KInitListExpr, pos)
	for !p.cur().IsPunct("}") && !p.atEOF() {
		e, err := p.parseInitializer()
		if err != nil {
			return nil, err
		}
		n.Add(e)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	return n, p.expectPunct("}")
}

// --- types ------------------------------------------------------------------

// parseType parses a type: qualifiers, base (builtin or qualified record
// name with optional template arguments), pointer/reference suffixes.
func (p *parser) parseType() (*ASTNode, error) {
	pos := p.cur().Pos
	constQual := false
	for {
		if p.accept(TokKeyword, "const") {
			constQual = true
			continue
		}
		break
	}
	var base *ASTNode
	t := p.cur()
	switch {
	case t.Kind == TokKeyword && IsTypeKeyword(t.Text):
		// builtin, possibly multi-word (unsigned long long)
		var words []string
		for p.cur().Kind == TokKeyword && IsTypeKeyword(p.cur().Text) {
			words = append(words, p.next().Text)
		}
		spelled := strings.Join(words, "_")
		if spelled == "auto" {
			base = NewAST(KAutoType, pos)
		} else {
			base = NewAST(KBuiltinType, pos)
			base.Extra = spelled
		}
	case t.IsKeyword("struct") || t.IsKeyword("class") || t.IsKeyword("typename"):
		p.next()
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		base = NewAST(KRecordType, pos)
		base.Name = name
	case t.Kind == TokIdent:
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		base = NewAST(KRecordType, pos)
		base.Name = name
	default:
		return nil, p.errorf("expected type, found %s", t)
	}
	// template arguments
	if p.cur().IsPunct("<") && base.Kind == KRecordType {
		args, err := p.parseTemplateArgs()
		if err != nil {
			return nil, err
		}
		spec := NewAST(KTemplateSpecType, pos, base, args)
		spec.Name = base.Name
		base = spec
	}
	if constQual {
		base = NewAST(KConstQual, pos, base)
	}
	for {
		t := p.cur()
		switch {
		case t.IsPunct("*"):
			p.next()
			base = NewAST(KPointerType, t.Pos, base)
		case t.IsPunct("&"):
			p.next()
			base = NewAST(KReferenceType, t.Pos, base)
		case t.IsKeyword("const"):
			p.next()
			base = NewAST(KConstQual, t.Pos, base)
		case t.IsKeyword("__restrict__"):
			p.next() // qualifier without tree representation
		default:
			return base, nil
		}
	}
}

// parseTemplateArgs parses `<arg, ...>` where each arg is a type or an
// expression (integer constants, identifiers).
func (p *parser) parseTemplateArgs() (*ASTNode, error) {
	pos := p.cur().Pos
	if err := p.expectPunct("<"); err != nil {
		return nil, err
	}
	list := NewAST(KTemplateArgList, pos)
	for !p.cur().IsPunct(">") && !p.atEOF() {
		argPos := p.cur().Pos
		arg := NewAST(KTemplateArg, argPos)
		inner, err := p.parseTemplateArg()
		if err != nil {
			return nil, err
		}
		arg.Add(inner)
		list.Add(arg)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	return list, p.expectPunct(">")
}

func (p *parser) parseTemplateArg() (*ASTNode, error) {
	t := p.cur()
	switch {
	case t.Kind == TokKeyword && IsTypeKeyword(t.Text):
		return p.parseType()
	case t.Kind == TokNumber:
		p.next()
		n := NewAST(KIntegerLiteral, t.Pos)
		n.Extra = t.Text
		return n, nil
	case t.Kind == TokIdent || t.IsKeyword("const"):
		return p.parseType()
	default:
		return nil, p.errorf("unsupported template argument %s", t)
	}
}

// parseQualifiedName parses ident(::ident)* and returns the joined
// spelling.
func (p *parser) parseQualifiedName() (string, error) {
	if p.cur().Kind != TokIdent {
		return "", p.errorf("expected identifier, found %s", p.cur())
	}
	name := p.next().Text
	for p.cur().IsPunct("::") && p.peekTok(1).Kind == TokIdent {
		p.next()
		name += "::" + p.next().Text
	}
	return name, nil
}

// --- statements -------------------------------------------------------------

func (p *parser) parseBlock() (*ASTNode, error) {
	pos := p.cur().Pos
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	blk := NewAST(KCompoundStmt, pos)
	for !p.cur().IsPunct("}") && !p.atEOF() {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			blk.Add(s)
		}
	}
	return blk, p.expectPunct("}")
}

func (p *parser) parseStmt() (*ASTNode, error) {
	t := p.cur()
	switch {
	case t.Kind == TokPragma:
		p.next()
		// A pragma at statement level associates with the next statement
		// (its structured block), like OpenMP executable directives.
		var body *ASTNode
		if !p.cur().IsPunct("}") && !p.atEOF() {
			b, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			body = b
		}
		return parsePragma(t, body), nil
	case t.IsPunct("{"):
		return p.parseBlock()
	case t.IsPunct(";"):
		p.next()
		return NewAST(KNullStmt, t.Pos), nil
	case t.IsKeyword("if"):
		return p.parseIf()
	case t.IsKeyword("for"):
		return p.parseFor()
	case t.IsKeyword("while"):
		return p.parseWhile()
	case t.IsKeyword("do"):
		return p.parseDoWhile()
	case t.IsKeyword("return"):
		p.next()
		n := NewAST(KReturnStmt, t.Pos)
		if !p.cur().IsPunct(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			n.Add(e)
		}
		return n, p.expectPunct(";")
	case t.IsKeyword("break"):
		p.next()
		return NewAST(KBreakStmt, t.Pos), p.expectPunct(";")
	case t.IsKeyword("continue"):
		p.next()
		return NewAST(KContinueStmt, t.Pos), p.expectPunct(";")
	default:
		if p.startsDecl() {
			attrs := p.parseAttrs()
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			pos := p.cur().Pos
			name, err := p.parseQualifiedName()
			if err != nil {
				return nil, err
			}
			return p.parseVarRest(pos, name, ty, attrs)
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		n := NewAST(KExprStmt, t.Pos, e)
		return n, p.expectPunct(";")
	}
}

// startsDecl decides whether the upcoming tokens begin a declaration.
func (p *parser) startsDecl() bool {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch {
		case IsTypeKeyword(t.Text), t.Text == "const", t.Text == "static",
			t.Text == "struct", t.Text == "class", t.Text == "__shared__":
			return true
		}
		return false
	}
	if t.Kind != TokIdent {
		return false
	}
	// IDENT templargs? (::IDENT)* followed by another IDENT => declaration
	// like `sycl::queue q` or `Kokkos::View<double*> a`.
	i := p.pos
	depth := 0
	for i < len(p.toks) {
		tok := p.toks[i]
		if depth == 0 {
			switch {
			case tok.Kind == TokIdent:
				nxt := p.toks[minIdx(i+1, len(p.toks)-1)]
				if nxt.Kind == TokIdent {
					return true
				}
				if nxt.IsPunct("::") || nxt.IsPunct("<") {
					i++
					if nxt.IsPunct("<") {
						depth++
						i++
					} else {
						i++
					}
					continue
				}
				if nxt.IsPunct("*") || nxt.IsPunct("&") {
					// `T* x` vs `a * b`: treat as declaration only when the
					// token after is an identifier followed by ; = [ or ,
					after := p.toks[minIdx(i+2, len(p.toks)-1)]
					if after.Kind == TokIdent {
						fin := p.toks[minIdx(i+3, len(p.toks)-1)]
						if fin.IsPunct(";") || fin.IsPunct("=") || fin.IsPunct(",") || fin.IsPunct("[") || fin.IsPunct("(") {
							return true
						}
					}
					return false
				}
				return false
			default:
				return false
			}
		}
		// inside template args
		switch {
		case tok.IsPunct("<"):
			depth++
		case tok.IsPunct(">"):
			depth--
			if depth == 0 {
				nxt := p.toks[minIdx(i+1, len(p.toks)-1)]
				if nxt.Kind == TokIdent {
					return true
				}
				if nxt.IsPunct("*") || nxt.IsPunct("&") {
					after := p.toks[minIdx(i+2, len(p.toks)-1)]
					return after.Kind == TokIdent
				}
				return false
			}
		case tok.IsPunct(";"), tok.IsPunct("{"), tok.Kind == TokEOF:
			return false
		}
		i++
	}
	return false
}

func minIdx(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) parseIf() (*ASTNode, error) {
	pos := p.cur().Pos
	p.next() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	n := NewAST(KIfStmt, pos, cond, then)
	if p.accept(TokKeyword, "else") {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		n.Add(els)
	}
	return n, nil
}

func (p *parser) parseFor() (*ASTNode, error) {
	pos := p.cur().Pos
	p.next() // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	n := NewAST(KForStmt, pos)
	// init
	if p.cur().IsPunct(";") {
		p.next()
		n.Add(NewAST(KNullStmt, pos))
	} else {
		init, err := p.parseStmt() // consumes ';'
		if err != nil {
			return nil, err
		}
		n.Add(init)
	}
	// condition
	if p.cur().IsPunct(";") {
		n.Add(NewAST(KNullStmt, pos))
	} else {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		n.Add(cond)
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	// increment
	if p.cur().IsPunct(")") {
		n.Add(NewAST(KNullStmt, pos))
	} else {
		inc, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		n.Add(inc)
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	n.Add(body)
	return n, nil
}

func (p *parser) parseWhile() (*ASTNode, error) {
	pos := p.cur().Pos
	p.next() // while
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return NewAST(KWhileStmt, pos, cond, body), nil
}

func (p *parser) parseDoWhile() (*ASTNode, error) {
	pos := p.cur().Pos
	p.next() // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.accept(TokKeyword, "while") {
		return nil, p.errorf("expected while after do body")
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return NewAST(KDoStmt, pos, body, cond), p.expectPunct(";")
}

// --- expressions ------------------------------------------------------------

func (p *parser) parseExpr() (*ASTNode, error) { return p.parseAssignExpr() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) parseAssignExpr() (*ASTNode, error) {
	lhs, err := p.parseConditional()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct && assignOps[t.Text] {
		p.next()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		n := NewAST(KBinaryOperator, t.Pos, lhs, rhs)
		n.Extra = t.Text
		return n, nil
	}
	return lhs, nil
}

func (p *parser) parseConditional() (*ASTNode, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.cur().IsPunct("?") {
		pos := p.cur().Pos
		p.next()
		then, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		els, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return NewAST(KConditionalOp, pos, cond, then, els), nil
	}
	return cond, nil
}

var binaryPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseBinary(minPrec int) (*ASTNode, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binaryPrec[t.Text]
		if t.Kind != TokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		n := NewAST(KBinaryOperator, t.Pos, lhs, rhs)
		n.Extra = t.Text
		lhs = n
	}
}

func (p *parser) parseUnary() (*ASTNode, error) {
	t := p.cur()
	switch {
	case t.IsPunct("!") || t.IsPunct("~") || t.IsPunct("-") || t.IsPunct("+") ||
		t.IsPunct("*") || t.IsPunct("&") || t.IsPunct("++") || t.IsPunct("--"):
		p.next()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		n := NewAST(KUnaryOperator, t.Pos, operand)
		n.Extra = t.Text
		return n, nil
	case t.IsKeyword("sizeof"):
		p.next()
		n := NewAST(KSizeofExpr, t.Pos)
		n.Extra = "sizeof"
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.cur().Kind == TokKeyword && IsTypeKeyword(p.cur().Text) {
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			n.Add(ty)
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			n.Add(e)
		}
		return n, p.expectPunct(")")
	case t.IsKeyword("new"):
		p.next()
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		n := NewAST(KNewExpr, t.Pos, ty)
		if p.accept(TokPunct, "[") {
			sz, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			n.Add(sz)
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
		}
		return p.parsePostfixOps(n)
	case t.IsKeyword("delete"):
		p.next()
		if p.accept(TokPunct, "[") {
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
		}
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NewAST(KDeleteExpr, t.Pos, operand), nil
	default:
		return p.parsePostfix()
	}
}

func (p *parser) parsePostfix() (*ASTNode, error) {
	prim, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return p.parsePostfixOps(prim)
}

func (p *parser) parsePostfixOps(expr *ASTNode) (*ASTNode, error) {
	for {
		t := p.cur()
		switch {
		case t.IsPunct("("):
			p.next()
			call := NewAST(KCallExpr, t.Pos, expr)
			for !p.cur().IsPunct(")") && !p.atEOF() {
				arg, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Add(arg)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			expr = call
		case t.IsPunct("<<<"):
			// CUDA/HIP kernel launch: callee<<<grid, block>>>(args)
			p.next()
			launch := NewAST(KCUDAKernelCallExpr, t.Pos, expr)
			for !p.cur().IsPunct(">>>") && !p.atEOF() {
				cfg, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				launch.Add(cfg)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if err := p.expectPunct(">>>"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for !p.cur().IsPunct(")") && !p.atEOF() {
				arg, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				launch.Add(arg)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			expr = launch
		case t.IsPunct("["):
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			expr = NewAST(KArraySubscript, t.Pos, expr, idx)
		case t.IsPunct(".") || t.IsPunct("->"):
			p.next()
			if p.cur().Kind != TokIdent && !p.cur().IsKeyword("operator") {
				return nil, p.errorf("expected member name, found %s", p.cur())
			}
			m := NewAST(KMemberExpr, t.Pos, expr)
			m.Name = p.next().Text
			m.Extra = t.Text
			// member template args: buf.get_access<mode::read>(h)
			if p.cur().IsPunct("<") && p.looksLikeTemplateArgs() {
				args, err := p.parseTemplateArgs()
				if err != nil {
					return nil, err
				}
				m.Add(args)
			}
			expr = m
		case t.IsPunct("++") || t.IsPunct("--"):
			p.next()
			n := NewAST(KUnaryOperator, t.Pos, expr)
			n.Extra = "post" + t.Text
			expr = n
		default:
			return expr, nil
		}
	}
}

// looksLikeTemplateArgs speculatively checks whether the `<` at the current
// position opens a template argument list: a matching `>` on the same
// nesting level followed by `(`.
func (p *parser) looksLikeTemplateArgs() bool {
	depth := 0
	for i := p.pos; i < len(p.toks) && i < p.pos+64; i++ {
		t := p.toks[i]
		switch {
		case t.IsPunct("<"):
			depth++
		case t.IsPunct(">"):
			depth--
			if depth == 0 {
				nxt := p.toks[minIdx(i+1, len(p.toks)-1)]
				return nxt.IsPunct("(")
			}
		case t.IsPunct(";"), t.IsPunct("{"), t.IsPunct("}"), t.Kind == TokEOF:
			return false
		case t.Kind == TokPunct && binaryPrec[t.Text] > 0 && t.Text != "<" && t.Text != ">" && t.Text != "*" && t.Text != "&":
			return false
		}
	}
	return false
}

func (p *parser) parsePrimary() (*ASTNode, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") && !strings.HasPrefix(t.Text, "0x") {
			n := NewAST(KFloatingLiteral, t.Pos)
			n.Extra = t.Text
			return n, nil
		}
		n := NewAST(KIntegerLiteral, t.Pos)
		n.Extra = t.Text
		return n, nil
	case t.Kind == TokString:
		p.next()
		// the raw text lives in Name: available to the interpreter but —
		// like all names — absent from T_sem labels
		n := NewAST(KStringLiteral, t.Pos)
		n.Name = t.Text
		return n, nil
	case t.Kind == TokChar:
		p.next()
		return NewAST(KCharLiteral, t.Pos), nil
	case t.IsKeyword("true") || t.IsKeyword("false"):
		p.next()
		n := NewAST(KBoolLiteral, t.Pos)
		n.Extra = t.Text
		return n, nil
	case t.IsKeyword("nullptr"):
		p.next()
		return NewAST(KNullptrLiteral, t.Pos), nil
	case t.IsKeyword("__syncthreads"):
		p.next()
		ref := NewAST(KDeclRefExpr, t.Pos)
		ref.Name = "__syncthreads"
		return ref, nil
	case t.Kind == TokKeyword && IsTypeKeyword(t.Text):
		// functional cast: double(x)
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if p.cur().IsPunct("(") {
			return ty, nil // handled as CallExpr by postfix
		}
		return ty, nil
	case t.IsPunct("("):
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return NewAST(KParenExpr, t.Pos, e), nil
	case t.IsPunct("["):
		return p.parseLambda()
	case t.IsPunct("{"):
		return p.parseInitList()
	case t.Kind == TokIdent:
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		ref := NewAST(KDeclRefExpr, t.Pos)
		ref.Name = name
		// template args on a call: sycl::malloc_device<double>(...)
		if p.cur().IsPunct("<") && p.looksLikeTemplateArgs() {
			args, err := p.parseTemplateArgs()
			if err != nil {
				return nil, err
			}
			ref.Add(args)
		}
		return ref, nil
	default:
		return nil, p.errorf("unexpected token %s in expression", t)
	}
}

// parseLambda parses [capture](params) -> ret? { body }.
func (p *parser) parseLambda() (*ASTNode, error) {
	pos := p.cur().Pos
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	n := NewAST(KLambdaExpr, pos)
	for !p.cur().IsPunct("]") && !p.atEOF() {
		t := p.next()
		switch {
		case t.IsPunct("=") && n.Extra == "":
			n.Extra = "=" // capture-by-value default
		case t.IsPunct("&") && n.Extra == "":
			n.Extra = "&" // capture-by-reference default
		case t.Kind == TokIdent:
			cap := NewAST(KDeclRefExpr, t.Pos)
			cap.Name = t.Text
			cap.Extra = "capture"
			n.Add(cap)
		}
		p.accept(TokPunct, ",")
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	if p.cur().IsPunct("(") {
		p.next()
		for !p.cur().IsPunct(")") && !p.atEOF() {
			pd, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			n.Add(pd)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if p.accept(TokPunct, "->") {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		n.Add(ty)
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	n.Add(body)
	return n, nil
}

// --- pragmas ----------------------------------------------------------------

// parsePragma turns a #pragma token into a structured OMPExecutableDirective
// AST node: the directive name goes to Extra, every clause becomes an
// OMPClause child, and the associated statement (if any) is the final
// child. This models the Clang property the paper highlights: "OpenMP
// pragmas provide additional semantics beyond those of the base language",
// visible only at the T_sem level.
func parsePragma(t Token, body *ASTNode) *ASTNode {
	name, clauses := splitPragma(t.Text)
	n := NewAST(KOMPDirective, t.Pos)
	n.Extra = name
	// Each construct level of a (combined) directive makes the compiler
	// synthesize an implicit captured region with its own captured
	// declaration — the subtree "handled at the compiler level" that gives
	// directives their T_sem weight despite a tiny source footprint.
	for _, w := range strings.Split(name, "_") {
		if w == "omp" || w == "acc" || w == "" {
			continue
		}
		impl := NewAST("OMPCapturedRegion", t.Pos)
		impl.Extra = w
		impl.Add(NewAST("CapturedDecl", t.Pos))
		n.Add(impl)
	}
	for _, c := range clauses {
		cl := NewAST(KOMPClause, t.Pos)
		cl.Extra = c.name
		for _, a := range c.args {
			arg := NewAST(KDeclRefExpr, t.Pos)
			arg.Name = a
			cl.Add(arg)
		}
		n.Add(cl)
	}
	if body != nil {
		n.Add(body)
	}
	return n
}

type pragmaClause struct {
	name string
	args []string
}

// directive keywords that chain into a combined directive name (e.g.
// "omp target teams distribute parallel for simd").
var directiveWords = map[string]bool{
	"omp": true, "acc": true, "parallel": true, "for": true, "target": true,
	"teams": true, "distribute": true, "simd": true, "taskloop": true,
	"sections": true, "section": true, "single": true, "master": true,
	"critical": true, "barrier": true, "atomic": true, "data": true,
	"enter": true, "exit": true, "declare": true, "end": true,
	"kernels": true, "loop": true, "update": true, "unroll": true,
	"do": true, "workshare": true,
}

// ParsePragmaText exposes structured directive parsing to other frontends
// (MiniFortran routes `!$omp` directive comments through the same
// machinery, mirroring how GCC represents OpenMP with dedicated AST
// tokens).
func ParsePragmaText(text string, pos srcloc.Pos, body *ASTNode) *ASTNode {
	return parsePragma(Token{Kind: TokPragma, Text: text, Pos: pos}, body)
}

// splitPragma splits a pragma line into its combined directive name and its
// clause list. Clause arguments keep operators (reduction(+:sum) ->
// clause "reduction" args ["+", "sum"]).
func splitPragma(text string) (string, []pragmaClause) {
	s := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "#"))
	s = strings.TrimSpace(strings.TrimPrefix(s, "pragma"))
	var nameWords []string
	var clauses []pragmaClause
	i := 0
	inName := true
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == ',') {
			i++
		}
		if i >= len(s) {
			break
		}
		start := i
		for i < len(s) && (isIdentPart(s[i]) || s[i] == '_') {
			i++
		}
		word := s[start:i]
		if word == "" {
			i++
			continue
		}
		hasArgs := i < len(s) && s[i] == '('
		var args []string
		if hasArgs {
			depth := 0
			argStart := i + 1
			for ; i < len(s); i++ {
				if s[i] == '(' {
					depth++
				} else if s[i] == ')' {
					depth--
					if depth == 0 {
						args = splitClauseArgs(s[argStart:i])
						i++
						break
					}
				}
			}
		}
		if inName && !hasArgs && directiveWords[word] {
			nameWords = append(nameWords, word)
			continue
		}
		inName = false
		clauses = append(clauses, pragmaClause{name: word, args: args})
	}
	return strings.Join(nameWords, "_"), clauses
}

func splitClauseArgs(s string) []string {
	var out []string
	cur := strings.Builder{}
	flush := func() {
		t := strings.TrimSpace(cur.String())
		if t != "" {
			out = append(out, t)
		}
		cur.Reset()
	}
	depth := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '(' || c == '[':
			depth++
			cur.WriteByte(c)
		case c == ')' || c == ']':
			depth--
			cur.WriteByte(c)
		case (c == ',' || c == ':') && depth == 0:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}
