package minic

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDirProvider(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "include", "sys"), 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("main.c", "#include \"util.h\"\n#include <sys/types.h>\nint main() { return util(); }\n")
	write("util.h", "int util();\n")
	write("include/sys/types.h", "typedef int mode_t;\n")

	p := &DirProvider{
		Root:           root,
		IncludeDirs:    []string{"include"},
		SystemPrefixes: []string{"sys/"},
	}
	if src, err := p.ReadSource("main.c"); err != nil || !strings.Contains(src, "util()") {
		t.Fatalf("main.c: %v %q", err, src)
	}
	// resolved via include dir
	if src, err := p.ReadSource("sys/types.h"); err != nil || !strings.Contains(src, "mode_t") {
		t.Fatalf("sys/types.h: %v %q", err, src)
	}
	if _, err := p.ReadSource("missing.h"); err == nil {
		t.Fatal("expected error for missing file")
	}
	if !p.IsSystem("sys/types.h") || p.IsSystem("util.h") {
		t.Fatal("system classification wrong")
	}

	// and it drives the preprocessor end to end
	pp := NewPreprocessor(p, nil)
	res, err := pp.Preprocess("main.c")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "int util();") || !strings.Contains(res.Text, "mode_t") {
		t.Fatalf("preprocessed: %q", res.Text)
	}
}

func TestDirProviderAbsoluteIncludeDir(t *testing.T) {
	root := t.TempDir()
	extra := t.TempDir()
	if err := os.WriteFile(filepath.Join(extra, "lib.h"), []byte("int lib();\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := &DirProvider{Root: root, IncludeDirs: []string{extra}}
	if src, err := p.ReadSource("lib.h"); err != nil || src == "" {
		t.Fatalf("absolute include dir: %v", err)
	}
}
