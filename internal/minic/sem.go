package minic

import (
	"strings"

	"silvervale/internal/tree"
)

// BuildSemTree converts a parsed translation unit into its T_sem tree:
// the frontend AST with programmer-introduced names removed and semantic
// payload (operators, literals, attributes, directive and clause names)
// retained in the labels.
func BuildSemTree(unit *ASTNode) *tree.Node { return unit.SemTree() }

// InlineOptions controls tree-level inlining for T_sem+i.
type InlineOptions struct {
	// ExcludeFile reports whether a function defined in the given file must
	// not be inlined (true system headers). Model runtime headers included
	// by the unit are part of the unit and are inlined — that is what makes
	// "foreign code brought into the tree" visible for library-based
	// models.
	ExcludeFile func(file string) bool
	// MaxDepth bounds transitive inlining (default 3).
	MaxDepth int
}

// InlineUnit produces the AST for T_sem+i: every call to a function that is
// defined inside the unit (and not excluded) is replaced by an InlinedCall
// node carrying the callee's body. Kernel launches (CUDAKernelCallExpr) are
// not inlined: first-party offload models rely on the compiler to introduce
// semantics, so nothing gets inlined for them — reproducing the paper's
// observation that CUDA and OpenMP barely move under T_sem+i.
func InlineUnit(unit *ASTNode, opts InlineOptions) *ASTNode {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 3
	}
	funcs := map[string]*ASTNode{}
	for name, fn := range unit.FindFunctions() {
		if opts.ExcludeFile != nil && opts.ExcludeFile(fn.Pos.File) {
			continue
		}
		funcs[name] = fn
	}
	out := unit.Clone()
	inlineWalk(out, funcs, nil, opts.MaxDepth)
	return out
}

// inlineWalk rewrites CallExpr children in place.
func inlineWalk(n *ASTNode, funcs map[string]*ASTNode, active []string, depth int) {
	if n == nil || depth <= 0 {
		return
	}
	for i, c := range n.Children {
		if c.Kind == KCallExpr {
			if callee := calleeName(c); callee != "" {
				if fn, ok := funcs[callee]; ok && !contains(active, callee) {
					inlined := &ASTNode{Kind: "InlinedCall", Extra: callee0(callee), Pos: c.Pos}
					// keep the callee expression (receiver evaluation and
					// template arguments still happen) and the arguments
					inlined.Add(c.Children...)
					body := fn.body().Clone()
					inlined.Add(body)
					n.Children[i] = inlined
					inlineWalk(inlined, funcs, append(active, callee), depth-1)
					continue
				}
			}
		}
		inlineWalk(c, funcs, active, depth)
	}
}

// calleeName extracts the resolvable function name from a call's callee
// expression: a direct reference uses its last qualified component; a
// member call uses the member name.
func calleeName(call *ASTNode) string {
	if len(call.Children) == 0 {
		return ""
	}
	callee := call.Children[0]
	switch callee.Kind {
	case KDeclRefExpr:
		return lastComponent(callee.Name)
	case KMemberExpr:
		return callee.Name
	}
	return ""
}

func lastComponent(name string) string {
	if i := strings.LastIndex(name, "::"); i >= 0 {
		return name[i+2:]
	}
	return name
}

// callee0 keeps nothing of the programmer-chosen name in the label: the
// InlinedCall Extra records only whether the callee was a member or free
// function, preserving name normalisation.
func callee0(string) string { return "" }

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// ApplyLineOrigins rewrites the positions of an AST parsed from
// preprocessed text back to the original file/line using the
// preprocessor's line-origin table, keeping source back-references valid
// for coverage masking.
func ApplyLineOrigins(n *ASTNode, origins []LineOrigin) {
	if n == nil {
		return
	}
	if n.Pos.Line >= 1 && n.Pos.Line <= len(origins) {
		o := origins[n.Pos.Line-1]
		n.Pos.File = o.File
		n.Pos.Line = o.Line
	}
	for _, c := range n.Children {
		ApplyLineOrigins(c, origins)
	}
}

// ApplyLineOriginsTree does the same for already-built trees (e.g. the
// post-preprocessing T_src).
func ApplyLineOriginsTree(n *tree.Node, origins []LineOrigin) {
	if n == nil {
		return
	}
	if n.Pos.Line >= 1 && n.Pos.Line <= len(origins) {
		o := origins[n.Pos.Line-1]
		n.Pos.File = o.File
		n.Pos.Line = o.Line
	}
	for _, c := range n.Children {
		ApplyLineOriginsTree(c, origins)
	}
}
