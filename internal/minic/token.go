// Package minic implements the C/C++-like mini-language frontend used as
// the in-repo substitute for Clang (see DESIGN.md). It covers the dialect
// features the evaluated programming models rely on: OpenMP pragmas (host,
// target, taskloop), CUDA/HIP function attributes and triple-chevron kernel
// launches, C++-style lambdas with capture lists, qualified names and
// template argument lists, and a line-based preprocessor with include /
// object-like and function-like macros / conditional sections.
//
// The package produces the three artefact classes the paper extracts from a
// real compiler:
//
//   - T_src: a concrete-syntax token tree (tree-sitter analogue), built
//     before or after preprocessing, with anonymous punctuation filtered
//     out and identifiers normalised to their token class.
//   - T_sem: the frontend AST (ClangAST analogue) with programmer names
//     removed; OpenMP directives appear as structured semantic nodes with
//     clause children, exactly the property Section V.C observes in Clang.
//   - T_sem+i: the same tree with calls to functions defined in the same
//     unit inlined at tree level (system/model headers excluded on
//     request).
//
// The IR-level T_ir is produced by package ir from this package's AST.
package minic

import (
	"fmt"

	"silvervale/internal/srcloc"
)

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds. Pragma and Directive carry their whole line as payload
// because, as the paper notes, pragmas are semantic-bearing information
// stored in an unusual place and must survive normalisation.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokChar
	TokPunct
	TokPragma    // #pragma ... (retained through preprocessing)
	TokDirective // other # lines (only present pre-preprocessing)
	TokComment   // only emitted when lexing with comments retained
)

var tokKindNames = map[TokKind]string{
	TokEOF:       "eof",
	TokIdent:     "ident",
	TokKeyword:   "keyword",
	TokNumber:    "number",
	TokString:    "string",
	TokChar:      "char",
	TokPunct:     "punct",
	TokPragma:    "pragma",
	TokDirective: "directive",
	TokComment:   "comment",
}

// String returns the lowercase kind name.
func (k TokKind) String() string {
	if n, ok := tokKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

// Token is a lexical token with a source back-reference.
type Token struct {
	Kind TokKind
	Text string
	Pos  srcloc.Pos
}

// Is reports whether the token has the given kind and text.
func (t Token) Is(k TokKind, text string) bool { return t.Kind == k && t.Text == text }

// IsPunct reports whether the token is the given punctuation.
func (t Token) IsPunct(text string) bool { return t.Is(TokPunct, text) }

// IsKeyword reports whether the token is the given keyword.
func (t Token) IsKeyword(text string) bool { return t.Is(TokKeyword, text) }

// String renders the token for diagnostics.
func (t Token) String() string { return fmt.Sprintf("%s(%q)@%s", t.Kind, t.Text, t.Pos) }

// keywords of the MiniC dialect. The CUDA/HIP attribute keywords are part
// of the first-party dialects Clang handles with the same AST.
var keywords = map[string]bool{
	"void": true, "int": true, "float": true, "double": true, "bool": true,
	"char": true, "long": true, "short": true, "unsigned": true, "signed": true,
	"size_t": true, "auto": true,
	"const": true, "static": true, "inline": true, "extern": true,
	"struct": true, "class": true, "typedef": true, "using": true,
	"namespace": true, "template": true, "typename": true, "operator": true,
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"return": true, "break": true, "continue": true, "switch": true,
	"case": true, "default": true, "new": true, "delete": true,
	"true": true, "false": true, "nullptr": true, "sizeof": true,
	"public": true, "private": true,
	"__global__": true, "__device__": true, "__host__": true,
	"__shared__": true, "__restrict__": true, "__forceinline__": true,
	"__launch_bounds__": true, "__syncthreads": true,
}

// IsTypeKeyword reports whether the identifier text is a builtin type
// keyword.
func IsTypeKeyword(s string) bool {
	switch s {
	case "void", "int", "float", "double", "bool", "char", "long", "short",
		"unsigned", "signed", "size_t", "auto":
		return true
	}
	return false
}
