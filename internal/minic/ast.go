package minic

import (
	"strings"

	"silvervale/internal/srcloc"
	"silvervale/internal/tree"
)

// ASTNode is the uniform frontend AST node (ClangAST analogue). A single
// node shape keeps the parser, semantic pass, interpreter, and IR lowering
// simple; Kind discriminates, Name carries the programmer-chosen identifier
// (needed for symbol resolution and inlining; dropped when building T_sem),
// and Extra carries semantic payload that survives into T_sem: operator
// spellings, literal values, attributes, clause names.
type ASTNode struct {
	Kind     string
	Name     string
	Extra    string
	Pos      srcloc.Pos
	Children []*ASTNode
}

// AST node kinds. The spellings mirror ClangAST class names so that tree
// dumps read like the paper's Fig. 1.
const (
	KTranslationUnit = "TranslationUnit"
	KFunctionDecl    = "FunctionDecl"
	KParmVarDecl     = "ParmVarDecl"
	KVarDecl         = "VarDecl"
	KFieldDecl       = "FieldDecl"
	KRecordDecl      = "RecordDecl"
	KTypedefDecl     = "TypedefDecl"
	KUsingDecl       = "UsingDecl"
	KNamespaceDecl   = "NamespaceDecl"
	KTemplateDecl    = "TemplateDecl"
	KAttr            = "Attr" // Extra: CUDAGlobal, CUDADevice, CUDAHost, Static, Inline, Extern

	KCompoundStmt = "CompoundStmt"
	KDeclStmt     = "DeclStmt"
	KIfStmt       = "IfStmt"
	KForStmt      = "ForStmt"
	KWhileStmt    = "WhileStmt"
	KDoStmt       = "DoStmt"
	KReturnStmt   = "ReturnStmt"
	KBreakStmt    = "BreakStmt"
	KContinueStmt = "ContinueStmt"
	KExprStmt     = "ExprStmt"
	KNullStmt     = "NullStmt"

	// OpenMP / OpenACC directives become structured AST nodes: "OpenMP
	// pragmas provide additional semantics beyond those of the base
	// language" (Section V.C); the directive kind is in Extra and each
	// clause is a child node.
	KOMPDirective = "OMPExecutableDirective"
	KOMPClause    = "OMPClause" // Extra: clause name; children: arguments

	KBinaryOperator     = "BinaryOperator" // Extra: op
	KUnaryOperator      = "UnaryOperator"  // Extra: op (prefix) or post++/post--
	KConditionalOp      = "ConditionalOperator"
	KCallExpr           = "CallExpr"
	KCUDAKernelCallExpr = "CUDAKernelCallExpr" // children: config exprs then args
	KDeclRefExpr        = "DeclRefExpr"
	KMemberExpr         = "MemberExpr" // Extra: . or ->
	KArraySubscript     = "ArraySubscriptExpr"
	KIntegerLiteral     = "IntegerLiteral"  // Extra: value
	KFloatingLiteral    = "FloatingLiteral" // Extra: value
	KStringLiteral      = "StringLiteral"
	KCharLiteral        = "CharacterLiteral"
	KBoolLiteral        = "CXXBoolLiteralExpr" // Extra: true/false
	KNullptrLiteral     = "CXXNullPtrLiteralExpr"
	KLambdaExpr         = "LambdaExpr" // Extra: capture default (= or &)
	KInitListExpr       = "InitListExpr"
	KNewExpr            = "CXXNewExpr"
	KDeleteExpr         = "CXXDeleteExpr"
	KSizeofExpr         = "UnaryExprOrTypeTraitExpr"
	KParenExpr          = "ParenExpr"

	// Type nodes: programmer-chosen type names are normalised away like
	// other names; builtin types keep their spelling in Extra.
	KBuiltinType      = "BuiltinType" // Extra: int/double/...
	KRecordType       = "RecordType"
	KPointerType      = "PointerType"
	KReferenceType    = "ReferenceType"
	KConstQual        = "QualType-const"
	KTemplateSpecType = "TemplateSpecializationType"
	KTemplateArgList  = "TemplateArgumentList"
	KTemplateArg      = "TemplateArgument"
	KAutoType         = "AutoType"
)

// NewAST constructs an AST node.
func NewAST(kind string, pos srcloc.Pos, children ...*ASTNode) *ASTNode {
	return &ASTNode{Kind: kind, Pos: pos, Children: children}
}

// Add appends children and returns the node.
func (n *ASTNode) Add(children ...*ASTNode) *ASTNode {
	n.Children = append(n.Children, children...)
	return n
}

// Size counts nodes in the subtree.
func (n *ASTNode) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Walk visits nodes pre-order; returning false skips the subtree.
func (n *ASTNode) Walk(fn func(*ASTNode) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Clone deep-copies the subtree.
func (n *ASTNode) Clone() *ASTNode {
	if n == nil {
		return nil
	}
	out := &ASTNode{Kind: n.Kind, Name: n.Name, Extra: n.Extra, Pos: n.Pos}
	if len(n.Children) > 0 {
		out.Children = make([]*ASTNode, len(n.Children))
		for i, c := range n.Children {
			out.Children[i] = c.Clone()
		}
	}
	return out
}

// FindFunctions returns all function declarations with bodies, keyed by
// name. Later definitions win, matching one-definition linking.
func (n *ASTNode) FindFunctions() map[string]*ASTNode {
	out := make(map[string]*ASTNode)
	n.Walk(func(m *ASTNode) bool {
		if m.Kind == KFunctionDecl && m.Name != "" && m.body() != nil {
			out[m.Name] = m
		}
		return true
	})
	return out
}

// body returns the CompoundStmt child of a function decl, or nil for a
// prototype.
func (n *ASTNode) body() *ASTNode {
	for _, c := range n.Children {
		if c.Kind == KCompoundStmt {
			return c
		}
	}
	return nil
}

// label renders the node's T_sem label: node kind plus the semantic payload
// (operator and literal spellings, attributes, directive and clause names)
// — but never programmer-introduced names.
func (n *ASTNode) label() string {
	if n.Extra == "" {
		return n.Kind
	}
	return n.Kind + ":" + sanitizeLabel(n.Extra)
}

// sanitizeLabel makes a label safe for the s-expression serialisation.
func sanitizeLabel(s string) string {
	if strings.ContainsAny(s, " ()") {
		var b strings.Builder
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case ' ':
				b.WriteByte('_')
			case '(':
				b.WriteByte('[')
			case ')':
				b.WriteByte(']')
			default:
				b.WriteByte(s[i])
			}
		}
		return b.String()
	}
	return s
}

// SemTree converts the AST subtree into the T_sem tree: labels carry node
// type plus semantic payload; names are removed ("we normalise names by
// retaining only the token type ... all variable, function, and class names
// are removed").
func (n *ASTNode) SemTree() *tree.Node {
	if n == nil {
		return nil
	}
	out := tree.NewAt(n.label(), n.Pos)
	for _, c := range n.Children {
		out.Add(c.SemTree())
	}
	return out
}
