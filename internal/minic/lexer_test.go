package minic

import (
	"testing"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func texts(toks []Token) []string {
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind != TokEOF {
			out = append(out, t.Text)
		}
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks := Lex(`int x = 42;`, LexOptions{File: "t.c"})
	want := []string{"int", "x", "=", "42", ";"}
	got := texts(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if toks[0].Kind != TokKeyword || toks[1].Kind != TokIdent || toks[3].Kind != TokNumber {
		t.Fatalf("kinds = %v", kinds(toks))
	}
}

func TestLexPositions(t *testing.T) {
	toks := Lex("int x;\ndouble y;\n", LexOptions{File: "t.c"})
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("first token pos = %v", toks[0].Pos)
	}
	// "double" starts line 2
	var dbl Token
	for _, tok := range toks {
		if tok.Text == "double" {
			dbl = tok
		}
	}
	if dbl.Pos.Line != 2 || dbl.Pos.File != "t.c" {
		t.Fatalf("double pos = %v", dbl.Pos)
	}
}

func TestLexCommentsDroppedByDefault(t *testing.T) {
	toks := Lex("x; // comment\n/* block\ncomment */ y;", LexOptions{})
	got := texts(toks)
	want := []string{"x", ";", "y", ";"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestLexKeepComments(t *testing.T) {
	toks := Lex("x; // c", LexOptions{KeepComments: true})
	found := false
	for _, tok := range toks {
		if tok.Kind == TokComment {
			found = true
		}
	}
	if !found {
		t.Fatal("comment token not emitted with KeepComments")
	}
}

func TestLexChevrons(t *testing.T) {
	toks := Lex("kernel<<<blocks, threads>>>(a, b);", LexOptions{})
	var launch []string
	for _, tok := range toks {
		if tok.Text == "<<<" || tok.Text == ">>>" {
			launch = append(launch, tok.Text)
		}
	}
	if len(launch) != 2 {
		t.Fatalf("chevrons = %v", launch)
	}
}

func TestLexPragmaIsSingleToken(t *testing.T) {
	toks := Lex("#pragma omp parallel for reduction(+:sum)\nfor (;;) {}", LexOptions{})
	if toks[0].Kind != TokPragma {
		t.Fatalf("first token = %v", toks[0])
	}
	if toks[0].Text != "#pragma omp parallel for reduction(+:sum)" {
		t.Fatalf("pragma text = %q", toks[0].Text)
	}
}

func TestLexPragmaContinuation(t *testing.T) {
	toks := Lex("#pragma omp target teams \\\n  distribute parallel for\nx;", LexOptions{})
	if toks[0].Kind != TokPragma {
		t.Fatalf("first token = %v", toks[0])
	}
	if toks[0].Text != "#pragma omp target teams distribute parallel for" {
		t.Fatalf("pragma text = %q", toks[0].Text)
	}
}

func TestLexDirectivesOptIn(t *testing.T) {
	src := "#include <stdio.h>\nint x;"
	noDir := Lex(src, LexOptions{})
	for _, tok := range noDir {
		if tok.Kind == TokDirective {
			t.Fatal("directive emitted without KeepDirectives")
		}
	}
	withDir := Lex(src, LexOptions{KeepDirectives: true})
	if withDir[0].Kind != TokDirective {
		t.Fatalf("first token = %v", withDir[0])
	}
}

func TestLexStringAndChar(t *testing.T) {
	toks := Lex(`printf("a \"b\" c", 'x', '\n');`, LexOptions{})
	var strs, chars int
	for _, tok := range toks {
		switch tok.Kind {
		case TokString:
			strs++
		case TokChar:
			chars++
		}
	}
	if strs != 1 || chars != 2 {
		t.Fatalf("strings=%d chars=%d", strs, chars)
	}
}

func TestLexNumbers(t *testing.T) {
	toks := Lex("0 42 3.14 1e-5 0xFF 2.5f 100UL", LexOptions{})
	count := 0
	for _, tok := range toks {
		if tok.Kind == TokNumber {
			count++
		}
	}
	if count != 7 {
		t.Fatalf("numbers = %d, want 7", count)
	}
}

func TestLexMultiCharPunct(t *testing.T) {
	toks := Lex("a += b && c -> d :: e << f", LexOptions{})
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokPunct {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"+=", "&&", "->", "::", "<<"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexNeverFails(t *testing.T) {
	// garbage bytes become single puncts; the lexer must always terminate
	toks := Lex("@ $ ` \x01", LexOptions{})
	if toks[len(toks)-1].Kind != TokEOF {
		t.Fatal("missing EOF")
	}
}

func TestLexCUDAAttributeKeywords(t *testing.T) {
	toks := Lex("__global__ void k(); __device__ int f();", LexOptions{})
	if !toks[0].IsKeyword("__global__") {
		t.Fatalf("first = %v", toks[0])
	}
}
