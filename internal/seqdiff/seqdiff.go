// Package seqdiff implements the O(NP) sequence comparison algorithm of
// Wu, Manber, Myers and Miller ("An O(NP) sequence comparison algorithm",
// Information Processing Letters 35(6), 1990). This is the algorithm used
// internally by the Unix diff utility and by the dtl library the paper
// integrates; the Source metric (Eq. 4) is built on it.
//
// For sequences A (length m) and B (length n), m <= n, the algorithm runs in
// O(n*p) expected time where p is the number of deletions in the shortest
// edit script; for similar inputs p is small and comparisons are near
// linear.
package seqdiff

// EditDistance returns the length of the shortest edit script (insertions +
// deletions, no substitutions) transforming a into b.
func EditDistance[T comparable](a, b []T) int {
	// The O(NP) algorithm requires m <= n; distance is symmetric.
	if len(a) > len(b) {
		a, b = b, a
	}
	m, n := len(a), len(b)
	if m == 0 {
		return n
	}
	delta := n - m
	offset := m + 1
	fp := make([]int, m+n+3)
	for i := range fp {
		fp[i] = -1
	}
	snake := func(k int) int {
		y := maxInt(fp[k-1+offset]+1, fp[k+1+offset])
		x := y - k
		for x < m && y < n && a[x] == b[y] {
			x++
			y++
		}
		return y
	}
	p := -1
	for {
		p++
		for k := -p; k <= delta-1; k++ {
			fp[k+offset] = snake(k)
		}
		for k := delta + p; k >= delta+1; k-- {
			fp[k+offset] = snake(k)
		}
		fp[delta+offset] = snake(delta)
		if fp[delta+offset] >= n {
			return delta + 2*p
		}
	}
}

// LCSLength returns the length of the longest common subsequence of a and
// b. It follows from the edit distance: lcs = (m + n - d) / 2.
func LCSLength[T comparable](a, b []T) int {
	d := EditDistance(a, b)
	return (len(a) + len(b) - d) / 2
}

// LCSStrings is LCSLength specialised for string slices (lines of source),
// the form used by the Source metric.
func LCSStrings(a, b []string) int { return LCSLength(a, b) }

// Similarity returns a normalised similarity in [0, 1]:
// 2*LCS / (len(a)+len(b)). Empty-vs-empty compares as identical (1).
func Similarity[T comparable](a, b []T) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	return 2 * float64(LCSLength(a, b)) / float64(len(a)+len(b))
}

// Distance returns the normalised distance 1 - Similarity, the form used
// when the Source metric joins the tree metrics in heatmaps (0 identical,
// towards 1 no shared lines).
func Distance[T comparable](a, b []T) float64 { return 1 - Similarity(a, b) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
