package seqdiff

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// naiveLCS is the classic O(mn) DP, used as the reference.
func naiveLCS(a, b []byte) int {
	m, n := len(a), len(b)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

func TestEditDistanceBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"abc", "abd", 2},        // delete c, insert d
		{"kitten", "sitting", 5}, // no substitutions: k->s costs 2
		{"abcdef", "abdef", 1},
		{"xabx", "abc", 3},
	}
	for _, c := range cases {
		if got := EditDistance([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCSBasics(t *testing.T) {
	if got := LCSLength([]byte("abcbdab"), []byte("bdcaba")); got != 4 {
		t.Fatalf("LCS = %d, want 4", got)
	}
	if got := LCSStrings([]string{"x", "y", "z"}, []string{"x", "q", "z"}); got != 2 {
		t.Fatalf("LCS lines = %d, want 2", got)
	}
}

func TestSimilarityDistance(t *testing.T) {
	if s := Similarity([]byte("abc"), []byte("abc")); s != 1 {
		t.Fatalf("Similarity identical = %v, want 1", s)
	}
	if s := Similarity([]byte{}, []byte{}); s != 1 {
		t.Fatalf("Similarity empty = %v, want 1", s)
	}
	if d := Distance([]byte("abc"), []byte("xyz")); d != 1 {
		t.Fatalf("Distance disjoint = %v, want 1", d)
	}
}

func randBytes(r *rand.Rand, n int) []byte {
	out := make([]byte, r.Intn(n))
	for i := range out {
		out[i] = byte('a' + r.Intn(4))
	}
	return out
}

func TestPropertyAgainstNaiveDP(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randBytes(r, 40)
		b := randBytes(r, 40)
		want := naiveLCS(a, b)
		return LCSLength(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMetricAxioms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randBytes(r, 30)
		b := randBytes(r, 30)
		c := randBytes(r, 30)
		da := EditDistance(a, b)
		// symmetry
		if da != EditDistance(b, a) {
			return false
		}
		// identity
		if EditDistance(a, a) != 0 {
			return false
		}
		// triangle inequality
		if EditDistance(a, c) > da+EditDistance(b, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDistanceLCSRelation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randBytes(r, 35)
		b := randBytes(r, 35)
		d := EditDistance(a, b)
		l := LCSLength(a, b)
		return d == len(a)+len(b)-2*l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLongSimilarSequencesFast(t *testing.T) {
	// O(NP) should handle long near-identical inputs comfortably.
	base := strings.Repeat("the quick brown fox\n", 2000)
	a := strings.Split(base, "\n")
	b := append([]string{}, a...)
	b[1000] = "jumped over"
	if d := EditDistance(a, b); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
}
