package compdb

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleJSON = `[
  {
    "directory": "/build",
    "command": "clang++ -std=c++17 -DUSE_OMP -DNTIMES=100 -I../src -I /opt/inc -fopenmp -c ../src/main.cpp -o main.o",
    "file": "../src/main.cpp"
  },
  {
    "directory": "/build",
    "arguments": ["clang++", "-x", "cuda", "--cuda-gpu-arch=sm_80", "-c", "kernels.cu"],
    "file": "kernels.cu"
  },
  {
    "directory": "/build",
    "command": "gfortran -fopenacc -c stream.f90",
    "file": "stream.f90"
  }
]`

func TestParse(t *testing.T) {
	db, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Entries) != 3 {
		t.Fatalf("entries = %d", len(db.Entries))
	}
}

func TestDefines(t *testing.T) {
	db, _ := Parse([]byte(sampleJSON))
	d := db.Entries[0].Defines()
	if d["USE_OMP"] != "1" || d["NTIMES"] != "100" {
		t.Fatalf("defines = %v", d)
	}
}

func TestIncludeDirs(t *testing.T) {
	db, _ := Parse([]byte(sampleJSON))
	inc := db.Entries[0].IncludeDirs()
	if len(inc) != 2 {
		t.Fatalf("includes = %v", inc)
	}
	if inc[0] != "/src" && inc[0] != filepath.Join("/build", "../src") {
		t.Fatalf("relative include not resolved: %v", inc)
	}
	if inc[1] != "/opt/inc" {
		t.Fatalf("separate -I arg not handled: %v", inc)
	}
}

func TestLanguageAndModel(t *testing.T) {
	db, _ := Parse([]byte(sampleJSON))
	cases := []struct{ lang, model string }{
		{"c++", "omp"},
		{"cuda", "cuda"},
		{"fortran", "openacc"},
	}
	for i, c := range cases {
		if got := db.Entries[i].Language(); got != c.lang {
			t.Errorf("entry %d language = %q, want %q", i, got, c.lang)
		}
		if got := db.Entries[i].Model(); got != c.model {
			t.Errorf("entry %d model = %q, want %q", i, got, c.model)
		}
	}
}

func TestModelFlags(t *testing.T) {
	cases := []struct {
		cmd   string
		model string
	}{
		{"clang++ -fsycl -c a.cpp", "sycl"},
		{"clang++ -fopenmp -fopenmp-targets=nvptx64 -c a.cpp", "omp-target"},
		{"clang++ -x hip --offload-arch=gfx90a -c a.cpp", "hip"}, // -x hip wins over offload-arch
		{"clang++ -c a.cpp", "serial"},
	}
	for _, c := range cases {
		e := Entry{Command: c.cmd, File: "a.cpp"}
		if got := e.Model(); got != c.model {
			t.Errorf("%q model = %q, want %q", c.cmd, got, c.model)
		}
	}
}

func TestQuotedCommandSplitting(t *testing.T) {
	e := Entry{Command: `cc -DMSG="hello world" -c 'my file.c'`, File: "my file.c"}
	args := e.Args()
	if len(args) != 4 {
		t.Fatalf("args = %v", args)
	}
	if args[1] != "-DMSG=hello world" {
		t.Fatalf("quoted define = %q", args[1])
	}
	d := e.Defines()
	if d["MSG"] != "hello world" {
		t.Fatalf("defines = %v", d)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("not json")); err == nil {
		t.Fatal("expected JSON error")
	}
	if _, err := Parse([]byte(`[{"directory": "/b"}]`)); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestLoadAndMarshal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "compile_commands.json")
	if err := os.WriteFile(path, []byte(sampleJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	out, err := db.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Entries) != len(db.Entries) {
		t.Fatal("marshal round trip lost entries")
	}
}
