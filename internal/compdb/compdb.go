// Package compdb reads Compilation Databases: the compile_commands.json
// files emitted by CMake, Meson, or Bear that record every compiler
// invocation used to build a codebase. SilverVale ingests a Compilation DB
// from a previously compiled codebase and indexes all invocations in it
// (Section IV, Fig. 2).
package compdb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Entry is one compiler invocation.
type Entry struct {
	Directory string   `json:"directory"`
	Command   string   `json:"command,omitempty"`
	Arguments []string `json:"arguments,omitempty"`
	File      string   `json:"file"`
	Output    string   `json:"output,omitempty"`
}

// DB is a parsed compilation database.
type DB struct {
	Entries []Entry
}

// Parse decodes compile_commands.json content.
func Parse(data []byte) (*DB, error) {
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("compdb: %w", err)
	}
	for i, e := range entries {
		if e.File == "" {
			return nil, fmt.Errorf("compdb: entry %d has no file", i)
		}
	}
	return &DB{Entries: entries}, nil
}

// Load reads and parses a compile_commands.json file.
func Load(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Marshal encodes the DB back to JSON (used when the corpus synthesizes
// compilation databases for its generated codebases).
func (db *DB) Marshal() ([]byte, error) {
	return json.MarshalIndent(db.Entries, "", "  ")
}

// Args returns the argument vector of an entry, splitting Command when
// Arguments is absent.
func (e *Entry) Args() []string {
	if len(e.Arguments) > 0 {
		return e.Arguments
	}
	return splitCommand(e.Command)
}

// splitCommand splits a shell command respecting double and single quotes.
func splitCommand(cmd string) []string {
	var out []string
	var cur strings.Builder
	quote := byte(0)
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(cmd); i++ {
		c := cmd[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else {
				cur.WriteByte(c)
			}
		case c == '"' || c == '\'':
			quote = c
		case c == ' ' || c == '\t':
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

// Defines extracts -D macro definitions as name -> value ("1" when bare).
func (e *Entry) Defines() map[string]string {
	out := map[string]string{}
	args := e.Args()
	for i := 0; i < len(args); i++ {
		a := args[i]
		var d string
		switch {
		case a == "-D" && i+1 < len(args):
			i++
			d = args[i]
		case strings.HasPrefix(a, "-D"):
			d = a[2:]
		default:
			continue
		}
		if eq := strings.IndexByte(d, '='); eq >= 0 {
			out[d[:eq]] = d[eq+1:]
		} else {
			out[d] = "1"
		}
	}
	return out
}

// IncludeDirs extracts -I include directories, resolved against the entry
// directory.
func (e *Entry) IncludeDirs() []string {
	var out []string
	args := e.Args()
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-I" && i+1 < len(args):
			i++
			out = append(out, e.resolve(args[i]))
		case strings.HasPrefix(a, "-I"):
			out = append(out, e.resolve(a[2:]))
		}
	}
	return out
}

func (e *Entry) resolve(p string) string {
	if filepath.IsAbs(p) || e.Directory == "" {
		return p
	}
	return filepath.Join(e.Directory, p)
}

// Language guesses the source language from the file extension.
func (e *Entry) Language() string {
	switch strings.ToLower(filepath.Ext(e.File)) {
	case ".f", ".f90", ".f95", ".f03", ".f08":
		return "fortran"
	case ".cu":
		return "cuda"
	case ".hip":
		return "hip"
	default:
		return "c++"
	}
}

// Model guesses the programming model from compiler flags, mirroring how
// the framework decides which extraction path to run per invocation.
func (e *Entry) Model() string {
	args := e.Args()
	joined := " " + strings.Join(args, " ") + " "
	switch {
	case strings.Contains(joined, " -x hip ") || e.Language() == "hip":
		// checked before --offload-arch: HIP drivers pass both
		return "hip"
	case strings.Contains(joined, "-fopenmp-targets") || strings.Contains(joined, "--offload-arch"):
		return "omp-target"
	case strings.Contains(joined, " -x cuda ") || strings.Contains(joined, "--cuda-gpu-arch") || e.Language() == "cuda":
		return "cuda"
	case strings.Contains(joined, "-fsycl"):
		return "sycl"
	case strings.Contains(joined, "-fopenacc"):
		return "openacc"
	case strings.Contains(joined, "-fopenmp"):
		return "omp"
	default:
		return "serial"
	}
}
