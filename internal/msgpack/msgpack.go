// Package msgpack implements the subset of the MessagePack serialisation
// format needed by the Codebase DB (package cbdb). The paper stores the
// portable set of semantic-bearing trees and metadata as Zstd-compressed
// MessagePack; this package provides the MessagePack half (compression is
// gzip from the standard library — see DESIGN.md substitutions).
//
// Supported types: nil, bool, int64, uint64, float64, string, []byte,
// arrays, and string-keyed maps. Values decode into any / []any /
// map[string]any.
package msgpack

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Encoder writes MessagePack values to an underlying writer.
type Encoder struct {
	w   io.Writer
	buf [9]byte
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode writes a single value. Maps are written with sorted keys so output
// is deterministic.
func (e *Encoder) Encode(v any) error {
	switch x := v.(type) {
	case nil:
		return e.writeByte(0xc0)
	case bool:
		if x {
			return e.writeByte(0xc3)
		}
		return e.writeByte(0xc2)
	case int:
		return e.EncodeInt(int64(x))
	case int32:
		return e.EncodeInt(int64(x))
	case int64:
		return e.EncodeInt(x)
	case uint:
		return e.EncodeUint(uint64(x))
	case uint64:
		return e.EncodeUint(x)
	case float64:
		return e.EncodeFloat(x)
	case float32:
		return e.EncodeFloat(float64(x))
	case string:
		return e.EncodeString(x)
	case []byte:
		return e.EncodeBytes(x)
	case []any:
		if err := e.EncodeArrayLen(len(x)); err != nil {
			return err
		}
		for _, it := range x {
			if err := e.Encode(it); err != nil {
				return err
			}
		}
		return nil
	case []string:
		if err := e.EncodeArrayLen(len(x)); err != nil {
			return err
		}
		for _, it := range x {
			if err := e.EncodeString(it); err != nil {
				return err
			}
		}
		return nil
	case []int:
		if err := e.EncodeArrayLen(len(x)); err != nil {
			return err
		}
		for _, it := range x {
			if err := e.EncodeInt(int64(it)); err != nil {
				return err
			}
		}
		return nil
	case []float64:
		if err := e.EncodeArrayLen(len(x)); err != nil {
			return err
		}
		for _, it := range x {
			if err := e.EncodeFloat(it); err != nil {
				return err
			}
		}
		return nil
	case map[string]any:
		if err := e.EncodeMapLen(len(x)); err != nil {
			return err
		}
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := e.EncodeString(k); err != nil {
				return err
			}
			if err := e.Encode(x[k]); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("msgpack: unsupported type %T", v)
	}
}

func (e *Encoder) writeByte(b byte) error {
	e.buf[0] = b
	_, err := e.w.Write(e.buf[:1])
	return err
}

func (e *Encoder) write(p []byte) error {
	_, err := e.w.Write(p)
	return err
}

// EncodeInt writes a signed integer using the shortest encoding.
func (e *Encoder) EncodeInt(v int64) error {
	switch {
	case v >= 0:
		return e.EncodeUint(uint64(v))
	case v >= -32:
		return e.writeByte(byte(v))
	case v >= math.MinInt8:
		e.buf[0] = 0xd0
		e.buf[1] = byte(v)
		return e.write(e.buf[:2])
	case v >= math.MinInt16:
		e.buf[0] = 0xd1
		binary.BigEndian.PutUint16(e.buf[1:], uint16(v))
		return e.write(e.buf[:3])
	case v >= math.MinInt32:
		e.buf[0] = 0xd2
		binary.BigEndian.PutUint32(e.buf[1:], uint32(v))
		return e.write(e.buf[:5])
	default:
		e.buf[0] = 0xd3
		binary.BigEndian.PutUint64(e.buf[1:], uint64(v))
		return e.write(e.buf[:9])
	}
}

// EncodeUint writes an unsigned integer using the shortest encoding.
func (e *Encoder) EncodeUint(v uint64) error {
	switch {
	case v <= 0x7f:
		return e.writeByte(byte(v))
	case v <= math.MaxUint8:
		e.buf[0] = 0xcc
		e.buf[1] = byte(v)
		return e.write(e.buf[:2])
	case v <= math.MaxUint16:
		e.buf[0] = 0xcd
		binary.BigEndian.PutUint16(e.buf[1:], uint16(v))
		return e.write(e.buf[:3])
	case v <= math.MaxUint32:
		e.buf[0] = 0xce
		binary.BigEndian.PutUint32(e.buf[1:], uint32(v))
		return e.write(e.buf[:5])
	default:
		e.buf[0] = 0xcf
		binary.BigEndian.PutUint64(e.buf[1:], v)
		return e.write(e.buf[:9])
	}
}

// EncodeFloat writes a float64.
func (e *Encoder) EncodeFloat(v float64) error {
	e.buf[0] = 0xcb
	binary.BigEndian.PutUint64(e.buf[1:], math.Float64bits(v))
	return e.write(e.buf[:9])
}

// EncodeString writes a string header and payload.
func (e *Encoder) EncodeString(s string) error {
	n := len(s)
	switch {
	case n <= 31:
		if err := e.writeByte(0xa0 | byte(n)); err != nil {
			return err
		}
	case n <= math.MaxUint8:
		e.buf[0] = 0xd9
		e.buf[1] = byte(n)
		if err := e.write(e.buf[:2]); err != nil {
			return err
		}
	case n <= math.MaxUint16:
		e.buf[0] = 0xda
		binary.BigEndian.PutUint16(e.buf[1:], uint16(n))
		if err := e.write(e.buf[:3]); err != nil {
			return err
		}
	default:
		e.buf[0] = 0xdb
		binary.BigEndian.PutUint32(e.buf[1:], uint32(n))
		if err := e.write(e.buf[:5]); err != nil {
			return err
		}
	}
	return e.write([]byte(s))
}

// EncodeBytes writes a binary blob.
func (e *Encoder) EncodeBytes(p []byte) error {
	n := len(p)
	switch {
	case n <= math.MaxUint8:
		e.buf[0] = 0xc4
		e.buf[1] = byte(n)
		if err := e.write(e.buf[:2]); err != nil {
			return err
		}
	case n <= math.MaxUint16:
		e.buf[0] = 0xc5
		binary.BigEndian.PutUint16(e.buf[1:], uint16(n))
		if err := e.write(e.buf[:3]); err != nil {
			return err
		}
	default:
		e.buf[0] = 0xc6
		binary.BigEndian.PutUint32(e.buf[1:], uint32(n))
		if err := e.write(e.buf[:5]); err != nil {
			return err
		}
	}
	return e.write(p)
}

// EncodeArrayLen writes an array header for n elements.
func (e *Encoder) EncodeArrayLen(n int) error {
	switch {
	case n <= 15:
		return e.writeByte(0x90 | byte(n))
	case n <= math.MaxUint16:
		e.buf[0] = 0xdc
		binary.BigEndian.PutUint16(e.buf[1:], uint16(n))
		return e.write(e.buf[:3])
	default:
		e.buf[0] = 0xdd
		binary.BigEndian.PutUint32(e.buf[1:], uint32(n))
		return e.write(e.buf[:5])
	}
}

// EncodeMapLen writes a map header for n pairs.
func (e *Encoder) EncodeMapLen(n int) error {
	switch {
	case n <= 15:
		return e.writeByte(0x80 | byte(n))
	case n <= math.MaxUint16:
		e.buf[0] = 0xde
		binary.BigEndian.PutUint16(e.buf[1:], uint16(n))
		return e.write(e.buf[:3])
	default:
		e.buf[0] = 0xdf
		binary.BigEndian.PutUint32(e.buf[1:], uint32(n))
		return e.write(e.buf[:5])
	}
}

// Decoder reads MessagePack values.
type Decoder struct {
	r   io.Reader
	buf [9]byte
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Decode reads the next value. Integers decode as int64 (or uint64 when out
// of int64 range), strings as string, arrays as []any, maps as
// map[string]any.
func (d *Decoder) Decode() (any, error) {
	b, err := d.readByte()
	if err != nil {
		return nil, err
	}
	switch {
	case b <= 0x7f: // positive fixint
		return int64(b), nil
	case b >= 0xe0: // negative fixint
		return int64(int8(b)), nil
	case b >= 0xa0 && b <= 0xbf: // fixstr
		return d.readString(int(b & 0x1f))
	case b >= 0x90 && b <= 0x9f: // fixarray
		return d.readArray(int(b & 0x0f))
	case b >= 0x80 && b <= 0x8f: // fixmap
		return d.readMap(int(b & 0x0f))
	}
	switch b {
	case 0xc0:
		return nil, nil
	case 0xc2:
		return false, nil
	case 0xc3:
		return true, nil
	case 0xcc:
		n, err := d.readN(1)
		if err != nil {
			return nil, err
		}
		return int64(n[0]), nil
	case 0xcd:
		n, err := d.readN(2)
		if err != nil {
			return nil, err
		}
		return int64(binary.BigEndian.Uint16(n)), nil
	case 0xce:
		n, err := d.readN(4)
		if err != nil {
			return nil, err
		}
		return int64(binary.BigEndian.Uint32(n)), nil
	case 0xcf:
		n, err := d.readN(8)
		if err != nil {
			return nil, err
		}
		u := binary.BigEndian.Uint64(n)
		if u > math.MaxInt64 {
			return u, nil
		}
		return int64(u), nil
	case 0xd0:
		n, err := d.readN(1)
		if err != nil {
			return nil, err
		}
		return int64(int8(n[0])), nil
	case 0xd1:
		n, err := d.readN(2)
		if err != nil {
			return nil, err
		}
		return int64(int16(binary.BigEndian.Uint16(n))), nil
	case 0xd2:
		n, err := d.readN(4)
		if err != nil {
			return nil, err
		}
		return int64(int32(binary.BigEndian.Uint32(n))), nil
	case 0xd3:
		n, err := d.readN(8)
		if err != nil {
			return nil, err
		}
		return int64(binary.BigEndian.Uint64(n)), nil
	case 0xca:
		n, err := d.readN(4)
		if err != nil {
			return nil, err
		}
		return float64(math.Float32frombits(binary.BigEndian.Uint32(n))), nil
	case 0xcb:
		n, err := d.readN(8)
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.BigEndian.Uint64(n)), nil
	case 0xd9:
		n, err := d.readN(1)
		if err != nil {
			return nil, err
		}
		return d.readString(int(n[0]))
	case 0xda:
		n, err := d.readN(2)
		if err != nil {
			return nil, err
		}
		return d.readString(int(binary.BigEndian.Uint16(n)))
	case 0xdb:
		n, err := d.readN(4)
		if err != nil {
			return nil, err
		}
		return d.readString(int(binary.BigEndian.Uint32(n)))
	case 0xc4:
		n, err := d.readN(1)
		if err != nil {
			return nil, err
		}
		return d.readN(int(n[0]))
	case 0xc5:
		n, err := d.readN(2)
		if err != nil {
			return nil, err
		}
		return d.readN(int(binary.BigEndian.Uint16(n)))
	case 0xc6:
		n, err := d.readN(4)
		if err != nil {
			return nil, err
		}
		return d.readN(int(binary.BigEndian.Uint32(n)))
	case 0xdc:
		n, err := d.readN(2)
		if err != nil {
			return nil, err
		}
		return d.readArray(int(binary.BigEndian.Uint16(n)))
	case 0xdd:
		n, err := d.readN(4)
		if err != nil {
			return nil, err
		}
		return d.readArray(int(binary.BigEndian.Uint32(n)))
	case 0xde:
		n, err := d.readN(2)
		if err != nil {
			return nil, err
		}
		return d.readMap(int(binary.BigEndian.Uint16(n)))
	case 0xdf:
		n, err := d.readN(4)
		if err != nil {
			return nil, err
		}
		return d.readMap(int(binary.BigEndian.Uint32(n)))
	}
	return nil, fmt.Errorf("msgpack: unsupported tag 0x%02x", b)
}

func (d *Decoder) readByte() (byte, error) {
	if _, err := io.ReadFull(d.r, d.buf[:1]); err != nil {
		return 0, err
	}
	return d.buf[0], nil
}

// maxPrealloc caps speculative allocation driven by a decoded length
// prefix. A truncated or bit-flipped stream can claim a payload of up to
// 4 GiB in a 5-byte header; trusting it would allocate the whole claim
// before the read fails. Larger lengths allocate only as bytes (or
// elements) actually materialise, so hostile prefixes fail at EOF having
// cost no more memory than the input itself.
const maxPrealloc = 1 << 16

func (d *Decoder) readN(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("msgpack: negative length %d", n)
	}
	if n <= maxPrealloc {
		p := make([]byte, n)
		if _, err := io.ReadFull(d.r, p); err != nil {
			return nil, err
		}
		return p, nil
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, d.r, int64(n)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (d *Decoder) readString(n int) (string, error) {
	p, err := d.readN(n)
	if err != nil {
		return "", err
	}
	return string(p), nil
}

func (d *Decoder) readArray(n int) ([]any, error) {
	out := make([]any, 0, min(n, maxPrealloc/16))
	for i := 0; i < n; i++ {
		v, err := d.Decode()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (d *Decoder) readMap(n int) (map[string]any, error) {
	out := make(map[string]any, min(n, maxPrealloc/16))
	for i := 0; i < n; i++ {
		k, err := d.Decode()
		if err != nil {
			return nil, err
		}
		ks, ok := k.(string)
		if !ok {
			return nil, fmt.Errorf("msgpack: non-string map key %T", k)
		}
		v, err := d.Decode()
		if err != nil {
			return nil, err
		}
		out[ks] = v
	}
	return out, nil
}
