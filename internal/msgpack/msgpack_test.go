package msgpack

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("encode %v: %v", v, err)
	}
	out, err := NewDecoder(&buf).Decode()
	if err != nil {
		t.Fatalf("decode %v: %v", v, err)
	}
	return out
}

func TestScalars(t *testing.T) {
	cases := []struct {
		in   any
		want any
	}{
		{nil, nil},
		{true, true},
		{false, false},
		{int64(0), int64(0)},
		{int64(42), int64(42)},
		{int64(-1), int64(-1)},
		{int64(-32), int64(-32)},
		{int64(-33), int64(-33)},
		{int64(127), int64(127)},
		{int64(128), int64(128)},
		{int64(math.MaxInt64), int64(math.MaxInt64)},
		{int64(math.MinInt64), int64(math.MinInt64)},
		{uint64(math.MaxUint64), uint64(math.MaxUint64)},
		{3.14159, 3.14159},
		{"", ""},
		{"hello", "hello"},
		{strings.Repeat("x", 40), strings.Repeat("x", 40)},
		{strings.Repeat("y", 300), strings.Repeat("y", 300)},
		{strings.Repeat("z", 70000), strings.Repeat("z", 70000)},
	}
	for _, c := range cases {
		got := roundTrip(t, c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("round trip %v (%T): got %v (%T)", c.in, c.in, got, got)
		}
	}
}

func TestBytes(t *testing.T) {
	for _, n := range []int{0, 10, 256, 70000} {
		in := bytes.Repeat([]byte{0xAB}, n)
		got := roundTrip(t, in)
		if !bytes.Equal(got.([]byte), in) {
			t.Fatalf("bytes round trip failed for n=%d", n)
		}
	}
}

func TestArraysAndMaps(t *testing.T) {
	in := map[string]any{
		"name":  "tealeaf",
		"model": "cuda",
		"sizes": []any{int64(1), int64(2), int64(3)},
		"nested": map[string]any{
			"pi":   3.5,
			"flag": true,
		},
	}
	got := roundTrip(t, in)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("map round trip:\n got %#v\nwant %#v", got, in)
	}
}

func TestTypedSliceHelpers(t *testing.T) {
	got := roundTrip(t, []string{"a", "b"})
	if !reflect.DeepEqual(got, []any{"a", "b"}) {
		t.Fatalf("[]string: %#v", got)
	}
	got = roundTrip(t, []int{4, 5})
	if !reflect.DeepEqual(got, []any{int64(4), int64(5)}) {
		t.Fatalf("[]int: %#v", got)
	}
	got = roundTrip(t, []float64{1.5})
	if !reflect.DeepEqual(got, []any{1.5}) {
		t.Fatalf("[]float64: %#v", got)
	}
}

func TestLargeArray(t *testing.T) {
	in := make([]any, 70000)
	for i := range in {
		in[i] = int64(i % 100)
	}
	got := roundTrip(t, in)
	if !reflect.DeepEqual(got, in) {
		t.Fatal("large array round trip failed")
	}
}

func TestLargeMap(t *testing.T) {
	in := make(map[string]any, 20)
	for i := 0; i < 20; i++ {
		in[strings.Repeat("k", i+1)] = int64(i)
	}
	got := roundTrip(t, in)
	if !reflect.DeepEqual(got, in) {
		t.Fatal("map round trip failed")
	}
}

func TestDeterministicMapEncoding(t *testing.T) {
	in := map[string]any{"b": int64(1), "a": int64(2), "c": int64(3)}
	var b1, b2 bytes.Buffer
	if err := NewEncoder(&b1).Encode(in); err != nil {
		t.Fatal(err)
	}
	if err := NewEncoder(&b2).Encode(in); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("map encoding must be deterministic (sorted keys)")
	}
}

func TestUnsupportedType(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode(struct{}{}); err == nil {
		t.Fatal("expected error for unsupported type")
	}
}

func TestDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode("hello world"); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := NewDecoder(bytes.NewReader(raw[:len(raw)-3])).Decode(); err == nil {
		t.Fatal("expected error for truncated input")
	}
}

func TestPropertyIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Encode(v); err != nil {
			return false
		}
		got, err := NewDecoder(&buf).Decode()
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Encode(s); err != nil {
			return false
		}
		got, err := NewDecoder(&buf).Decode()
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFloatRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Encode(v); err != nil {
			return false
		}
		got, err := NewDecoder(&buf).Decode()
		if err != nil {
			return false
		}
		g := got.(float64)
		return g == v || (math.IsNaN(g) && math.IsNaN(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHostileLengthPrefixes pins the decode-side hardening: a truncated or
// bit-flipped stream whose header claims a near-4GiB payload must fail at
// EOF without allocating anywhere near the claimed length. Before the fix
// readN/readArray trusted the prefix and allocated the full claim up
// front — a 9-byte input could demand a 64 GiB []any, which the runtime
// aborts on rather than returning an error.
func TestHostileLengthPrefixes(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0xf0}
	cases := map[string][]byte{
		"str32":  append([]byte{0xdb}, huge...),
		"bin32":  append([]byte{0xc6}, huge...),
		"arr32":  append([]byte{0xdd}, huge...),
		"map32":  append([]byte{0xdf}, huge...),
		"str16":  {0xda, 0xff, 0xff, 'a', 'b'},
		"nested": {0x91, 0xdd, 0xff, 0xff, 0xff, 0xff},
	}
	for name, data := range cases {
		if _, err := NewDecoder(bytes.NewReader(data)).Decode(); err == nil {
			t.Errorf("%s: expected error for hostile length prefix", name)
		}
	}
}

// TestLargePayloadStillRoundTrips exercises the incremental-read path for
// genuine payloads past the preallocation cap.
func TestLargePayloadStillRoundTrips(t *testing.T) {
	s := strings.Repeat("x", maxPrealloc+1234)
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder(&buf).Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("large string corrupted in round trip (len %d vs %d)", len(got.(string)), len(s))
	}
	p := bytes.Repeat([]byte{0x5a}, maxPrealloc+99)
	buf.Reset()
	if err := NewEncoder(&buf).Encode(p); err != nil {
		t.Fatal(err)
	}
	gb, err := NewDecoder(&buf).Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb.([]byte), p) {
		t.Fatal("large binary corrupted in round trip")
	}
}
