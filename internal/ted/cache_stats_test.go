package ted

import (
	"math/rand"
	"strings"
	"testing"
)

// TestCacheStatsAccounting pins the bookkeeping behind CacheStats: every
// lookup is exactly one hit or one miss, identity short-circuits count as
// hits, unit-cost (b,a) lookups canonicalise onto the (a,b) entry, and
// HitRate/String agree with the raw counters.
func TestCacheStatsAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	c := NewCache()
	a, b := randTree(r, 30), randTree(r, 35)

	c.Distance(a, b) // miss
	c.Distance(a, b) // hit
	c.Distance(b, a) // hit via symmetric canonicalisation
	c.Distance(a, a.Clone())

	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1: %+v", st.Misses, st)
	}
	if st.Hits != 3 {
		t.Fatalf("hits = %d, want 3 (two memo, one identity): %+v", st.Hits, st)
	}
	if st.Identity != 1 {
		t.Fatalf("identity = %d, want 1: %+v", st.Identity, st)
	}
	// Exactly one of the two orientations is reversed relative to the
	// canonical fingerprint order; it was looked up either once (b,a) or
	// twice (a,b twice).
	if st.Symmetric != 1 && st.Symmetric != 2 {
		t.Fatalf("symmetric = %d, want 1 or 2: %+v", st.Symmetric, st)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1: %+v", st.Entries, st)
	}
	if got, want := st.HitRate(), 3.0/4.0; got != want {
		t.Fatalf("hit rate = %v, want %v", got, want)
	}
	s := st.String()
	for _, frag := range []string{"3 hits", "(1 identity)", "1 misses", "hit rate 75.0%"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q, missing %q", s, frag)
		}
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Errorf("zero-value hit rate should be 0")
	}
}
