package ted

import (
	"math/rand"
	"strings"
	"testing"

	"silvervale/internal/tree"
)

// TestCacheStatsAccounting pins the bookkeeping behind CacheStats: every
// lookup is exactly one hit or one miss, identity short-circuits count as
// hits, unit-cost (b,a) lookups canonicalise onto the (a,b) entry, and
// HitRate/String agree with the raw counters.
func TestCacheStatsAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	c := NewCache()
	a, b := randTree(r, 30), randTree(r, 35)

	c.Distance(a, b) // miss
	c.Distance(a, b) // hit
	c.Distance(b, a) // hit via symmetric canonicalisation
	c.Distance(a, a.Clone())

	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1: %+v", st.Misses, st)
	}
	if st.Hits != 3 {
		t.Fatalf("hits = %d, want 3 (two memo, one identity): %+v", st.Hits, st)
	}
	if st.Identity != 1 {
		t.Fatalf("identity = %d, want 1: %+v", st.Identity, st)
	}
	// Exactly one of the two orientations is reversed relative to the
	// canonical fingerprint order; it was looked up either once (b,a) or
	// twice (a,b twice).
	if st.Symmetric != 1 && st.Symmetric != 2 {
		t.Fatalf("symmetric = %d, want 1 or 2: %+v", st.Symmetric, st)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1: %+v", st.Entries, st)
	}
	if got, want := st.HitRate(), 3.0/4.0; got != want {
		t.Fatalf("hit rate = %v, want %v", got, want)
	}
	// The single miss flattened both trees for the first time.
	if st.FlatMisses != 2 || st.FlatHits != 0 || st.Flats != 2 {
		t.Fatalf("flat memo = %d hits / %d misses / %d stored, want 0/2/2: %+v",
			st.FlatHits, st.FlatMisses, st.Flats, st)
	}
	s := st.String()
	for _, frag := range []string{"3 hits", "(1 identity)", "1 misses", "hit rate 75.0%"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q, missing %q", s, frag)
		}
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Errorf("zero-value hit rate should be 0")
	}

	// A third tree against a memoised one: a is served from the flat memo,
	// the newcomer is flattened fresh.
	d := randTree(r, 20)
	c.Distance(a, d)
	st = c.Stats()
	if st.FlatHits != 1 || st.FlatMisses != 3 {
		t.Fatalf("flat memo after third tree = %d hits / %d misses, want 1/3: %+v",
			st.FlatHits, st.FlatMisses, st)
	}
	if got, want := st.FlatHitRate(), 1.0/4.0; got != want {
		t.Fatalf("flat hit rate = %v, want %v", got, want)
	}

	// A lone node against a is answered by the single-node bound gate.
	c.Distance(a, tree.New("lone"))
	if st = c.Stats(); st.BoundPruned != 1 {
		t.Fatalf("bound pruned = %d, want 1: %+v", st.BoundPruned, st)
	}
	for _, frag := range []string{"1 bound-pruned", "flat memo"} {
		if s := st.String(); !strings.Contains(s, frag) {
			t.Errorf("String() = %q, missing %q", s, frag)
		}
	}
	if (CacheStats{}).FlatHitRate() != 0 {
		t.Errorf("zero-value flat hit rate should be 0")
	}
}
