package ted

import (
	"hash/fnv"
	"sort"

	"silvervale/internal/tree"
)

// PQGramProfile is a multiset of pq-gram hashes of a tree. pq-grams
// (Augsten, Böhlen, Gamper) approximate tree edit distance in O(n log n)
// time and O(n) space; the paper's future-work section calls for exactly
// this kind of memory reduction so that production-scale codebases (e.g.
// GROMACS) can be analysed without exhausting workstation memory.
type PQGramProfile struct {
	grams []uint64 // sorted hashes
}

const (
	pqP = 2 // stem length
	pqQ = 3 // base length
)

// NewPQGramProfile computes the (2,3)-gram profile of a tree.
func NewPQGramProfile(t *tree.Node) PQGramProfile {
	if t == nil {
		return PQGramProfile{}
	}
	var grams []uint64
	stem := make([]string, pqP)
	for i := range stem {
		stem[i] = "*"
	}
	var visit func(n *tree.Node, anc []string)
	visit = func(n *tree.Node, anc []string) {
		a := append(append([]string{}, anc[1:]...), n.Label)
		base := make([]string, pqQ)
		for i := range base {
			base[i] = "*"
		}
		if len(n.Children) == 0 {
			grams = append(grams, hashGram(a, base))
			return
		}
		// sliding window of width q over children padded with q-1 stars
		win := make([]string, 0, pqQ)
		for i := 0; i < pqQ-1; i++ {
			win = append(win, "*")
		}
		kids := n.Children
		for i := 0; i < len(kids)+pqQ-1; i++ {
			if i < len(kids) {
				win = append(win, kids[i].Label)
			} else {
				win = append(win, "*")
			}
			if len(win) > pqQ {
				win = win[1:]
			}
			if len(win) == pqQ {
				grams = append(grams, hashGram(a, win))
			}
		}
		for _, c := range kids {
			visit(c, a)
		}
	}
	visit(t, stem)
	sort.Slice(grams, func(i, j int) bool { return grams[i] < grams[j] })
	return PQGramProfile{grams: grams}
}

func hashGram(stem, base []string) uint64 {
	h := fnv.New64a()
	for _, s := range stem {
		_, _ = h.Write([]byte(s))
		_, _ = h.Write([]byte{0})
	}
	_, _ = h.Write([]byte{1})
	for _, s := range base {
		_, _ = h.Write([]byte(s))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}

// Size returns the number of pq-grams in the profile.
func (p PQGramProfile) Size() int { return len(p.grams) }

// PQGramDistance returns the pq-gram distance in [0, 1]:
// 1 - 2*|P1 ∩ P2| / (|P1| + |P2|), the standard normalised form. Identical
// trees yield 0; trees sharing no grams yield 1.
func PQGramDistance(a, b PQGramProfile) float64 {
	if len(a.grams) == 0 && len(b.grams) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a.grams) && j < len(b.grams) {
		switch {
		case a.grams[i] == b.grams[j]:
			inter++
			i++
			j++
		case a.grams[i] < b.grams[j]:
			i++
		default:
			j++
		}
	}
	return 1 - 2*float64(inter)/float64(len(a.grams)+len(b.grams))
}

// ApproxDistance computes the pq-gram distance of two trees directly.
func ApproxDistance(t1, t2 *tree.Node) float64 {
	return PQGramDistance(NewPQGramProfile(t1), NewPQGramProfile(t2))
}
