package ted

import (
	"slices"

	"silvervale/internal/tree"
)

// PQGramProfile is a multiset of pq-gram hashes of a tree. pq-grams
// (Augsten, Böhlen, Gamper) approximate tree edit distance in O(n log n)
// time and O(n) space; the paper's future-work section calls for exactly
// this kind of memory reduction so that production-scale codebases (e.g.
// GROMACS) can be analysed without exhausting workstation memory.
type PQGramProfile struct {
	grams []uint64 // sorted hashes
}

const (
	pqP = 2 // stem length
	pqQ = 3 // base length
)

// Gram hashes are FNV-1a over the gram's labels: each stem label followed
// by a 0 separator, a 1 marker, then each base label followed by 0. The
// hash is rolled inline — stem prefix once per node, base window per gram —
// instead of materialising []string windows, but the byte stream is
// exactly the one the hash/fnv-based implementation consumed, so profiles
// are value-identical across versions.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvLabel(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	h ^= 0 // the 0 separator byte: XOR with 0 is identity…
	h *= fnvPrime64
	return h
}

type pqBuilder struct {
	grams []uint64
}

// visit emits the grams anchored at n. anc is the stem context: the last
// pqP-1 ancestor labels (star-padded at the top), passed by value so the
// walk allocates nothing.
func (b *pqBuilder) visit(n *tree.Node, anc [pqP]string) {
	var a [pqP]string
	copy(a[:], anc[1:])
	a[pqP-1] = n.Label
	h := uint64(fnvOffset64)
	for _, s := range a {
		h = fnvLabel(h, s)
	}
	h ^= 1 // stem/base marker byte
	h *= fnvPrime64

	kids := n.Children
	if len(kids) == 0 {
		g := h
		for i := 0; i < pqQ; i++ {
			g = fnvLabel(g, "*")
		}
		b.grams = append(b.grams, g)
		return
	}
	// sliding window of width q over children padded with q-1 stars
	var win [pqQ]string
	for i := range win {
		win[i] = "*"
	}
	for i := 0; i < len(kids)+pqQ-1; i++ {
		copy(win[:], win[1:])
		if i < len(kids) {
			win[pqQ-1] = kids[i].Label
		} else {
			win[pqQ-1] = "*"
		}
		g := h
		for _, s := range win {
			g = fnvLabel(g, s)
		}
		b.grams = append(b.grams, g)
	}
	for _, c := range kids {
		b.visit(c, a)
	}
}

// countGrams sizes the profile exactly: one gram per leaf, and one per
// child-window position (children + q - 1) per internal node.
func countGrams(n *tree.Node) int {
	c := pqQ - 1 + len(n.Children)
	if len(n.Children) == 0 {
		c = 1
	}
	for _, k := range n.Children {
		c += countGrams(k)
	}
	return c
}

// NewPQGramProfile computes the (2,3)-gram profile of a tree.
func NewPQGramProfile(t *tree.Node) PQGramProfile {
	if t == nil {
		return PQGramProfile{}
	}
	b := pqBuilder{grams: make([]uint64, 0, countGrams(t))}
	var stem [pqP]string
	for i := range stem {
		stem[i] = "*"
	}
	b.visit(t, stem)
	slices.Sort(b.grams)
	return PQGramProfile{grams: b.grams}
}

// Size returns the number of pq-grams in the profile.
func (p PQGramProfile) Size() int { return len(p.grams) }

// PQGramDistance returns the pq-gram distance in [0, 1]:
// 1 - 2*|P1 ∩ P2| / (|P1| + |P2|), the standard normalised form. Identical
// trees yield 0; trees sharing no grams yield 1.
func PQGramDistance(a, b PQGramProfile) float64 {
	if len(a.grams) == 0 && len(b.grams) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a.grams) && j < len(b.grams) {
		switch {
		case a.grams[i] == b.grams[j]:
			inter++
			i++
			j++
		case a.grams[i] < b.grams[j]:
			i++
		default:
			j++
		}
	}
	return 1 - 2*float64(inter)/float64(len(a.grams)+len(b.grams))
}

// ApproxDistance computes the pq-gram distance of two trees directly.
func ApproxDistance(t1, t2 *tree.Node) float64 {
	return PQGramDistance(NewPQGramProfile(t1), NewPQGramProfile(t2))
}
