package ted

import "sync"

// dpScratch bundles every per-call buffer the exact TED path needs: the
// flattened representations of both trees (uncached path only — the cached
// path borrows memoised flats instead), the keyroot bool table, the DP
// matrix backings with their row headers, the per-keyroot b-offset row,
// and the stamp/count tables the bound gates use. All slices grow to the
// high-water mark of the trees a scratch has seen and are never shrunk, so
// a steady-state matrix sweep reuses the same memory for every cell.
//
// Matrix contents are deliberately NOT zeroed between uses: the
// Zhang–Shasha recurrence writes every forest-distance cell before reading
// it, and only reads treedist cells written earlier in the same run (each
// subtree pair belongs to exactly one keyroot pair, processed in ascending
// order). The equivalence property test pins this invariant against the
// seed implementation, which zeroed both matrices on every call.
type dpScratch struct {
	fa, fb flat   // uncached-path flatten targets
	seen   []bool // keyroot collection table; all-false between uses

	td, fd         []int32     // DP matrix backings
	tdRows, fdRows [][]int32   // row headers over td/fd
	boff           []int32     // per-treedist b-side lmld offsets
	blocks         []*subBlock // per-keyroot-pair probe results (memoised path)
	done           []bool      // per-keyroot-pair lazily-restored marks (memoised path)
	ckrefs         []ckptRef   // per-b-keyroot checkpoint probe results (memoised path)

	stamp []int32 // bound gate: label-id stamps, indexed by interned id
	cnt   []int32 // bound gate: label multiplicities for stamped ids
	epoch int32   // current stamp generation
}

var scratchPool = sync.Pool{New: func() any { return new(dpScratch) }}

func getScratch() *dpScratch  { return scratchPool.Get().(*dpScratch) }
func putScratch(s *dpScratch) { scratchPool.Put(s) }

// grow32 returns s with length n, reallocating only when capacity is
// exceeded. Contents are unspecified.
func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// prepFlat sizes the scratch-owned flat f for an n-node tree and returns
// a keyroot table of at least n false entries.
func (s *dpScratch) prepFlat(f *flat, n int) {
	f.labels = grow32(f.labels, n)
	f.lmld = grow32(f.lmld, n)
	if cap(s.seen) < n {
		s.seen = make([]bool, n)
	}
}

// dpTables shapes the treedist/forestdist matrices and the b-offset row
// for an n1 x n2 tree pair — the shared prologue of zsDistance and the
// memoised Cache.zsDistanceMemo, which must size scratch identically for
// the dirty-reuse invariant to hold across both paths. Contents are
// unspecified (see the dpScratch comment).
func (s *dpScratch) dpTables(n1, n2 int) (td, fd [][]int32, boff []int32) {
	td = s.matrix(&s.td, &s.tdRows, n1, n2)
	fd = s.matrix(&s.fd, &s.fdRows, n1+1, n2+1)
	s.boff = grow32(s.boff, n2)
	return td, fd, s.boff
}

// blockRefs returns a scratch slice of n block pointers with unspecified
// contents; the memoised path's probe phase overwrites every slot before
// any is read. The parallel done slice (returned cleared) marks grid
// slots whose block has already been materialised into td.
func (s *dpScratch) blockRefs(n int) ([]*subBlock, []bool) {
	if cap(s.blocks) < n {
		s.blocks = make([]*subBlock, n)
		s.done = make([]bool, n)
	}
	done := s.done[:n]
	for i := range done {
		done[i] = false
	}
	return s.blocks[:n], done
}

// ckptRefs returns a scratch slice of n checkpoint probe slots with
// unspecified contents; the probe phase overwrites every slot.
func (s *dpScratch) ckptRefs(n int) []ckptRef {
	if cap(s.ckrefs) < n {
		s.ckrefs = make([]ckptRef, n)
	}
	return s.ckrefs[:n]
}

// matrix shapes rows r x c row headers over backing, growing both to the
// high-water mark. Row contents are unspecified.
func (s *dpScratch) matrix(backing *[]int32, rows *[][]int32, r, c int) [][]int32 {
	*backing = grow32(*backing, r*c)
	if cap(*rows) < r {
		*rows = make([][]int32, r)
	}
	out := (*rows)[:r]
	b := *backing
	for i := 0; i < r; i++ {
		out[i] = b[i*c : (i+1)*c]
	}
	return out
}

// stampTables sizes the gate's stamp/count arrays to the current interner
// id space and bumps the epoch, clearing on first use or wrap-around so a
// stale stamp can never alias the new generation.
func (s *dpScratch) stampTables() ([]int32, []int32, int32) {
	n := internTableSize()
	if cap(s.stamp) < n {
		s.stamp = make([]int32, n)
		s.cnt = make([]int32, n)
		s.epoch = 0
	}
	s.stamp = s.stamp[:n]
	s.cnt = s.cnt[:n]
	s.epoch++
	if s.epoch <= 0 { // wrapped: reset stamps so old generations cannot match
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	return s.stamp, s.cnt, s.epoch
}
