package ted

import (
	"sort"
	"sync"

	"silvervale/internal/tree"
)

// Label interning is shared process-wide: ids are only ever compared for
// equality, so one append-only table serves every tree, every cache, and
// every engine worker. Sharing is what makes per-tree flat memos reusable
// across calls — a label id minted while flattening one tree means the
// same byte string when it appears in any other tree. The table never
// shrinks; the label universe (node roles and operation names emitted by
// the indexer) is small and bounded in practice.
var (
	internMu  sync.RWMutex
	internIDs = make(map[string]int32)
)

// internID returns the dense id for label, minting one on first sight.
func internID(label string) int32 {
	internMu.RLock()
	id, ok := internIDs[label]
	internMu.RUnlock()
	if ok {
		return id
	}
	internMu.Lock()
	defer internMu.Unlock()
	if id, ok := internIDs[label]; ok {
		return id
	}
	id = int32(len(internIDs))
	internIDs[label] = id
	return id
}

// internTableSize reports the current id-space size; gate scratch arrays
// indexed by label id are sized against it.
func internTableSize() int {
	internMu.RLock()
	n := len(internIDs)
	internMu.RUnlock()
	return n
}

// flat is a tree flattened to post-order arrays, the representation
// Zhang–Shasha operates on. A flat is immutable once built; memoised
// flats (see Cache) are shared across goroutines on that basis.
//
// Memoised flats (newFlat) additionally carry the keyroot content
// plumbing the subtree-block memo needs (DESIGN.md §13): the fingerprint
// of the subtree rooted at each keyroot, and the partition of post-order
// indices into per-keyroot left spines. Every node belongs to exactly one
// keyroot's spine (the keyroot of its lmld class), which is precisely the
// set of treedist cells that keyroot pair writes into td — so a block
// restore needs only these index lists. The pooled package-level path
// leaves all three nil and always runs the monolithic DP.
type flat struct {
	labels []int32 // interned label id per post-order index
	lmld   []int32 // leftmost leaf descendant per post-order index
	kr     []int   // keyroots in increasing order

	krFP     []tree.Fingerprint // content address of subtree rooted at kr[k]
	spine    []int32            // post-order indices grouped by owning keyroot
	spineOff []int32            // spine[spineOff[k]:spineOff[k+1]] = kr[k]'s spine, ascending

	// Forest-prefix checkpoints for the root keyroot's DP row (DESIGN.md
	// §13): ckptRow[k] is the fd row index completed at the boundary after
	// the root's (k+1)-th child, and ckptFP[k] content-addresses the cut
	// forest C1..C(k+1) as a fold of the children's subtree fingerprints.
	// Used as the tree's left-operand state only; nil on the pooled path.
	ckptRow []int32
	ckptFP  []tree.Fingerprint
}

// flattener drives the post-order walk. A struct method recurses without
// the closure allocation the seed paid per flatten.
type flattener struct {
	labels []int32
	lmld   []int32
	idx    int
}

// visit records node and returns its leftmost-leaf post-order index.
func (fl *flattener) visit(node *tree.Node) int32 {
	first := int32(-1)
	for _, c := range node.Children {
		l := fl.visit(c)
		if first < 0 {
			first = l
		}
	}
	i := fl.idx
	fl.idx++
	fl.labels[i] = internID(node.Label)
	if first < 0 {
		first = int32(i)
	}
	fl.lmld[i] = first
	return first
}

// fillFlat populates f (whose labels/lmld must already have length n) from
// t and collects keyroots. seen must have length >= n and be all-false; it
// is restored to all-false before returning, so callers can pool it.
//
// Keyroots are the root plus every node with a left sibling — equivalently
// the highest node for each distinct lmld value. Scanning post-order
// indices downward, the first node seen per lmld value is that highest
// node, which yields the keyroots in one pass over a bool table instead of
// the seed's map. The descending collection is then handed to sort.Ints:
// keyroot count equals leaf count, so on wide flat trees the old insertion
// sort was O(n²) while sort.Ints keeps this O(n log n).
func fillFlat(f *flat, t *tree.Node, seen []bool) {
	fl := flattener{labels: f.labels, lmld: f.lmld}
	fl.visit(t)
	f.kr = f.kr[:0]
	for i := len(f.labels) - 1; i >= 0; i-- {
		l := f.lmld[i]
		if !seen[l] {
			seen[l] = true
			f.kr = append(f.kr, i)
		}
	}
	sort.Ints(f.kr)
	for _, k := range f.kr {
		seen[f.lmld[k]] = false
	}
}

// newFlat builds an exactly-sized, immutable flat for memoisation. Unlike
// the pooled path it allocates fresh backing arrays so the result can
// outlive any scratch buffers.
func newFlat(t *tree.Node) *flat {
	n := t.Size()
	f := &flat{
		labels: make([]int32, n),
		lmld:   make([]int32, n),
	}
	fillFlat(f, t, make([]bool, n))
	// Trim the keyroot slice to size: memoised flats live for the whole
	// sweep, so the append slack is worth returning to the allocator.
	f.kr = append(make([]int, 0, len(f.kr)), f.kr...)
	f.buildSpines(t)
	return f
}

// buildSpines fills the keyroot content plumbing of a memoised flat: per-
// keyroot subtree fingerprints (one amortised SubtreeFingerprints walk,
// post-order-aligned with the flat arrays) and the spine partition. Spines
// are built counting-sort style — keyroots and lmld values are in
// bijection, so a slot table indexed by lmld value maps every node to its
// owning keyroot in O(n) with no hashing, and the ascending scan leaves
// each spine slice sorted, the order treedist writes its td cells in.
func (f *flat) buildSpines(t *tree.Node) {
	n := len(f.labels)
	sub := t.SubtreeFingerprints()
	k := len(f.kr)
	f.krFP = make([]tree.Fingerprint, k)
	slot := make([]int32, n)
	for ki, i := range f.kr {
		f.krFP[ki] = sub[i]
		slot[f.lmld[i]] = int32(ki)
	}
	f.spineOff = make([]int32, k+1)
	for x := 0; x < n; x++ {
		f.spineOff[slot[f.lmld[x]]+1]++
	}
	for ki := 1; ki <= k; ki++ {
		f.spineOff[ki] += f.spineOff[ki-1]
	}
	f.spine = make([]int32, n)
	next := make([]int32, k)
	copy(next, f.spineOff[:k])
	for x := 0; x < n; x++ {
		ki := slot[f.lmld[x]]
		f.spine[next[ki]] = int32(x)
		next[ki]++
	}
	// Root-child boundaries for the checkpoint memo: the root keyroot's
	// forest starts at post-order 0, so the DP row completed after child
	// Ck ends at cumulative-size offset end(Ck)+1. The prefix fold at each
	// boundary reuses the amortised per-subtree fingerprints.
	if nch := len(t.Children); nch > 0 {
		f.ckptRow = make([]int32, nch)
		f.ckptFP = make([]tree.Fingerprint, nch)
		var acc tree.Fingerprint
		end := int32(-1)
		for ci, ch := range t.Children {
			end += int32(ch.Size())
			acc = ckptFold(acc, sub[end])
			f.ckptRow[ci] = end + 1
			f.ckptFP[ci] = acc
		}
	}
}
