package ted

// Property-based tests for the metric axioms of tree edit distance. TED
// under unit costs is a true metric on ordered labelled trees (Zhang &
// Shasha; Bille's survey): identity of indiscernibles, symmetry, and the
// triangle inequality all hold. The randomized suites below exercise the
// Zhang–Shasha implementation against each axiom and pin the cached path
// to the uncached one, so any future optimisation of the inner loops has
// the whole axiom system as a tripwire.

import (
	"math/rand"
	"testing"

	"silvervale/internal/tree"
)

// randTree builds a random tree with n nodes drawn from a small label
// alphabet: every new node attaches under a uniformly chosen existing
// node, which produces varied shapes (chains, bushes, mixtures).
func randTree(r *rand.Rand, n int) *tree.Node {
	labels := []string{"A", "B", "C", "D", "E"}
	root := tree.New(labels[r.Intn(len(labels))])
	nodes := []*tree.Node{root}
	for i := 1; i < n; i++ {
		parent := nodes[r.Intn(len(nodes))]
		child := tree.New(labels[r.Intn(len(labels))])
		parent.Add(child)
		nodes = append(nodes, child)
	}
	return root
}

func TestAxiomIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		tr := randTree(r, 1+r.Intn(60))
		if d := Distance(tr, tr); d != 0 {
			t.Fatalf("d(t,t) = %d, want 0 for tree %s", d, tr)
		}
		// identity must hold under non-unit costs too: the empty edit
		// script costs nothing regardless of per-operation weights
		c := Costs{Insert: 1 + r.Intn(3), Delete: 1 + r.Intn(3), Rename: 1 + r.Intn(3)}
		if d := DistanceWithCosts(tr, tr.Clone(), c); d != 0 {
			t.Fatalf("d(t,clone(t)) = %d under costs %+v, want 0", d, c)
		}
	}
}

func TestAxiomPositivity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		a := randTree(r, 1+r.Intn(40))
		b := randTree(r, 1+r.Intn(40))
		d := Distance(a, b)
		if d < 0 {
			t.Fatalf("negative distance %d", d)
		}
		if d == 0 && !tree.Equal(a, b) {
			t.Fatalf("d = 0 for distinct trees\na=%s\nb=%s", a, b)
		}
		if d != 0 && tree.Equal(a, b) {
			t.Fatalf("d = %d for equal trees %s", d, a)
		}
	}
}

func TestAxiomSymmetryUnitCosts(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		a := randTree(r, 1+r.Intn(50))
		b := randTree(r, 1+r.Intn(50))
		ab, ba := Distance(a, b), Distance(b, a)
		if ab != ba {
			t.Fatalf("asymmetric: d(a,b)=%d d(b,a)=%d\na=%s\nb=%s", ab, ba, a, b)
		}
	}
	// symmetry also holds whenever Insert == Delete (reversing the edit
	// script swaps inserts and deletes and keeps renames)
	for i := 0; i < 30; i++ {
		a := randTree(r, 1+r.Intn(40))
		b := randTree(r, 1+r.Intn(40))
		c := Costs{Insert: 2, Delete: 2, Rename: 3}
		ab := DistanceWithCosts(a, b, c)
		ba := DistanceWithCosts(b, a, c)
		if ab != ba {
			t.Fatalf("asymmetric under symmetric costs: %d vs %d", ab, ba)
		}
	}
}

func TestAxiomTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		a := randTree(r, 1+r.Intn(35))
		b := randTree(r, 1+r.Intn(35))
		c := randTree(r, 1+r.Intn(35))
		ab, bc, ac := Distance(a, b), Distance(b, c), Distance(a, c)
		if ac > ab+bc {
			t.Fatalf("triangle violated: d(a,c)=%d > d(a,b)+d(b,c)=%d+%d\na=%s\nb=%s\nc=%s",
				ac, ab, bc, a, b, c)
		}
	}
}

// TestCachedAgreesWithUncached pins Cache.Distance to Distance on
// randomized trees, including repeated queries (memo hits), swapped
// argument order (canonicalised symmetric keys), and non-unit costs.
func TestCachedAgreesWithUncached(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := NewCache()
	costs := []Costs{
		UnitCosts(),
		{Insert: 2, Delete: 1, Rename: 1},
		{Insert: 1, Delete: 2, Rename: 3},
	}
	var trees []*tree.Node
	for i := 0; i < 20; i++ {
		trees = append(trees, randTree(r, 1+r.Intn(45)))
	}
	for round := 0; round < 2; round++ { // second round answers from the memo
		for _, a := range trees {
			for _, b := range trees {
				for _, cs := range costs {
					want := DistanceWithCosts(a, b, cs)
					if got := c.DistanceWithCosts(a, b, cs); got != want {
						t.Fatalf("round %d costs %+v: cached %d != uncached %d\na=%s\nb=%s",
							round, cs, got, want, a, b)
					}
				}
				wantApprox := ApproxDistance(a, b)
				if got := c.ApproxDistance(a, b); got != wantApprox {
					t.Fatalf("cached approx %v != uncached %v", got, wantApprox)
				}
			}
		}
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("implausible cache stats after mixed workload: %+v", st)
	}
}

func TestCacheIdentityShortCircuit(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	c := NewCache()
	tr := randTree(r, 80)
	clone := tr.Clone()
	if d := c.Distance(tr, clone); d != 0 {
		t.Fatalf("d(t, clone) = %d, want 0", d)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("identity pair should short-circuit without a miss: %+v", st)
	}
	if st.Entries != 0 {
		t.Fatalf("identity shortcut should not populate the memo: %+v", st)
	}
}

func TestCacheNilTrees(t *testing.T) {
	c := NewCache()
	tr := tree.New("A", tree.New("B"))
	cases := []struct {
		a, b *tree.Node
	}{{nil, nil}, {nil, tr}, {tr, nil}}
	for _, tc := range cases {
		want := Distance(tc.a, tc.b)
		if got := c.Distance(tc.a, tc.b); got != want {
			t.Fatalf("nil handling: cached %d != uncached %d", got, want)
		}
	}
}
