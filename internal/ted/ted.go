// Package ted implements Tree Edit Distance (TED).
//
// TED is defined as the minimal total cost of deleting, inserting, and
// relabelling tree nodes required to transform one ordered tree into another
// (Section III.B of the paper; Bille's survey; Zhang & Shasha). The exact
// algorithm implemented here is Zhang–Shasha with keyroots, which runs in
// O(n1*n2*min(d1,l1)*min(d2,l2)) time and O(n1*n2) space. The paper uses
// APTED, whose worst case is O(n^2) space as well; for the unit-sized trees
// produced by the indexing step the Zhang–Shasha bound is equivalent in
// practice, and the package additionally provides a pq-gram approximation
// (see approx.go) as the memory-friendly mode the paper lists as future
// work.
//
// The hot path is organised around reuse (DESIGN.md §6): labels intern into
// one process-wide table (flatten.go), per-call buffers — flattened trees,
// DP matrices, gate tables — come from a sync.Pool sized by high-water mark
// (pool.go), cheap exact bound gates run before the quadratic DP
// (bounds.go), and Cache memoises the flattened form of each tree by
// content fingerprint so a matrix sweep flattens every tree once.
//
// By default every operation has unit cost, matching the evaluation setup
// ("we use the unit weight of one for all nodes and operations"). Different
// weights can be supplied via Costs; e.g. adding new code may have a
// different productivity impact than removing existing code.
package ted

import (
	"silvervale/internal/tree"
)

// Costs configures per-operation weights.
type Costs struct {
	Insert int
	Delete int
	Rename int // cost of relabelling when labels differ
}

// UnitCosts is the configuration used throughout the paper's evaluation.
func UnitCosts() Costs { return Costs{Insert: 1, Delete: 1, Rename: 1} }

// Distance computes the exact tree edit distance between two trees with unit
// costs. Nil trees are treated as empty: the distance from nil to T is |T|.
func Distance(t1, t2 *tree.Node) int {
	return DistanceWithCosts(t1, t2, UnitCosts())
}

// DistanceWithCosts computes the exact tree edit distance under the given
// cost model.
func DistanceWithCosts(t1, t2 *tree.Node, c Costs) int {
	if t1 == nil && t2 == nil {
		return 0
	}
	if t1 == nil {
		return t2.Size() * c.Insert
	}
	if t2 == nil {
		return t1.Size() * c.Delete
	}
	sc := getScratch()
	sc.prepFlat(&sc.fa, t1.Size())
	fillFlat(&sc.fa, t1, sc.seen)
	sc.prepFlat(&sc.fb, t2.Size())
	fillFlat(&sc.fb, t2, sc.seen)
	d, pruned := boundGate(&sc.fa, &sc.fb, c, sc)
	if !pruned {
		d = zsDistance(&sc.fa, &sc.fb, c, sc)
	}
	putScratch(sc)
	return d
}

// zsDistance runs the Zhang–Shasha keyroot recurrence over two flattened
// trees using sc's pooled DP matrices.
func zsDistance(a, b *flat, c Costs, sc *dpScratch) int {
	n1 := len(a.labels)
	n2 := len(b.labels)
	td := sc.matrix(&sc.td, &sc.tdRows, n1, n2)
	fd := sc.matrix(&sc.fd, &sc.fdRows, n1+1, n2+1)
	boff := grow32(sc.boff, n2)
	sc.boff = boff
	for _, i := range a.kr {
		for _, j := range b.kr {
			treedist(a, b, i, j, c, td, fd, boff)
		}
	}
	return int(td[n1-1][n2-1])
}

// treedist fills td for the subtree pair rooted at post-order indices (i, j)
// following the classic Zhang–Shasha forest recurrence. The inner loop is
// restructured for the profile-measured hot path: the b-side lmld offsets
// are precomputed once per keyroot pair into boff (so the per-cell whole-
// forest test is a single compare against 0), rows where the a-forest is a
// whole subtree are split from the common case (removing the branch from
// the majority of cells), and the west/northwest neighbours are carried in
// registers across the row instead of re-read from the matrix.
func treedist(a, b *flat, i, j int, c Costs, td, fd [][]int32, boff []int32) {
	li := int(a.lmld[i])
	lj := int(b.lmld[j])
	m1 := i - li + 1 // a-forest size (DP rows)
	m2 := j - lj + 1 // b-forest size (DP cols)
	ins := int32(c.Insert)
	del := int32(c.Delete)
	ren := int32(c.Rename)

	fd[0][0] = 0
	col := int32(0)
	for r := 1; r <= m1; r++ {
		col += del
		fd[r][0] = col
	}
	row0 := fd[0][:m2+1]
	acc := int32(0)
	for cj := 1; cj <= m2; cj++ {
		acc += ins
		row0[cj] = acc
	}

	// boff[cj] is bLmld[lj+cj]-lj: 0 exactly when the b-forest ending at
	// that node is a whole subtree, and otherwise the fd column where the
	// left part of the split b-forest ends.
	bl := b.lmld[lj : j+1]
	bo := boff[:m2]
	for cj := range bo {
		bo[cj] = bl[cj] - int32(lj)
	}
	blab := b.labels[lj : j+1]

	for di := li; di <= i; di++ {
		r := di - li
		prev := fd[r][:m2+1]
		cur := fd[r+1][:m2+1]
		tdRow := td[di][lj : j+1]
		fdA := fd[int(a.lmld[di])-li]
		left := cur[0]
		if int(a.lmld[di]) == li {
			// The a-forest is a whole subtree: cells where the b-forest is
			// too (bo == 0) both close a treedist entry and use the rename
			// recurrence.
			la := a.labels[di]
			diag := prev[0]
			for cj := 0; cj < m2; cj++ {
				up := prev[cj+1]
				var d int32
				if bo[cj] == 0 {
					rc := int32(0)
					if la != blab[cj] {
						rc = ren
					}
					d = min3(up+del, left+ins, diag+rc)
					tdRow[cj] = d
				} else {
					d = min3(up+del, left+ins, fdA[bo[cj]]+tdRow[cj])
				}
				cur[cj+1] = d
				left = d
				diag = up
			}
		} else {
			for cj := 0; cj < m2; cj++ {
				d := min3(prev[cj+1]+del, left+ins, fdA[bo[cj]]+tdRow[cj])
				cur[cj+1] = d
				left = d
			}
		}
	}
}

func min3(a, b, c int32) int32 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// MaxDistance returns dmax for a tree pair (Eq. 7): the size of the
// right-hand tree, i.e. the distance at which the second codebase is
// considered entirely different from the first. MaxDistance of a nil tree
// is 0.
func MaxDistance(t2 *tree.Node) int { return t2.Size() }

// Normalized returns Distance(t1, t2) normalised into [0, ~]: distance
// divided by dmax (Eq. 7). A value of 0 means identical; values can exceed 1
// when |t1| > |t2| because dmax is not a strict upper bound ("this is
// different from a divergence upper-bound, which we do not define").
func Normalized(t1, t2 *tree.Node) float64 {
	dm := MaxDistance(t2)
	if dm == 0 {
		if t1.Size() == 0 {
			return 0
		}
		return 1
	}
	return float64(Distance(t1, t2)) / float64(dm)
}
