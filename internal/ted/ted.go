// Package ted implements Tree Edit Distance (TED).
//
// TED is defined as the minimal total cost of deleting, inserting, and
// relabelling tree nodes required to transform one ordered tree into another
// (Section III.B of the paper; Bille's survey; Zhang & Shasha). The exact
// algorithm implemented here is Zhang–Shasha with keyroots, which runs in
// O(n1*n2*min(d1,l1)*min(d2,l2)) time and O(n1*n2) space. The paper uses
// APTED, whose worst case is O(n^2) space as well; for the unit-sized trees
// produced by the indexing step the Zhang–Shasha bound is equivalent in
// practice, and the package additionally provides a pq-gram approximation
// (see approx.go) as the memory-friendly mode the paper lists as future
// work.
//
// The hot path is organised around reuse (DESIGN.md §6): labels intern into
// one process-wide table (flatten.go), per-call buffers — flattened trees,
// DP matrices, gate tables — come from a sync.Pool sized by high-water mark
// (pool.go), cheap exact bound gates run before the quadratic DP
// (bounds.go), and Cache memoises the flattened form of each tree by
// content fingerprint so a matrix sweep flattens every tree once.
//
// By default every operation has unit cost, matching the evaluation setup
// ("we use the unit weight of one for all nodes and operations"). Different
// weights can be supplied via Costs; e.g. adding new code may have a
// different productivity impact than removing existing code.
package ted

import (
	"sort"

	"silvervale/internal/tree"
)

// Costs configures per-operation weights.
type Costs struct {
	Insert int
	Delete int
	Rename int // cost of relabelling when labels differ
}

// UnitCosts is the configuration used throughout the paper's evaluation.
func UnitCosts() Costs { return Costs{Insert: 1, Delete: 1, Rename: 1} }

// Distance computes the exact tree edit distance between two trees with unit
// costs. Nil trees are treated as empty: the distance from nil to T is |T|.
func Distance(t1, t2 *tree.Node) int {
	return DistanceWithCosts(t1, t2, UnitCosts())
}

// DistanceWithCosts computes the exact tree edit distance under the given
// cost model.
func DistanceWithCosts(t1, t2 *tree.Node, c Costs) int {
	if t1 == nil && t2 == nil {
		return 0
	}
	if t1 == nil {
		return t2.Size() * c.Insert
	}
	if t2 == nil {
		return t1.Size() * c.Delete
	}
	sc := getScratch()
	sc.prepFlat(&sc.fa, t1.Size())
	fillFlat(&sc.fa, t1, sc.seen)
	sc.prepFlat(&sc.fb, t2.Size())
	fillFlat(&sc.fb, t2, sc.seen)
	d, pruned := boundGate(&sc.fa, &sc.fb, c, sc)
	if !pruned {
		d = zsDistance(&sc.fa, &sc.fb, c, sc)
	}
	putScratch(sc)
	return d
}

// zsDistance runs the Zhang–Shasha keyroot recurrence over two flattened
// trees using sc's pooled DP matrices. This monolithic form is the
// reference the memoised decomposition below must match bit for bit.
func zsDistance(a, b *flat, c Costs, sc *dpScratch) int {
	n1 := len(a.labels)
	n2 := len(b.labels)
	td, fd, boff := sc.dpTables(n1, n2)
	for _, i := range a.kr {
		for _, j := range b.kr {
			treedist(a, b, i, j, c, td, fd, boff)
		}
	}
	return int(td[n1-1][n2-1])
}

// zsDistanceMemo is zsDistance decomposed into its keyroot subproblems,
// each served from the cache's content-addressed subtree-block memo when
// possible (DESIGN.md §13). Soundness rests on two properties of the
// Zhang–Shasha recurrence:
//
//   - treedist(i, j) writes exactly the td cells spine(i) x spine(j) —
//     the subtree pairs whose keyroot pair is (i, j) — and those values
//     are the exact subtree-pair distances, a pure function of the two
//     subtrees' content plus the cost model. Nothing else about the
//     enclosing trees leaks in.
//   - its td reads are confined to cells owned by strictly earlier pairs
//     in the ascending keyroot enumeration.
//
// So a block keyed by (subtree fingerprint pair, costs) can be restored
// into td in enumeration order in place of re-running the DP, and every
// later read — including the final root pair — sees bit-identical values.
// This is why the memo is exact where a subtree-alignment DP is only an
// upper bound: it replays the monolithic DP's own subproblem results
// rather than re-deriving the distance from per-subtree distances, which
// cannot express forest mappings that split a subtree (§12).
//
// Two refinements keep the warm path off the recompute floor (§13):
//
//   - Lazy materialisation. A hit block's cells are only written into td
//     when a DP run may actually read them. treedist(i, j) reads td cells
//     confined to the post-order rectangle subtree(i) x subtree(j), and
//     every cell in it is owned by a keyroot pair inside the same
//     rectangle, so restoring the pending blocks of that keyroot sub-grid
//     just before the run covers every read. Pairs below the size
//     threshold need no materialisation at all: their read set is owned
//     by strictly smaller pairs, which are below the threshold too and
//     therefore always freshly computed.
//   - Forest-prefix checkpoint resume. The root keyroot's row is the one
//     row a root-changing edit always invalidates, and it dominates the
//     recompute floor (its DP spans the whole tree). During a full
//     root-row DP the fd row completed at each root-child boundary is a
//     pure function of (cut forest C1..Ck, b subtree, costs), so it is
//     captured under that content address; a later root-row miss resumes
//     from the deepest boundary whose prefix fold still matches, paying
//     only the rows after the edit. Resume is all-or-nothing across the
//     root row: a resumed pair leaves its prefix-spine td cells
//     unmaterialised, which is sound only because no below-threshold or
//     fully-recomputed pair remains in the row to read them (non-root
//     keyroots never own root-spine cells — the root is the only keyroot
//     of its lmld class).
//
// Map traffic is batched: one read-lock probes the whole keyroot grid
// plus the root-row checkpoints (phase 1), the DP/materialise pass runs
// lock-free (phase 2), and one write lock publishes fresh blocks,
// checkpoint rows, and probe rows keep-first (phase 3) — so the warm
// path pays two lock acquisitions per tree pair, not two per keyroot
// pair. The probe-row memo collapses phase 1 further: a keyroot row
// whose probe once came back all-hit is recorded under (a keyroot
// subtree, b tree, costs) and replayed as one map probe plus a pointer
// copy, so a warm re-probe pays one lookup per row instead of one per
// memoisable slot (§13).
func (c *Cache) zsDistanceMemo(a, b *flat, costs Costs, sc *dpScratch, o *cacheObs) int {
	n1 := len(a.labels)
	n2 := len(b.labels)
	td, fd, boff := sc.dpTables(n1, n2)
	k1 := len(a.kr)
	k2 := len(b.kr)
	blocks, done := sc.blockRefs(k1 * k2)
	minCells := c.subMin
	lastKi := k1 - 1

	// ckEligible also requires n1 >= minCells: with it, every root-row
	// pair has cells = n1*m2 >= n1 >= minCells, so the all-or-nothing
	// resume rule never has to reason about below-threshold pairs.
	ckEligible := len(a.ckptRow) > 0 && n1 >= c.ckptMin && n1 >= minCells
	var resume []ckptRef
	if ckEligible {
		resume = sc.ckptRefs(k2)
	}

	var hits, misses, ckHits, ckMisses, rowHits, rowMisses uint64
	var freshRows []rowEntry
	bRoot := b.krFP[k2-1] // root is the last keyroot: the whole b tree
	c.subMu.RLock()
	for ki, i := range a.kr {
		m1 := i - int(a.lmld[i]) + 1
		row := blocks[ki*k2 : (ki+1)*k2]
		// One probe-row memo hit replaces the whole slot-by-slot scan.
		// Recorded rows were all-hit when recorded, and the block memo is
		// keep-first and append-only, so the replay equals a fresh probe:
		// same slots, same blocks, same hit count (see rowEntry).
		rk := rowKey{a: a.krFP[ki], b: bRoot, costs: costs}
		if slots, ok := c.rows[rk]; ok {
			rowHits++
			for kj := range row {
				row[kj] = nil
			}
			for _, s := range slots {
				row[s.kj] = s.bl
			}
			hits += uint64(len(slots))
			continue
		}
		rowMisses++
		allHit := true
		var slots []rowSlot
		for kj, j := range b.kr {
			if m1*(j-int(b.lmld[j])+1) < minCells {
				row[kj] = nil // scratch slot may hold a stale pointer
				continue
			}
			bl := c.subs[subKey{a: a.krFP[ki], b: b.krFP[kj], costs: costs}]
			row[kj] = bl
			if bl != nil {
				hits++
				slots = append(slots, rowSlot{kj: int32(kj), bl: bl})
			} else {
				allHit = false
			}
		}
		if allHit {
			freshRows = append(freshRows, rowEntry{key: rk, slots: slots})
		}
	}
	resumable := ckEligible
	minR0 := n1
	if ckEligible {
		row := blocks[lastKi*k2:]
		for kj, j := range b.kr {
			resume[kj] = ckptRef{}
			if row[kj] != nil {
				continue
			}
			m2 := j - int(b.lmld[j]) + 1
			found := false
			for t := len(a.ckptRow) - 1; t >= 0; t-- {
				vals, ok := c.ckpts[ckptKey{prefix: a.ckptFP[t], b: b.krFP[kj], costs: costs}]
				if ok && len(vals) == m2+1 {
					resume[kj] = ckptRef{row: a.ckptRow[t], vals: vals}
					found = true
					if r := int(a.ckptRow[t]); r < minR0 {
						minR0 = r
					}
					break
				}
			}
			if !found {
				resumable = false
				ckMisses++
			}
		}
	}
	c.subMu.RUnlock()

	// materialise produces every pending td cell inside the post-order
	// rectangle [aLo..aHi] x [bLo..bHi] — the cells the next DP run may
	// read: hit blocks are restored, and below-threshold pairs (deferred
	// by the main loop — most of them are never read on a warm sweep) are
	// computed now, in ascending keyroot-pair order so their own reads are
	// satisfied first. Keyroot subtrees never straddle the bounds used
	// here (subtree rectangles and root-forest suffixes are both unions of
	// whole keyroot subtrees), so the sorted keyroot arrays give the
	// covered pairs as contiguous index ranges, and a covered pair's own
	// read rectangle is nested inside the requested one — no recursion.
	// Memoisable misses inside the rectangle need no case: rectangle
	// containment means they enumerate before the requesting pair, so the
	// main loop already computed them (their done mark distinguishes them
	// from deferred below-threshold slots); the requesting pair itself is
	// skipped by the threshold test.
	materialise := func(aLo, aHi, bLo, bHi int) {
		kiLo := sort.SearchInts(a.kr, aLo)
		kjLo := sort.SearchInts(b.kr, bLo)
		for ki := kiLo; ki < k1 && a.kr[ki] <= aHi; ki++ {
			i := a.kr[ki]
			m1 := i - int(a.lmld[i]) + 1
			row := blocks[ki*k2 : (ki+1)*k2]
			rdone := done[ki*k2 : (ki+1)*k2]
			var rows []int32
			for kj := kjLo; kj < k2 && b.kr[kj] <= bHi; kj++ {
				if rdone[kj] {
					continue
				}
				if bl := row[kj]; bl != nil {
					rdone[kj] = true
					if rows == nil {
						rows = a.spine[a.spineOff[ki]:a.spineOff[ki+1]]
					}
					restoreBlock(td, rows, b.spine[b.spineOff[kj]:b.spineOff[kj+1]], bl.vals)
				} else if j := b.kr[kj]; m1*(j-int(b.lmld[j])+1) < minCells {
					rdone[kj] = true
					treedist(a, b, i, j, costs, td, fd, boff)
				}
			}
		}
	}

	var fresh []subEntry
	var freshCk []ckptEntry
	suffixDone := false
	st := c.backing.Load()
	for ki, i := range a.kr {
		li := int(a.lmld[i])
		m1 := i - li + 1
		rows := a.spine[a.spineOff[ki]:a.spineOff[ki+1]]
		row := blocks[ki*k2 : (ki+1)*k2]
		rdone := done[ki*k2 : (ki+1)*k2]
		isRoot := ki == lastKi
		for kj, j := range b.kr {
			if row[kj] != nil {
				continue // hit: materialised lazily if a later DP reads it
			}
			lj := int(b.lmld[j])
			cells := m1 * (j - lj + 1)
			if cells < minCells {
				continue // deferred: materialised only if a later DP reads it
			}
			cols := b.spine[b.spineOff[kj]:b.spineOff[kj+1]]
			key := subKey{a: a.krFP[ki], b: b.krFP[kj], costs: costs}
			if isRoot && resumable {
				// Block miss served by a checkpoint: recompute only the
				// rows after the deepest matching prefix boundary. No
				// block is harvested (the prefix-spine cells were never
				// written); boundaries passed on the way down are.
				misses++
				ckHits++
				r0 := int(resume[kj].row)
				if !suffixDone {
					// One scan covers every resumed pair in the row: their
					// read rectangles all sit inside [shallowest resume
					// boundary .. root] x the whole b tree.
					materialise(li+minR0, i, 0, n2-1)
					suffixDone = true
				}
				treedistFrom(a, b, i, j, costs, td, fd, boff, r0, resume[kj].vals)
				rdone[kj] = true
				freshCk = captureCkpts(freshCk, a, b.krFP[kj], j, lj, costs, fd, r0)
				continue
			}
			// Large blocks are worth a disk round trip: consult the
			// persistent sub tier before paying the DP.
			if st != nil && cells >= subStoreMinCells {
				if l1, l2, vals, ok := st.LookupSub(subStoreKey(key)); ok &&
					int(l1) == len(rows) && int(l2) == len(cols) {
					hits++
					// Promote into the grid: later DP runs materialise it
					// on demand, exactly like a memory hit.
					row[kj] = &subBlock{l1: l1, l2: l2, vals: vals}
					fresh = append(fresh, subEntry{key: key, block: row[kj]})
					continue
				}
			}
			misses++
			materialise(li, i, lj, j)
			treedist(a, b, i, j, costs, td, fd, boff)
			rdone[kj] = true
			fresh = append(fresh, subEntry{key: key, block: &subBlock{
				l1:   int32(len(rows)),
				l2:   int32(len(cols)),
				vals: harvestBlock(td, rows, cols),
			}, persist: cells >= subStoreMinCells})
			if isRoot && ckEligible {
				freshCk = captureCkpts(freshCk, a, b.krFP[kj], j, lj, costs, fd, 0)
			}
		}
	}

	var d int
	if bl := blocks[k1*k2-1]; bl != nil {
		// Root-pair hit that nothing recomputed ever read: the distance is
		// the block's last cell, no materialisation needed.
		d = int(bl.vals[len(bl.vals)-1])
	} else {
		if !done[k1*k2-1] {
			// The root pair itself was below the memo threshold — then so is
			// every pair (nothing has more cells), and the whole grid was
			// deferred. Produce it now; the ascending scan ends with the
			// root-pair DP.
			materialise(0, n1-1, 0, n2-1)
		}
		d = int(td[n1-1][n2-1])
	}

	if len(fresh) > 0 || len(freshCk) > 0 || len(freshRows) > 0 {
		c.publishSubBlocks(fresh, freshCk, freshRows, st, o)
	}
	if hits > 0 {
		c.subHits.Add(hits)
		if o != nil {
			o.subHits.Add(int64(hits))
		}
	}
	if misses > 0 {
		c.subMisses.Add(misses)
		if o != nil {
			o.subMisses.Add(int64(misses))
		}
	}
	if ckHits > 0 {
		c.ckptHits.Add(ckHits)
		if o != nil {
			o.ckptHits.Add(int64(ckHits))
		}
	}
	if ckMisses > 0 {
		c.ckptMisses.Add(ckMisses)
		if o != nil {
			o.ckptMisses.Add(int64(ckMisses))
		}
	}
	if rowHits > 0 {
		c.rowHits.Add(rowHits)
		if o != nil {
			o.rowHits.Add(int64(rowHits))
		}
	}
	if rowMisses > 0 {
		c.rowMisses.Add(rowMisses)
		if o != nil {
			o.rowMisses.Add(int64(rowMisses))
		}
	}
	return d
}

// captureCkpts copies the fd rows completed at root-child boundaries
// deeper than r0 out of the pooled DP table, keyed by (prefix fold, b
// subtree, costs) for publication. Boundaries at or above r0 were either
// restored from the memo (r0 itself) or never computed this run.
func captureCkpts(dst []ckptEntry, a *flat, bFP tree.Fingerprint, j, lj int, costs Costs, fd [][]int32, r0 int) []ckptEntry {
	m2 := j - lj + 1
	for t, r := range a.ckptRow {
		if int(r) <= r0 {
			continue
		}
		vals := append([]int32(nil), fd[r][:m2+1]...)
		dst = append(dst, ckptEntry{
			key:  ckptKey{prefix: a.ckptFP[t], b: bFP, costs: costs},
			vals: vals,
		})
	}
	return dst
}

// restoreBlock writes a memoised block's values into the td cells the
// originating treedist call wrote: the row-major spine(i) x spine(j) grid.
func restoreBlock(td [][]int32, rows, cols []int32, vals []int32) {
	for r, x := range rows {
		tdRow := td[x]
		v := vals[r*len(cols):]
		for ci, y := range cols {
			tdRow[y] = v[ci]
		}
	}
}

// harvestBlock copies the td cells a treedist call just wrote into a
// fresh backing array, the immutable payload of a new block.
func harvestBlock(td [][]int32, rows, cols []int32) []int32 {
	vals := make([]int32, len(rows)*len(cols))
	for r, x := range rows {
		tdRow := td[x]
		v := vals[r*len(cols):]
		for ci, y := range cols {
			v[ci] = tdRow[y]
		}
	}
	return vals
}

// treedist fills td for the subtree pair rooted at post-order indices (i, j)
// following the classic Zhang–Shasha forest recurrence. The inner loop is
// restructured for the profile-measured hot path: the b-side lmld offsets
// are precomputed once per keyroot pair into boff (so the per-cell whole-
// forest test is a single compare against 0), rows where the a-forest is a
// whole subtree are split from the common case (removing the branch from
// the majority of cells), and the west/northwest neighbours are carried in
// registers across the row instead of re-read from the matrix.
func treedist(a, b *flat, i, j int, c Costs, td, fd [][]int32, boff []int32) {
	treedistFrom(a, b, i, j, c, td, fd, boff, 0, nil)
}

// treedistFrom is treedist with checkpoint resume (§13): when r0 > 0,
// the memoised fd row `resume` (the row completed at a-forest prefix
// [0..r0-1], m2+1 cells) is installed as the predecessor row and the row
// loop starts at prefix length r0 instead of 0. Only the root keyroot is
// ever resumed, so li == 0 and fd row indices coincide with prefix
// lengths. The skipped rows' td cells are NOT produced; the caller's
// all-or-nothing rule guarantees nothing later reads them, and the rows
// that do run read only fd rows >= r0 plus fd[0] (a suffix node's lmld
// is either >= r0, or it is the root itself, whose lmld row is fd[0] —
// written unconditionally below).
func treedistFrom(a, b *flat, i, j int, c Costs, td, fd [][]int32, boff []int32, r0 int, resume []int32) {
	li := int(a.lmld[i])
	lj := int(b.lmld[j])
	m1 := i - li + 1 // a-forest size (DP rows)
	m2 := j - lj + 1 // b-forest size (DP cols)
	ins := int32(c.Insert)
	del := int32(c.Delete)
	ren := int32(c.Rename)

	// Column 0 is only read for rows >= r0 (the resumed row itself arrives
	// via the checkpoint copy, whose [0] cell is the same pure function),
	// so a resumed run skips the prefix writes.
	fd[0][0] = 0
	col := int32(r0) * del
	for r := r0 + 1; r <= m1; r++ {
		col += del
		fd[r][0] = col
	}
	row0 := fd[0][:m2+1]
	acc := int32(0)
	for cj := 1; cj <= m2; cj++ {
		acc += ins
		row0[cj] = acc
	}

	// boff[cj] is bLmld[lj+cj]-lj: 0 exactly when the b-forest ending at
	// that node is a whole subtree, and otherwise the fd column where the
	// left part of the split b-forest ends.
	bl := b.lmld[lj : j+1]
	bo := boff[:m2]
	for cj := range bo {
		bo[cj] = bl[cj] - int32(lj)
	}
	blab := b.labels[lj : j+1]

	if r0 > 0 {
		copy(fd[r0][:m2+1], resume)
	}

	for di := li + r0; di <= i; di++ {
		r := di - li
		prev := fd[r][:m2+1]
		cur := fd[r+1][:m2+1]
		tdRow := td[di][lj : j+1]
		fdA := fd[int(a.lmld[di])-li]
		left := cur[0]
		if int(a.lmld[di]) == li {
			// The a-forest is a whole subtree: cells where the b-forest is
			// too (bo == 0) both close a treedist entry and use the rename
			// recurrence.
			la := a.labels[di]
			diag := prev[0]
			for cj := 0; cj < m2; cj++ {
				up := prev[cj+1]
				var d int32
				if bo[cj] == 0 {
					rc := int32(0)
					if la != blab[cj] {
						rc = ren
					}
					d = min3(up+del, left+ins, diag+rc)
					tdRow[cj] = d
				} else {
					d = min3(up+del, left+ins, fdA[bo[cj]]+tdRow[cj])
				}
				cur[cj+1] = d
				left = d
				diag = up
			}
		} else {
			for cj := 0; cj < m2; cj++ {
				d := min3(prev[cj+1]+del, left+ins, fdA[bo[cj]]+tdRow[cj])
				cur[cj+1] = d
				left = d
			}
		}
	}
}

func min3(a, b, c int32) int32 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// MaxDistance returns dmax for a tree pair (Eq. 7): the size of the
// right-hand tree, i.e. the distance at which the second codebase is
// considered entirely different from the first. MaxDistance of a nil tree
// is 0.
func MaxDistance(t2 *tree.Node) int { return t2.Size() }

// Normalized returns Distance(t1, t2) normalised into [0, ~]: distance
// divided by dmax (Eq. 7). A value of 0 means identical; values can exceed 1
// when |t1| > |t2| because dmax is not a strict upper bound ("this is
// different from a divergence upper-bound, which we do not define").
func Normalized(t1, t2 *tree.Node) float64 {
	dm := MaxDistance(t2)
	if dm == 0 {
		if t1.Size() == 0 {
			return 0
		}
		return 1
	}
	return float64(Distance(t1, t2)) / float64(dm)
}
