// Package ted implements Tree Edit Distance (TED).
//
// TED is defined as the minimal total cost of deleting, inserting, and
// relabelling tree nodes required to transform one ordered tree into another
// (Section III.B of the paper; Bille's survey; Zhang & Shasha). The exact
// algorithm implemented here is Zhang–Shasha with keyroots, which runs in
// O(n1*n2*min(d1,l1)*min(d2,l2)) time and O(n1*n2) space. The paper uses
// APTED, whose worst case is O(n^2) space as well; for the unit-sized trees
// produced by the indexing step the Zhang–Shasha bound is equivalent in
// practice, and the package additionally provides a pq-gram approximation
// (see approx.go) as the memory-friendly mode the paper lists as future
// work.
//
// By default every operation has unit cost, matching the evaluation setup
// ("we use the unit weight of one for all nodes and operations"). Different
// weights can be supplied via Costs; e.g. adding new code may have a
// different productivity impact than removing existing code.
package ted

import (
	"silvervale/internal/tree"
)

// Costs configures per-operation weights.
type Costs struct {
	Insert int
	Delete int
	Rename int // cost of relabelling when labels differ
}

// UnitCosts is the configuration used throughout the paper's evaluation.
func UnitCosts() Costs { return Costs{Insert: 1, Delete: 1, Rename: 1} }

// Distance computes the exact tree edit distance between two trees with unit
// costs. Nil trees are treated as empty: the distance from nil to T is |T|.
func Distance(t1, t2 *tree.Node) int {
	return DistanceWithCosts(t1, t2, UnitCosts())
}

// DistanceWithCosts computes the exact tree edit distance under the given
// cost model.
func DistanceWithCosts(t1, t2 *tree.Node, c Costs) int {
	if t1 == nil && t2 == nil {
		return 0
	}
	if t1 == nil {
		return t2.Size() * c.Insert
	}
	if t2 == nil {
		return t1.Size() * c.Delete
	}
	in := newInterner()
	f1 := flatten(t1, in)
	f2 := flatten(t2, in)
	z := &zhangShasha{a: f1, b: f2, c: c}
	return z.run()
}

// interner maps labels to dense int ids so the inner loops compare ints.
type interner struct {
	ids map[string]int
}

func newInterner() *interner { return &interner{ids: make(map[string]int)} }

func (in *interner) id(label string) int {
	if id, ok := in.ids[label]; ok {
		return id
	}
	id := len(in.ids)
	in.ids[label] = id
	return id
}

// flat is a tree flattened to post-order arrays, the representation
// Zhang–Shasha operates on.
type flat struct {
	labels []int // label id per post-order index
	lmld   []int // leftmost leaf descendant per post-order index
	kr     []int // keyroots in increasing order
}

func flatten(t *tree.Node, in *interner) flat {
	n := t.Size()
	f := flat{
		labels: make([]int, n),
		lmld:   make([]int, n),
	}
	idx := 0
	var visit func(node *tree.Node) int // returns post-order index of node
	visit = func(node *tree.Node) int {
		first := -1
		for _, c := range node.Children {
			ci := visit(c)
			if first < 0 {
				first = f.lmld[ci]
			}
		}
		i := idx
		idx++
		f.labels[i] = in.id(node.Label)
		if first < 0 {
			f.lmld[i] = i
		} else {
			f.lmld[i] = first
		}
		return i
	}
	visit(t)

	// Keyroots: nodes that either are the root or have a left sibling; in
	// lmld terms, the highest node for each distinct leftmost-leaf value.
	seen := make(map[int]int)
	for i := 0; i < n; i++ {
		seen[f.lmld[i]] = i
	}
	for _, i := range seen {
		f.kr = append(f.kr, i)
	}
	sortInts(f.kr)
	return f
}

func sortInts(a []int) {
	// insertion sort is fine: keyroot counts are small relative to n
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

type zhangShasha struct {
	a, b flat
	c    Costs

	td [][]int32 // treedist
	fd [][]int32 // forestdist scratch
}

func (z *zhangShasha) run() int {
	n1 := len(z.a.labels)
	n2 := len(z.b.labels)
	z.td = alloc2(n1, n2)
	z.fd = alloc2(n1+1, n2+1)
	for _, i := range z.a.kr {
		for _, j := range z.b.kr {
			z.treedist(i, j)
		}
	}
	return int(z.td[n1-1][n2-1])
}

func alloc2(r, c int) [][]int32 {
	backing := make([]int32, r*c)
	out := make([][]int32, r)
	for i := range out {
		out[i] = backing[i*c : (i+1)*c]
	}
	return out
}

// treedist fills td for the subtree pair rooted at post-order indices (i, j)
// following the classic Zhang–Shasha forest recurrence.
func (z *zhangShasha) treedist(i, j int) {
	li := z.a.lmld[i]
	lj := z.b.lmld[j]
	ins := int32(z.c.Insert)
	del := int32(z.c.Delete)

	fd := z.fd
	fd[0][0] = 0
	for di := li; di <= i; di++ {
		fd[di-li+1][0] = fd[di-li][0] + del
	}
	row0 := fd[0]
	for dj := lj; dj <= j; dj++ {
		row0[dj-lj+1] = row0[dj-lj] + ins
	}
	aLmld, bLmld := z.a.lmld, z.b.lmld
	aLabels, bLabels := z.a.labels, z.b.labels
	ren := int32(z.c.Rename)
	for di := li; di <= i; di++ {
		prev := fd[di-li]  // row di-1 of the forest table
		cur := fd[di-li+1] // row di
		tdRow := z.td[di]  // treedist row for subtree rooted at di
		aWhole := aLmld[di] == li
		la := aLabels[di]
		fdA := fd[aLmld[di]-li]
		for dj := lj; dj <= j; dj++ {
			cj := dj - lj
			if aWhole && bLmld[dj] == lj {
				// both forests are whole trees
				r := int32(0)
				if la != bLabels[dj] {
					r = ren
				}
				d := min3(prev[cj+1]+del, cur[cj]+ins, prev[cj]+r)
				cur[cj+1] = d
				tdRow[dj] = d
			} else {
				d := min3(prev[cj+1]+del, cur[cj]+ins,
					fdA[bLmld[dj]-lj]+tdRow[dj])
				cur[cj+1] = d
			}
		}
	}
}

func min3(a, b, c int32) int32 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// MaxDistance returns dmax for a tree pair (Eq. 7): the size of the
// right-hand tree, i.e. the distance at which the second codebase is
// considered entirely different from the first. MaxDistance of a nil tree
// is 0.
func MaxDistance(t2 *tree.Node) int { return t2.Size() }

// Normalized returns Distance(t1, t2) normalised into [0, ~]: distance
// divided by dmax (Eq. 7). A value of 0 means identical; values can exceed 1
// when |t1| > |t2| because dmax is not a strict upper bound ("this is
// different from a divergence upper-bound, which we do not define").
func Normalized(t1, t2 *tree.Node) float64 {
	dm := MaxDistance(t2)
	if dm == 0 {
		if t1.Size() == 0 {
			return 0
		}
		return 1
	}
	return float64(Distance(t1, t2)) / float64(dm)
}
