package ted

// Tests for the subtree-block memo (DESIGN.md §13). The load-bearing
// property is bit-identity: the memoised decomposition replays the
// monolithic Zhang–Shasha DP's own subproblem results, so every distance
// it returns must equal the monolithic one exactly — on first sight
// (miss path), on repeats (hit path), across orientations, under any
// cost model, and under concurrent sharing. The structural tests pin the
// flatten-side plumbing the soundness argument leans on: the keyroot
// enumeration order and the spine partition.

import (
	"math/rand"
	"sync"
	"testing"

	"silvervale/internal/tree"
)

// memoCache returns a cache whose subtree memo and checkpoint memo fire
// on every keyroot pair: the default thresholds exist to skip work too
// small to profit, which would leave the fuzz-sized trees below them and
// the memos untested.
func memoCache() *Cache {
	c := NewCache()
	c.subMin = 1
	c.ckptMin = 1
	return c
}

// postorderNodes collects t's nodes in post-order, the index space the
// flat arrays live in.
func postorderNodes(t *tree.Node, out []*tree.Node) []*tree.Node {
	for _, c := range t.Children {
		out = postorderNodes(c, out)
	}
	return append(out, t)
}

// TestKeyrootSpineInvariants pins the flatten-side contract zsDistanceMemo
// depends on: keyroots ascending with the root last, each the highest node
// of its lmld class; krFP the content address of the keyroot's subtree;
// the spine partition covering every post-order index exactly once, each
// spine ascending and containing exactly its keyroot's lmld class; and the
// whole structure reproducible from a re-flatten (content addressing is
// meaningless if flattening the same tree twice disagrees).
func TestKeyrootSpineInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		tr := randTree(r, 1+r.Intn(120))
		n := tr.Size()
		f := newFlat(tr)
		nodes := postorderNodes(tr, nil)

		if len(f.kr) == 0 || f.kr[len(f.kr)-1] != n-1 {
			t.Fatalf("keyroots %v do not end at the root (n=%d)", f.kr, n)
		}
		seenLmld := map[int32]bool{}
		for ki, k := range f.kr {
			if ki > 0 && f.kr[ki-1] >= k {
				t.Fatalf("keyroots not strictly ascending: %v", f.kr)
			}
			l := f.lmld[k]
			if seenLmld[l] {
				t.Fatalf("two keyroots share lmld %d: %v", l, f.kr)
			}
			seenLmld[l] = true
			// highest of its class: no later node may share the lmld value
			for x := k + 1; x < n; x++ {
				if f.lmld[x] == l {
					t.Fatalf("keyroot %d is not the highest of lmld class %d (node %d above)", k, l, x)
				}
			}
			if got, want := f.krFP[ki], nodes[k].Fingerprint(); got != want {
				t.Fatalf("krFP[%d] = %+v, want subtree fingerprint %+v", ki, got, want)
			}
		}

		if f.spineOff[0] != 0 || int(f.spineOff[len(f.kr)]) != n {
			t.Fatalf("spine offsets %v do not span [0,%d)", f.spineOff, n)
		}
		covered := make([]bool, n)
		for ki, k := range f.kr {
			sp := f.spine[f.spineOff[ki]:f.spineOff[ki+1]]
			if len(sp) == 0 {
				t.Fatalf("keyroot %d has an empty spine", k)
			}
			for si, x := range sp {
				if si > 0 && sp[si-1] >= x {
					t.Fatalf("spine of keyroot %d not ascending: %v", k, sp)
				}
				if f.lmld[x] != f.lmld[k] {
					t.Fatalf("node %d on spine of keyroot %d has lmld %d, want %d",
						x, k, f.lmld[x], f.lmld[k])
				}
				if covered[x] {
					t.Fatalf("node %d appears on two spines", x)
				}
				covered[x] = true
			}
			if sp[len(sp)-1] != int32(k) {
				t.Fatalf("spine of keyroot %d does not end at the keyroot: %v", k, sp)
			}
		}
		for x, ok := range covered {
			if !ok {
				t.Fatalf("node %d belongs to no spine", x)
			}
		}

		// re-flatten stability: a second newFlat of the same tree must
		// reproduce keyroots, fingerprints, and the partition exactly
		g := newFlat(tr)
		if len(g.kr) != len(f.kr) {
			t.Fatalf("re-flatten changed keyroot count: %d vs %d", len(g.kr), len(f.kr))
		}
		for ki := range f.kr {
			if g.kr[ki] != f.kr[ki] || g.krFP[ki] != f.krFP[ki] {
				t.Fatalf("re-flatten diverged at keyroot %d", ki)
			}
		}
		for i := range f.spine {
			if g.spine[i] != f.spine[i] {
				t.Fatalf("re-flatten diverged at spine slot %d", i)
			}
		}
		for i := range f.spineOff {
			if g.spineOff[i] != f.spineOff[i] {
				t.Fatalf("re-flatten diverged at spine offset %d", i)
			}
		}
	}
}

// TestSubtreeMemoMatchesMonolithic drives the memoised path against the
// monolithic DP over random pairs and cost models. Each pair is followed
// by a near-copy (relabelSome) — distinct enough to miss the whole-pair
// distance memo, alike enough that clean keyroot blocks restore — plus
// the reversed orientation (blocks are oriented; the reverse pair must
// build or hit its own keys, never transpose).
func TestSubtreeMemoMatchesMonolithic(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	c := memoCache()
	for trial := 0; trial < 60; trial++ {
		a := randTree(r, 1+r.Intn(80))
		b := randTree(r, 1+r.Intn(80))
		costs := Costs{Insert: 1 + r.Intn(3), Delete: 1 + r.Intn(3), Rename: 1 + r.Intn(3)}
		want := DistanceWithCosts(a, b, costs)
		if got := c.DistanceWithCosts(a, b, costs); got != want {
			t.Fatalf("memoised %d != monolithic %d\na=%s\nb=%s costs=%+v", got, want, a, b, costs)
		}
		// mutate a copy so the distance memo misses but clean subtrees hit
		b2 := relabelSome(r, b, 1+r.Intn(5))
		want2 := DistanceWithCosts(a, b2, costs)
		if got := c.DistanceWithCosts(a, b2, costs); got != want2 {
			t.Fatalf("memoised %d != monolithic %d after relabel\na=%s\nb=%s", got, want2, a, b2)
		}
		wantRev := DistanceWithCosts(b, a, costs)
		if got := c.DistanceWithCosts(b, a, costs); got != wantRev {
			t.Fatalf("reversed memoised %d != monolithic %d", got, wantRev)
		}
	}
	// the mixed regime under default thresholds: some pairs memoise, the
	// rest defer to materialise-time recompute
	cd := NewCache()
	for trial := 0; trial < 30; trial++ {
		a := randTree(r, 60+r.Intn(90))
		b := relabelSome(r, a, 1+r.Intn(6))
		want := DistanceWithCosts(a, b, UnitCosts())
		if got := cd.DistanceWithCosts(a, b, UnitCosts()); got != want {
			t.Fatalf("default-threshold memoised %d != monolithic %d", got, want)
		}
	}
	s := c.Stats()
	if s.SubtreeHits == 0 || s.SubtreeMisses == 0 {
		t.Fatalf("memo never exercised both paths: %d hits, %d misses", s.SubtreeHits, s.SubtreeMisses)
	}
}

// TestSubtreeMemoConcurrent shares one cache across 8 goroutines computing
// overlapping pairs — racing builders of the same block must keep-first
// without torn payloads, and every answer must stay bit-identical to the
// monolithic DP. Run under -race this also proves the publication
// discipline.
func TestSubtreeMemoConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	var trees []*tree.Node
	base := randTree(r, 120)
	trees = append(trees, base)
	for i := 0; i < 5; i++ {
		trees = append(trees, relabelSome(r, base, 1+r.Intn(8)))
	}
	costs := UnitCosts()
	type pair struct{ a, b int }
	var pairs []pair
	want := map[pair]int{}
	for i := range trees {
		for j := range trees {
			p := pair{i, j}
			pairs = append(pairs, p)
			want[p] = DistanceWithCosts(trees[i], trees[j], costs)
		}
	}
	c := memoCache()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for _, p := range pairs {
					if got := c.DistanceWithCosts(trees[p.a], trees[p.b], costs); got != want[p] {
						select {
						case errs <- "": // detail printed by the main goroutine
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if _, bad := <-errs; bad {
		t.Fatal("concurrent memoised distance diverged from monolithic DP")
	}
	if s := c.Stats(); s.SubtreeHits == 0 {
		t.Fatalf("shared cache never hit: %+v", s)
	}
}

// TestSubtreeMemoEviction squeezes the byte bound until publishes evict,
// then re-verifies distances: eviction may cost recomputes, never wrong
// answers, and the accounting must stay consistent with residency.
func TestSubtreeMemoEviction(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	c := memoCache()
	c.subMax = 4 << 10
	for trial := 0; trial < 30; trial++ {
		a := randTree(r, 40+r.Intn(80))
		b := randTree(r, 40+r.Intn(80))
		want := DistanceWithCosts(a, b, UnitCosts())
		if got := c.DistanceWithCosts(a, b, UnitCosts()); got != want {
			t.Fatalf("memoised %d != monolithic %d under eviction pressure", got, want)
		}
	}
	s := c.Stats()
	if s.SubtreeEvicted == 0 {
		t.Fatalf("no evictions under a %dB bound: %+v", c.subMax, s)
	}
	if s.SubtreeBytes > c.subMax {
		t.Fatalf("resident bytes %d exceed bound %d after eviction", s.SubtreeBytes, c.subMax)
	}
}

// TestSubtreeBlockExportImportRoundTrip: blocks exported from one cache
// and imported into a fresh one must serve hits there with bit-identical
// distances — the snapshot path watch -since rides on.
func TestSubtreeBlockExportImportRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	src := memoCache()
	var pairs [][2]*tree.Node
	for i := 0; i < 12; i++ {
		a := randTree(r, 30+r.Intn(60))
		b := relabelSome(r, a, 1+r.Intn(6))
		pairs = append(pairs, [2]*tree.Node{a, b})
		src.DistanceWithCosts(a, b, UnitCosts())
	}
	recs := src.ExportSubtreeBlocks()
	if len(recs) == 0 {
		t.Fatal("nothing exported from a warmed cache")
	}
	dst := memoCache()
	if installed := dst.ImportSubtreeBlocks(recs); installed != len(recs) {
		t.Fatalf("imported %d of %d records into an empty cache", installed, len(recs))
	}
	for _, p := range pairs {
		want := DistanceWithCosts(p[0], p[1], UnitCosts())
		if got := dst.DistanceWithCosts(p[0], p[1], UnitCosts()); got != want {
			t.Fatalf("restored cache returned %d, monolithic %d", got, want)
		}
	}
	if s := dst.Stats(); s.SubtreeHits == 0 {
		t.Fatalf("imported blocks never hit: %+v", s)
	}
	// malformed records are skipped, not installed
	bad := []SubtreeBlockRecord{{L1: 2, L2: 2, Vals: []int32{1, 2, 3}}}
	if n := memoCache().ImportSubtreeBlocks(bad); n != 0 {
		t.Fatalf("installed %d malformed records", n)
	}
}

// appendChild returns a clone of t with extra grafted on as a new last
// child of the root — the append-edit shape the root-row checkpoint memo
// exists for: every old root-child boundary's prefix fold is unchanged,
// so a warm cache can resume the root row past the old children.
func appendChild(t, extra *tree.Node) *tree.Node {
	c := t.Clone()
	c.Add(extra.Clone())
	return c
}

// TestRootRowCheckpointResume pins the checkpoint fast path end to end:
// after warming a pair, an append-only edit to the a-side root must be
// served by resuming the root keyroot's DP row from a memoised boundary
// (CheckpointHits advances) and still return the monolithic distance
// bit-identically. A b-side append must also stay correct even though
// checkpoints are a-side-only (no resume, just block-level reuse).
func TestRootRowCheckpointResume(t *testing.T) {
	r := rand.New(rand.NewSource(76))
	for trial := 0; trial < 25; trial++ {
		a := randTree(r, 40+r.Intn(80))
		if len(a.Children) == 0 {
			continue
		}
		b := relabelSome(r, a, 1+r.Intn(6))
		costs := Costs{Insert: 1 + r.Intn(2), Delete: 1 + r.Intn(2), Rename: 1 + r.Intn(2)}
		c := memoCache()
		if got, want := c.DistanceWithCosts(a, b, costs), DistanceWithCosts(a, b, costs); got != want {
			t.Fatalf("warming pass diverged: %d != %d", got, want)
		}
		warm := c.Stats()
		if warm.CheckpointRows == 0 {
			t.Fatalf("warming pass captured no checkpoint rows (a has %d children)", len(a.Children))
		}

		a2 := appendChild(a, randTree(r, 1+r.Intn(10)))
		want := DistanceWithCosts(a2, b, costs)
		if got := c.DistanceWithCosts(a2, b, costs); got != want {
			t.Fatalf("resumed distance %d != monolithic %d\na2=%s\nb=%s costs=%+v",
				got, want, a2, b, costs)
		}
		edited := c.Stats()
		if edited.CheckpointHits == warm.CheckpointHits {
			t.Fatalf("append edit did not resume from a checkpoint: %+v", edited)
		}

		b2 := appendChild(b, randTree(r, 1+r.Intn(10)))
		if got, want := c.DistanceWithCosts(a2, b2, costs), DistanceWithCosts(a2, b2, costs); got != want {
			t.Fatalf("b-side append diverged: %d != %d", got, want)
		}
	}
}

// TestProbeRowMemo pins the probe-row fast path: a keyroot row whose
// probe once came back all-hit is recorded and replayed on the next pair
// that shares the (a keyroot subtree, b tree, costs) address, with
// distances and SubtreeHits identical to a slot-by-slot probe. The
// sequence needs three sweeps: the cold sweep records nothing (all
// misses), the first edit's sweep observes the unchanged keyroot rows
// all-hit and records them, the second edit's sweep replays them.
func TestProbeRowMemo(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for trial := 0; trial < 25; trial++ {
		a := randTree(r, 40+r.Intn(80))
		if len(a.Children) == 0 {
			continue
		}
		b := relabelSome(r, a, 1+r.Intn(6))
		costs := Costs{Insert: 1 + r.Intn(2), Delete: 1 + r.Intn(2), Rename: 1 + r.Intn(2)}
		c := memoCache()
		c.DistanceWithCosts(a, b, costs)

		a2 := appendChild(a, randTree(r, 1+r.Intn(10)))
		c.DistanceWithCosts(a2, b, costs)
		recorded := c.Stats()
		if recorded.ProbeRows == 0 {
			t.Fatalf("first edit sweep recorded no probe rows: %+v", recorded)
		}
		if recorded.ProbeRowHits != 0 {
			t.Fatalf("probe rows hit before any could be recorded: %+v", recorded)
		}

		a3 := appendChild(a, randTree(r, 1+r.Intn(10)))
		want := DistanceWithCosts(a3, b, costs)
		if got := c.DistanceWithCosts(a3, b, costs); got != want {
			t.Fatalf("row-replayed distance %d != monolithic %d\na3=%s\nb=%s costs=%+v",
				got, want, a3, b, costs)
		}
		replayed := c.Stats()
		if replayed.ProbeRowHits == 0 {
			t.Fatalf("second edit sweep replayed no probe rows: %+v", replayed)
		}
	}
}

// FuzzSubtreeMemo is the byte-identity tripwire: any fuzzer-found tree
// shapes and cost model where the memoised decomposition disagrees with
// the monolithic Zhang–Shasha DP is a soundness bug (DESIGN.md §13).
func FuzzSubtreeMemo(f *testing.F) {
	f.Add(int64(1), 10, 20, 1, 1, 1, 3)
	f.Add(int64(2), 60, 60, 2, 1, 3, 0)
	f.Add(int64(3), 1, 1, 1, 1, 1, 0)
	f.Add(int64(4), 90, 15, 3, 2, 1, 12)
	f.Add(int64(5), 45, 45, 1, 2, 2, 40)
	f.Fuzz(func(t *testing.T, seed int64, n1, n2, ci, cd, cr, mutate int) {
		if n1 < 1 || n1 > 150 || n2 < 1 || n2 > 150 || mutate < 0 || mutate > 150 {
			t.Skip()
		}
		if ci < 1 || ci > 5 || cd < 1 || cd > 5 || cr < 1 || cr > 5 {
			t.Skip()
		}
		r := rand.New(rand.NewSource(seed))
		a := randTree(r, n1)
		var b *tree.Node
		if mutate > 0 {
			b = relabelSome(r, a, mutate) // overlapping content: hits likely
		} else {
			b = randTree(r, n2)
		}
		costs := Costs{Insert: ci, Delete: cd, Rename: cr}
		want := DistanceWithCosts(a, b, costs)
		c := memoCache()
		if got := c.DistanceWithCosts(a, b, costs); got != want {
			t.Fatalf("memoised %d != monolithic %d\na=%s\nb=%s costs=%+v",
				got, want, a, b, costs)
		}
		if got := c.DistanceWithCosts(b, a, costs); got != DistanceWithCosts(b, a, costs) {
			t.Fatalf("reversed orientation diverged")
		}
		// restore path: a fresh cache seeded only with the first cache's
		// exported blocks must reproduce the distance bit-identically
		c2 := memoCache()
		c2.ImportSubtreeBlocks(c.ExportSubtreeBlocks())
		if got := c2.DistanceWithCosts(a, b, costs); got != want {
			t.Fatalf("restored blocks gave %d, monolithic %d\na=%s\nb=%s costs=%+v",
				got, want, a, b, costs)
		}
		// checkpoint resume path: an append-only root edit against the warm
		// cache exercises the root-row resume whenever a has children, and
		// must stay bit-identical either way
		a2 := appendChild(a, randTree(r, 1+r.Intn(8)))
		want2 := DistanceWithCosts(a2, b, costs)
		if got := c.DistanceWithCosts(a2, b, costs); got != want2 {
			t.Fatalf("resumed memoised %d != monolithic %d\na2=%s\nb=%s costs=%+v",
				got, want2, a2, b, costs)
		}
		// default thresholds: trees this size straddle subMin, so this is
		// the mixed regime where below-threshold pairs are deferred to
		// materialise-time and memoised pairs sit above them
		cdef := NewCache()
		if got := cdef.DistanceWithCosts(a, b, costs); got != want {
			t.Fatalf("default-threshold memoised %d != monolithic %d\na=%s\nb=%s costs=%+v",
				got, want, a, b, costs)
		}
		if got := cdef.DistanceWithCosts(a2, b, costs); got != want2 {
			t.Fatalf("default-threshold resumed %d != monolithic %d\na2=%s\nb=%s costs=%+v",
				got, want2, a2, b, costs)
		}
	})
}
