package ted

import (
	"testing"

	"silvervale/internal/faultfs"
	"silvervale/internal/obs"
	"silvervale/internal/store"
)

// TestCacheOverFailingStoreComputesCorrectly: a cache attached to a store
// whose disk fails on every operation must produce exactly the distances
// a storeless cache produces — the degraded store answers misses, the
// cache recomputes, and nothing surfaces to the caller.
func TestCacheOverFailingStoreComputesCorrectly(t *testing.T) {
	pairs := [][2]string{
		{"(a (b (c) (d)) (e (f)))", "(a (b (c)) (g (f) (h)))"},
		{"(x)", "(x (y))"},
		{"(r (s) (t (u)))", "(r (t (u)) (s))"},
	}
	plain := NewCache()
	var want []int
	for _, p := range pairs {
		want = append(want, plain.Distance(storeParse(t, p[0]), storeParse(t, p[1])))
	}

	// Every op after Open's MkdirAll fails.
	fsys := faultfs.New(faultfs.OS{}, faultfs.Fault{N: 2, Sticky: true, Class: faultfs.EIO})
	st, err := store.Open(t.TempDir(), store.Options{FS: fsys, DegradeThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	st.SetRecorder(rec)
	c := NewCache()
	c.SetStore(st)
	for i, p := range pairs {
		if got := c.Distance(storeParse(t, p[0]), storeParse(t, p[1])); got != want[i] {
			t.Fatalf("pair %d: failing-store distance %d, storeless %d", i, got, want[i])
		}
	}
	if !st.Degraded() {
		t.Fatal("store did not degrade")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("non-strict Close over failing disk: %v", err)
	}
	if got := rec.Snapshot().Counters["store.degraded"]; got != 1 {
		t.Fatalf("store.degraded = %d, want exactly 1", got)
	}
}
