package ted

import (
	"fmt"
	"math"

	"silvervale/internal/store"
	"silvervale/internal/tree"
)

// Tiered distance evaluation (DESIGN.md §10). The all-pairs divergence
// matrices are O(n²) pairs of quadratic-DP Zhang–Shasha cells, which caps
// how many units a sweep can hold. Program-tree distance distributions are
// structured enough that a cheap approximate pass can route most pairs
// away from the exact DP: under a TierPolicy each tree pair is first
// routed by an LSH minhash signature over its pq-gram profile, then — for
// borderline pairs — by the full pq-gram distance, and only pairs the
// approximation (or the exact bound gates inside the DP path) flag as
// close or borderline pay for exact Zhang–Shasha. Far pairs receive a
// deterministic estimate derived from the approximate distance, clamped
// into the exact distance's provable [lower, upper] interval.
//
// The contract is an error budget, not exactness: at Budget 0 every pair
// routes exact and results are byte-identical to the untiered path (the
// equivalence gate in internal/core pins this); at nonzero budgets the
// exact-vs-tiered harness records per-cell |tiered − exact| and asserts it
// stays within the budget on every seed corpus.

// Tier identifies how one pair's distance was produced.
type Tier uint8

const (
	// TierExact: the pair was (or must be) computed with exact
	// Zhang–Shasha — either the policy is disabled, the pair routed
	// "close or borderline", or the trees are identical (distance 0 is
	// exact by the empty edit script).
	TierExact Tier = iota
	// TierEstimated: the full pq-gram distance flagged the pair as far;
	// the value is the clamped pq-gram estimate.
	TierEstimated
	// TierFar: the LSH signatures alone flagged the pair as provably-far
	// (no shared band and a signature-estimated distance well past the
	// threshold); the profiles were never merged. The value is the
	// clamped signature estimate.
	TierFar
)

// String names the tier for provenance output.
func (t Tier) String() string {
	switch t {
	case TierExact:
		return "exact"
	case TierEstimated:
		return "estimated"
	case TierFar:
		return "far"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// Default LSH signature shape: 16 bands of 4 rows. 64 minhash rows keep
// the Jaccard estimator's noise around ±0.06, and a 4-row band fires with
// probability J⁴ — near-duplicates (J ≳ 0.8) collide in some band almost
// surely while far pairs (J ≲ 0.2) almost never do.
const (
	defaultBands = 16
	defaultRows  = 4
)

// farMargin is how far past the routing threshold the noisier
// signature-only estimate must sit before a pair is declared far without
// merging profiles. Borderline signatures always fall through to the full
// pq-gram distance.
const farMargin = 0.05

// tierMinNodes: pairs where either tree is smaller than this are always
// refined exactly. Small trees sit outside the estimator's calibration
// population (the smallest seed unit tree has >150 nodes), a handful of
// edits can push their pq-gram distance across any threshold, and their
// DP is microseconds — estimation carries all of the risk and none of
// the savings.
const tierMinNodes = 128

// TierPolicy configures tiered evaluation. The zero value (Budget 0) is
// the disabled, exact-equivalent policy.
type TierPolicy struct {
	// Budget is the per-matrix-cell error tolerance: the recorded bound
	// on |tiered − exact| for every normalised divergence cell. 0 routes
	// every pair exact.
	Budget float64
	// Threshold is the pq-gram distance at or above which a pair may be
	// estimated instead of refined. Derived from Budget by NewTierPolicy;
	// pairs below it always go exact.
	Threshold float64
	// Bands × Rows is the minhash signature shape used for LSH
	// bucketing.
	Bands, Rows int
}

// screeningBudget is the boundary between the policy's two calibrated
// regimes. Budgets at or above it select the screening threshold: the
// structural estimator's worst observed per-cell error on the all-units
// corpus probe (4371 pairs, every unit of every seed app × model, worst
// normalisation) is ~0.41 at τ = 0.45, so a 0.42 budget covers it.
const (
	screeningBudget    = 0.42
	screeningThreshold = 0.45
)

// NewTierPolicy derives the policy for an error budget. Two calibrated
// regimes (both measured on the seed corpora; see EXPERIMENTS.md):
//
//   - High-fidelity (budget < 0.42): calibrated against matched
//     same-role pairs (all apps × tree metrics, 1206 pairs) — the pair
//     population of app-level divergence sweeps. Worst per-pair error
//     |est − exact|/dmax as a function of the routing threshold τ is
//     ~0.03 at τ = 0.85, ~0.30 at τ = 0.80, ~0.44 at τ = 0.75, so
//     tight budgets push τ toward 0.98 (only near-disjoint pairs are
//     estimated) and looser budgets descend toward the 0.78 floor.
//     Per-cell error is a dmax-weighted average over a cell's matched
//     pairs, so this per-pair calibration is the conservative side of
//     the recorded contract.
//
//   - Screening (budget ≥ 0.42): calibrated against the all-pairs unit
//     population (4371 cross-unit pairs), where even single-pair cells
//     honour the budget: the structural estimator's worst error under
//     the harsher of the two cell normalisations is ~0.41 at τ = 0.45.
//     This is the corpus-scale near-duplicate-screening regime — most
//     DP work is skipped, small distances stay trustworthy, and large
//     ones are calibrated estimates.
func NewTierPolicy(budget float64) TierPolicy {
	if budget <= 0 {
		return TierPolicy{}
	}
	var th float64
	switch {
	case budget >= screeningBudget:
		th = screeningThreshold
	case budget <= 0.05:
		th = 0.98 - 2.6*budget
	default:
		th = 0.85 - 0.2*(budget-0.05)
	}
	if th < 0.78 && budget < screeningBudget {
		th = 0.78
	}
	if th > 0.98 {
		th = 0.98
	}
	return TierPolicy{Budget: budget, Threshold: th, Bands: defaultBands, Rows: defaultRows}
}

// Enabled reports whether the policy routes any pair away from exact.
func (p TierPolicy) Enabled() bool { return p.Budget > 0 }

// normalize fills zero signature dimensions with the defaults so hand-built
// policies and store keys agree with NewTierPolicy's.
func (p TierPolicy) normalize() TierPolicy {
	if p.Bands <= 0 {
		p.Bands = defaultBands
	}
	if p.Rows <= 0 {
		p.Rows = defaultRows
	}
	return p
}

// String renders the policy for stats lines and provenance reports.
func (p TierPolicy) String() string {
	if !p.Enabled() {
		return "budget 0 (exact)"
	}
	return fmt.Sprintf("budget %g, threshold %.3f, lsh %dx%d", p.Budget, p.Threshold, p.Bands, p.Rows)
}

// Signature is a minhash signature over a pq-gram profile: Bands×Rows
// row minima under independent hash seeds. Signatures are pure functions
// of the profile (the gram slice is sorted, so no map-order leaks), which
// is what makes LSH bucket assignment bit-identical across runs and
// worker counts.
type Signature struct {
	rows  []uint64
	bands int
}

// splitmix64 is the finaliser of the splitmix64 generator — a cheap,
// well-mixed 64-bit permutation used both to derive per-row seeds and to
// rehash grams per row.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewSignature computes the minhash signature of a profile. An empty
// profile yields all-max rows (two empties estimate distance 0).
func NewSignature(p PQGramProfile, bands, rows int) Signature {
	n := bands * rows
	sig := Signature{rows: make([]uint64, n), bands: bands}
	for i := range sig.rows {
		sig.rows[i] = math.MaxUint64
	}
	prev := uint64(0)
	first := true
	for _, g := range p.grams {
		if !first && g == prev {
			continue // minhash is over the gram set; duplicates cannot lower a min
		}
		first = false
		prev = g
		for i := range sig.rows {
			if h := splitmix64(g ^ splitmix64(uint64(i)+1)); h < sig.rows[i] {
				sig.rows[i] = h
			}
		}
	}
	return sig
}

// SharesBand reports whether any band of r rows matches in full — the LSH
// bucket collision test: colliding pairs are near-duplicate candidates
// and must be refined exactly.
func SharesBand(a, b Signature) bool {
	if len(a.rows) != len(b.rows) || a.bands != b.bands || a.bands == 0 {
		return false
	}
	rows := len(a.rows) / a.bands
	for band := 0; band < a.bands; band++ {
		match := true
		for r := band * rows; r < (band+1)*rows; r++ {
			if a.rows[r] != b.rows[r] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// EstimateDistance converts two signatures into a pq-gram-distance
// estimate: the row-match fraction estimates Jaccard similarity Ĵ, and
// for set profiles the normalised pq-gram distance is exactly
// (1−J)/(1+J).
func EstimateDistance(a, b Signature) float64 {
	if len(a.rows) == 0 || len(a.rows) != len(b.rows) {
		return 1
	}
	match := 0
	for i := range a.rows {
		if a.rows[i] == b.rows[i] {
			match++
		}
	}
	j := float64(match) / float64(len(a.rows))
	return (1 - j) / (1 + j)
}

// Structural estimator coefficients, fitted on the all-units corpus
// probe (4371 cross-unit pairs, every unit of every seed app × model,
// weighted least squares under the per-cell error norm, residuals stable
// under even/odd holdout — see EXPERIMENTS.md). With mx/mn the
// larger/smaller node count and I the label-multiset intersection:
//
//	est ≈ 0.96·(mx−I) − 0.19·I + (0.60 + 0.12·approx)·mn
//
// Read as: each node whose label has no counterpart must be deleted,
// inserted, or renamed (≈1 op each); the smaller tree's mass costs
// ~0.6–0.7 ops per node even when labels match, because semantic trees
// over small label alphabets are structurally scrambled; a matched label
// recovers only ~0.19 ops. The estimate is clamped into the provable
// [max(|n1−n2|, mx−I), n1+n2] interval (mx−I is a valid unit-cost lower
// bound: any mapping of m pairs has ≥ m−I renames, so cost ≥
// n1+n2−m−I ≥ mx−I).
const (
	calUnmatched = 0.96
	calMatched   = -0.19
	calApprox    = 0.12
	calMin       = 0.60
)

// calibratedRaw is the screening-grade estimate for a far-routed pair
// under unit costs. Non-unit cost models fall back to the scale-based
// estimateRaw — the calibration is in unit edit ops.
func (c *Cache) calibratedRaw(t1, t2 *tree.Node, fa, fb tree.Fingerprint, approx float64, costs Costs) float64 {
	if costs != UnitCosts() {
		return estimateRaw(approx, int(fa.Size), int(fb.Size), costs)
	}
	a := c.flatFor(t1, fa, nil)
	b := c.flatFor(t2, fb, nil)
	sc := getScratch()
	isect := multisetIntersection(a, b, sc)
	putScratch(sc)
	n1, n2 := int(fa.Size), int(fb.Size)
	mx, mn := n1, n2
	if mx < mn {
		mx, mn = mn, mx
	}
	est := calUnmatched*float64(mx-isect) + calMatched*float64(isect) + (calMin+calApprox*approx)*float64(mn)
	lo := float64(mx - mn)
	if l := float64(mx - isect); l > lo {
		lo = l
	}
	if est < lo {
		est = lo
	}
	if hi := float64(n1 + n2); est > hi {
		est = hi
	}
	return est
}

// estimateRaw maps an approximate (or signature-estimated) normalised
// distance in [0,1] onto the exact distance's scale for a pair of trees
// with n1 and n2 nodes, clamped into the provable [|n1−n2|·min(ins,del),
// n1·del+n2·ins] interval. max(n1·del, n2·ins) is the scale at which a
// label-disjoint pair of similar shape lands: distance 1 maps to the
// all-renames-plus-size-delta script.
func estimateRaw(approx float64, n1, n2 int, c Costs) float64 {
	scale := float64(n1 * c.Delete)
	if s := float64(n2 * c.Insert); s > scale {
		scale = s
	}
	est := approx * scale
	diff := n1 - n2
	if diff < 0 {
		diff = -diff
	}
	lo := float64(diff * min(c.Insert, c.Delete))
	hi := float64(n1*c.Delete + n2*c.Insert)
	if est < lo {
		est = lo
	}
	if est > hi {
		est = hi
	}
	return est
}

// sigKey addresses one memoised signature. The shape is part of the key
// so differently-shaped policies never share rows.
type sigKey struct {
	fp          tree.Fingerprint
	bands, rows int
}

// SignatureFor returns the memoised minhash signature of a tree under the
// policy's shape, building profile and signature on first sight.
func (c *Cache) SignatureFor(t *tree.Node, p TierPolicy) Signature {
	p = p.normalize()
	key := sigKey{fp: t.Fingerprint(), bands: p.Bands, rows: p.Rows}
	c.mu.RLock()
	s, ok := c.sigs[key]
	c.mu.RUnlock()
	if ok {
		return s
	}
	s = NewSignature(c.Profile(t), p.Bands, p.Rows)
	c.mu.Lock()
	c.sigs[key] = s
	c.mu.Unlock()
	return s
}

// routeKey addresses one memoised routing decision: the canonicalised
// fingerprint pair, the cost model, and every policy parameter that can
// change the route or the estimate. Differently-parameterised policies
// never share entries.
type routeKey struct {
	a, b              tree.Fingerprint
	costs             Costs
	budget, threshold float64
	bands, rows       int
}

// routeVal is one memoised route: the tier plus, for estimated tiers, the
// clamped estimate.
type routeVal struct {
	est  float64
	tier Tier
}

// TierRoute decides how a pair should be evaluated under a policy without
// running the exact DP. It returns (0, TierExact) when the pair must be
// refined exactly (including the disabled policy), and (estimate, tier)
// when the pair is far enough that the estimate honours the budget. The
// decision and the estimate are pure functions of the two trees and the
// policy — bit-identical across runs, schedulers, and worker counts —
// which is why the whole decision is memoised by content fingerprint
// (DESIGN.md §12): a warm re-sweep skips even the signature comparison
// and multiset-intersection work for every clean pair.
//
// With a persistent store attached, estimated values read through the
// store's tier records — keyed by the full policy (budget, threshold,
// signature shape) alongside the fingerprint pair and cost model, so a
// warm start can never serve an estimate produced under a different
// policy, nor leak estimates into the exact tier.
func (c *Cache) TierRoute(t1, t2 *tree.Node, costs Costs, p TierPolicy) (float64, Tier) {
	if !p.Enabled() || t1 == nil || t2 == nil {
		return 0, TierExact
	}
	p = p.normalize()
	fa, fb := t1.Fingerprint(), t2.Fingerprint()
	key := routeKey{a: fa, b: fb, costs: costs,
		budget: p.Budget, threshold: p.Threshold, bands: p.Bands, rows: p.Rows}
	if costs.Insert == costs.Delete && fb.Less(fa) {
		// Routing and estimation are symmetric exactly when exact TED is.
		key.a, key.b = fb, fa
	}
	c.mu.RLock()
	v, ok := c.routes[key]
	c.mu.RUnlock()
	if ok {
		return v.est, v.tier
	}
	est, tier := c.routeSlow(t1, t2, fa, fb, costs, p)
	c.mu.Lock()
	c.routes[key] = routeVal{est: est, tier: tier}
	c.mu.Unlock()
	return est, tier
}

// routeSlow is the uncached routing decision behind TierRoute.
func (c *Cache) routeSlow(t1, t2 *tree.Node, fa, fb tree.Fingerprint, costs Costs, p TierPolicy) (float64, Tier) {
	if fa == fb && tree.Equal(t1, t2) {
		return 0, TierExact // identity: exact distance 0, no DP needed anyway
	}
	if fa.Size < tierMinNodes || fb.Size < tierMinNodes {
		return 0, TierExact // below the calibration population; DP is cheap
	}
	sa := c.SignatureFor(t1, p)
	sb := c.SignatureFor(t2, p)
	if !SharesBand(sa, sb) {
		if d := EstimateDistance(sa, sb); d >= p.Threshold+farMargin {
			// Provably-far bucket: no band collision and the signature
			// estimate clears the threshold with margin — skip even the
			// profile merge.
			return c.tieredEstimate(t1, t2, fa, fb, d, costs, p, TierFar), TierFar
		}
	}
	approx := c.ApproxDistance(t1, t2)
	if approx >= p.Threshold {
		return c.tieredEstimate(t1, t2, fa, fb, approx, costs, p, TierEstimated), TierEstimated
	}
	return 0, TierExact
}

// TieredDistance evaluates one pair under a policy: route, then refine
// exactly when the route demands it. The returned tier reports the
// provenance of the value.
func (c *Cache) TieredDistance(t1, t2 *tree.Node, costs Costs, p TierPolicy) (float64, Tier) {
	est, tier := c.TierRoute(t1, t2, costs, p)
	if tier == TierExact {
		return float64(c.DistanceWithCosts(t1, t2, costs)), TierExact
	}
	return est, tier
}

// tieredEstimate produces the estimate for a far-routed pair, reading
// through (and writing behind into) the store's tier records when a store
// is attached. The store key carries the full policy and the tier, so
// records from different budgets, thresholds, signature shapes, or
// routing tiers never mix.
func (c *Cache) tieredEstimate(t1, t2 *tree.Node, fa, fb tree.Fingerprint, approx float64, costs Costs, p TierPolicy, tier Tier) float64 {
	st := c.backing.Load()
	if st == nil {
		return c.calibratedRaw(t1, t2, fa, fb, approx, costs)
	}
	a, b := fa, fb
	if costs.Insert == costs.Delete && b.Less(a) {
		a, b = b, a // estimates are symmetric exactly when exact TED is
	}
	tk := store.TierKey{
		A: a, B: b,
		Insert: costs.Insert, Delete: costs.Delete, Rename: costs.Rename,
		Budget: p.Budget, Threshold: p.Threshold,
		Bands: p.Bands, Rows: p.Rows, Tier: uint8(tier),
	}
	if d, ok := st.LookupTierDist(tk); ok {
		return d
	}
	est := c.calibratedRaw(t1, t2, fa, fb, approx, costs)
	st.PutTierDist(tk, est)
	return est
}

// EstimateRawForTest exposes estimateRaw for calibration harnesses.
func EstimateRawForTest(approx float64, n1, n2 int, c Costs) float64 {
	return estimateRaw(approx, n1, n2, c)
}
