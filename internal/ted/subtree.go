package ted

import (
	"sort"

	"silvervale/internal/store"
	"silvervale/internal/tree"
)

// This file holds the state side of the subtree-block memo (DESIGN.md
// §13); the DP driver that consumes it is Cache.zsDistanceMemo in ted.go.
//
// A block is the td output of one keyroot-pair treedist call: the exact
// distances for every subtree pair owned by that keyroot pair, laid out
// row-major over the two left spines. Because those values are a pure
// function of the two keyroot subtrees plus the cost model, blocks are
// addressed by (subtree fingerprint pair, costs) — the same
// content-addressing discipline as the distance memo, one level down.
// Keys are oriented (no symmetric canonicalisation): a block's row/column
// roles are fixed by which side each subtree was on, and canonicalising
// would require transposing payloads on hit for no measured win.

const (
	// subDefaultMinCells is the memoisation threshold on the keyroot
	// pair's DP size (m1*m2, the forest-distance work a hit saves). Below
	// it the map probe, harvest copy, and entry overhead cost more than
	// the DP they replace; such pairs always recompute.
	subDefaultMinCells = 64

	// subStoreMinCells gates the persistent sub tier: only blocks whose
	// DP is at least this large are read from or written to disk, so a
	// store round trip (decode + key echo) is always cheaper than the DP
	// it replaces.
	subStoreMinCells = 1 << 16

	// subDefaultMaxBytes bounds the in-memory memo. Spines are short —
	// a block holds L1*L2 cells, not m1*m2 — so a whole-corpus working
	// set measures in tens of megabytes and the bound exists to cap
	// pathological corpora, not to cycle on normal ones.
	subDefaultMaxBytes = 128 << 20

	// subEntryOverhead approximates per-entry bookkeeping bytes (key,
	// block header, map bucket share) on top of the payload.
	subEntryOverhead = 120

	// ckptDefaultMinRows gates the forest-prefix checkpoint memo on the
	// a-tree's node count (the root keyroot's DP row count). Below it the
	// root row is cheap enough that checkpoint bookkeeping cannot pay for
	// itself. The gate also guarantees no root-row pair falls below the
	// block threshold (cells = n1*m2 >= n1), which the all-or-nothing
	// resume rule requires.
	ckptDefaultMinRows = 64

	// ckptDefaultMaxBytes bounds the in-memory checkpoint memo, separate
	// from the block bound so checkpoint pressure can never evict blocks
	// (or vice versa) and perturb the block reuse counters.
	ckptDefaultMaxBytes = 128 << 20

	// ckptEntryOverhead approximates per-entry bookkeeping bytes.
	ckptEntryOverhead = 96

	// rowDefaultMaxBytes bounds the probe-row memo. Entries are slot lists
	// (16 bytes per recorded hit), so even a fully warm corpus measures in
	// single-digit megabytes; the bound caps pathological corpora.
	rowDefaultMaxBytes = 64 << 20

	// rowEntryOverhead approximates per-entry bookkeeping bytes.
	rowEntryOverhead = 112
)

// Forest-prefix fold hashing (same FNV-1a / djb2 construction as
// tree.Fingerprint, so collision resistance is the same ~128-bit story).
const (
	ckptFnvOffset = 14695981039346656037
	ckptFnvPrime  = 1099511628211
	ckptDjbOffset = 5381
)

// ckptFold mixes the next root-child subtree fingerprint into the running
// prefix fold. The fold of fp(C1)..fp(Ck) content-addresses the cut
// forest C1..Ck — exactly the a-side state the root-row DP has consumed
// after the row at Ck's boundary.
func ckptFold(acc, fp tree.Fingerprint) tree.Fingerprint {
	if acc == (tree.Fingerprint{}) {
		acc = tree.Fingerprint{H1: ckptFnvOffset, H2: ckptDjbOffset}
	}
	mix := func(x uint64) {
		for s := 0; s < 64; s += 8 {
			b := uint64(byte(x >> s))
			acc.H1 = (acc.H1 ^ b) * ckptFnvPrime
			acc.H2 = acc.H2*33 + b
		}
	}
	mix(fp.H1)
	mix(fp.H2)
	mix(uint64(fp.Size))
	acc.Size += fp.Size
	return acc
}

// ckptKey addresses one memoised root-row DP row: the fold of the a-side
// root-children prefix, the b-side keyroot subtree, and the cost model.
type ckptKey struct {
	prefix tree.Fingerprint
	b      tree.Fingerprint
	costs  Costs
}

// ckptRef is one probe result: the DP row index to resume from plus the
// memoised row values (m2+1 cells). A zero ref means no checkpoint hit.
type ckptRef struct {
	row  int32
	vals []int32
}

// ckptEntry is one freshly captured checkpoint row awaiting publication.
type ckptEntry struct {
	key  ckptKey
	vals []int32
}

// ckptRowBytes is the accounting size of one checkpoint entry.
func ckptRowBytes(vals []int32) int64 {
	return int64(len(vals))*4 + ckptEntryOverhead
}

// rowKey addresses one probed keyroot row of the block grid: the a-side
// keyroot subtree, the whole b tree, and the cost model. For a fixed b
// flat the probe result of row ki — which grid slot holds which block —
// is a pure function of these three, because every slot's block key is
// (a.krFP[ki], b.krFP[kj], costs) and the kj enumeration is determined
// by b's content.
type rowKey struct {
	a, b  tree.Fingerprint
	costs Costs
}

// rowSlot records one above-threshold hit in a memoised probe row.
type rowSlot struct {
	kj int32
	bl *subBlock
}

// rowEntry is one freshly recorded all-hit probe row awaiting
// publication. Only rows whose every above-threshold slot hit are
// recorded: the block memo is keep-first and append-only (eviction
// aside), so an all-hit row can never gain a hit later — the recording
// is permanently identical to what a fresh slot-by-slot probe would
// return, and replaying it preserves both distances and counter
// semantics exactly.
type rowEntry struct {
	key   rowKey
	slots []rowSlot
}

// rowEntryBytes is the accounting size of one probe-row entry.
func rowEntryBytes(slots []rowSlot) int64 {
	return int64(len(slots))*16 + rowEntryOverhead
}

// subKey addresses one keyroot-pair block: oriented subtree fingerprints
// plus the cost model.
type subKey struct {
	a, b  tree.Fingerprint
	costs Costs
}

// subBlock is one memoised treedist output. Immutable once published;
// shared across goroutines and with export snapshots on that basis.
type subBlock struct {
	l1, l2 int32 // spine lengths: vals is l1 x l2 row-major
	vals   []int32
}

// subEntry is one freshly built block awaiting publication.
type subEntry struct {
	key     subKey
	block   *subBlock
	persist bool // also queue to the store's sub tier
}

// subBlockBytes is the accounting size of one entry.
func subBlockBytes(b *subBlock) int64 {
	return int64(len(b.vals))*4 + subEntryOverhead
}

// subStoreKey maps a memo key onto the persistent tier's key type.
func subStoreKey(k subKey) store.SubKey {
	return store.SubKey{A: k.a, B: k.b,
		Insert: k.costs.Insert, Delete: k.costs.Delete, Rename: k.costs.Rename}
}

// SetSubtreeMemo enables or disables the subtree-block memo (enabled by
// default). Disabling routes cache misses to the monolithic Zhang–Shasha
// DP — the PR 8 behaviour — which the benchmark harness uses as the
// baseline edit path; distances are identical either way.
func (c *Cache) SetSubtreeMemo(on bool) { c.subOn.Store(on) }

// publishSubBlocks installs freshly built blocks, checkpoint rows, and
// probe rows under one write lock, keep-first: a racing builder of the
// same key computed a bit-identical payload, so the loser's copy is
// garbage, never a conflict. Entries marked persist are queued to the
// store's sub tier after the lock drops. Checkpoint and probe rows are
// in-memory only (§13): they are re-derivable from one full root-row DP
// (or one slot-by-slot probe), so disk round trips are not worth a tier.
func (c *Cache) publishSubBlocks(fresh []subEntry, freshCk []ckptEntry, freshRows []rowEntry, st *store.Store, o *cacheObs) {
	var persist []subEntry
	c.subMu.Lock()
	for _, e := range fresh {
		if _, ok := c.subs[e.key]; ok {
			continue
		}
		c.subs[e.key] = e.block
		c.subBytes += subBlockBytes(e.block)
		if e.persist && st != nil {
			persist = append(persist, e)
		}
	}
	var evicted uint64
	if c.subBytes > c.subMax {
		evicted = c.evictSubBlocksLocked()
	}
	for _, e := range freshCk {
		if _, ok := c.ckpts[e.key]; ok {
			continue
		}
		c.ckpts[e.key] = e.vals
		c.ckptBytes += ckptRowBytes(e.vals)
	}
	var ckEvicted uint64
	if c.ckptBytes > c.ckptMax {
		ckEvicted = c.evictCkptsLocked()
	}
	for _, e := range freshRows {
		if _, ok := c.rows[e.key]; ok {
			continue
		}
		c.rows[e.key] = e.slots
		c.rowBytes += rowEntryBytes(e.slots)
	}
	var rowEvicted uint64
	if c.rowBytes > c.rowMax {
		rowEvicted = c.evictRowsLocked()
	}
	c.subMu.Unlock()
	if evicted > 0 {
		c.subEvicted.Add(evicted)
		if o != nil {
			o.subEvicted.Add(int64(evicted))
		}
	}
	if ckEvicted > 0 {
		c.ckptEvicted.Add(ckEvicted)
		if o != nil {
			o.ckptEvicted.Add(int64(ckEvicted))
		}
	}
	if rowEvicted > 0 {
		c.rowEvicted.Add(rowEvicted)
		if o != nil {
			o.rowEvicted.Add(int64(rowEvicted))
		}
	}
	for _, e := range persist {
		st.PutSub(subStoreKey(e.key), e.block.l1, e.block.l2, e.block.vals)
	}
}

// evictSubBlocksLocked drops entries in map-iteration order until the
// memo is back under three quarters of its bound — hysteresis so a memo
// riding the limit does not evict on every publish. Random-order eviction
// is sound: a dropped block only costs a future recompute, never a wrong
// answer, and the bound is sized so normal corpora never get here.
func (c *Cache) evictSubBlocksLocked() uint64 {
	target := c.subMax - c.subMax/4
	var n uint64
	for k, b := range c.subs {
		if c.subBytes <= target {
			break
		}
		delete(c.subs, k)
		c.subBytes -= subBlockBytes(b)
		n++
	}
	return n
}

// evictRowsLocked is the probe-row-memo mirror of evictSubBlocksLocked.
// A dropped row only costs a future slot-by-slot probe. Probe rows pin
// the blocks they reference even past block eviction (the pointers stay
// valid — blocks are immutable — so a pinned block still restores
// correctly); dropping the row releases them.
func (c *Cache) evictRowsLocked() uint64 {
	target := c.rowMax - c.rowMax/4
	var n uint64
	for k, slots := range c.rows {
		if c.rowBytes <= target {
			break
		}
		delete(c.rows, k)
		c.rowBytes -= rowEntryBytes(slots)
		n++
	}
	return n
}

// evictCkptsLocked is the checkpoint-memo mirror of evictSubBlocksLocked:
// drop entries in map-iteration order until back under three quarters of
// the bound. A dropped row only costs a future full root-row DP.
func (c *Cache) evictCkptsLocked() uint64 {
	target := c.ckptMax - c.ckptMax/4
	var n uint64
	for k, vals := range c.ckpts {
		if c.ckptBytes <= target {
			break
		}
		delete(c.ckpts, k)
		c.ckptBytes -= ckptRowBytes(vals)
		n++
	}
	return n
}

// SubtreeBlockRecord is the portable form of one memoised block, the unit
// of snapshot export/import. Vals aliases the live block payload — blocks
// are immutable — so exporting does not copy the working set; callers
// must treat records as read-only.
type SubtreeBlockRecord struct {
	A, B   tree.Fingerprint
	Costs  Costs
	L1, L2 int32
	Vals   []int32
}

// ExportSubtreeBlocks snapshots the memo in deterministic key order, so
// identical memo contents always serialise identically.
func (c *Cache) ExportSubtreeBlocks() []SubtreeBlockRecord {
	c.subMu.RLock()
	recs := make([]SubtreeBlockRecord, 0, len(c.subs))
	for k, b := range c.subs {
		recs = append(recs, SubtreeBlockRecord{
			A: k.a, B: k.b, Costs: k.costs, L1: b.l1, L2: b.l2, Vals: b.vals})
	}
	c.subMu.RUnlock()
	sort.Slice(recs, func(i, j int) bool {
		ri, rj := &recs[i], &recs[j]
		if ri.A != rj.A {
			return ri.A.Less(rj.A)
		}
		if ri.B != rj.B {
			return ri.B.Less(rj.B)
		}
		ci, cj := ri.Costs, rj.Costs
		if ci.Insert != cj.Insert {
			return ci.Insert < cj.Insert
		}
		if ci.Delete != cj.Delete {
			return ci.Delete < cj.Delete
		}
		return ci.Rename < cj.Rename
	})
	return recs
}

// ImportSubtreeBlocks seeds the memo from exported records (keep-first
// against anything already present) and returns how many were installed.
// Malformed records — nonpositive or inconsistent shapes — are skipped:
// an import can lose warmth but never correctness.
func (c *Cache) ImportSubtreeBlocks(recs []SubtreeBlockRecord) int {
	fresh := make([]subEntry, 0, len(recs))
	for _, r := range recs {
		if r.L1 <= 0 || r.L2 <= 0 || int(r.L1)*int(r.L2) != len(r.Vals) {
			continue
		}
		fresh = append(fresh, subEntry{
			key:   subKey{a: r.A, b: r.B, costs: r.Costs},
			block: &subBlock{l1: r.L1, l2: r.L2, vals: r.Vals},
		})
	}
	if len(fresh) == 0 {
		return 0
	}
	c.subMu.Lock()
	installed := 0
	for _, e := range fresh {
		if _, ok := c.subs[e.key]; ok {
			continue
		}
		c.subs[e.key] = e.block
		c.subBytes += subBlockBytes(e.block)
		installed++
	}
	var evicted uint64
	if c.subBytes > c.subMax {
		evicted = c.evictSubBlocksLocked()
	}
	c.subMu.Unlock()
	c.subEvicted.Add(evicted)
	return installed
}
