package ted

import (
	"math/rand"
	"testing"
	"testing/quick"

	"silvervale/internal/tree"
)

func mustParse(t *testing.T, s string) *tree.Node {
	t.Helper()
	n, err := tree.ParseSexpr(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return n
}

func TestIdenticalTreesHaveZeroDistance(t *testing.T) {
	a := mustParse(t, "(FunctionDecl (ParmVarDecl) (CompoundStmt (ReturnStmt IntegerLiteral)))")
	if d := Distance(a, a.Clone()); d != 0 {
		t.Fatalf("distance of identical trees = %d, want 0", d)
	}
}

func TestSingleRelabel(t *testing.T) {
	a := mustParse(t, "(A (B) (C))")
	b := mustParse(t, "(A (B) (D))")
	if d := Distance(a, b); d != 1 {
		t.Fatalf("distance = %d, want 1", d)
	}
}

func TestSingleInsertDelete(t *testing.T) {
	a := mustParse(t, "(A (B))")
	b := mustParse(t, "(A (B) (C))")
	if d := Distance(a, b); d != 1 {
		t.Fatalf("insert distance = %d, want 1", d)
	}
	if d := Distance(b, a); d != 1 {
		t.Fatalf("delete distance = %d, want 1", d)
	}
}

// TestFig1Example reconstructs the paper's Fig. 1: two ClangASTs with a TED
// of five — four nodes inserted or deleted plus one relabelled node at the
// top.
func TestFig1Example(t *testing.T) {
	t1 := mustParse(t,
		"(FunctionDecl (ParmVarDecl) (CompoundStmt (ReturnStmt (IntegerLiteral))))")
	t2 := mustParse(t,
		"(FunctionTemplateDecl (ParmVarDecl) (CompoundStmt (DeclStmt (VarDecl (CallExpr (DeclRefExpr)))) (ReturnStmt (IntegerLiteral))))")
	if d := Distance(t1, t2); d != 5 {
		t.Fatalf("Fig. 1 distance = %d, want 5", d)
	}
}

func TestNilTrees(t *testing.T) {
	a := mustParse(t, "(A (B) (C (D)))")
	if d := Distance(nil, a); d != 4 {
		t.Fatalf("distance(nil, a) = %d, want |a| = 4", d)
	}
	if d := Distance(a, nil); d != 4 {
		t.Fatalf("distance(a, nil) = %d, want |a| = 4", d)
	}
	if d := Distance(nil, nil); d != 0 {
		t.Fatalf("distance(nil, nil) = %d, want 0", d)
	}
}

func TestDisjointTrees(t *testing.T) {
	a := mustParse(t, "(A (B) (C))")
	b := mustParse(t, "(X (Y) (Z))")
	// All three nodes can be relabelled in place.
	if d := Distance(a, b); d != 3 {
		t.Fatalf("distance = %d, want 3", d)
	}
}

func TestCosts(t *testing.T) {
	a := mustParse(t, "(A (B))")
	b := mustParse(t, "(A (B) (C) (D))")
	c := Costs{Insert: 3, Delete: 7, Rename: 5}
	if d := DistanceWithCosts(a, b, c); d != 6 {
		t.Fatalf("weighted insert distance = %d, want 6", d)
	}
	if d := DistanceWithCosts(b, a, c); d != 14 {
		t.Fatalf("weighted delete distance = %d, want 14", d)
	}
	x := mustParse(t, "(A (B))")
	y := mustParse(t, "(A (Q))")
	if d := DistanceWithCosts(x, y, c); d != 5 {
		t.Fatalf("weighted rename distance = %d, want 5", d)
	}
}

func TestOrderedness(t *testing.T) {
	// TED on ordered trees distinguishes sibling order: moving a leaf
	// across one sibling costs one delete + one insert.
	a := mustParse(t, "(A (B) (C))")
	b := mustParse(t, "(A (C) (B))")
	if d := Distance(a, b); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
}

func TestDeepChain(t *testing.T) {
	a := mustParse(t, "(A (B (C (D (E)))))")
	b := mustParse(t, "(A (B (C (D (E (F))))))")
	if d := Distance(a, b); d != 1 {
		t.Fatalf("distance = %d, want 1", d)
	}
}

func TestNormalized(t *testing.T) {
	a := mustParse(t, "(A (B) (C))")
	if v := Normalized(a, a.Clone()); v != 0 {
		t.Fatalf("normalized identical = %v, want 0", v)
	}
	b := mustParse(t, "(X (Y) (Z))")
	if v := Normalized(a, b); v != 1 {
		t.Fatalf("normalized disjoint = %v, want 1", v)
	}
	if v := Normalized(a, nil); v != 1 {
		t.Fatalf("normalized vs nil = %v, want 1", v)
	}
	if v := Normalized(nil, nil); v != 0 {
		t.Fatalf("normalized nil,nil = %v, want 0", v)
	}
}

// randomTree builds a deterministic pseudo-random tree of roughly n nodes
// from a limited label alphabet (collisions exercise the rename logic).
func randomTree(r *rand.Rand, n int) *tree.Node {
	labels := []string{"A", "B", "C", "D", "E"}
	var build func(budget int) (*tree.Node, int)
	build = func(budget int) (*tree.Node, int) {
		node := tree.New(labels[r.Intn(len(labels))])
		used := 1
		for budget-used > 0 && r.Intn(3) != 0 {
			c, u := build((budget - used) / 2)
			node.Add(c)
			used += u
			if len(node.Children) > 4 {
				break
			}
		}
		return node, used
	}
	t, _ := build(n)
	return t
}

func TestPropertySelfDistanceZero(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		tr := randomTree(rand.New(rand.NewSource(seed)), 20)
		_ = r
		return Distance(tr, tr.Clone()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySymmetry(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomTree(rand.New(rand.NewSource(seedA)), 15)
		b := randomTree(rand.New(rand.NewSource(seedB)), 15)
		return Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	f := func(sa, sb, sc int64) bool {
		a := randomTree(rand.New(rand.NewSource(sa)), 12)
		b := randomTree(rand.New(rand.NewSource(sb)), 12)
		c := randomTree(rand.New(rand.NewSource(sc)), 12)
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDistanceBounds(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomTree(rand.New(rand.NewSource(seedA)), 18)
		b := randomTree(rand.New(rand.NewSource(seedB)), 18)
		d := Distance(a, b)
		// Upper bound: delete all of a, insert all of b.
		if d > a.Size()+b.Size() {
			return false
		}
		// Lower bound: size difference.
		diff := a.Size() - b.Size()
		if diff < 0 {
			diff = -diff
		}
		return d >= diff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// naiveDistance is an exponential reference implementation of ordered TED
// on forests, used to validate Zhang–Shasha on small trees.
func naiveDistance(f1, f2 []*tree.Node) int {
	if len(f1) == 0 && len(f2) == 0 {
		return 0
	}
	if len(f1) == 0 {
		n := 0
		for _, t := range f2 {
			n += t.Size()
		}
		return n
	}
	if len(f2) == 0 {
		n := 0
		for _, t := range f1 {
			n += t.Size()
		}
		return n
	}
	a := f1[len(f1)-1]
	b := f2[len(f2)-1]
	// delete root of a
	d1 := 1 + naiveDistance(append(append([]*tree.Node{}, f1[:len(f1)-1]...), a.Children...), f2)
	// insert root of b
	d2 := 1 + naiveDistance(f1, append(append([]*tree.Node{}, f2[:len(f2)-1]...), b.Children...))
	// match roots
	ren := 0
	if a.Label != b.Label {
		ren = 1
	}
	d3 := ren + naiveDistance(a.Children, b.Children) + naiveDistance(f1[:len(f1)-1], f2[:len(f2)-1])
	m := d1
	if d2 < m {
		m = d2
	}
	if d3 < m {
		m = d3
	}
	return m
}

func TestAgainstNaiveReference(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		a := randomTree(rand.New(rand.NewSource(seed)), 7)
		b := randomTree(rand.New(rand.NewSource(seed+1000)), 7)
		want := naiveDistance([]*tree.Node{a}, []*tree.Node{b})
		got := Distance(a, b)
		if got != want {
			t.Fatalf("seed %d: Distance=%d naive=%d\na=%s\nb=%s", seed, got, want, a, b)
		}
	}
}

func TestPQGramIdentical(t *testing.T) {
	a := mustParse(t, "(A (B (C) (D)) (E))")
	if d := ApproxDistance(a, a.Clone()); d != 0 {
		t.Fatalf("pq-gram distance of identical trees = %v, want 0", d)
	}
}

func TestPQGramDisjoint(t *testing.T) {
	a := mustParse(t, "(A (B) (C))")
	b := mustParse(t, "(X (Y) (Z))")
	if d := ApproxDistance(a, b); d != 1 {
		t.Fatalf("pq-gram distance of disjoint trees = %v, want 1", d)
	}
}

func TestPQGramMonotonicUnderGrowingEdit(t *testing.T) {
	base := mustParse(t, "(A (B (C) (D)) (E (F) (G)) (H))")
	small := mustParse(t, "(A (B (C) (D)) (E (F) (G)) (I))")
	big := mustParse(t, "(A (B (X) (Y)) (Z (Q) (R)) (I))")
	ds := ApproxDistance(base, small)
	db := ApproxDistance(base, big)
	if !(ds > 0 && db > ds) {
		t.Fatalf("expected 0 < d(small)=%v < d(big)=%v", ds, db)
	}
}

func TestPQGramProfileSize(t *testing.T) {
	a := mustParse(t, "(A (B) (C))")
	p := NewPQGramProfile(a)
	if p.Size() == 0 {
		t.Fatal("profile should not be empty")
	}
	if NewPQGramProfile(nil).Size() != 0 {
		t.Fatal("nil tree should produce empty profile")
	}
}

func TestPQGramSymmetry(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomTree(rand.New(rand.NewSource(seedA)), 15)
		b := randomTree(rand.New(rand.NewSource(seedB)), 15)
		return ApproxDistance(a, b) == ApproxDistance(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
