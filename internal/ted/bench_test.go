package ted

import (
	"math/rand"
	"testing"

	"silvervale/internal/tree"
)

// wideFlatTree builds the keyroot worst case: a root with n-1 leaf
// children. Every leaf but the leftmost is a keyroot, so keyroot
// collection degenerates to ~n elements — the shape that made the old
// insertion-sort flattening O(n²).
func wideFlatTree(n int) *tree.Node {
	labels := []string{"A", "B", "C", "D", "E", "F"}
	root := tree.New("R")
	for i := 1; i < n; i++ {
		root.Add(tree.New(labels[i%len(labels)]))
	}
	return root
}

// benchRandTree mirrors the generator used by the top-level TED
// benchmarks: every new node attaches under a uniformly chosen existing
// node, producing mixed chain/bush shapes.
func benchRandTree(r *rand.Rand, n int) *tree.Node {
	labels := []string{"A", "B", "C", "D", "E", "F"}
	nodes := []*tree.Node{tree.New(labels[0])}
	for i := 1; i < n; i++ {
		parent := nodes[r.Intn(len(nodes))]
		child := tree.New(labels[r.Intn(len(labels))])
		parent.Add(child)
		nodes = append(nodes, child)
	}
	return nodes[0]
}

// BenchmarkTEDWideFlat is the wide-tree regression benchmark: with the
// old sortInts insertion sort, flattening alone was quadratic in the
// keyroot count and dominated the run at this shape.
func BenchmarkTEDWideFlat(b *testing.B) {
	t1 := wideFlatTree(4000)
	t2 := wideFlatTree(3900)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Distance(t1, t2)
	}
}

// BenchmarkTEDDistanceAllocs tracks the steady-state allocation cost of
// one uncached exact TED: with pooled DP scratch and the shared interner
// it should sit near zero allocs/op.
func BenchmarkTEDDistanceAllocs(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	t1 := benchRandTree(r, 300)
	t2 := benchRandTree(r, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Distance(t1, t2)
	}
}

// BenchmarkPQGramProfile tracks the allocation cost of building one
// pq-gram profile (the per-tree half of ApproxDistance).
func BenchmarkPQGramProfile(b *testing.B) {
	r := rand.New(rand.NewSource(13))
	t1 := benchRandTree(r, 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewPQGramProfile(t1)
	}
}

// BenchmarkPQGramProfileWide is BenchmarkPQGramProfile on the wide flat
// shape, where the sliding child window dominates.
func BenchmarkPQGramProfileWide(b *testing.B) {
	t1 := wideFlatTree(4000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewPQGramProfile(t1)
	}
}

// BenchmarkCachedDistanceFlatMemo measures a warm cached lookup: both
// fingerprints memoised, answered from the distance memo without
// flattening or DP.
func BenchmarkCachedDistanceFlatMemo(b *testing.B) {
	r := rand.New(rand.NewSource(19))
	t1 := benchRandTree(r, 300)
	t2 := benchRandTree(r, 300)
	c := NewCache()
	_ = c.Distance(t1, t2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Distance(t1, t2)
	}
}
