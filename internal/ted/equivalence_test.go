package ted

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"testing"

	"silvervale/internal/tree"
)

// This file pins the optimised TED pipeline (shared interner, per-tree
// flat memos, pooled DP scratch, bound gates) to the seed implementation:
// refDistanceWithCosts below is a verbatim copy of the pre-optimisation
// code — per-call interner, per-call flattening with a map-backed keyroot
// pass and insertion sort, and freshly allocated DP matrices. Every
// distance the optimised path produces must match it exactly, for every
// tree shape and cost model.

type refInterner struct{ ids map[string]int }

func newRefInterner() *refInterner { return &refInterner{ids: make(map[string]int)} }

func (in *refInterner) id(label string) int {
	if id, ok := in.ids[label]; ok {
		return id
	}
	id := len(in.ids)
	in.ids[label] = id
	return id
}

type refFlat struct {
	labels []int
	lmld   []int
	kr     []int
}

func refFlatten(t *tree.Node, in *refInterner) refFlat {
	n := t.Size()
	f := refFlat{labels: make([]int, n), lmld: make([]int, n)}
	idx := 0
	var visit func(node *tree.Node) int
	visit = func(node *tree.Node) int {
		first := -1
		for _, c := range node.Children {
			ci := visit(c)
			if first < 0 {
				first = f.lmld[ci]
			}
		}
		i := idx
		idx++
		f.labels[i] = in.id(node.Label)
		if first < 0 {
			f.lmld[i] = i
		} else {
			f.lmld[i] = first
		}
		return i
	}
	visit(t)
	seen := make(map[int]int)
	for i := 0; i < n; i++ {
		seen[f.lmld[i]] = i
	}
	for _, i := range seen {
		f.kr = append(f.kr, i)
	}
	refSortInts(f.kr)
	return f
}

func refSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

type refZhangShasha struct {
	a, b refFlat
	c    Costs
	td   [][]int32
	fd   [][]int32
}

func refAlloc2(r, c int) [][]int32 {
	backing := make([]int32, r*c)
	out := make([][]int32, r)
	for i := range out {
		out[i] = backing[i*c : (i+1)*c]
	}
	return out
}

func (z *refZhangShasha) run() int {
	n1 := len(z.a.labels)
	n2 := len(z.b.labels)
	z.td = refAlloc2(n1, n2)
	z.fd = refAlloc2(n1+1, n2+1)
	for _, i := range z.a.kr {
		for _, j := range z.b.kr {
			z.treedist(i, j)
		}
	}
	return int(z.td[n1-1][n2-1])
}

func (z *refZhangShasha) treedist(i, j int) {
	li := z.a.lmld[i]
	lj := z.b.lmld[j]
	ins := int32(z.c.Insert)
	del := int32(z.c.Delete)

	fd := z.fd
	fd[0][0] = 0
	for di := li; di <= i; di++ {
		fd[di-li+1][0] = fd[di-li][0] + del
	}
	row0 := fd[0]
	for dj := lj; dj <= j; dj++ {
		row0[dj-lj+1] = row0[dj-lj] + ins
	}
	aLmld, bLmld := z.a.lmld, z.b.lmld
	aLabels, bLabels := z.a.labels, z.b.labels
	ren := int32(z.c.Rename)
	for di := li; di <= i; di++ {
		prev := fd[di-li]
		cur := fd[di-li+1]
		tdRow := z.td[di]
		aWhole := aLmld[di] == li
		la := aLabels[di]
		fdA := fd[aLmld[di]-li]
		for dj := lj; dj <= j; dj++ {
			cj := dj - lj
			if aWhole && bLmld[dj] == lj {
				r := int32(0)
				if la != bLabels[dj] {
					r = ren
				}
				d := min3(prev[cj+1]+del, cur[cj]+ins, prev[cj]+r)
				cur[cj+1] = d
				tdRow[dj] = d
			} else {
				d := min3(prev[cj+1]+del, cur[cj]+ins,
					fdA[bLmld[dj]-lj]+tdRow[dj])
				cur[cj+1] = d
			}
		}
	}
}

func refDistanceWithCosts(t1, t2 *tree.Node, c Costs) int {
	if t1 == nil && t2 == nil {
		return 0
	}
	if t1 == nil {
		return t2.Size() * c.Insert
	}
	if t2 == nil {
		return t1.Size() * c.Delete
	}
	in := newRefInterner()
	f1 := refFlatten(t1, in)
	f2 := refFlatten(t2, in)
	z := &refZhangShasha{a: f1, b: f2, c: c}
	return z.run()
}

// --- shape generators ---------------------------------------------------------

// combTree is a left comb: a chain where every node has one child plus
// (optionally) a leaf sibling, the maximum-depth shape.
func combTree(r *rand.Rand, n int) *tree.Node {
	labels := []string{"A", "B", "C", "D"}
	root := tree.New(labels[r.Intn(len(labels))])
	cur := root
	for i := 1; i < n; i++ {
		child := tree.New(labels[r.Intn(len(labels))])
		cur.Add(child)
		cur = child
	}
	return root
}

// wideTree is a root with n-1 leaves — the keyroot-count worst case.
func wideTree(r *rand.Rand, n int) *tree.Node {
	labels := []string{"A", "B", "C", "D"}
	root := tree.New(labels[r.Intn(len(labels))])
	for i := 1; i < n; i++ {
		root.Add(tree.New(labels[r.Intn(len(labels))]))
	}
	return root
}

// deepWideTree alternates deep chains with wide fans.
func deepWideTree(r *rand.Rand, n int) *tree.Node {
	labels := []string{"A", "B", "C", "D"}
	root := tree.New(labels[r.Intn(len(labels))])
	cur := root
	remaining := n - 1
	for remaining > 0 {
		fan := 1 + r.Intn(4)
		if fan > remaining {
			fan = remaining
		}
		var last *tree.Node
		for i := 0; i < fan; i++ {
			last = tree.New(labels[r.Intn(len(labels))])
			cur.Add(last)
		}
		cur = last
		remaining -= fan
	}
	return root
}

var equivalenceShapes = []struct {
	name string
	gen  func(r *rand.Rand, n int) *tree.Node
}{
	{"random", randTree},
	{"comb", combTree},
	{"wide", wideTree},
	{"deepwide", deepWideTree},
}

// TestEquivalenceWithSeedImplementation drives randomized tree pairs of
// every shape through the optimised uncached path, the cached path, and
// the seed reference, for unit and skewed cost models. Any divergence in
// the flat-memo, pooling, or bound-gate logic trips here.
func TestEquivalenceWithSeedImplementation(t *testing.T) {
	costs := []Costs{
		UnitCosts(),
		{Insert: 2, Delete: 1, Rename: 1},
		{Insert: 1, Delete: 3, Rename: 2},
		{Insert: 2, Delete: 2, Rename: 5}, // rename >= insert+delete: disjoint-label gate territory
	}
	cache := NewCache()
	for _, sa := range equivalenceShapes {
		for _, sb := range equivalenceShapes {
			name := fmt.Sprintf("%s-vs-%s", sa.name, sb.name)
			t.Run(name, func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(len(sa.name)*31 + len(sb.name))))
				for i := 0; i < 8; i++ {
					a := sa.gen(r, 1+r.Intn(40))
					b := sb.gen(r, 1+r.Intn(40))
					for _, cs := range costs {
						want := refDistanceWithCosts(a, b, cs)
						if got := DistanceWithCosts(a, b, cs); got != want {
							t.Fatalf("uncached costs %+v: got %d, seed %d\na=%s\nb=%s", cs, got, want, a, b)
						}
						if got := cache.DistanceWithCosts(a, b, cs); got != want {
							t.Fatalf("cached costs %+v: got %d, seed %d\na=%s\nb=%s", cs, got, want, a, b)
						}
						// repeat lookup: flat memo and distance memo warm
						if got := cache.DistanceWithCosts(a, b, cs); got != want {
							t.Fatalf("warm cached costs %+v: got %d, seed %d", cs, got, want)
						}
					}
				}
			})
		}
	}
}

// TestEquivalenceSingleNodeGate pins the single-node bound gate (the one
// exact gate that fires under unit costs) against the seed recursion for
// every label-present/label-absent combination.
func TestEquivalenceSingleNodeGate(t *testing.T) {
	costs := []Costs{
		UnitCosts(),
		{Insert: 3, Delete: 1, Rename: 1},
		{Insert: 1, Delete: 4, Rename: 2},
		{Insert: 1, Delete: 1, Rename: 9}, // rename never worth it
	}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 40; i++ {
		big := randTree(r, 1+r.Intn(30))
		single := tree.New([]string{"A", "B", "C", "D", "E", "Z!"}[r.Intn(6)])
		for _, cs := range costs {
			for _, pair := range [][2]*tree.Node{{single, big}, {big, single}, {single, single.Clone()}} {
				want := refDistanceWithCosts(pair[0], pair[1], cs)
				if got := DistanceWithCosts(pair[0], pair[1], cs); got != want {
					t.Fatalf("single-node gate costs %+v: got %d, seed %d\na=%s\nb=%s",
						cs, got, want, pair[0], pair[1])
				}
			}
		}
	}
}

// TestEquivalenceDisjointLabels pins the disjoint-multiset gate: when the
// trees share no labels and rename >= insert+delete, the gate answers
// n1*del + n2*ins; when rename is cheaper it must stay on the DP.
func TestEquivalenceDisjointLabels(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	mk := func(labels []string, n int) *tree.Node {
		root := tree.New(labels[r.Intn(len(labels))])
		nodes := []*tree.Node{root}
		for i := 1; i < n; i++ {
			parent := nodes[r.Intn(len(nodes))]
			child := tree.New(labels[r.Intn(len(labels))])
			parent.Add(child)
			nodes = append(nodes, child)
		}
		return root
	}
	costs := []Costs{
		UnitCosts(),
		{Insert: 1, Delete: 1, Rename: 2}, // rename == insert+delete: gate may fire
		{Insert: 2, Delete: 1, Rename: 5}, // rename > insert+delete: gate fires
		{Insert: 2, Delete: 3, Rename: 4}, // rename < insert+delete: must run DP
	}
	for i := 0; i < 25; i++ {
		a := mk([]string{"A", "B", "C"}, 1+r.Intn(25))
		b := mk([]string{"X", "Y", "Z"}, 1+r.Intn(25))
		for _, cs := range costs {
			want := refDistanceWithCosts(a, b, cs)
			if got := DistanceWithCosts(a, b, cs); got != want {
				t.Fatalf("disjoint labels costs %+v: got %d, seed %d\na=%s\nb=%s", cs, got, want, a, b)
			}
		}
	}
}

// refPQGramProfile is the seed NewPQGramProfile verbatim: string-slice
// windows hashed through hash/fnv. The optimised version rolls the same
// FNV-1a byte stream inline, so gram values must match exactly — not just
// the distances they induce.
func refPQGramProfile(t *tree.Node) []uint64 {
	if t == nil {
		return nil
	}
	var grams []uint64
	stem := make([]string, pqP)
	for i := range stem {
		stem[i] = "*"
	}
	hashGram := func(stem, base []string) uint64 {
		h := fnv.New64a()
		for _, s := range stem {
			_, _ = h.Write([]byte(s))
			_, _ = h.Write([]byte{0})
		}
		_, _ = h.Write([]byte{1})
		for _, s := range base {
			_, _ = h.Write([]byte(s))
			_, _ = h.Write([]byte{0})
		}
		return h.Sum64()
	}
	var visit func(n *tree.Node, anc []string)
	visit = func(n *tree.Node, anc []string) {
		a := append(append([]string{}, anc[1:]...), n.Label)
		base := make([]string, pqQ)
		for i := range base {
			base[i] = "*"
		}
		if len(n.Children) == 0 {
			grams = append(grams, hashGram(a, base))
			return
		}
		win := make([]string, 0, pqQ)
		for i := 0; i < pqQ-1; i++ {
			win = append(win, "*")
		}
		kids := n.Children
		for i := 0; i < len(kids)+pqQ-1; i++ {
			if i < len(kids) {
				win = append(win, kids[i].Label)
			} else {
				win = append(win, "*")
			}
			if len(win) > pqQ {
				win = win[1:]
			}
			if len(win) == pqQ {
				grams = append(grams, hashGram(a, win))
			}
		}
		for _, c := range kids {
			visit(c, a)
		}
	}
	visit(t, stem)
	sort.Slice(grams, func(i, j int) bool { return grams[i] < grams[j] })
	return grams
}

// TestPQGramProfileMatchesSeed pins the rolled-hash profile builder to the
// seed's gram values across every shape generator.
func TestPQGramProfileMatchesSeed(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, s := range equivalenceShapes {
		for i := 0; i < 6; i++ {
			tr := s.gen(r, 1+r.Intn(60))
			want := refPQGramProfile(tr)
			got := NewPQGramProfile(tr).grams
			if len(got) != len(want) {
				t.Fatalf("%s: gram count %d, seed %d", s.name, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("%s: gram[%d] = %#x, seed %#x", s.name, k, got[k], want[k])
				}
			}
		}
	}
}
