package ted

import (
	"fmt"
	"sync"
	"sync/atomic"

	"silvervale/internal/obs"
	"silvervale/internal/store"
	"silvervale/internal/tree"
)

// Cache is a concurrency-safe, content-addressed memo for tree edit
// distances. Entries are keyed by (Fingerprint(a), Fingerprint(b), Costs),
// so the cache is shared safely across codebases, metrics, and goroutines:
// any two structurally identical trees hit the same entry no matter where
// they came from. pq-gram profiles and approximate distances are memoised
// under the same addressing scheme.
//
// Identical-tree pairs short-circuit to distance 0 without running
// Zhang–Shasha at all: on fingerprint equality the trees are verified with
// tree.Equal (O(n), negligible next to the O(n^2+) distance computation),
// so the shortcut is exact, not probabilistic. Distinct-pair hits rely on
// fingerprint uniqueness, which holds up to a simultaneous collision of
// two independent 64-bit hashes plus the node count.
//
// Alongside the distance memo the cache keeps a per-tree flat memo: the
// post-order labels/lmld/keyroot arrays Zhang–Shasha consumes, addressed
// by the same content fingerprint. A matrix sweep over k codebases
// compares every tree against O(k) others but flattens and interns it
// exactly once; distance misses borrow the memoised flats and only the DP
// itself runs per pair. Memoised flats are immutable and shared across
// goroutines; they live as long as the cache (see DESIGN.md §6).
//
// The zero value is not usable; call NewCache.
type Cache struct {
	mu       sync.RWMutex
	dist     map[pairKey]int
	approx   map[approxKey]float64
	profiles map[tree.Fingerprint]PQGramProfile
	flats    map[tree.Fingerprint]*flat
	sigs     map[sigKey]Signature
	routes   map[routeKey]routeVal

	// Subtree-block memo (DESIGN.md §13): treedist outputs per keyroot
	// pair, content-addressed by subtree fingerprint pair + costs, under
	// their own lock so grid probes never contend with distance lookups.
	subMu    sync.RWMutex
	subs     map[subKey]*subBlock
	subBytes int64 // accounted payload + overhead, guarded by subMu
	subMax   int64 // eviction bound in bytes
	subMin   int   // memoisation threshold in DP cells (m1*m2)

	// Forest-prefix checkpoint memo (DESIGN.md §13): root-keyroot-row DP
	// rows captured at root-children boundaries, shared under subMu with
	// the block memo but accounted and bounded separately.
	ckpts     map[ckptKey][]int32
	ckptBytes int64 // guarded by subMu
	ckptMax   int64 // eviction bound in bytes
	ckptMin   int   // minimum a-tree node count for capture/resume

	// Probe-row memo (DESIGN.md §13): whole keyroot rows of block-grid
	// probe results, content-addressed by (a keyroot subtree, b tree,
	// costs), shared under subMu but accounted and bounded separately.
	rows     map[rowKey][]rowSlot
	rowBytes int64 // guarded by subMu
	rowMax   int64 // eviction bound in bytes

	subOn       atomic.Bool
	subHits     atomic.Uint64
	subMisses   atomic.Uint64
	subEvicted  atomic.Uint64
	ckptHits    atomic.Uint64
	ckptMisses  atomic.Uint64
	ckptEvicted atomic.Uint64
	rowHits     atomic.Uint64
	rowMisses   atomic.Uint64
	rowEvicted  atomic.Uint64

	hits        atomic.Uint64
	misses      atomic.Uint64
	identity    atomic.Uint64
	symmetric   atomic.Uint64
	boundPruned atomic.Uint64
	flatHits    atomic.Uint64
	flatMisses  atomic.Uint64

	// obs holds the resolved observability handles (nil when disabled);
	// an atomic pointer so SetRecorder is safe against in-flight lookups.
	obs atomic.Pointer[cacheObs]

	// backing is the optional persistent artifact store (nil when absent);
	// an atomic pointer so SetStore is safe against in-flight lookups.
	// Memory misses consult it before computing, disk hits are promoted
	// into the in-memory memo, and fresh results are queued to it
	// write-behind (see DESIGN.md §7).
	backing atomic.Pointer[store.Store]
}

// cacheObs caches the recorder plus the counters/histograms the hot path
// touches, resolved once in SetRecorder.
type cacheObs struct {
	rec         *obs.Recorder
	calls       *obs.Counter   // ted.calls — exact-TED lookups
	approxCalls *obs.Counter   // ted.approx.calls — pq-gram lookups
	hits        *obs.Counter   // ted.cache.hits
	misses      *obs.Counter   // ted.cache.misses
	identity    *obs.Counter   // ted.cache.identity
	symmetric   *obs.Counter   // ted.cache.symmetric
	boundPruned *obs.Counter   // ted.bound_pruned — misses answered by a bound gate
	flatHits    *obs.Counter   // ted.flat_memo.hits
	flatMisses  *obs.Counter   // ted.flat_memo.misses
	subHits     *obs.Counter   // ted.subtree_blocks_hit — keyroot blocks served from the memo
	subMisses   *obs.Counter   // ted.subtree_blocks_miss — memoisable blocks not served
	subEvicted  *obs.Counter   // ted.subtree_blocks_evicted — blocks dropped by the bound
	ckptHits    *obs.Counter   // ted.ckpt_rows_hit — root-row DPs resumed from a checkpoint
	ckptMisses  *obs.Counter   // ted.ckpt_rows_miss — root-row misses with no usable checkpoint
	ckptEvicted *obs.Counter   // ted.ckpt_rows_evicted — checkpoint rows dropped by the bound
	rowHits     *obs.Counter   // ted.probe_rows_hit — keyroot rows served by the probe-row memo
	rowMisses   *obs.Counter   // ted.probe_rows_miss — keyroot rows probed slot by slot
	rowEvicted  *obs.Counter   // ted.probe_rows_evicted — probe rows dropped by the bound
	pairNodes   *obs.Histogram // ted.pair_nodes — size bucket per call
}

// pairKey addresses one exact-TED evaluation. When Insert == Delete the
// distance is symmetric and the key is canonicalised so (a,b) and (b,a)
// share an entry.
type pairKey struct {
	a, b  tree.Fingerprint
	costs Costs
}

// approxKey addresses one pq-gram distance, which is always symmetric.
type approxKey struct {
	a, b tree.Fingerprint
}

// NewCache returns an empty cache ready for concurrent use. The subtree-
// block memo starts enabled with its default threshold and bound.
func NewCache() *Cache {
	c := &Cache{
		dist:     map[pairKey]int{},
		approx:   map[approxKey]float64{},
		profiles: map[tree.Fingerprint]PQGramProfile{},
		flats:    map[tree.Fingerprint]*flat{},
		sigs:     map[sigKey]Signature{},
		routes:   map[routeKey]routeVal{},
		subs:     map[subKey]*subBlock{},
		subMax:   subDefaultMaxBytes,
		subMin:   subDefaultMinCells,
		ckpts:    map[ckptKey][]int32{},
		ckptMax:  ckptDefaultMaxBytes,
		ckptMin:  ckptDefaultMinRows,
		rows:     map[rowKey][]rowSlot{},
		rowMax:   rowDefaultMaxBytes,
	}
	c.subOn.Store(true)
	return c
}

// SetRecorder attaches an observability recorder: every subsequent lookup
// also feeds the obs counters ("ted.calls", "ted.cache.*"), the
// "ted.pair_nodes" size histogram, and — on misses — "ted.fingerprint" /
// "ted.distance" spans. A nil recorder detaches (the default); the cache's
// own CacheStats counters run regardless.
func (c *Cache) SetRecorder(rec *obs.Recorder) {
	if rec == nil {
		c.obs.Store(nil)
		return
	}
	c.obs.Store(&cacheObs{
		rec:         rec,
		calls:       rec.Counter("ted.calls"),
		approxCalls: rec.Counter("ted.approx.calls"),
		hits:        rec.Counter("ted.cache.hits"),
		misses:      rec.Counter("ted.cache.misses"),
		identity:    rec.Counter("ted.cache.identity"),
		symmetric:   rec.Counter("ted.cache.symmetric"),
		boundPruned: rec.Counter("ted.bound_pruned"),
		flatHits:    rec.Counter("ted.flat_memo.hits"),
		flatMisses:  rec.Counter("ted.flat_memo.misses"),
		subHits:     rec.Counter("ted.subtree_blocks_hit"),
		subMisses:   rec.Counter("ted.subtree_blocks_miss"),
		subEvicted:  rec.Counter("ted.subtree_blocks_evicted"),
		ckptHits:    rec.Counter("ted.ckpt_rows_hit"),
		ckptMisses:  rec.Counter("ted.ckpt_rows_miss"),
		ckptEvicted: rec.Counter("ted.ckpt_rows_evicted"),
		rowHits:     rec.Counter("ted.probe_rows_hit"),
		rowMisses:   rec.Counter("ted.probe_rows_miss"),
		rowEvicted:  rec.Counter("ted.probe_rows_evicted"),
		pairNodes:   rec.Histogram("ted.pair_nodes"),
	})
}

// SetStore attaches a persistent backing store: memory misses consult it
// before running the DP, disk hits are promoted into the in-memory memo,
// and fresh distances are queued to it write-behind. A nil store detaches
// (the default); the caller retains ownership and must Close the store
// itself to drain pending writes.
//
// The cache needs no fault handling of its own: a store that has degraded
// to memory-only (see store.Store.Degraded and DESIGN.md §9) answers every
// lookup with a miss and drops every put, so the cache transparently falls
// back to computing — distances are unaffected, only warm starts are lost.
func (c *Cache) SetStore(s *store.Store) {
	c.backing.Store(s)
}

// Store returns the attached backing store (nil when absent).
func (c *Cache) Store() *store.Store { return c.backing.Load() }

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits        uint64 // lookups answered from the memo or the identity shortcut
	Misses      uint64 // lookups that ran the underlying algorithm
	Identity    uint64 // hits answered by the identical-tree short-circuit
	Symmetric   uint64 // lookups whose key was canonicalised to the unordered pair
	BoundPruned uint64 // misses answered by an exact bound gate, skipping the DP
	FlatHits    uint64 // flattened-tree lookups served from the flat memo
	FlatMisses  uint64 // trees flattened and interned for the first time
	Entries     int    // stored exact distances
	Profiles    int    // stored pq-gram profiles
	Flats       int    // stored flattened trees

	// Subtree-block memo traffic (DESIGN.md §13). Hits and misses count
	// memoisable keyroot pairs only — pairs below the size threshold
	// always recompute and are invisible here. A hit means the block was
	// served from the memo; its cells materialise into the DP tables
	// lazily, only when a recomputed neighbour actually reads them.
	SubtreeHits    uint64 // keyroot blocks served instead of recomputed
	SubtreeMisses  uint64 // memoisable keyroot blocks not served by the memo
	SubtreeEvicted uint64 // blocks dropped by the byte bound
	SubtreeBlocks  int    // blocks currently resident
	SubtreeBytes   int64  // accounted resident size (payload + overhead)

	// Forest-prefix checkpoint traffic (DESIGN.md §13). A checkpoint hit
	// resumes one root-keyroot-row DP from a memoised forest-prefix row
	// instead of re-running it from row zero; misses count root-row block
	// misses that found no usable checkpoint and paid the full row.
	CheckpointHits    uint64 // root-row DPs resumed mid-row
	CheckpointMisses  uint64 // root-row block misses with no checkpoint
	CheckpointEvicted uint64 // checkpoint rows dropped by the byte bound
	CheckpointRows    int    // checkpoint rows currently resident
	CheckpointBytes   int64  // accounted resident size (payload + overhead)

	// Probe-row memo traffic (DESIGN.md §13). A probe-row hit replays one
	// whole keyroot row of grid probe results — recorded only when every
	// above-threshold slot hit, so the replay is always identical to a
	// slot-by-slot probe and SubtreeHits still counts each served block.
	ProbeRowHits    uint64 // keyroot rows served by the probe-row memo
	ProbeRowMisses  uint64 // keyroot rows probed slot by slot
	ProbeRowEvicted uint64 // probe rows dropped by the byte bound
	ProbeRows       int    // probe rows currently resident
	ProbeRowBytes   int64  // accounted resident size (payload + overhead)

	// StoreEnabled marks the persistent tier attached; Store then carries
	// its traffic counters (zero-valued otherwise, so the no-store path is
	// unchanged).
	StoreEnabled bool
	Store        store.Stats
}

// Stats returns current counters. Hits include identity short-circuits.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	entries, profiles, flats := len(c.dist), len(c.profiles), len(c.flats)
	c.mu.RUnlock()
	c.subMu.RLock()
	subBlocks, subBytes := len(c.subs), c.subBytes
	ckptRows, ckptBytes := len(c.ckpts), c.ckptBytes
	probeRows, probeRowBytes := len(c.rows), c.rowBytes
	c.subMu.RUnlock()
	st := CacheStats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Identity:       c.identity.Load(),
		Symmetric:      c.symmetric.Load(),
		BoundPruned:    c.boundPruned.Load(),
		FlatHits:       c.flatHits.Load(),
		FlatMisses:     c.flatMisses.Load(),
		Entries:        entries,
		Profiles:       profiles,
		Flats:          flats,
		SubtreeHits:    c.subHits.Load(),
		SubtreeMisses:  c.subMisses.Load(),
		SubtreeEvicted: c.subEvicted.Load(),
		SubtreeBlocks:  subBlocks,
		SubtreeBytes:   subBytes,

		CheckpointHits:    c.ckptHits.Load(),
		CheckpointMisses:  c.ckptMisses.Load(),
		CheckpointEvicted: c.ckptEvicted.Load(),
		CheckpointRows:    ckptRows,
		CheckpointBytes:   ckptBytes,

		ProbeRowHits:    c.rowHits.Load(),
		ProbeRowMisses:  c.rowMisses.Load(),
		ProbeRowEvicted: c.rowEvicted.Load(),
		ProbeRows:       probeRows,
		ProbeRowBytes:   probeRowBytes,
	}
	if s := c.backing.Load(); s != nil {
		st.StoreEnabled = true
		st.Store = s.Stats()
	}
	return st
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// FlatHitRate returns the flat-memo hit ratio, or 0 before any flatten.
func (s CacheStats) FlatHitRate() float64 {
	total := s.FlatHits + s.FlatMisses
	if total == 0 {
		return 0
	}
	return float64(s.FlatHits) / float64(total)
}

// String renders the snapshot as the one-line summary the CLI prints after
// experiment sweeps. The historical prefix is stable; the subtree-memo
// fragment (and, with a persistent store attached, the store tier's
// traffic) appends after it.
func (s CacheStats) String() string {
	line := fmt.Sprintf(
		"ted cache: %d hits (%d identity), %d misses, %d symmetric canonicalisations, %d entries, %d profiles, hit rate %.1f%%, %d bound-pruned, flat memo %d/%d hit rate %.1f%%",
		s.Hits, s.Identity, s.Misses, s.Symmetric, s.Entries, s.Profiles, 100*s.HitRate(),
		s.BoundPruned, s.FlatHits, s.FlatHits+s.FlatMisses, 100*s.FlatHitRate())
	line += fmt.Sprintf(", subtree blocks %d hit/%d miss, %d resident (%dB), %d evicted",
		s.SubtreeHits, s.SubtreeMisses, s.SubtreeBlocks, s.SubtreeBytes, s.SubtreeEvicted)
	line += fmt.Sprintf(", ckpt rows %d hit/%d miss, %d resident (%dB), %d evicted",
		s.CheckpointHits, s.CheckpointMisses, s.CheckpointRows, s.CheckpointBytes, s.CheckpointEvicted)
	line += fmt.Sprintf(", probe rows %d hit/%d miss, %d resident (%dB), %d evicted",
		s.ProbeRowHits, s.ProbeRowMisses, s.ProbeRows, s.ProbeRowBytes, s.ProbeRowEvicted)
	if s.StoreEnabled {
		line += ", " + s.Store.String()
	}
	return line
}

// Distance is the cached form of Distance (unit costs).
func (c *Cache) Distance(t1, t2 *tree.Node) int {
	return c.DistanceWithCosts(t1, t2, UnitCosts())
}

// DistanceWithCosts is the cached form of DistanceWithCosts. Results are
// always identical to the uncached function.
func (c *Cache) DistanceWithCosts(t1, t2 *tree.Node, costs Costs) int {
	o := c.obs.Load()
	var fa, fb tree.Fingerprint
	if o != nil {
		o.calls.Add(1)
		fsp := o.rec.Start("ted.fingerprint")
		fa, fb = t1.Fingerprint(), t2.Fingerprint()
		fsp.End()
		o.pairNodes.Observe(int64(fa.Size) + int64(fb.Size))
	} else {
		fa, fb = t1.Fingerprint(), t2.Fingerprint()
	}
	if fa == fb && tree.Equal(t1, t2) {
		// d(t, t) == 0 under every cost model: the empty edit script.
		c.hits.Add(1)
		c.identity.Add(1)
		if o != nil {
			o.hits.Add(1)
			o.identity.Add(1)
		}
		return 0
	}
	key := pairKey{a: fa, b: fb, costs: costs}
	if costs.Insert == costs.Delete && fb.Less(fa) {
		key.a, key.b = fb, fa
		c.symmetric.Add(1)
		if o != nil {
			o.symmetric.Add(1)
		}
	}
	c.mu.RLock()
	d, ok := c.dist[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		if o != nil {
			o.hits.Add(1)
		}
		return d
	}
	c.misses.Add(1)
	if o != nil {
		o.misses.Add(1)
	}
	st := c.backing.Load()
	var dk store.DistKey
	if st != nil {
		// The pair is already canonicalised, so both orientations of a
		// symmetric pair resolve to the same on-disk record.
		dk = store.DistKey{A: key.a, B: key.b,
			Insert: costs.Insert, Delete: costs.Delete, Rename: costs.Rename}
		if pd, ok := st.LookupDist(dk); ok {
			c.mu.Lock()
			c.dist[key] = pd
			c.mu.Unlock()
			return pd
		}
	}
	if o != nil {
		dsp := o.rec.Start("ted.distance")
		d = c.compute(t1, t2, fa, fb, costs, o)
		dsp.End()
	} else {
		d = c.compute(t1, t2, fa, fb, costs, o)
	}
	c.mu.Lock()
	c.dist[key] = d
	c.mu.Unlock()
	if st != nil {
		st.PutDist(dk, d)
	}
	return d
}

// compute evaluates one cache miss: memoised flats, then the bound gates,
// then — only when no gate fires — the pooled Zhang–Shasha DP. Results are
// identical to the package-level DistanceWithCosts by construction (same
// gates, same kernel) and by the equivalence property test.
func (c *Cache) compute(t1, t2 *tree.Node, fa, fb tree.Fingerprint, costs Costs, o *cacheObs) int {
	if t1 == nil {
		return t2.Size() * costs.Insert
	}
	if t2 == nil {
		return t1.Size() * costs.Delete
	}
	a := c.flatFor(t1, fa, o)
	b := c.flatFor(t2, fb, o)
	sc := getScratch()
	d, pruned := boundGate(a, b, costs, sc)
	if pruned {
		c.boundPruned.Add(1)
		if o != nil {
			o.boundPruned.Add(1)
		}
	} else if c.subOn.Load() && a.krFP != nil && b.krFP != nil {
		d = c.zsDistanceMemo(a, b, costs, sc, o)
	} else {
		d = zsDistance(a, b, costs, sc)
	}
	putScratch(sc)
	return d
}

// flatFor returns the memoised flattened form of t, building it on first
// sight of the fingerprint. Two goroutines racing on the same new tree may
// both build; the store keeps the first and both results are identical, so
// the loser's copy is just garbage.
func (c *Cache) flatFor(t *tree.Node, fp tree.Fingerprint, o *cacheObs) *flat {
	c.mu.RLock()
	f, ok := c.flats[fp]
	c.mu.RUnlock()
	if ok {
		c.flatHits.Add(1)
		if o != nil {
			o.flatHits.Add(1)
		}
		return f
	}
	c.flatMisses.Add(1)
	if o != nil {
		o.flatMisses.Add(1)
	}
	f = newFlat(t)
	c.mu.Lock()
	if prior, ok := c.flats[fp]; ok {
		f = prior
	} else {
		c.flats[fp] = f
	}
	c.mu.Unlock()
	return f
}

// Profile returns the memoised pq-gram profile of a tree.
func (c *Cache) Profile(t *tree.Node) PQGramProfile {
	f := t.Fingerprint()
	c.mu.RLock()
	p, ok := c.profiles[f]
	c.mu.RUnlock()
	if ok {
		return p
	}
	p = NewPQGramProfile(t)
	c.mu.Lock()
	c.profiles[f] = p
	c.mu.Unlock()
	return p
}

// ApproxDistance is the cached form of ApproxDistance: both the per-tree
// pq-gram profiles and the per-pair distance are memoised.
func (c *Cache) ApproxDistance(t1, t2 *tree.Node) float64 {
	o := c.obs.Load()
	if o != nil {
		o.approxCalls.Add(1)
	}
	fa, fb := t1.Fingerprint(), t2.Fingerprint()
	key := approxKey{a: fa, b: fb}
	if fb.Less(fa) {
		key.a, key.b = fb, fa
		c.symmetric.Add(1)
		if o != nil {
			o.symmetric.Add(1)
		}
	}
	c.mu.RLock()
	d, ok := c.approx[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		if o != nil {
			o.hits.Add(1)
		}
		return d
	}
	c.misses.Add(1)
	if o != nil {
		o.misses.Add(1)
	}
	d = PQGramDistance(c.Profile(t1), c.Profile(t2))
	c.mu.Lock()
	c.approx[key] = d
	c.mu.Unlock()
	return d
}
