package ted

import (
	"fmt"
	"sync"
	"sync/atomic"

	"silvervale/internal/obs"
	"silvervale/internal/tree"
)

// Cache is a concurrency-safe, content-addressed memo for tree edit
// distances. Entries are keyed by (Fingerprint(a), Fingerprint(b), Costs),
// so the cache is shared safely across codebases, metrics, and goroutines:
// any two structurally identical trees hit the same entry no matter where
// they came from. pq-gram profiles and approximate distances are memoised
// under the same addressing scheme.
//
// Identical-tree pairs short-circuit to distance 0 without running
// Zhang–Shasha at all: on fingerprint equality the trees are verified with
// tree.Equal (O(n), negligible next to the O(n^2+) distance computation),
// so the shortcut is exact, not probabilistic. Distinct-pair hits rely on
// fingerprint uniqueness, which holds up to a simultaneous collision of
// two independent 64-bit hashes plus the node count.
//
// The zero value is not usable; call NewCache.
type Cache struct {
	mu       sync.RWMutex
	dist     map[pairKey]int
	approx   map[approxKey]float64
	profiles map[tree.Fingerprint]PQGramProfile

	hits      atomic.Uint64
	misses    atomic.Uint64
	identity  atomic.Uint64
	symmetric atomic.Uint64

	// obs holds the resolved observability handles (nil when disabled);
	// an atomic pointer so SetRecorder is safe against in-flight lookups.
	obs atomic.Pointer[cacheObs]
}

// cacheObs caches the recorder plus the counters/histograms the hot path
// touches, resolved once in SetRecorder.
type cacheObs struct {
	rec         *obs.Recorder
	calls       *obs.Counter   // ted.calls — exact-TED lookups
	approxCalls *obs.Counter   // ted.approx.calls — pq-gram lookups
	hits        *obs.Counter   // ted.cache.hits
	misses      *obs.Counter   // ted.cache.misses
	identity    *obs.Counter   // ted.cache.identity
	symmetric   *obs.Counter   // ted.cache.symmetric
	pairNodes   *obs.Histogram // ted.pair_nodes — size bucket per call
}

// pairKey addresses one exact-TED evaluation. When Insert == Delete the
// distance is symmetric and the key is canonicalised so (a,b) and (b,a)
// share an entry.
type pairKey struct {
	a, b  tree.Fingerprint
	costs Costs
}

// approxKey addresses one pq-gram distance, which is always symmetric.
type approxKey struct {
	a, b tree.Fingerprint
}

// NewCache returns an empty cache ready for concurrent use.
func NewCache() *Cache {
	return &Cache{
		dist:     map[pairKey]int{},
		approx:   map[approxKey]float64{},
		profiles: map[tree.Fingerprint]PQGramProfile{},
	}
}

// SetRecorder attaches an observability recorder: every subsequent lookup
// also feeds the obs counters ("ted.calls", "ted.cache.*"), the
// "ted.pair_nodes" size histogram, and — on misses — "ted.fingerprint" /
// "ted.distance" spans. A nil recorder detaches (the default); the cache's
// own CacheStats counters run regardless.
func (c *Cache) SetRecorder(rec *obs.Recorder) {
	if rec == nil {
		c.obs.Store(nil)
		return
	}
	c.obs.Store(&cacheObs{
		rec:         rec,
		calls:       rec.Counter("ted.calls"),
		approxCalls: rec.Counter("ted.approx.calls"),
		hits:        rec.Counter("ted.cache.hits"),
		misses:      rec.Counter("ted.cache.misses"),
		identity:    rec.Counter("ted.cache.identity"),
		symmetric:   rec.Counter("ted.cache.symmetric"),
		pairNodes:   rec.Histogram("ted.pair_nodes"),
	})
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      uint64 // lookups answered from the memo or the identity shortcut
	Misses    uint64 // lookups that ran the underlying algorithm
	Identity  uint64 // hits answered by the identical-tree short-circuit
	Symmetric uint64 // lookups whose key was canonicalised to the unordered pair
	Entries   int    // stored exact distances
	Profiles  int    // stored pq-gram profiles
}

// Stats returns current counters. Hits include identity short-circuits.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	entries, profiles := len(c.dist), len(c.profiles)
	c.mu.RUnlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Identity:  c.identity.Load(),
		Symmetric: c.symmetric.Load(),
		Entries:   entries,
		Profiles:  profiles,
	}
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the snapshot as the one-line summary the CLI prints after
// experiment sweeps.
func (s CacheStats) String() string {
	return fmt.Sprintf(
		"ted cache: %d hits (%d identity), %d misses, %d symmetric canonicalisations, %d entries, %d profiles, hit rate %.1f%%",
		s.Hits, s.Identity, s.Misses, s.Symmetric, s.Entries, s.Profiles, 100*s.HitRate())
}

// Distance is the cached form of Distance (unit costs).
func (c *Cache) Distance(t1, t2 *tree.Node) int {
	return c.DistanceWithCosts(t1, t2, UnitCosts())
}

// DistanceWithCosts is the cached form of DistanceWithCosts. Results are
// always identical to the uncached function.
func (c *Cache) DistanceWithCosts(t1, t2 *tree.Node, costs Costs) int {
	o := c.obs.Load()
	var fa, fb tree.Fingerprint
	if o != nil {
		o.calls.Add(1)
		fsp := o.rec.Start("ted.fingerprint")
		fa, fb = t1.Fingerprint(), t2.Fingerprint()
		fsp.End()
		o.pairNodes.Observe(int64(fa.Size) + int64(fb.Size))
	} else {
		fa, fb = t1.Fingerprint(), t2.Fingerprint()
	}
	if fa == fb && tree.Equal(t1, t2) {
		// d(t, t) == 0 under every cost model: the empty edit script.
		c.hits.Add(1)
		c.identity.Add(1)
		if o != nil {
			o.hits.Add(1)
			o.identity.Add(1)
		}
		return 0
	}
	key := pairKey{a: fa, b: fb, costs: costs}
	if costs.Insert == costs.Delete && fb.Less(fa) {
		key.a, key.b = fb, fa
		c.symmetric.Add(1)
		if o != nil {
			o.symmetric.Add(1)
		}
	}
	c.mu.RLock()
	d, ok := c.dist[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		if o != nil {
			o.hits.Add(1)
		}
		return d
	}
	c.misses.Add(1)
	if o != nil {
		o.misses.Add(1)
		dsp := o.rec.Start("ted.distance")
		d = DistanceWithCosts(t1, t2, costs)
		dsp.End()
	} else {
		d = DistanceWithCosts(t1, t2, costs)
	}
	c.mu.Lock()
	c.dist[key] = d
	c.mu.Unlock()
	return d
}

// Profile returns the memoised pq-gram profile of a tree.
func (c *Cache) Profile(t *tree.Node) PQGramProfile {
	f := t.Fingerprint()
	c.mu.RLock()
	p, ok := c.profiles[f]
	c.mu.RUnlock()
	if ok {
		return p
	}
	p = NewPQGramProfile(t)
	c.mu.Lock()
	c.profiles[f] = p
	c.mu.Unlock()
	return p
}

// ApproxDistance is the cached form of ApproxDistance: both the per-tree
// pq-gram profiles and the per-pair distance are memoised.
func (c *Cache) ApproxDistance(t1, t2 *tree.Node) float64 {
	o := c.obs.Load()
	if o != nil {
		o.approxCalls.Add(1)
	}
	fa, fb := t1.Fingerprint(), t2.Fingerprint()
	key := approxKey{a: fa, b: fb}
	if fb.Less(fa) {
		key.a, key.b = fb, fa
		c.symmetric.Add(1)
		if o != nil {
			o.symmetric.Add(1)
		}
	}
	c.mu.RLock()
	d, ok := c.approx[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		if o != nil {
			o.hits.Add(1)
		}
		return d
	}
	c.misses.Add(1)
	if o != nil {
		o.misses.Add(1)
	}
	d = PQGramDistance(c.Profile(t1), c.Profile(t2))
	c.mu.Lock()
	c.approx[key] = d
	c.mu.Unlock()
	return d
}
