package ted

import (
	"sync"
	"sync/atomic"

	"silvervale/internal/tree"
)

// Cache is a concurrency-safe, content-addressed memo for tree edit
// distances. Entries are keyed by (Fingerprint(a), Fingerprint(b), Costs),
// so the cache is shared safely across codebases, metrics, and goroutines:
// any two structurally identical trees hit the same entry no matter where
// they came from. pq-gram profiles and approximate distances are memoised
// under the same addressing scheme.
//
// Identical-tree pairs short-circuit to distance 0 without running
// Zhang–Shasha at all: on fingerprint equality the trees are verified with
// tree.Equal (O(n), negligible next to the O(n^2+) distance computation),
// so the shortcut is exact, not probabilistic. Distinct-pair hits rely on
// fingerprint uniqueness, which holds up to a simultaneous collision of
// two independent 64-bit hashes plus the node count.
//
// The zero value is not usable; call NewCache.
type Cache struct {
	mu       sync.RWMutex
	dist     map[pairKey]int
	approx   map[approxKey]float64
	profiles map[tree.Fingerprint]PQGramProfile

	hits   atomic.Uint64
	misses atomic.Uint64
}

// pairKey addresses one exact-TED evaluation. When Insert == Delete the
// distance is symmetric and the key is canonicalised so (a,b) and (b,a)
// share an entry.
type pairKey struct {
	a, b  tree.Fingerprint
	costs Costs
}

// approxKey addresses one pq-gram distance, which is always symmetric.
type approxKey struct {
	a, b tree.Fingerprint
}

// NewCache returns an empty cache ready for concurrent use.
func NewCache() *Cache {
	return &Cache{
		dist:     map[pairKey]int{},
		approx:   map[approxKey]float64{},
		profiles: map[tree.Fingerprint]PQGramProfile{},
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits     uint64 // lookups answered from the memo or the identity shortcut
	Misses   uint64 // lookups that ran the underlying algorithm
	Entries  int    // stored exact distances
	Profiles int    // stored pq-gram profiles
}

// Stats returns current counters. Hits include identity short-circuits.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	entries, profiles := len(c.dist), len(c.profiles)
	c.mu.RUnlock()
	return CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Entries:  entries,
		Profiles: profiles,
	}
}

// Distance is the cached form of Distance (unit costs).
func (c *Cache) Distance(t1, t2 *tree.Node) int {
	return c.DistanceWithCosts(t1, t2, UnitCosts())
}

// DistanceWithCosts is the cached form of DistanceWithCosts. Results are
// always identical to the uncached function.
func (c *Cache) DistanceWithCosts(t1, t2 *tree.Node, costs Costs) int {
	fa, fb := t1.Fingerprint(), t2.Fingerprint()
	if fa == fb && tree.Equal(t1, t2) {
		// d(t, t) == 0 under every cost model: the empty edit script.
		c.hits.Add(1)
		return 0
	}
	key := pairKey{a: fa, b: fb, costs: costs}
	if costs.Insert == costs.Delete && fb.Less(fa) {
		key.a, key.b = fb, fa
	}
	c.mu.RLock()
	d, ok := c.dist[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return d
	}
	c.misses.Add(1)
	d = DistanceWithCosts(t1, t2, costs)
	c.mu.Lock()
	c.dist[key] = d
	c.mu.Unlock()
	return d
}

// Profile returns the memoised pq-gram profile of a tree.
func (c *Cache) Profile(t *tree.Node) PQGramProfile {
	f := t.Fingerprint()
	c.mu.RLock()
	p, ok := c.profiles[f]
	c.mu.RUnlock()
	if ok {
		return p
	}
	p = NewPQGramProfile(t)
	c.mu.Lock()
	c.profiles[f] = p
	c.mu.Unlock()
	return p
}

// ApproxDistance is the cached form of ApproxDistance: both the per-tree
// pq-gram profiles and the per-pair distance are memoised.
func (c *Cache) ApproxDistance(t1, t2 *tree.Node) float64 {
	fa, fb := t1.Fingerprint(), t2.Fingerprint()
	key := approxKey{a: fa, b: fb}
	if fb.Less(fa) {
		key.a, key.b = fb, fa
	}
	c.mu.RLock()
	d, ok := c.approx[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return d
	}
	c.misses.Add(1)
	d = PQGramDistance(c.Profile(t1), c.Profile(t2))
	c.mu.Lock()
	c.approx[key] = d
	c.mu.Unlock()
	return d
}
