package ted

// Property tests for the tier routing layer: the pq-gram prefilter and
// LSH signatures may only ever send provably-boring pairs to the
// estimated tiers — a pair that is actually close (small exact TED
// relative to tree size) must always route exact — and every routing
// decision must be a pure, symmetric, deterministic function of the two
// trees and the policy.

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"silvervale/internal/tree"
)

// relabelSome clones t and relabels at most k nodes — a pair (t, mutant)
// has exact TED <= k by the k-rename edit script.
func relabelSome(r *rand.Rand, t *tree.Node, k int) *tree.Node {
	c := t.Clone()
	var nodes []*tree.Node
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		nodes = append(nodes, n)
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(c)
	for i := 0; i < k; i++ {
		nodes[r.Intn(len(nodes))].Label = "Z" + string(rune('a'+r.Intn(26)))
	}
	return c
}

// disjointTree builds a random tree over a label alphabet disjoint from
// randTree's — pairs against randTree output share no pq-grams beyond
// padding, the far regime the estimated tiers exist for.
func disjointTree(r *rand.Rand, n int) *tree.Node {
	labels := []string{"V", "W", "X", "Y", "Zq"}
	root := tree.New(labels[r.Intn(len(labels))])
	nodes := []*tree.Node{root}
	for i := 1; i < n; i++ {
		parent := nodes[r.Intn(len(nodes))]
		child := tree.New(labels[r.Intn(len(labels))])
		parent.Add(child)
		nodes = append(nodes, child)
	}
	return root
}

// TestTierRouteNeverEstimatesClosePairs: the lower-bound property of the
// prefilter — a pair whose exact TED is small relative to its size (a
// few renames) sits far below any refinement threshold and must always
// route exact, for every budget.
func TestTierRouteNeverEstimatesClosePairs(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	c := NewCache()
	for i := 0; i < 80; i++ {
		// Small pairs sit below the size floor and must route exact no
		// matter what their pq-gram distance does; large pairs are above
		// it, and a few relabels must keep them below every threshold.
		n := 20 + r.Intn(80)
		if i%2 == 1 {
			n = 150 + r.Intn(100)
		}
		t1 := randTree(r, n)
		t2 := relabelSome(r, t1, 1+r.Intn(3))
		for _, budget := range []float64{0.01, 0.05, 0.2, 0.5, 1.0} {
			p := NewTierPolicy(budget)
			if est, tier := c.TierRoute(t1, t2, UnitCosts(), p); tier != TierExact {
				t.Fatalf("close pair (%d nodes, approx %.3f) routed %v (est %v) under %v",
					n, c.ApproxDistance(t1, t2), tier, est, p)
			}
		}
	}
}

// TestTierRouteEstimateInvariants: on far pairs (disjoint label
// alphabets) the routing must (a) only estimate pairs whose pq-gram
// distance clears the threshold, (b) keep every estimate inside the
// provable [|n1-n2|, n1+n2] interval for unit costs, and (c) be symmetric
// and deterministic.
func TestTierRouteEstimateInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	p := NewTierPolicy(0.1)
	for i := 0; i < 60; i++ {
		c := NewCache()
		// Above the tierMinNodes floor so routing can actually estimate.
		t1 := randTree(r, 150+r.Intn(150))
		t2 := disjointTree(r, 150+r.Intn(150))
		est, tier := c.TierRoute(t1, t2, UnitCosts(), p)
		estBA, tierBA := c.TierRoute(t2, t1, UnitCosts(), p)
		if tier != tierBA || est != estBA {
			t.Fatalf("asymmetric route: (%v,%v) vs (%v,%v)", est, tier, estBA, tierBA)
		}
		est2, tier2 := c.TierRoute(t1, t2, UnitCosts(), p)
		if est2 != est || tier2 != tier {
			t.Fatalf("unstable route: (%v,%v) then (%v,%v)", est, tier, est2, tier2)
		}
		if tier == TierExact {
			continue
		}
		if tier == TierEstimated && c.ApproxDistance(t1, t2) < p.Threshold {
			t.Fatalf("estimated pair below threshold: approx %.3f < %.3f",
				c.ApproxDistance(t1, t2), p.Threshold)
		}
		n1, n2 := t1.Size(), t2.Size()
		lo, hi := n1-n2, n1+n2
		if lo < 0 {
			lo = -lo
		}
		if est < float64(lo) || est > float64(hi) {
			t.Fatalf("estimate %v outside provable [%d, %d]", est, lo, hi)
		}
		exact := float64(Distance(t1, t2))
		if est < float64(lo) || exact > float64(hi) {
			t.Fatalf("interval broken: est %v exact %v bounds [%d,%d]", est, exact, lo, hi)
		}
	}
}

// TestTieredDistanceBudgetZeroIsExact: the disabled policy must return
// the exact distance for every pair, identical to Distance.
func TestTieredDistanceBudgetZeroIsExact(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	c := NewCache()
	for i := 0; i < 40; i++ {
		t1 := randTree(r, 1+r.Intn(60))
		t2 := disjointTree(r, 1+r.Intn(60))
		d, tier := c.TieredDistance(t1, t2, UnitCosts(), NewTierPolicy(0))
		if tier != TierExact || d != float64(Distance(t1, t2)) {
			t.Fatalf("budget-0 pair: got (%v, %v), want exact %d", d, tier, Distance(t1, t2))
		}
	}
}

// TestSignatureDeterministicAcrossCachesAndGoroutines: LSH bucket
// assignment must be a pure function of the tree — identical rows from a
// fresh serial computation, a memoised cache, and many goroutines racing
// on one cache (the worker-count independence the matrix relies on).
func TestSignatureDeterministicAcrossCachesAndGoroutines(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	p := NewTierPolicy(0.05)
	var trees []*tree.Node
	for i := 0; i < 24; i++ {
		trees = append(trees, randTree(r, 1+r.Intn(100)))
	}
	serial := make([]Signature, len(trees))
	for i, tr := range trees {
		serial[i] = NewSignature(NewPQGramProfile(tr), p.Bands, p.Rows)
	}
	shared := NewCache()
	var wg sync.WaitGroup
	got := make([][]Signature, 8)
	for g := range got {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[g] = make([]Signature, len(trees))
			for i, tr := range trees {
				got[g][i] = shared.SignatureFor(tr, p)
			}
		}()
	}
	wg.Wait()
	for g := range got {
		for i := range trees {
			if !reflect.DeepEqual(got[g][i], serial[i]) {
				t.Fatalf("goroutine %d tree %d: cached signature differs from serial", g, i)
			}
		}
	}
	// Self-collision sanity: a tree always lands in its own buckets.
	for i := range trees {
		if !SharesBand(serial[i], serial[i]) {
			t.Fatalf("tree %d does not share a band with itself", i)
		}
		if d := EstimateDistance(serial[i], serial[i]); d != 0 {
			t.Fatalf("self estimate %v, want 0", d)
		}
	}
}

// FuzzTierRouting drives the router with fuzzed tree shapes, sizes, and
// budgets, asserting the routing invariants on every input: symmetry,
// determinism, interval clamping, budget-0 exactness, and close pairs
// never estimated.
func FuzzTierRouting(f *testing.F) {
	f.Add(int64(1), 10, 20, 0.05, 2)
	f.Add(int64(2), 50, 5, 0.5, 0)
	f.Add(int64(3), 1, 1, 0.01, 1)
	f.Add(int64(4), 80, 80, 1.5, 30)
	f.Add(int64(5), 200, 250, 0.5, 0)
	f.Add(int64(6), 290, 140, 0.45, 0)
	f.Fuzz(func(t *testing.T, seed int64, n1, n2 int, budget float64, mutate int) {
		if n1 < 1 || n1 > 300 || n2 < 1 || n2 > 300 {
			t.Skip()
		}
		if budget < 0 || budget > 10 || mutate < 0 || mutate > 200 {
			t.Skip()
		}
		r := rand.New(rand.NewSource(seed))
		t1 := randTree(r, n1)
		var t2 *tree.Node
		if mutate > 0 {
			t2 = relabelSome(r, t1, mutate)
		} else {
			t2 = disjointTree(r, n2)
		}
		c := NewCache()
		p := NewTierPolicy(budget)
		est, tier := c.TierRoute(t1, t2, UnitCosts(), p)
		estBA, tierBA := c.TierRoute(t2, t1, UnitCosts(), p)
		if est != estBA || tier != tierBA {
			t.Fatalf("asymmetric: (%v,%v) vs (%v,%v)", est, tier, estBA, tierBA)
		}
		est2, tier2 := NewCache().TierRoute(t1, t2, UnitCosts(), p)
		if est2 != est || tier2 != tier {
			t.Fatalf("cache-dependent route: (%v,%v) vs (%v,%v)", est, tier, est2, tier2)
		}
		if !p.Enabled() && tier != TierExact {
			t.Fatalf("budget 0 routed %v", tier)
		}
		if tier != TierExact {
			s1, s2 := t1.Size(), t2.Size()
			lo, hi := s1-s2, s1+s2
			if lo < 0 {
				lo = -lo
			}
			if est < float64(lo) || est > float64(hi) {
				t.Fatalf("estimate %v outside [%d,%d]", est, lo, hi)
			}
		}
	})
}
