package ted

// Bound gates: cheap O(n1+n2) pre-checks that answer a distance query
// without running the O(n1·n2·...) DP. Every gate here is EXACT — it fires
// only when a lower bound provably meets an upper bound (or when the
// optimal mapping can be enumerated outright), so gated distances are
// byte-identical to the full recurrence. The equivalence property test
// compares every gate against the seed DP across cost models.
//
// Gates implemented:
//
//   - single-node: with one tree a lone node, every mapping is valid (no
//     ancestry or ordering constraints remain), so the optimum is
//     min(delete-it + insert-all, map-it-best + insert-rest) where
//     map-it-best is 0 if the label occurs in the other tree and Rename
//     otherwise. Exact under every cost model.
//
//   - lower-bound-meets-upper-bound: the trivial upper bound is
//     n1·Delete + n2·Insert (delete everything, insert everything). The
//     size-difference lower bound is |n1−n2|·min(Insert, Delete). When
//     Rename ≥ Insert+Delete, mapping a pair never beats deleting and
//     reinserting unless the labels match, which yields the interned-label
//     multiset lower bound (n1−I)·Delete + (n2−I)·Insert with I the
//     multiset intersection size; for label-disjoint trees (I = 0) that
//     bound equals the upper bound and the gate answers immediately. When
//     Rename < Insert+Delete the multiset bound degrades below the upper
//     bound (a cheap rename can always undercut it), so the intersection
//     is not even computed and unit-cost sweeps pay only the two size
//     comparisons.

// boundGate reports (distance, true) when the gates above determine the
// exact distance for the flattened pair, and (0, false) when the caller
// must run the DP. sc provides the stamp tables for the multiset count.
func boundGate(a, b *flat, c Costs, sc *dpScratch) (int, bool) {
	n1, n2 := len(a.labels), len(b.labels)
	if n1 == 1 {
		return singleNode(a.labels[0], b.labels, c.Delete, c.Insert, c.Rename), true
	}
	if n2 == 1 {
		return singleNode(b.labels[0], a.labels, c.Insert, c.Delete, c.Rename), true
	}
	ub := n1*c.Delete + n2*c.Insert
	diff := n1 - n2
	if diff < 0 {
		diff = -diff
	}
	lb := diff * min(c.Insert, c.Delete)
	if c.Rename >= c.Insert+c.Delete {
		i := multisetIntersection(a, b, sc)
		if mlb := (n1-i)*c.Delete + (n2-i)*c.Insert; mlb > lb {
			lb = mlb
		}
	}
	if lb == ub {
		return ub, true
	}
	return 0, false
}

// singleNode is the exact distance between a lone node with label `lone`
// and a tree with the given labels, where `drop` is the cost of removing
// the lone node from its own tree and `fill` the cost of inserting a node
// into the other. Called with (Delete, Insert) when the left tree is the
// single node and (Insert, Delete) when the right one is.
func singleNode(lone int32, labels []int32, drop, fill, ren int) int {
	best := ren
	for _, l := range labels {
		if l == lone {
			best = 0
			break
		}
	}
	n := len(labels)
	unmapped := drop + n*fill
	mapped := (n-1)*fill + best
	return min(unmapped, mapped)
}

// multisetIntersection counts, over interned label ids, the size of the
// multiset intersection of the two trees' labels. The pooled stamp/count
// tables make this allocation-free: ids touched by a stamp the current
// epoch, so no clearing pass is needed between calls.
func multisetIntersection(a, b *flat, sc *dpScratch) int {
	stamp, cnt, epoch := sc.stampTables()
	for _, id := range a.labels {
		if stamp[id] != epoch {
			stamp[id] = epoch
			cnt[id] = 1
		} else {
			cnt[id]++
		}
	}
	isect := 0
	for _, id := range b.labels {
		if stamp[id] == epoch && cnt[id] > 0 {
			cnt[id]--
			isect++
		}
	}
	return isect
}
