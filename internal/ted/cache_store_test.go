package ted

import (
	"strings"
	"testing"

	"silvervale/internal/store"
	"silvervale/internal/tree"
)

func storeParse(t *testing.T, s string) *tree.Node {
	t.Helper()
	n, err := tree.ParseSexpr(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCacheStoreReadThroughWriteBehind exercises the full persistent
// round trip: a cold cache computes and queues a record; after a drain, a
// completely fresh cache over the same directory answers from disk
// without running the DP, and promotes the hit into its memo so the store
// is consulted exactly once per pair.
func TestCacheStoreReadThroughWriteBehind(t *testing.T) {
	dir := t.TempDir()
	t1 := storeParse(t, "(a (b (c) (d)) (e (f)))")
	t2 := storeParse(t, "(a (b (c)) (g (f) (h)))")

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	c.SetStore(st)
	if got := c.Store(); got != st {
		t.Fatal("Store() does not return the attached store")
	}
	want := c.Distance(t1, t2)
	if want == 0 {
		t.Fatal("test trees should differ")
	}
	if s := st.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Fatalf("cold run: want 0 hits / 1 miss, got %+v", s)
	}
	if err := st.Close(); err != nil { // drain the write-behind queue
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	c2 := NewCache()
	c2.SetStore(st2)
	if got := c2.Distance(t1, t2); got != want {
		t.Fatalf("warm distance %d, cold %d", got, want)
	}
	if s := st2.Stats(); s.Hits != 1 {
		t.Fatalf("warm run: want 1 store hit, got %+v", s)
	}
	// The disk hit was promoted into the memo, and the swapped orientation
	// canonicalises onto the same memo key: both answer from memory, so
	// the store is consulted exactly once for the pair.
	if got := c2.Distance(t2, t1); got != want {
		t.Fatalf("swapped warm distance %d, cold %d", got, want)
	}
	if got := c2.Distance(t1, t2); got != want {
		t.Fatalf("repeat distance %d, cold %d", got, want)
	}
	stats := c2.Stats()
	if !stats.StoreEnabled {
		t.Fatal("CacheStats.StoreEnabled should be set")
	}
	if stats.Store.Hits != 1 {
		t.Fatalf("want 1 store hit after repeats, got %+v", stats.Store)
	}
	if stats.Hits != 2 { // the promoted repeats
		t.Fatalf("want 2 memo hits after repeats, got %+v", stats)
	}
	if !strings.Contains(stats.String(), "store 1 hits") {
		t.Fatalf("stats line missing store fragment: %q", stats.String())
	}
}

// TestCacheWithoutStoreOmitsFragment pins the no-store stats line: the
// CLI's existing post-sweep output must not change when -cache-dir is
// absent.
func TestCacheWithoutStoreOmitsFragment(t *testing.T) {
	c := NewCache()
	s := c.Stats()
	if s.StoreEnabled {
		t.Fatal("StoreEnabled without a store")
	}
	if strings.Contains(s.String(), "store") {
		t.Fatalf("store fragment leaked into store-less line: %q", s.String())
	}
}

// TestCacheReadonlyStoreServesWithoutWriting covers the shared-cache-dir
// mode: lookups are answered, puts are dropped, and distances still match.
func TestCacheReadonlyStoreServesWithoutWriting(t *testing.T) {
	dir := t.TempDir()
	t1 := storeParse(t, "(x (y) (z))")
	t2 := storeParse(t, "(x (y (w)))")

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	c.SetStore(st)
	want := c.Distance(t1, t2)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := store.Open(dir, store.Options{Readonly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	c2 := NewCache()
	c2.SetStore(ro)
	if got := c2.Distance(t1, t2); got != want {
		t.Fatalf("readonly warm distance %d, want %d", got, want)
	}
	if s := ro.Stats(); s.Hits != 1 || s.BytesWritten != 0 {
		t.Fatalf("readonly store wrote or missed: %+v", s)
	}
}
