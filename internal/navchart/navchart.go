// Package navchart joins the model-divergence metric with performance
// portability into the navigation charts of Section VI (Fig. 13–15): Φ on
// the vertical axis against TBMD divergence-from-serial on the horizontal
// axis, with each model contributing a connected (T_sem, T_src) point pair.
// The ideal model sits in the top-right quadrant: close to serial and
// performance-portable.
package navchart

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"silvervale/internal/corpus"
	"silvervale/internal/perf"
)

// CostSummary carries a model's interpreter-measured total cost vector
// into the chart JSON (measured charts only), so emitted charts are
// self-documenting about the signal behind their Φ axis.
type CostSummary struct {
	Stmts       int64 `json:"stmts"`
	LoopTrips   int64 `json:"loop_trips"`
	MemBytes    int64 `json:"mem_bytes"`
	Flops       int64 `json:"flops"`
	KernelCalls int64 `json:"kernel_calls"`
}

// UnitFingerprint identifies one indexed unit by content: the rendered
// tree fingerprint ("h1h2:size" hex) of the unit's semantic tree. Two
// charts that agree on a unit's fingerprint were built from identical
// trees, so downstream tooling can diff charts without the sources.
type UnitFingerprint struct {
	File        string `json:"file"`
	Role        string `json:"role"`
	Fingerprint string `json:"fingerprint"`
}

// Point is one model's entry on the chart.
type Point struct {
	Model string  `json:"model"`
	Phi   float64 `json:"phi"`
	// Tsem and Tsrc are normalised divergences from the base model
	// (serial). Both belong to the same model; the chart draws a line
	// between them — the gap reads as perceived-vs-semantic complexity.
	Tsem float64 `json:"tsem"`
	Tsrc float64 `json:"tsrc"`
	// Effs are per-platform efficiencies aligned with Chart.Platforms.
	Effs []float64 `json:"effs,omitempty"`
	// Cost is the measured total cost vector (measured charts only).
	Cost *CostSummary `json:"cost,omitempty"`
	// Units carries the model's per-unit tree fingerprints (filled by
	// callers that hold the indexes; absent otherwise).
	Units []UnitFingerprint `json:"units,omitempty"`
}

// Chart is a fully assembled navigation chart.
type Chart struct {
	App  string `json:"app"`
	Base string `json:"base"` // divergence base model (serial, or CUDA in Fig. 15)
	// PhiSource records where the Φ axis came from: "modeled" (support
	// matrix) or "measured" (interpreter cost vectors, DESIGN.md §11).
	PhiSource string   `json:"phi_source"`
	Platforms []string `json:"platforms"`
	Points    []Point  `json:"points"`
}

// Build assembles a navigation chart from per-model divergences and the
// modeled performance landscape over the given platform set.
func Build(app string, base string, tsem, tsrc map[string]float64, models []corpus.Model, plats []perf.Platform) *Chart {
	return BuildPhi(app, base, tsem, tsrc, models, plats, "modeled",
		func(m corpus.Model, p perf.Platform) float64 { return perf.Efficiency(app, m, p) })
}

// BuildPhi assembles a navigation chart with an injected efficiency
// function, so the Φ axis can come from either the modeled landscape or
// interpreter-measured cost vectors (perf.MeasuredSet.Efficiency). Φ per
// point is the harmonic mean of the efficiencies over plats, matching
// perf.AppPhi semantics.
func BuildPhi(app string, base string, tsem, tsrc map[string]float64, models []corpus.Model,
	plats []perf.Platform, phiSource string, eff func(corpus.Model, perf.Platform) float64) *Chart {
	ch := &Chart{App: app, Base: base, PhiSource: phiSource}
	for _, p := range plats {
		ch.Platforms = append(ch.Platforms, p.Abbr)
	}
	for _, m := range models {
		effs := make([]float64, len(plats))
		for i, p := range plats {
			effs[i] = eff(m, p)
		}
		ch.Points = append(ch.Points, Point{
			Model: string(m),
			Phi:   perf.Phi(effs),
			Tsem:  tsem[string(m)],
			Tsrc:  tsrc[string(m)],
			Effs:  effs,
		})
	}
	sort.Slice(ch.Points, func(i, j int) bool { return ch.Points[i].Model < ch.Points[j].Model })
	return ch
}

// WriteJSON emits the chart as deterministic indented JSON (fixed field
// order, points sorted by model).
func (c *Chart) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Best returns the model closest to the ideal top-right corner using the
// score Φ - w*min(Tsem, Tsrc, 1): the navigation chart's reading of "which
// model lands best", with w trading productivity against portability.
func (c *Chart) Best(w float64) (Point, error) {
	if len(c.Points) == 0 {
		return Point{}, fmt.Errorf("navchart: empty chart")
	}
	best := c.Points[0]
	bestScore := score(best, w)
	for _, p := range c.Points[1:] {
		if s := score(p, w); s > bestScore {
			best = p
			bestScore = s
		}
	}
	return best, nil
}

func score(p Point, w float64) float64 {
	d := p.Tsem
	if p.Tsrc < d {
		d = p.Tsrc
	}
	if d > 1 {
		d = 1
	}
	return p.Phi - w*d
}

// Row renders one point as the report line used by the CLI and
// EXPERIMENTS.md.
func (p Point) Row() string {
	return fmt.Sprintf("%-12s phi=%.3f  tsem=%.3f  tsrc=%.3f", p.Model, p.Phi, p.Tsem, p.Tsrc)
}
