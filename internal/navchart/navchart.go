// Package navchart joins the model-divergence metric with performance
// portability into the navigation charts of Section VI (Fig. 13–15): Φ on
// the vertical axis against TBMD divergence-from-serial on the horizontal
// axis, with each model contributing a connected (T_sem, T_src) point pair.
// The ideal model sits in the top-right quadrant: close to serial and
// performance-portable.
package navchart

import (
	"fmt"
	"sort"

	"silvervale/internal/corpus"
	"silvervale/internal/perf"
)

// Point is one model's entry on the chart.
type Point struct {
	Model string
	Phi   float64
	// Tsem and Tsrc are normalised divergences from the base model
	// (serial). Both belong to the same model; the chart draws a line
	// between them — the gap reads as perceived-vs-semantic complexity.
	Tsem float64
	Tsrc float64
}

// Chart is a fully assembled navigation chart.
type Chart struct {
	App       string
	Base      string // divergence base model (serial, or CUDA in Fig. 15)
	Platforms []string
	Points    []Point
}

// Build assembles a navigation chart from per-model divergences and the
// performance model over the given platform set.
func Build(app string, base string, tsem, tsrc map[string]float64, models []corpus.Model, plats []perf.Platform) *Chart {
	ch := &Chart{App: app, Base: base}
	for _, p := range plats {
		ch.Platforms = append(ch.Platforms, p.Abbr)
	}
	for _, m := range models {
		ch.Points = append(ch.Points, Point{
			Model: string(m),
			Phi:   perf.AppPhi(app, m, plats),
			Tsem:  tsem[string(m)],
			Tsrc:  tsrc[string(m)],
		})
	}
	sort.Slice(ch.Points, func(i, j int) bool { return ch.Points[i].Model < ch.Points[j].Model })
	return ch
}

// Best returns the model closest to the ideal top-right corner using the
// score Φ - w*min(Tsem, Tsrc, 1): the navigation chart's reading of "which
// model lands best", with w trading productivity against portability.
func (c *Chart) Best(w float64) (Point, error) {
	if len(c.Points) == 0 {
		return Point{}, fmt.Errorf("navchart: empty chart")
	}
	best := c.Points[0]
	bestScore := score(best, w)
	for _, p := range c.Points[1:] {
		if s := score(p, w); s > bestScore {
			best = p
			bestScore = s
		}
	}
	return best, nil
}

func score(p Point, w float64) float64 {
	d := p.Tsem
	if p.Tsrc < d {
		d = p.Tsrc
	}
	if d > 1 {
		d = 1
	}
	return p.Phi - w*d
}

// Row renders one point as the report line used by the CLI and
// EXPERIMENTS.md.
func (p Point) Row() string {
	return fmt.Sprintf("%-12s phi=%.3f  tsem=%.3f  tsrc=%.3f", p.Model, p.Phi, p.Tsem, p.Tsrc)
}
