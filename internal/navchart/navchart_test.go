package navchart

import (
	"strings"
	"testing"

	"silvervale/internal/corpus"
	"silvervale/internal/perf"
)

func sampleChart() *Chart {
	tsem := map[string]float64{
		"serial": 0, "omp": 0.05, "omp-target": 0.14,
		"cuda": 0.61, "kokkos": 0.56, "sycl-acc": 0.77,
	}
	tsrc := map[string]float64{
		"serial": 0, "omp": 0.04, "omp-target": 0.07,
		"cuda": 0.60, "kokkos": 0.54, "sycl-acc": 0.74,
	}
	models := []corpus.Model{
		corpus.Serial, corpus.OpenMP, corpus.OpenMPTarget,
		corpus.CUDA, corpus.Kokkos, corpus.SYCLACC,
	}
	return Build("cloverleaf", "serial", tsem, tsrc, models, perf.Platforms())
}

func TestBuildJoinsPhiAndDivergence(t *testing.T) {
	ch := sampleChart()
	if len(ch.Points) != 6 {
		t.Fatalf("points = %d", len(ch.Points))
	}
	byModel := map[string]Point{}
	for _, p := range ch.Points {
		byModel[p.Model] = p
	}
	if byModel["cuda"].Phi != 0 {
		t.Error("CUDA Φ over six platforms must be 0")
	}
	if byModel["omp-target"].Phi <= 0 || byModel["kokkos"].Phi <= 0 {
		t.Error("portable models must carry Φ > 0")
	}
	if byModel["omp-target"].Tsem != 0.14 {
		t.Error("divergence not joined")
	}
	if len(ch.Platforms) != 6 {
		t.Error("platform list missing")
	}
}

// TestOMPTargetNearIdealCorner: the paper's reading of Fig. 13/14 — OpenMP
// target encodes Kokkos-level semantics at near-zero source cost and lands
// closest to the ideal top-right corner among portable models.
func TestOMPTargetNearIdealCorner(t *testing.T) {
	ch := sampleChart()
	best, err := ch.Best(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Model != "omp-target" {
		t.Errorf("best = %s, want omp-target\n%+v", best.Model, ch.Points)
	}
}

func TestBestEmptyChart(t *testing.T) {
	ch := &Chart{}
	if _, err := ch.Best(1); err == nil {
		t.Fatal("expected error on empty chart")
	}
}

func TestRow(t *testing.T) {
	p := Point{Model: "kokkos", Phi: 0.5, Tsem: 0.6, Tsrc: 0.55}
	row := p.Row()
	for _, want := range []string{"kokkos", "0.500", "0.600", "0.550"} {
		if !strings.Contains(row, want) {
			t.Fatalf("row %q missing %q", row, want)
		}
	}
}

// TestScenarioFig15: the vendor-diversification story — CUDA has Φ = 1 on
// the NVIDIA-only platform set, collapses to 0 when AMD arrives, and the
// portable models keep a usable Φ.
func TestScenarioFig15(t *testing.T) {
	h100, _ := perf.PlatformByAbbr("H100")
	mi, _ := perf.PlatformByAbbr("MI250X")
	nvOnly := []perf.Platform{h100}
	both := []perf.Platform{h100, mi}

	phiNV := perf.AppPhi("cloverleaf", corpus.CUDA, nvOnly)
	if phiNV <= 0.9 {
		t.Errorf("point 1: CUDA Φ on NVIDIA-only = %v, want ~1", phiNV)
	}
	phiBoth := perf.AppPhi("cloverleaf", corpus.CUDA, both)
	if phiBoth != 0 {
		t.Errorf("point 2: CUDA Φ after AMD arrives = %v, want 0", phiBoth)
	}
	for _, m := range []corpus.Model{corpus.Kokkos, corpus.SYCLACC, corpus.OpenMPTarget} {
		if perf.AppPhi("cloverleaf", m, both) <= 0.5 {
			t.Errorf("point 3 candidate %s should retain high Φ", m)
		}
	}
}
