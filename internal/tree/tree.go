// Package tree provides the generic labelled n-ary tree that underlies every
// semantic-bearing tree in the framework (T_src, T_sem, T_sem+i, T_ir).
//
// A tree node carries a label (already normalised: programmer-introduced
// names are removed, only token/node types, literals, and operator names
// remain) and a back-reference to its source location. Trees are compared
// with Tree Edit Distance (package ted) and pruned with coverage masks
// (package coverage).
package tree

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"silvervale/internal/srcloc"
)

// Node is a labelled n-ary tree node.
type Node struct {
	Label    string
	Pos      srcloc.Pos
	Children []*Node
}

// New constructs a node with the given label and children.
func New(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// NewAt constructs a node with a source back-reference.
func NewAt(label string, pos srcloc.Pos, children ...*Node) *Node {
	return &Node{Label: label, Pos: pos, Children: children}
}

// Add appends children and returns the receiver for chaining.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Size returns the total number of nodes in the tree (|T| in Eq. 7).
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Depth returns the height of the tree (a single node has depth 1).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Leaves returns the number of leaf nodes.
func (n *Node) Leaves() int {
	if n == nil {
		return 0
	}
	if len(n.Children) == 0 {
		return 1
	}
	s := 0
	for _, c := range n.Children {
		s += c.Leaves()
	}
	return s
}

// Clone returns a deep copy of the tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	out := &Node{Label: n.Label, Pos: n.Pos}
	if len(n.Children) > 0 {
		out.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			out.Children[i] = c.Clone()
		}
	}
	return out
}

// Walk visits every node in pre-order. If fn returns false the subtree below
// the node is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Postorder appends all nodes in post-order to dst and returns it.
func (n *Node) Postorder(dst []*Node) []*Node {
	if n == nil {
		return dst
	}
	for _, c := range n.Children {
		dst = c.Postorder(dst)
	}
	return append(dst, n)
}

// Filter returns a copy of the tree with every node for which keep returns
// false removed; the children of a removed node are spliced into its
// parent's child list (hoisted), preserving order. If the root itself is
// removed, its surviving children are re-rooted under a synthetic node
// labelled "pruned-root". Filter is how coverage masks and system-header
// masks are applied to trees.
func (n *Node) Filter(keep func(*Node) bool) *Node {
	if n == nil {
		return nil
	}
	kids := n.filterChildren(keep)
	if keep(n) {
		return &Node{Label: n.Label, Pos: n.Pos, Children: kids}
	}
	switch len(kids) {
	case 0:
		return nil
	case 1:
		return kids[0]
	default:
		return &Node{Label: "pruned-root", Pos: n.Pos, Children: kids}
	}
}

func (n *Node) filterChildren(keep func(*Node) bool) []*Node {
	var out []*Node
	for _, c := range n.Children {
		kids := c.filterChildren(keep)
		if keep(c) {
			out = append(out, &Node{Label: c.Label, Pos: c.Pos, Children: kids})
		} else {
			out = append(out, kids...)
		}
	}
	return out
}

// Hash returns a structural FNV-1a hash over labels and shape. Identical
// trees hash identically; the hash ignores source positions.
func (n *Node) Hash() uint64 {
	h := fnv.New64a()
	n.hashInto(h)
	return h.Sum64()
}

func (n *Node) hashInto(h interface{ Write([]byte) (int, error) }) {
	if n == nil {
		return
	}
	_, _ = h.Write([]byte(n.Label))
	_, _ = h.Write([]byte{'('})
	for _, c := range n.Children {
		c.hashInto(h)
		_, _ = h.Write([]byte{','})
	}
	_, _ = h.Write([]byte{')'})
}

// Equal reports whether two trees have identical structure and labels
// (positions are ignored).
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Label != b.Label || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// String renders the tree in a compact one-line s-expression form.
func (n *Node) String() string {
	var b strings.Builder
	n.sexpr(&b)
	return b.String()
}

func (n *Node) sexpr(b *strings.Builder) {
	if n == nil {
		b.WriteString("()")
		return
	}
	if len(n.Children) == 0 {
		b.WriteString(n.Label)
		return
	}
	b.WriteByte('(')
	b.WriteString(n.Label)
	for _, c := range n.Children {
		b.WriteByte(' ')
		c.sexpr(b)
	}
	b.WriteByte(')')
}

// Pretty renders the tree with indentation, one node per line, useful for
// debugging and for the CLI `dump` command.
func (n *Node) Pretty() string {
	var b strings.Builder
	n.pretty(&b, 0)
	return b.String()
}

func (n *Node) pretty(b *strings.Builder, depth int) {
	if n == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Label)
	if n.Pos.IsValid() {
		fmt.Fprintf(b, "  @%s", n.Pos)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.pretty(b, depth+1)
	}
}

// LabelHistogram returns label -> count over the whole tree.
func (n *Node) LabelHistogram() map[string]int {
	h := make(map[string]int)
	n.Walk(func(m *Node) bool {
		h[m.Label]++
		return true
	})
	return h
}

// Labels returns the sorted distinct labels used in the tree.
func (n *Node) Labels() []string {
	h := n.LabelHistogram()
	out := make([]string, 0, len(h))
	for l := range h {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// ParseSexpr parses the one-line s-expression form produced by String.
// Labels may contain any rune except space and parentheses. It is the
// inverse of String for trees whose labels obey that restriction and is
// used by tests and the DB round-trip.
func ParseSexpr(s string) (*Node, error) {
	p := &sexprParser{src: s}
	n, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("tree: trailing input at %d in %q", p.pos, s)
	}
	return n, nil
}

type sexprParser struct {
	src string
	pos int
}

func (p *sexprParser) skipSpace() {
	for p.pos < len(p.src) && p.src[p.pos] == ' ' {
		p.pos++
	}
}

func (p *sexprParser) parse() (*Node, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("tree: unexpected end of input")
	}
	if p.src[p.pos] != '(' {
		return &Node{Label: p.atom()}, nil
	}
	p.pos++ // consume '('
	p.skipSpace()
	label := p.atom()
	if label == "" {
		return nil, fmt.Errorf("tree: empty label at %d", p.pos)
	}
	n := &Node{Label: label}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("tree: unbalanced parens")
		}
		if p.src[p.pos] == ')' {
			p.pos++
			return n, nil
		}
		c, err := p.parse()
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
}

func (p *sexprParser) atom() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '(' || c == ')' {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}
