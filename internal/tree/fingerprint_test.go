package tree_test

// Fingerprint must be a faithful content address: equal exactly when the
// trees are structurally equal (labels and shape), independent of source
// positions and of node identity. The fuzz target drives that equivalence
// over mutated s-expression pairs, seeded with real semantic trees from
// the generated mini-app corpus.

import (
	"math/rand"
	"sort"
	"testing"

	"silvervale/internal/corpus"
	"silvervale/internal/minic"
	"silvervale/internal/srcloc"
	"silvervale/internal/tree"
)

func TestFingerprintEqualTrees(t *testing.T) {
	a, err := tree.ParseSexpr("(f (a b) (c (d) e))")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != a.Clone().Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	b, err := tree.ParseSexpr("(f (a b) (c (d) e))")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("independently parsed equal trees fingerprint differently")
	}
}

func TestFingerprintIgnoresPositions(t *testing.T) {
	a := tree.New("f", tree.New("x"), tree.New("y"))
	b := tree.NewAt("f", srcloc.Pos{File: "other.cpp", Line: 42},
		tree.NewAt("x", srcloc.Pos{File: "other.cpp", Line: 43}),
		tree.NewAt("y", srcloc.Pos{File: "third.cpp", Line: 1}))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on source positions")
	}
}

// TestFingerprintShapeSensitivity checks the classic ambiguity traps: the
// same label multiset arranged as different shapes, and label boundaries
// that concatenate identically.
func TestFingerprintShapeSensitivity(t *testing.T) {
	distinct := []string{
		"(a (b c))",     // c under b
		"(a b c)",       // b, c as siblings
		"(a (b (c d)))", // chain pushing d one level down
		"(a (c b))",     // order swapped
		"(ab c)",        // label boundary shifted
		"(a bc)",        //
		"(a (b c) d)",   //
		"(a (b c d))",   //
	}
	seen := map[tree.Fingerprint]string{}
	for _, s := range distinct {
		n, err := tree.ParseSexpr(s)
		if err != nil {
			t.Fatal(err)
		}
		fp := n.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Fatalf("collision between %q and %q", prev, s)
		}
		seen[fp] = s
	}
}

func TestFingerprintNil(t *testing.T) {
	var n *tree.Node
	if !n.Fingerprint().IsZero() {
		t.Fatal("nil tree must fingerprint to the zero value")
	}
	if tree.New("x").Fingerprint().IsZero() {
		t.Fatal("non-nil tree must not fingerprint to the zero value")
	}
}

func TestFingerprintSizeField(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	labels := []string{"p", "q", "r"}
	root := tree.New("root")
	nodes := []*tree.Node{root}
	for i := 0; i < 200; i++ {
		n := tree.New(labels[r.Intn(len(labels))])
		nodes[r.Intn(len(nodes))].Add(n)
		nodes = append(nodes, n)
		if got := root.Fingerprint().Size; int(got) != root.Size() {
			t.Fatalf("fingerprint size %d != tree size %d", got, root.Size())
		}
	}
}

// TestFingerprintLessTotalOrder sanity-checks the canonicalisation order
// used by the cache for symmetric pair keys.
func TestFingerprintLessTotalOrder(t *testing.T) {
	fps := []tree.Fingerprint{
		{H1: 1, H2: 2, Size: 3}, {H1: 1, H2: 2, Size: 4},
		{H1: 1, H2: 3, Size: 0}, {H1: 2, H2: 0, Size: 0}, {},
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i].Less(fps[j]) })
	for i := 0; i+1 < len(fps); i++ {
		if fps[i+1].Less(fps[i]) {
			t.Fatalf("Less is not a total order around index %d: %+v", i, fps)
		}
		if fps[i].Less(fps[i]) {
			t.Fatal("Less must be irreflexive")
		}
	}
}

// corpusSeedTrees renders two real mini-app units and returns their
// semantic source trees — the fuzz seed corpus drawn from
// internal/corpus, as real-shaped inputs rather than toy examples.
func corpusSeedTrees(tb testing.TB) []*tree.Node {
	tb.Helper()
	var out []*tree.Node
	for _, seed := range []struct {
		app   string
		model corpus.Model
	}{
		{"babelstream", corpus.Serial},
		{"tealeaf", corpus.CUDA},
	} {
		app, err := corpus.AppByName(seed.app)
		if err != nil {
			tb.Fatal(err)
		}
		cb, err := corpus.Generate(app, seed.model)
		if err != nil {
			tb.Fatal(err)
		}
		for _, u := range cb.Units {
			out = append(out, minic.BuildSrcTree(cb.Files[u.File], u.File))
			if len(out) >= 4 {
				return out
			}
		}
	}
	return out
}

// FuzzFingerprint asserts the content-address equivalence on mutated
// inputs: Fingerprint(a) == Fingerprint(b) iff tree.Equal(a, b).
func FuzzFingerprint(f *testing.F) {
	seeds := corpusSeedTrees(f)
	for _, s := range seeds {
		f.Add(s.String(), s.String())
	}
	f.Add(seeds[0].String(), seeds[1].String())
	f.Add("(a (b c))", "(a b c)")
	f.Add("(unit x)", "(unit x)")
	f.Fuzz(func(t *testing.T, sa, sb string) {
		a, errA := tree.ParseSexpr(sa)
		b, errB := tree.ParseSexpr(sb)
		if errA != nil || errB != nil {
			t.Skip()
		}
		eq := tree.Equal(a, b)
		fpEq := a.Fingerprint() == b.Fingerprint()
		if eq != fpEq {
			t.Fatalf("Equal=%v but fingerprint-equal=%v\na=%s\nb=%s", eq, fpEq, a, b)
		}
		// the fingerprint of any parsed tree must survive a re-parse of
		// its canonical rendering (content addressing is representation
		// independent)
		rt, err := tree.ParseSexpr(a.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", a.String(), err)
		}
		if rt.Fingerprint() != a.Fingerprint() {
			t.Fatalf("fingerprint changed across String/Parse round-trip for %s", a)
		}
	})
}

// postorder collects the nodes of t in post-order, the indexing contract
// of SubtreeFingerprints.
func postorder(t *tree.Node, out []*tree.Node) []*tree.Node {
	for _, c := range t.Children {
		out = postorder(c, out)
	}
	return append(out, t)
}

// TestSubtreeFingerprintsMatchStandalone: the amortised one-pass walk
// must agree with calling Fingerprint independently on every subtree —
// that identity is what makes keyroot blocks content-addressable
// (silvervale/internal/ted, DESIGN.md §13).
func TestSubtreeFingerprintsMatchStandalone(t *testing.T) {
	var roots []*tree.Node
	roots = append(roots, corpusSeedTrees(t)...)
	for _, s := range []string{
		"x",
		"(a (b c))",
		"(a (b (c d) e) (f g h) i)",
		"(loop (loop (loop body)))",
	} {
		n, err := tree.ParseSexpr(s)
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, n)
	}
	for _, root := range roots {
		nodes := postorder(root, nil)
		fps := root.SubtreeFingerprints()
		if len(fps) != len(nodes) {
			t.Fatalf("%d fingerprints for %d nodes in %s", len(fps), len(nodes), root)
		}
		for i, nd := range nodes {
			if fps[i] != nd.Fingerprint() {
				t.Fatalf("subtree %d of %s: one-pass %+v != standalone %+v",
					i, root, fps[i], nd.Fingerprint())
			}
		}
		// the final entry is the whole tree, by the post-order contract
		if fps[len(fps)-1] != root.Fingerprint() {
			t.Fatalf("last subtree fingerprint is not the root's for %s", root)
		}
	}
	var nilNode *tree.Node
	if got := nilNode.SubtreeFingerprints(); got != nil {
		t.Fatalf("nil tree yielded %v, want nil", got)
	}
}
