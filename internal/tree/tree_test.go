package tree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"silvervale/internal/srcloc"
)

func TestSizeDepthLeaves(t *testing.T) {
	n := New("A", New("B", New("C")), New("D"))
	if got := n.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
	if got := n.Depth(); got != 3 {
		t.Fatalf("Depth = %d, want 3", got)
	}
	if got := n.Leaves(); got != 2 {
		t.Fatalf("Leaves = %d, want 2", got)
	}
	var nilNode *Node
	if nilNode.Size() != 0 || nilNode.Depth() != 0 || nilNode.Leaves() != 0 {
		t.Fatal("nil node should report zero size/depth/leaves")
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := New("A", New("B"))
	c := n.Clone()
	c.Children[0].Label = "X"
	if n.Children[0].Label != "B" {
		t.Fatal("Clone is not deep")
	}
	if !Equal(n, n.Clone()) {
		t.Fatal("clone should equal original")
	}
}

func TestEqual(t *testing.T) {
	a := New("A", New("B"), New("C"))
	b := New("A", New("B"), New("C"))
	if !Equal(a, b) {
		t.Fatal("identical trees should be Equal")
	}
	c := New("A", New("C"), New("B"))
	if Equal(a, c) {
		t.Fatal("reordered trees should not be Equal")
	}
	if !Equal(nil, nil) {
		t.Fatal("nil trees are Equal")
	}
	if Equal(a, nil) {
		t.Fatal("tree vs nil should not be Equal")
	}
}

func TestPostorder(t *testing.T) {
	n := New("A", New("B", New("C")), New("D"))
	var labels []string
	for _, m := range n.Postorder(nil) {
		labels = append(labels, m.Label)
	}
	if got := strings.Join(labels, ""); got != "CBDA" {
		t.Fatalf("postorder = %q, want CBDA", got)
	}
}

func TestWalkPruning(t *testing.T) {
	n := New("A", New("B", New("C")), New("D"))
	var visited []string
	n.Walk(func(m *Node) bool {
		visited = append(visited, m.Label)
		return m.Label != "B" // skip below B
	})
	if got := strings.Join(visited, ""); got != "ABD" {
		t.Fatalf("walk = %q, want ABD", got)
	}
}

func TestFilterHoistsChildren(t *testing.T) {
	n := New("A", New("drop", New("C"), New("D")), New("E"))
	out := n.Filter(func(m *Node) bool { return m.Label != "drop" })
	want := New("A", New("C"), New("D"), New("E"))
	if !Equal(out, want) {
		t.Fatalf("filter = %s, want %s", out, want)
	}
}

func TestFilterRootRemoved(t *testing.T) {
	n := New("drop", New("C"), New("D"))
	out := n.Filter(func(m *Node) bool { return m.Label != "drop" })
	if out.Label != "pruned-root" || len(out.Children) != 2 {
		t.Fatalf("expected synthetic pruned-root, got %s", out)
	}
	single := New("drop", New("C"))
	out = single.Filter(func(m *Node) bool { return m.Label != "drop" })
	if out.Label != "C" {
		t.Fatalf("expected child promotion, got %s", out)
	}
	all := New("drop")
	if out := all.Filter(func(m *Node) bool { return false }); out != nil {
		t.Fatalf("expected nil when everything is filtered, got %s", out)
	}
}

func TestHashDistinguishesStructure(t *testing.T) {
	a := New("A", New("B"), New("C"))
	b := New("A", New("B", New("C")))
	if a.Hash() == b.Hash() {
		t.Fatal("different shapes should hash differently")
	}
	if a.Hash() != a.Clone().Hash() {
		t.Fatal("clones should hash identically")
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	src := "(A (B (C) (D)) (E))"
	n, err := ParseSexpr(src)
	if err != nil {
		t.Fatal(err)
	}
	// String renders leaves bare; re-parse must be stable.
	again, err := ParseSexpr(n.String())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(n, again) {
		t.Fatalf("round trip mismatch: %s vs %s", n, again)
	}
}

func TestParseSexprErrors(t *testing.T) {
	for _, bad := range []string{"", "(", "(A", "(A))", "()", "(A) junk"} {
		if _, err := ParseSexpr(bad); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
}

func TestPrettyIncludesPositions(t *testing.T) {
	n := NewAt("A", srcloc.Pos{File: "x.c", Line: 3, Col: 1}, New("B"))
	p := n.Pretty()
	if !strings.Contains(p, "x.c:3") {
		t.Fatalf("pretty output missing position: %q", p)
	}
}

func TestLabelHistogram(t *testing.T) {
	n := New("A", New("B"), New("B", New("A")))
	h := n.LabelHistogram()
	if h["A"] != 2 || h["B"] != 2 {
		t.Fatalf("histogram = %v", h)
	}
	labels := n.Labels()
	if len(labels) != 2 || labels[0] != "A" || labels[1] != "B" {
		t.Fatalf("labels = %v", labels)
	}
}

func randomTree(r *rand.Rand, budget int) *Node {
	labels := []string{"A", "B", "C", "D"}
	n := New(labels[r.Intn(len(labels))])
	for budget > 1 && r.Intn(2) == 0 {
		c := randomTree(r, budget/2)
		n.Add(c)
		budget -= c.Size()
	}
	return n
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		n := randomTree(rand.New(rand.NewSource(seed)), 20)
		again, err := ParseSexpr(n.String())
		if err != nil {
			return false
		}
		return Equal(n, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySizeConsistency(t *testing.T) {
	f := func(seed int64) bool {
		n := randomTree(rand.New(rand.NewSource(seed)), 25)
		return len(n.Postorder(nil)) == n.Size() && n.Clone().Size() == n.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFilterNeverGrows(t *testing.T) {
	f := func(seed int64) bool {
		n := randomTree(rand.New(rand.NewSource(seed)), 25)
		kept := n.Filter(func(m *Node) bool { return m.Label != "A" })
		return kept.Size() <= n.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
