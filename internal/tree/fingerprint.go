package tree

import "fmt"

// Fingerprint is a content address for a tree: a stable structural hash
// over node labels and shape. Source positions are ignored, exactly like
// Equal. Structurally equal trees always produce the same Fingerprint;
// distinct trees are separated by two independent 64-bit hashes plus the
// node count, so accidental collisions need a simultaneous collision in a
// ~128-bit space. The zero Fingerprint is reserved for the nil tree.
//
// Fingerprints are comparable and compact, which makes them usable as map
// keys — the content-addressing scheme behind ted.Cache, which keys both
// its distance memo (per pair) and its flat memo of Zhang–Shasha
// post-order forms (per tree) on fingerprints. That second use relies on
// the same invariant: a mutated tree gets a new fingerprint, so memoised
// derived forms can never go stale, only unreachable.
type Fingerprint struct {
	H1   uint64 // FNV-1a over the serialised structure
	H2   uint64 // independent multiplicative hash over the same bytes
	Size uint32 // node count, a cheap third separator
}

// IsZero reports whether the fingerprint is the nil-tree fingerprint.
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// String renders the fingerprint as the fixed-width external form the CLI
// emits in -json output: 32 hex digits of hash, a colon, the node count.
// External tools diff these strings to detect per-unit tree changes
// between runs.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%016x%016x:%d", f.H1, f.H2, f.Size)
}

// Less orders fingerprints lexicographically by (H1, H2, Size). The order
// carries no meaning beyond being total and deterministic; ted.Cache uses
// it to canonicalise symmetric pair keys.
func (f Fingerprint) Less(g Fingerprint) bool {
	if f.H1 != g.H1 {
		return f.H1 < g.H1
	}
	if f.H2 != g.H2 {
		return f.H2 < g.H2
	}
	return f.Size < g.Size
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	djbOffset64 = 5381
)

// fpState accumulates both hashes in a single tree walk.
type fpState struct {
	h1, h2 uint64
	size   uint32
}

func (s *fpState) writeByte(b byte) {
	s.h1 = (s.h1 ^ uint64(b)) * fnvPrime64
	s.h2 = s.h2*33 + uint64(b)
}

func (s *fpState) writeString(str string) {
	for i := 0; i < len(str); i++ {
		s.writeByte(str[i])
	}
}

// Fingerprint computes the tree's content address in one pre-order walk.
// A nil tree returns the zero Fingerprint.
func (n *Node) Fingerprint() Fingerprint {
	if n == nil {
		return Fingerprint{}
	}
	s := fpState{h1: fnvOffset64, h2: djbOffset64}
	n.fingerprintInto(&s)
	return Fingerprint{H1: s.h1, H2: s.h2, Size: s.size}
}

// fingerprintInto serialises the node as label '(' children ')' — the same
// shape encoding Hash uses — into both running hashes.
func (n *Node) fingerprintInto(s *fpState) {
	s.size++
	s.writeString(n.Label)
	s.writeByte('(')
	for _, c := range n.Children {
		c.fingerprintInto(s)
		s.writeByte(',')
	}
	s.writeByte(')')
}

// SubtreeFingerprints returns the Fingerprint of every subtree of n,
// indexed by post-order position — SubtreeFingerprints(n)[i] equals
// calling Fingerprint on the subtree rooted at post-order node i, with the
// whole tree's own fingerprint last. A nil tree returns nil.
//
// Each subtree's serialisation is a contiguous substring of its ancestors'
// (the separator after a child belongs to the parent), so one walk feeds
// every byte to a stack of live ancestor hash states instead of
// re-serialising each subtree from scratch: O(n·depth) byte feeds total,
// against O(n²) for per-node Fingerprint calls. This is what makes
// per-keyroot content addressing affordable in ted's subtree-block memo
// (DESIGN.md §13): the whole array is amortised into the one flatten pass
// a memoised tree already pays.
func (n *Node) SubtreeFingerprints() []Fingerprint {
	if n == nil {
		return nil
	}
	out := make([]Fingerprint, 0, 64)
	stack := make([]fpState, 0, 32)
	feed := func(b byte) {
		for i := range stack {
			s := &stack[i]
			s.h1 = (s.h1 ^ uint64(b)) * fnvPrime64
			s.h2 = s.h2*33 + uint64(b)
		}
	}
	var walk func(nd *Node) uint32
	walk = func(nd *Node) uint32 {
		stack = append(stack, fpState{h1: fnvOffset64, h2: djbOffset64})
		for i := 0; i < len(nd.Label); i++ {
			feed(nd.Label[i])
		}
		feed('(')
		size := uint32(1)
		for _, c := range nd.Children {
			// The child's state is popped inside the recursive call before
			// the ',' separator is fed: the separator is part of the
			// parent's serialisation, not the child's standalone form.
			size += walk(c)
			feed(',')
		}
		feed(')')
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, Fingerprint{H1: s.h1, H2: s.h2, Size: size})
		return size
	}
	walk(n)
	return out
}
