// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index of DESIGN.md). Each experiment is a
// pure function of the generated corpus, the TBMD pipeline, and the
// performance model; the CLI, the benchmark harness, and EXPERIMENTS.md all
// call through here.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"silvervale/internal/cluster"
	"silvervale/internal/core"
	"silvervale/internal/corpus"
	"silvervale/internal/obs"
	"silvervale/internal/perf"
	"silvervale/internal/store"
	"silvervale/internal/ted"
	"silvervale/internal/textplot"
	"silvervale/internal/tree"
)

// Result is one regenerated experiment.
type Result struct {
	ID    string
	Title string
	Text  string
}

// IDs lists every experiment in paper order, followed by the two ablations
// DESIGN.md calls out (asymmetric TED costs; pq-gram approximation).
func IDs() []string {
	return []string{
		"table1", "table2", "fig1", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "table3", "fig11", "fig12", "fig13", "fig14", "fig15",
		"ablation-costs", "ablation-approx",
	}
}

// Env caches per-app indexes so a batch of experiments shares the indexing
// work. All divergence computation goes through one core.Engine, so every
// experiment in a batch draws from the same worker pool and shares one
// content-addressed TED cache — identical tree pairs recurring across
// figures (navigation charts, dendrogram sweeps, ablations) are computed
// once, and each distinct tree is flattened to its Zhang–Shasha form once
// for the whole batch via the cache's flat memo (DESIGN.md §6).
type Env struct {
	mu          sync.Mutex
	engine      *core.Engine
	rec         *obs.Recorder
	policy      ted.TierPolicy
	tiered      bool
	cache       map[string]map[string]*core.Index
	matrixCache map[string][][]float64
	// phiSource selects where performance figures draw Φ from: "modeled"
	// (default, the hand-written landscape) or "measured" (interpreter
	// cost vectors; DESIGN.md §11). measured caches one MeasuredSet per
	// app so a sweep profiles each port exactly once; profileRuns counts
	// interpreter executions for the single-pass regression gate.
	phiSource   string
	measured    map[string]*perf.MeasuredSet
	profileRuns int64
}

// NewEnv returns an experiment environment with a NumCPU-bounded engine.
func NewEnv() *Env { return NewEnvWorkers(0) }

// NewEnvWorkers returns an environment whose engine uses the given worker
// bound (<= 0 selects runtime.NumCPU(); 1 forces the serial path).
func NewEnvWorkers(workers int) *Env {
	return NewEnvObs(workers, nil)
}

// NewEnvObs returns an environment whose engine, indexing pipeline, and
// per-figure runs record into rec: every Run(id) is wrapped in an
// "experiment.<id>" span, so a sweep's trace and metrics aggregate
// per-figure. A nil rec disables observability (the NewEnvWorkers path).
func NewEnvObs(workers int, rec *obs.Recorder) *Env {
	return NewEnvStore(workers, rec, nil)
}

// NewEnvStore returns an environment whose engine is additionally backed
// by a persistent artifact store: app indexes warm-start from the store's
// index tier and TED distances from its distance tier, so a repeat sweep
// over the same corpus pays decode time instead of the pipeline and the
// quadratic DP. The caller owns the store and must Close it to drain
// write-behind records; a nil store yields exactly NewEnvObs.
func NewEnvStore(workers int, rec *obs.Recorder, st *store.Store) *Env {
	return &Env{
		engine:      core.NewEngineStore(workers, ted.NewCache(), rec, st),
		rec:         rec,
		cache:       map[string]map[string]*core.Index{},
		matrixCache: map[string][][]float64{},
		phiSource:   PhiSourceModeled,
		measured:    map[string]*perf.MeasuredSet{},
	}
}

// Engine exposes the environment's shared divergence engine (for cache
// statistics and for callers that want to reuse the same memo).
func (e *Env) Engine() *core.Engine { return e.engine }

// SetTierPolicy routes all subsequent matrix sweeps through the tiered
// engine path (core.MatrixTiered) under the given policy. The zero policy
// (budget 0) delegates to the exact path — byte-identical values — but
// still reports routing provenance in the engine's tier stats. Matrices
// are cached per policy, so an environment never serves a tiered matrix
// to an exact request or across budgets.
func (e *Env) SetTierPolicy(p ted.TierPolicy) {
	e.mu.Lock()
	e.policy = p
	e.tiered = true
	e.mu.Unlock()
}

// TierPolicy returns the environment's active tier policy.
func (e *Env) TierPolicy() ted.TierPolicy {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.policy
}

// Recorder exposes the environment's observability recorder (nil when
// observability is off).
func (e *Env) Recorder() *obs.Recorder { return e.rec }

// Matrix returns (building and caching on first use) the cartesian
// divergence matrix of an app under a metric, plus the model order.
func (e *Env) Matrix(appName, metric string) ([][]float64, []string, error) {
	return e.MatrixCtx(context.Background(), appName, metric)
}

// MatrixCtx is Matrix under a cancellation context (the serve daemon's
// entry point): the underlying sweep checks ctx at every task grant, and
// a canceled request caches nothing — the environment's matrix cache,
// like the engine's cell memo, only ever holds completed sweeps.
func (e *Env) MatrixCtx(ctx context.Context, appName, metric string) ([][]float64, []string, error) {
	idxs, order, err := e.IndexesCtx(ctx, appName)
	if err != nil {
		return nil, nil, err
	}
	e.mu.Lock()
	policy, tiered := e.policy, e.tiered
	e.mu.Unlock()
	// The policy is part of the cache key: a tiered sweep must never be
	// served a matrix computed under a different budget (or the exact one),
	// mirroring the persistent store's tier-key separation.
	key := appName + "|" + metric + "|" + policy.String()
	if !tiered {
		key = appName + "|" + metric
	}
	e.mu.Lock()
	m, ok := e.matrixCache[key]
	e.mu.Unlock()
	if ok {
		return m, order, nil
	}
	if tiered {
		tm, err := e.engine.MatrixTieredCtx(ctx, idxs, order, metric, policy)
		if err != nil {
			return nil, nil, err
		}
		m = tm.Values
	} else {
		m, err = e.engine.MatrixCtx(ctx, idxs, order, metric)
		if err != nil {
			return nil, nil, err
		}
	}
	e.mu.Lock()
	e.matrixCache[key] = m
	e.mu.Unlock()
	return m, order, nil
}

// FromBaseCtx computes the per-model divergence-from-base map of an app
// under a metric and a cancellation context (the serve daemon's
// from-base endpoint). Results come straight from the engine — the cell
// memo, not the environment's matrix cache, is the reuse layer here.
func (e *Env) FromBaseCtx(ctx context.Context, appName, base, metric string) (map[string]float64, []string, error) {
	idxs, order, err := e.IndexesCtx(ctx, appName)
	if err != nil {
		return nil, nil, err
	}
	out, err := e.engine.FromBaseCtx(ctx, idxs, base, order, metric)
	if err != nil {
		return nil, nil, err
	}
	return out, order, nil
}

// Indexes returns (building on first use) the model → index map of an app.
func (e *Env) Indexes(appName string) (map[string]*core.Index, []string, error) {
	return e.IndexesCtx(context.Background(), appName)
}

// IndexesCtx is Indexes under a cancellation context. The build runs
// under the environment mutex; a canceled build caches nothing, so the
// next request rebuilds from scratch (or from the engine's store tier).
func (e *Env) IndexesCtx(ctx context.Context, appName string) (map[string]*core.Index, []string, error) {
	app, err := corpus.AppByName(appName)
	if err != nil {
		return nil, nil, err
	}
	var order []string
	for _, m := range corpus.ModelsFor(app) {
		order = append(order, string(m))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if idxs, ok := e.cache[appName]; ok {
		return idxs, order, nil
	}
	idxs := map[string]*core.Index{}
	for _, m := range corpus.ModelsFor(app) {
		cb, err := corpus.Generate(app, m)
		if err != nil {
			return nil, nil, err
		}
		idx, err := e.engine.IndexCodebaseCtx(ctx, cb, core.Options{})
		if err != nil {
			return nil, nil, err
		}
		idxs[string(m)] = idx
	}
	e.cache[appName] = idxs
	return idxs, order, nil
}

// Run regenerates one experiment by id. With a recorder attached, the
// whole regeneration is wrapped in an "experiment.<id>" span, so sweeps
// aggregate cost per figure.
func (e *Env) Run(id string) (*Result, error) {
	sp := e.rec.Start("experiment." + id)
	defer sp.End()
	return e.run(id)
}

func (e *Env) run(id string) (*Result, error) {
	switch id {
	case "table1":
		return e.table1()
	case "table2":
		return e.table2()
	case "table3":
		return e.table3()
	case "fig1":
		return e.fig1()
	case "fig4":
		return e.fig4()
	case "fig5":
		return e.dendrogramFigure("fig5", "tealeaf",
			"TeaLeaf model clustering dendrograms (LLOC, SLOC, Source, T_src, T_sem, T_ir)")
	case "fig6":
		return e.dendrogramFigure("fig6", "babelstream-fortran",
			"BabelStream Fortran model clustering dendrograms")
	case "fig7":
		return e.heatmapFigure("fig7", "minibude", "miniBUDE divergence from serial (0..1)")
	case "fig8":
		return e.heatmapFigure("fig8", "cloverleaf", "CloverLeaf divergence from serial (0..1)")
	case "fig9":
		return e.migrationFigure("fig9", "tealeaf", "serial",
			"TeaLeaf model divergence from the serial model")
	case "fig10":
		return e.migrationFigure("fig10", "tealeaf", "cuda",
			"TeaLeaf model divergence from the CUDA model")
	case "fig11":
		return e.cascadeFigure("fig11", "tealeaf", "TeaLeaf cascade plot (six platforms)")
	case "fig12":
		return e.cascadeFigure("fig12", "cloverleaf", "CloverLeaf cascade plot (six platforms)")
	case "fig13":
		return e.navigationFigure("fig13", "cloverleaf", "CloverLeaf navigation chart (Φ vs TBMD)")
	case "fig14":
		return e.navigationFigure("fig14", "tealeaf", "TeaLeaf navigation chart (Φ vs TBMD)")
	case "fig15":
		return e.fig15()
	case "ablation-costs":
		return e.ablationCosts()
	case "ablation-approx":
		return e.ablationApprox()
	default:
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
}

// --- tables -----------------------------------------------------------------

func (e *Env) table1() (*Result, error) {
	rows := [][]string{
		{"SLOC", "Absolute", "Perceived, language agnostic", "+preprocessor +coverage"},
		{"LLOC", "Absolute", "Perceived, language agnostic", "+preprocessor +coverage"},
		{"Source", "Relative (edit distance)", "Perceived, language agnostic", "+preprocessor +coverage"},
		{"T_src", "Relative (TED)", "Perceived", "+preprocessor +coverage"},
		{"T_sem", "Relative (TED)", "Semantic", "+inlining +coverage"},
		{"T_ir", "Relative (TED)", "Semantic", "+coverage"},
		{"Performance", "Relative (Phi)", "Runtime", "N/A"},
	}
	return &Result{
		ID:    "table1",
		Title: "Codebase summarisation metrics (Table I)",
		Text:  textplot.Table([]string{"Metric", "Measure", "Domain", "Variants"}, rows),
	}, nil
}

func (e *Env) table2() (*Result, error) {
	var rows [][]string
	for _, app := range corpus.Apps() {
		var models []string
		for _, m := range corpus.ModelsFor(app) {
			models = append(models, string(m))
		}
		rows = append(rows, []string{
			app.Name, string(app.Lang), app.Type,
			fmt.Sprintf("%d kernels", len(app.Kernels)),
			strings.Join(models, ", "),
		})
	}
	return &Result{
		ID:    "table2",
		Title: "Mini-apps and models (Table II)",
		Text:  textplot.Table([]string{"Mini-app", "Lang", "Type", "Kernels", "Models"}, rows),
	}, nil
}

func (e *Env) table3() (*Result, error) {
	var rows [][]string
	for _, p := range perf.Platforms() {
		rows = append(rows, []string{p.Vendor, p.Name, p.Abbr, p.Topology})
	}
	return &Result{
		ID:    "table3",
		Title: "Platform details for Phi benchmarks (Table III)",
		Text:  textplot.Table([]string{"Vendor", "Name", "Abbr.", "Topology"}, rows),
	}, nil
}

// --- fig 1 ------------------------------------------------------------------

func (e *Env) fig1() (*Result, error) {
	t1, err := tree.ParseSexpr(
		"(FunctionDecl (ParmVarDecl) (CompoundStmt (ReturnStmt (IntegerLiteral))))")
	if err != nil {
		return nil, err
	}
	t2, err := tree.ParseSexpr(
		"(FunctionTemplateDecl (ParmVarDecl) (CompoundStmt (DeclStmt (VarDecl (CallExpr (DeclRefExpr)))) (ReturnStmt (IntegerLiteral))))")
	if err != nil {
		return nil, err
	}
	d := ted.Distance(t1, t2)
	var b strings.Builder
	b.WriteString("Tree 1:\n" + t1.Pretty())
	b.WriteString("Tree 2:\n" + t2.Pretty())
	fmt.Fprintf(&b, "TED distance = %d (paper: five — four inserted/deleted nodes, one relabelled)\n", d)
	return &Result{ID: "fig1", Title: "Two ASTs with a TED distance of five (Fig. 1)", Text: b.String()}, nil
}

// --- clustering figures -------------------------------------------------------

func (e *Env) fig4() (*Result, error) {
	m, order, err := e.Matrix("tealeaf", core.MetricTsem)
	if err != nil {
		return nil, err
	}
	dist := cluster.EuclideanFromMatrix(m)
	emb := cluster.MDS(dist, 2)
	var pts []textplot.ScatterPoint
	for i, model := range order {
		pts = append(pts, textplot.ScatterPoint{
			X: emb[i][0], Y: emb[i][1], Glyph: '*', Label: model,
		})
	}
	root, err := cluster.Agglomerate(order, dist)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("2-D model map (classical MDS of T_sem divergence):\n")
	b.WriteString(textplot.Scatter(pts, 72, 18, "mds-1", "mds-2"))
	b.WriteString("\nDendrogram (complete linkage, Euclidean):\n")
	b.WriteString(cluster.Render(root))
	return &Result{ID: "fig4", Title: "TeaLeaf model clustering using T_sem (Fig. 4)", Text: b.String()}, nil
}

var dendrogramMetrics = []string{
	core.MetricLLOC, core.MetricSLOC, core.MetricSource,
	core.MetricTsrc, core.MetricTsem, core.MetricTir,
}

func (e *Env) dendrogramFigure(id, app, title string) (*Result, error) {
	var b strings.Builder
	roots := map[string]*cluster.Node{}
	var order []string
	for _, metric := range dendrogramMetrics {
		m, ord, err := e.Matrix(app, metric)
		if err != nil {
			return nil, err
		}
		order = ord
		root, err := cluster.Agglomerate(ord, cluster.EuclideanFromMatrix(m))
		if err != nil {
			return nil, err
		}
		roots[metric] = root
		fmt.Fprintf(&b, "--- %s ---\n%s\n", metric, cluster.Render(root))
	}
	// quantify the paper's "SLOC/LLOC clustering appears random" reading:
	// pairwise agreement of every metric's dendrogram with T_sem's
	b.WriteString("dendrogram agreement with T_sem (1 = same story, ~0.5 = chance):\n")
	for _, metric := range dendrogramMetrics {
		agr, err := cluster.PairAgreement(roots[metric], roots[core.MetricTsem], order)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %-8s %.2f\n", metric, agr)
	}
	return &Result{ID: id, Title: title, Text: b.String()}, nil
}

// --- heatmap figures ----------------------------------------------------------

func (e *Env) heatmapFigure(id, app, title string) (*Result, error) {
	idxs, order, err := e.Indexes(app)
	if err != nil {
		return nil, err
	}
	metrics := core.Metrics()
	m := make([][]float64, len(metrics))
	for i, metric := range metrics {
		from, err := e.engine.FromBase(idxs, "serial", order, metric)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(order))
		for j, model := range order {
			v := from[model]
			if v > 1 {
				v = 1 // heatmap domain is 0..1
			}
			row[j] = v
		}
		m[i] = row
	}
	return &Result{ID: id, Title: title, Text: textplot.Heatmap(metrics, order, m)}, nil
}

// --- migration figures ----------------------------------------------------------

var migrationMetrics = []string{
	core.MetricSource, core.MetricTsrc, core.MetricTsem, core.MetricTir,
}

func (e *Env) migrationFigure(id, app, base, title string) (*Result, error) {
	idxs, order, err := e.Indexes(app)
	if err != nil {
		return nil, err
	}
	offload := []string{"cuda", "hip", "omp-target", "kokkos", "sycl-acc", "sycl-usm"}
	var b strings.Builder
	for _, metric := range migrationMetrics {
		from, err := e.engine.FromBase(idxs, base, order, metric)
		if err != nil {
			return nil, err
		}
		var labels []string
		var values []float64
		for _, m := range offload {
			if m == base {
				continue
			}
			labels = append(labels, m)
			values = append(values, from[m])
		}
		fmt.Fprintf(&b, "--- %s (from %s) ---\n%s\n", metric, base, textplot.Bar(labels, values, 40))
	}
	return &Result{ID: id, Title: title, Text: b.String()}, nil
}

// --- performance figures ----------------------------------------------------------

func (e *Env) cascadeFigure(id, app, title string) (*Result, error) {
	plats := perf.Platforms()
	models := corpus.CXXModels()
	eff, phi, err := e.phiFns(app)
	if err != nil {
		return nil, err
	}
	var names []string
	var series [][]float64
	var phis []float64
	for _, m := range models {
		m := m
		pts := perf.CascadeOf(func(p perf.Platform) float64 { return eff(m, p) }, plats)
		row := make([]float64, len(pts))
		for i, p := range pts {
			row[i] = p.Eff
		}
		names = append(names, string(m))
		series = append(series, row)
		phis = append(phis, phi(m, plats))
	}
	text := textplot.Cascade(names, series, phis)
	if e.PhiSource() == PhiSourceMeasured {
		text += "\nphi source: measured (interpreter cost vectors, DESIGN.md §11)\n"
	}
	return &Result{ID: id, Title: title, Text: text}, nil
}

func (e *Env) navigationFigure(id, app, title string) (*Result, error) {
	ch, err := e.NavChart(app)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	if ch.PhiSource == PhiSourceMeasured {
		b.WriteString("phi source: measured (interpreter cost vectors, DESIGN.md §11)\n")
	}
	var pts []textplot.ScatterPoint
	for _, p := range ch.Points {
		b.WriteString(p.Row() + "\n")
		// x axis: 1 - divergence, so the serial-like corner is on the right
		pts = append(pts,
			textplot.ScatterPoint{X: 1 - clamp01(p.Tsem), Y: p.Phi, Glyph: '*', Label: p.Model},
			textplot.ScatterPoint{X: 1 - clamp01(p.Tsrc), Y: p.Phi, Glyph: 'o'},
		)
	}
	b.WriteString("\n(* = T_sem, o = T_src; ideal models sit top right)\n")
	b.WriteString(textplot.Scatter(pts, 72, 20, "1 - divergence from serial", "phi"))
	if best, err := ch.Best(1.0); err == nil {
		fmt.Fprintf(&b, "best tradeoff (w=1): %s\n", best.Model)
	}
	return &Result{ID: id, Title: title, Text: b.String()}, nil
}

// ablationCosts regenerates the divergence-from-serial column under three
// TED cost models — the study the paper defers: "adding new code may have
// a different productivity impact than removing existing code".
func (e *Env) ablationCosts() (*Result, error) {
	idxs, order, err := e.Indexes("babelstream")
	if err != nil {
		return nil, err
	}
	serial := idxs["serial"]
	configs := []struct {
		name  string
		costs ted.Costs
	}{
		{"unit (paper)", ted.UnitCosts()},
		{"insert x2", ted.Costs{Insert: 2, Delete: 1, Rename: 1}},
		{"delete x2", ted.Costs{Insert: 1, Delete: 2, Rename: 1}},
		{"rename x2", ted.Costs{Insert: 1, Delete: 1, Rename: 2}},
	}
	var rows [][]string
	for _, m := range order {
		row := []string{m}
		for _, cfg := range configs {
			d, err := e.engine.DivergeWithCosts(serial, idxs[m], core.MetricTsem, cfg.costs)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", d.Norm))
		}
		rows = append(rows, row)
	}
	header := []string{"model"}
	for _, cfg := range configs {
		header = append(header, cfg.name)
	}
	text := textplot.Table(header, rows) +
		"\nInsert-heavy costs penalise ports that add machinery (SYCL, CUDA);\n" +
		"uniform scaling leaves the normalised ordering untouched.\n"
	return &Result{ID: "ablation-costs", Title: "TED cost-model ablation (T_sem from serial, BabelStream)", Text: text}, nil
}

// ablationApprox compares exact TED against the pq-gram approximation —
// the linear-memory mode the paper's future work asks for.
func (e *Env) ablationApprox() (*Result, error) {
	idxs, order, err := e.Indexes("babelstream")
	if err != nil {
		return nil, err
	}
	serial := idxs["serial"]
	var rows [][]string
	for _, m := range order {
		ex, err := e.engine.Diverge(serial, idxs[m], core.MetricTsem)
		if err != nil {
			return nil, err
		}
		ap, err := e.engine.ApproxDiverge(serial, idxs[m], core.MetricTsem)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{m, fmt.Sprintf("%.3f", ex.Norm), fmt.Sprintf("%.3f", ap.Norm)})
	}
	text := textplot.Table([]string{"model", "exact TED", "pq-gram"}, rows) +
		"\npq-grams run in O(n log n) time and O(n) memory and preserve the\n" +
		"model ordering, enabling production-scale codebases (paper §VII).\n"
	return &Result{ID: "ablation-approx", Title: "Exact TED vs pq-gram approximation (T_sem from serial, BabelStream)", Text: text}, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func (e *Env) fig15() (*Result, error) {
	h100, err := perf.PlatformByAbbr("H100")
	if err != nil {
		return nil, err
	}
	mi, err := perf.PlatformByAbbr("MI250X")
	if err != nil {
		return nil, err
	}
	nvOnly := []perf.Platform{h100}
	both := []perf.Platform{h100, mi}
	_, phi, err := e.phiFns("cloverleaf")
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	if e.PhiSource() == PhiSourceMeasured {
		b.WriteString("phi source: measured (interpreter cost vectors, DESIGN.md §11)\n")
	}
	fmt.Fprintf(&b, "Point 1: CUDA codebase, NVIDIA-only platform set: phi = %.3f\n",
		phi(corpus.CUDA, nvOnly))
	fmt.Fprintf(&b, "Point 2: AMD GPUs arrive, CUDA codebase:          phi = %.3f\n",
		phi(corpus.CUDA, both))
	b.WriteString("Point 3 candidates (phi on {H100, MI250X}, divergence from CUDA):\n")
	idxs, order, err := e.Indexes("cloverleaf")
	if err != nil {
		return nil, err
	}
	fromCUDA, err := e.engine.FromBase(idxs, "cuda", order, core.MetricTsem)
	if err != nil {
		return nil, err
	}
	type cand struct {
		model string
		phi   float64
		div   float64
	}
	var cands []cand
	for _, m := range []corpus.Model{corpus.HIP, corpus.Kokkos, corpus.SYCLACC, corpus.SYCLUSM, corpus.OpenMPTarget} {
		cands = append(cands, cand{string(m), phi(m, both), fromCUDA[string(m)]})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].phi-cands[i].div > cands[j].phi-cands[j].div })
	for _, c := range cands {
		fmt.Fprintf(&b, "  %-12s phi=%.3f  tsem-from-cuda=%.3f\n", c.model, c.phi, c.div)
	}
	fmt.Fprintf(&b, "recommended landing point 3: %s\n", cands[0].model)
	return &Result{
		ID:    "fig15",
		Title: "Navigation chart scenario: picking a model when vendor diversity arrives (Fig. 15)",
		Text:  b.String(),
	}, nil
}
