// Measured-Φ plumbing: the experiments environment can source every
// performance figure (cascades, navigation charts, fig15) from
// interpreter-measured cost vectors instead of the modeled landscape.
// Profiles are built once per app under the environment mutex — serial
// and in stable model order, so measured figures are bit-identical across
// runs and worker counts — and the same single interpreter execution
// also yields the port's coverage mask (DESIGN.md §11).
package experiments

import (
	"context"
	"fmt"

	"silvervale/internal/core"
	"silvervale/internal/corpus"
	"silvervale/internal/interp"
	"silvervale/internal/navchart"
	"silvervale/internal/perf"
)

// Φ sources accepted by SetPhiSource (the CLI's -phi-source values).
const (
	PhiSourceModeled  = "modeled"
	PhiSourceMeasured = "measured"
)

// SetPhiSource selects where performance figures draw Φ from.
func (e *Env) SetPhiSource(src string) error {
	if src != PhiSourceModeled && src != PhiSourceMeasured {
		return fmt.Errorf("experiments: unknown phi source %q (want %s or %s)",
			src, PhiSourceModeled, PhiSourceMeasured)
	}
	e.mu.Lock()
	e.phiSource = src
	e.mu.Unlock()
	return nil
}

// PhiSource returns the active Φ source.
func (e *Env) PhiSource() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.phiSource
}

// ProfileRuns reports how many interpreter profiling executions the
// environment has performed — the single-pass regression gate asserts
// this stays at exactly one per (app, model) across a whole sweep.
func (e *Env) ProfileRuns() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.profileRuns
}

// MeasuredSet returns (profiling every C++ port on first use) the app's
// measured cost set. Runs are serial under the environment mutex in
// CXXModels order, so the resulting efficiencies are bit-identical for
// every worker count.
func (e *Env) MeasuredSet(appName string) (*perf.MeasuredSet, error) {
	app, err := corpus.AppByName(appName)
	if err != nil {
		return nil, err
	}
	if app.Lang != corpus.LangCXX {
		return nil, fmt.Errorf("experiments: measured phi requires a C++ app, %s is %s", appName, app.Lang)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if set, ok := e.measured[appName]; ok {
		return set, nil
	}
	sp := e.rec.Start("interp.profile").Arg("app", appName)
	defer sp.End()
	models := corpus.CXXModels()
	profs := make(map[corpus.Model]*interp.Profile, len(models))
	for _, m := range models {
		cb, err := corpus.Generate(app, m)
		if err != nil {
			return nil, err
		}
		rp, err := core.ProfileCodebase(cb, sp)
		if err != nil {
			return nil, err
		}
		e.profileRuns++
		profs[m] = rp.Cost
	}
	costs := make(map[corpus.Model]perf.AppCost, len(models))
	for _, m := range models {
		costs[m] = perf.BuildAppCost(app, m, profs[corpus.Serial], profs[m])
	}
	set := perf.NewMeasuredSet(appName, models, costs)
	e.measured[appName] = set
	return set, nil
}

// phiFns resolves the active Φ source into the two functions the
// performance figures consume: per-(model, platform) efficiency and
// per-(model, platform-set) Φ. The modeled pair closes over the
// hand-written landscape; the measured pair over the app's MeasuredSet.
func (e *Env) phiFns(appName string) (
	eff func(corpus.Model, perf.Platform) float64,
	phi func(corpus.Model, []perf.Platform) float64,
	err error,
) {
	if e.PhiSource() == PhiSourceMeasured {
		set, err := e.MeasuredSet(appName)
		if err != nil {
			return nil, nil, err
		}
		return set.Efficiency, set.AppPhi, nil
	}
	return func(m corpus.Model, p perf.Platform) float64 {
			return perf.Efficiency(appName, m, p)
		}, func(m corpus.Model, plats []perf.Platform) float64 {
			return perf.AppPhi(appName, m, plats)
		}, nil
}

// NavChart assembles the navigation chart of a C++ app (divergence base
// serial, full platform set) under the active Φ source — the JSON the
// phi subcommand emits. Measured charts carry per-model cost summaries.
func (e *Env) NavChart(appName string) (*navchart.Chart, error) {
	return e.NavChartCtx(context.Background(), appName)
}

// NavChartCtx is NavChart under a cancellation context (the serve
// daemon's phi endpoint). Both FromBase sweeps check ctx at task grants;
// a canceled request returns ctx.Err() with no chart.
func (e *Env) NavChartCtx(ctx context.Context, appName string) (*navchart.Chart, error) {
	idxs, order, err := e.IndexesCtx(ctx, appName)
	if err != nil {
		return nil, err
	}
	tsem, err := e.engine.FromBaseCtx(ctx, idxs, "serial", order, core.MetricTsem)
	if err != nil {
		return nil, err
	}
	tsrc, err := e.engine.FromBaseCtx(ctx, idxs, "serial", order, core.MetricTsrc)
	if err != nil {
		return nil, err
	}
	eff, _, err := e.phiFns(appName)
	if err != nil {
		return nil, err
	}
	src := e.PhiSource()
	ch := navchart.BuildPhi(appName, "serial", tsem, tsrc, corpus.CXXModels(), perf.Platforms(), src, eff)
	// Stamp each point with its units' tsem fingerprints: the chart then
	// content-addresses the trees it was computed from (DESIGN.md §12).
	for i := range ch.Points {
		idx, ok := idxs[ch.Points[i].Model]
		if !ok {
			continue
		}
		for j := range idx.Units {
			u := &idx.Units[j]
			ch.Points[i].Units = append(ch.Points[i].Units, navchart.UnitFingerprint{
				File:        u.File,
				Role:        u.Role,
				Fingerprint: u.TreeFingerprint(core.MetricTsem).String(),
			})
		}
	}
	if src == PhiSourceMeasured {
		set, err := e.MeasuredSet(appName)
		if err != nil {
			return nil, err
		}
		for i := range ch.Points {
			c, ok := set.Costs[corpus.Model(ch.Points[i].Model)]
			if !ok {
				continue
			}
			total := c.Host
			var calls int64
			for _, k := range c.Kernels {
				total.Add(k.Model)
				calls += k.Model.Calls
			}
			ch.Points[i].Cost = &navchart.CostSummary{
				Stmts:       total.Stmts,
				LoopTrips:   total.LoopTrips,
				MemBytes:    total.MemBytes,
				Flops:       total.Flops,
				KernelCalls: calls,
			}
		}
	}
	return ch, nil
}
