package experiments

import (
	"strings"
	"testing"
)

// The heavy clustering figures (fig4/5/6 full cartesian matrices) are
// exercised by the benchmark harness; these tests cover the experiment
// plumbing plus the cheap figures end to end.

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("ids = %d, want 18 (3 tables + 13 figures + 2 ablations)", len(ids))
	}
}

func TestAblationExperiments(t *testing.T) {
	env := NewEnv()
	costs, err := env.Run("ablation-costs")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"insert x2", "delete x2", "sycl-acc"} {
		if !strings.Contains(costs.Text, want) {
			t.Errorf("ablation-costs missing %q", want)
		}
	}
	approx, err := env.Run("ablation-approx")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(approx.Text, "pq-gram") {
		t.Error("ablation-approx malformed")
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := NewEnv().Run("fig99"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTables(t *testing.T) {
	env := NewEnv()
	t1, err := env.Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SLOC", "T_sem", "Relative (TED)", "Semantic"} {
		if !strings.Contains(t1.Text, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
	t2, err := env.Run("table2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"babelstream", "tealeaf", "cloverleaf", "minibude", "sycl-acc"} {
		if !strings.Contains(t2.Text, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
	t3, err := env.Run("table3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"H100", "MI250X", "PVC", "Graviton"} {
		if !strings.Contains(t3.Text, want) {
			t.Errorf("table3 missing %q", want)
		}
	}
}

func TestFig1(t *testing.T) {
	r, err := NewEnv().Run("fig1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "TED distance = 5") {
		t.Fatalf("fig1 distance wrong:\n%s", r.Text)
	}
}

func TestCascadeFigures(t *testing.T) {
	env := NewEnv()
	for _, id := range []string{"fig11", "fig12"} {
		r, err := env.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"cuda", "kokkos", "phi", "best-1"} {
			if !strings.Contains(r.Text, want) {
				t.Errorf("%s missing %q:\n%s", id, want, r.Text)
			}
		}
	}
}

func TestFig15Scenario(t *testing.T) {
	r, err := NewEnv().Run("fig15")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "phi = 0.000") {
		t.Errorf("fig15 must show CUDA collapsing to zero:\n%s", r.Text)
	}
	if !strings.Contains(r.Text, "recommended landing point 3: hip") {
		// HIP is the natural Fig. 15 landing point: near-CUDA semantics and
		// full phi on the two-vendor set
		t.Errorf("fig15 recommendation unexpected:\n%s", r.Text)
	}
}

func TestMigrationFigures(t *testing.T) {
	env := NewEnv()
	r9, err := env.Run("fig9")
	if err != nil {
		t.Fatal(err)
	}
	r10, err := env.Run("fig10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r9.Text, "omp-target") || !strings.Contains(r10.Text, "hip") {
		t.Error("migration figures incomplete")
	}
	if !strings.Contains(r10.Text, "(from cuda)") {
		t.Error("fig10 must diverge from CUDA")
	}
}

func TestHeatmapFigure(t *testing.T) {
	env := NewEnv()
	r, err := env.Run("fig7")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tsem", "tsem+i", "source+pp", "sycl-acc"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("fig7 missing %q", want)
		}
	}
}

func TestFortranDendrograms(t *testing.T) {
	env := NewEnv()
	r, err := env.Run("fig6")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"f-acc", "f-doconcurrent", "tsem", "sloc"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("fig6 missing %q:\n%s", want, r.Text)
		}
	}
}
