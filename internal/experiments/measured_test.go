package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"silvervale/internal/obs"
)

func TestSetPhiSourceValidates(t *testing.T) {
	e := NewEnvWorkers(1)
	if e.PhiSource() != PhiSourceModeled {
		t.Fatalf("default phi source = %q, want modeled", e.PhiSource())
	}
	if err := e.SetPhiSource("roofline"); err == nil {
		t.Fatal("bogus phi source accepted")
	}
	if err := e.SetPhiSource(PhiSourceMeasured); err != nil {
		t.Fatal(err)
	}
	if e.PhiSource() != PhiSourceMeasured {
		t.Fatalf("phi source = %q after set", e.PhiSource())
	}
}

func TestMeasuredSetRejectsFortran(t *testing.T) {
	e := NewEnvWorkers(1)
	if _, err := e.MeasuredSet("babelstream-fortran"); err == nil {
		t.Fatal("Fortran app accepted for measured phi")
	}
}

// TestSinglePassProfiling: a sweep touching the same app from several
// figures profiles each port exactly once — the regression gate for the
// one-execution-two-artifacts design.
func TestSinglePassProfiling(t *testing.T) {
	e := NewEnvWorkers(1)
	if err := e.SetPhiSource(PhiSourceMeasured); err != nil {
		t.Fatal(err)
	}
	if _, err := e.MeasuredSet("babelstream"); err != nil {
		t.Fatal(err)
	}
	want := e.ProfileRuns()
	if want == 0 {
		t.Fatal("no profiling runs recorded")
	}
	// every further consumer of the same app must hit the cache
	if _, err := e.MeasuredSet("babelstream"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.NavChart("babelstream"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.phiFns("babelstream"); err != nil {
		t.Fatal(err)
	}
	if got := e.ProfileRuns(); got != want {
		t.Fatalf("profile runs grew %d → %d: app re-executed within one sweep", want, got)
	}
}

// TestMeasuredNavChartJSON: the chart round-trips as JSON carrying the
// measured provenance, per-platform efficiencies, and cost summaries.
func TestMeasuredNavChartJSON(t *testing.T) {
	e := NewEnvWorkers(1)
	if err := e.SetPhiSource(PhiSourceMeasured); err != nil {
		t.Fatal(err)
	}
	ch, err := e.NavChart("babelstream")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ch.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		App       string   `json:"app"`
		PhiSource string   `json:"phi_source"`
		Platforms []string `json:"platforms"`
		Points    []struct {
			Model string    `json:"model"`
			Phi   float64   `json:"phi"`
			Tsem  float64   `json:"tsem"`
			Effs  []float64 `json:"effs"`
			Cost  *struct {
				Stmts    int64 `json:"stmts"`
				MemBytes int64 `json:"mem_bytes"`
			} `json:"cost"`
		} `json:"points"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chart JSON does not parse: %v", err)
	}
	if decoded.PhiSource != PhiSourceMeasured {
		t.Fatalf("phi_source = %q", decoded.PhiSource)
	}
	if len(decoded.Platforms) != 6 || len(decoded.Points) != 10 {
		t.Fatalf("chart shape: %d platforms, %d points", len(decoded.Platforms), len(decoded.Points))
	}
	var anyPhi bool
	for _, p := range decoded.Points {
		if len(p.Effs) != len(decoded.Platforms) {
			t.Fatalf("%s: %d effs for %d platforms", p.Model, len(p.Effs), len(decoded.Platforms))
		}
		if p.Cost == nil || p.Cost.Stmts == 0 {
			t.Fatalf("%s: missing measured cost summary", p.Model)
		}
		if p.Phi > 0 {
			anyPhi = true
		}
	}
	if !anyPhi {
		t.Fatal("no point has measured phi > 0")
	}
}

// TestMeasuredDeterministicAcrossWorkers: measured charts are
// bit-identical for every worker count (profiling runs serial under the
// environment mutex; this is the measured leg of the matrix-determinism
// gates, exercised under -race by the tier-1 suite).
func TestMeasuredDeterministicAcrossWorkers(t *testing.T) {
	var ref interface{}
	for _, workers := range []int{1, 2, 4, 8} {
		e := NewEnvWorkers(workers)
		if err := e.SetPhiSource(PhiSourceMeasured); err != nil {
			t.Fatal(err)
		}
		ch, err := e.NavChart("babelstream")
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = ch
			continue
		}
		if !reflect.DeepEqual(ref, ch) {
			t.Fatalf("measured chart differs at %d workers", workers)
		}
	}
}

// TestMeasuredFiguresRun: the three performance figures run under the
// measured source and declare their provenance; the modeled default
// stays free of the provenance line.
func TestMeasuredFiguresRun(t *testing.T) {
	rec := obs.NewRecorder()
	e := NewEnvObs(1, rec)
	if err := e.SetPhiSource(PhiSourceMeasured); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig11", "fig14"} {
		res, err := e.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(res.Text, "phi source: measured") {
			t.Errorf("%s: missing measured provenance line", id)
		}
	}
	if rec.Counter("interp.runs").Value() == 0 {
		t.Error("interp.runs counter not recorded during measured figures")
	}
	if rec.Counter("interp.mem_bytes").Value() == 0 {
		t.Error("interp.mem_bytes counter not recorded")
	}

	modeled := NewEnvWorkers(1)
	res, err := modeled.Run("fig11")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Text, "phi source") {
		t.Error("modeled fig11 gained a provenance line (default output must not change)")
	}
}
