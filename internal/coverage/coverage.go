// Package coverage converts runtime line-coverage profiles into masks
// applied to semantic-bearing trees, implementing the +coverage metric
// variants of Table I: "we use runtime coverage data to eliminate parts of
// the tree that were never executed".
package coverage

import (
	"sort"
	"strings"

	"silvervale/internal/srcloc"
	"silvervale/internal/tree"
)

// Profile is a runtime coverage profile for one run of an application.
type Profile struct {
	Mask *srcloc.LineMask
}

// NewProfile wraps a line mask produced by the interpreter (or parsed from
// an external profile file).
func NewProfile(mask *srcloc.LineMask) *Profile { return &Profile{Mask: mask} }

// Merge combines several run profiles (e.g. multiple decks) into one.
func Merge(profiles ...*Profile) *Profile {
	out := srcloc.NewLineMask()
	for _, p := range profiles {
		if p != nil {
			out.Merge(p.Mask)
		}
	}
	return &Profile{Mask: out}
}

// MaskTree prunes tree nodes whose source line is known to be unexecuted.
// Nodes with unknown positions (or positions in files absent from the
// profile) are kept: coverage only ever removes provably dead regions.
// Child nodes of removed nodes are hoisted, preserving the rest of the
// structure.
func (p *Profile) MaskTree(t *tree.Node) *tree.Node {
	if t == nil {
		return nil
	}
	return t.Filter(func(n *tree.Node) bool {
		if !n.Pos.IsValid() {
			return true
		}
		live, known := p.Mask.Live(n.Pos.File, n.Pos.Line)
		if !known {
			// unknown line in a file the profile does mention: dead code
			// inside an executed file is exactly what coverage removes
			if fileKnown(p.Mask, n.Pos.File) {
				return false
			}
			return true
		}
		return live
	})
}

func fileKnown(m *srcloc.LineMask, file string) bool {
	for _, f := range m.Files() {
		if f == file {
			return true
		}
	}
	return false
}

// Keep reports whether a source line survives the coverage mask: lines in
// files the profile never saw are kept (the run did not instrument them),
// lines the run executed are kept, and lines provably unexecuted inside an
// instrumented file are removed — unless they are purely structural
// (braces), which the compilers' coverage reports also never flag.
func (p *Profile) Keep(file string, line int, text string) bool {
	if !fileKnown(p.Mask, file) {
		return true
	}
	if live, known := p.Mask.Live(file, line); known {
		return live
	}
	return isStructuralLine(text)
}

// MaskLines filters normalised source lines for the +coverage variants of
// SLOC/LLOC/Source. The lines slice must be parallel to lineNumbers.
func (p *Profile) MaskLines(file string, lines []string, lineNumbers []int) []string {
	var out []string
	for i, l := range lines {
		ln := 0
		if i < len(lineNumbers) {
			ln = lineNumbers[i]
		}
		if p.Keep(file, ln, l) {
			out = append(out, l)
		}
	}
	return out
}

// isStructuralLine reports lines that carry no executable code.
func isStructuralLine(l string) bool {
	t := strings.TrimSpace(l)
	return t == "{" || t == "}" || t == ""
}

// Summary renders a compact description of the profile: files and live-line
// counts, sorted by file.
func (p *Profile) Summary() string {
	files := p.Mask.Files()
	sort.Strings(files)
	var b strings.Builder
	for _, f := range files {
		b.WriteString(f)
		b.WriteString(": ")
		b.WriteString(itoa(len(p.Mask.Lines(f))))
		b.WriteString(" lines\n")
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
