package coverage

import (
	"strings"
	"testing"

	"silvervale/internal/srcloc"
	"silvervale/internal/tree"
)

func profile() *Profile {
	m := srcloc.NewLineMask()
	m.Set("a.c", 1, true)
	m.Set("a.c", 2, false)
	m.Set("a.c", 3, true)
	return NewProfile(m)
}

func TestMaskTreeRemovesDeadNodes(t *testing.T) {
	root := tree.NewAt("root", srcloc.Pos{File: "a.c", Line: 1},
		tree.NewAt("live", srcloc.Pos{File: "a.c", Line: 3}),
		tree.NewAt("dead", srcloc.Pos{File: "a.c", Line: 2},
			tree.NewAt("child-of-dead", srcloc.Pos{File: "a.c", Line: 3})),
		tree.NewAt("other-file", srcloc.Pos{File: "b.c", Line: 9}),
		tree.New("no-pos"),
	)
	masked := profile().MaskTree(root)
	labels := masked.LabelHistogram()
	if labels["dead"] != 0 {
		t.Fatal("dead node survived")
	}
	// children of removed nodes hoist when themselves live
	if labels["child-of-dead"] != 1 {
		t.Fatalf("live child lost: %v", labels)
	}
	if labels["other-file"] != 1 || labels["no-pos"] != 1 {
		t.Fatalf("unknown-file/position nodes must be kept: %v", labels)
	}
	if p := NewProfile(srcloc.NewLineMask()); p.MaskTree(nil) != nil {
		t.Fatal("nil tree")
	}
}

func TestMaskTreeUnknownLineInKnownFile(t *testing.T) {
	// a line never executed in an instrumented file is dead code
	root := tree.NewAt("root", srcloc.Pos{File: "a.c", Line: 1},
		tree.NewAt("never-seen", srcloc.Pos{File: "a.c", Line: 99}))
	masked := profile().MaskTree(root)
	if masked.LabelHistogram()["never-seen"] != 0 {
		t.Fatal("unexecuted line in instrumented file must be removed")
	}
}

func TestKeepAndMaskLines(t *testing.T) {
	p := profile()
	if !p.Keep("unknown.c", 7, "x = 1;") {
		t.Fatal("uninstrumented file must be kept")
	}
	if p.Keep("a.c", 2, "x = 1;") {
		t.Fatal("dead line kept")
	}
	if !p.Keep("a.c", 99, "}") {
		t.Fatal("structural line must be kept")
	}
	lines := p.MaskLines("a.c", []string{"l1", "l2", "l3"}, []int{1, 2, 3})
	if len(lines) != 2 || lines[0] != "l1" || lines[1] != "l3" {
		t.Fatalf("masked = %v", lines)
	}
}

func TestMerge(t *testing.T) {
	a := profile()
	m2 := srcloc.NewLineMask()
	m2.Set("a.c", 2, true) // a second run executed line 2
	merged := Merge(a, NewProfile(m2), nil)
	if !merged.Keep("a.c", 2, "x") {
		t.Fatal("merge should OR coverage across runs")
	}
}

func TestSummary(t *testing.T) {
	s := profile().Summary()
	if !strings.Contains(s, "a.c: 2 lines") {
		t.Fatalf("summary = %q", s)
	}
}
