package minifortran

import (
	"strings"
	"testing"

	"silvervale/internal/ir"
	"silvervale/internal/minic"
)

// Integration of the Fortran frontend with the shared semantic machinery:
// inlining (T_sem+i) and IR lowering.

func TestFortranInlining(t *testing.T) {
	src := `
module kernels
contains
  subroutine triad(a, b, c, s, n)
    integer, intent(in) :: n
    real(8), intent(inout) :: a(n)
    real(8), intent(in) :: b(n), c(n), s
    integer :: i
    do i = 1, n
      a(i) = b(i) + s * c(i)
    end do
  end subroutine triad
end module kernels

program main
  use kernels
  real(8) :: x(8), y(8), z(8)
  call triad(x, y, z, 0.4d0, 8)
end program main
`
	unit := parse(t, src)
	plain := minic.BuildSemTree(unit)
	inlined := minic.BuildSemTree(minic.InlineUnit(unit, minic.InlineOptions{}))
	if inlined.Size() <= plain.Size() {
		t.Fatalf("subroutine call should inline: %d vs %d", inlined.Size(), plain.Size())
	}
}

func TestFortranIRLowering(t *testing.T) {
	src := `
program stream
  implicit none
  integer, parameter :: n = 64
  real(8) :: a(n), b(n)
  real(8) :: s
  integer :: i
  s = 0.0d0
  !$omp parallel do reduction(+:s)
  do i = 1, n
    s = s + a(i) * b(i)
  end do
  !$omp end parallel do
end program stream
`
	unit := parse(t, src)
	bundle := ir.LowerUnit(unit, "stream.f90")
	listing := bundle.String()
	if !strings.Contains(listing, "__kmpc_fork_call") {
		t.Fatalf("Fortran OpenMP must lower through the same runtime:\n%s", listing)
	}
	if !strings.Contains(listing, "__kmpc_reduce") {
		t.Fatal("reduction clause lost in Fortran lowering")
	}
	if len(bundle.Device) != 0 {
		t.Fatal("host-only Fortran must not create device modules")
	}
	if bundle.InstrCount() == 0 {
		t.Fatal("empty lowering")
	}
}

func TestFortranDoConcurrentLowering(t *testing.T) {
	src := `
program p
  real(8) :: a(64)
  integer :: i
  do concurrent (i = 1:64)
    a(i) = 1.0d0
  end do
end program p
`
	unit := parse(t, src)
	bundle := ir.LowerUnit(unit, "p.f90")
	// do concurrent lowers as a plain countable loop (the serial semantics
	// GFortran emits without parallelisation)
	condbr := 0
	for _, f := range bundle.Host.Funcs {
		for _, blk := range f.Blocks {
			for _, ins := range blk.Instrs {
				if ins.Op == "condbr" {
					condbr++
				}
			}
		}
	}
	if condbr == 0 {
		t.Fatal("do concurrent must lower to a loop")
	}
}
