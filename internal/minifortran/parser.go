package minifortran

import (
	"fmt"
	"strings"

	"silvervale/internal/minic"
	"silvervale/internal/obs"
	"silvervale/internal/srcloc"
)

// ParseUnit parses MiniFortran source into the uniform frontend AST. The
// returned TranslationUnit has Extra set to "fortran".
func ParseUnit(src, file string) (*minic.ASTNode, error) {
	return ParseUnitObs(src, file, nil)
}

// ParseUnitObs is ParseUnit with per-phase observability: lexing and
// parsing record "frontend.lex" / "frontend.parse" child spans under
// parent (the same phase names the MiniC frontend uses, so traces and
// metrics aggregate across languages). A nil parent is the plain
// uninstrumented ParseUnit.
func ParseUnitObs(src, file string, parent *obs.Span) (*minic.ASTNode, error) {
	lsp := parent.Start("frontend.lex")
	lines := LexLines(src, file)
	lsp.End()
	psp := parent.Start("frontend.parse")
	defer psp.End()
	p := &fparser{lines: lines, file: file, arrays: map[string]bool{}}
	unit := minic.NewAST(minic.KTranslationUnit, srcloc.Pos{File: file, Line: 1})
	unit.Extra = "fortran"
	for !p.atEnd() {
		d, err := p.parseProgramUnit()
		if err != nil {
			return nil, err
		}
		if d != nil {
			unit.Add(d)
		}
	}
	return unit, nil
}

type fparser struct {
	lines  []Line
	idx    int
	file   string
	arrays map[string]bool // names declared with array shape
}

func (p *fparser) atEnd() bool { return p.idx >= len(p.lines) }

func (p *fparser) cur() Line { return p.lines[p.idx] }

func (p *fparser) advance() Line {
	l := p.lines[p.idx]
	p.idx++
	return l
}

func (p *fparser) errorf(pos srcloc.Pos, format string, args ...any) error {
	return fmt.Errorf("minifortran: %s: %s", pos, fmt.Sprintf(format, args...))
}

// firstWords returns the leading keyword/ident texts of a line.
func firstWords(l Line, n int) []string {
	var out []string
	for _, t := range l.Tokens {
		if t.Kind == minic.TokKeyword || t.Kind == minic.TokIdent {
			out = append(out, t.Text)
			if len(out) == n {
				break
			}
		} else {
			break
		}
	}
	return out
}

func lineStarts(l Line, words ...string) bool {
	got := firstWords(l, len(words))
	if len(got) < len(words) {
		return false
	}
	for i, w := range words {
		if got[i] != w {
			return false
		}
	}
	return true
}

func isEndLine(l Line, construct string) bool {
	if len(l.Tokens) == 0 || !l.Tokens[0].IsKeyword("end") {
		return false
	}
	if len(l.Tokens) == 1 {
		return true // bare "end"
	}
	return l.Tokens[1].Kind == minic.TokKeyword && l.Tokens[1].Text == construct
}

// --- program units ----------------------------------------------------------

func (p *fparser) parseProgramUnit() (*minic.ASTNode, error) {
	l := p.cur()
	switch {
	case l.Directive != "":
		p.advance()
		return p.directiveNode(l, nil), nil
	case lineStarts(l, "program"):
		return p.parseRoutine("program")
	case lineStarts(l, "module"):
		return p.parseModule()
	case lineStarts(l, "subroutine") || lineStarts(l, "pure", "subroutine") ||
		lineStarts(l, "elemental", "subroutine"):
		return p.parseRoutine("subroutine")
	case lineStarts(l, "function") || lineStarts(l, "pure", "function") ||
		lineStarts(l, "elemental", "function"):
		return p.parseRoutine("function")
	case lineStarts(l, "use"):
		p.advance()
		n := minic.NewAST(minic.KUsingDecl, l.Pos)
		if len(l.Tokens) > 1 {
			n.Name = l.Tokens[1].Text
		}
		return n, nil
	default:
		return nil, p.errorf(l.Pos, "expected program unit, found %q", lineText(l))
	}
}

func lineText(l Line) string {
	if l.Directive != "" {
		return l.Directive
	}
	var parts []string
	for _, t := range l.Tokens {
		parts = append(parts, t.Text)
	}
	return strings.Join(parts, " ")
}

func (p *fparser) parseModule() (*minic.ASTNode, error) {
	l := p.advance()
	n := minic.NewAST(minic.KNamespaceDecl, l.Pos)
	if len(l.Tokens) > 1 {
		n.Name = l.Tokens[1].Text
	}
	for !p.atEnd() {
		cur := p.cur()
		if isEndLine(cur, "module") {
			p.advance()
			return n, nil
		}
		if lineStarts(cur, "contains") {
			p.advance()
			continue
		}
		if lineStarts(cur, "subroutine") || lineStarts(cur, "function") ||
			lineStarts(cur, "pure") || lineStarts(cur, "elemental") {
			sub, err := p.parseProgramUnit()
			if err != nil {
				return nil, err
			}
			n.Add(sub)
			continue
		}
		// module-level declarations and statements
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			n.Add(s)
		}
	}
	return nil, p.errorf(l.Pos, "unterminated module")
}

// parseRoutine parses program/subroutine/function units into FunctionDecl.
func (p *fparser) parseRoutine(kind string) (*minic.ASTNode, error) {
	l := p.advance()
	fn := minic.NewAST(minic.KFunctionDecl, l.Pos)
	fn.Extra = kind
	i := 0
	// skip pure/elemental prefix and the construct keyword
	for i < len(l.Tokens) && l.Tokens[i].Kind == minic.TokKeyword {
		if l.Tokens[i].Text == kind {
			i++
			break
		}
		i++
	}
	if i < len(l.Tokens) && l.Tokens[i].Kind == minic.TokIdent {
		fn.Name = l.Tokens[i].Text
		i++
	}
	// dummy arguments
	if i < len(l.Tokens) && l.Tokens[i].IsPunct("(") {
		i++
		for i < len(l.Tokens) && !l.Tokens[i].IsPunct(")") {
			if l.Tokens[i].Kind == minic.TokIdent {
				pd := minic.NewAST(minic.KParmVarDecl, l.Tokens[i].Pos)
				pd.Name = l.Tokens[i].Text
				fn.Add(pd)
			}
			i++
		}
	}
	body := minic.NewAST(minic.KCompoundStmt, l.Pos)
	savedArrays := p.arrays
	p.arrays = map[string]bool{}
	for k, v := range savedArrays {
		p.arrays[k] = v
	}
	for !p.atEnd() {
		cur := p.cur()
		if isEndLine(cur, kind) || (len(cur.Tokens) == 1 && cur.Tokens[0].IsKeyword("end")) {
			p.advance()
			fn.Add(body)
			p.arrays = savedArrays
			return fn, nil
		}
		if lineStarts(cur, "contains") {
			p.advance()
			for !p.atEnd() && !isEndLine(p.cur(), kind) {
				sub, err := p.parseProgramUnit()
				if err != nil {
					return nil, err
				}
				fn.Add(sub)
			}
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			body.Add(s)
		}
	}
	return nil, p.errorf(l.Pos, "unterminated %s", kind)
}

// --- statements -------------------------------------------------------------

func (p *fparser) parseStmt() (*minic.ASTNode, error) {
	l := p.cur()
	switch {
	case l.Directive != "":
		p.advance()
		return p.parseDirective(l)
	case lineStarts(l, "implicit", "none"):
		p.advance()
		return nil, nil
	case lineStarts(l, "use"):
		p.advance()
		n := minic.NewAST(minic.KUsingDecl, l.Pos)
		if len(l.Tokens) > 1 {
			n.Name = l.Tokens[1].Text
		}
		return n, nil
	case isDeclLine(l):
		p.advance()
		return p.parseDeclLine(l)
	case lineStarts(l, "do"):
		return p.parseDo()
	case lineStarts(l, "if"):
		return p.parseIf()
	case lineStarts(l, "else"):
		return nil, p.errorf(l.Pos, "unexpected else")
	case lineStarts(l, "call"):
		p.advance()
		e := &exprParser{toks: l.Tokens[1:], arrays: p.arrays, forceCall: true}
		callee, err := e.parse()
		if err != nil {
			return nil, p.errorf(l.Pos, "%v", err)
		}
		return minic.NewAST(minic.KExprStmt, l.Pos, callee), nil
	case lineStarts(l, "allocate") || lineStarts(l, "deallocate"):
		p.advance()
		name := l.Tokens[0].Text
		call := minic.NewAST(minic.KCallExpr, l.Pos)
		ref := minic.NewAST(minic.KDeclRefExpr, l.Pos)
		ref.Name = name
		call.Add(ref)
		return minic.NewAST(minic.KExprStmt, l.Pos, call), nil
	case lineStarts(l, "print"):
		p.advance()
		call := minic.NewAST(minic.KCallExpr, l.Pos)
		ref := minic.NewAST(minic.KDeclRefExpr, l.Pos)
		ref.Name = "print"
		call.Add(ref)
		return minic.NewAST(minic.KExprStmt, l.Pos, call), nil
	case lineStarts(l, "return") || lineStarts(l, "stop"):
		p.advance()
		return minic.NewAST(minic.KReturnStmt, l.Pos), nil
	case lineStarts(l, "exit"):
		p.advance()
		return minic.NewAST(minic.KBreakStmt, l.Pos), nil
	case lineStarts(l, "cycle"):
		p.advance()
		return minic.NewAST(minic.KContinueStmt, l.Pos), nil
	default:
		// assignment or bare expression statement
		p.advance()
		return p.parseAssignmentLine(l)
	}
}

// isDeclLine reports whether the line is a type declaration.
func isDeclLine(l Line) bool {
	if len(l.Tokens) == 0 || l.Tokens[0].Kind != minic.TokKeyword {
		return false
	}
	switch l.Tokens[0].Text {
	case "integer", "real", "logical", "character":
		return true
	}
	return false
}

// parseDeclLine parses `real(8), intent(in), allocatable :: a(:), b(n), s`.
func (p *fparser) parseDeclLine(l Line) (*minic.ASTNode, error) {
	toks := l.Tokens
	i := 0
	base := toks[i].Text
	i++
	kind := ""
	if i < len(toks) && toks[i].IsPunct("(") {
		depth := 0
		for ; i < len(toks); i++ {
			if toks[i].IsPunct("(") {
				depth++
			} else if toks[i].IsPunct(")") {
				depth--
				if depth == 0 {
					i++
					break
				}
			} else if toks[i].Kind == minic.TokNumber {
				kind = toks[i].Text
			}
		}
	}
	var attrs []string
	for i < len(toks) && toks[i].IsPunct(",") {
		i++
		if i < len(toks) && (toks[i].Kind == minic.TokKeyword || toks[i].Kind == minic.TokIdent) {
			attrs = append(attrs, toks[i].Text)
			i++
			// skip attribute arguments like intent(in), dimension(:)
			if i < len(toks) && toks[i].IsPunct("(") {
				depth := 0
				for ; i < len(toks); i++ {
					if toks[i].IsPunct("(") {
						depth++
					} else if toks[i].IsPunct(")") {
						depth--
						if depth == 0 {
							i++
							break
						}
					}
				}
			}
		}
	}
	if i < len(toks) && toks[i].IsPunct("::") {
		i++
	}
	ds := minic.NewAST(minic.KDeclStmt, l.Pos)
	allocatable := false
	dimension := false
	for _, a := range attrs {
		if a == "allocatable" {
			allocatable = true
		}
		if a == "dimension" {
			dimension = true
		}
	}
	// declarators
	for i < len(toks) {
		if toks[i].IsPunct(",") {
			i++
			continue
		}
		if toks[i].Kind != minic.TokIdent {
			i++
			continue
		}
		v := minic.NewAST(minic.KVarDecl, toks[i].Pos)
		v.Name = toks[i].Text
		ty := minic.NewAST(minic.KBuiltinType, toks[i].Pos)
		ty.Extra = base
		if kind != "" {
			ty.Extra = base + kind
		}
		v.Add(ty)
		i++
		isArray := allocatable || dimension
		if i < len(toks) && toks[i].IsPunct("(") {
			isArray = true
			depth := 0
			for ; i < len(toks); i++ {
				if toks[i].IsPunct("(") {
					depth++
				} else if toks[i].IsPunct(")") {
					depth--
					if depth == 0 {
						i++
						break
					}
				}
			}
		}
		if isArray {
			p.arrays[v.Name] = true
			v.Add(minic.NewAST(minic.KPointerType, v.Pos)) // array-of shape marker
		}
		// initialiser: name = expr (up to next top-level comma)
		if i < len(toks) && toks[i].IsPunct("=") {
			i++
			start := i
			depth := 0
			for ; i < len(toks); i++ {
				if toks[i].IsPunct("(") {
					depth++
				} else if toks[i].IsPunct(")") {
					depth--
				} else if toks[i].IsPunct(",") && depth == 0 {
					break
				}
			}
			e := &exprParser{toks: toks[start:i], arrays: p.arrays}
			init, err := e.parse()
			if err != nil {
				return nil, p.errorf(l.Pos, "%v", err)
			}
			v.Add(init)
		}
		ds.Add(v)
	}
	return ds, nil
}

// parseDo handles `do i = 1, n[, step]`, `do while (cond)`, and
// `do concurrent (i = 1:n)`.
func (p *fparser) parseDo() (*minic.ASTNode, error) {
	l := p.advance()
	toks := l.Tokens
	if len(toks) >= 2 && toks[1].IsKeyword("while") {
		// do while (cond)
		e := &exprParser{toks: toks[2:], arrays: p.arrays}
		cond, err := e.parse()
		if err != nil {
			return nil, p.errorf(l.Pos, "%v", err)
		}
		body, err := p.parseBlockUntilEndDo(l.Pos)
		if err != nil {
			return nil, err
		}
		return minic.NewAST(minic.KWhileStmt, l.Pos, cond, body), nil
	}
	concurrent := len(toks) >= 2 && toks[1].IsKeyword("concurrent")
	// find `ident = lo , hi [, step]` or concurrent `( ident = lo : hi )`
	i := 1
	if concurrent {
		i = 2
	}
	// skip optional (
	for i < len(toks) && toks[i].IsPunct("(") {
		i++
	}
	if i >= len(toks) || toks[i].Kind != minic.TokIdent {
		return nil, p.errorf(l.Pos, "malformed do header: %q", lineText(l))
	}
	ivar := toks[i].Text
	i++
	if i < len(toks) && toks[i].IsPunct("=") {
		i++
	}
	sep := ","
	if concurrent {
		sep = ":"
	}
	loToks, hiToks, stepToks := splitBounds(toks[i:], sep)
	loE := &exprParser{toks: loToks, arrays: p.arrays}
	lo, err := loE.parse()
	if err != nil {
		return nil, p.errorf(l.Pos, "%v", err)
	}
	hiE := &exprParser{toks: hiToks, arrays: p.arrays}
	hi, err := hiE.parse()
	if err != nil {
		return nil, p.errorf(l.Pos, "%v", err)
	}
	body, err := p.parseBlockUntilEndDo(l.Pos)
	if err != nil {
		return nil, err
	}

	// synthesize the canonical ForStmt shape: init, cond, inc, body
	n := minic.NewAST(minic.KForStmt, l.Pos)
	if concurrent {
		n.Extra = "concurrent"
	}
	iv := minic.NewAST(minic.KVarDecl, l.Pos)
	iv.Name = ivar
	ity := minic.NewAST(minic.KBuiltinType, l.Pos)
	ity.Extra = "integer"
	iv.Add(ity, lo)
	init := minic.NewAST(minic.KDeclStmt, l.Pos, iv)

	ref := minic.NewAST(minic.KDeclRefExpr, l.Pos)
	ref.Name = ivar
	cond := minic.NewAST(minic.KBinaryOperator, l.Pos, ref, hi)
	cond.Extra = "<="

	ref2 := minic.NewAST(minic.KDeclRefExpr, l.Pos)
	ref2.Name = ivar
	var inc *minic.ASTNode
	if len(stepToks) > 0 {
		stepE := &exprParser{toks: stepToks, arrays: p.arrays}
		step, err := stepE.parse()
		if err != nil {
			return nil, p.errorf(l.Pos, "%v", err)
		}
		add := minic.NewAST(minic.KBinaryOperator, l.Pos, ref2, step)
		add.Extra = "+="
		inc = add
	} else {
		inc = minic.NewAST(minic.KUnaryOperator, l.Pos, ref2)
		inc.Extra = "++"
	}
	n.Add(init, cond, inc, body)
	return n, nil
}

// splitBounds splits `lo SEP hi [, step] [)]` token runs.
func splitBounds(toks []minic.Token, sep string) (lo, hi, step []minic.Token) {
	depth := 0
	part := 0
	for _, t := range toks {
		if t.IsPunct("(") {
			depth++
		}
		if t.IsPunct(")") {
			if depth == 0 {
				break // closing paren of do-concurrent header
			}
			depth--
		}
		if depth == 0 && (t.IsPunct(sep) || (part >= 1 && t.IsPunct(","))) {
			part++
			continue
		}
		switch part {
		case 0:
			lo = append(lo, t)
		case 1:
			hi = append(hi, t)
		default:
			step = append(step, t)
		}
	}
	return lo, hi, step
}

func (p *fparser) parseBlockUntilEndDo(pos srcloc.Pos) (*minic.ASTNode, error) {
	body := minic.NewAST(minic.KCompoundStmt, pos)
	for !p.atEnd() {
		cur := p.cur()
		if isEndLine(cur, "do") {
			p.advance()
			return body, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			body.Add(s)
		}
	}
	return nil, p.errorf(pos, "unterminated do")
}

func (p *fparser) parseIf() (*minic.ASTNode, error) {
	l := p.advance()
	toks := l.Tokens
	// extract (cond)
	i := 1
	if i >= len(toks) || !toks[i].IsPunct("(") {
		return nil, p.errorf(l.Pos, "malformed if")
	}
	depth := 0
	start := i + 1
	condEnd := -1
	for ; i < len(toks); i++ {
		if toks[i].IsPunct("(") {
			depth++
		} else if toks[i].IsPunct(")") {
			depth--
			if depth == 0 {
				condEnd = i
				break
			}
		}
	}
	if condEnd < 0 {
		return nil, p.errorf(l.Pos, "unbalanced if condition")
	}
	e := &exprParser{toks: toks[start:condEnd], arrays: p.arrays}
	cond, err := e.parse()
	if err != nil {
		return nil, p.errorf(l.Pos, "%v", err)
	}
	rest := toks[condEnd+1:]
	if len(rest) > 0 && rest[0].IsKeyword("then") {
		// block if
		thenB := minic.NewAST(minic.KCompoundStmt, l.Pos)
		n := minic.NewAST(minic.KIfStmt, l.Pos, cond, thenB)
		curBlock := thenB
		for !p.atEnd() {
			cur := p.cur()
			if isEndLine(cur, "if") {
				p.advance()
				return n, nil
			}
			if lineStarts(cur, "else") {
				p.advance()
				elseB := minic.NewAST(minic.KCompoundStmt, cur.Pos)
				n.Add(elseB)
				curBlock = elseB
				continue
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if s != nil {
				curBlock.Add(s)
			}
		}
		return nil, p.errorf(l.Pos, "unterminated if")
	}
	// one-line if: `if (cond) stmt`
	inner, err := p.parseAssignmentTokens(rest, l.Pos)
	if err != nil {
		return nil, err
	}
	return minic.NewAST(minic.KIfStmt, l.Pos, cond, inner), nil
}

// parseAssignmentLine parses `designator = expr` or a bare call expression.
func (p *fparser) parseAssignmentLine(l Line) (*minic.ASTNode, error) {
	return p.parseAssignmentTokens(l.Tokens, l.Pos)
}

func (p *fparser) parseAssignmentTokens(toks []minic.Token, pos srcloc.Pos) (*minic.ASTNode, error) {
	if len(toks) == 0 {
		return nil, nil
	}
	// special one-line statements reachable from one-line if
	if toks[0].IsKeyword("exit") {
		return minic.NewAST(minic.KBreakStmt, pos), nil
	}
	if toks[0].IsKeyword("cycle") {
		return minic.NewAST(minic.KContinueStmt, pos), nil
	}
	if toks[0].IsKeyword("call") {
		e := &exprParser{toks: toks[1:], arrays: p.arrays, forceCall: true}
		callee, err := e.parse()
		if err != nil {
			return nil, p.errorf(pos, "%v", err)
		}
		return minic.NewAST(minic.KExprStmt, pos, callee), nil
	}
	// find top-level `=`
	depth := 0
	eq := -1
	for i, t := range toks {
		if t.IsPunct("(") {
			depth++
		} else if t.IsPunct(")") {
			depth--
		} else if t.IsPunct("=") && depth == 0 {
			eq = i
			break
		}
	}
	if eq < 0 {
		e := &exprParser{toks: toks, arrays: p.arrays}
		ex, err := e.parse()
		if err != nil {
			return nil, p.errorf(pos, "%v", err)
		}
		return minic.NewAST(minic.KExprStmt, pos, ex), nil
	}
	le := &exprParser{toks: toks[:eq], arrays: p.arrays}
	lhs, err := le.parse()
	if err != nil {
		return nil, p.errorf(pos, "%v", err)
	}
	re := &exprParser{toks: toks[eq+1:], arrays: p.arrays}
	rhs, err := re.parse()
	if err != nil {
		return nil, p.errorf(pos, "%v", err)
	}
	assign := minic.NewAST(minic.KBinaryOperator, pos, lhs, rhs)
	assign.Extra = "="
	// whole-array or section assignment: a distinct semantic form — the
	// frontend scalarises it into an implicit loop (GENERIC represents
	// these with dedicated array-expression nodes).
	if isArrayValued(lhs) {
		assign.Extra = "=.array"
	}
	return minic.NewAST(minic.KExprStmt, pos, assign), nil
}

func isArrayValued(e *minic.ASTNode) bool {
	switch e.Kind {
	case "ArraySectionExpr":
		return true
	case minic.KDeclRefExpr:
		return e.Extra == "array"
	}
	return false
}

// parseDirective converts a `!$omp` directive into the structured directive
// node (attached to the following statement when one exists), and drops
// `!$acc` directives from the AST entirely, matching GFortran's behaviour
// when OpenACC lowering is inactive.
func (p *fparser) parseDirective(l Line) (*minic.ASTNode, error) {
	if strings.HasPrefix(l.Directive, "!$acc") {
		return nil, nil // perceived-only: visible in T_src, absent from T_sem
	}
	text := "#pragma " + strings.TrimPrefix(strings.TrimPrefix(l.Directive, "!$"), " ")
	if strings.HasPrefix(l.Directive, "!$omp end") {
		return nil, nil // region close marker
	}
	var body *minic.ASTNode
	if !p.atEnd() {
		cur := p.cur()
		if lineStarts(cur, "do") {
			b, err := p.parseDo()
			if err != nil {
				return nil, err
			}
			body = b
		} else if cur.Directive == "" && !lineStarts(cur, "end") {
			b, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			body = b
		}
	}
	return minic.ParsePragmaText(text, l.Pos, body), nil
}

func (p *fparser) directiveNode(l Line, body *minic.ASTNode) *minic.ASTNode {
	n, err := p.parseDirectiveStandalone(l, body)
	if err != nil || n == nil {
		return minic.NewAST(minic.KNullStmt, l.Pos)
	}
	return n
}

func (p *fparser) parseDirectiveStandalone(l Line, body *minic.ASTNode) (*minic.ASTNode, error) {
	if strings.HasPrefix(l.Directive, "!$acc") {
		return nil, nil
	}
	text := "#pragma " + strings.TrimPrefix(l.Directive, "!$")
	return minic.ParsePragmaText(text, l.Pos, body), nil
}

// --- expressions ------------------------------------------------------------

type exprParser struct {
	toks      []minic.Token
	pos       int
	arrays    map[string]bool
	forceCall bool // first primary is a call even without array knowledge
}

func (e *exprParser) cur() minic.Token {
	if e.pos < len(e.toks) {
		return e.toks[e.pos]
	}
	return minic.Token{Kind: minic.TokEOF}
}

func (e *exprParser) next() minic.Token {
	t := e.cur()
	e.pos++
	return t
}

func (e *exprParser) parse() (*minic.ASTNode, error) {
	n, err := e.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if e.pos < len(e.toks) {
		return nil, fmt.Errorf("trailing tokens at %s", e.cur().Pos)
	}
	return n, nil
}

var fortranPrec = map[string]int{
	".or.": 1, ".and.": 2,
	"==": 3, "/=": 3, "<": 3, ">": 3, "<=": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5,
	"**": 6,
}

// peekOp recognises an operator at the cursor, including the dotted logical
// operators which arrive as three tokens.
func (e *exprParser) peekOp() (string, int) {
	t := e.cur()
	if t.Kind == minic.TokPunct {
		if t.Text == "." && e.pos+2 < len(e.toks) &&
			e.toks[e.pos+1].Kind == minic.TokIdent && e.toks[e.pos+2].IsPunct(".") {
			op := "." + e.toks[e.pos+1].Text + "."
			if _, ok := fortranPrec[op]; ok {
				return op, 3
			}
		}
		if _, ok := fortranPrec[t.Text]; ok {
			return t.Text, 1
		}
	}
	return "", 0
}

func (e *exprParser) parseBinary(minPrec int) (*minic.ASTNode, error) {
	lhs, err := e.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, width := e.peekOp()
		if op == "" || fortranPrec[op] < minPrec {
			return lhs, nil
		}
		pos := e.cur().Pos
		e.pos += width
		nextPrec := fortranPrec[op] + 1
		if op == "**" {
			nextPrec = fortranPrec[op] // right associative
		}
		rhs, err := e.parseBinary(nextPrec)
		if err != nil {
			return nil, err
		}
		n := minic.NewAST(minic.KBinaryOperator, pos, lhs, rhs)
		n.Extra = op
		lhs = n
	}
}

func (e *exprParser) parseUnary() (*minic.ASTNode, error) {
	t := e.cur()
	if t.IsPunct("-") || t.IsPunct("+") {
		e.next()
		operand, err := e.parseUnary()
		if err != nil {
			return nil, err
		}
		n := minic.NewAST(minic.KUnaryOperator, t.Pos, operand)
		n.Extra = t.Text
		return n, nil
	}
	if t.IsPunct(".") && e.pos+2 < len(e.toks) && e.toks[e.pos+1].Text == "not" {
		pos := t.Pos
		e.pos += 3
		operand, err := e.parseUnary()
		if err != nil {
			return nil, err
		}
		n := minic.NewAST(minic.KUnaryOperator, pos, operand)
		n.Extra = "!"
		return n, nil
	}
	return e.parsePrimary()
}

func (e *exprParser) parsePrimary() (*minic.ASTNode, error) {
	t := e.next()
	switch {
	case t.Kind == minic.TokNumber:
		if strings.ContainsAny(t.Text, ".ed") {
			n := minic.NewAST(minic.KFloatingLiteral, t.Pos)
			n.Extra = t.Text
			return n, nil
		}
		n := minic.NewAST(minic.KIntegerLiteral, t.Pos)
		n.Extra = t.Text
		return n, nil
	case t.Kind == minic.TokString:
		return minic.NewAST(minic.KStringLiteral, t.Pos), nil
	case t.IsPunct("("):
		inner, err := e.parseBinary(0)
		if err != nil {
			return nil, err
		}
		if !e.cur().IsPunct(")") {
			return nil, fmt.Errorf("expected ) at %s", e.cur().Pos)
		}
		e.next()
		return minic.NewAST(minic.KParenExpr, t.Pos, inner), nil
	case t.Kind == minic.TokIdent || t.Kind == minic.TokKeyword:
		name := t.Text
		if !e.cur().IsPunct("(") {
			ref := minic.NewAST(minic.KDeclRefExpr, t.Pos)
			ref.Name = name
			if e.arrays[name] {
				ref.Extra = "array"
			}
			return ref, nil
		}
		e.next() // (
		var args []*minic.ASTNode
		section := false
		for !e.cur().IsPunct(")") && e.cur().Kind != minic.TokEOF {
			if e.cur().IsPunct(":") {
				// bare or bounded section marker
				section = true
				e.next()
				continue
			}
			arg, err := e.parseBinary(0)
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
			if e.cur().IsPunct(",") || e.cur().IsPunct(":") {
				if e.cur().IsPunct(":") {
					section = true
				}
				e.next()
			}
		}
		if e.cur().Kind == minic.TokEOF {
			return nil, fmt.Errorf("unterminated argument list for %q", name)
		}
		e.next() // )
		isArray := e.arrays[name]
		switch {
		case section:
			n := minic.NewAST("ArraySectionExpr", t.Pos)
			n.Name = name
			n.Add(args...)
			return n, nil
		case isArray && !e.forceCallFirst():
			sub := minic.NewAST(minic.KDeclRefExpr, t.Pos)
			sub.Name = name
			n := minic.NewAST(minic.KArraySubscript, t.Pos, sub)
			n.Add(args...)
			return n, nil
		default:
			ref := minic.NewAST(minic.KDeclRefExpr, t.Pos)
			ref.Name = name
			call := minic.NewAST(minic.KCallExpr, t.Pos, ref)
			call.Add(args...)
			return call, nil
		}
	default:
		return nil, fmt.Errorf("unexpected token %s", t)
	}
}

// forceCallFirst consumes the forceCall flag (used for `call sub(...)`
// statements where the name is a subroutine even if not declared).
func (e *exprParser) forceCallFirst() bool {
	if e.forceCall {
		e.forceCall = false
		return true
	}
	return false
}
