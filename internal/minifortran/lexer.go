// Package minifortran implements the Fortran-like mini-language frontend,
// the in-repo substitute for GFortran (see DESIGN.md). It covers the subset
// the Fortran BabelStream ports exercise: programs, modules, subroutines
// and functions, typed declarations with attributes, do / do concurrent
// loops, whole-array assignment, allocate/deallocate, and the directive
// comments `!$omp` (OpenMP, including taskloop) and `!$acc` (OpenACC,
// including the array-syntax variant).
//
// Faithful to the paper's findings on GCC:
//
//   - `!$omp` directives become structured semantic AST nodes ("we found
//     GCC to also have OpenMP tokens in the AST").
//   - `!$acc` directives are dropped by the frontend — "the OpenACC model,
//     including the array variant, did not introduce extra tokens related
//     to parallelism", consistent with the single-threaded performance and
//     quality-of-implementation issue in GCC noted by the OpenACC port's
//     authors. They remain visible in T_src and the perceived metrics.
//
// The package reuses the uniform AST of package minic (GIMPLE and ClangAST
// are not comparable across compilers, and the framework never compares
// Fortran trees with C++ trees; sharing the node shape is an implementation
// convenience).
package minifortran

import (
	"strings"

	"silvervale/internal/minic"
	"silvervale/internal/srcloc"
)

// Line is one logical Fortran line: continuations joined, tokens scanned.
type Line struct {
	Tokens []minic.Token
	// Directive holds the lowercased directive text when the line is a
	// `!$omp` / `!$acc` directive comment, otherwise "".
	Directive string
	Pos       srcloc.Pos
}

var fortranKeywords = map[string]bool{
	"program": true, "module": true, "contains": true, "subroutine": true,
	"function": true, "end": true, "implicit": true, "none": true,
	"integer": true, "real": true, "logical": true, "character": true,
	"parameter": true, "allocatable": true, "intent": true, "dimension": true,
	"do": true, "concurrent": true, "if": true, "then": true, "else": true,
	"call": true, "return": true, "allocate": true, "deallocate": true,
	"print": true, "use": true, "result": true, "while": true, "exit": true,
	"cycle": true, "stop": true, "in": true, "out": true, "inout": true,
	"kind": true, "pure": true, "elemental": true,
}

// LexLines scans source into logical lines of tokens. Keywords are
// case-insensitive and normalised to lower case; plain comments are
// dropped; directive comments are preserved as directive lines.
func LexLines(src, file string) []Line {
	var out []Line
	raw := strings.Split(src, "\n")
	i := 0
	for i < len(raw) {
		startLine := i + 1
		text := raw[i]
		// join continuation lines ending with &
		for {
			trimmed := strings.TrimRight(stripComment(text), " \t")
			if !strings.HasSuffix(trimmed, "&") || i+1 >= len(raw) {
				break
			}
			i++
			text = strings.TrimSuffix(trimmed, "&") + " " + raw[i]
		}
		i++
		pos := srcloc.Pos{File: file, Line: startLine, Col: 1}
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "!") {
			lower := strings.ToLower(trimmed)
			if strings.HasPrefix(lower, "!$omp") || strings.HasPrefix(lower, "!$acc") {
				out = append(out, Line{
					Directive: strings.Join(strings.Fields(lower), " "),
					Pos:       pos,
				})
			}
			continue // plain comment
		}
		stripped := stripComment(text)
		toks := lexLine(stripped, file, startLine)
		if len(toks) == 0 {
			continue
		}
		out = append(out, Line{Tokens: toks, Pos: pos})
	}
	return out
}

// stripComment removes a trailing ! comment outside string literals.
func stripComment(line string) string {
	inStr := byte(0)
	for i := 0; i < len(line); i++ {
		c := line[i]
		if inStr != 0 {
			if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '!':
			return line[:i]
		}
	}
	return line
}

var fortranMultiPunct = []string{"::", "**", "==", "/=", "<=", ">=", "=>"}

func lexLine(text, file string, lineNo int) []minic.Token {
	var toks []minic.Token
	i := 0
	col := func() int { return i + 1 }
	for i < len(text) {
		c := text[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case isLetter(c) || c == '_':
			start := i
			for i < len(text) && (isLetter(text[i]) || isDigit(text[i]) || text[i] == '_') {
				i++
			}
			word := text[start:i]
			lower := strings.ToLower(word)
			pos := srcloc.Pos{File: file, Line: lineNo, Col: start + 1}
			if fortranKeywords[lower] {
				toks = append(toks, minic.Token{Kind: minic.TokKeyword, Text: lower, Pos: pos})
			} else {
				toks = append(toks, minic.Token{Kind: minic.TokIdent, Text: lower, Pos: pos})
			}
		case isDigit(c) || (c == '.' && i+1 < len(text) && isDigit(text[i+1])):
			start := i
			for i < len(text) && (isDigit(text[i]) || text[i] == '.' || text[i] == '_' ||
				text[i] == 'e' || text[i] == 'E' || text[i] == 'd' || text[i] == 'D' ||
				((text[i] == '+' || text[i] == '-') && i > start &&
					(text[i-1] == 'e' || text[i-1] == 'E' || text[i-1] == 'd' || text[i-1] == 'D'))) {
				// Fortran real kinds: 1.0d0, 2.5e-3, kind suffix 1.0_8
				if text[i] == '.' && i+1 < len(text) && isLetter(text[i+1]) && !isExpChar(text[i+1]) {
					break // `1.and.` style boundaries (not in our dialect, but safe)
				}
				i++
			}
			toks = append(toks, minic.Token{Kind: minic.TokNumber, Text: strings.ToLower(text[start:i]),
				Pos: srcloc.Pos{File: file, Line: lineNo, Col: start + 1}})
		case c == '\'' || c == '"':
			start := i
			quote := c
			i++
			for i < len(text) && text[i] != quote {
				i++
			}
			if i < len(text) {
				i++
			}
			toks = append(toks, minic.Token{Kind: minic.TokString, Text: text[start:i],
				Pos: srcloc.Pos{File: file, Line: lineNo, Col: start + 1}})
		default:
			pos := srcloc.Pos{File: file, Line: lineNo, Col: col()}
			matched := false
			for _, p := range fortranMultiPunct {
				if strings.HasPrefix(text[i:], p) {
					toks = append(toks, minic.Token{Kind: minic.TokPunct, Text: p, Pos: pos})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				toks = append(toks, minic.Token{Kind: minic.TokPunct, Text: string(c), Pos: pos})
				i++
			}
		}
	}
	return toks
}

func isLetter(c byte) bool  { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isDigit(c byte) bool   { return c >= '0' && c <= '9' }
func isExpChar(c byte) bool { return c == 'e' || c == 'E' || c == 'd' || c == 'D' }
