package minifortran

import (
	"strings"
	"testing"

	"silvervale/internal/minic"
	"silvervale/internal/tree"
)

const streamTriad = `
program stream
  implicit none
  integer, parameter :: n = 1024
  real(8) :: a(n), b(n), c(n)
  real(8) :: scalar
  integer :: i
  scalar = 0.4d0
  do i = 1, n
    a(i) = b(i) + scalar * c(i)
  end do
end program stream
`

func parse(t *testing.T, src string) *minic.ASTNode {
	t.Helper()
	unit, err := ParseUnit(src, "test.f90")
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return unit
}

func countKind(n *minic.ASTNode, kind string) int {
	c := 0
	n.Walk(func(m *minic.ASTNode) bool {
		if m.Kind == kind {
			c++
		}
		return true
	})
	return c
}

func findKind(n *minic.ASTNode, kind string) *minic.ASTNode {
	var out *minic.ASTNode
	n.Walk(func(m *minic.ASTNode) bool {
		if out == nil && m.Kind == kind {
			out = m
		}
		return out == nil
	})
	return out
}

func TestParseProgram(t *testing.T) {
	unit := parse(t, streamTriad)
	if unit.Extra != "fortran" {
		t.Fatal("unit not marked fortran")
	}
	fn := findKind(unit, minic.KFunctionDecl)
	if fn == nil || fn.Name != "stream" || fn.Extra != "program" {
		t.Fatalf("program unit = %v", fn)
	}
	if countKind(unit, minic.KForStmt) != 1 {
		t.Fatal("do loop missing")
	}
	if countKind(unit, minic.KArraySubscript) != 3 {
		t.Fatalf("array refs = %d, want 3", countKind(unit, minic.KArraySubscript))
	}
}

func TestParseDoLoopShape(t *testing.T) {
	unit := parse(t, streamTriad)
	loop := findKind(unit, minic.KForStmt)
	if len(loop.Children) != 4 {
		t.Fatalf("ForStmt children = %d, want 4 (init, cond, inc, body)", len(loop.Children))
	}
	if loop.Children[0].Kind != minic.KDeclStmt {
		t.Fatalf("init = %v", loop.Children[0].Kind)
	}
	if loop.Children[1].Kind != minic.KBinaryOperator || loop.Children[1].Extra != "<=" {
		t.Fatalf("cond = %v %v", loop.Children[1].Kind, loop.Children[1].Extra)
	}
	if loop.Children[3].Kind != minic.KCompoundStmt {
		t.Fatalf("body = %v", loop.Children[3].Kind)
	}
}

func TestParseDoConcurrent(t *testing.T) {
	unit := parse(t, `
program p
  real(8) :: a(100)
  integer :: i
  do concurrent (i = 1:100)
    a(i) = 1.0d0
  end do
end program p
`)
	loop := findKind(unit, minic.KForStmt)
	if loop == nil || loop.Extra != "concurrent" {
		t.Fatalf("do concurrent not marked: %v", loop)
	}
}

func TestParseDoWithStep(t *testing.T) {
	unit := parse(t, `
program p
  integer :: i, s
  s = 0
  do i = 1, 100, 2
    s = s + i
  end do
end program p
`)
	loop := findKind(unit, minic.KForStmt)
	if loop.Children[2].Kind != minic.KBinaryOperator || loop.Children[2].Extra != "+=" {
		t.Fatalf("step increment = %v %q", loop.Children[2].Kind, loop.Children[2].Extra)
	}
}

func TestParseDoWhile(t *testing.T) {
	unit := parse(t, `
program p
  integer :: i
  i = 0
  do while (i < 10)
    i = i + 1
  end do
end program p
`)
	if findKind(unit, minic.KWhileStmt) == nil {
		t.Fatal("do while missing")
	}
}

func TestParseArrayAssignmentMarked(t *testing.T) {
	unit := parse(t, `
program p
  real(8) :: a(100), b(100), c(100)
  real(8) :: s
  a = b + s * c
  s = 1.0d0
end program p
`)
	var arrayAssign, scalarAssign bool
	unit.Walk(func(m *minic.ASTNode) bool {
		if m.Kind == minic.KBinaryOperator {
			if m.Extra == "=.array" {
				arrayAssign = true
			}
			if m.Extra == "=" {
				scalarAssign = true
			}
		}
		return true
	})
	if !arrayAssign {
		t.Fatal("whole-array assignment must carry a distinct semantic form")
	}
	if !scalarAssign {
		t.Fatal("scalar assignment missing")
	}
}

func TestParseArraySection(t *testing.T) {
	unit := parse(t, `
program p
  real(8) :: a(100), b(100)
  a(:) = b(1:50)
end program p
`)
	if countKind(unit, "ArraySectionExpr") != 2 {
		t.Fatalf("sections = %d, want 2", countKind(unit, "ArraySectionExpr"))
	}
}

func TestParseOMPDirective(t *testing.T) {
	unit := parse(t, `
program p
  real(8) :: a(100), b(100)
  integer :: i
  !$omp parallel do
  do i = 1, 100
    a(i) = b(i)
  end do
  !$omp end parallel do
end program p
`)
	d := findKind(unit, minic.KOMPDirective)
	if d == nil {
		t.Fatal("OpenMP directive missing from Fortran AST")
	}
	if d.Extra != "omp_parallel_do" {
		t.Fatalf("directive = %q", d.Extra)
	}
	if findKind(d, minic.KForStmt) == nil {
		t.Fatal("loop not associated with directive")
	}
}

func TestParseOMPReduction(t *testing.T) {
	unit := parse(t, `
program p
  real(8) :: a(100), s
  integer :: i
  s = 0.0d0
  !$omp parallel do reduction(+:s)
  do i = 1, 100
    s = s + a(i)
  end do
end program p
`)
	d := findKind(unit, minic.KOMPDirective)
	var reduction *minic.ASTNode
	d.Walk(func(m *minic.ASTNode) bool {
		if m.Kind == minic.KOMPClause && m.Extra == "reduction" {
			reduction = m
		}
		return true
	})
	if reduction == nil {
		t.Fatal("reduction clause missing")
	}
}

func TestOpenACCDroppedFromAST(t *testing.T) {
	withACC := parse(t, `
program p
  real(8) :: a(100), b(100)
  integer :: i
  !$acc parallel loop
  do i = 1, 100
    a(i) = b(i)
  end do
  !$acc end parallel loop
end program p
`)
	plain := parse(t, `
program p
  real(8) :: a(100), b(100)
  integer :: i
  do i = 1, 100
    a(i) = b(i)
  end do
end program p
`)
	// GCC-faithful: OpenACC introduces no parallel tokens at the T_sem level
	a := minic.BuildSemTree(withACC)
	b := minic.BuildSemTree(plain)
	if !tree.Equal(a, b) {
		t.Fatalf("OpenACC must be invisible in T_sem:\n%s\nvs\n%s", a, b)
	}
}

func TestOpenACCVisibleInSrcTree(t *testing.T) {
	src := `
program p
  real(8) :: a(100)
  integer :: i
  !$acc parallel loop
  do i = 1, 100
    a(i) = 1.0d0
  end do
end program p
`
	st := BuildSrcTree(src, "p.f90")
	found := false
	st.Walk(func(n *tree.Node) bool {
		if strings.HasPrefix(n.Label, "directive-word:!$acc") {
			found = true
		}
		return true
	})
	if !found {
		t.Fatalf("OpenACC directive must remain visible in T_src:\n%s", st.Pretty())
	}
}

func TestParseSubroutineAndCall(t *testing.T) {
	unit := parse(t, `
module kernels
contains
  subroutine triad(a, b, c, s, n)
    integer, intent(in) :: n
    real(8), intent(inout) :: a(n)
    real(8), intent(in) :: b(n), c(n)
    real(8), intent(in) :: s
    integer :: i
    do i = 1, n
      a(i) = b(i) + s * c(i)
    end do
  end subroutine triad
end module kernels

program main
  use kernels
  real(8) :: x(10), y(10), z(10)
  call triad(x, y, z, 0.4d0, 10)
end program main
`)
	mod := findKind(unit, minic.KNamespaceDecl)
	if mod == nil || mod.Name != "kernels" {
		t.Fatalf("module = %v", mod)
	}
	sub := findKind(mod, minic.KFunctionDecl)
	if sub == nil || sub.Name != "triad" || sub.Extra != "subroutine" {
		t.Fatalf("subroutine = %v", sub)
	}
	if countKind(sub, minic.KParmVarDecl) != 5 {
		t.Fatalf("params = %d, want 5", countKind(sub, minic.KParmVarDecl))
	}
	call := findKind(unit, minic.KCallExpr)
	if call == nil {
		t.Fatal("call missing")
	}
}

func TestParseIfElse(t *testing.T) {
	unit := parse(t, `
program p
  integer :: x
  x = 5
  if (x > 3) then
    x = 1
  else
    x = 2
  end if
  if (x == 1) x = 0
end program p
`)
	if countKind(unit, minic.KIfStmt) != 2 {
		t.Fatalf("ifs = %d", countKind(unit, minic.KIfStmt))
	}
	blockIf := findKind(unit, minic.KIfStmt)
	if len(blockIf.Children) != 3 {
		t.Fatalf("block if children = %d, want 3 (cond, then, else)", len(blockIf.Children))
	}
}

func TestParseAllocate(t *testing.T) {
	unit := parse(t, `
program p
  real(8), allocatable :: a(:)
  allocate(a(1024))
  a(1) = 0.0d0
  deallocate(a)
end program p
`)
	calls := countKind(unit, minic.KCallExpr)
	if calls != 2 {
		t.Fatalf("allocate/deallocate calls = %d", calls)
	}
	// `a` is allocatable, so a(1) is a subscript, not a call
	if countKind(unit, minic.KArraySubscript) != 1 {
		t.Fatal("allocatable array subscript misparsed")
	}
}

func TestParseLogicalOps(t *testing.T) {
	unit := parse(t, `
program p
  integer :: i, n
  logical :: ok
  i = 1
  n = 2
  ok = i < n .and. n > 0 .or. .not. (i == 0)
end program p
`)
	ops := map[string]bool{}
	unit.Walk(func(m *minic.ASTNode) bool {
		if m.Kind == minic.KBinaryOperator {
			ops[m.Extra] = true
		}
		if m.Kind == minic.KUnaryOperator {
			ops[m.Extra] = true
		}
		return true
	})
	if !ops[".and."] || !ops[".or."] || !ops["!"] {
		t.Fatalf("logical ops = %v", ops)
	}
}

func TestParsePower(t *testing.T) {
	unit := parse(t, `
program p
  real(8) :: x
  x = 2.0d0 ** 3 ** 2
end program p
`)
	// right-associative: 2 ** (3 ** 2)
	var top *minic.ASTNode
	unit.Walk(func(m *minic.ASTNode) bool {
		if top == nil && m.Kind == minic.KBinaryOperator && m.Extra == "**" {
			top = m
		}
		return top == nil
	})
	if top == nil || top.Children[1].Kind != minic.KBinaryOperator {
		t.Fatal("** must be right associative")
	}
}

func TestParseContinuationLines(t *testing.T) {
	unit := parse(t, `
program p
  real(8) :: a, b, c, d
  a = b + &
      c + &
      d
end program p
`)
	if countKind(unit, minic.KBinaryOperator) != 3 { // =, +, +
		t.Fatalf("binops = %d", countKind(unit, minic.KBinaryOperator))
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := ParseUnit("program p\n  do i = \n  end do\nend program\n", "bad.f90")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "bad.f90") {
		t.Fatalf("error lacks file: %v", err)
	}
}

func TestSemTreeDropsFortranNames(t *testing.T) {
	a := parse(t, "program one\n  integer :: x\n  x = 1\nend program one\n")
	b := parse(t, "program two\n  integer :: y\n  y = 1\nend program two\n")
	if !tree.Equal(minic.BuildSemTree(a), minic.BuildSemTree(b)) {
		t.Fatal("renamed Fortran programs must have identical T_sem")
	}
}

func TestSrcTreeBlocks(t *testing.T) {
	st := BuildSrcTree(streamTriad, "s.f90")
	blocks := 0
	st.Walk(func(n *tree.Node) bool {
		if n.Label == "block" {
			blocks++
		}
		return true
	})
	if blocks != 2 { // program, do
		t.Fatalf("blocks = %d, want 2\n%s", blocks, st.Pretty())
	}
}

func TestTaskloopDirective(t *testing.T) {
	unit := parse(t, `
program p
  real(8) :: a(100)
  integer :: i
  !$omp parallel
  !$omp master
  !$omp taskloop
  do i = 1, 100
    a(i) = 1.0d0
  end do
  !$omp end taskloop
  !$omp end master
  !$omp end parallel
end program p
`)
	found := false
	unit.Walk(func(m *minic.ASTNode) bool {
		if m.Kind == minic.KOMPDirective && strings.Contains(m.Extra, "taskloop") {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("taskloop directive missing")
	}
}
