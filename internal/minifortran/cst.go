package minifortran

import (
	"strings"

	"silvervale/internal/minic"
	"silvervale/internal/srcloc"
	"silvervale/internal/tree"
)

// BuildSrcTree builds the T_src concrete-syntax tree for MiniFortran
// source. Like the C/C++ variant it is the perceived, syntax-highlighter
// view: identifiers are normalised to their token class, plain comments are
// gone, directive comments contribute one node per clause word, and
// structure comes from construct nesting (program/subroutine/do/if).
func BuildSrcTree(src, file string) *tree.Node {
	lines := LexLines(src, file)
	root := tree.NewAt("unit:src", srcloc.Pos{File: file, Line: 1})
	stack := []*tree.Node{root}
	push := func(n *tree.Node) {
		stack[len(stack)-1].Add(n)
		stack = append(stack, n)
	}
	pop := func() {
		if len(stack) > 1 {
			stack = stack[:len(stack)-1]
		}
	}
	for _, l := range lines {
		if l.Directive != "" {
			stack[len(stack)-1].Add(directiveSrcNode(l))
			continue
		}
		stmt := tree.NewAt("stmt", l.Pos)
		for _, t := range l.Tokens {
			if n := tokenNode(t); n != nil {
				stmt.Add(n)
			}
		}
		switch {
		case len(l.Tokens) > 0 && l.Tokens[0].IsKeyword("end"):
			stack[len(stack)-1].Add(stmt)
			pop()
		case opensBlock(l):
			blk := tree.NewAt("block", l.Pos)
			head := tree.NewAt("head", l.Pos, stmt.Children...)
			blk.Add(head)
			push(blk)
		default:
			stack[len(stack)-1].Add(stmt)
		}
	}
	return root
}

// opensBlock reports whether the line opens a construct that nests.
func opensBlock(l Line) bool {
	if len(l.Tokens) == 0 || l.Tokens[0].Kind != minic.TokKeyword {
		return false
	}
	switch l.Tokens[0].Text {
	case "program", "module", "subroutine", "function", "do":
		return true
	case "pure", "elemental":
		return true
	case "if":
		// only block-if (ending in `then`) nests
		last := l.Tokens[len(l.Tokens)-1]
		return last.IsKeyword("then")
	}
	return false
}

func tokenNode(t minic.Token) *tree.Node {
	switch t.Kind {
	case minic.TokIdent:
		return tree.NewAt("ident", t.Pos)
	case minic.TokKeyword:
		return tree.NewAt("kw:"+t.Text, t.Pos)
	case minic.TokNumber:
		return tree.NewAt("number", t.Pos)
	case minic.TokString:
		return tree.NewAt("string", t.Pos)
	case minic.TokPunct:
		switch t.Text {
		case "+", "-", "*", "/", "**", "=", "==", "/=", "<", ">", "<=", ">=", "=>":
			return tree.NewAt("op:"+t.Text, t.Pos)
		}
		return nil // anonymous token
	}
	return nil
}

// directiveSrcNode renders a `!$omp` / `!$acc` directive line: one node for
// the sentinel plus one per clause word, arguments dropped.
func directiveSrcNode(l Line) *tree.Node {
	n := tree.NewAt("directive", l.Pos)
	s := l.Directive
	depth := 0
	var cur strings.Builder
	emit := func() {
		if cur.Len() > 0 {
			n.Add(tree.NewAt("directive-word:"+cur.String(), l.Pos))
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '(':
			depth++
			emit()
		case c == ')':
			depth--
		case depth > 0:
			// clause arguments dropped
		case c == ' ' || c == '\t' || c == ',':
			emit()
		default:
			cur.WriteByte(c)
		}
	}
	emit()
	return n
}
