package obs

import "testing"

func TestRequestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	q := r.BeginRequest("/v1/matrix")
	if q != nil {
		t.Fatal("nil recorder returned a live request")
	}
	// Every method on the disabled request must no-op.
	q.Span().Arg("k", "v")
	if sp := q.Span().Start("child"); sp != nil {
		t.Fatal("disabled request produced a live child span")
	}
	q.End(200, "ok")
}

func TestRequestRecordsSpanAndLatency(t *testing.T) {
	r := NewRecorder()
	q := r.BeginRequest("/v1/matrix")
	q.Span().Start("engine.matrix").End()
	q.End(429, "rejected")

	spans := r.Spans()
	var root *SpanRecord
	for i := range spans {
		if spans[i].Name == "serve.request" {
			root = &spans[i]
		}
	}
	if root == nil {
		t.Fatalf("no serve.request span in %v", spans)
	}
	args := map[string]string{}
	for _, a := range root.Args {
		args[a.Key] = a.Value
	}
	if args["endpoint"] != "/v1/matrix" || args["status"] != "429" || args["outcome"] != "rejected" {
		t.Fatalf("request span args = %v", args)
	}
	var child *SpanRecord
	for i := range spans {
		if spans[i].Name == "engine.matrix" {
			child = &spans[i]
		}
	}
	if child == nil || child.Parent != root.ID {
		t.Fatalf("engine.matrix child not parented to the request span: %+v", child)
	}
	if snap := r.Snapshot(); snap.Histograms["serve.latency_ns"].Count != 1 {
		t.Fatalf("serve.latency_ns count = %d, want 1", snap.Histograms["serve.latency_ns"].Count)
	}
}
