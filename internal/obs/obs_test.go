package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilRecorderIsDisabled pins the package's core contract: a nil
// recorder and everything it hands out are safe no-ops.
func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	sp := r.Start("root")
	if sp != nil {
		t.Fatal("nil recorder produced a span")
	}
	child := sp.Start("child").Arg("k", "v")
	child.End()
	sp.End()
	if sp.Recorder() != nil {
		t.Fatal("nil span has a recorder")
	}
	r.Counter("c").Add(1)
	if r.Counter("c").Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	r.Histogram("h").Observe(7)
	r.SetMaxSpans(10)
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder has spans: %v", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", snap)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSpanHierarchy(t *testing.T) {
	r := NewRecorder()
	root := r.Start("root")
	c1 := root.Start("child").Arg("file", "a.cpp")
	g := c1.Start("grandchild")
	g.End()
	c1.End()
	c2 := root.Start("child")
	c2.End()
	root.End()

	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("want 4 spans, got %d", len(spans))
	}
	byID := map[uint64]SpanRecord{}
	for _, s := range spans {
		if s.Dur < 0 {
			t.Fatalf("negative duration: %+v", s)
		}
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Parent == 0 {
			if s.Root != s.ID {
				t.Fatalf("root span with Root != ID: %+v", s)
			}
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("orphaned span: %+v", s)
		}
		if s.Root != p.Root {
			t.Fatalf("span root %d differs from parent root %d", s.Root, p.Root)
		}
		if s.Start < p.Start {
			t.Fatalf("child started before parent: %+v vs %+v", s, p)
		}
	}
	snap := r.Snapshot()
	if snap.Spans["child"].Count != 2 || snap.Spans["root"].Count != 1 {
		t.Fatalf("bad span aggregation: %+v", snap.Spans)
	}
	if c := snap.Spans["child"]; c.MaxNS > c.TotalNS {
		t.Fatalf("max exceeds total: %+v", c)
	}
}

func TestCountersAndHistogramsConcurrent(t *testing.T) {
	r := NewRecorder()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat")
			for i := 0; i < per; i++ {
				c.Add(1)
				h.Observe(int64(i))
				sp := r.Start("work")
				sp.End()
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counters["shared"]; got != goroutines*per {
		t.Fatalf("counter: want %d, got %d", goroutines*per, got)
	}
	h := snap.Histograms["lat"]
	if h.Count != goroutines*per {
		t.Fatalf("histogram count: want %d, got %d", goroutines*per, h.Count)
	}
	var bucketSum uint64
	for _, b := range h.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != h.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, h.Count)
	}
	if snap.Spans["work"].Count != goroutines*per {
		t.Fatalf("span aggregate: %+v", snap.Spans["work"])
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRecorder()
	h := r.Histogram("h")
	for _, v := range []int64{0, 1, 2, 3, 4, 1023, 1024, -5} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["h"]
	if snap.Count != 8 {
		t.Fatalf("count: %d", snap.Count)
	}
	// -5 clamps to 0, so sum = 0+1+2+3+4+1023+1024+0
	if snap.Sum != 2057 {
		t.Fatalf("sum: %d", snap.Sum)
	}
	if snap.Mean() != 2057.0/8 {
		t.Fatalf("mean: %f", snap.Mean())
	}
	// 0 and -5 land in bucket le=0; 1023 in le=1023; 1024 in le=2047
	want := map[int64]uint64{0: 2, 1: 1, 3: 2, 7: 1, 1023: 1, 2047: 1}
	got := map[int64]uint64{}
	for _, b := range snap.Buckets {
		got[b.UpperBound] = b.Count
	}
	for le, n := range want {
		if got[le] != n {
			t.Fatalf("bucket le=%d: want %d, got %d (all: %v)", le, n, got[le], got)
		}
	}
}

func TestMaxSpansDropsBeyondBound(t *testing.T) {
	r := NewRecorder()
	r.SetMaxSpans(3)
	for i := 0; i < 5; i++ {
		r.Start("s").End()
	}
	if got := len(r.Spans()); got != 3 {
		t.Fatalf("want 3 retained spans, got %d", got)
	}
	if snap := r.Snapshot(); snap.DroppedSpans != 2 {
		t.Fatalf("want 2 dropped, got %d", snap.DroppedSpans)
	}
}

func TestWriteTraceIsValidChromeJSON(t *testing.T) {
	r := NewRecorder()
	root := r.Start("engine.matrix")
	for i := 0; i < 3; i++ {
		c := root.Start("engine.cell")
		c.End()
	}
	root.End()
	orphanless := r.Start("ted.distance")
	orphanless.End()

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) != 5 {
		t.Fatalf("want 5 events, got %d", len(tf.TraceEvents))
	}
	names := map[string]int{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("non-complete event: %+v", ev)
		}
		if ev.Tid == 0 || ev.Pid != 1 {
			t.Fatalf("bad lane/pid: %+v", ev)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("negative timestamp: %+v", ev)
		}
		names[ev.Name]++
	}
	if names["engine.cell"] != 3 || names["engine.matrix"] != 1 || names["ted.distance"] != 1 {
		t.Fatalf("bad event names: %v", names)
	}
}

func TestWriteMetricsFormats(t *testing.T) {
	r := NewRecorder()
	r.Counter("ted.cache.hits").Add(5)
	r.Histogram("engine.task_ns").Observe(100)
	sp := r.Start("index.unit")
	sp.End()

	var text bytes.Buffer
	if err := r.WriteMetrics(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{
		"silvervale_ted_cache_hits 5",
		"# TYPE silvervale_engine_task_ns histogram",
		`silvervale_engine_task_ns_bucket{le="+Inf"} 1`,
		"silvervale_engine_task_ns_count 1",
		`silvervale_span_count{name="index.unit"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}

	var js bytes.Buffer
	if err := r.WriteMetricsJSON(&js); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(js.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
	if snap.Counters["ted.cache.hits"] != 5 || snap.Spans["index.unit"].Count != 1 {
		t.Fatalf("JSON snapshot mismatch: %+v", snap)
	}
}

// TestTraceLaneNesting verifies sequential children share their parent's
// lane while overlapping spans get distinct lanes, so Chrome renders true
// nesting.
func TestTraceLaneNesting(t *testing.T) {
	r := NewRecorder()
	root := r.Start("root")
	a := root.Start("a")
	a.End()
	b := root.Start("b") // starts after a ended: same lane as root/a
	b.End()
	root.End()

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Tid  uint64 `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	tids := map[string]uint64{}
	for _, ev := range tf.TraceEvents {
		tids[ev.Name] = ev.Tid
	}
	if tids["a"] != tids["root"] || tids["b"] != tids["root"] {
		t.Fatalf("sequential children should share the root lane: %v", tids)
	}
}
