// Package obs is the pipeline's observability layer: hierarchical spans
// with monotonic timings, atomic counters, and bounded latency histograms,
// recorded concurrently from every stage of the TBMD pipeline (frontends,
// IR lowering, fingerprinting, TED, the divergence engine) and exported as
// a Chrome trace_event file, a Prometheus-style text summary, or JSON.
//
// The package is zero-dependency (stdlib only) and built around one
// invariant: a nil *Recorder — and the nil *Span / *Counter / *Histogram
// values it hands out — is a valid, fully disabled recorder. Every method
// on a nil receiver is a no-op, so instrumented code carries no branches
// beyond the nil check the method itself performs, and the hot path costs
// nothing measurable when observability is off (see bench_test.go and the
// Matrix benchmarks at the repo root).
//
// Metric names are stable, dot-delimited identifiers (the full table lives
// in DESIGN.md §"Observability"): counters like "ted.cache.hits",
// "ted.bound_pruned", or "ted.flat_memo.hits", histograms like
// "engine.task_ns", span names like "frontend.parse".
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxSpans bounds the finished-span buffer. Past the bound, spans
// are dropped (counted in Snapshot.DroppedSpans) rather than growing the
// recorder without limit; counters and histograms are unaffected.
const DefaultMaxSpans = 1 << 20

// Recorder collects spans, counters, and histograms. The zero value is not
// usable; call NewRecorder. A nil *Recorder is the disabled recorder: it
// returns nil spans/counters/histograms whose methods all no-op.
type Recorder struct {
	epoch    time.Time
	maxSpans int
	nextID   atomic.Uint64

	mu      sync.Mutex
	spans   []SpanRecord
	dropped uint64

	counters sync.Map // name -> *Counter
	hists    sync.Map // name -> *Histogram
}

// NewRecorder returns an enabled recorder whose clock starts now.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now(), maxSpans: DefaultMaxSpans}
}

// SetMaxSpans bounds the finished-span buffer (n <= 0 restores the
// default). Call before recording; it is not synchronised with End.
func (r *Recorder) SetMaxSpans(n int) {
	if r == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxSpans
	}
	r.maxSpans = n
}

// --- spans -------------------------------------------------------------------

// SpanRecord is one finished span: ID links children to Parent (0 for
// roots), Root names the span's top-level ancestor (itself for roots), and
// Start/Dur are monotonic offsets from the recorder's epoch.
type SpanRecord struct {
	ID     uint64
	Parent uint64
	Root   uint64
	Name   string
	Start  time.Duration
	Dur    time.Duration
	Args   []SpanArg
}

// SpanArg is one key/value annotation attached to a span.
type SpanArg struct{ Key, Value string }

// Span is an in-flight span. A nil *Span is the disabled span: Start
// returns nil, Arg and End no-op.
type Span struct {
	rec    *Recorder
	id     uint64
	parent uint64
	root   uint64
	name   string
	start  time.Duration
	args   []SpanArg
}

// Start opens a root span.
func (r *Recorder) Start(name string) *Span {
	if r == nil {
		return nil
	}
	id := r.nextID.Add(1)
	return &Span{rec: r, id: id, root: id, name: name, start: time.Since(r.epoch)}
}

// Start opens a child span. Children may be opened and ended from a
// different goroutine than their parent; the only requirement is that a
// span's own Arg/End calls are not concurrent with each other.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	id := s.rec.nextID.Add(1)
	return &Span{rec: s.rec, id: id, parent: s.id, root: s.root, name: name, start: time.Since(s.rec.epoch)}
}

// Arg annotates the span and returns it for chaining.
func (s *Span) Arg(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, SpanArg{Key: key, Value: value})
	return s
}

// Recorder returns the span's recorder (nil for the disabled span), so
// instrumented code handed only a parent span can reach counters and
// histograms.
func (s *Span) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// End finishes the span and files its record. Ending a span twice files it
// twice; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	r := s.rec
	rec := SpanRecord{
		ID: s.id, Parent: s.parent, Root: s.root, Name: s.name,
		Start: s.start, Dur: time.Since(r.epoch) - s.start, Args: s.args,
	}
	r.mu.Lock()
	if len(r.spans) < r.maxSpans {
		r.spans = append(r.spans, rec)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Spans returns a copy of every finished span, in End order.
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	return out
}

// --- counters ----------------------------------------------------------------

// Counter is a monotonically updated atomic counter. A nil *Counter
// no-ops.
type Counter struct{ v atomic.Int64 }

// Counter returns (creating on first use) the named counter. Callers on
// hot paths should resolve once and keep the pointer.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Add increments the counter.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// --- histograms --------------------------------------------------------------

// histBuckets is the fixed bucket count: bucket i holds values whose bit
// length is i, i.e. upper bound 2^i - 1, with the last bucket absorbing
// everything larger. Memory per histogram is constant (~0.5 KiB).
const histBuckets = 48

// Histogram is a bounded base-2 exponential histogram over non-negative
// int64 observations (nanosecond latencies, node counts, queue depths).
// A nil *Histogram no-ops.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
}

// Histogram returns (creating on first use) the named histogram. Callers
// on hot paths should resolve once and keep the pointer.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, &Histogram{})
	return v.(*Histogram)
}

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) int64 {
	if i >= histBuckets-1 {
		return int64(1)<<62 - 1 // effectively +Inf for our domains
	}
	return int64(1)<<uint(i) - 1
}

// Observe files one value (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramBucket is one non-empty bucket of a snapshot: Count values fell
// at or below UpperBound (and above the previous bucket's bound).
type HistogramBucket struct {
	UpperBound int64  `json:"le"`
	Count      uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			out.Buckets = append(out.Buckets, HistogramBucket{UpperBound: BucketBound(i), Count: c})
		}
	}
	return out
}
