package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// traceEvent is one Chrome trace_event entry ("X" = complete event, "M" =
// metadata). Timestamps and durations are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace renders every finished span as a Chrome trace_event JSON
// document, loadable in chrome://tracing and Perfetto. Spans are laid out
// on synthetic thread lanes so nesting renders correctly: a span reuses
// its parent's lane when the lane's previous occupant is an ancestor or
// has already ended (the sequential-phases case), and spills to a pool of
// overflow lanes when siblings genuinely overlap (concurrent units, matrix
// cells). Lane assignment is deterministic for a given span set.
func (r *Recorder) WriteTrace(w io.Writer) error {
	spans := r.Spans()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})

	byID := make(map[uint64]*SpanRecord, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	isAncestor := func(anc uint64, s *SpanRecord) bool {
		for p := s.Parent; p != 0; {
			if p == anc {
				return true
			}
			ps, ok := byID[p]
			if !ok {
				return false
			}
			p = ps.Parent
		}
		return false
	}

	type laneState struct {
		last    uint64 // span most recently placed on the lane
		lastEnd int64  // its end time (ns)
	}
	lanes := []laneState{}     // index = tid - 1
	laneOf := map[uint64]int{} // span ID -> lane index
	place := func(s *SpanRecord, lane int) {
		laneOf[s.ID] = lane
		lanes[lane] = laneState{last: s.ID, lastEnd: (s.Start + s.Dur).Nanoseconds()}
	}
	newLane := func(s *SpanRecord) {
		// reuse the first free lane whose occupant has ended
		for i := range lanes {
			if lanes[i].lastEnd <= s.Start.Nanoseconds() {
				place(s, i)
				return
			}
		}
		lanes = append(lanes, laneState{})
		place(s, len(lanes)-1)
	}
	for i := range spans {
		s := &spans[i]
		if s.Parent != 0 {
			if lane, ok := laneOf[s.Parent]; ok {
				prev := lanes[lane]
				if prev.lastEnd <= s.Start.Nanoseconds() || isAncestor(prev.last, s) {
					place(s, lane)
					continue
				}
			}
		}
		newLane(s)
	}

	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	for i := range spans {
		s := &spans[i]
		args := map[string]any{"id": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		for _, a := range s.Args {
			args[a.Key] = a.Value
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  uint64(laneOf[s.ID]) + 1,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}
