package obs

import (
	"strconv"
	"time"
)

// Request-level observability (DESIGN.md §14). A Request bundles the
// per-request span with the serve.* latency histogram so handlers record
// one coherent unit: Begin opens the span and stamps the method/target,
// End annotates the outcome and files the latency. Like every obs handle,
// a Request obtained from a nil *Recorder is valid and fully disabled —
// the serving hot path pays only nil checks when observability is off.

// Request is one in-flight served request. The zero value (and the value
// Begin returns on a nil recorder) is the disabled request: every method
// no-ops.
type Request struct {
	span    *Span
	latency *Histogram
	start   time.Time
}

// BeginRequest opens a request span named "serve.request" annotated with
// the endpoint, and arms the serve.latency_ns histogram. Callers must
// End exactly once.
func (r *Recorder) BeginRequest(endpoint string) *Request {
	if r == nil {
		return nil
	}
	return &Request{
		span:    r.Start("serve.request").Arg("endpoint", endpoint),
		latency: r.Histogram("serve.latency_ns"),
		start:   time.Now(),
	}
}

// Span returns the request's span for child spans and further annotation
// (nil on the disabled request — safe to use either way).
func (q *Request) Span() *Span {
	if q == nil {
		return nil
	}
	return q.span
}

// End files the request: the HTTP status and outcome ("ok", "rejected",
// "canceled", "error") are recorded as span args, and the wall-clock
// latency lands in serve.latency_ns.
func (q *Request) End(status int, outcome string) {
	if q == nil {
		return
	}
	q.span.Arg("status", strconv.Itoa(status)).Arg("outcome", outcome)
	q.span.End()
	q.latency.Observe(time.Since(q.start).Nanoseconds())
}
