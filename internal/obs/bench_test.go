package obs

import "testing"

// The disabled-recorder benchmarks guard the "observability off costs
// nothing" contract: every op on a nil recorder should be a nil check and
// a return (sub-nanosecond). The enabled variants document the per-op
// price actually paid when -trace/-metrics are on.

func BenchmarkDisabledSpan(b *testing.B) {
	var r *Recorder
	for i := 0; i < b.N; i++ {
		sp := r.Start("engine.cell")
		sp.End()
	}
}

func BenchmarkDisabledChildSpan(b *testing.B) {
	var parent *Span
	for i := 0; i < b.N; i++ {
		sp := parent.Start("frontend.parse")
		sp.End()
	}
}

func BenchmarkDisabledCounter(b *testing.B) {
	var r *Recorder
	c := r.Counter("ted.calls")
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkDisabledHistogram(b *testing.B) {
	var r *Recorder
	h := r.Histogram("engine.task_ns")
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	r := NewRecorder()
	r.SetMaxSpans(1) // retain one span; the rest hit the bounded-drop path
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := r.Start("engine.cell")
		sp.End()
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	r := NewRecorder()
	c := r.Counter("ted.calls")
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledHistogram(b *testing.B) {
	r := NewRecorder()
	h := r.Histogram("engine.task_ns")
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
