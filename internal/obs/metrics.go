package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// SpanAggregate summarises every finished span of one name.
type SpanAggregate struct {
	Count   uint64 `json:"count"`
	TotalNS int64  `json:"total_ns"`
	MaxNS   int64  `json:"max_ns"`
}

// Snapshot is a point-in-time copy of everything the recorder holds, in a
// form both exporters and tests consume.
type Snapshot struct {
	Counters     map[string]int64             `json:"counters,omitempty"`
	Histograms   map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans        map[string]SpanAggregate     `json:"spans,omitempty"`
	DroppedSpans uint64                       `json:"dropped_spans,omitempty"`
}

// Snapshot copies the recorder's current state. A nil recorder returns an
// empty snapshot.
func (r *Recorder) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      map[string]SpanAggregate{},
	}
	if r == nil {
		return snap
	}
	r.counters.Range(func(k, v any) bool {
		snap.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		snap.Histograms[k.(string)] = v.(*Histogram).snapshot()
		return true
	})
	for _, s := range r.Spans() {
		agg := snap.Spans[s.Name]
		agg.Count++
		agg.TotalNS += s.Dur.Nanoseconds()
		if ns := s.Dur.Nanoseconds(); ns > agg.MaxNS {
			agg.MaxNS = ns
		}
		snap.Spans[s.Name] = agg
	}
	r.mu.Lock()
	snap.DroppedSpans = r.dropped
	r.mu.Unlock()
	return snap
}

// promName maps a dot-delimited metric name onto the Prometheus grammar:
// "ted.cache.hits" -> "silvervale_ted_cache_hits".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("silvervale_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteMetrics renders the snapshot in Prometheus text exposition format:
// counters as counters, histograms with cumulative le-labelled buckets,
// span aggregates as count/duration pairs labelled by span name. Output is
// sorted, so identical states render byte-identically.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	for _, name := range sortedKeys(snap.Counters) {
		p := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", p, p, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		p := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", p)
		cum := uint64(0)
		for _, bk := range h.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", p, bk.UpperBound, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", p, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", p, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", p, h.Count)
	}
	for _, name := range sortedKeys(snap.Spans) {
		agg := snap.Spans[name]
		fmt.Fprintf(&b, "silvervale_span_count{name=%q} %d\n", name, agg.Count)
		fmt.Fprintf(&b, "silvervale_span_duration_ns_total{name=%q} %d\n", name, agg.TotalNS)
	}
	if snap.DroppedSpans > 0 {
		fmt.Fprintf(&b, "silvervale_spans_dropped %d\n", snap.DroppedSpans)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMetricsJSON renders the snapshot as indented JSON.
func (r *Recorder) WriteMetricsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
