package core

import (
	"context"
	"fmt"

	"silvervale/internal/store"
	"silvervale/internal/ted"
	"silvervale/internal/tree"
)

// Tiered matrix sweeps (DESIGN.md §10). MatrixTiered computes the same
// pairwise divergence matrix as Matrix, but routes each matched tree pair
// through the cache's tier policy first: an approximate pass (LSH
// signatures, then pq-gram distance) classifies every pair, and only the
// pairs routed TierExact are scheduled into the exact Zhang–Shasha
// refinement phase. The schedule is three phases —
//
//	A. route: the worker pool runs TierRoute over every matrix cell,
//	   producing a cellPlan per cell (pure function of the pair);
//	B. refine: the worker pool runs exact TED over the flattened list of
//	   (cell, pair) tasks that routed exact — so the expensive DP work,
//	   not the cells, is what load-balances across workers;
//	C. reduce: each cell accumulates its contributions serially in
//	   exactly divergeTrees' order (pairs, then only-A, then only-B), so
//	   the output is bit-identical across runs and worker counts.
//
// At Budget 0 the policy is disabled and MatrixTiered delegates to the
// exact Matrix path — byte-identical by construction, pinned by the
// equivalence gate in tier_test.go.

// TierCell is the per-cell tier provenance: how many matched tree pairs
// of the cell were refined exactly versus estimated. Unmatched units are
// exact by definition (their contribution is their node count) and are
// not counted.
type TierCell struct {
	Exact, Estimated, Far int
}

// Pairs returns the total matched pairs the cell routed.
func (c TierCell) Pairs() int { return c.Exact + c.Estimated + c.Far }

// TierStats aggregates routing counts over a sweep (or over an engine's
// lifetime, via Engine.TierStats).
type TierStats struct {
	Pairs, Exact, Estimated, Far uint64
}

func (s *TierStats) add(c TierCell) {
	s.Pairs += uint64(c.Pairs())
	s.Exact += uint64(c.Exact)
	s.Estimated += uint64(c.Estimated)
	s.Far += uint64(c.Far)
}

// Line renders the post-sweep tier stats line the CLI prints.
func (s TierStats) Line(p ted.TierPolicy) string {
	return fmt.Sprintf("ted tiering (%s): %d pairs: %d exact, %d estimated, %d lsh-far",
		p, s.Pairs, s.Exact, s.Estimated, s.Far)
}

// TierStats returns the engine's cumulative routing counts across every
// tiered call since construction.
func (e *Engine) TierStats() TierStats {
	return TierStats{
		Pairs:     e.tierPairs.Load(),
		Exact:     e.tierExact.Load(),
		Estimated: e.tierEstimated.Load(),
		Far:       e.tierFar.Load(),
	}
}

// countTier folds one cell's provenance into the engine's cumulative
// stats and the ted.tier_* obs counters.
func (e *Engine) countTier(c TierCell) {
	n := c.Pairs()
	if n == 0 {
		return
	}
	e.tierPairs.Add(uint64(n))
	e.tierExact.Add(uint64(c.Exact))
	e.tierEstimated.Add(uint64(c.Estimated))
	e.tierFar.Add(uint64(c.Far))
	e.obsTierPairs.Add(int64(n))
	e.obsTierExact.Add(int64(c.Exact))
	e.obsTierEst.Add(int64(c.Estimated))
	e.obsTierFar.Add(int64(c.Far))
}

// tierable reports whether a sweep under (metric, policy) actually routes
// pairs: the policy must be enabled, the engine must carry a cache (the
// signature and profile memos live there), and the metric must be a tree
// metric — everything else delegates to the exact path.
func (e *Engine) tierable(metric string, p ted.TierPolicy) bool {
	if !p.Enabled() || e.cache == nil {
		return false
	}
	switch metric {
	case MetricTsrc, MetricTsrcPP, MetricTsem, MetricTsemI, MetricTir:
		return true
	}
	return false
}

// exactCell is the provenance of a cell computed on the exact path: every
// matched tree pair counts as TierExact. Non-tree metrics have no tree
// pairs to route and report the zero cell.
func exactCell(a, b *Index, metric string) TierCell {
	switch metric {
	case MetricTsrc, MetricTsrcPP, MetricTsem, MetricTsemI, MetricTir:
		pairs, _, _ := match(a, b)
		return TierCell{Exact: len(pairs)}
	}
	return TierCell{}
}

// pairRoute is one matched tree pair's routing decision. For TierExact
// routes, est is filled in by the refinement phase; for estimated routes
// it already holds the clamped estimate.
type pairRoute struct {
	ta, tb *tree.Node
	w      float64 // tb's node count — the pair's dmax contribution
	est    float64
	tier   ted.Tier
}

// cellPlan is one matrix cell after the routing phase: the matched pairs
// in match() order plus the unmatched units' node counts, everything
// reduce needs to replay divergeTrees' accumulation exactly.
type cellPlan struct {
	metric       string
	routes       []pairRoute
	onlyA, onlyB []float64
}

// planCell routes every matched pair of one cell under the policy.
func (e *Engine) planCell(a, b *Index, metric string, p ted.TierPolicy) *cellPlan {
	pairs, onlyA, onlyB := match(a, b)
	plan := &cellPlan{metric: metric, routes: make([]pairRoute, len(pairs))}
	for i, pr := range pairs {
		ta, tb := pr[0].Trees[metric], pr[1].Trees[metric]
		r := pairRoute{ta: ta, tb: tb, w: float64(tb.Size())}
		r.est, r.tier = e.cache.TierRoute(ta, tb, ted.UnitCosts(), p)
		plan.routes[i] = r
	}
	for _, u := range onlyA {
		plan.onlyA = append(plan.onlyA, float64(u.Trees[metric].Size()))
	}
	for _, u := range onlyB {
		plan.onlyB = append(plan.onlyB, float64(u.Trees[metric].Size()))
	}
	return plan
}

// reduce folds a refined plan into a Divergence, accumulating in the same
// order as divergeTrees: matched pairs, then only-A, then only-B.
func (p *cellPlan) reduce() (Divergence, TierCell) {
	raw, dmax := 0.0, 0.0
	var tc TierCell
	for i := range p.routes {
		r := &p.routes[i]
		raw += r.est
		dmax += r.w
		switch r.tier {
		case ted.TierExact:
			tc.Exact++
		case ted.TierEstimated:
			tc.Estimated++
		case ted.TierFar:
			tc.Far++
		}
	}
	for _, n := range p.onlyA {
		raw += n
	}
	for _, n := range p.onlyB {
		raw += n
		dmax += n
	}
	return Divergence{Metric: p.metric, Raw: raw, DMax: dmax, Norm: safeDiv(raw, dmax)}, tc
}

// TieredDiverge computes one cell under a tier policy, returning its
// provenance alongside the divergence. Budget 0, a cache-less engine, or
// a non-tree metric all fall back to the exact Diverge path.
func (e *Engine) TieredDiverge(a, b *Index, metric string, p ted.TierPolicy) (Divergence, TierCell, error) {
	if !e.tierable(metric, p) {
		d, err := e.Diverge(a, b, metric)
		if err != nil {
			return Divergence{}, TierCell{}, err
		}
		tc := exactCell(a, b, metric)
		e.countTier(tc)
		return d, tc, nil
	}
	plan := e.planCell(a, b, metric, p)
	dist := e.dist()
	for i := range plan.routes {
		if r := &plan.routes[i]; r.tier == ted.TierExact {
			r.est = float64(dist(r.ta, r.tb))
		}
	}
	d, tc := plan.reduce()
	e.countTier(tc)
	return d, tc, nil
}

// TieredMatrix bundles the matrix values with per-cell tier provenance
// and the sweep's routing counts. Cells[i][j] and Cells[j][i] mirror the
// same cell; the diagonal is zero.
type TieredMatrix struct {
	Values [][]float64
	Cells  [][]TierCell
	Stats  TierStats
	Policy ted.TierPolicy
}

// MatrixTiered computes the pairwise divergence matrix under a tier
// policy. At Budget 0 (or for non-tree metrics, or without a cache) the
// values are produced by the exact Matrix path and are byte-identical to
// it; otherwise the three-phase route/refine/reduce schedule runs, and
// every cell's |tiered − exact| error is bounded by the policy's recorded
// budget (the exact-vs-tiered harness pins this on the seed corpora).
func (e *Engine) MatrixTiered(idxs map[string]*Index, order []string, metric string, policy ted.TierPolicy) (*TieredMatrix, error) {
	return e.MatrixTieredCtx(context.Background(), idxs, order, metric, policy)
}

// MatrixTieredCtx is MatrixTiered under a cancellation context. Both
// worker-pool phases (route and refine) check ctx at task-grant
// boundaries; a canceled sweep returns ctx.Err() before Phase C, so
// nothing is published to the matrix-cell memo.
func (e *Engine) MatrixTieredCtx(ctx context.Context, idxs map[string]*Index, order []string, metric string, policy ted.TierPolicy) (*TieredMatrix, error) {
	n := len(order)
	for _, name := range order {
		if _, ok := idxs[name]; !ok {
			return nil, fmt.Errorf("core: no index for model %q", name)
		}
	}
	tm := &TieredMatrix{Policy: policy, Values: make([][]float64, n), Cells: make([][]TierCell, n)}
	for i := range tm.Cells {
		tm.Cells[i] = make([]TierCell, n)
	}

	if !e.tierable(metric, policy) {
		vals, err := e.MatrixCtx(ctx, idxs, order, metric)
		if err != nil {
			return nil, err
		}
		tm.Values = vals
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				tc := exactCell(idxs[order[i]], idxs[order[j]], metric)
				tm.Cells[i][j], tm.Cells[j][i] = tc, tc
				tm.Stats.add(tc)
				e.countTier(tc)
			}
		}
		return tm, nil
	}

	for i := range tm.Values {
		tm.Values[i] = make([]float64, n)
	}
	type cellIdx struct{ i, j int }
	var cells []cellIdx
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cells = append(cells, cellIdx{i, j})
		}
	}
	sp := e.rec.Start("engine.matrix_tiered").Arg("metric", metric).Arg("policy", policy.String())
	e.cells.Add(int64(len(cells)))

	// Memo pass (DESIGN.md §12): clean cells — same metric-hash pair,
	// same costs, same rendered policy — skip routing entirely and are
	// served with their recorded tier provenance; only dirty cells enter
	// the route/refine/reduce schedule.
	work := cells
	var keys []cellKey
	if e.cellMemo != nil {
		hs := make([]store.ContentHash, n)
		for i, name := range order {
			hs[i] = MetricHash(idxs[name], metric)
		}
		ps := policy.String()
		work = work[:0:0]
		reused := 0
		keys = make([]cellKey, 0, len(cells))
		for _, c := range cells {
			key := cellKey{a: hs[c.i], b: hs[c.j], metric: metric, costs: ted.UnitCosts(), policy: ps}
			if v, ok := e.cellLookup(key); ok {
				tm.Values[c.i][c.j], tm.Values[c.j][c.i] = v.norm, v.rev
				tm.Cells[c.i][c.j], tm.Cells[c.j][c.i] = v.tc, v.tc
				tm.Stats.add(v.tc)
				e.countTier(v.tc)
				reused++
				continue
			}
			work = append(work, c)
			keys = append(keys, key)
		}
		e.countCells(reused, len(work))
	}

	// Phase A: route every dirty cell. Each task writes only its own
	// plan slot.
	plans := make([]*cellPlan, len(work))
	ctxErr := e.runParallel(ctx, len(work), sp, "engine.tier_route", func(k int) {
		i, j := work[k].i, work[k].j
		plans[k] = e.planCell(idxs[order[i]], idxs[order[j]], metric, policy)
	})
	if ctxErr != nil {
		sp.End()
		return nil, ctxErr
	}

	// Phase B: exact refinement over the flattened (cell, pair) tasks —
	// the DP work itself is what load-balances, so one cell full of
	// borderline pairs cannot serialise the sweep.
	var exact []*pairRoute
	for _, pl := range plans {
		for i := range pl.routes {
			if pl.routes[i].tier == ted.TierExact {
				exact = append(exact, &pl.routes[i])
			}
		}
	}
	dist := e.dist()
	ctxErr = e.runParallel(ctx, len(exact), sp, "engine.tier_refine", func(k int) {
		r := exact[k]
		r.est = float64(dist(r.ta, r.tb))
	})
	if ctxErr != nil {
		sp.End()
		return nil, ctxErr
	}

	// Phase C: serial per-cell reduction in divergeTrees' order.
	for k, pl := range plans {
		i, j := work[k].i, work[k].j
		d, tc := pl.reduce()
		tm.Values[i][j] = d.Norm
		tm.Values[j][i] = safeDiv(d.Raw, Weight(idxs[order[i]], metric))
		tm.Cells[i][j], tm.Cells[j][i] = tc, tc
		tm.Stats.add(tc)
		e.countTier(tc)
		if keys != nil {
			e.cellStore(keys[k], cellVal{norm: tm.Values[i][j], rev: tm.Values[j][i], tc: tc})
		}
	}
	sp.End()
	return tm, nil
}
