package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"silvervale/internal/corpus"
	"silvervale/internal/ted"
)

// Engine is the concurrent divergence engine: a bounded worker pool plus a
// shared content-addressed TED cache. It computes exactly the same numbers
// as the serial package-level functions (Diverge, Matrix, FromBase,
// ApproxDiverge) — every per-pair computation is self-contained and runs
// its floating-point accumulation in the same order — but schedules
// independent cells across workers and short-circuits repeated tree pairs
// through the cache. One Engine can be shared freely across goroutines;
// experiment sweeps and clustering runs should reuse a single Engine so
// every Matrix/FromBase call amortises the same memo.
type Engine struct {
	workers int
	cache   *ted.Cache
}

// NewEngine returns an engine with the given worker-pool bound and a fresh
// shared cache. workers <= 0 selects runtime.NumCPU().
func NewEngine(workers int) *Engine {
	return NewEngineWithCache(workers, ted.NewCache())
}

// NewEngineWithCache returns an engine using an existing cache (pass nil
// to disable caching, e.g. to benchmark raw parallel speedup).
func NewEngineWithCache(workers int, cache *ted.Cache) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Engine{workers: workers, cache: cache}
}

// Workers returns the configured worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's shared TED cache (nil when caching is off).
func (e *Engine) Cache() *ted.Cache { return e.cache }

// CacheStats reports the shared cache's effectiveness counters.
func (e *Engine) CacheStats() ted.CacheStats {
	if e.cache == nil {
		return ted.CacheStats{}
	}
	return e.cache.Stats()
}

// dist returns the exact-TED function the engine's divergence calls use.
func (e *Engine) dist() distFunc {
	if e.cache == nil {
		return ted.Distance
	}
	return e.cache.Distance
}

// Diverge is the engine form of Diverge: identical results, cached TED.
func (e *Engine) Diverge(a, b *Index, metric string) (Divergence, error) {
	return divergeWith(a, b, metric, e.dist())
}

// DivergeWithCosts is the engine form of DivergeWithCosts.
func (e *Engine) DivergeWithCosts(a, b *Index, metric string, costs ted.Costs) (Divergence, error) {
	if e.cache == nil {
		return DivergeWithCosts(a, b, metric, costs)
	}
	return divergeWithCosts(a, b, metric, costs, e.cache.DistanceWithCosts)
}

// ApproxDiverge is the engine form of ApproxDiverge: pq-gram profiles and
// pair distances are memoised in the shared cache.
func (e *Engine) ApproxDiverge(a, b *Index, metric string) (Divergence, error) {
	if e.cache == nil {
		return ApproxDiverge(a, b, metric)
	}
	return approxDivergeWith(a, b, metric, e.cache.ApproxDistance)
}

// Matrix computes the same pairwise matrix as the package-level Matrix,
// with the upper-triangle cells distributed over the worker pool. Output
// is deterministic regardless of scheduling: every cell (i,j) is a pure
// function of the pair, each worker writes only its own cells, and errors
// are reported in the same order the serial loop would encounter them.
func (e *Engine) Matrix(idxs map[string]*Index, order []string, metric string) ([][]float64, error) {
	n := len(order)
	for _, name := range order {
		if _, ok := idxs[name]; !ok {
			return nil, fmt.Errorf("core: no index for model %q", name)
		}
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	type cell struct{ i, j int }
	var cells []cell
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cells = append(cells, cell{i, j})
		}
	}
	errs := make([]error, len(cells))
	e.runParallel(len(cells), func(k int) {
		i, j := cells[k].i, cells[k].j
		ia, ib := idxs[order[i]], idxs[order[j]]
		d, err := e.Diverge(ia, ib, metric)
		if err != nil {
			errs[k] = err
			return
		}
		switch metric {
		case MetricSLOC, MetricLLOC:
			m[i][j] = d.Norm
			m[j][i] = d.Norm
		default:
			m[i][j] = d.Norm
			m[j][i] = safeDiv(d.Raw, Weight(ia, metric))
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// FromBase computes the same per-model divergence-from-base map as the
// package-level FromBase, one model per worker-pool task.
func (e *Engine) FromBase(idxs map[string]*Index, base string, order []string, metric string) (map[string]float64, error) {
	ib, ok := idxs[base]
	if !ok {
		return nil, fmt.Errorf("core: no index for base model %q", base)
	}
	for _, name := range order {
		if _, ok := idxs[name]; !ok {
			return nil, fmt.Errorf("core: no index for model %q", name)
		}
	}
	vals := make([]float64, len(order))
	errs := make([]error, len(order))
	e.runParallel(len(order), func(k int) {
		d, err := e.Diverge(ib, idxs[order[k]], metric)
		if err != nil {
			errs[k] = err
			return
		}
		vals[k] = d.Norm
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make(map[string]float64, len(order))
	for k, name := range order {
		out[name] = vals[k]
	}
	return out, nil
}

// IndexCodebase runs the extraction pipeline with the engine's worker
// pool (equivalent to IndexCodebase with Options.Workers set).
func (e *Engine) IndexCodebase(cb *corpus.Codebase, opts Options) (*Index, error) {
	opts.Workers = e.workers
	return IndexCodebase(cb, opts)
}

// runParallel executes fn(0..n-1) on at most e.workers goroutines. With a
// single worker (or a single task) it degenerates to the serial loop — no
// goroutines, no synchronisation — so serial baselines stay untouched.
func (e *Engine) runParallel(n int, fn func(int)) {
	runParallel(n, e.workers, fn)
}

// runParallel is the shared bounded pool: workers goroutines pull task
// indices off an atomic counter until the range is drained. Tasks must
// write only to their own slots; the final WaitGroup join publishes all
// writes to the caller.
func runParallel(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
