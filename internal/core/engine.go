package core

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"silvervale/internal/corpus"
	"silvervale/internal/obs"
	"silvervale/internal/store"
	"silvervale/internal/ted"
)

// Engine is the concurrent divergence engine: a bounded worker pool plus a
// shared content-addressed TED cache. It computes exactly the same numbers
// as the serial package-level functions (Diverge, Matrix, FromBase,
// ApproxDiverge) — every per-pair computation is self-contained and runs
// its floating-point accumulation in the same order — but schedules
// independent cells across workers and short-circuits repeated tree pairs
// through the cache. One Engine can be shared freely across goroutines;
// experiment sweeps and clustering runs should reuse a single Engine so
// every Matrix/FromBase call amortises the same memo — which includes the
// per-tree flat memo (DESIGN.md §6): across a sweep each distinct tree is
// flattened to its Zhang–Shasha form once, no matter how many cells
// reference it.
type Engine struct {
	workers int
	cache   *ted.Cache

	// astore is the optional persistent artifact store (nil when absent):
	// IndexCodebase warm-starts from its index tier, and NewEngineStore
	// wires the cache's distance tier through it.
	astore *store.Store

	// observability (all nil when disabled — the no-op hot path)
	rec        *obs.Recorder
	tasks      *obs.Counter   // engine.tasks — worker-pool tasks executed
	cells      *obs.Counter   // engine.cells — matrix cells scheduled
	taskNS     *obs.Histogram // engine.task_ns — per-task latency
	queueDepth *obs.Histogram // engine.queue_depth — remaining tasks at dequeue

	// tier accounting: cumulative routing counts across every tiered
	// sweep this engine ran (the post-sweep tier stats line), plus the
	// ted.tier_* obs counters (nil when observability is off).
	tierPairs     atomic.Uint64
	tierExact     atomic.Uint64
	tierEstimated atomic.Uint64
	tierFar       atomic.Uint64
	obsTierPairs  *obs.Counter // ted.tier_pairs — pairs routed by a tier policy
	obsTierExact  *obs.Counter // ted.tier_exact — pairs refined with exact Zhang–Shasha
	obsTierEst    *obs.Counter // ted.tier_estimated — pairs estimated from the pq-gram distance
	obsTierFar    *obs.Counter // ted.tier_far — pairs estimated from LSH signatures alone

	// cell memo: the matrix-cell invalidation layer (DESIGN.md §12).
	// Matrix/MatrixTiered memoise every computed cell under (per-side
	// metric hash, metric, costs, policy); warm re-sweeps recompute only
	// cells whose key changed. nil when the engine is cache-less, so raw
	// benchmarks measure raw work. The incremental accounting mirrors the
	// tier accounting: engine-lifetime atomics plus incr.* obs counters.
	cellMu   sync.Mutex
	cellMemo map[cellKey]cellVal

	unitsReused        atomic.Uint64
	unitsReparsed      atomic.Uint64
	cellsReused        atomic.Uint64
	cellsRecomputed    atomic.Uint64
	obsCellsReused     *obs.Counter // incr.cells_reused — matrix cells served from the cell memo
	obsCellsRecomputed *obs.Counter // incr.cells_recomputed — matrix cells recomputed

	// Subtree-block accounting (DESIGN.md §13): how many keyroot blocks
	// the cache's subtree memo restored versus recomputed inside this
	// engine's matrix sweeps — the sub-cell dirty set behind each
	// recomputed cell. Fed per sweep from cache-stats deltas in
	// matrixMemo, mirrored into the incr.* obs counters.
	subBlocksReused     atomic.Uint64
	subBlocksRecomputed atomic.Uint64
	obsSubReused        *obs.Counter // incr.subtree_blocks_reused
	obsSubRecomputed    *obs.Counter // incr.subtree_blocks_recomputed
}

// NewEngine returns an engine with the given worker-pool bound and a fresh
// shared cache. workers <= 0 selects runtime.NumCPU().
func NewEngine(workers int) *Engine {
	return NewEngineWithCache(workers, ted.NewCache())
}

// NewEngineWithCache returns an engine using an existing cache (pass nil
// to disable caching, e.g. to benchmark raw parallel speedup).
func NewEngineWithCache(workers int, cache *ted.Cache) *Engine {
	return NewEngineObs(workers, cache, nil)
}

// NewEngineObs returns an engine wired to an observability recorder: the
// worker pool records task latency and queue depth, Matrix/FromBase emit
// span trees, and the cache (when non-nil) feeds the ted.* counters. A nil
// recorder yields exactly the uninstrumented engine — the obs handles stay
// nil and every hook is a pointer check.
func NewEngineObs(workers int, cache *ted.Cache, rec *obs.Recorder) *Engine {
	e := &Engine{workers: ResolveWorkers(workers), cache: cache, rec: rec}
	if cache != nil {
		e.cellMemo = map[cellKey]cellVal{}
	}
	if rec != nil {
		if cache != nil {
			cache.SetRecorder(rec)
		}
		e.tasks = rec.Counter("engine.tasks")
		e.cells = rec.Counter("engine.cells")
		e.taskNS = rec.Histogram("engine.task_ns")
		e.queueDepth = rec.Histogram("engine.queue_depth")
		e.obsTierPairs = rec.Counter("ted.tier_pairs")
		e.obsTierExact = rec.Counter("ted.tier_exact")
		e.obsTierEst = rec.Counter("ted.tier_estimated")
		e.obsTierFar = rec.Counter("ted.tier_far")
		e.obsCellsReused = rec.Counter("incr.cells_reused")
		e.obsCellsRecomputed = rec.Counter("incr.cells_recomputed")
		e.obsSubReused = rec.Counter("incr.subtree_blocks_reused")
		e.obsSubRecomputed = rec.Counter("incr.subtree_blocks_recomputed")
	}
	return e
}

// workerLogOnce backs the log-once guarantee of ResolveWorkers.
var workerLogOnce sync.Once

// ResolveWorkers maps a requested worker count onto the bound the pool
// actually uses: values <= 0 select runtime.NumCPU(), and values above
// NumCPU clamp down to it (extra goroutines cannot speed up the CPU-bound
// TED work). The first resolution that changes the requested value is
// logged once per process, so `-workers 0` / oversubscribed runs say what
// they actually got.
func ResolveWorkers(requested int) int {
	n := runtime.NumCPU()
	resolved := requested
	if requested <= 0 || requested > n {
		resolved = n
	}
	if resolved != requested {
		workerLogOnce.Do(func() {
			log.Printf("core: worker pool resolved to %d (requested %d, NumCPU %d)", resolved, requested, n)
		})
	}
	return resolved
}

// Workers returns the resolved worker-pool bound actually in use.
func (e *Engine) Workers() int { return e.workers }

// Recorder returns the engine's observability recorder (nil when
// observability is off).
func (e *Engine) Recorder() *obs.Recorder { return e.rec }

// Cache returns the engine's shared TED cache (nil when caching is off).
func (e *Engine) Cache() *ted.Cache { return e.cache }

// CacheStats reports the shared cache's effectiveness counters.
func (e *Engine) CacheStats() ted.CacheStats {
	if e.cache == nil {
		return ted.CacheStats{}
	}
	return e.cache.Stats()
}

// dist returns the exact-TED function the engine's divergence calls use.
func (e *Engine) dist() distFunc {
	if e.cache == nil {
		return ted.Distance
	}
	return e.cache.Distance
}

// Diverge is the engine form of Diverge: identical results, cached TED.
func (e *Engine) Diverge(a, b *Index, metric string) (Divergence, error) {
	return divergeWith(a, b, metric, e.dist())
}

// DivergeWithCosts is the engine form of DivergeWithCosts.
func (e *Engine) DivergeWithCosts(a, b *Index, metric string, costs ted.Costs) (Divergence, error) {
	if e.cache == nil {
		return DivergeWithCosts(a, b, metric, costs)
	}
	return divergeWithCosts(a, b, metric, costs, e.cache.DistanceWithCosts)
}

// ApproxDiverge is the engine form of ApproxDiverge: pq-gram profiles and
// pair distances are memoised in the shared cache.
func (e *Engine) ApproxDiverge(a, b *Index, metric string) (Divergence, error) {
	if e.cache == nil {
		return ApproxDiverge(a, b, metric)
	}
	return approxDivergeWith(a, b, metric, e.cache.ApproxDistance)
}

// Matrix computes the same pairwise matrix as the package-level Matrix,
// with the upper-triangle cells distributed over the worker pool. Output
// is deterministic regardless of scheduling: every cell (i,j) is a pure
// function of the pair, each worker writes only its own cells, and errors
// are reported in the same order the serial loop would encounter them.
// With a cache attached, cells read through the engine's cell memo
// (DESIGN.md §12): a warm re-sweep after an edit recomputes only the
// cells whose metric-hash pair changed and serves the rest bit-identically
// from the memo.
func (e *Engine) Matrix(idxs map[string]*Index, order []string, metric string) ([][]float64, error) {
	return e.matrixMemo(context.Background(), idxs, order, metric, ted.UnitCosts(), "")
}

// MatrixCtx is Matrix under a cancellation context: the sweep checks ctx
// at every task grant and returns ctx.Err() once canceled. A canceled
// sweep publishes nothing to the engine's cell memo — completed cells are
// discarded along with the rest, so the memo only ever holds cells from
// sweeps that ran to completion. Individual TED distances finished before
// the cancellation remain in the shared cache; each is a complete exact
// result, so a later identical request stays bit-identical to cold.
func (e *Engine) MatrixCtx(ctx context.Context, idxs map[string]*Index, order []string, metric string) ([][]float64, error) {
	return e.matrixMemo(ctx, idxs, order, metric, ted.UnitCosts(), "")
}

// MatrixWithCosts is Matrix under a non-unit TED cost model (tree metrics
// only, like DivergeWithCosts). Cells are memoised under the cost model,
// so sweeps under different costs never share cells — a cached cell keyed
// under old costs is unreachable from a new cost model by construction.
func (e *Engine) MatrixWithCosts(idxs map[string]*Index, order []string, metric string, costs ted.Costs) ([][]float64, error) {
	return e.matrixMemo(context.Background(), idxs, order, metric, costs, "")
}

// matrixMemo is the shared memoised sweep behind Matrix and
// MatrixWithCosts. policy is the rendered tier policy for keying ("" on
// the exact path; MatrixTiered keys its own cells).
func (e *Engine) matrixMemo(ctx context.Context, idxs map[string]*Index, order []string, metric string, costs ted.Costs, policy string) ([][]float64, error) {
	n := len(order)
	for _, name := range order {
		if _, ok := idxs[name]; !ok {
			return nil, fmt.Errorf("core: no index for model %q", name)
		}
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	type cell struct{ i, j int }
	var cells []cell
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cells = append(cells, cell{i, j})
		}
	}
	sp := e.rec.Start("engine.matrix").Arg("metric", metric)
	e.cells.Add(int64(len(cells)))

	// Memo pass: serve clean cells, keep the dirty ones as work. The
	// metric hash per side is computed once per sweep; map lookups are
	// serial (they are nanoseconds next to any recomputation).
	work := cells
	var keys []cellKey
	if e.cellMemo != nil {
		hs := make([]store.ContentHash, n)
		for i, name := range order {
			hs[i] = MetricHash(idxs[name], metric)
		}
		work = work[:0:0]
		reused := 0
		keys = make([]cellKey, 0, len(cells))
		for _, c := range cells {
			key := cellKey{a: hs[c.i], b: hs[c.j], metric: metric, costs: costs, policy: policy}
			if v, ok := e.cellLookup(key); ok {
				m[c.i][c.j], m[c.j][c.i] = v.norm, v.rev
				reused++
				continue
			}
			work = append(work, c)
			keys = append(keys, key)
		}
		e.countCells(reused, len(work))
	}

	var subPre ted.CacheStats
	if e.cache != nil {
		subPre = e.cache.Stats()
	}
	errs := make([]error, len(work))
	vals := make([]cellVal, len(work))
	ctxErr := e.runParallel(ctx, len(work), sp, "engine.cell", func(k int) {
		i, j := work[k].i, work[k].j
		ia, ib := idxs[order[i]], idxs[order[j]]
		var d Divergence
		var err error
		if costs == ted.UnitCosts() {
			d, err = e.Diverge(ia, ib, metric)
		} else {
			d, err = e.DivergeWithCosts(ia, ib, metric, costs)
		}
		if err != nil {
			errs[k] = err
			return
		}
		switch metric {
		case MetricSLOC, MetricLLOC:
			m[i][j] = d.Norm
			m[j][i] = d.Norm
		default:
			m[i][j] = d.Norm
			m[j][i] = safeDiv(d.Raw, Weight(ia, metric))
		}
		vals[k] = cellVal{norm: m[i][j], rev: m[j][i]}
	})
	sp.End()
	if e.cache != nil {
		subPost := e.cache.Stats()
		e.countSubBlocks(subPost.SubtreeHits-subPre.SubtreeHits,
			subPost.SubtreeMisses-subPre.SubtreeMisses)
	}
	if ctxErr != nil {
		// Canceled mid-sweep: the vals slots of unstarted cells are zero
		// and must never reach the memo, so the whole sweep publishes
		// nothing (all-or-nothing, like the store's index records).
		return nil, ctxErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if keys != nil {
		for k := range work {
			e.cellStore(keys[k], vals[k])
		}
	}
	return m, nil
}

// FromBase computes the same per-model divergence-from-base map as the
// package-level FromBase, one model per worker-pool task.
func (e *Engine) FromBase(idxs map[string]*Index, base string, order []string, metric string) (map[string]float64, error) {
	return e.FromBaseCtx(context.Background(), idxs, base, order, metric)
}

// FromBaseCtx is FromBase under a cancellation context: ctx is checked at
// every task grant, and a canceled sweep returns ctx.Err() with no output
// map (the same discard-partials rule as MatrixCtx).
func (e *Engine) FromBaseCtx(ctx context.Context, idxs map[string]*Index, base string, order []string, metric string) (map[string]float64, error) {
	ib, ok := idxs[base]
	if !ok {
		return nil, fmt.Errorf("core: no index for base model %q", base)
	}
	for _, name := range order {
		if _, ok := idxs[name]; !ok {
			return nil, fmt.Errorf("core: no index for model %q", name)
		}
	}
	sp := e.rec.Start("engine.frombase").Arg("metric", metric).Arg("base", base)
	vals := make([]float64, len(order))
	errs := make([]error, len(order))
	ctxErr := e.runParallel(ctx, len(order), sp, "engine.compare", func(k int) {
		d, err := e.Diverge(ib, idxs[order[k]], metric)
		if err != nil {
			errs[k] = err
			return
		}
		vals[k] = d.Norm
	})
	sp.End()
	if ctxErr != nil {
		return nil, ctxErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make(map[string]float64, len(order))
	for k, name := range order {
		out[name] = vals[k]
	}
	return out, nil
}

// IndexCodebase runs the extraction pipeline with the engine's worker
// pool and recorder (equivalent to IndexCodebase with Options.Workers and
// Options.Recorder set). With a persistent store attached, the codebase is
// first looked up in the store's index tier by content hash and options
// digest; misses run the pipeline and persist the result for the next
// run. Non-default option sets (coverage masks, KeepSystemHeaders
// ablations) warm-start too — their digest keys them to their own
// records, so two option sets can never cross-contaminate.
func (e *Engine) IndexCodebase(cb *corpus.Codebase, opts Options) (*Index, error) {
	return e.IndexCodebaseCtx(context.Background(), cb, opts)
}

// IndexCodebaseCtx is IndexCodebase under a cancellation context: the
// per-unit pipeline checks ctx at every task grant, and a canceled run
// returns ctx.Err() without persisting anything — the store's index tier
// only ever receives fully built indexes.
func (e *Engine) IndexCodebaseCtx(ctx context.Context, cb *corpus.Codebase, opts Options) (*Index, error) {
	opts.Workers = e.workers
	if opts.Recorder == nil {
		opts.Recorder = e.rec
	}
	if e.astore != nil {
		return e.indexCodebaseStored(ctx, cb, opts)
	}
	return IndexCodebaseCtx(ctx, cb, opts)
}

// runParallel executes fn(0..n-1) on at most e.workers goroutines under a
// cancellation context. With a single worker (or a single task) it
// degenerates to the serial loop — no goroutines, no synchronisation — so
// serial baselines stay untouched. When the engine carries a recorder,
// each task additionally records a child span under parent, its latency,
// and the queue depth it observed. Cancellation is checked at every task
// grant (see runParallelCtx); the returned error is ctx.Err() when the
// context was canceled, nil otherwise.
func (e *Engine) runParallel(ctx context.Context, n int, parent *obs.Span, spanName string, fn func(int)) error {
	if e.rec != nil {
		inner := fn
		fn = func(i int) {
			e.queueDepth.Observe(int64(n - i))
			start := time.Now()
			tsp := parent.Start(spanName)
			inner(i)
			tsp.End()
			e.taskNS.Observe(time.Since(start).Nanoseconds())
			e.tasks.Add(1)
		}
	}
	return runParallelCtx(ctx, n, e.workers, fn)
}

// runParallel is the uncancellable form of the shared bounded pool, kept
// for the index pipeline's non-context entry points.
func runParallel(n, workers int, fn func(int)) {
	runParallelCtx(context.Background(), n, workers, fn)
}

// runParallelCtx is the shared bounded pool: workers goroutines pull task
// indices off an atomic counter until the range is drained. Tasks must
// write only to their own slots; the final WaitGroup join publishes all
// writes to the caller.
//
// Cancellation is checked at every task grant — before a worker pulls its
// next index — never inside a task: once granted, a task runs to
// completion, so each of its writes (including anything it published to
// the shared TED cache) is a complete, exact result. After cancellation
// the pool therefore stops within at most `workers` further task
// completions and zero further grants, and the returned ctx.Err() tells
// the caller to discard the partially filled output slots rather than
// publish them anywhere.
func runParallelCtx(ctx context.Context, n, workers int, fn func(int)) error {
	done := ctx.Done()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if done != nil {
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	return nil
}
