package core

import (
	"context"

	"silvervale/internal/corpus"
	"silvervale/internal/obs"
	"silvervale/internal/store"
	"silvervale/internal/ted"
)

// NewEngineStore returns an engine whose cache and index pipeline are
// backed by a persistent artifact store: TED misses read through to (and
// write behind into) the store's distance tier, and IndexCodebase
// warm-starts from the index tier. The engine does not own the store —
// the caller must Close it to drain pending writes. A nil store yields
// exactly NewEngineObs.
func NewEngineStore(workers int, cache *ted.Cache, rec *obs.Recorder, st *store.Store) *Engine {
	e := NewEngineObs(workers, cache, rec)
	if st != nil {
		e.astore = st
		st.SetRecorder(rec)
		if cache != nil {
			cache.SetStore(st)
		}
	}
	return e
}

// Store returns the engine's persistent artifact store (nil when absent).
func (e *Engine) Store() *store.Store { return e.astore }

// CodebaseContentHash addresses everything that determines an index built
// from cb under default Options: app, model, language, the unit roots in
// order, and every file's name, content, and system flag in sorted-name
// order. Two codebases hash equal exactly when default-option indexing
// would produce identical indexes, so a warm start can never serve an
// index for sources that changed.
func CodebaseContentHash(cb *corpus.Codebase) store.ContentHash {
	h := store.NewHasher()
	h.WriteString(cb.App)
	h.WriteString(string(cb.Model))
	h.WriteString(string(cb.Lang))
	h.WriteUint64(uint64(len(cb.Units)))
	for _, u := range cb.Units {
		h.WriteString(u.File)
		h.WriteString(u.Role)
	}
	names := cb.FileNames()
	h.WriteUint64(uint64(len(names)))
	for _, name := range names {
		h.WriteString(name)
		h.WriteString(cb.Files[name])
		if cb.System[name] {
			h.WriteUint64(1)
		} else {
			h.WriteUint64(0)
		}
	}
	return h.Sum()
}

// indexCodebaseStored is the warm-start path behind Engine.IndexCodebase:
// look the codebase up in the index tier, fall back to the full pipeline,
// and persist fresh results. The key carries the options digest alongside
// the content hash, so every option set — the default run, coverage
// masks, KeepSystemHeaders ablations — warm-starts from its own records
// and can never be served an index built under different options.
func (e *Engine) indexCodebaseStored(ctx context.Context, cb *corpus.Codebase, opts Options) (*Index, error) {
	key := store.IndexKey{
		App:     cb.App,
		Model:   string(cb.Model),
		Content: CodebaseContentHash(cb),
		Opts:    opts.Digest(),
	}
	if db, ok := e.astore.LookupIndex(key); ok {
		idx, err := IndexFromDB(db)
		if err == nil {
			return idx, nil
		}
		// A record that decoded but does not reconstruct (e.g. an
		// unparsable tree) is as good as corrupt: recompute and rewrite.
	}
	idx, err := IndexCodebaseCtx(ctx, cb, opts)
	if err != nil {
		// Cancellation included: a canceled index is never persisted.
		return nil, err
	}
	e.astore.PutIndex(key, idx.ToDB())
	return idx, nil
}
