package core

import (
	"testing"

	"silvervale/internal/corpus"
	"silvervale/internal/faultfs"
	"silvervale/internal/obs"
	"silvervale/internal/store"
	"silvervale/internal/ted"
)

// buildMatrixFaulted mirrors buildMatrixWithStore but threads a recorder
// through NewEngineStore (which rewires the store's recorder to the
// engine's), so the trip counter is observable.
func buildMatrixFaulted(t *testing.T, workers int, st *store.Store, rec *obs.Recorder) ([][]float64, []string) {
	t.Helper()
	app, err := corpus.AppByName("babelstream")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngineStore(workers, ted.NewCache(), rec, st)
	idxs := map[string]*Index{}
	var order []string
	for _, m := range corpus.ModelsFor(app) {
		cb, err := corpus.Generate(app, m)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := e.IndexCodebase(cb, Options{})
		if err != nil {
			t.Fatal(err)
		}
		idxs[string(m)] = idx
		order = append(order, string(m))
	}
	mat, err := e.Matrix(idxs, order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	return mat, order
}

// TestDegradedStoreMatrixEquivalence is the degraded-equivalence gate of
// ISSUE 5: an engine over a store whose disk fails on every operation
// must produce matrices bit-identical to a memory-only engine at every
// worker count, and the breaker must fire exactly once per store no
// matter how many workers hammer it. Run under -race this also checks the
// trip path for data races.
func TestDegradedStoreMatrixEquivalence(t *testing.T) {
	cold, coldOrder := buildMatrixWithStore(t, 2, nil)

	for _, workers := range []int{1, 2, 4, 8} {
		// Open succeeds (MkdirAll is op 1), everything after fails.
		fsys := faultfs.New(faultfs.OS{}, faultfs.Fault{N: 2, Sticky: true, Class: faultfs.ENOSPC})
		st, err := store.Open(t.TempDir(), store.Options{FS: fsys, DegradeThreshold: 4})
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.NewRecorder()
		mat, order := buildMatrixFaulted(t, workers, st, rec)
		if !st.Degraded() {
			t.Fatalf("workers=%d: store never degraded", workers)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("workers=%d: non-strict Close: %v", workers, err)
		}
		if got := rec.Snapshot().Counters["store.degraded"]; got != 1 {
			t.Fatalf("workers=%d: store.degraded = %d, want exactly 1", workers, got)
		}
		if len(order) != len(coldOrder) {
			t.Fatalf("workers=%d: order length changed", workers)
		}
		for i := range order {
			if order[i] != coldOrder[i] {
				t.Fatalf("workers=%d: model order changed", workers)
			}
		}
		if !sameBits(cold, mat) {
			t.Fatalf("workers=%d: degraded matrix differs from memory-only", workers)
		}
	}
}
