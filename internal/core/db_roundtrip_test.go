package core

import (
	"bytes"
	"testing"

	"silvervale/internal/cbdb"
)

// TestDBRoundTripPreservesDivergence: two indexes stored as Codebase DBs
// and reloaded must report the same divergences as the live indexes — the
// portability property the Zstd+MessagePack artefact exists for.
func TestDBRoundTripPreservesDivergence(t *testing.T) {
	idxs, _ := indexAll(t, "babelstream", Options{})
	serial, omp := idxs["serial"], idxs["omp"]

	roundTrip := func(idx *Index) *Index {
		t.Helper()
		var buf bytes.Buffer
		if err := idx.ToDB().Write(&buf); err != nil {
			t.Fatal(err)
		}
		db, err := cbdb.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		out, err := IndexFromDB(db)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial2 := roundTrip(serial)
	omp2 := roundTrip(omp)

	for _, metric := range []string{MetricSLOC, MetricLLOC, MetricSource, MetricTsrc, MetricTsem, MetricTir} {
		live, err := Diverge(serial, omp, metric)
		if err != nil {
			t.Fatal(err)
		}
		stored, err := Diverge(serial2, omp2, metric)
		if err != nil {
			t.Fatal(err)
		}
		if live.Raw != stored.Raw || live.Norm != stored.Norm {
			t.Errorf("%s: live %v/%v vs stored %v/%v",
				metric, live.Raw, live.Norm, stored.Raw, stored.Norm)
		}
	}
	if serial2.Codebase != "babelstream" || serial2.Model != "serial" {
		t.Fatalf("metadata lost: %+v", serial2)
	}
}
