package core

import (
	"sort"
	"testing"

	"silvervale/internal/corpus"
	"silvervale/internal/ted"
)

// Ablations: the design-choice studies DESIGN.md calls out — asymmetric
// TED costs (paper §III.B future work) and the pq-gram approximation
// (paper §VII future work).

// TestCostAblationInsertDominatedPorts: a port from serial to a heavier
// model consists mostly of insertions, so raising the insertion cost must
// raise the raw distance more than raising the deletion cost — and the
// unit-cost distance sits between the two.
func TestCostAblationInsertDominatedPorts(t *testing.T) {
	idxs, _ := indexAll(t, "babelstream", Options{})
	serial := idxs["serial"]
	sycl := idxs["sycl-acc"]

	unit, err := DivergeWithCosts(serial, sycl, MetricTsem, ted.UnitCosts())
	if err != nil {
		t.Fatal(err)
	}
	insertHeavy, err := DivergeWithCosts(serial, sycl, MetricTsem,
		ted.Costs{Insert: 2, Delete: 1, Rename: 1})
	if err != nil {
		t.Fatal(err)
	}
	deleteHeavy, err := DivergeWithCosts(serial, sycl, MetricTsem,
		ted.Costs{Insert: 1, Delete: 2, Rename: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !(insertHeavy.Raw > unit.Raw && unit.Raw > 0) {
		t.Fatalf("insert-heavy raw %v should exceed unit raw %v", insertHeavy.Raw, unit.Raw)
	}
	if insertHeavy.Raw-unit.Raw <= deleteHeavy.Raw-unit.Raw {
		t.Fatalf("a serial→SYCL port is insert-dominated: insert-heavy delta %v, delete-heavy delta %v",
			insertHeavy.Raw-unit.Raw, deleteHeavy.Raw-unit.Raw)
	}
	// doubling every cost doubles raw and leaves the normalised value intact
	doubled, err := DivergeWithCosts(serial, sycl, MetricTsem,
		ted.Costs{Insert: 2, Delete: 2, Rename: 2})
	if err != nil {
		t.Fatal(err)
	}
	if doubled.Raw != 2*unit.Raw {
		t.Fatalf("uniform doubling: raw %v, want %v", doubled.Raw, 2*unit.Raw)
	}
	if diff := doubled.Norm - unit.Norm; diff > 0.0001 || diff < -0.0001 {
		t.Fatalf("uniform doubling must not change Norm: %v vs %v", doubled.Norm, unit.Norm)
	}
}

func TestWeightedDivergeRejectsNonTreeMetrics(t *testing.T) {
	idxs, _ := indexAll(t, "babelstream", Options{})
	if _, err := DivergeWithCosts(idxs["serial"], idxs["omp"], MetricSLOC, ted.UnitCosts()); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ApproxDiverge(idxs["serial"], idxs["omp"], MetricSource); err == nil {
		t.Fatal("expected error")
	}
}

// TestApproxTracksExactRanking: the pq-gram approximation must rank models
// by divergence from serial in (near-)agreement with exact TED — the
// property that makes it usable as the memory-friendly production mode.
func TestApproxTracksExactRanking(t *testing.T) {
	idxs, order := indexAll(t, "babelstream", Options{})
	type entry struct {
		model  string
		exact  float64
		approx float64
	}
	var entries []entry
	for _, m := range order {
		if m == "serial" {
			continue
		}
		ex, err := Diverge(idxs["serial"], idxs[m], MetricTsem)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := ApproxDiverge(idxs["serial"], idxs[m], MetricTsem)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, entry{m, ex.Norm, ap.Norm})
	}
	// Spearman-style: compare rank orders
	rank := func(key func(entry) float64) map[string]int {
		sorted := append([]entry{}, entries...)
		sort.Slice(sorted, func(i, j int) bool { return key(sorted[i]) < key(sorted[j]) })
		out := map[string]int{}
		for i, e := range sorted {
			out[e.model] = i
		}
		return out
	}
	re := rank(func(e entry) float64 { return e.exact })
	ra := rank(func(e entry) float64 { return e.approx })
	displacement := 0
	for m, r := range re {
		d := r - ra[m]
		if d < 0 {
			d = -d
		}
		displacement += d
	}
	// allow modest disagreement, forbid a scrambled ranking
	if displacement > len(entries) {
		t.Fatalf("approximation scrambles the model ranking (total displacement %d):\n%+v",
			displacement, entries)
	}
	// self comparison is exact zero
	self, err := ApproxDiverge(idxs["serial"], idxs["serial"], MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	if self.Norm != 0 {
		t.Fatalf("approx self-divergence = %v", self.Norm)
	}
}

// TestCoveragePerceivedMetrics: the +coverage variants shrink the
// perceived metrics too (Table I lists +coverage for SLOC/LLOC/Source).
func TestCoveragePerceivedMetrics(t *testing.T) {
	idxs, _ := indexAll(t, "babelstream", Options{})
	plain := idxs["serial"]
	covIdxs, _ := indexAllWithCoverage(t, "babelstream")
	masked := covIdxs["serial"]
	sum := func(idx *Index, f func(u *UnitIndex) int) int {
		total := 0
		for i := range idx.Units {
			total += f(&idx.Units[i])
		}
		return total
	}
	pS := sum(plain, func(u *UnitIndex) int { return u.SLOC })
	mS := sum(masked, func(u *UnitIndex) int { return u.SLOC })
	if mS >= pS {
		t.Fatalf("coverage-masked SLOC %d should shrink below %d", mS, pS)
	}
	pL := sum(plain, func(u *UnitIndex) int { return u.LLOC })
	mL := sum(masked, func(u *UnitIndex) int { return u.LLOC })
	if mL > pL {
		t.Fatalf("coverage-masked LLOC %d should not exceed %d", mL, pL)
	}
	if mS == 0 {
		t.Fatal("mask removed everything — attribution broken")
	}
}

var covCache map[string]*Index

func indexAllWithCoverage(t *testing.T, appName string) (map[string]*Index, []string) {
	t.Helper()
	if covCache != nil {
		return covCache, nil
	}
	app, err := corpus.AppByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := corpus.Generate(app, corpus.Serial)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := RunCoverage(cb)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := IndexCodebase(cb, Options{Coverage: prof})
	if err != nil {
		t.Fatal(err)
	}
	covCache = map[string]*Index{"serial": idx}
	return covCache, []string{"serial"}
}
