package core

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"silvervale/internal/cbdb"
	"silvervale/internal/msgpack"
	"silvervale/internal/store"
	"silvervale/internal/ted"
	"silvervale/internal/tree"
)

// SnapshotVersion guards the snapshot wire format; bump on any schema
// change so stale files are rejected instead of misread. Version 2 added
// the subtree-block section (DESIGN.md §13).
const SnapshotVersion = 2

// Snapshot is the warm state a watch session (or a CI baseline run)
// persists so a later `-since` invocation can resume incrementally: every
// model's indexed codebase DB, the engine's memoised matrix cells, and
// the TED cache's subtree-block memo — the layer that keeps a post-edit
// `-since` sweep at warm-edit latency rather than cold-TED latency.
// Restoring one costs a file read; everything else is content-addressed,
// so a restored snapshot never serves stale data — edits simply miss.
type Snapshot struct {
	Metric string
	Models map[string]*cbdb.DB
	Cells  []CellRecord
	Subs   []ted.SubtreeBlockRecord
}

// CellRecord is the portable form of one memoised matrix cell: the two
// sides' metric hashes, the full key (metric, cost model, tier policy) and
// the value (both normalised orientations, tier provenance). Floats travel
// as IEEE-754 bit patterns, so a restored cell is bit-identical to the one
// exported.
type CellRecord struct {
	A, B                  [2]uint64
	Metric                string
	Costs                 ted.Costs
	Policy                string
	Norm, Rev             float64
	Exact, Estimated, Far int
}

// ExportCells returns the engine's memoised matrix cells in a canonical
// deterministic order (key-sorted), ready for Snapshot persistence.
func (e *Engine) ExportCells() []CellRecord {
	if e.cellMemo == nil {
		return nil
	}
	e.cellMu.Lock()
	recs := make([]CellRecord, 0, len(e.cellMemo))
	for k, v := range e.cellMemo {
		recs = append(recs, CellRecord{
			A: [2]uint64{k.a.H1, k.a.H2}, B: [2]uint64{k.b.H1, k.b.H2},
			Metric: k.metric, Costs: k.costs, Policy: k.policy,
			Norm: v.norm, Rev: v.rev,
			Exact: v.tc.Exact, Estimated: v.tc.Estimated, Far: v.tc.Far,
		})
	}
	e.cellMu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		a, b := &recs[i], &recs[j]
		if a.A != b.A {
			return a.A[0] < b.A[0] || (a.A[0] == b.A[0] && a.A[1] < b.A[1])
		}
		if a.B != b.B {
			return a.B[0] < b.B[0] || (a.B[0] == b.B[0] && a.B[1] < b.B[1])
		}
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Costs != b.Costs {
			return a.Costs.Insert < b.Costs.Insert ||
				(a.Costs.Insert == b.Costs.Insert && a.Costs.Delete < b.Costs.Delete) ||
				(a.Costs.Insert == b.Costs.Insert && a.Costs.Delete == b.Costs.Delete && a.Costs.Rename < b.Costs.Rename)
		}
		return a.Policy < b.Policy
	})
	return recs
}

// ImportCells seeds the engine's cell memo from exported records. A
// cache-less engine (nil memo) ignores the import, matching its no-memo
// contract everywhere else.
func (e *Engine) ImportCells(recs []CellRecord) {
	if e.cellMemo == nil {
		return
	}
	e.cellMu.Lock()
	for _, r := range recs {
		k := cellKey{
			a:      store.ContentHash{H1: r.A[0], H2: r.A[1]},
			b:      store.ContentHash{H1: r.B[0], H2: r.B[1]},
			metric: r.Metric, costs: r.Costs, policy: r.Policy,
		}
		e.cellMemo[k] = cellVal{
			norm: r.Norm, rev: r.Rev,
			tc: TierCell{Exact: r.Exact, Estimated: r.Estimated, Far: r.Far},
		}
	}
	e.cellMu.Unlock()
}

// ExportSubtreeBlocks snapshots the shared cache's subtree-block memo in
// deterministic order (nil for a cache-less engine).
func (e *Engine) ExportSubtreeBlocks() []ted.SubtreeBlockRecord {
	if e.cache == nil {
		return nil
	}
	return e.cache.ExportSubtreeBlocks()
}

// ImportSubtreeBlocks seeds the shared cache's subtree-block memo from
// exported records; a cache-less engine ignores the import.
func (e *Engine) ImportSubtreeBlocks(recs []ted.SubtreeBlockRecord) {
	if e.cache == nil {
		return
	}
	e.cache.ImportSubtreeBlocks(recs)
}

// Write serialises the snapshot as gzip-compressed MessagePack, the same
// framing as cbdb files.
func (s *Snapshot) Write(w io.Writer) error {
	models := make(map[string]any, len(s.Models))
	for name, db := range s.Models {
		var buf bytes.Buffer
		if err := db.EncodeMsgpack(&buf); err != nil {
			return err
		}
		models[name] = buf.Bytes()
	}
	cells := make([]any, len(s.Cells))
	for i, c := range s.Cells {
		cells[i] = []any{
			c.A[0], c.A[1], c.B[0], c.B[1],
			c.Metric,
			int64(c.Costs.Insert), int64(c.Costs.Delete), int64(c.Costs.Rename),
			c.Policy,
			math.Float64bits(c.Norm), math.Float64bits(c.Rev),
			int64(c.Exact), int64(c.Estimated), int64(c.Far),
		}
	}
	subs := make([]any, len(s.Subs))
	for i, r := range s.Subs {
		blk := make([]byte, 4*len(r.Vals))
		for j, v := range r.Vals {
			binary.LittleEndian.PutUint32(blk[4*j:], uint32(v))
		}
		subs[i] = []any{
			r.A.H1, r.A.H2, uint64(r.A.Size),
			r.B.H1, r.B.H2, uint64(r.B.Size),
			int64(r.Costs.Insert), int64(r.Costs.Delete), int64(r.Costs.Rename),
			int64(r.L1), int64(r.L2),
			blk,
		}
	}
	payload := map[string]any{
		"version": int64(SnapshotVersion),
		"metric":  s.Metric,
		"models":  models,
		"cells":   cells,
		"subs":    subs,
	}
	gz := gzip.NewWriter(w)
	if err := msgpack.NewEncoder(gz).Encode(payload); err != nil {
		return err
	}
	return gz.Close()
}

// ReadSnapshot deserialises a snapshot written by Write.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	defer gz.Close()
	v, err := msgpack.NewDecoder(gz).Decode()
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("core: snapshot: not a map payload")
	}
	if ver, ok := m["version"].(int64); !ok || ver != SnapshotVersion {
		return nil, fmt.Errorf("core: snapshot: unsupported version %v (want %d)", m["version"], SnapshotVersion)
	}
	s := &Snapshot{Models: map[string]*cbdb.DB{}}
	s.Metric, _ = m["metric"].(string)
	rawModels, _ := m["models"].(map[string]any)
	for name, blob := range rawModels {
		data, ok := blob.([]byte)
		if !ok {
			return nil, fmt.Errorf("core: snapshot: model %q is not a DB blob", name)
		}
		db, err := cbdb.DecodeMsgpack(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("core: snapshot: model %q: %w", name, err)
		}
		s.Models[name] = db
	}
	rawCells, _ := m["cells"].([]any)
	for i, rc := range rawCells {
		parts, ok := rc.([]any)
		if !ok || len(parts) != 14 {
			return nil, fmt.Errorf("core: snapshot: malformed cell %d", i)
		}
		u := make([]uint64, len(parts))
		for j, p := range parts {
			switch x := p.(type) {
			case int64:
				u[j] = uint64(x)
			case uint64:
				u[j] = x
			}
		}
		metric, _ := parts[4].(string)
		policy, _ := parts[8].(string)
		s.Cells = append(s.Cells, CellRecord{
			A: [2]uint64{u[0], u[1]}, B: [2]uint64{u[2], u[3]},
			Metric: metric,
			Costs:  ted.Costs{Insert: int(u[5]), Delete: int(u[6]), Rename: int(u[7])},
			Policy: policy,
			Norm:   math.Float64frombits(u[9]), Rev: math.Float64frombits(u[10]),
			Exact: int(u[11]), Estimated: int(u[12]), Far: int(u[13]),
		})
	}
	rawSubs, _ := m["subs"].([]any)
	for i, rs := range rawSubs {
		parts, ok := rs.([]any)
		if !ok || len(parts) != 12 {
			return nil, fmt.Errorf("core: snapshot: malformed subtree block %d", i)
		}
		u := make([]uint64, len(parts))
		for j, p := range parts {
			switch x := p.(type) {
			case int64:
				u[j] = uint64(x)
			case uint64:
				u[j] = x
			}
		}
		blk, ok := parts[11].([]byte)
		l1, l2 := int64(u[9]), int64(u[10])
		if !ok || l1 <= 0 || l2 <= 0 || len(blk)%4 != 0 || l1*l2 != int64(len(blk)/4) {
			return nil, fmt.Errorf("core: snapshot: malformed subtree block %d", i)
		}
		vals := make([]int32, l1*l2)
		for j := range vals {
			vals[j] = int32(binary.LittleEndian.Uint32(blk[4*j:]))
		}
		s.Subs = append(s.Subs, ted.SubtreeBlockRecord{
			A: tree.Fingerprint{H1: u[0], H2: u[1], Size: uint32(u[2])},
			B: tree.Fingerprint{H1: u[3], H2: u[4], Size: uint32(u[5])},
			Costs: ted.Costs{Insert: int(u[6]), Delete: int(u[7]), Rename: int(u[8])},
			L1:    int32(l1), L2: int32(l2), Vals: vals,
		})
	}
	return s, nil
}

// Save writes the snapshot atomically: temp file in the target directory,
// fsync-free rename into place, so a crashed writer never leaves a
// half-written snapshot where a `-since` run would find it.
func (s *Snapshot) Save(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	if err := s.Write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSnapshot reads a snapshot file written by Save.
func LoadSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
