package core

import (
	"reflect"
	"testing"

	"silvervale/internal/corpus"
	"silvervale/internal/obs"
)

func genCB(t *testing.T, app corpus.App, model corpus.Model) *corpus.Codebase {
	t.Helper()
	cb, err := corpus.Generate(app, model)
	if err != nil {
		t.Fatalf("generate %s/%s: %v", app.Name, model, err)
	}
	return cb
}

func appByName(t *testing.T, name string) corpus.App {
	t.Helper()
	for _, a := range corpus.Apps() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no app %q", name)
	return corpus.App{}
}

// TestProfileCodebaseSinglePass: the profiled run's coverage must equal
// what RunCoverage produces — one execution serves both consumers.
func TestProfileCodebaseSinglePass(t *testing.T) {
	app := appByName(t, "babelstream")
	cb := genCB(t, app, corpus.Serial)
	cov, err := RunCoverage(cb)
	if err != nil {
		t.Fatalf("RunCoverage: %v", err)
	}
	rp, err := ProfileCodebase(cb, nil)
	if err != nil {
		t.Fatalf("ProfileCodebase: %v", err)
	}
	if rp.Err != nil {
		t.Fatalf("serial run faulted: %v", rp.Err)
	}
	if !reflect.DeepEqual(cov, rp.Coverage) {
		t.Fatal("profiled coverage differs from RunCoverage")
	}
	if rp.Cost == nil || rp.Cost.Total.IsZero() {
		t.Fatal("cost profile empty")
	}
	// the serial port's kernels execute fully: each must show real work
	for _, k := range app.Kernels {
		cv := rp.Cost.Func(k.Name)
		if cv.Calls == 0 || cv.LoopTrips == 0 || cv.MemBytes == 0 {
			t.Fatalf("kernel %s vector empty: %+v", k.Name, cv)
		}
	}
}

// TestProfileCodebaseAllModels: every C++ port in the corpus must profile
// without a fatal error (lenient mode carries the SYCL accessor ports
// past subscript faults) and attribute calls to every kernel wrapper.
func TestProfileCodebaseAllModels(t *testing.T) {
	for _, app := range corpus.Apps() {
		if app.Lang == corpus.LangFortran {
			continue
		}
		for _, m := range corpus.CXXModels() {
			cb := genCB(t, app, m)
			rp, err := ProfileCodebase(cb, nil)
			if err != nil {
				t.Fatalf("%s/%s: %v", app.Name, m, err)
			}
			for _, k := range app.Kernels {
				if rp.Cost.Func(k.Name).Calls == 0 {
					t.Errorf("%s/%s: kernel %s never called", app.Name, m, k.Name)
				}
			}
		}
	}
}

// TestProfileCodebaseDeterministic: cost profiles are bit-identical
// across repeated runs.
func TestProfileCodebaseDeterministic(t *testing.T) {
	app := appByName(t, "tealeaf")
	cb := genCB(t, app, corpus.SYCLACC)
	a, err := ProfileCodebase(cb, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProfileCodebase(cb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Cost, b.Cost) {
		t.Fatal("cost profiles differ across identical runs")
	}
	if a.Steps != b.Steps {
		t.Fatalf("steps differ: %d vs %d", a.Steps, b.Steps)
	}
}

// TestProfileCodebaseObs: the interp.run span and interp.* counters land
// on the provided span's recorder.
func TestProfileCodebaseObs(t *testing.T) {
	rec := obs.NewRecorder()
	root := rec.Start("test.root")
	cb := genCB(t, appByName(t, "babelstream"), corpus.Serial)
	if _, err := ProfileCodebase(cb, root); err != nil {
		t.Fatal(err)
	}
	root.End()
	for _, name := range []string{"interp.runs", "interp.stmts", "interp.loop_trips",
		"interp.mem_bytes", "interp.flops", "interp.calls"} {
		if rec.Counter(name).Value() == 0 {
			t.Errorf("counter %s is zero", name)
		}
	}
	var runSpans, kernelSpans int
	for _, s := range rec.Spans() {
		switch s.Name {
		case "interp.run":
			runSpans++
		case "interp.kernel":
			kernelSpans++
		}
	}
	if runSpans != 1 || kernelSpans == 0 {
		t.Fatalf("spans: interp.run=%d interp.kernel=%d", runSpans, kernelSpans)
	}
}
