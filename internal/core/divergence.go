package core

import (
	"fmt"
	"math"
	"sort"

	"silvervale/internal/seqdiff"
	"silvervale/internal/ted"
	"silvervale/internal/tree"
)

// distFunc computes an exact TED; approxFunc a pq-gram distance. The
// divergence recurrences are written against these so the serial one-shot
// path (ted.Distance) and the cached engine path (ted.Cache) share one
// implementation and produce bit-identical results.
type distFunc func(t1, t2 *tree.Node) int

type approxFunc func(t1, t2 *tree.Node) float64

// Divergence is the result of comparing two indexed codebases under one
// metric.
type Divergence struct {
	Metric string
	// Raw is the summed distance d(C1, C2) over matched unit pairs
	// (Eq. 4/6), or the absolute difference for the absolute metrics.
	Raw float64
	// DMax is dmax(C1, C2) (Eq. 7): the distance at which C2 counts as an
	// entirely different codebase.
	DMax float64
	// Norm is Raw / DMax — the value plotted in the paper's heatmaps.
	// A value of zero means the codebases are identical under the metric;
	// values may exceed 1 because dmax is not a strict upper bound.
	Norm float64
}

// match pairs units across two indexes by role — the match function of
// Eq. (4): "it should pair units with the same purpose". Unmatched units
// on either side contribute their full weight (everything must be inserted
// or deleted).
func match(a, b *Index) (pairs [][2]*UnitIndex, onlyA, onlyB []*UnitIndex) {
	bByRole := map[string]*UnitIndex{}
	for i := range b.Units {
		bByRole[b.Units[i].Role] = &b.Units[i]
	}
	seen := map[string]bool{}
	for i := range a.Units {
		ua := &a.Units[i]
		if ub, ok := bByRole[ua.Role]; ok {
			pairs = append(pairs, [2]*UnitIndex{ua, ub})
			seen[ua.Role] = true
		} else {
			onlyA = append(onlyA, ua)
		}
	}
	for i := range b.Units {
		if !seen[b.Units[i].Role] {
			onlyB = append(onlyB, &b.Units[i])
		}
	}
	return pairs, onlyA, onlyB
}

// Diverge computes the divergence of codebase b from codebase a under the
// named metric.
func Diverge(a, b *Index, metric string) (Divergence, error) {
	return divergeWith(a, b, metric, ted.Distance)
}

func divergeWith(a, b *Index, metric string, dist distFunc) (Divergence, error) {
	switch metric {
	case MetricSLOC, MetricLLOC:
		return divergeAbsolute(a, b, metric), nil
	case MetricSource, MetricSourcePP:
		return divergeSource(a, b, metric), nil
	case MetricTsrc, MetricTsrcPP, MetricTsem, MetricTsemI, MetricTir:
		return divergeTrees(a, b, metric, dist), nil
	default:
		return Divergence{}, fmt.Errorf("core: unknown metric %q", metric)
	}
}

// divergeAbsolute: SLOC/LLOC are absolute measures; as a relative distance
// for clustering we use the absolute difference normalised by the larger
// codebase — the only comparison the measure supports, and the reason the
// paper finds its clustering "appears random".
func divergeAbsolute(a, b *Index, metric string) Divergence {
	va, vb := 0, 0
	for i := range a.Units {
		if metric == MetricSLOC {
			va += a.Units[i].SLOC
		} else {
			va += a.Units[i].LLOC
		}
	}
	for i := range b.Units {
		if metric == MetricSLOC {
			vb += b.Units[i].SLOC
		} else {
			vb += b.Units[i].LLOC
		}
	}
	raw := math.Abs(float64(va - vb))
	dmax := math.Max(float64(va), float64(vb))
	return Divergence{Metric: metric, Raw: raw, DMax: dmax, Norm: safeDiv(raw, dmax)}
}

func unitLines(u *UnitIndex, pp bool) []string {
	if pp {
		return u.SourceLinesPP
	}
	return u.SourceLines
}

// divergeSource: Eq. (4) — the LCS-based textual distance over matched
// unit pairs. Raw is the edit distance (lines to delete plus insert);
// dmax is the total line count of b.
func divergeSource(a, b *Index, metric string) Divergence {
	pp := metric == MetricSourcePP
	pairs, onlyA, onlyB := match(a, b)
	raw, dmax := 0.0, 0.0
	for _, p := range pairs {
		la := unitLines(p[0], pp)
		lb := unitLines(p[1], pp)
		lcs := seqdiff.LCSStrings(la, lb)
		raw += float64(len(la) + len(lb) - 2*lcs)
		dmax += float64(len(lb))
	}
	for _, u := range onlyA {
		raw += float64(len(unitLines(u, pp)))
	}
	for _, u := range onlyB {
		n := float64(len(unitLines(u, pp)))
		raw += n
		dmax += n
	}
	return Divergence{Metric: metric, Raw: raw, DMax: dmax, Norm: safeDiv(raw, dmax)}
}

// divergeTrees: Eq. (6)/(7) — summed TED over matched tree pairs,
// normalised by the total node count of b's trees.
func divergeTrees(a, b *Index, metric string, dist distFunc) Divergence {
	pairs, onlyA, onlyB := match(a, b)
	raw, dmax := 0.0, 0.0
	for _, p := range pairs {
		ta := p[0].Trees[metric]
		tb := p[1].Trees[metric]
		raw += float64(dist(ta, tb))
		dmax += float64(tb.Size())
	}
	for _, u := range onlyA {
		raw += float64(u.Trees[metric].Size())
	}
	for _, u := range onlyB {
		n := float64(u.Trees[metric].Size())
		raw += n
		dmax += n
	}
	return Divergence{Metric: metric, Raw: raw, DMax: dmax, Norm: safeDiv(raw, dmax)}
}

// DivergeWithCosts computes a tree-metric divergence under a non-unit TED
// cost model — the ablation the paper leaves as future work: "adding new
// code may have a different productivity impact than removing existing
// code".
func DivergeWithCosts(a, b *Index, metric string, costs ted.Costs) (Divergence, error) {
	return divergeWithCosts(a, b, metric, costs, ted.DistanceWithCosts)
}

func divergeWithCosts(a, b *Index, metric string, costs ted.Costs,
	dist func(t1, t2 *tree.Node, c ted.Costs) int) (Divergence, error) {
	switch metric {
	case MetricTsrc, MetricTsrcPP, MetricTsem, MetricTsemI, MetricTir:
	default:
		return Divergence{}, fmt.Errorf("core: weighted divergence needs a tree metric, got %q", metric)
	}
	pairs, onlyA, onlyB := match(a, b)
	raw, dmax := 0.0, 0.0
	for _, p := range pairs {
		ta := p[0].Trees[metric]
		tb := p[1].Trees[metric]
		raw += float64(dist(ta, tb, costs))
		dmax += float64(tb.Size() * costs.Insert)
	}
	for _, u := range onlyA {
		raw += float64(u.Trees[metric].Size() * costs.Delete)
	}
	for _, u := range onlyB {
		n := u.Trees[metric].Size()
		raw += float64(n * costs.Insert)
		dmax += float64(n * costs.Insert)
	}
	return Divergence{Metric: metric, Raw: raw, DMax: dmax, Norm: safeDiv(raw, dmax)}, nil
}

// ApproxDiverge computes a tree-metric divergence with the pq-gram
// approximation instead of exact TED — the linear-memory mode the paper's
// future-work section calls for so that production-scale codebases (e.g.
// GROMACS) fit in workstation memory. The result is already normalised to
// [0, 1]; Raw/DMax report the weighted profile sizes.
func ApproxDiverge(a, b *Index, metric string) (Divergence, error) {
	return approxDivergeWith(a, b, metric, ted.ApproxDistance)
}

func approxDivergeWith(a, b *Index, metric string, approx approxFunc) (Divergence, error) {
	switch metric {
	case MetricTsrc, MetricTsrcPP, MetricTsem, MetricTsemI, MetricTir:
	default:
		return Divergence{}, fmt.Errorf("core: approximate divergence needs a tree metric, got %q", metric)
	}
	pairs, onlyA, onlyB := match(a, b)
	num, den := 0.0, 0.0
	for _, p := range pairs {
		ta := p[0].Trees[metric]
		tb := p[1].Trees[metric]
		w := float64(tb.Size())
		num += approx(ta, tb) * w
		den += w
	}
	for _, u := range onlyA {
		w := float64(u.Trees[metric].Size())
		num += w
		den += w
	}
	for _, u := range onlyB {
		w := float64(u.Trees[metric].Size())
		num += w
		den += w
	}
	return Divergence{Metric: metric, Raw: num, DMax: den, Norm: safeDiv(num, den)}, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	return a / b
}

// TreeSizes returns the per-metric total node counts of an index, used by
// reports and by memory estimates. Iteration is over sorted metric keys so
// the computation order is reproducible across runs and schedulers.
func TreeSizes(idx *Index) map[string]int {
	out := map[string]int{}
	for i := range idx.Units {
		for _, k := range sortedTreeKeys(idx.Units[i].Trees) {
			out[k] += idx.Units[i].Trees[k].Size()
		}
	}
	return out
}

// sortedTreeKeys returns the metric keys of a unit's tree map in sorted
// order — the fix for map-iteration nondeterminism anywhere per-metric
// work or output depends on visit order.
func sortedTreeKeys(m map[string]*tree.Node) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Weight returns the dmax denominator a codebase contributes when it is
// the right-hand side of a comparison: its total tree node count (tree
// metrics) or total normalised line count (Source).
func Weight(idx *Index, metric string) float64 {
	w := 0.0
	for i := range idx.Units {
		u := &idx.Units[i]
		switch metric {
		case MetricSource:
			w += float64(len(u.SourceLines))
		case MetricSourcePP:
			w += float64(len(u.SourceLinesPP))
		default:
			if t, ok := u.Trees[metric]; ok {
				w += float64(t.Size())
			}
		}
	}
	return w
}

// Matrix computes the full pairwise normalised-divergence matrix over the
// given model order — "we run the comparison step over the cartesian
// product of all models to yield a correlation matrix". Raw distances are
// symmetric under unit costs, so each unordered pair is computed once and
// normalised per direction by the right-hand codebase's weight (Eq. 7).
func Matrix(idxs map[string]*Index, order []string, metric string) ([][]float64, error) {
	n := len(order)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		ia, ok := idxs[order[i]]
		if !ok {
			return nil, fmt.Errorf("core: no index for model %q", order[i])
		}
		for j := i + 1; j < n; j++ {
			ib, ok := idxs[order[j]]
			if !ok {
				return nil, fmt.Errorf("core: no index for model %q", order[j])
			}
			d, err := Diverge(ia, ib, metric)
			if err != nil {
				return nil, err
			}
			switch metric {
			case MetricSLOC, MetricLLOC:
				m[i][j] = d.Norm
				m[j][i] = d.Norm
			default:
				m[i][j] = d.Norm
				m[j][i] = safeDiv(d.Raw, Weight(ia, metric))
			}
		}
	}
	return m, nil
}

// FromBase computes the divergence of every model from one base model
// (serial for Fig. 7–9, CUDA for the Fig. 10 migration study).
func FromBase(idxs map[string]*Index, base string, order []string, metric string) (map[string]float64, error) {
	ib, ok := idxs[base]
	if !ok {
		return nil, fmt.Errorf("core: no index for base model %q", base)
	}
	out := map[string]float64{}
	for _, m := range order {
		im, ok := idxs[m]
		if !ok {
			return nil, fmt.Errorf("core: no index for model %q", m)
		}
		d, err := Diverge(ib, im, metric)
		if err != nil {
			return nil, err
		}
		out[m] = d.Norm
	}
	return out, nil
}

// SelfCheck verifies that a codebase compared against itself yields zero
// divergence for every metric — the runtime validation the artefact
// description requires ("SilverVale compares the base model against
// itself; non-zero results will indicate an error").
func SelfCheck(idx *Index) error {
	for _, m := range Metrics() {
		d, err := Diverge(idx, idx, m)
		if err != nil {
			return err
		}
		if d.Norm != 0 {
			return fmt.Errorf("core: self-divergence %v under %s", d.Norm, m)
		}
	}
	return nil
}
