package core

// Exact-vs-tiered equivalence gate (the test harness the tiered engine is
// gated by): at budget 0 the tiered sweep must be byte-identical to the
// exact path; at nonzero budgets every cell's |tiered − exact| must stay
// within the policy's recorded budget, and the tiered output itself must
// be bit-identical across runs and worker counts. Run under -race (tier-1)
// to exercise the route/refine phase synchronisation.

import (
	"math"
	"strings"
	"testing"

	"silvervale/internal/ted"
)

var tierWorkerCounts = []int{1, 2, 4, 8}

// tierGateShort reports whether the gate should run its trimmed corpus:
// under -short, and under -race, where the detector multiplies DP cost
// ~10x and the full cross product would blow the package timeout.
func tierGateShort() bool { return testing.Short() || raceEnabled }

// tierGateApps pairs each seed app with the metrics the gate sweeps. The
// trimmed corpus is one small app with one metric; the full one adds a
// second metric plus one larger app.
func tierGateApps(short bool) map[string][]string {
	if short {
		return map[string][]string{"babelstream-fortran": {MetricTsem}}
	}
	return map[string][]string{
		"babelstream-fortran": {MetricTsem, MetricTsrc},
		"tealeaf":             {MetricTsem},
	}
}

// TestMatrixTieredBudgetZeroByteIdentical: the budget-0 policy is the
// exact-equivalent configuration — identical bytes to the exact Matrix at
// every worker count, with every routed pair reported exact.
func TestMatrixTieredBudgetZeroByteIdentical(t *testing.T) {
	for app, metrics := range tierGateApps(tierGateShort()) {
		idxs, order := buildIndexes(t, app)
		for _, metric := range metrics {
			want, err := testEngine.Matrix(idxs, order, metric)
			if err != nil {
				t.Fatal(err)
			}
			// One cache across worker counts: determinism must hold with a
			// cold or warm memo alike, and the shared memo keeps the gate
			// inside the race detector's budget.
			cache := ted.NewCache()
			for _, workers := range tierWorkerCounts {
				e := NewEngineWithCache(workers, cache)
				tm, err := e.MatrixTiered(idxs, order, metric, ted.NewTierPolicy(0))
				if err != nil {
					t.Fatal(err)
				}
				if matrixBytes(tm.Values) != matrixBytes(want) {
					t.Fatalf("%s/%s workers=%d: budget-0 tiered matrix differs from exact", app, metric, workers)
				}
				if tm.Stats.Pairs == 0 || tm.Stats.Pairs != tm.Stats.Exact {
					t.Fatalf("%s/%s: budget-0 provenance %+v, want all-exact", app, metric, tm.Stats)
				}
			}
		}
	}
}

// TestMatrixTieredWithinBudget: at nonzero budgets every cell's error
// against the exact matrix stays within the budget, provenance is
// mirrored and consistent, and the tiered bytes are identical across
// worker counts (scheduling independence under estimation).
func TestMatrixTieredWithinBudget(t *testing.T) {
	budgets := []float64{0.05, 0.2, 0.5}
	if tierGateShort() {
		budgets = budgets[:1]
	}
	for app, metrics := range tierGateApps(tierGateShort()) {
		idxs, order := buildIndexes(t, app)
		for _, metric := range metrics {
			exact, err := testEngine.Matrix(idxs, order, metric)
			if err != nil {
				t.Fatal(err)
			}
			cache := ted.NewCache()
			for _, budget := range budgets {
				policy := ted.NewTierPolicy(budget)
				var ref string
				var refStats TierStats
				for _, workers := range tierWorkerCounts {
					e := NewEngineWithCache(workers, cache)
					tm, err := e.MatrixTiered(idxs, order, metric, policy)
					if err != nil {
						t.Fatal(err)
					}
					for i := range tm.Values {
						for j := range tm.Values[i] {
							if got, want := tm.Values[i][j], exact[i][j]; math.Abs(got-want) > budget {
								t.Fatalf("%s/%s budget=%g workers=%d cell (%d,%d): tiered %v vs exact %v exceeds budget",
									app, metric, budget, workers, i, j, got, want)
							}
							if tm.Cells[i][j] != tm.Cells[j][i] {
								t.Fatalf("provenance not mirrored at (%d,%d)", i, j)
							}
						}
					}
					var sum TierStats
					for i := range tm.Cells {
						for j := i + 1; j < len(tm.Cells[i]); j++ {
							sum.add(tm.Cells[i][j])
						}
					}
					if sum != tm.Stats {
						t.Fatalf("sweep stats %+v != cell sum %+v", tm.Stats, sum)
					}
					b := matrixBytes(tm.Values)
					if ref == "" {
						ref, refStats = b, tm.Stats
						continue
					}
					if b != ref {
						t.Fatalf("%s/%s budget=%g: workers=%d bytes differ from workers=%d",
							app, metric, budget, workers, tierWorkerCounts[0])
					}
					if tm.Stats != refStats {
						t.Fatalf("%s/%s budget=%g: workers=%d stats %+v differ from %+v",
							app, metric, budget, workers, tm.Stats, refStats)
					}
				}
			}
		}
	}
}

// TestTieredDivergeMatchesMatrix: the single-pair entry point agrees with
// the corresponding matrix cell, and its provenance matches.
func TestTieredDivergeMatchesMatrix(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")
	policy := ted.NewTierPolicy(0.2)
	e := NewEngine(2)
	tm, err := e.MatrixTiered(idxs, order, MetricTsem, policy)
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(1)
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			d, tc, err := e2.TieredDiverge(idxs[order[i]], idxs[order[j]], MetricTsem, policy)
			if err != nil {
				t.Fatal(err)
			}
			if d.Norm != tm.Values[i][j] {
				t.Fatalf("cell (%d,%d): TieredDiverge %v != matrix %v", i, j, d.Norm, tm.Values[i][j])
			}
			if tc != tm.Cells[i][j] {
				t.Fatalf("cell (%d,%d): provenance %+v != matrix %+v", i, j, tc, tm.Cells[i][j])
			}
		}
	}
}

// TestTierStatsAccounting: engine-cumulative stats accumulate across
// sweeps, the stats line carries the policy and counts, and non-tree
// metrics report zero routed pairs (nothing to tier).
func TestTierStatsAccounting(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")
	policy := ted.NewTierPolicy(0.5)
	e := NewEngine(2)
	tm, err := e.MatrixTiered(idxs, order, MetricTsem, policy)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.TierStats(); got != tm.Stats {
		t.Fatalf("engine stats %+v != sweep stats %+v", got, tm.Stats)
	}
	if _, err := e.MatrixTiered(idxs, order, MetricTsem, policy); err != nil {
		t.Fatal(err)
	}
	if got := e.TierStats(); got.Pairs != 2*tm.Stats.Pairs {
		t.Fatalf("cumulative pairs = %d, want %d", got.Pairs, 2*tm.Stats.Pairs)
	}
	line := e.TierStats().Line(policy)
	for _, want := range []string{"ted tiering", "pairs", "exact", "estimated", "lsh-far", policy.String()} {
		if !strings.Contains(line, want) {
			t.Fatalf("stats line %q missing %q", line, want)
		}
	}

	sloc, err := e.MatrixTiered(idxs, order, MetricSLOC, policy)
	if err != nil {
		t.Fatal(err)
	}
	if sloc.Stats.Pairs != 0 {
		t.Fatalf("SLOC sweep routed %d pairs, want 0", sloc.Stats.Pairs)
	}
	exactSLOC, err := Matrix(idxs, order, MetricSLOC)
	if err != nil {
		t.Fatal(err)
	}
	if matrixBytes(sloc.Values) != matrixBytes(exactSLOC) {
		t.Fatal("non-tree tiered matrix differs from exact")
	}
}
