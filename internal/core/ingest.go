package core

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"silvervale/internal/cbdb"
	"silvervale/internal/compdb"
	"silvervale/internal/corpus"
	"silvervale/internal/store"
	"silvervale/internal/tree"
)

// LoadCodebase ingests a codebase from disk the way the paper's workflow
// does (Fig. 2): a directory of sources plus its compile_commands.json.
// Each compilation-database entry becomes a unit root (its role is the file
// stem), every source/header under the root joins the file set, and files
// matching standard-header names are flagged system. The returned codebase
// feeds IndexCodebase exactly like a generated one.
func LoadCodebase(root string, db *compdb.DB) (*corpus.Codebase, error) {
	if len(db.Entries) == 0 {
		return nil, fmt.Errorf("core: compilation database has no entries")
	}
	cb := &corpus.Codebase{
		Files:  map[string]string{},
		System: map[string]bool{},
	}
	lang := corpus.LangCXX
	model := "unknown"
	appName := filepath.Base(root)
	for _, e := range db.Entries {
		if e.Language() == "fortran" {
			lang = corpus.LangFortran
		}
		model = e.Model()
		rel := filepath.ToSlash(filepath.Clean(e.File))
		cb.Units = append(cb.Units, corpus.Unit{
			File: rel,
			Role: strings.TrimSuffix(filepath.Base(rel), filepath.Ext(rel)),
		})
	}
	cb.App = appName
	cb.Model = corpus.Model(model)
	cb.Lang = lang
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == "compile_commands.json" {
			return nil
		}
		if !isSourceLike(rel) {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		cb.Files[rel] = string(data)
		if corpus.IsStandardHeader(rel) {
			cb.System[rel] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, u := range cb.Units {
		if _, ok := cb.Files[u.File]; !ok {
			return nil, fmt.Errorf("core: unit %q from compilation database not found under %q", u.File, root)
		}
	}
	return cb, nil
}

// isSourceLike accepts the extensions (and extension-less std header
// names) the frontends understand.
func isSourceLike(name string) bool {
	switch strings.ToLower(filepath.Ext(name)) {
	case ".c", ".cc", ".cpp", ".cxx", ".cu", ".h", ".hpp", ".hh",
		".f", ".f90", ".f95", ".f03", ".f08":
		return true
	case "":
		return true // C++ standard headers have no extension
	}
	return false
}

// IngestDirectory is the one-call form: read compile_commands.json under
// root, load the codebase, and index it.
func IngestDirectory(root string, opts Options) (*Index, error) {
	db, err := compdb.Load(filepath.Join(root, "compile_commands.json"))
	if err != nil {
		return nil, err
	}
	cb, err := LoadCodebase(root, db)
	if err != nil {
		return nil, err
	}
	return IndexCodebase(cb, opts)
}

// ToDB converts an index into its portable Codebase DB form ("a portable
// set of semantic-bearing trees and metadata files", Fig. 2).
func (idx *Index) ToDB() *cbdb.DB {
	db := &cbdb.DB{
		Codebase: idx.Codebase, Model: idx.Model, Lang: string(idx.Lang),
		Opts: [2]uint64{idx.Opts.H1, idx.Opts.H2},
	}
	for i := range idx.Units {
		u := &idx.Units[i]
		rec := cbdb.UnitRecord{
			File: u.File, Role: u.Role, SLOC: u.SLOC, LLOC: u.LLOC,
			SourceLines: u.SourceLines, SourceLinesPP: u.SourceLinesPP,
			LineFiles: u.LineFiles, LineNums: u.LineNums,
			Trees:       map[string]string{},
			Deps:        u.Deps,
			MissingDeps: u.MissingDeps,
			SrcHash:     [2]uint64{u.SrcHash.H1, u.SrcHash.H2},
			LinesHash:   [2]uint64{u.LinesHash.H1, u.LinesHash.H2},
			LinesPPHash: [2]uint64{u.LinesPPHash.H1, u.LinesPPHash.H2},
		}
		if len(u.FPs) > 0 {
			rec.Fingerprints = map[string]tree.Fingerprint{}
			for m, fp := range u.FPs {
				rec.Fingerprints[m] = fp
			}
		}
		for m, t := range u.Trees {
			rec.Trees[m] = t.String()
		}
		db.Units = append(db.Units, rec)
	}
	return db
}

// IndexFromDB reconstructs an index from a stored Codebase DB, so two
// previously indexed codebases can be compared offline without their
// sources. Since cbdb format v2 the record is lossless: the +pp line set
// and the per-line origin attribution round-trip, so every metric computes
// identically from a reloaded index — the property the artifact store's
// warm starts depend on. (Records missing the +pp set fall back to the
// plain Source lines, the pre-v2 behaviour.)
func IndexFromDB(db *cbdb.DB) (*Index, error) {
	idx := &Index{
		Codebase: db.Codebase, Model: db.Model, Lang: corpus.Lang(db.Lang),
		Opts: store.ContentHash{H1: db.Opts[0], H2: db.Opts[1]},
	}
	for _, rec := range db.Units {
		u := UnitIndex{
			File: rec.File, Role: rec.Role, SLOC: rec.SLOC, LLOC: rec.LLOC,
			SourceLines:   rec.SourceLines,
			SourceLinesPP: rec.SourceLinesPP,
			LineFiles:     rec.LineFiles,
			LineNums:      rec.LineNums,
			Trees:         map[string]*tree.Node{},
			Deps:          rec.Deps,
			MissingDeps:   rec.MissingDeps,
			SrcHash:       store.ContentHash{H1: rec.SrcHash[0], H2: rec.SrcHash[1]},
			LinesHash:     store.ContentHash{H1: rec.LinesHash[0], H2: rec.LinesHash[1]},
			LinesPPHash:   store.ContentHash{H1: rec.LinesPPHash[0], H2: rec.LinesPPHash[1]},
		}
		if u.SourceLinesPP == nil {
			u.SourceLinesPP = rec.SourceLines
		}
		if len(rec.Fingerprints) > 0 {
			u.FPs = map[string]tree.Fingerprint{}
			for m, fp := range rec.Fingerprints {
				u.FPs[m] = fp
			}
		}
		for m, s := range rec.Trees {
			t, err := tree.ParseSexpr(s)
			if err != nil {
				return nil, fmt.Errorf("core: unit %q tree %q: %w", rec.File, m, err)
			}
			u.Trees[m] = t
		}
		idx.Units = append(idx.Units, u)
	}
	sortUnits(idx.Units)
	return idx, nil
}
