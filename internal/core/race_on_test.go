//go:build race

package core

// raceEnabled mirrors the race detector state so heavyweight DP gates can
// trim their corpus: the detector multiplies Zhang–Shasha cost ~10x and
// the full cross product would blow the package test timeout.
const raceEnabled = true
