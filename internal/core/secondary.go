package core

import (
	"math"
	"sort"

	"silvervale/internal/corpus"
	"silvervale/internal/minic"
	"silvervale/internal/tree"
)

// Secondary metrics (Section III.A): the back-references from trees to
// source locations let the framework reconstruct the dependency tree
// between source units and compute module coupling (Offutt, Harrold &
// Kolte) and overall tree complexity.

// DepGraph is the include-dependency graph of a codebase: unit root →
// transitively included files (system headers excluded unless kept).
type DepGraph struct {
	// Deps maps each unit root to its dependency files, sorted.
	Deps map[string][]string
}

// BuildDepGraph reconstructs the dependency graph by preprocessing each
// unit root and recording its include closure.
func BuildDepGraph(cb *corpus.Codebase, keepSystem bool) (*DepGraph, error) {
	g := &DepGraph{Deps: map[string][]string{}}
	if cb.Lang == corpus.LangFortran {
		// MiniFortran units carry `use` module references; the corpus keeps
		// modules in separate files paired by role, with no preprocessor.
		for _, u := range cb.Units {
			g.Deps[u.File] = nil
		}
		return g, nil
	}
	for _, u := range cb.Units {
		provider := &minic.MapProvider{Files: cb.Files, System: cb.System}
		pp := minic.NewPreprocessor(provider, nil)
		res, err := pp.Preprocess(u.File)
		if err != nil {
			return nil, err
		}
		var deps []string
		for _, inc := range res.Includes {
			if !keepSystem && cb.System[inc] {
				continue
			}
			deps = append(deps, inc)
		}
		sort.Strings(deps)
		g.Deps[u.File] = deps
	}
	return g, nil
}

// Coupling returns the module-coupling value of the codebase: the mean
// number of shared dependencies between unit pairs, normalised by the mean
// dependency count — 0 when units share nothing, 1 when every dependency
// is shared by every pair.
func (g *DepGraph) Coupling() float64 {
	units := make([]string, 0, len(g.Deps))
	for u := range g.Deps {
		units = append(units, u)
	}
	sort.Strings(units)
	if len(units) < 2 {
		return 0
	}
	totalDeps := 0
	for _, u := range units {
		totalDeps += len(g.Deps[u])
	}
	if totalDeps == 0 {
		return 0
	}
	meanDeps := float64(totalDeps) / float64(len(units))
	pairs, shared := 0, 0.0
	for i := 0; i < len(units); i++ {
		for j := i + 1; j < len(units); j++ {
			pairs++
			shared += float64(sharedCount(g.Deps[units[i]], g.Deps[units[j]]))
		}
	}
	return (shared / float64(pairs)) / meanDeps
}

func sharedCount(a, b []string) int {
	set := map[string]bool{}
	for _, x := range a {
		set[x] = true
	}
	n := 0
	for _, x := range b {
		if set[x] {
			n++
		}
	}
	return n
}

// Complexity summarises the structural complexity of an index's trees.
type Complexity struct {
	Nodes  int
	Depth  int
	Leaves int
	// Branching is the mean child count of internal nodes.
	Branching float64
	// Entropy is the Shannon entropy (bits) of the label distribution — a
	// rough "how many distinct constructs" measure.
	Entropy float64
}

// TreeComplexity computes the overall tree complexity of one metric's
// trees across an index.
func TreeComplexity(idx *Index, metric string) Complexity {
	var c Complexity
	hist := map[string]int{}
	internal := 0
	childSum := 0
	for i := range idx.Units {
		t, ok := idx.Units[i].Trees[metric]
		if !ok || t == nil {
			continue
		}
		c.Nodes += t.Size()
		c.Leaves += t.Leaves()
		if d := t.Depth(); d > c.Depth {
			c.Depth = d
		}
		t.Walk(func(n *tree.Node) bool {
			hist[n.Label]++
			if len(n.Children) > 0 {
				internal++
				childSum += len(n.Children)
			}
			return true
		})
	}
	if internal > 0 {
		c.Branching = float64(childSum) / float64(internal)
	}
	total := 0
	for _, n := range hist {
		total += n
	}
	if total > 0 {
		for _, n := range hist {
			p := float64(n) / float64(total)
			c.Entropy -= p * math.Log2(p)
		}
	}
	return c
}
