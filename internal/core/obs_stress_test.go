package core

// Observability stress test: the instrumented engine must stay
// race-clean (tier-1 runs this package under -race), its span tree must
// be structurally sound at every worker count, and the deterministic
// counters must match the serial run exactly. Scheduling-dependent
// numbers (cache hits vs misses under contention) are deliberately not
// compared.

import (
	"testing"

	"silvervale/internal/obs"
	"silvervale/internal/ted"
)

// runInstrumentedMatrix runs one Matrix sweep on a fresh recorder, cache,
// and engine, and returns the recorder and the matrix bytes.
func runInstrumentedMatrix(t *testing.T, idxs map[string]*Index, order []string, workers int) (*obs.Recorder, string) {
	t.Helper()
	rec := obs.NewRecorder()
	engine := NewEngineObs(workers, ted.NewCache(), rec)
	m, err := engine.Matrix(idxs, order, MetricTsem)
	if err != nil {
		t.Fatal(err)
	}
	return rec, matrixBytes(m)
}

// checkSpanTree validates structural invariants of a recorded span set:
// unique IDs, parents that exist, non-negative durations, and children
// that start no earlier than their parent.
func checkSpanTree(t *testing.T, spans []obs.SpanRecord) {
	t.Helper()
	byID := make(map[uint64]obs.SpanRecord, len(spans))
	for _, s := range spans {
		if _, dup := byID[s.ID]; dup {
			t.Fatalf("duplicate span id %d (%s)", s.ID, s.Name)
		}
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Dur < 0 {
			t.Errorf("span %s has negative duration %v", s.Name, s.Dur)
		}
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Errorf("span %s is orphaned: parent %d not recorded", s.Name, s.Parent)
			continue
		}
		if s.Start < p.Start {
			t.Errorf("span %s starts %v before its parent %s", s.Name, p.Start-s.Start, p.Name)
		}
	}
}

func TestObsEngineStress(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")

	// Serial instrumented run is the reference for deterministic counters.
	refRec, refBytes := runInstrumentedMatrix(t, idxs, order, 1)
	refSnap := refRec.Snapshot()
	deterministic := []string{"engine.cells", "engine.tasks", "ted.calls"}
	for _, name := range deterministic {
		if refSnap.Counters[name] == 0 {
			t.Fatalf("serial run recorded no %s", name)
		}
	}
	checkSpanTree(t, refRec.Spans())

	for _, workers := range []int{2, 4, 8} {
		rec, gotBytes := runInstrumentedMatrix(t, idxs, order, workers)
		if gotBytes != refBytes {
			t.Fatalf("workers=%d: instrumented matrix differs from serial", workers)
		}
		spans := rec.Spans()
		checkSpanTree(t, spans)
		// Exactly one engine.matrix root, and one engine.cell per cell.
		var roots, cells int
		for _, s := range spans {
			switch s.Name {
			case "engine.matrix":
				roots++
			case "engine.cell":
				cells++
			}
		}
		if roots != 1 {
			t.Errorf("workers=%d: %d engine.matrix spans, want 1", workers, roots)
		}
		if want := int(refSnap.Counters["engine.cells"]); cells != want {
			t.Errorf("workers=%d: %d engine.cell spans, want %d", workers, cells, want)
		}
		snap := rec.Snapshot()
		for _, name := range deterministic {
			if snap.Counters[name] != refSnap.Counters[name] {
				t.Errorf("workers=%d: counter %s = %d, serial = %d",
					workers, name, snap.Counters[name], refSnap.Counters[name])
			}
		}
	}
}

func TestResolveWorkersClamping(t *testing.T) {
	n := ResolveWorkers(0) // NumCPU
	if n < 1 {
		t.Fatalf("ResolveWorkers(0) = %d", n)
	}
	cases := map[int]int{
		0:     n, // default: all CPUs
		-3:    n, // negative clamps up
		1:     1, // serial stays serial
		n:     n,
		n + 7: n, // oversubscription clamps down
	}
	for req, want := range cases {
		if got := ResolveWorkers(req); got != want {
			t.Errorf("ResolveWorkers(%d) = %d, want %d", req, got, want)
		}
	}
	if got := NewEngine(2 * n).Workers(); got != n {
		t.Errorf("NewEngine(%d).Workers() = %d, want %d", 2*n, got, n)
	}
	if got := (Options{Workers: -1}).ResolvedWorkers(); got != n {
		t.Errorf("Options{Workers: -1}.ResolvedWorkers() = %d, want %d", got, n)
	}
}
