package core

import (
	"path/filepath"
	"reflect"
	"testing"

	"silvervale/internal/cbdb"
	"silvervale/internal/corpus"
	"silvervale/internal/coverage"
	"silvervale/internal/srcloc"
	"silvervale/internal/store"
	"silvervale/internal/ted"
)

// pr8ExtraFn is a semantically visible edit: appended to any C++ unit it
// adds a function, moving the unit's tsem tree (and so its fingerprint).
const pr8ExtraFn = "\ndouble pr8_extra(double x) {\n\treturn x * 2.0;\n}\n"

// generateAll builds the codebases of every port of an app.
func generateAll(tb testing.TB, appName string) (map[string]*corpus.Codebase, []string) {
	tb.Helper()
	app, err := corpus.AppByName(appName)
	if err != nil {
		tb.Fatal(err)
	}
	cbs := map[string]*corpus.Codebase{}
	var order []string
	for _, m := range corpus.ModelsFor(app) {
		cb, err := corpus.Generate(app, m)
		if err != nil {
			tb.Fatal(err)
		}
		cbs[string(m)] = cb
		order = append(order, string(m))
	}
	return cbs, order
}

// editKernels appends pr8ExtraFn to the codebase's kernels unit root and
// returns the edited file name.
func editKernels(tb testing.TB, cb *corpus.Codebase) string {
	tb.Helper()
	for _, u := range cb.Units {
		if u.Role == "kernels" {
			cb.Files[u.File] += pr8ExtraFn
			return u.File
		}
	}
	tb.Fatal("no kernels unit")
	return ""
}

// TestOptionsDigest pins what the digest distinguishes (system-header
// handling, coverage mask contents) and what it deliberately ignores
// (worker count, recorder — scheduling cannot change results).
func TestOptionsDigest(t *testing.T) {
	base := Options{}.Digest()
	if base == (store.ContentHash{}) {
		t.Fatal("zero digest for default options")
	}
	if d := (Options{Workers: 7}).Digest(); d != base {
		t.Fatal("worker count must not affect the digest")
	}
	if d := (Options{KeepSystemHeaders: true}).Digest(); d == base {
		t.Fatal("KeepSystemHeaders must move the digest")
	}
	mask := srcloc.NewLineMask()
	mask.Set("a.cpp", 3, true)
	withCov := Options{Coverage: coverage.NewProfile(mask)}
	d1 := withCov.Digest()
	if d1 == base {
		t.Fatal("a coverage mask must move the digest")
	}
	mask2 := srcloc.NewLineMask()
	mask2.Set("a.cpp", 3, true)
	if d := (Options{Coverage: coverage.NewProfile(mask2)}).Digest(); d != d1 {
		t.Fatal("equal masks must digest equal")
	}
	mask2.Set("a.cpp", 4, false)
	if d := (Options{Coverage: coverage.NewProfile(mask2)}).Digest(); d == d1 {
		t.Fatal("a dead line added to the mask must move the digest")
	}
}

// TestIncrementalIndexReuse: after a one-unit edit the incremental path
// reparses exactly that unit, and the result is indistinguishable from a
// cold index of the edited codebase.
func TestIncrementalIndexReuse(t *testing.T) {
	app, err := corpus.AppByName("babelstream")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := corpus.Generate(app, corpus.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	prior, err := IndexCodebase(cb, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// No edit: everything reuses, nothing reparses.
	same, st, err := IndexCodebaseIncremental(cb, prior, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.UnitsReparsed != 0 || st.UnitsReused != len(prior.Units) {
		t.Fatalf("unedited codebase: %+v", st)
	}
	for _, m := range Metrics() {
		if MetricHash(same, m) != MetricHash(prior, m) {
			t.Fatalf("%s: unedited incremental index hashes differently", m)
		}
	}

	edited := editKernels(t, cb)
	incr, st, err := IndexCodebaseIncremental(cb, prior, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.UnitsReparsed != 1 || st.UnitsReused != len(prior.Units)-1 {
		t.Fatalf("one-unit edit (%s): %+v", edited, st)
	}
	cold, err := IndexCodebase(cb, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Metrics() {
		if MetricHash(incr, m) != MetricHash(cold, m) {
			t.Fatalf("%s: incremental index diverges from cold reindex", m)
		}
	}
	for _, m := range Metrics() {
		d1, err := Diverge(prior, incr, m)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := Diverge(prior, cold, m)
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("%s: incremental %+v vs cold %+v", m, d1, d2)
		}
	}

	// A different-options prior disqualifies itself: everything reparses.
	_, st, err = IndexCodebaseIncremental(cb, prior, Options{Workers: 1, KeepSystemHeaders: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.UnitsReused != 0 {
		t.Fatalf("prior built under different options was reused: %+v", st)
	}
}

// pr8Sweep indexes every codebase incrementally against prior indexes and
// runs one matrix sweep, returning the new indexes and the matrix.
func pr8Sweep(tb testing.TB, e *Engine, cbs map[string]*corpus.Codebase,
	prior map[string]*Index, order []string, metric string) (map[string]*Index, [][]float64) {
	tb.Helper()
	idxs := map[string]*Index{}
	for _, name := range order {
		idx, _, err := e.IndexCodebaseIncremental(cbs[name], prior[name], Options{})
		if err != nil {
			tb.Fatal(err)
		}
		idxs[name] = idx
	}
	m, err := e.Matrix(idxs, order, metric)
	if err != nil {
		tb.Fatal(err)
	}
	return idxs, m
}

// TestInvalidationExactness is the row/column property test: an edit to
// one unit of one model invalidates exactly the matrix cells touching
// that model — every other cell is served from the memo — and the warm
// matrix is bit-identical to a cold engine's sweep of the edited corpus.
func TestInvalidationExactness(t *testing.T) {
	cbs, order := generateAll(t, "babelstream")
	n := len(order)
	cells := n * (n - 1) / 2

	e := NewEngine(2)
	idxs, cold := pr8Sweep(t, e, cbs, nil, order, MetricTsem)
	base := e.IncrStats()
	if base.CellsRecomputed != cells || base.CellsReused != 0 {
		t.Fatalf("cold sweep: %+v", base)
	}

	// Edit one unit of one model.
	const victim = "cuda"
	editKernels(t, cbs[victim])
	idxs2, warm := pr8Sweep(t, e, cbs, idxs, order, MetricTsem)
	d := e.IncrStats().Delta(base)

	if d.UnitsReparsed != 1 {
		t.Fatalf("one-unit edit reparsed %d units", d.UnitsReparsed)
	}
	if d.UnitsReused != n*2-1 {
		// every babelstream port is driver + kernels = 2 units
		t.Fatalf("units reused = %d, want %d", d.UnitsReused, n*2-1)
	}
	// Exactly the n-1 cells pairing the victim with every other model
	// recompute; every cell not touching the victim is reused.
	if d.CellsRecomputed != n-1 {
		t.Fatalf("edit to one model recomputed %d cells, want %d", d.CellsRecomputed, n-1)
	}
	if d.CellsReused != cells-(n-1) {
		t.Fatalf("cells reused = %d, want %d", d.CellsReused, cells-(n-1))
	}

	// Untouched cells are bit-identical to the previous sweep...
	vi := -1
	for i, name := range order {
		if name == victim {
			vi = i
		}
	}
	for i := range warm {
		for j := range warm[i] {
			if i == vi || j == vi {
				continue
			}
			if warm[i][j] != cold[i][j] {
				t.Fatalf("cell [%d][%d] moved without either side changing", i, j)
			}
		}
	}
	// ...and the whole warm matrix matches a cold engine, bit for bit.
	fresh := NewEngine(2)
	_, coldEdited := pr8Sweep(t, fresh, cbs, nil, order, MetricTsem)
	if !sameBits(warm, coldEdited) {
		t.Fatal("warm incremental matrix differs from a cold sweep of the edited corpus")
	}

	// Reverting the edit restores the original fingerprints, so the memo
	// still holds every cell of the original corpus: zero recomputes.
	cbRestored, err := corpus.Generate(mustApp(t, "babelstream"), corpus.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	cbs[victim] = cbRestored
	before := e.IncrStats()
	_, reverted := pr8Sweep(t, e, cbs, idxs2, order, MetricTsem)
	d = e.IncrStats().Delta(before)
	if d.CellsRecomputed != 0 || d.CellsReused != cells {
		t.Fatalf("reverted edit still recomputed cells: %+v", d)
	}
	if !sameBits(reverted, cold) {
		t.Fatal("reverted matrix differs from the original")
	}
}

func mustApp(tb testing.TB, name string) corpus.App {
	tb.Helper()
	app, err := corpus.AppByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	return app
}

// TestCellMemoCostModelChange: cells memoised under one TED cost model
// are never served to a sweep under another — the cost model is part of
// the cell key.
func TestCellMemoCostModelChange(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")
	n := len(order)
	cells := n * (n - 1) / 2
	e := NewEngine(2)
	if _, err := e.MatrixWithCosts(idxs, order, MetricTsem, ted.UnitCosts()); err != nil {
		t.Fatal(err)
	}
	base := e.IncrStats()
	if base.CellsRecomputed != cells {
		t.Fatalf("cold sweep: %+v", base)
	}
	heavy := ted.Costs{Insert: 2, Delete: 2, Rename: 1}
	if _, err := e.MatrixWithCosts(idxs, order, MetricTsem, heavy); err != nil {
		t.Fatal(err)
	}
	d := e.IncrStats().Delta(base)
	if d.CellsReused != 0 || d.CellsRecomputed != cells {
		t.Fatalf("changed cost model was served cached cells: %+v", d)
	}
	// Same costs again: now everything hits.
	before := e.IncrStats()
	if _, err := e.MatrixWithCosts(idxs, order, MetricTsem, heavy); err != nil {
		t.Fatal(err)
	}
	d = e.IncrStats().Delta(before)
	if d.CellsReused != cells || d.CellsRecomputed != 0 {
		t.Fatalf("repeat sweep under the same costs missed the memo: %+v", d)
	}
}

// TestTieredMemoPolicyKey: a tiered sweep never reuses cells memoised by
// the exact path (or under a different budget) — the rendered policy is
// part of the cell key — while a repeated sweep under the same policy is
// answered entirely from the memo with its tier provenance intact.
func TestTieredMemoPolicyKey(t *testing.T) {
	idxs, order := buildIndexes(t, "babelstream-fortran")
	n := len(order)
	cells := n * (n - 1) / 2
	e := NewEngine(2)
	if _, err := e.Matrix(idxs, order, MetricTsem); err != nil {
		t.Fatal(err)
	}
	base := e.IncrStats()

	policy := ted.NewTierPolicy(0.05)
	tm, err := e.MatrixTiered(idxs, order, MetricTsem, policy)
	if err != nil {
		t.Fatal(err)
	}
	d := e.IncrStats().Delta(base)
	if d.CellsReused != 0 || d.CellsRecomputed != cells {
		t.Fatalf("tiered sweep was served exact-path cells: %+v", d)
	}

	before := e.IncrStats()
	tm2, err := e.MatrixTiered(idxs, order, MetricTsem, policy)
	if err != nil {
		t.Fatal(err)
	}
	d = e.IncrStats().Delta(before)
	if d.CellsReused != cells || d.CellsRecomputed != 0 {
		t.Fatalf("repeat tiered sweep missed the memo: %+v", d)
	}
	if !sameBits(tm.Values, tm2.Values) {
		t.Fatal("memoised tiered matrix differs from the computed one")
	}
	if tm2.Stats != tm.Stats {
		t.Fatalf("memo hits lost tier provenance: %+v vs %+v", tm2.Stats, tm.Stats)
	}
}

// TestIncrementalDeterminismAcrossWorkers is the PR 8 determinism gate:
// cold sweep, one-function edit, warm incremental re-sweep — bit-identical
// to a cold engine at every worker count.
func TestIncrementalDeterminismAcrossWorkers(t *testing.T) {
	workerCounts := []int{1, 2, 4, 8}
	if raceEnabled {
		workerCounts = []int{1, 4}
	}
	var want [][]float64
	for _, workers := range workerCounts {
		cbs, order := generateAll(t, "babelstream")
		e := NewEngine(workers)
		idxs, _ := pr8Sweep(t, e, cbs, nil, order, MetricTsem)
		editKernels(t, cbs["omp"])
		_, warm := pr8Sweep(t, e, cbs, idxs, order, MetricTsem)

		fresh := NewEngine(workers)
		_, cold := pr8Sweep(t, fresh, cbs, nil, order, MetricTsem)
		if !sameBits(warm, cold) {
			t.Fatalf("workers=%d: warm incremental matrix differs from cold", workers)
		}
		if want == nil {
			want = warm
		} else if !sameBits(warm, want) {
			t.Fatalf("workers=%d: matrix differs from workers=%d", workers, workerCounts[0])
		}
	}
}

// TestSnapshotRoundTrip: the watch snapshot (indexes + memoised cells)
// survives Save/Load, and a restored engine answers a repeat sweep
// entirely from the imported memo, bit-identically.
func TestSnapshotRoundTrip(t *testing.T) {
	cbs, order := generateAll(t, "babelstream-fortran")
	e := NewEngine(1)
	idxs, cold := pr8Sweep(t, e, cbs, nil, order, MetricTsem)
	n := len(order)
	cells := n * (n - 1) / 2

	snap := &Snapshot{Metric: MetricTsem, Models: map[string]*cbdb.DB{}}
	for name, idx := range idxs {
		snap.Models[name] = idx.ToDB()
	}
	// Entries can undercount cells: ports with bit-identical trees share
	// a metric hash, so their cells collapse onto one memo key.
	snap.Cells = e.ExportCells()
	if len(snap.Cells) == 0 || len(snap.Cells) > cells {
		t.Fatalf("exported %d cells, want 1..%d", len(snap.Cells), cells)
	}
	path := filepath.Join(t.TempDir(), "warm.svsnap")
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Metric != MetricTsem || len(loaded.Models) != n {
		t.Fatalf("loaded snapshot: metric=%q models=%d", loaded.Metric, len(loaded.Models))
	}
	if !reflect.DeepEqual(loaded.Cells, snap.Cells) {
		t.Fatal("cell records did not round trip")
	}

	e2 := NewEngine(1)
	e2.ImportCells(loaded.Cells)
	prior := map[string]*Index{}
	for name, db := range loaded.Models {
		idx, err := IndexFromDB(db)
		if err != nil {
			t.Fatal(err)
		}
		prior[name] = idx
	}
	_, warm := pr8Sweep(t, e2, cbs, prior, order, MetricTsem)
	st := e2.IncrStats()
	if st.CellsRecomputed != 0 || st.CellsReused != cells {
		t.Fatalf("restored engine recomputed cells: %+v", st)
	}
	if st.UnitsReparsed != 0 {
		t.Fatalf("restored engine reparsed units: %+v", st)
	}
	if !sameBits(warm, cold) {
		t.Fatal("restored sweep differs from the original")
	}
}
