package core

import (
	"fmt"
	"testing"

	"silvervale/internal/corpus"
)

var indexCache = map[string]map[string]*Index{}

// indexAll builds (and caches) indexes for every model of an app — the
// indexing step is deterministic, so tests share one index set per app.
func indexAll(t *testing.T, appName string, opts Options) (map[string]*Index, []string) {
	t.Helper()
	app, err := corpus.AppByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, m := range corpus.ModelsFor(app) {
		order = append(order, string(m))
	}
	cacheable := opts.Coverage == nil && !opts.KeepSystemHeaders
	if cacheable {
		if idxs, ok := indexCache[appName]; ok {
			return idxs, order
		}
	}
	idxs := map[string]*Index{}
	for _, m := range corpus.ModelsFor(app) {
		cb, err := corpus.Generate(app, m)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := IndexCodebase(cb, opts)
		if err != nil {
			t.Fatal(err)
		}
		idxs[string(m)] = idx
	}
	if cacheable {
		indexCache[appName] = idxs
	}
	return idxs, order
}

// TestProbeDivergenceLandscape prints the divergence-from-serial table for
// TeaLeaf under every metric (run with -v). It asserts nothing; the shape
// tests encode the expectations.
func TestProbeDivergenceLandscape(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	idxs, order := indexAll(t, "tealeaf", Options{})
	for _, metric := range Metrics() {
		from, err := testEngine.FromBase(idxs, "serial", order, metric)
		if err != nil {
			t.Fatal(err)
		}
		row := fmt.Sprintf("%-10s", metric)
		for _, m := range order {
			row += fmt.Sprintf(" %s=%.3f", m, from[m])
		}
		t.Log(row)
	}
	for _, m := range order {
		sizes := TreeSizes(idxs[m])
		t.Logf("sizes %-10s tsrc=%d tsem=%d tsem+i=%d tir=%d  sloc=%d",
			m, sizes[MetricTsrc], sizes[MetricTsem], sizes[MetricTsemI], sizes[MetricTir],
			idxs[m].Units[0].SLOC+idxs[m].Units[1].SLOC)
	}
}
