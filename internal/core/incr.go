package core

import (
	"context"
	"fmt"

	"silvervale/internal/corpus"
	"silvervale/internal/store"
	"silvervale/internal/ted"
	"silvervale/internal/tree"
)

// Incremental recomputation (DESIGN.md §12). A one-line edit to one port
// used to re-run the whole pipeline: every unit reparsed, every matrix
// cell recomputed. This file derives the dirty set instead, at two
// granularities:
//
//   - frontend: IndexCodebaseIncremental reuses parsed units from a prior
//     Index whenever the unit's recomputed source hash (root file, spliced
//     include closure, system flags, missing-include absences) matches the
//     one recorded at index time — only edited units re-run MiniC or
//     MiniFortran;
//   - matrix cells: the engine memoises every divergence cell under
//     (per-side metric hash, metric, cost model, tier policy), so a warm
//     re-sweep recomputes exactly the cells whose fingerprint pair changed
//     and serves the rest from the memo, bit-identically.
//
// Both layers are content-addressed: nothing is invalidated by time or
// edit events, stale entries simply become unreachable, exactly like the
// ted.Cache distance memo.

// optsDigestVersion is mixed into Options.Digest; bump it if the digest
// schema changes so old persisted digests stop matching.
const optsDigestVersion = 1

// Digest returns the content digest of the options that affect indexing
// output: the system-header handling and the full coverage mask. Workers
// and Recorder are scheduling concerns — the result is identical for every
// value, so they are deliberately excluded. Index records in the
// persistent store and incremental reuse both key on this digest, which is
// what lets coverage-masked and ablation runs warm-start without ever
// cross-contaminating the default configuration.
func (o Options) Digest() store.ContentHash {
	h := store.NewHasher()
	h.WriteUint64(optsDigestVersion)
	if o.KeepSystemHeaders {
		h.WriteUint64(1)
	} else {
		h.WriteUint64(0)
	}
	if o.Coverage == nil || o.Coverage.Mask == nil {
		h.WriteUint64(0)
		return h.Sum()
	}
	h.WriteUint64(1)
	o.Coverage.Mask.ForEach(func(file string, line int, live bool) {
		h.WriteString(file)
		h.WriteUint64(uint64(int64(line)))
		if live {
			h.WriteUint64(1)
		} else {
			h.WriteUint64(0)
		}
	})
	return h.Sum()
}

// linesHash content-addresses an ordered normalised line set.
func linesHash(lines []string) store.ContentHash {
	h := store.NewHasher()
	h.WriteUint64(uint64(len(lines)))
	for _, l := range lines {
		h.WriteString(l)
	}
	return h.Sum()
}

// unitSrcHash recomputes the frontend-reuse key for one unit against a
// file set: the language, root file, role, and — for every dependency in
// recorded order — its name, presence, content, and system flag, plus the
// continued absence of every missing include. Hashing presence bits means
// a deleted dependency or a newly-appearing include target changes the
// hash, forcing a reparse.
func unitSrcHash(cb *corpus.Codebase, file, role string, deps, missing []string) store.ContentHash {
	h := store.NewHasher()
	h.WriteString(string(cb.Lang))
	h.WriteString(file)
	h.WriteString(role)
	h.WriteUint64(uint64(len(deps)))
	for _, d := range deps {
		h.WriteString(d)
		content, ok := cb.Files[d]
		if ok {
			h.WriteUint64(1)
		} else {
			h.WriteUint64(0)
		}
		h.WriteString(content)
		if cb.System[d] {
			h.WriteUint64(1)
		} else {
			h.WriteUint64(0)
		}
	}
	h.WriteUint64(uint64(len(missing)))
	for _, d := range missing {
		h.WriteString(d)
		if _, ok := cb.Files[d]; ok {
			h.WriteUint64(1)
		} else {
			h.WriteUint64(0)
		}
	}
	return h.Sum()
}

// finalizeUnit fills the incremental-recomputation keys of a freshly
// indexed unit: the source hash over its recorded dependency set and the
// content addresses of its trees and line sets. Runs after coverage
// masking, so the fingerprints address exactly what divergence consumes.
func finalizeUnit(cb *corpus.Codebase, ui *UnitIndex) {
	ui.SrcHash = unitSrcHash(cb, ui.File, ui.Role, ui.Deps, ui.MissingDeps)
	ui.FPs = make(map[string]tree.Fingerprint, len(ui.Trees))
	for m, t := range ui.Trees {
		ui.FPs[m] = t.Fingerprint()
	}
	ui.LinesHash = linesHash(ui.SourceLines)
	ui.LinesPPHash = linesHash(ui.SourceLinesPP)
}

// IncrStats counts what an incremental operation reused versus redid.
// Engine methods accumulate the same counts engine-lifetime (Engine.
// IncrStats) and into the incr.* obs counters.
type IncrStats struct {
	UnitsReused     int // parsed units served from the prior index
	UnitsReparsed   int // units re-run through the frontend
	CellsReused     int // matrix cells served from the cell memo
	CellsRecomputed int // matrix cells recomputed

	// Sub-cell accounting (DESIGN.md §13): within the recomputed cells,
	// how many keyroot subtree-distance blocks the TED layer restored
	// from the subtree memo versus re-ran the DP for. On a one-function
	// edit the recomputed count tracks the edited function's spine;
	// everything else is reused.
	SubtreeBlocksReused     int
	SubtreeBlocksRecomputed int
}

// Line renders the per-iteration stats line the watch loop prints.
func (s IncrStats) Line() string {
	return fmt.Sprintf("incremental: %d cells reused, %d recomputed; %d units reused, %d reparsed; %d subtree blocks reused, %d recomputed",
		s.CellsReused, s.CellsRecomputed, s.UnitsReused, s.UnitsReparsed,
		s.SubtreeBlocksReused, s.SubtreeBlocksRecomputed)
}

func (s *IncrStats) add(o IncrStats) {
	s.UnitsReused += o.UnitsReused
	s.UnitsReparsed += o.UnitsReparsed
	s.CellsReused += o.CellsReused
	s.CellsRecomputed += o.CellsRecomputed
	s.SubtreeBlocksReused += o.SubtreeBlocksReused
	s.SubtreeBlocksRecomputed += o.SubtreeBlocksRecomputed
}

// IndexCodebaseIncremental indexes cb, reusing parsed units from a prior
// Index of the same codebase wherever the unit's recomputed source hash
// matches the recorded one. Unmatched (edited, added, renamed, or
// dependency-touched) units re-run the full frontend on the Options.Workers
// pool. The result is always identical to IndexCodebase(cb, opts): reuse
// is keyed purely by content, and a prior index built under different
// options (or for a different app/model/language) disqualifies itself
// entirely. A nil prior degrades to the cold path.
func IndexCodebaseIncremental(cb *corpus.Codebase, prior *Index, opts Options) (*Index, IncrStats, error) {
	return IndexCodebaseIncrementalCtx(context.Background(), cb, prior, opts)
}

// IndexCodebaseIncrementalCtx is IndexCodebaseIncremental under a
// cancellation context: the dirty-unit reparse pool checks ctx at every
// task grant and a canceled run returns ctx.Err() with no partial Index.
func IndexCodebaseIncrementalCtx(ctx context.Context, cb *corpus.Codebase, prior *Index, opts Options) (*Index, IncrStats, error) {
	var st IncrStats
	od := opts.Digest()
	if prior == nil || prior.Codebase != cb.App || prior.Model != string(cb.Model) ||
		prior.Lang != cb.Lang || prior.Opts != od {
		idx, err := IndexCodebaseCtx(ctx, cb, opts)
		if idx != nil {
			st.UnitsReparsed = len(idx.Units)
		}
		return idx, st, err
	}
	byFile := make(map[string]*UnitIndex, len(prior.Units))
	for i := range prior.Units {
		byFile[prior.Units[i].File] = &prior.Units[i]
	}
	idx := &Index{Codebase: cb.App, Model: string(cb.Model), Lang: cb.Lang, Opts: od}
	units := make([]UnitIndex, len(cb.Units))
	var dirty []int
	for i, u := range cb.Units {
		pu := byFile[u.File]
		if pu != nil && pu.Role == u.Role && pu.SrcHash != (store.ContentHash{}) &&
			unitSrcHash(cb, u.File, u.Role, pu.Deps, pu.MissingDeps) == pu.SrcHash {
			// Clean: the unit is a pure function of its dependency
			// closure, which is byte-identical — share the parsed form
			// (trees are immutable once indexed).
			units[i] = *pu
			st.UnitsReused++
			continue
		}
		dirty = append(dirty, i)
	}
	st.UnitsReparsed = len(dirty)
	workers := opts.ResolvedWorkers()
	root := opts.Recorder.Start("incr.index").
		Arg("app", cb.App).Arg("model", string(cb.Model))
	opts.Recorder.Counter("incr.units_reused").Add(int64(st.UnitsReused))
	opts.Recorder.Counter("incr.units_reparsed").Add(int64(st.UnitsReparsed))
	errs := make([]error, len(dirty))
	ctxErr := runParallelCtx(ctx, len(dirty), workers, func(k int) {
		i := dirty[k]
		u := cb.Units[i]
		usp := root.Start("index.unit").Arg("file", u.File)
		if cb.Lang == corpus.LangFortran {
			units[i], errs[k] = indexFortranUnit(cb, u, opts, usp)
		} else {
			units[i], errs[k] = indexCXXUnit(cb, u, opts, usp)
		}
		usp.End()
	})
	root.End()
	if ctxErr != nil {
		return nil, st, ctxErr
	}
	for k, err := range errs {
		if err != nil {
			return nil, st, fmt.Errorf("core: %s/%s %s: %w", cb.App, cb.Model, cb.Units[dirty[k]].File, err)
		}
	}
	idx.Units = units
	sortUnits(idx.Units)
	return idx, st, nil
}

// IndexCodebaseIncremental is the engine form: the engine's worker pool
// and recorder, plus the engine-lifetime incr.* accounting.
func (e *Engine) IndexCodebaseIncremental(cb *corpus.Codebase, prior *Index, opts Options) (*Index, IncrStats, error) {
	opts.Workers = e.workers
	if opts.Recorder == nil {
		opts.Recorder = e.rec
	}
	idx, st, err := IndexCodebaseIncremental(cb, prior, opts)
	e.unitsReused.Add(uint64(st.UnitsReused))
	e.unitsReparsed.Add(uint64(st.UnitsReparsed))
	return idx, st, err
}

// MetricHash content-addresses everything one side of a matrix cell
// contributes under a metric: the ordered units' roles plus each unit's
// metric-relevant content — tree fingerprint for tree metrics, line-set
// hash for the Source variants, the counts themselves for SLOC/LLOC. Two
// indexes hash equal exactly when every divergence involving them computes
// identically under the metric (including dmax and the reverse
// normalisation Weight), which makes the pair of MetricHashes a sound
// matrix-cell key.
func MetricHash(idx *Index, metric string) store.ContentHash {
	h := store.NewHasher()
	h.WriteString(metric)
	h.WriteUint64(uint64(len(idx.Units)))
	for i := range idx.Units {
		u := &idx.Units[i]
		h.WriteString(u.Role)
		switch metric {
		case MetricSLOC:
			h.WriteUint64(uint64(int64(u.SLOC)))
		case MetricLLOC:
			h.WriteUint64(uint64(int64(u.LLOC)))
		case MetricSource:
			ch := u.sourceHash(false)
			h.WriteUint64(ch.H1)
			h.WriteUint64(ch.H2)
		case MetricSourcePP:
			ch := u.sourceHash(true)
			h.WriteUint64(ch.H1)
			h.WriteUint64(ch.H2)
		default:
			fp := u.TreeFingerprint(metric)
			h.WriteUint64(fp.H1)
			h.WriteUint64(fp.H2)
			h.WriteUint64(uint64(fp.Size))
		}
	}
	return h.Sum()
}

// cellKey addresses one memoised matrix cell: the two sides' metric
// hashes (orientation preserved — the reverse normalisation differs), the
// metric, the TED cost model, and the rendered tier policy ("" for the
// exact path). Everything that can change a cell's value is in the key,
// so a memo hit is bit-identical to recomputation by construction.
type cellKey struct {
	a, b   store.ContentHash
	metric string
	costs  ted.Costs
	policy string
}

// cellVal is one memoised cell: both normalised orientations plus the
// tier provenance recorded when the cell was computed.
type cellVal struct {
	norm, rev float64
	tc        TierCell
}

// cellLookup consults the engine's cell memo (nil when the engine is
// cache-less — raw-benchmark mode memoises nothing).
func (e *Engine) cellLookup(k cellKey) (cellVal, bool) {
	if e.cellMemo == nil {
		return cellVal{}, false
	}
	e.cellMu.Lock()
	v, ok := e.cellMemo[k]
	e.cellMu.Unlock()
	return v, ok
}

// cellStore records a freshly computed cell.
func (e *Engine) cellStore(k cellKey, v cellVal) {
	if e.cellMemo == nil {
		return
	}
	e.cellMu.Lock()
	e.cellMemo[k] = v
	e.cellMu.Unlock()
}

// countCells folds one sweep's reuse split into the engine-lifetime
// counters and the incr.* obs counters.
func (e *Engine) countCells(reused, recomputed int) {
	e.cellsReused.Add(uint64(reused))
	e.cellsRecomputed.Add(uint64(recomputed))
	e.obsCellsReused.Add(int64(reused))
	e.obsCellsRecomputed.Add(int64(recomputed))
}

// countSubBlocks folds one sweep's subtree-block reuse split into the
// engine-lifetime counters and the incr.* obs counters.
func (e *Engine) countSubBlocks(reused, recomputed uint64) {
	if reused == 0 && recomputed == 0 {
		return
	}
	e.subBlocksReused.Add(reused)
	e.subBlocksRecomputed.Add(recomputed)
	e.obsSubReused.Add(int64(reused))
	e.obsSubRecomputed.Add(int64(recomputed))
}

// IncrStats returns the engine's cumulative incremental accounting: cells
// reused/recomputed across every Matrix and MatrixTiered call, units
// reused/reparsed across every IndexCodebaseIncremental call, subtree
// blocks reused/recomputed inside those sweeps' TED work. The watch loop
// diffs two snapshots to render its per-iteration stats line.
func (e *Engine) IncrStats() IncrStats {
	return IncrStats{
		UnitsReused:             int(e.unitsReused.Load()),
		UnitsReparsed:           int(e.unitsReparsed.Load()),
		CellsReused:             int(e.cellsReused.Load()),
		CellsRecomputed:         int(e.cellsRecomputed.Load()),
		SubtreeBlocksReused:     int(e.subBlocksReused.Load()),
		SubtreeBlocksRecomputed: int(e.subBlocksRecomputed.Load()),
	}
}

// Delta returns the per-iteration difference s - prev.
func (s IncrStats) Delta(prev IncrStats) IncrStats {
	return IncrStats{
		UnitsReused:             s.UnitsReused - prev.UnitsReused,
		UnitsReparsed:           s.UnitsReparsed - prev.UnitsReparsed,
		CellsReused:             s.CellsReused - prev.CellsReused,
		CellsRecomputed:         s.CellsRecomputed - prev.CellsRecomputed,
		SubtreeBlocksReused:     s.SubtreeBlocksReused - prev.SubtreeBlocksReused,
		SubtreeBlocksRecomputed: s.SubtreeBlocksRecomputed - prev.SubtreeBlocksRecomputed,
	}
}
